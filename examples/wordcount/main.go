// Wordcount mirrors the paper's WikiWordCount example (Fig. 2): a stream of
// page edits is tokenized into words, counted over a sliding window, and
// published. The live Wikipedia feed is replaced by a synthetic page-edit
// source; the custom source demonstrates how to implement
// streamelastic.Source.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"streamelastic"
)

// pageSource emits synthetic page-edit tuples whose Text holds the page
// body. It implements streamelastic.Source.
type pageSource struct {
	pages []string
	seq   uint64
	max   uint64
}

func (p *pageSource) Name() string { return "page-edits" }

func (p *pageSource) Process(int, *streamelastic.Tuple, streamelastic.Emitter) {}

func (p *pageSource) Next(out streamelastic.Emitter) bool {
	if p.seq >= p.max {
		return false
	}
	t := &streamelastic.Tuple{
		Seq:  p.seq,
		Text: p.pages[p.seq%uint64(len(p.pages))],
	}
	p.seq++
	out.Emit(0, t)
	return true
}

// publish collects the windowed counts, standing in for WebSocketSend.
type publish struct {
	mu     sync.Mutex
	counts map[string]float64
}

func (s *publish) Name() string { return "publish" }

func (s *publish) Process(_ int, t *streamelastic.Tuple, _ streamelastic.Emitter) {
	s.mu.Lock()
	s.counts[t.Text] = t.Num1
	s.mu.Unlock()
}

func (s *publish) top(n int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type wc struct {
		w string
		c float64
	}
	all := make([]wc, 0, len(s.counts))
	for w, c := range s.counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	out := make([]string, 0, n)
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, fmt.Sprintf("%s=%.0f", all[i].w, all[i].c))
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pages := []string{
		"the quick brown fox jumps over the lazy dog",
		"stream processing turns endless data into endless answers",
		"the elastic runtime adapts the threading model to the workload",
		strings.Repeat("scale ", 20) + "out",
	}
	src := &pageSource{pages: pages, max: 50_000}

	top := streamelastic.NewTopology()
	s := top.AddSource(src, 200)
	tok := top.AddOperator(streamelastic.NewTokenize("tokenize"), 500)
	counter := top.AddOperator(streamelastic.NewKeyedCounter("counts", 4096, 8), 800)
	pub := &publish{counts: make(map[string]float64)}
	out := top.AddOperator(pub, 100)
	if err := top.Connect(s, 0, tok, 0); err != nil {
		return err
	}
	// A page yields roughly nine words.
	if err := top.ConnectRate(tok, 0, counter, 0, 9); err != nil {
		return err
	}
	// The counter publishes one update per eight words.
	if err := top.ConnectRate(counter, 0, out, 0, 1.0/8); err != nil {
		return err
	}

	rt, err := streamelastic.NewRuntime(top, streamelastic.RuntimeOptions{
		MaxThreads:  4,
		AdaptPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(context.Background()); err != nil {
		return err
	}
	defer rt.Stop()

	time.Sleep(2 * time.Second)
	fmt.Printf("published updates: %d (threads=%d queues=%d)\n",
		rt.SinkCount(), rt.Threads(), rt.Queues())
	fmt.Println("current window, most frequent words:")
	for _, line := range pub.top(8) {
		fmt.Println("  " + line)
	}
	return nil
}
