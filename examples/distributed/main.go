// Distributed runs one topology as a multi-PE job: the pipeline is split
// across three processing elements connected by TCP streams, and every PE
// adapts its own threading model and thread count independently — the
// multi-host execution model of the paper's §2.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streamelastic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top := streamelastic.NewTopology()
	gen := streamelastic.NewGenerator("source", 128)
	prev := top.AddSource(gen, 0)
	for i := 0; i < 9; i++ {
		stage := top.AddOperator(streamelastic.NewWorkOp(fmt.Sprintf("stage%d", i), 20_000), 20_000)
		if err := top.Connect(prev, 0, stage, 0); err != nil {
			return err
		}
		prev = stage
	}
	sink := streamelastic.NewCountingSink("sink")
	snk := top.AddOperator(sink, 0)
	if err := top.Connect(prev, 0, snk, 0); err != nil {
		return err
	}

	job, err := streamelastic.NewJob(top, 3, streamelastic.JobOptions{
		MaxThreads:  4,
		AdaptPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := job.Start(context.Background()); err != nil {
		return err
	}
	defer job.Stop()

	fmt.Printf("job: %d operators across %d PEs, %d TCP streams\n",
		top.NumOperators(), job.NumPEs(), job.NumStreams())
	var last uint64
	for i := 0; i < 5; i++ {
		time.Sleep(time.Second)
		st := job.Status()
		final := st[len(st)-1].SinkTuples
		fmt.Printf("t=%ds  end-to-end throughput=%d tuples/s\n", i+1, final-last)
		last = final
		for _, s := range st {
			fmt.Printf("   PE%d: %2d ops, threads=%d queues=%d settled=%v\n",
				s.PE, s.Operators, s.Threads, s.Queues, s.Settled)
		}
	}
	if sink.Count() == 0 {
		return fmt.Errorf("no tuples crossed the job")
	}
	fmt.Printf("delivered %d tuples end to end across %d PEs\n", sink.Count(), job.NumPEs())
	return nil
}
