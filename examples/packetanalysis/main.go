// Packetanalysis shows the simulation API used for capacity planning: it
// builds a network-monitoring topology shaped like the paper's
// PacketAnalysis application (§4.3) — a packet source fanning out to DGA,
// tunneling and volumetric analysis pipelines — and asks the simulated
// 176-core machine how manual threading, pure thread-count elasticity and
// multi-level elasticity would perform, without occupying a real machine
// for hours.
package main

import (
	"fmt"
	"log"

	"streamelastic"
)

const (
	parseOps    = 4
	chainLength = 40
)

// buildTopology assembles sources x (parse chain -> fan-out -> 3 analysis
// chains) -> shared sink.
func buildTopology(sources int) (*streamelastic.Topology, error) {
	top := streamelastic.NewTopology()
	sink := streamelastic.NewCountingSink("reports")
	snk := top.AddOperator(sink, 10)
	chains := []struct {
		name  string
		flops float64
	}{
		{"dga", 600}, {"tunnel", 300}, {"volumetric", 150},
	}
	for s := 0; s < sources; s++ {
		gen := streamelastic.NewGenerator(fmt.Sprintf("nic%d", s), 256)
		prev := top.AddSource(gen, 2000)
		for p := 0; p < parseOps; p++ {
			id := top.AddOperator(streamelastic.NewWorkOp(fmt.Sprintf("s%d-parse%d", s, p), 400), 400)
			if err := top.Connect(prev, 0, id, 0); err != nil {
				return nil, err
			}
			prev = id
		}
		dispatch := top.AddOperator(streamelastic.NewWorkOp(fmt.Sprintf("s%d-dispatch", s), 50), 50)
		if err := top.Connect(prev, 0, dispatch, 0); err != nil {
			return nil, err
		}
		for _, c := range chains {
			prev = dispatch
			for d := 0; d < chainLength; d++ {
				id := top.AddOperator(streamelastic.NewWorkOp(fmt.Sprintf("s%d-%s%d", s, c.name, d), c.flops), c.flops)
				if err := top.Connect(prev, 0, id, 0); err != nil {
					return nil, err
				}
				prev = id
			}
			if err := top.Connect(prev, 0, snk, 0); err != nil {
				return nil, err
			}
		}
	}
	return top, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	machine := streamelastic.Xeon176()
	fmt.Printf("capacity planning on simulated %s (%d cores)\n\n", machine.Name, machine.Cores)
	fmt.Printf("%-8s %-10s %-16s %-28s\n", "sources", "operators", "manual thr/s", "multi-level thr/s (threads, queues)")

	for _, sources := range []int{1, 4, 8} {
		top, err := buildTopology(sources)
		if err != nil {
			return err
		}
		s, err := streamelastic.NewSimulation(top, machine, streamelastic.SimOptions{PayloadBytes: 256})
		if err != nil {
			return err
		}
		manual := s.Throughput()
		steps, ok, err := s.RunUntilSettled(5000)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%d sources: no convergence in %d steps", sources, steps)
		}
		ex := s.Explain()
		fmt.Printf("%-8d %-10d %-16.0f %.0f (%d threads, %d queues), settled after %s, bound by %s\n",
			sources, top.NumOperators(), manual, s.Throughput(), s.Threads(), s.Queues(), s.Now(), ex.Bottleneck)
	}
	fmt.Println("\nthe multi-level configuration above is what the live runtime would converge to")
	return nil
}
