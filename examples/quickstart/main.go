// Quickstart: build a small pipeline, run it live, and let multi-level
// elasticity pick the threading model and thread count while it runs.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streamelastic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A pipeline: source -> 6 compute stages -> sink. The stages are
	// deliberately expensive so parallelism pays.
	top := streamelastic.NewTopology()
	src := top.AddSource(streamelastic.NewGenerator("source", 256), 0)
	prev := src
	for i := 0; i < 6; i++ {
		stage := top.AddOperator(streamelastic.NewWorkOp(fmt.Sprintf("stage%d", i), 50_000), 50_000)
		if err := top.Connect(prev, 0, stage, 0); err != nil {
			return err
		}
		prev = stage
	}
	sink := streamelastic.NewCountingSink("sink")
	snk := top.AddOperator(sink, 0)
	if err := top.Connect(prev, 0, snk, 0); err != nil {
		return err
	}

	rt, err := streamelastic.NewRuntime(top, streamelastic.RuntimeOptions{
		MaxThreads:  8,
		AdaptPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(context.Background()); err != nil {
		return err
	}
	defer rt.Stop()

	fmt.Println("running with multi-level elasticity...")
	start := time.Now()
	var last uint64
	for i := 0; i < 6; i++ {
		time.Sleep(500 * time.Millisecond)
		cur := sink.Count()
		fmt.Printf("t=%4.1fs  throughput=%7.0f tuples/s  threads=%d  queues=%d  settled=%v\n",
			time.Since(start).Seconds(), float64(cur-last)/0.5, rt.Threads(), rt.Queues(), rt.Settled())
		last = cur
	}

	fmt.Println("\nadaptation trace:")
	for _, e := range rt.Trace() {
		fmt.Printf("  %6.1fs thr=%8.0f threads=%d queues=%d  [%s] %s\n",
			e.Time.Seconds(), e.Throughput, e.Threads, e.Queues, e.Phase, e.Note)
	}
	return nil
}
