// VWAP is a compact version of the paper's first evaluation application
// (§4.2): detect bargains by scoring quotes against a per-symbol
// volume-weighted average price computed over trades. It demonstrates
// writing custom stateful operators against the public API and running them
// under elastic scheduling.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"streamelastic"
)

// feed generates alternating trade (even Seq) and quote (odd Seq) tuples:
// Key is the symbol, Num1 the price, Num2 the volume.
type feed struct {
	symbols uint64
	seq     uint64
	max     uint64
	state   uint64
}

func (f *feed) Name() string { return "market-feed" }

func (f *feed) Process(int, *streamelastic.Tuple, streamelastic.Emitter) {}

func (f *feed) Next(out streamelastic.Emitter) bool {
	if f.seq >= f.max {
		return false
	}
	f.state = f.state*6364136223846793005 + 1442695040888963407
	t := &streamelastic.Tuple{
		Seq:  f.seq,
		Key:  (f.state >> 33) % f.symbols,
		Num1: 100 + 20*math.Sin(float64(f.seq)*0.01) + float64(f.state%7) - 3,
		Num2: float64(1 + f.state%500),
	}
	f.seq++
	out.Emit(0, t)
	return true
}

// vwap maintains an exponentially-weighted VWAP per symbol over trades and
// forwards the current value.
type vwap struct {
	mu sync.Mutex
	pv map[uint64]float64
	v  map[uint64]float64
}

func (v *vwap) Name() string { return "vwap" }

func (v *vwap) Process(_ int, t *streamelastic.Tuple, out streamelastic.Emitter) {
	const alpha = 0.05
	v.mu.Lock()
	v.pv[t.Key] = (1-alpha)*v.pv[t.Key] + alpha*t.Num1*t.Num2
	v.v[t.Key] = (1-alpha)*v.v[t.Key] + alpha*t.Num2
	cur := 0.0
	if v.v[t.Key] > 0 {
		cur = v.pv[t.Key] / v.v[t.Key]
	}
	v.mu.Unlock()
	out.Emit(0, &streamelastic.Tuple{Seq: t.Seq, Key: t.Key, Num1: cur})
}

// bargains joins quotes (port 0) with VWAP updates (port 1) and emits
// quotes priced below the running VWAP.
type bargains struct {
	mu   sync.Mutex
	vwap map[uint64]float64
}

func (b *bargains) Name() string { return "bargain-index" }

func (b *bargains) Process(port int, t *streamelastic.Tuple, out streamelastic.Emitter) {
	b.mu.Lock()
	if port == 1 {
		b.vwap[t.Key] = t.Num1
		b.mu.Unlock()
		return
	}
	ref := b.vwap[t.Key]
	b.mu.Unlock()
	if ref > 0 && t.Num1 < ref {
		out.Emit(0, &streamelastic.Tuple{Seq: t.Seq, Key: t.Key, Num1: (ref - t.Num1) * t.Num2})
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top := streamelastic.NewTopology()
	src := top.AddSource(&feed{symbols: 32, max: 200_000, state: 1}, 500)
	trades := top.AddOperator(streamelastic.NewFilter("trades", func(t *streamelastic.Tuple) bool {
		return t.Seq%2 == 0
	}), 100)
	quotes := top.AddOperator(streamelastic.NewFilter("quotes", func(t *streamelastic.Tuple) bool {
		return t.Seq%2 == 1
	}), 100)
	vw := top.AddOperator(&vwap{pv: map[uint64]float64{}, v: map[uint64]float64{}}, 2000)
	bi := top.AddOperator(&bargains{vwap: map[uint64]float64{}}, 1500)
	sink := streamelastic.NewCountingSink("bargains-found")
	snk := top.AddOperator(sink, 0)

	for _, c := range []struct {
		from, to streamelastic.NodeID
		fp, tp   int
		rate     float64
	}{
		{src, trades, 0, 0, 1},
		{src, quotes, 0, 0, 1},
		{trades, vw, 0, 0, 0.5},
		{quotes, bi, 0, 0, 0.5},
		{vw, bi, 0, 1, 1},
		{bi, snk, 0, 0, 0.4},
	} {
		if err := top.ConnectRate(c.from, c.fp, c.to, c.tp, c.rate); err != nil {
			return err
		}
	}

	rt, err := streamelastic.NewRuntime(top, streamelastic.RuntimeOptions{
		MaxThreads:  4,
		AdaptPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(context.Background()); err != nil {
		return err
	}
	defer rt.Stop()

	for i := 0; i < 4; i++ {
		time.Sleep(750 * time.Millisecond)
		fmt.Printf("t=%.1fs  bargains=%d  threads=%d  queues=%d\n",
			float64(i+1)*0.75, sink.Count(), rt.Threads(), rt.Queues())
	}
	if sink.Count() == 0 {
		return fmt.Errorf("no bargains detected")
	}
	fmt.Printf("done: %d bargains detected under elastic scheduling\n", sink.Count())
	return nil
}
