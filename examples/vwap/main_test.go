package main

import "testing"

// TestRun executes the example end to end so it cannot rot.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
