package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"streamelastic/internal/pe"
)

// stealOn is the default scheduler configuration the flag parser produces.
var stealOn = schedConfig{steal: true, fuse: true}

func TestRunPipelineLive(t *testing.T) {
	err := run("pipeline", 10, 4, 8, 64, 5000, false, 8, 4,
		1500*time.Millisecond, 100*time.Millisecond, true, 1, "", 0, pe.TransportConfig{}, false, resilienceConfig{}, false,
		schedConfig{steal: true, localQ: 128, stats: true, fuse: true}, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSkewedBushy(t *testing.T) {
	err := run("bushy", 0, 4, 8, 64, 100, true, 1, 2,
		1200*time.Millisecond, 100*time.Millisecond, false, 1, "", 0, pe.TransportConfig{}, false, resilienceConfig{}, false,
		schedConfig{steal: false}, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiPE(t *testing.T) {
	err := run("pipeline", 8, 4, 8, 64, 5000, false, 4, 4,
		1500*time.Millisecond, 100*time.Millisecond, false, 2, "", 0,
		pe.TransportConfig{FlushBytes: 8 << 10, MaxFlushDelay: 500 * time.Microsecond}, false,
		resilienceConfig{watchdog: true, panicBudget: 2}, true,
		schedConfig{steal: true, stats: true, fuse: true}, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiPELocalEdges(t *testing.T) {
	err := run("pipeline", 8, 4, 8, 64, 5000, false, 4, 4,
		1500*time.Millisecond, 100*time.Millisecond, false, 2, "", 0,
		pe.TransportConfig{}, true, resilienceConfig{}, true,
		schedConfig{steal: true}, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCluster(t *testing.T) {
	err := run("pipeline", 8, 4, 8, 64, 2000, false, 4, 2,
		2500*time.Millisecond, 100*time.Millisecond, false, 1, "2:4", time.Second,
		pe.TransportConfig{}, false, resilienceConfig{}, false, stealOn, obsConfig{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterBadSpec(t *testing.T) {
	if err := run("pipeline", 8, 4, 8, 64, 2000, false, 1, 2,
		time.Second, 100*time.Millisecond, false, 1, "4:2", 0,
		pe.TransportConfig{}, false, resilienceConfig{}, false, stealOn, obsConfig{}); err == nil {
		t.Fatal("inverted width spec accepted")
	}
}

func TestRunUnknownShape(t *testing.T) {
	if err := run("triangle", 10, 4, 8, 64, 100, false, 1, 4,
		time.Second, 100*time.Millisecond, false, 1, "", 0, pe.TransportConfig{}, false, resilienceConfig{}, false, stealOn, obsConfig{}); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestSchedConfigValidate(t *testing.T) {
	for _, bad := range []int{1, 3, 100, -4} {
		if err := (schedConfig{steal: true, localQ: bad}).validate(); err == nil {
			t.Fatalf("-localq %d accepted", bad)
		}
	}
	for _, good := range []int{0, 2, 256, 1 << 12} {
		if err := (schedConfig{steal: true, localQ: good}).validate(); err != nil {
			t.Fatalf("-localq %d rejected: %v", good, err)
		}
	}
	// Validation guards the engine's own check: a capacity that passes here
	// must be accepted by run too.
	if err := run("pipeline", 4, 4, 8, 64, 100, false, 1, 2,
		300*time.Millisecond, 100*time.Millisecond, false, 1, "", 0, pe.TransportConfig{}, false, resilienceConfig{}, false,
		schedConfig{steal: true, localQ: 64}, obsConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithObs(t *testing.T) {
	dir := t.TempDir()
	ocfg := obsConfig{
		metricsAddr: "127.0.0.1:0",
		flightPath:  dir + "/flight.txt",
		tracePath:   dir + "/trace.json",
		sample:      8,
	}
	err := run("pipeline", 6, 4, 8, 64, 2000, false, 4, 2,
		1200*time.Millisecond, 100*time.Millisecond, false, 1, "", 0,
		pe.TransportConfig{}, false, resilienceConfig{}, false, stealOn, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	flight, err := os.ReadFile(ocfg.flightPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(flight), "=== flight-recorder dump (exit) ===") {
		t.Fatalf("flight dump malformed:\n%s", flight)
	}
	trace, err := os.ReadFile(ocfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace output carries no events")
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/topo.txt"
	src := "source s generator payload=64 cost=100\nop w work flops=5000\nop k sink\nedge s -> w\nedge w -> k\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFile(path, 4, 1200*time.Millisecond, 100*time.Millisecond, true, schedConfig{steal: true, stats: true}, obsConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := runFile(dir+"/missing.txt", 4, time.Second, 100*time.Millisecond, false, stealOn, obsConfig{}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := dir + "/bad.txt"
	if err := os.WriteFile(bad, []byte("gibberish"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFile(bad, 4, time.Second, 100*time.Millisecond, false, stealOn, obsConfig{}); err == nil {
		t.Fatal("bad topology accepted")
	}
}
