// Command streamrun executes a benchmark topology live on goroutines with
// multi-level elasticity and reports the adaptation as it happens.
//
// Usage:
//
//	streamrun -shape pipeline -ops 50 -flops 20000 -duration 5s
//	streamrun -shape mixed -width 4 -depth 8 -skewed -trace
//	streamrun -shape pipeline -ops 12 -cluster 2:4 -clustercycle 3s -duration 12s
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"streamelastic"

	"streamelastic/internal/cluster"
	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/metrics"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
	"streamelastic/internal/pe"
	"streamelastic/internal/state"
	"streamelastic/internal/workload"
)

func main() {
	var (
		shape    = flag.String("shape", "pipeline", "graph shape: pipeline, dataparallel, mixed, bushy")
		ops      = flag.Int("ops", 50, "operator count (pipeline)")
		width    = flag.Int("width", 4, "parallel width (dataparallel, mixed)")
		depth    = flag.Int("depth", 8, "chain depth (mixed)")
		payload  = flag.Int("payload", 1024, "tuple payload bytes")
		flops    = flag.Float64("flops", 10000, "per-operator FLOPs (balanced distribution)")
		skewed   = flag.Bool("skewed", false, "use the skewed 10/30/60 cost distribution")
		threads  = flag.Int("maxthreads", 16, "scheduler-thread cap")
		duration = flag.Duration("duration", 5*time.Second, "run time")
		period   = flag.Duration("period", 200*time.Millisecond, "adaptation period")
		trace    = flag.Bool("trace", false, "print the full adaptation trace at exit")
		pes      = flag.Int("pes", 1, "split the graph across N processing elements connected by TCP")
		clusterW = flag.String("cluster", "", "run under the cluster job manager with this malleable width spec min:max[:step[:desired]]; the PE fleet grows and shrinks live by region migration")
		clusterC = flag.Duration("clustercycle", 0, "with -cluster, alternate the desired width between the spec maximum and minimum at this interval (0 = hold the spec's desired width)")
		file     = flag.String("file", "", "run a topology description file instead of a generated shape")

		flushBytes  = flag.Int("flushbytes", 0, "transport: flush a stream once this many encoded bytes are pending (0 = 32KiB default)")
		flushDelay  = flag.Duration("flushdelay", 0, "transport: max time an encoded frame waits unflushed under sustained traffic (0 = 1ms default)")
		streamRing  = flag.Int("streamring", 0, "transport: staging ring capacity per stream in tuples (0 = 1024 default)")
		streamDrop  = flag.Bool("streamdrop", false, "transport: drop tuples when a stream backs up instead of blocking the PE (latency over completeness)")
		streamStats = flag.Bool("streamstats", false, "print per-stream transport counters at exit (multi-PE runs)")
		wireBatch   = flag.Bool("wirebatch", true, "transport: carry whole writer drains as v2 batch frames across PE edges; false sends one v1 frame per tuple (the pre-batch wire, for A/B comparison)")
		localEdges  = flag.Bool("localedges", false, "transport: route co-located cross-PE edges through the in-process fast path (direct ring handoff, no TCP); wire-level chaos faults do not apply to local edges")

		steal      = flag.Bool("steal", true, "scheduler: work stealing (per-worker deques with emit affinity); false routes everything through the shared queues")
		localq     = flag.Int("localq", 0, "scheduler: per-worker deque capacity, a power of two (0 = 256 default)")
		schedStats = flag.Bool("schedstats", false, "print work-stealing scheduler counters (affinity pushes, steals, overflows, parks) at exit")
		fuse       = flag.Bool("fuse", true, "scheduler: compile manual regions into flat programs executed batch-at-a-time; false interprets every delivery tuple-at-a-time")
		batch      = flag.Int("batch", 1, "source: tuples emitted per generator turn (larger batches feed the compiled-region path whole batches)")

		watchdog    = flag.Bool("watchdog", false, "run a health watchdog per PE that freezes adaptation while the PE is unhealthy (multi-PE runs)")
		panicBudget = flag.Int("panicbudget", 0, "quarantine an operator after this many recovered panics (0 = supervision off)")
		chaos       = flag.Bool("chaos", false, "inject deterministic faults (operator panics, connection kills) into multi-PE runs")
		chaosSeed   = flag.Int64("chaosseed", 1, "seed for -chaos fault injection")
		checkpoint  = flag.Bool("checkpoint", false, "periodically snapshot keyed operator state (incremental, per PE) and recover quarantined stateful operators exactly-once")
		ckptDir     = flag.String("ckptdir", "", "directory for checkpoint logs (pe<N>.ckpt); empty keeps checkpoints in memory")
		ckptEvery   = flag.Duration("ckptinterval", 0, "checkpoint interval (0 = 1s default)")

		metricsAddr = flag.String("metrics", "", "serve /metrics (Prometheus), /statusz, /flightz, /tracez.json and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
		flightPath  = flag.String("flightrec", "", "write a flight-recorder dump to this file at exit")
		tracePath   = flag.String("traceout", "", "write the adaptation trace as Chrome trace_event JSON to this file at exit")
		sample      = flag.Int("sample", 0, "latency-sample every Nth queued delivery per emitting loop into per-operator histograms (0 = off)")
	)
	flag.Parse()

	tcfg := pe.TransportConfig{
		RingCapacity:   *streamRing,
		FlushBytes:     *flushBytes,
		MaxFlushDelay:  *flushDelay,
		DropOnFull:     *streamDrop,
		PerTupleFrames: !*wireBatch,
	}
	rcfg := resilienceConfig{
		watchdog:     *watchdog,
		panicBudget:  *panicBudget,
		chaos:        *chaos,
		chaosSeed:    *chaosSeed,
		checkpoint:   *checkpoint,
		ckptDir:      *ckptDir,
		ckptInterval: *ckptEvery,
	}
	scfg := schedConfig{
		steal:  *steal,
		localQ: *localq,
		stats:  *schedStats,
		fuse:   *fuse,
	}
	ocfg := obsConfig{
		metricsAddr: *metricsAddr,
		flightPath:  *flightPath,
		tracePath:   *tracePath,
		sample:      *sample,
	}
	var err error
	if verr := scfg.validate(); verr != nil {
		err = verr
	} else if *file != "" {
		err = runFile(*file, *threads, *duration, *period, *trace, scfg, ocfg)
	} else {
		err = run(*shape, *ops, *width, *depth, *payload, *flops, *skewed, *batch, *threads, *duration, *period, *trace, *pes, *clusterW, *clusterC, tcfg, *localEdges, rcfg, *streamStats, scfg, ocfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamrun:", err)
		os.Exit(1)
	}
}

// runFile parses a topology description (see streamelastic.ParseTopology)
// and runs it live with multi-level elasticity.
func runFile(path string, maxThreads int, duration, period time.Duration, dumpTrace bool, scfg schedConfig, ocfg obsConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	top, nodes, err := streamelastic.ParseTopology(f)
	if err != nil {
		return err
	}
	ecfg := streamelastic.DefaultElasticConfig()
	ecfg.MaxThreads = maxThreads
	rt, err := streamelastic.NewRuntime(top, streamelastic.RuntimeOptions{
		MaxThreads:           maxThreads,
		AdaptPeriod:          period,
		Elastic:              ecfg,
		DisableWorkStealing:  !scfg.steal,
		LocalQueueCapacity:   scfg.localQ,
		SampleEvery:          ocfg.sample,
		DisableRegionCompile: !scfg.fuse,
	})
	if err != nil {
		return err
	}
	stopObs, err := ocfg.serve(rt.MetricsHandler())
	if err != nil {
		return err
	}
	defer stopObs()
	if err := rt.Start(context.Background()); err != nil {
		return err
	}
	defer rt.Stop()
	fmt.Printf("running %s (%d operators) live for %s\n", path, len(nodes), duration)
	start := time.Now()
	var last uint64
	for time.Since(start) < duration {
		time.Sleep(time.Second)
		cur := rt.SinkCount()
		fmt.Printf("t=%4.0fs  sink=%8.0f tuples/s  threads=%2d  queues=%3d  settled=%v\n",
			time.Since(start).Seconds(), float64(cur-last), rt.Threads(), rt.Queues(), rt.Settled())
		last = cur
	}
	if dumpTrace {
		fmt.Println("\nadaptation trace:")
		for _, e := range rt.Trace() {
			fmt.Printf("  %6.1fs thr=%9.0f threads=%2d queues=%3d  [%s] %s\n",
				e.Time.Seconds(), e.Throughput, e.Threads, e.Queues, e.Phase, e.Note)
		}
	}
	if scfg.stats {
		printSched("runtime", rt.SchedStats())
	}
	return ocfg.writeArtifacts(rt.FlightRecorder(), rt.Trace())
}

// resilienceConfig bundles the self-healing flags.
type resilienceConfig struct {
	watchdog     bool
	panicBudget  int
	chaos        bool
	chaosSeed    int64
	checkpoint   bool
	ckptDir      string
	ckptInterval time.Duration
}

// newStore opens the checkpoint store for one engine: a durable file log
// under -ckptdir, or an in-memory store when the flag is empty.
func (c resilienceConfig) newStore(name string) (state.Store, error) {
	if c.ckptDir == "" {
		return state.NewMemStore(), nil
	}
	return state.OpenFileLog(filepath.Join(c.ckptDir, name+".ckpt"))
}

// obsConfig bundles the observability flags.
type obsConfig struct {
	metricsAddr string // address for the HTTP observability surface; "" = off
	flightPath  string // flight-recorder dump file at exit; "" = off
	tracePath   string // Chrome trace_event JSON file at exit; "" = off
	sample      int    // latency sampling gate (every Nth delivery; 0 = off)
}

// serve starts the observability HTTP server when -metrics is set,
// returning a stop function (a no-op when off).
func (c obsConfig) serve(h http.Handler) (func(), error) {
	if c.metricsAddr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", c.metricsAddr)
	if err != nil {
		return nil, fmt.Errorf("-metrics %s: %w", c.metricsAddr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("observability: http://%s (/metrics /statusz /flightz /tracez.json /debug/pprof)\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// writeArtifacts writes the exit artifacts: a flight-recorder dump and a
// Chrome trace_event JSON of the adaptation timeline.
func (c obsConfig) writeArtifacts(rec *obs.FlightRecorder, trace []core.TraceEvent) error {
	if c.flightPath != "" && rec != nil {
		f, err := os.Create(c.flightPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "=== flight-recorder dump (exit) ===\n")
		err = rec.DumpTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if c.tracePath != "" {
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		err = core.WriteChromeTrace(f, trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// schedConfig bundles the work-stealing scheduler flags.
type schedConfig struct {
	steal  bool
	localQ int
	stats  bool
	fuse   bool
}

// validate rejects a deque capacity the engine would refuse, so the error
// mentions the flag rather than an internal option.
func (c schedConfig) validate() error {
	if c.localQ != 0 && (c.localQ < 2 || c.localQ&(c.localQ-1) != 0) {
		return fmt.Errorf("-localq %d is not a power of two >= 2", c.localQ)
	}
	return nil
}

// execOptions translates the flags into engine scheduler options.
func (c schedConfig) execOptions(o exec.Options) exec.Options {
	o.DisableWorkStealing = !c.steal
	o.LocalQueueCapacity = c.localQ
	o.DisableRegionCompile = !c.fuse
	return o
}

// printSched renders one engine's scheduler counters.
func printSched(name string, s metrics.SchedSnapshot) {
	fmt.Printf("%s sched: local=%d pops=%d steals=%d stolen=%d overflow=%d injected=%d parks=%d wakes=%d fusedBatches=%d fusedTuples=%d\n",
		name, s.LocalPushes, s.LocalPops, s.Steals, s.StolenTuples,
		s.Overflows, s.Injected, s.Parks, s.Wakes, s.FusedBatches, s.FusedTuples)
}

func run(shape string, ops, width, depth, payload int, flops float64, skewed bool, srcBatch int,
	maxThreads int, duration, period time.Duration, dumpTrace bool, pes int, clusterSpec string, clusterCycle time.Duration,
	tcfg pe.TransportConfig, localEdges bool, rcfg resilienceConfig, streamStats bool, scfg schedConfig, ocfg obsConfig) error {
	cfg := workload.DefaultConfig()
	cfg.PayloadBytes = payload
	cfg.BalancedFLOPs = flops
	cfg.Skewed = skewed
	cfg.SourceBatch = srcBatch

	var (
		b   *workload.Build
		err error
	)
	switch shape {
	case "pipeline":
		b, err = workload.Pipeline(ops, cfg)
	case "dataparallel":
		b, err = workload.DataParallel(width, cfg)
	case "mixed":
		b, err = workload.Mixed(width, depth, cfg)
	case "bushy":
		b, err = workload.Bushy(cfg)
	default:
		return fmt.Errorf("unknown shape %q", shape)
	}
	if err != nil {
		return err
	}

	if clusterSpec != "" {
		return runCluster(b, clusterSpec, clusterCycle, maxThreads, duration, period, tcfg, rcfg, scfg, ocfg)
	}
	if pes > 1 {
		return runJob(b, maxThreads, duration, period, pes, tcfg, localEdges, rcfg, streamStats, scfg, ocfg)
	}

	rec := obs.NewFlightRecorder(obs.DefaultFlightRecorderSize)
	eng, err := exec.New(b.Graph, scfg.execOptions(exec.Options{
		MaxThreads:  maxThreads,
		AdaptPeriod: period,
		SampleEvery: ocfg.sample,
		Recorder:    rec,
		PanicBudget: rcfg.panicBudget,
	}))
	if err != nil {
		return err
	}
	var ckpt *exec.Checkpointer
	if rcfg.checkpoint {
		store, err := rcfg.newStore("engine")
		if err != nil {
			return err
		}
		ckpt = exec.NewCheckpointer(eng, exec.CheckpointConfig{
			Store:    store,
			Interval: rcfg.ckptInterval,
		})
		if err := ckpt.Restore(); err != nil {
			return err
		}
	}
	ecfg := core.DefaultConfig()
	ecfg.MaxThreads = maxThreads
	coord, err := core.NewCoordinator(eng, ecfg)
	if err != nil {
		return err
	}
	coord.SetObserver(func(ev core.TraceEvent) {
		detail := string(ev.Phase)
		if ev.Note != "" {
			detail += ": " + ev.Note
		}
		rec.Record(obs.EvAdapt, 0, int64(ev.Threads), int64(ev.Queues), detail)
	})
	obs.RegisterSettled(eng.Registry(), coord.Settled)
	stopObs, err := ocfg.serve(monitor.ObservabilityHandler(
		engineProvider{reg: eng.Registry(), coord: coord},
		[]*obs.Registry{eng.Registry()}, rec))
	if err != nil {
		return err
	}
	defer stopObs()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Start(ctx); err != nil {
		return err
	}
	defer eng.Stop()
	if ckpt != nil {
		ckpt.Start()
		defer ckpt.Stop()
	}

	adaptDone := make(chan struct{})
	go func() {
		defer close(adaptDone)
		_ = coord.Run(ctx)
	}()

	fmt.Printf("running %s (%d operators, payload %dB) live for %s\n",
		b.Name, b.Graph.NumNodes(), payload, duration)
	start := time.Now()
	var last uint64
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	deadline := time.After(duration)
loop:
	for {
		select {
		case <-tick.C:
			cur := b.Sink.Count()
			fmt.Printf("t=%4.0fs  throughput=%8.0f tuples/s  threads=%2d  queues=%3d  settled=%v\n",
				time.Since(start).Seconds(), float64(cur-last), eng.ThreadCount(), eng.Queues(), coord.Settled())
			last = cur
		case <-deadline:
			break loop
		}
	}
	cancel()
	<-adaptDone

	fmt.Printf("\nfinal: %d tuples, %d threads, %d queues, settled=%v\n",
		b.Sink.Count(), eng.ThreadCount(), eng.Queues(), coord.Settled())
	if scfg.stats {
		printSched("engine", eng.SchedStats())
	}
	if dumpTrace {
		fmt.Println("\nadaptation trace:")
		for _, e := range coord.Trace() {
			fmt.Printf("  %6.1fs thr=%9.0f threads=%2d queues=%3d  [%s] %s\n",
				e.Time.Seconds(), e.Throughput, e.Threads, e.Queues, e.Phase, e.Note)
		}
	}
	return ocfg.writeArtifacts(rec, coord.Trace())
}

// engineProvider adapts the single-PE engine+coordinator pair to the
// monitoring API.
type engineProvider struct {
	reg   *obs.Registry
	coord *core.Coordinator
}

func (p engineProvider) Statuses() []monitor.Status {
	return []monitor.Status{monitor.BuildStatus("engine", p.reg, nil)}
}

func (p engineProvider) AdaptationTrace(i int) []core.TraceEvent {
	if i != 0 || p.coord == nil {
		return nil
	}
	return p.coord.Trace()
}

// runCluster executes the workload under the cluster job manager: the PE
// fleet starts at the spec's desired width and, when -clustercycle is set,
// is resized live between the spec's maximum and minimum by region
// migration while the job streams.
func runCluster(b *workload.Build, specStr string, cycle time.Duration, maxThreads int,
	duration, period time.Duration, tcfg pe.TransportConfig, rcfg resilienceConfig, scfg schedConfig, ocfg obsConfig) error {
	spec, err := cluster.ParseWidthSpec(specStr)
	if err != nil {
		return fmt.Errorf("-cluster: %w", err)
	}
	ecfg := core.DefaultConfig()
	ecfg.MaxThreads = maxThreads
	var inj *fault.Injector
	if rcfg.chaos {
		// Kill stream connections periodically — including streams that only
		// come to exist through migrations (fresh stable ids). Kills are
		// output-transparent: the importer resumes at its delivered watermark
		// and the exporter replays from the retransmit ring.
		inj = fault.New(rcfg.chaosSeed)
		for sid := 0; sid < 16; sid++ {
			inj.Arm(fault.ConnKill, sid, fault.Plan{EveryN: 5000, MaxFires: 3})
		}
	}
	mgr, err := cluster.New(b.Graph, cluster.Options{
		Spec: spec,
		PE: pe.Options{
			Exec: scfg.execOptions(exec.Options{
				MaxThreads:  maxThreads,
				AdaptPeriod: period,
				PanicBudget: rcfg.panicBudget,
			}),
			Elastic:        ecfg,
			Transport:      tcfg,
			Fault:          inj,
			EnableWatchdog: rcfg.watchdog,
			SampleEvery:    ocfg.sample,
			Checkpoint: pe.CheckpointOptions{
				Enabled:  rcfg.checkpoint,
				Dir:      rcfg.ckptDir,
				Interval: rcfg.ckptInterval,
			},
		},
	})
	if err != nil {
		return err
	}
	stopObs, err := ocfg.serve(monitor.ObservabilityHandlerDynamic(mgr, mgr.Registries, mgr.FlightRecorder()))
	if err != nil {
		return err
	}
	defer stopObs()
	if err := mgr.Start(context.Background()); err != nil {
		mgr.Stop()
		return err
	}
	defer mgr.Stop()

	fmt.Printf("running %s under the cluster manager (width %d:%d:%d, desired %d) for %s\n",
		b.Name, spec.Min, spec.Max, spec.Step, spec.Desired, duration)
	start := time.Now()
	var last uint64
	atMax := false
	nextFlip := time.Now().Add(cycle)
	for time.Since(start) < duration {
		time.Sleep(time.Second)
		if cycle > 0 && time.Now().After(nextFlip) {
			atMax = !atMax
			want := spec.Min
			if atMax {
				want = spec.Max
			}
			mgr.SetDesired(want)
			nextFlip = time.Now().Add(cycle)
		}
		cur := b.Sink.Count()
		st := mgr.Status()
		fmt.Printf("t=%4.0fs  end-to-end=%8.0f tuples/s  pes=%d desired=%d migrations=%d",
			time.Since(start).Seconds(), float64(cur-last), st.Allocated, st.Desired, st.MigrationsCompleted)
		last = cur
		if st.Pending != "" {
			fmt.Printf("  [%s]", st.Pending)
		}
		fmt.Println()
	}
	st := mgr.Status()
	fmt.Printf("final: %d tuples end to end; width=%d migrations=%d aborted=%d replayed=%d\n",
		b.Sink.Count(), st.Allocated, st.MigrationsCompleted, st.MigrationsAborted, st.ReplayedTuples)
	if inj != nil {
		fmt.Printf("chaos: %d faults fired (seed %d)\n", len(inj.Events()), rcfg.chaosSeed)
		os.Stdout.Write(inj.LogBytes())
	}
	return ocfg.writeArtifacts(mgr.FlightRecorder(), nil)
}

// runJob executes the workload as a multi-PE job, every PE adapting
// independently.
func runJob(b *workload.Build, maxThreads int, duration, period time.Duration, pes int,
	tcfg pe.TransportConfig, localEdges bool, rcfg resilienceConfig, streamStats bool, scfg schedConfig, ocfg obsConfig) error {
	assign, err := pe.AssignContiguous(b.Graph, pes)
	if err != nil {
		return err
	}
	ecfg := core.DefaultConfig()
	ecfg.MaxThreads = maxThreads
	var inj *fault.Injector
	if rcfg.chaos {
		inj = fault.New(rcfg.chaosSeed)
		// A canned chaos plan: kill the first stream's connection a few
		// times during the run and panic an operator on the last PE until
		// its budget trips. Everything downstream of the kill resumes from
		// the retransmit ring; the panics exercise quarantine.
		inj.Arm(fault.ConnKill, 0, fault.Plan{EveryN: 5000, MaxFires: 3})
		inj.Arm(fault.OpPanic, fault.OpSite(pes-1, 1), fault.Plan{EveryN: 500, MaxFires: 8})
	}
	jobOpts := pe.Options{
		Exec: scfg.execOptions(exec.Options{
			MaxThreads:  maxThreads,
			AdaptPeriod: period,
			PanicBudget: rcfg.panicBudget,
		}),
		Elastic:        ecfg,
		Transport:      tcfg,
		LocalEdges:     localEdges,
		Fault:          inj,
		EnableWatchdog: rcfg.watchdog,
		SampleEvery:    ocfg.sample,
		Checkpoint: pe.CheckpointOptions{
			Enabled:  rcfg.checkpoint,
			Dir:      rcfg.ckptDir,
			Interval: rcfg.ckptInterval,
		},
	}
	if rcfg.watchdog {
		// A watchdog trip dumps the flight recorder to stderr as it happens.
		jobOpts.FlightDump = os.Stderr
	}
	job, err := pe.Launch(b.Graph, assign, jobOpts)
	if err != nil {
		return err
	}
	stopObs, err := ocfg.serve(monitor.ObservabilityHandler(job, job.Registries(), job.FlightRecorder()))
	if err != nil {
		return err
	}
	defer stopObs()
	if err := job.Start(context.Background()); err != nil {
		return err
	}
	defer job.Stop()
	streamKind := "TCP"
	if localEdges {
		streamKind = "in-process"
	}
	fmt.Printf("running %s as %d PEs (%d %s streams) for %s\n",
		b.Name, pes, len(job.Streams()), streamKind, duration)
	start := time.Now()
	var last uint64
	for time.Since(start) < duration {
		time.Sleep(time.Second)
		cur := b.Sink.Count()
		fmt.Printf("t=%4.0fs  end-to-end=%8.0f tuples/s", time.Since(start).Seconds(), float64(cur-last))
		last = cur
		for _, rt := range job.PEs {
			fmt.Printf("  PE%d[T=%d Q=%d]", rt.Plan.PE, rt.Eng.ThreadCount(), rt.Eng.Queues())
		}
		fmt.Println()
	}
	fmt.Printf("final: %d tuples end to end\n", b.Sink.Count())
	if rcfg.checkpoint {
		for i, cs := range job.CheckpointStats() {
			fmt.Printf("PE%d checkpoints: committed=%d errors=%d skipped=%d restores=%d lastBytes=%d watermark=%d epoch=%d\n",
				i, cs.Checkpoints, cs.Errors, cs.Skipped, cs.Restores, cs.LastBytes, cs.Watermark, cs.Epoch)
		}
	}
	if scfg.stats {
		for i, s := range job.SchedStats() {
			printSched(fmt.Sprintf("PE%d", i), s)
		}
	}
	if streamStats {
		for _, st := range job.StreamStats() {
			kind := "tcp"
			if st.Local {
				kind = "local"
			}
			framesPerFlush := 0.0
			if st.Flushes > 0 {
				framesPerFlush = float64(st.WireFrames) / float64(st.Flushes)
			}
			fmt.Printf("stream %d PE%d->PE%d (%s): sent=%d recv=%d dropped=%d bytesSent=%d bytesRecv=%d frames=%d framesRecv=%d flushes=%d framesPerFlush=%.1f drains=%v retrans=%d reconnects=%d dups=%d resumes=%d\n",
				st.Stream, st.FromPE, st.ToPE, kind, st.Sent, st.Received, st.Dropped,
				st.BytesSent, st.BytesReceived, st.WireFrames, st.FramesReceived,
				st.Flushes, framesPerFlush, st.DrainSizes,
				st.Retransmits, st.Reconnects, st.DupsDropped, st.Resumes)
		}
	}
	if rcfg.watchdog {
		for _, h := range job.Health() {
			fmt.Printf("watchdog %s: healthy=%v frozen=%v trips=%d recovers=%d lastCause=%q\n",
				h.Name, h.Healthy, h.Frozen, h.Trips, h.Recovers, h.LastCause)
		}
	}
	if rcfg.panicBudget > 0 {
		for _, rt := range job.PEs {
			sup := rt.Eng.Supervision()
			if sup.Quarantines > 0 || sup.Dropped > 0 {
				fmt.Printf("PE%d supervision: quarantines=%d releases=%d dropped=%d active=%d\n",
					rt.Plan.PE, sup.Quarantines, sup.Releases, sup.Dropped, sup.Active)
			}
		}
	}
	if inj != nil {
		fmt.Printf("chaos: %d faults fired (seed %d)\n", len(inj.Events()), rcfg.chaosSeed)
		os.Stdout.Write(inj.LogBytes())
	}
	var trace []core.TraceEvent
	if len(job.PEs) > 0 && job.PEs[0].Coord != nil {
		trace = job.PEs[0].Coord.Trace()
	}
	return ocfg.writeArtifacts(job.FlightRecorder(), trace)
}
