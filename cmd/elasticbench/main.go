// Command elasticbench regenerates the paper's evaluation figures on the
// simulated machine and prints their tables and series.
//
// Usage:
//
//	elasticbench -fig all            # every figure and ablation
//	elasticbench -fig 9 -power8      # Fig. 9 on both modeled machines
//	elasticbench -fig 6 -timeline 2  # Fig. 6 plus run (c)'s timeline CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"streamelastic/internal/experiments"
	"streamelastic/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 1, 5, 6, 9, 10, 11, 12, 13, 15a, 15b, variance, multiphase, warmrestart, ablations, all")
	power8 := flag.Bool("power8", false, "include the Power8 machine where applicable")
	timeline := flag.Int("timeline", -1, "with -fig 6: also dump run N's timeline as CSV (0-3)")
	flag.Parse()

	if err := run(os.Stdout, *fig, *power8, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "elasticbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig string, power8 bool, timeline int) error {
	machines := []sim.Machine{sim.Xeon176()}
	if power8 {
		machines = append(machines, sim.Power8())
	}

	type job struct {
		name string
		run  func() error
	}
	sep := func() { fmt.Fprintln(w) }

	jobs := map[string]func() error{
		"1": func() error {
			r, err := experiments.Fig1()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"5": func() error {
			r, err := experiments.Fig5()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"6": func() error {
			r, err := experiments.Fig6()
			if err != nil {
				return err
			}
			r.Fprint(w)
			if timeline >= 0 {
				fmt.Fprintf(w, "\ntimeline of run %d (time_s,throughput,threads,queues):\n", timeline)
				return r.Timeline(w, timeline)
			}
			return nil
		},
		"9": func() error {
			r, err := experiments.Fig9(machines)
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"10": func() error {
			r, err := experiments.Fig10(sim.Xeon176().WithCores(88))
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"11": func() error {
			r, err := experiments.Fig11(sim.Xeon176().WithCores(88))
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"12": func() error {
			r, err := experiments.Fig12(sim.Xeon176())
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"13": func() error {
			r, err := experiments.Fig13()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"15a": func() error {
			r, err := experiments.Fig15a()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"15b": func() error {
			r, err := experiments.Fig15b()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"warmrestart": func() error {
			r, err := experiments.WarmRestart()
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"multiphase": func() error {
			r, err := experiments.MultiPhase([]float64{0.1, 0.9, 0.1}, 2*time.Hour)
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"variance": func() error {
			r, err := experiments.RunToRunVariance(8)
			if err != nil {
				return err
			}
			r.Fprint(w)
			return nil
		},
		"ablations": func() error {
			for _, f := range []func() (*experiments.AblationResult, error){
				experiments.AblationPrimaryOrder,
				experiments.AblationStartDirection,
				experiments.AblationSens,
				experiments.AblationGrouping,
			} {
				r, err := f()
				if err != nil {
					return err
				}
				r.Fprint(w)
				sep()
			}
			return nil
		},
	}

	if fig != "all" {
		j, ok := jobs[fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		return j()
	}
	order := []job{
		{"1", jobs["1"]}, {"5", jobs["5"]}, {"6", jobs["6"]}, {"9", jobs["9"]}, {"10", jobs["10"]},
		{"11", jobs["11"]}, {"12", jobs["12"]}, {"13", jobs["13"]},
		{"15a", jobs["15a"]}, {"15b", jobs["15b"]}, {"variance", jobs["variance"]},
		{"multiphase", jobs["multiphase"]}, {"warmrestart", jobs["warmrestart"]},
		{"ablations", jobs["ablations"]},
	}
	for _, j := range order {
		if err := j.run(); err != nil {
			return fmt.Errorf("fig %s: %w", j.name, err)
		}
		sep()
	}
	return nil
}
