package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigures(t *testing.T) {
	cases := []struct {
		fig  string
		want string
	}{
		{"13", "Figure 13"},
		{"15a", "vwap-52"},
		{"variance", "coefficient of variation"},
		{"10", "dataparallel"},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := run(&sb, c.fig, false, -1); err != nil {
			t.Fatalf("fig %s: %v", c.fig, err)
		}
		if !strings.Contains(sb.String(), c.want) {
			t.Fatalf("fig %s output missing %q:\n%s", c.fig, c.want, sb.String())
		}
	}
}

func TestRunFig6WithTimeline(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "6", false, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "timeline of run 1") {
		t.Fatalf("missing timeline header:\n%s", out)
	}
	if !strings.Contains(out, "adaptation period reduced") {
		t.Fatal("missing settle summary")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", false, -1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestRunAll exercises the complete dispatch path, regenerating every
// figure once.
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, "all", false, -1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 5 walkthrough", "Figure 6", "fig9", "fig10",
		"fig11", "fig12", "Figure 13", "Figure 15",
		"Run-to-run variance", "Multi-phase", "Warm restart",
		"Ablation primary-order", "Ablation grouping",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("all-figures output missing %q", want)
		}
	}
}
