package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench composes a minimal `go test -json` stream with one benchmark
// result, split across Output events the way test2json actually splits
// them: the name flushes in its own event, the measurements in the next.
func writeBench(t *testing.T, path, name string, nsop, tuples float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"p"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"p","Output":"goos: linux\n"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"p","Output":"Benchmark` + name + `\n"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"p","Output":"Benchmark` + name + `-8         \t"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"p","Output":"    1000\t` +
		formatVal(nsop) + ` ns/op\t` + formatVal(tuples) + ` tuples/s\t0 B/op\t0 allocs/op\n"}` + "\n")
	b.WriteString(`{"Action":"pass","Package":"p"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseFileReassemblesSplitLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	writeBench(t, path, "ManualChain/fused/depth=4", 2949, 21705774)
	r, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r["ManualChain/fused/depth=4\x00ns/op"]
	if !ok {
		t.Fatalf("ns/op sample missing; parsed %v", r)
	}
	if s.mean() != 2949 {
		t.Fatalf("ns/op mean = %v, want 2949", s.mean())
	}
	if s, ok := r["ManualChain/fused/depth=4\x00tuples/s"]; !ok || s.mean() != 21705774 {
		t.Fatalf("tuples/s sample wrong: %v %v", s, ok)
	}
}

func TestParseFileAveragesRepeats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	var b strings.Builder
	for _, v := range []string{"100", "300"} {
		b.WriteString(`{"Action":"output","Package":"p","Output":"BenchmarkX\t    10\t` + v + ` ns/op\n"}` + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s := r["X\x00ns/op"]; s.n != 2 || s.mean() != 200 {
		t.Fatalf("want mean 200 of 2 runs, got %+v", s)
	}
}

func TestParseBenchLineRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"",
		"BenchmarkX",                        // name-only flush line
		"Benchmark",                         // no fields
		"pkg: streamelastic",                // header
		"BenchmarkX\tnot-a-number\t1 ns/op", // bad iteration count
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
	name, vals, ok := parseBenchLine("BenchmarkManualChain/fused/depth=16-8 \t 210123\t6229 ns/op\t0 allocs/op")
	if !ok || name != "ManualChain/fused/depth=16" {
		t.Fatalf("name = %q ok=%v", name, ok)
	}
	if vals["ns/op"] != 6229 || vals["allocs/op"] != 0 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestDiffMarksImprovements(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	writeBench(t, oldP, "ManualChain/depth=4", 13104, 4884163)
	writeBench(t, newP, "ManualChain/depth=4", 2949, 21705774)
	old, err := parseFile(oldP)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parseFile(newP)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	diff(w, old, cur)
	w.Flush()
	out := sb.String()
	if !strings.Contains(out, "ManualChain/depth=4") {
		t.Fatalf("benchmark missing from report:\n%s", out)
	}
	// ns/op dropped and tuples/s rose: both directions must read "better".
	if strings.Count(out, "better") < 2 {
		t.Fatalf("improvements not marked:\n%s", out)
	}
	if strings.Contains(out, "worse") {
		t.Fatalf("spurious regression marked:\n%s", out)
	}
}
