// Command benchdiff compares two benchmark result files captured as `go
// test -json` output (the repo's BENCH_*.json artifacts) and prints, per
// benchmark and per unit, the old value, the new value and the relative
// change. It is a self-contained, stdlib-only stand-in for benchstat: no
// statistics beyond averaging repeated runs, but enough to answer "did this
// change move the needle, and by how much" from two committed artifacts.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	go run ./cmd/benchdiff BENCH_4.json BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event stream benchdiff
// needs: output fragments carry the benchmark text.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// sample accumulates repeated measurements of one (benchmark, unit) pair.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

// results maps "benchmark name\x00unit" to its accumulated sample.
type results map[string]sample

// parseFile reads a `go test -json` stream and extracts every benchmark
// result line. test2json splits one logical line across several Output
// events (the name flushes before the measurements), so the text is
// reassembled per package before line-splitting.
func parseFile(path string) (results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate plain-text bench output: treat the whole file as
			// one pseudo-package.
			b := text[""]
			if b == nil {
				b = &strings.Builder{}
				text[""] = b
			}
			b.WriteString(line)
			b.WriteByte('\n')
			continue
		}
		if ev.Action != "output" {
			continue
		}
		b := text[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			text[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := results{}
	for _, b := range text {
		for _, line := range strings.Split(b.String(), "\n") {
			name, vals, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			for unit, v := range vals {
				k := name + "\x00" + unit
				s := out[k]
				s.sum += v
				s.n++
				out[k] = s
			}
		}
	}
	return out, nil
}

// parseBenchLine parses one `BenchmarkName-8  1000  123 ns/op  4 B/op ...`
// result line into its name and unit->value map. Lines that are just the
// benchmark name (no tab-separated fields) report ok=false.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	// name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so runs at different proc counts still
	// line up by logical benchmark (the proc count also rides along as the
	// gomaxprocs metric in this repo's benches).
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	vals := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	return name, vals, true
}

// unitOrder ranks the most decision-relevant units first in the report.
var unitOrder = map[string]int{
	"ns/op":     0,
	"tuples/s":  1,
	"allocs/op": 2,
	"B/op":      3,
}

// lowerIsBetter reports whether a smaller value of the unit is an
// improvement (affects the delta sign annotation only).
func lowerIsBetter(unit string) bool {
	switch unit {
	case "tuples/s", "steals/s":
		return false
	}
	return true
}

// diff prints the comparison table for every (name, unit) present in both
// files, sorted by name then unit rank.
func diff(w *bufio.Writer, old, new results) {
	type row struct {
		name, unit string
		o, n       float64
	}
	var rows []row
	for k, os := range old {
		ns, ok := new[k]
		if !ok {
			continue
		}
		i := strings.IndexByte(k, 0)
		rows = append(rows, row{name: k[:i], unit: k[i+1:], o: os.mean(), n: ns.mean()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		ri, iok := unitOrder[rows[i].unit]
		rj, jok := unitOrder[rows[j].unit]
		if iok != jok {
			return iok
		}
		if ri != rj {
			return ri < rj
		}
		return rows[i].unit < rows[j].unit
	})
	fmt.Fprintf(w, "%-60s %-10s %14s %14s %9s\n", "benchmark", "unit", "old", "new", "delta")
	for _, r := range rows {
		delta := "~"
		if r.o != 0 {
			d := (r.n - r.o) / r.o * 100
			mark := ""
			if (d < -0.5 && lowerIsBetter(r.unit)) || (d > 0.5 && !lowerIsBetter(r.unit)) {
				mark = " better"
			} else if (d > 0.5 && lowerIsBetter(r.unit)) || (d < -0.5 && !lowerIsBetter(r.unit)) {
				mark = " worse"
			}
			delta = fmt.Sprintf("%+8.1f%%%s", d, mark)
		} else if r.n != 0 {
			delta = "new"
		}
		fmt.Fprintf(w, "%-60s %-10s %14s %14s %s\n", r.name, r.unit, formatVal(r.o), formatVal(r.n), delta)
	}
}

// formatVal renders a measurement compactly: integers without decimals,
// small values with enough precision to compare.
func formatVal(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case v >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff OLD.json NEW.json\n")
		os.Exit(2)
	}
	old, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	diff(w, old, cur)
	w.Flush()
}
