package streamelastic

import (
	"context"
	"io"
	"net/http"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/metrics"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
	"streamelastic/internal/pe"
)

// JobOptions configure a multi-PE deployment.
type JobOptions struct {
	// MaxThreads caps each PE's scheduler pool (default 64).
	MaxThreads int
	// AdaptPeriod is each PE's observation window (default 100ms).
	AdaptPeriod time.Duration
	// Elastic tunes every PE's coordinator; zero value means
	// DefaultElasticConfig.
	Elastic ElasticConfig
	// DisableElasticity runs the PEs without adaptation.
	DisableElasticity bool
	// EnableWatchdog runs a health watchdog per PE: wedged scheduler queues
	// and disconnected or stalled streams freeze that PE's adaptation until
	// health returns.
	EnableWatchdog bool
	// PanicBudget enables operator supervision when > 0: an operator whose
	// recovered panics exhaust the budget is quarantined (input drops and
	// counts) for an exponentially growing timeout, then probed back in.
	PanicBudget int
	// SampleEvery enables per-operator latency sampling on every PE: every
	// Nth queued delivery per emitting loop records queue wait and operator
	// execution time. 0 disables sampling.
	SampleEvery int
	// FlightDump, when set, receives an automatic flight-recorder dump each
	// time a PE watchdog trips (requires EnableWatchdog).
	FlightDump io.Writer
}

// Job runs a topology split across several processing elements, each with
// its own engine and its own independent elastic coordinator; operators in
// different PEs communicate over TCP streams. This is the multi-host
// execution model of the paper's §2 ("all PEs in a job independently use
// the proposed work").
type Job struct {
	job *pe.Job
}

// NewJob validates the topology, splits it across numPEs processing
// elements (contiguously along the topological order), and wires the
// cross-PE streams. Call Start and Stop as with Runtime.
func NewJob(t *Topology, numPEs int, opts JobOptions) (*Job, error) {
	g, err := t.freeze()
	if err != nil {
		return nil, err
	}
	assign, err := pe.AssignContiguous(g, numPEs)
	if err != nil {
		return nil, err
	}
	job, err := pe.Launch(g, assign, pe.Options{
		Exec: exec.Options{
			MaxThreads:  opts.MaxThreads,
			AdaptPeriod: opts.AdaptPeriod,
			PanicBudget: opts.PanicBudget,
		},
		Elastic:           opts.Elastic,
		DisableElasticity: opts.DisableElasticity,
		EnableWatchdog:    opts.EnableWatchdog,
		SampleEvery:       opts.SampleEvery,
		FlightDump:        opts.FlightDump,
	})
	if err != nil {
		return nil, err
	}
	return &Job{job: job}, nil
}

// Start launches every PE.
func (j *Job) Start(ctx context.Context) error { return j.job.Start(ctx) }

// Stop shuts the whole job down; safe to call more than once.
func (j *Job) Stop() { j.job.Stop() }

// NumPEs returns the number of processing elements.
func (j *Job) NumPEs() int { return len(j.job.PEs) }

// NumStreams returns the number of cross-PE TCP streams.
func (j *Job) NumStreams() int { return len(j.job.Streams()) }

// PEStatus describes one processing element's current state.
type PEStatus struct {
	// PE is the element's index.
	PE int
	// Operators is the number of operators in the PE, including transport
	// stubs.
	Operators int
	// Threads and Queues are the PE's current elastic configuration.
	Threads int
	Queues  int
	// Settled reports whether the PE's adaptation has converged.
	Settled bool
	// SinkTuples counts tuples delivered to the PE's sinks (including
	// exports to downstream PEs).
	SinkTuples uint64
}

// Status returns every PE's current state.
func (j *Job) Status() []PEStatus {
	out := make([]PEStatus, 0, len(j.job.PEs))
	for _, rt := range j.job.PEs {
		st := PEStatus{
			PE:         rt.Plan.PE,
			Operators:  rt.Plan.Graph.NumNodes(),
			Threads:    rt.Eng.ThreadCount(),
			Queues:     rt.Eng.Queues(),
			Settled:    rt.Coord == nil || rt.Coord.Settled(),
			SinkTuples: rt.Eng.SinkCount(),
		}
		out = append(out, st)
	}
	return out
}

// StreamStats returns every cross-PE stream's transport counters (tuples
// and bytes on both ends, drops, flushes, writer batch sizes), in stream-id
// order. Safe to call while the job runs.
func (j *Job) StreamStats() []pe.StreamStats { return j.job.StreamStats() }

// Health returns every PE watchdog's status, in PE order; empty unless
// JobOptions.EnableWatchdog was set.
func (j *Job) Health() []monitor.WatchdogStatus { return j.job.Health() }

// SchedStats returns every PE engine's work-stealing scheduler counters, in
// PE order.
func (j *Job) SchedStats() []metrics.SchedSnapshot { return j.job.SchedStats() }

// Trace returns the adaptation trace of one PE (nil when elasticity is
// disabled or the index is out of range).
func (j *Job) Trace(peIndex int) []TraceEvent {
	if peIndex < 0 || peIndex >= len(j.job.PEs) {
		return nil
	}
	rt := j.job.PEs[peIndex]
	if rt.Coord == nil {
		return nil
	}
	return rt.Coord.Trace()
}

// MetricsHandler returns an http.Handler serving every PE's state (see
// Runtime.MetricsHandler): /statusz, /tracez, /metrics merged over every
// PE's registry (series carry a pe="N" label), /flightz, /tracez.json, and
// /debug/pprof. The pe.Job itself is the status provider, rendering each
// PE's Status from its telemetry registry.
func (j *Job) MetricsHandler() http.Handler {
	return monitor.ObservabilityHandler(j.job, j.job.Registries(), j.job.FlightRecorder())
}

// Registries returns every PE's telemetry registry, in PE order.
func (j *Job) Registries() []*obs.Registry { return j.job.Registries() }

// FlightRecorder returns the job's shared flight recorder.
func (j *Job) FlightRecorder() *obs.FlightRecorder { return j.job.FlightRecorder() }

// DumpFlight writes a flight-recorder dump with a reason header to w.
func (j *Job) DumpFlight(w io.Writer, reason string) { j.job.DumpFlight(w, reason) }
