package streamelastic

import (
	"context"
	"strings"
	"testing"
	"time"
)

const sampleTopology = `
# A small keyed-counting job.
source pages generator payload=256 tuples=5000 keys=16 cost=100
op stage work flops=2000
op counts counter window=512 every=4
op out sink

edge pages -> stage
edge stage -> counts
edge counts.0 -> out.0 rate=0.25
contended out
`

func TestParseTopologyBuildsGraph(t *testing.T) {
	top, nodes, err := ParseTopology(strings.NewReader(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	if top.NumOperators() != 4 {
		t.Fatalf("operators = %d, want 4", top.NumOperators())
	}
	for _, name := range []string{"pages", "stage", "counts", "out"} {
		if _, ok := nodes[name]; !ok {
			t.Fatalf("node %q missing", name)
		}
	}
	// The parsed topology is runnable end to end.
	rt, err := NewRuntime(top, RuntimeOptions{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for rt.SinkCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.SinkCount() == 0 {
		t.Fatal("parsed topology produced no output")
	}
}

func TestParseTopologyAllOperatorKinds(t *testing.T) {
	src := `
source s generator payload=64 rate=100000
op w work flops=500
op sp split width=2
op a sample k=2
op b union
op tw timewindow size=10s slide=2s fn=avg
op ro reorder start=0 cap=256
op j join unmatched=emit
op k sink
edge s -> w
edge w -> sp
edge sp.0 -> a rate=0.5
edge sp.1 -> b rate=0.5
edge a -> b
edge b -> tw
edge tw -> ro rate=0.2
edge ro -> j.0
edge j -> k
`
	top, nodes, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(nodes))
	}
	// Validate by freezing through a simulation.
	if _, err := NewSimulation(top, Xeon176(), SimOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown directive", "frobnicate x"},
		{"unknown source kind", "source s fishtank"},
		{"unknown op kind", "source s generator\nop a warp"},
		{"duplicate node", "source s generator\nop s work flops=1"},
		{"work without flops", "source s generator\nop w work"},
		{"split without width", "source s generator\nop x split"},
		{"bad edge syntax", "source s generator\nop w work flops=1\nedge s w"},
		{"unknown edge node", "source s generator\nedge s -> ghost"},
		{"bad port", "source s generator\nop w work flops=1\nedge s.x -> w"},
		{"bad kv", "source s generator payload"},
		{"timewindow without size", "source s generator\nop tw timewindow"},
		{"bad agg fn", "source s generator\nop tw timewindow size=1s fn=median"},
		{"contended unknown", "source s generator\ncontended ghost"},
		{"empty", "\n# just a comment\n"},
	}
	for _, c := range cases {
		if _, _, err := ParseTopology(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseTopologyErrorsIncludeLineNumbers(t *testing.T) {
	src := "source s generator\n\nop bad warp\n"
	_, _, err := ParseTopology(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not cite line 3", err)
	}
}

func TestParseTopologyThrottledSource(t *testing.T) {
	src := "source s generator rate=5000\nop k sink\nedge s -> k"
	top, _, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(top, RuntimeOptions{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	time.Sleep(400 * time.Millisecond)
	got := rt.SinkCount()
	// ~5000/s over 0.4s => ~2000; generous bounds.
	if got < 300 || got > 4500 {
		t.Fatalf("throttled source produced %d tuples in 400ms", got)
	}
}
