package streamelastic

import (
	"errors"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// Core data-model types, re-exported from the runtime's operator model.
// Users implement Operator (and Source for graph roots) to add custom
// logic; see the examples directory.
type (
	// Tuple is the unit of data flowing between operators.
	Tuple = spl.Tuple
	// Operator processes tuples arriving on its input ports.
	Operator = spl.Operator
	// Source produces tuples when driven by a dedicated operator thread.
	Source = spl.Source
	// Emitter delivers an operator's output tuples downstream.
	Emitter = spl.Emitter
	// EmitterFunc adapts a function to the Emitter interface.
	EmitterFunc = spl.EmitterFunc
	// NodeID identifies an operator within a Topology.
	NodeID = graph.NodeID
)

// Topology is an operator graph under construction. Build it with
// AddSource, AddOperator and Connect, then hand it to NewRuntime or
// NewSimulation (which validate and freeze it).
type Topology struct {
	g      *graph.Graph
	frozen bool
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{g: graph.New()}
}

// AddSource adds a source operator. flopsPerTuple is the estimated per-tuple
// compute cost, used by the simulated machine and as a profiling hint; pass
// 0 when unknown (the live engine measures real costs regardless).
func (t *Topology) AddSource(op Source, flopsPerTuple float64) NodeID {
	return t.g.AddSource(op, spl.NewCostVar(flopsPerTuple))
}

// AddOperator adds a non-source operator with the given estimated per-tuple
// cost in FLOPs.
func (t *Topology) AddOperator(op Operator, flopsPerTuple float64) NodeID {
	return t.g.AddOperator(op, spl.NewCostVar(flopsPerTuple))
}

// Connect wires output port fromPort of from to input port toPort of to,
// with an expected rate of one tuple out per tuple in.
func (t *Topology) Connect(from NodeID, fromPort int, to NodeID, toPort int) error {
	return t.g.Connect(from, fromPort, to, toPort, 1)
}

// ConnectRate is Connect with an explicit rate factor: the expected number
// of tuples emitted on this edge per tuple processed by from (a tokenizer
// might use 8, one branch of a width-W round-robin split 1/W). The factor
// only guides the simulated machine and cost attribution.
func (t *Topology) ConnectRate(from NodeID, fromPort int, to NodeID, toPort int, rate float64) error {
	return t.g.Connect(from, fromPort, to, toPort, rate)
}

// MarkContended declares that the operator serializes internally on a lock,
// so the simulated machine charges it contention that grows with the
// number of threads executing it.
func (t *Topology) MarkContended(id NodeID) {
	t.g.SetContended(id)
}

// NumOperators returns the number of operators added so far.
func (t *Topology) NumOperators() int { return t.g.NumNodes() }

// freeze validates the topology and marks it immutable.
func (t *Topology) freeze() (*graph.Graph, error) {
	if t.frozen {
		if !t.g.Finalized() {
			return nil, errors.New("streamelastic: topology was modified after use")
		}
		return t.g, nil
	}
	if err := t.g.Finalize(); err != nil {
		return nil, err
	}
	t.frozen = true
	return t.g, nil
}
