package streamelastic

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/metrics"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
)

// Elasticity controller types, re-exported.
type (
	// ElasticConfig tunes the elastic controllers (sensitivity threshold,
	// satisfaction factor, history, thread bounds).
	ElasticConfig = core.Config
	// TraceEvent is one adaptation-period observation.
	TraceEvent = core.TraceEvent
)

// DefaultElasticConfig returns the paper's operating point: SENS 0.05,
// satisfaction threshold 0.6, both settling-time optimizations enabled.
func DefaultElasticConfig() ElasticConfig {
	return core.DefaultConfig()
}

// RuntimeOptions configure a live runtime.
type RuntimeOptions struct {
	// MaxThreads caps the scheduler pool (default 64).
	MaxThreads int
	// AdaptPeriod is the observation window between elastic adjustments
	// (default 100ms).
	AdaptPeriod time.Duration
	// QueueCapacity is the per-queue capacity, a power of two (default
	// 1024).
	QueueCapacity int
	// Elastic tunes the controllers; zero value means
	// DefaultElasticConfig.
	Elastic ElasticConfig
	// DisableElasticity runs the topology without adaptation (all manual,
	// one scheduler thread) for baseline measurements.
	DisableElasticity bool
	// TrackLatency stamps source tuples with the wall clock and records
	// end-to-end latency; it overwrites the Time attribute, so leave it
	// off when operators carry application event times there.
	TrackLatency bool
	// DisableWorkStealing routes every dynamic delivery through the shared
	// scheduler queues instead of per-worker deques (A/B baselines).
	DisableWorkStealing bool
	// LocalQueueCapacity is the per-worker deque capacity, a power of two
	// (default 256).
	LocalQueueCapacity int
	// WarmStart restores a previously captured configuration: the runtime
	// begins settled at the snapshot's placement and thread count and only
	// re-adapts on workload change. Capture snapshots with
	// Runtime.ConfigSnapshot.
	WarmStart *ConfigSnapshot
	// SampleEvery enables per-operator latency sampling: every Nth queued
	// delivery per emitting loop records queue wait and operator execution
	// time into the telemetry registry. 0 disables sampling; the disabled
	// hot path costs a single integer compare.
	SampleEvery int
	// DisableRegionCompile turns off manual-region compilation: every
	// delivery runs through the interpreted tuple-at-a-time path (A/B
	// baselines).
	DisableRegionCompile bool
}

// LatencySnapshot summarizes end-to-end tuple latency.
type LatencySnapshot = metrics.LatencySnapshot

// ConfigSnapshot captures a converged elastic configuration for warm
// restarts (JSON-serializable).
type ConfigSnapshot = core.ConfigSnapshot

// Runtime executes a topology live on goroutines with multi-level
// elasticity adapting it in the background.
type Runtime struct {
	eng   *exec.Engine
	coord *core.Coordinator
	reg   *obs.Registry
	rec   *obs.FlightRecorder

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	started bool
}

// NewRuntime validates the topology and prepares a live runtime.
func NewRuntime(t *Topology, opts RuntimeOptions) (*Runtime, error) {
	g, err := t.freeze()
	if err != nil {
		return nil, err
	}
	rec := obs.NewFlightRecorder(obs.DefaultFlightRecorderSize)
	eng, err := exec.New(g, exec.Options{
		MaxThreads:           opts.MaxThreads,
		QueueCapacity:        opts.QueueCapacity,
		AdaptPeriod:          opts.AdaptPeriod,
		TrackLatency:         opts.TrackLatency,
		DisableWorkStealing:  opts.DisableWorkStealing,
		LocalQueueCapacity:   opts.LocalQueueCapacity,
		SampleEvery:          opts.SampleEvery,
		DisableRegionCompile: opts.DisableRegionCompile,
		Recorder:             rec,
	})
	if err != nil {
		return nil, err
	}
	r := &Runtime{eng: eng, reg: eng.Registry(), rec: rec}
	obs.RegisterSettled(r.reg, r.Settled)
	if !opts.DisableElasticity {
		cfg := opts.Elastic
		if cfg == (ElasticConfig{}) {
			cfg = DefaultElasticConfig()
		}
		var coord *core.Coordinator
		if opts.WarmStart != nil {
			coord, err = core.NewCoordinatorFrom(eng, cfg, *opts.WarmStart)
		} else {
			coord, err = core.NewCoordinator(eng, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("streamelastic: %w", err)
		}
		coord.SetObserver(func(ev core.TraceEvent) {
			detail := string(ev.Phase)
			if ev.Note != "" {
				detail += ": " + ev.Note
			}
			rec.Record(obs.EvAdapt, 0, int64(ev.Threads), int64(ev.Queues), detail)
		})
		r.coord = coord
	}
	return r, nil
}

// ConfigSnapshot captures the current elastic configuration for a later
// warm start. Returns nil when elasticity is disabled.
func (r *Runtime) ConfigSnapshot() *ConfigSnapshot {
	if r.coord == nil {
		return nil
	}
	s := r.coord.ConfigSnapshot()
	return &s
}

// DrainAndStop gracefully shuts the runtime down: sources stop emitting,
// in-flight tuples complete (bounded by timeout), then everything stops.
// It reports whether the pipeline fully drained.
func (r *Runtime) DrainAndStop(timeout time.Duration) bool {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel, r.done = nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	return r.eng.DrainAndStop(timeout)
}

// Start launches the sources, the scheduler pool, the profiler, and (unless
// elasticity is disabled) the adaptation loop. Call Stop to shut down.
func (r *Runtime) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return errors.New("streamelastic: runtime already started")
	}
	r.started = true
	if err := r.eng.Start(ctx); err != nil {
		return err
	}
	if r.coord != nil {
		actx, cancel := context.WithCancel(ctx)
		done := make(chan struct{})
		r.cancel = cancel
		r.done = done
		go func() {
			defer close(done)
			// Run returns when the context is cancelled; engine errors
			// surface through the trace.
			_ = r.coord.Run(actx)
		}()
	}
	return nil
}

// Stop terminates the adaptation loop and all engine goroutines, waiting
// for them to exit. Safe to call more than once.
func (r *Runtime) Stop() {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.cancel, r.done = nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	r.eng.Stop()
}

// SinkCount returns the total number of tuples delivered to sink operators.
func (r *Runtime) SinkCount() uint64 { return r.eng.SinkCount() }

// Latency returns the end-to-end latency summary; all zeros unless
// RuntimeOptions.TrackLatency was set.
func (r *Runtime) Latency() LatencySnapshot { return r.eng.Latency() }

// OperatorPanics returns how many operator invocations panicked (each is
// contained to the tuple being processed).
func (r *Runtime) OperatorPanics() uint64 { return r.eng.OperatorPanics() }

// Threads returns the current scheduler-thread count.
func (r *Runtime) Threads() int { return r.eng.ThreadCount() }

// Queues returns the current number of scheduler queues.
func (r *Runtime) Queues() int { return r.eng.Queues() }

// Placement returns the current threading-model choice per operator (true
// means dynamic).
func (r *Runtime) Placement() []bool { return r.eng.Placement() }

// SchedStats returns the work-stealing scheduler's cumulative counters.
func (r *Runtime) SchedStats() metrics.SchedSnapshot { return r.eng.SchedStats() }

// Settled reports whether adaptation has converged.
func (r *Runtime) Settled() bool {
	if r.coord == nil {
		return true
	}
	return r.coord.Settled()
}

// Trace returns the adaptation trace recorded so far.
func (r *Runtime) Trace() []TraceEvent {
	if r.coord == nil {
		return nil
	}
	return r.coord.Trace()
}

// runtimeProvider adapts a Runtime to the monitoring API.
type runtimeProvider struct{ r *Runtime }

func (p runtimeProvider) Statuses() []monitor.Status {
	return []monitor.Status{monitor.BuildStatus("runtime", p.r.reg, nil)}
}

func (p runtimeProvider) AdaptationTrace(index int) []core.TraceEvent {
	if index != 0 {
		return nil
	}
	return p.r.Trace()
}

// MetricsHandler returns an http.Handler serving the runtime's full
// observability surface: GET /statusz for configuration and counters,
// GET /tracez for the adaptation trace, GET /metrics for Prometheus text,
// GET /flightz for a flight-recorder dump, GET /tracez.json for a Chrome
// trace_event export, and /debug/pprof. Mount it on any mux or server.
func (r *Runtime) MetricsHandler() http.Handler {
	return monitor.ObservabilityHandler(runtimeProvider{r: r}, []*obs.Registry{r.reg}, r.rec)
}

// Registry returns the runtime's telemetry registry, for registering
// application metrics or scraping programmatically.
func (r *Runtime) Registry() *obs.Registry { return r.reg }

// FlightRecorder returns the runtime's flight recorder; Record application
// events into it to interleave them with the engine's.
func (r *Runtime) FlightRecorder() *obs.FlightRecorder { return r.rec }
