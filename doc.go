// Package streamelastic is a stream-processing runtime with multi-level
// performance elasticity, reproducing "Automating Multi-level Performance
// Elastic Components for IBM Streams" (Ni, Schneider, Pavuluri, Kaus, Wu —
// Middleware '19).
//
// Applications are operator graphs: sources emit tuples, operators process
// and forward them, streams connect ports. The runtime executes a graph
// under two threading models — manual (downstream operators run inline on
// the emitting thread) and dynamic (a scheduler queue is placed in front of
// an operator and a pool of scheduler threads executes it) — and adapts two
// dimensions online without user input:
//
//   - threading-model elasticity chooses, per operator, whether a scheduler
//     queue is worth its copy and synchronization overhead, using a sampled
//     cost profile, logarithmic cost groups, and a trend-guided search;
//   - thread-count elasticity sizes the scheduler pool.
//
// A coordinator runs the two interfering components as primary (thread
// count) and secondary (threading model) adjustments, with
// learning-from-history and satisfaction-factor optimizations that shorten
// the adaptation period, and with SASO guarantees: stability, accuracy,
// short settling time, no overshoot.
//
// Build a Topology, then either run it live on goroutines:
//
//	top := streamelastic.NewTopology()
//	src := top.AddSource(streamelastic.NewGenerator("src", 1024), 0)
//	work := top.AddOperator(streamelastic.NewWorkOp("work", 5000), 5000)
//	sink := top.AddOperator(streamelastic.NewCountingSink("sink"), 0)
//	_ = top.Connect(src, 0, work, 0)
//	_ = top.Connect(work, 0, sink, 0)
//	rt, _ := streamelastic.NewRuntime(top, streamelastic.RuntimeOptions{})
//	_ = rt.Start(ctx)
//	defer rt.Stop()
//
// or adapt it on a simulated machine, which replays hours of adaptation on
// hundreds of virtual cores in milliseconds:
//
//	s, _ := streamelastic.NewSimulation(top, streamelastic.Xeon176(),
//		streamelastic.SimOptions{PayloadBytes: 1024})
//	_, _ = s.RunUntilSettled(2000)
package streamelastic
