module streamelastic

go 1.22
