// Benchmarks regenerating every figure of the paper's evaluation (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results). Each benchmark runs the full experiment per iteration on the
// simulated machine and reports the figure's headline quantity as a custom
// metric, so `go test -bench=.` reproduces the paper end to end.
package streamelastic_test

import (
	"testing"
	"time"

	"streamelastic/internal/experiments"
	"streamelastic/internal/sim"
)

func BenchmarkFig1_PercentDynamicSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		// Fraction of the best hand-swept throughput the framework reaches
		// automatically, averaged over the four configurations.
		frac := 0.0
		for _, s := range r.Series {
			frac += s.Framework.Throughput / s.BestSweep.Throughput
		}
		b.ReportMetric(frac/float64(len(r.Series)), "framework/best")
	}
}

func BenchmarkFig6_AdaptationOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Runs[0].SettleTime.Seconds(), "settle-none-s")
		b.ReportMetric(r.Runs[2].SettleTime.Seconds(), "settle-hist+sf-s")
	}
}

func benchmarkBenchFigure(b *testing.B, run func() (*experiments.BenchResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		meanDyn, meanML := 0.0, 0.0
		for _, row := range r.Rows {
			d, m := row.SpeedupVsManual()
			meanDyn += d
			meanML += m
		}
		n := float64(len(r.Rows))
		b.ReportMetric(meanDyn/n, "dyn-x-manual")
		b.ReportMetric(meanML/n, "ml-x-manual")
	}
}

func BenchmarkFig9_Pipeline(b *testing.B) {
	benchmarkBenchFigure(b, func() (*experiments.BenchResult, error) {
		return experiments.Fig9([]sim.Machine{sim.Xeon176()})
	})
}

func BenchmarkFig9_PipelinePower8(b *testing.B) {
	benchmarkBenchFigure(b, func() (*experiments.BenchResult, error) {
		return experiments.Fig9([]sim.Machine{sim.Power8()})
	})
}

func BenchmarkFig10_DataParallel(b *testing.B) {
	benchmarkBenchFigure(b, func() (*experiments.BenchResult, error) {
		return experiments.Fig10(sim.Xeon176().WithCores(88))
	})
}

func BenchmarkFig11_Mixed(b *testing.B) {
	benchmarkBenchFigure(b, func() (*experiments.BenchResult, error) {
		return experiments.Fig11(sim.Xeon176().WithCores(88))
	})
}

func BenchmarkFig12_Bushy(b *testing.B) {
	benchmarkBenchFigure(b, func() (*experiments.BenchResult, error) {
		return experiments.Fig12(sim.Xeon176())
	})
}

func BenchmarkFig13_PhaseChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReAdaptation.Seconds(), "readapt-s")
		b.ReportMetric(float64(r.ThreadsAfter-r.ThreadsBefore), "thread-delta")
		b.ReportMetric(float64(r.QueuesAfter-r.QueuesBefore), "queue-delta")
	}
}

func BenchmarkFig15a_VWAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15a()
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[len(r.Rows)-1] // 88 cores
		b.ReportMetric(experiments.Speedup(row.MultiLevel, row.Manual), "ml-x-manual")
		b.ReportMetric(float64(row.MultiLevel.Threads), "ml-threads")
	}
}

func BenchmarkFig15b_PacketAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15b()
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[len(r.Rows)-1] // 8 sources
		b.ReportMetric(row.MultiLevel.Throughput/row.HandOpt.Throughput, "ml/handopt")
		b.ReportMetric(float64(row.MultiLevel.Threads), "ml-threads")
		b.ReportMetric(float64(row.HandThreads), "hand-threads")
	}
}

func BenchmarkRunToRunVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunToRunVariance(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.CV, "cv-%")
	}
}

func BenchmarkMultiPhaseAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiPhase([]float64{0.1, 0.9, 0.1}, 2*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Phases[1].ReAdaptation.Seconds(), "heavy-readapt-s")
	}
}

func BenchmarkAblation_PrimaryOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPrimaryOrder()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].MaxThreads), "paper-max-threads")
		b.ReportMetric(float64(r.Rows[1].MaxThreads), "rejected-max-threads")
	}
}

func BenchmarkAblation_StartDirection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationStartDirection()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Throughput, "start-min-thr")
		b.ReportMetric(r.Rows[1].Throughput, "start-max-thr")
	}
}

func BenchmarkAblation_Sens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSens()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[1].Steps), "steps-at-0.05")
	}
}

func BenchmarkAblation_Grouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGrouping()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Steps), "grouped-steps")
		b.ReportMetric(float64(r.Rows[1].Steps), "fine-steps")
	}
}
