package streamelastic

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// scrape fetches a path from the test server and returns the body, failing
// the test on transport errors or non-200 responses.
func scrape(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestJobEndToEnd(t *testing.T) {
	const n = 2000
	top, sink := buildPipeline(t, 6, 100, 16, n)
	job, err := NewJob(top, 3, JobOptions{AdaptPeriod: 50 * time.Millisecond, MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	if job.NumPEs() != 3 {
		t.Fatalf("NumPEs = %d, want 3", job.NumPEs())
	}
	if job.NumStreams() != 2 {
		t.Fatalf("NumStreams = %d, want 2", job.NumStreams())
	}
	deadline := time.Now().Add(30 * time.Second)
	for sink.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.Count(); got != n {
		t.Fatalf("final sink received %d, want %d", got, n)
	}
	st := job.Status()
	if len(st) != 3 {
		t.Fatalf("status has %d PEs", len(st))
	}
	total := 0
	for _, s := range st {
		total += s.Operators
		if s.Threads < 1 {
			t.Fatalf("PE %d has no threads", s.PE)
		}
	}
	// 8 original operators + 2 exports + 2 imports.
	if total != top.NumOperators()+4 {
		t.Fatalf("PE operators total %d, want %d", total, top.NumOperators()+4)
	}
	job.Stop() // idempotent
}

func TestJobTraces(t *testing.T) {
	top, _ := buildPipeline(t, 4, 100, 8, 0)
	job, err := NewJob(top, 2, JobOptions{AdaptPeriod: 20 * time.Millisecond, MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(job.Trace(0)) > 0 && len(job.Trace(1)) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(job.Trace(0)) == 0 || len(job.Trace(1)) == 0 {
		t.Fatal("PEs recorded no adaptation traces")
	}
	if job.Trace(-1) != nil || job.Trace(99) != nil {
		t.Fatal("out-of-range Trace did not return nil")
	}
}

func TestJobValidation(t *testing.T) {
	top, _ := buildPipeline(t, 2, 1, 0, 10)
	if _, err := NewJob(top, 0, JobOptions{}); err == nil {
		t.Fatal("0 PEs accepted")
	}
	if _, err := NewJob(top, 100, JobOptions{}); err == nil {
		t.Fatal("more PEs than operators accepted")
	}
	if _, err := NewJob(NewTopology(), 1, JobOptions{}); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestJobDisableElasticity(t *testing.T) {
	const n = 500
	top, sink := buildPipeline(t, 3, 10, 0, n)
	job, err := NewJob(top, 2, JobOptions{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for sink.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sink.Count() != n {
		t.Fatalf("sink = %d, want %d", sink.Count(), n)
	}
	if tr := job.Trace(0); tr != nil {
		t.Fatal("disabled-elasticity job has a trace")
	}
	for _, s := range job.Status() {
		if !s.Settled {
			t.Fatal("disabled-elasticity PE not reported settled")
		}
	}
}

func TestRuntimeLatencyTracking(t *testing.T) {
	const n = 800
	top, sink := buildPipeline(t, 3, 100, 16, n)
	rt, err := NewRuntime(top, RuntimeOptions{TrackLatency: true, AdaptPeriod: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for sink.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for rt.Latency().Count < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	snap := rt.Latency()
	if snap.Count != n {
		t.Fatalf("latency samples = %d, want %d", snap.Count, n)
	}
	if snap.P99 <= 0 {
		t.Fatalf("p99 = %v", snap.P99)
	}
	if rt.OperatorPanics() != 0 {
		t.Fatalf("unexpected operator panics: %d", rt.OperatorPanics())
	}
}

func TestMetricsHandlerRuntime(t *testing.T) {
	top, _ := buildPipeline(t, 3, 100, 8, 0)
	rt, err := NewRuntime(top, RuntimeOptions{TrackLatency: true, AdaptPeriod: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	srv := httptest.NewServer(rt.MetricsHandler())
	defer srv.Close()
	time.Sleep(150 * time.Millisecond)

	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statuses []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	if statuses[0]["operators"].(float64) != float64(top.NumOperators()) {
		t.Fatalf("operators = %v", statuses[0]["operators"])
	}
	if statuses[0]["sinkTuples"].(float64) <= 0 {
		t.Fatal("no sink tuples reported")
	}

	resp2, err := srv.Client().Get(srv.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("tracez status %d", resp2.StatusCode)
	}

	prom := scrape(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE engine_sink_tuples_total counter",
		"engine_sink_tuples_total ",
		"engine_latency_seconds_count",
		"sched_local_pushes_total",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	if flight := scrape(t, srv, "/flightz"); !strings.Contains(flight, "adapt") {
		t.Fatalf("/flightz carries no adaptation events:\n%s", flight)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(scrape(t, srv, "/tracez.json")), &doc); err != nil {
		t.Fatalf("/tracez.json is not valid JSON: %v", err)
	}
}

func TestMetricsHandlerJob(t *testing.T) {
	top, _ := buildPipeline(t, 4, 100, 8, 0)
	job, err := NewJob(top, 2, JobOptions{AdaptPeriod: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	srv := httptest.NewServer(job.MetricsHandler())
	defer srv.Close()
	time.Sleep(100 * time.Millisecond)

	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statuses []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("statuses = %d, want one per PE", len(statuses))
	}
	if statuses[0]["name"].(string) != "pe0" {
		t.Fatalf("name = %v", statuses[0]["name"])
	}
	// The live transport counters surface per PE: pe0 exports the stream
	// that pe1 imports, with matching tuple counts by the time both are
	// observed through one snapshot.
	exports, ok := statuses[0]["streams"].([]any)
	if !ok || len(exports) != 1 {
		t.Fatalf("pe0 streams = %v, want one export", statuses[0]["streams"])
	}
	exp := exports[0].(map[string]any)
	if exp["dir"].(string) != "export" || exp["peer"].(float64) != 1 {
		t.Fatalf("pe0 stream = %v", exp)
	}
	if exp["tuples"].(float64) <= 0 || exp["bytes"].(float64) <= 0 {
		t.Fatalf("export carried no traffic: %v", exp)
	}
	imports, ok := statuses[1]["streams"].([]any)
	if !ok || len(imports) != 1 {
		t.Fatalf("pe1 streams = %v, want one import", statuses[1]["streams"])
	}
	imp := imports[0].(map[string]any)
	if imp["dir"].(string) != "import" || imp["tuples"].(float64) <= 0 {
		t.Fatalf("pe1 stream = %v", imp)
	}

	// The merged Prometheus exposition carries both PEs' series, tagged with
	// pe labels, and the cross-PE transport counters.
	prom := scrape(t, srv, "/metrics")
	for _, want := range []string{
		`engine_sink_tuples_total{pe="0"}`,
		`engine_sink_tuples_total{pe="1"}`,
		`transport_tuples_total{dir="export",pe="0",peer="1",stream="0"}`,
		`transport_tuples_total{dir="import",pe="1",peer="0",stream="0"}`,
		"sched_local_pushes_total",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
}
