package streamelastic

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// buildPipeline constructs a small synthetic pipeline through the public
// API.
func buildPipeline(t *testing.T, workOps int, flops float64, payload int, maxTuples uint64) (*Topology, *CountingSink) {
	t.Helper()
	top := NewTopology()
	gen := NewGenerator("src", payload)
	gen.MaxTuples = maxTuples
	prev := top.AddSource(gen, 0)
	for i := 0; i < workOps; i++ {
		id := top.AddOperator(NewWorkOp("w", flops), flops)
		if err := top.Connect(prev, 0, id, 0); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	sink := NewCountingSink("snk")
	sid := top.AddOperator(sink, 0)
	if err := top.Connect(prev, 0, sid, 0); err != nil {
		t.Fatal(err)
	}
	return top, sink
}

func TestTopologyValidation(t *testing.T) {
	top := NewTopology()
	if _, err := NewRuntime(top, RuntimeOptions{}); err == nil {
		t.Fatal("empty topology accepted")
	}

	top2 := NewTopology()
	src := top2.AddSource(NewGenerator("s", 0), 0)
	op := top2.AddOperator(NewCountingSink("c"), 0)
	if err := top2.ConnectRate(src, 0, op, 0, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := top2.Connect(src, 0, op, 0); err != nil {
		t.Fatal(err)
	}
	if top2.NumOperators() != 2 {
		t.Fatalf("NumOperators = %d, want 2", top2.NumOperators())
	}
}

func TestTopologyReuseAcrossEngines(t *testing.T) {
	top, _ := buildPipeline(t, 3, 10, 8, 100)
	if _, err := NewSimulation(top, Xeon176(), SimOptions{}); err != nil {
		t.Fatal(err)
	}
	// The same frozen topology can be reused.
	if _, err := NewSimulation(top, Power8(), SimOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeLiveEndToEnd(t *testing.T) {
	const n = 2000
	top, sink := buildPipeline(t, 4, 100, 16, n)
	rt, err := NewRuntime(top, RuntimeOptions{AdaptPeriod: 20 * time.Millisecond, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(20 * time.Second)
	for sink.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.Count(); got != n {
		t.Fatalf("sink received %d tuples, want %d", got, n)
	}
	if rt.SinkCount() != n {
		t.Fatalf("SinkCount = %d, want %d", rt.SinkCount(), n)
	}
	if rt.Threads() < 1 {
		t.Fatal("no scheduler threads")
	}
	if len(rt.Placement()) != top.NumOperators() {
		t.Fatal("placement length mismatch")
	}
	rt.Stop() // idempotent
}

func TestRuntimeStartTwice(t *testing.T) {
	top, _ := buildPipeline(t, 2, 1, 0, 10)
	rt, err := NewRuntime(top, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.Start(context.Background()); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestRuntimeDisableElasticity(t *testing.T) {
	top, sink := buildPipeline(t, 2, 1, 0, 500)
	rt, err := NewRuntime(top, RuntimeOptions{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for sink.Count() < 500 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.Count() != 500 {
		t.Fatalf("sink = %d, want 500", sink.Count())
	}
	if !rt.Settled() {
		t.Fatal("elasticity-disabled runtime must report settled")
	}
	if rt.Trace() != nil {
		t.Fatal("elasticity-disabled runtime has a trace")
	}
}

func TestSimulationAdaptsPipeline(t *testing.T) {
	top, _ := buildPipeline(t, 98, 100, 1024, 0)
	s, err := NewSimulation(top, Xeon176(), SimOptions{PayloadBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	manualBase := s.Throughput()
	steps, ok, err := s.RunUntilSettled(5000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("simulation did not settle in %d steps", steps)
	}
	if !s.Settled() {
		t.Fatal("Settled() = false")
	}
	if s.Throughput() < 2*manualBase {
		t.Fatalf("adapted throughput %v < 2x manual %v", s.Throughput(), manualBase)
	}
	if s.Queues() == 0 {
		t.Fatal("no queues placed")
	}
	if s.Threads() < 2 {
		t.Fatal("threads not raised")
	}
	if s.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	tr := s.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	var phases []string
	for _, e := range tr {
		phases = append(phases, string(e.Phase))
	}
	joined := strings.Join(phases, ",")
	for _, want := range []string{"init-threading-model", "thread-count", "settled"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing phase %q", want)
		}
	}
}

func TestSimulationStepAfterSettle(t *testing.T) {
	top, _ := buildPipeline(t, 10, 100, 64, 0)
	s, err := NewSimulation(top, Xeon176().WithCores(8), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.RunUntilSettled(3000); err != nil || !ok {
		t.Fatalf("settle failed: %v", err)
	}
	for i := 0; i < 10; i++ {
		settled, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !settled {
			t.Fatal("left settled state under steady workload")
		}
	}
}

func TestSimulationCustomElasticConfig(t *testing.T) {
	top, _ := buildPipeline(t, 10, 100, 64, 0)
	cfg := DefaultElasticConfig()
	cfg.Sens = 0.10
	cfg.UseHistory = false
	s, err := NewSimulation(top, Power8(), SimOptions{Elastic: cfg, Seed: 42, Period: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.RunUntilSettled(3000); err != nil || !ok {
		t.Fatalf("settle failed: %v", err)
	}
	// The virtual clock advances by the custom 1s period.
	tr := s.Trace()
	if tr[0].Time != time.Second {
		t.Fatalf("first event at %v, want 1s period", tr[0].Time)
	}
}

func TestMarkContendedFlowsToModel(t *testing.T) {
	top := NewTopology()
	src := top.AddSource(NewGenerator("s", 0), 0)
	snk := top.AddOperator(NewCountingSink("c"), 1)
	if err := top.Connect(src, 0, snk, 0); err != nil {
		t.Fatal(err)
	}
	top.MarkContended(snk)
	s, err := NewSimulation(top, Xeon176(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestThrottledSourceInRuntime(t *testing.T) {
	top := NewTopology()
	gen := NewGenerator("src", 8)
	src := top.AddSource(NewThrottle(gen, 2000), 0)
	sample := top.AddOperator(NewSample("sample", 2), 0)
	union := top.AddOperator(NewUnion("union"), 0)
	sink := NewCountingSink("snk")
	snk := top.AddOperator(sink, 0)
	if err := top.Connect(src, 0, sample, 0); err != nil {
		t.Fatal(err)
	}
	if err := top.ConnectRate(sample, 0, union, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := top.Connect(union, 0, snk, 0); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(top, RuntimeOptions{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	time.Sleep(500 * time.Millisecond)
	got := sink.Count()
	// 2000/s throttled, sampled 1:2, over ~0.5s => ~500; allow wide slack.
	if got < 100 || got > 1500 {
		t.Fatalf("throttled+sampled sink count = %d over 500ms", got)
	}
}

func TestSimulationWarmStart(t *testing.T) {
	top, _ := buildPipeline(t, 50, 100, 1024, 0)
	cold, err := NewSimulation(top, Xeon176(), SimOptions{PayloadBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cold.RunUntilSettled(5000); err != nil || !ok {
		t.Fatalf("cold settle failed: %v", err)
	}
	snap := cold.ConfigSnapshot()

	warm, err := NewSimulation(top, Xeon176(), SimOptions{PayloadBytes: 1024, WarmStart: &snap})
	if err != nil {
		t.Fatal(err)
	}
	steps, ok, err := warm.RunUntilSettled(5)
	if err != nil || !ok {
		t.Fatalf("warm start did not settle (steps %d): %v", steps, err)
	}
	if warm.Threads() != snap.Threads || warm.Queues() != cold.Queues() {
		t.Fatalf("warm config (T=%d Q=%d) differs from snapshot (T=%d Q=%d)",
			warm.Threads(), warm.Queues(), snap.Threads, cold.Queues())
	}
}

// Godoc examples exercising the public API end to end.

func ExampleNewSimulation() {
	top := NewTopology()
	src := top.AddSource(NewGenerator("src", 1024), 0)
	prev := src
	for i := 0; i < 20; i++ {
		id := top.AddOperator(NewWorkOp("stage", 5000), 5000)
		if err := top.Connect(prev, 0, id, 0); err != nil {
			fmt.Println(err)
			return
		}
		prev = id
	}
	snk := top.AddOperator(NewCountingSink("sink"), 0)
	if err := top.Connect(prev, 0, snk, 0); err != nil {
		fmt.Println(err)
		return
	}
	s, err := NewSimulation(top, Xeon176(), SimOptions{PayloadBytes: 1024})
	if err != nil {
		fmt.Println(err)
		return
	}
	before := s.Throughput()
	if _, ok, err := s.RunUntilSettled(5000); err != nil || !ok {
		fmt.Println("did not settle", err)
		return
	}
	fmt.Println("adapted faster than manual:", s.Throughput() > 2*before)
	fmt.Println("queues placed:", s.Queues() > 0)
	// Output:
	// adapted faster than manual: true
	// queues placed: true
}
