package exec

import (
	"sync"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// expandChain builds source -> expand(factor) -> work -> sink: one dequeued
// tuple turns into a burst, which is the workload shape that loads worker
// deques and provokes steals.
func expandChain(tb testing.TB, tuples uint64, factor int, flops float64) (*graph.Graph, *spl.CountingSink) {
	tb.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 0)
	gen.MaxTuples = tuples
	src := g.AddSource(gen, nil)
	xp := g.AddOperator(spl.NewExpand("xp", factor), nil)
	if err := g.Connect(src, 0, xp, 0, 1); err != nil {
		tb.Fatal(err)
	}
	cv := spl.NewCostVar(flops)
	work := g.AddOperator(spl.NewWork("w", cv), cv)
	if err := g.Connect(xp, 0, work, 0, 1); err != nil {
		tb.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(work, 0, sid, 0, 1); err != nil {
		tb.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// placeAllDynamic puts a scheduler queue in front of every non-source node.
func placeAllDynamic(t *testing.T, e *Engine, g *graph.Graph) {
	t.Helper()
	place := make([]bool, g.NumNodes())
	for i := range place {
		place[i] = !g.Node(graph.NodeID(i)).Source
	}
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
}

// checkSchedConservation asserts the deque flow invariant after a full
// drain: every tuple pushed onto a worker deque was either popped by its
// owner or stolen — nothing lost, nothing duplicated.
func checkSchedConservation(t *testing.T, e *Engine) {
	t.Helper()
	s := e.SchedStats()
	if s.LocalPushes != s.LocalPops+s.StolenTuples {
		t.Fatalf("deque flow not conserved: pushes=%d pops=%d stolen=%d",
			s.LocalPushes, s.LocalPops, s.StolenTuples)
	}
}

// TestEmitAffinityConservation runs a burst topology with stealing enabled
// and checks that (a) every tuple arrives, (b) the affinity fast path
// actually carried traffic, (c) sources still injected through the shared
// queues, and (d) deque pushes balance pops plus steals.
func TestEmitAffinityConservation(t *testing.T) {
	const tuples, factor = 500, 8
	g, sink := expandChain(t, tuples, factor, 0)
	e := startEngine(t, g, Options{MaxThreads: 4})
	placeAllDynamic(t, e, g)
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, tuples*factor, 10*time.Second)
	if !e.DrainAndStop(5 * time.Second) {
		t.Fatal("engine did not drain")
	}
	if got := sink.Count(); got != tuples*factor {
		t.Fatalf("sink saw %d tuples, want %d", got, tuples*factor)
	}
	s := e.SchedStats()
	if s.LocalPushes == 0 {
		t.Fatal("emit affinity never used: LocalPushes == 0")
	}
	if s.Injected == 0 {
		t.Fatal("source injection not counted: Injected == 0")
	}
	checkSchedConservation(t, e)
}

// TestStealingBalancesBursts checks that other workers actually steal from
// a worker whose deque holds an expansion burst.
func TestStealingBalancesBursts(t *testing.T) {
	const tuples, factor = 400, 64
	g, sink := expandChain(t, tuples, factor, 500)
	e := startEngine(t, g, Options{MaxThreads: 8})
	placeAllDynamic(t, e, g)
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, tuples*factor, 20*time.Second)
	if !e.DrainAndStop(5 * time.Second) {
		t.Fatal("engine did not drain")
	}
	s := e.SchedStats()
	if s.Steals == 0 {
		t.Fatal("no steals under a 64x burst workload with 4 workers")
	}
	if s.StolenTuples == 0 {
		t.Fatal("steals counted but no stolen tuples")
	}
	checkSchedConservation(t, e)
}

// TestShrinkFlushConservation shrinks the pool to one worker mid-run: the
// retiring workers must flush their deques rather than strand tuples.
func TestShrinkFlushConservation(t *testing.T) {
	const tuples, factor = 2000, 8
	g, sink := expandChain(t, tuples, factor, 100)
	e := startEngine(t, g, Options{MaxThreads: 8})
	placeAllDynamic(t, e, g)
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, 1000, 10*time.Second) // mid-flight
	if err := e.SetThreadCount(1); err != nil {
		t.Fatal(err)
	}
	// Every tuple sitting in a retiring worker's deque at the shrink must
	// still arrive: the remaining worker finishes the bounded workload alone.
	waitCount(t, sink, tuples*factor, 30*time.Second)
	if !e.DrainAndStop(20 * time.Second) {
		t.Fatal("engine did not drain after shrink")
	}
	if got := sink.Count(); got != tuples*factor {
		t.Fatalf("sink saw %d tuples after shrink, want %d", got, tuples*factor)
	}
	checkSchedConservation(t, e)
}

// TestNoWorkerSleepsWhileWorkQueued is the lost-wakeup regression test for
// the sharded park/wake scheme: producers push concurrently with workers
// parking, round after round, and every pushed tuple must be processed
// promptly — a worker asleep while its queue holds work would stall a
// round until the test times out.
func TestNoWorkerSleepsWhileWorkQueued(t *testing.T) {
	const rounds, producers = 40, 2
	g, sink := hotChain(t, 10, 8, 0)
	e := startEngine(t, g, Options{MaxThreads: 4})
	place := make([]bool, g.NumNodes())
	place[1], place[2] = true, true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, 10, 5*time.Second)

	cfg := e.cfg.Load()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Producer protocol: enqueue, then wake. The racing park on
				// the worker side must either be seen by the wake or rescan
				// the queue itself.
				for !cfg.queues[2].TryPush(item{port: 0, t: spl.AcquireTuple()}) {
					time.Sleep(time.Microsecond)
				}
				e.wakeWorkers(1)
			}()
		}
		wg.Wait()
		want := 10 + uint64((round+1)*producers)
		waitCount(t, sink, want, 5*time.Second)
	}
}

// syncAffinityStep builds the deque analogue of syncCrossingStep: a source
// emission lands on a worker-local deque via the affinity path, half is
// stolen and executed, and the remainder drains through the owner batch
// pop — all on one goroutine so AllocsPerRun can measure it.
func syncAffinityStep(tb testing.TB, g *graph.Graph) func() {
	tb.Helper()
	e, err := New(g, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1], place[2] = true, true // work and sink dynamic
	if err := e.ApplyPlacement(place); err != nil {
		tb.Fatal(err)
	}
	em := e.newEmitter(e.reconfigTS)
	em.cfg = e.cfg.Load()
	d, err := queue.NewWSDeque[ditem](256)
	if err != nil {
		tb.Fatal(err)
	}
	em.local = d
	gen := g.Node(0).Op.(spl.Source)
	dbatch := make([]ditem, workerBatch)
	scratch := make([]item, workerBatch)
	stolen := make([]ditem, workerBatch)
	return func() {
		em.node = 0
		gen.Next(em) // affinity push onto the deque
		if k := d.StealHalf(stolen); k > 0 {
			e.executeDBatch(em, scratch, stolen[:k])
		}
		for {
			k := d.PopBottomN(dbatch)
			if k == 0 {
				break
			}
			e.executeDBatch(em, scratch, dbatch[:k])
		}
	}
}

// TestAffinitySteadyStateAllocFree guards the work-stealing hot path with
// the same bar as the PR1 queue-crossing guard: once the pools are warm,
// affinity push, steal, owner pop, execute, and sink recycle allocate
// nothing.
func TestAffinitySteadyStateAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector")
	}
	g, _ := hotChain(t, 0, 256, 0)
	step := syncAffinityStep(t, g)
	for i := 0; i < 128; i++ {
		step() // warm the tuple and payload pools
	}
	avg := testing.AllocsPerRun(5000, step)
	if avg > 0.05 {
		t.Fatalf("steady-state affinity/steal path allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestCostAttributionUnchangedByStealing pins the controller-facing
// invariant: operator cost samples are attributed at execute time, so the
// profiler ranks operators identically whether tuples reached the worker
// through the shared queue or the deque bypass path.
func TestCostAttributionUnchangedByStealing(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "steal"
		if disable {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			g := graph.New()
			gen := spl.NewGenerator("src", 0)
			src := g.AddSource(gen, nil)
			light := spl.NewCostVar(200)
			w1 := g.AddOperator(spl.NewWork("light", light), light)
			if err := g.Connect(src, 0, w1, 0, 1); err != nil {
				t.Fatal(err)
			}
			heavy := spl.NewCostVar(100000)
			w2 := g.AddOperator(spl.NewWork("heavy", heavy), heavy)
			if err := g.Connect(w1, 0, w2, 0, 1); err != nil {
				t.Fatal(err)
			}
			sink := spl.NewCountingSink("snk")
			sid := g.AddOperator(sink, nil)
			if err := g.Connect(w2, 0, sid, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := g.Finalize(); err != nil {
				t.Fatal(err)
			}
			e := startEngine(t, g, Options{MaxThreads: 4, DisableWorkStealing: disable})
			placeAllDynamic(t, e, g)
			if err := e.SetThreadCount(2); err != nil {
				t.Fatal(err)
			}
			waitCount(t, sink, 2000, 10*time.Second)
			cost := e.CostMetric()
			argmax := 0
			for i, c := range cost {
				if c > cost[argmax] {
					argmax = i
				}
			}
			if argmax != int(w2) {
				t.Fatalf("cost metric argmax = node %d (%v), want heavy node %d", argmax, cost, w2)
			}
			if !disable {
				if s := e.SchedStats(); s.LocalPushes == 0 {
					t.Fatal("stealing run never used the affinity path; test is not exercising the bypass")
				}
			}
		})
	}
}
