// Region compilation: the manual threading model's steady path, compiled.
//
// A scheduler-queue placement partitions the graph into execution regions
// (see internal/graph/regions.go): each region is headed by a source or a
// dynamic (queued) operator, and every manual operator downstream of the
// head — up to the next queue — executes inline on whatever thread delivers
// to it. The interpreted path pays per tuple for that inlining: an
// interface dispatch through spl.Operator.Process, a graph.Node lookup and
// an edge-slice walk per emission, a defer/recover frame per hop, and two
// profiler transitions per operator, all repeated recursively down the
// chain via Emit and deliver.
//
// The compiler flattens each region's straight-line single-consumer chain
// into a regionProgram: an ops array with the operator pointers, ports,
// recycle/sink flags, stateful locks, and BatchProcessor bindings resolved
// once at configuration time. Executing a batch through a program touches
// no graph.Node, takes supervision and stateful-lock decisions once per
// stage per batch instead of once per tuple, and runs vectorized operators
// through spl.BatchProcessor. A chain ends at a sink (fully compiled), or
// at the first fan-out or dynamic successor, where a generic exit step
// hands each tuple back to the interpreted machinery — so arbitrary graphs
// still execute correctly, with compilation covering the straight prefix.
//
// Programs live inside engineConfig, which ApplyPlacement swaps atomically:
// every coordinator placement move recompiles the region set, so threading-
// model elasticity is preserved and a stale program can never execute. The
// per-stage profiler Enter keeps the sampling profiler's cost attribution
// placement-independent, amortized over the batch. Engines with a fault
// injector configured skip compilation entirely: chaos semantics (per-tuple
// injection inside the recover scope) are bit-exact on the interpreted path
// only.
package exec

import (
	"sync"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// regionStep is one flattened operator of a compiled region.
type regionStep struct {
	node graph.NodeID
	op   spl.Operator
	// bop is non-nil when op opts into vectorized execution.
	bop spl.BatchProcessor
	// inPort is the input port tuples of this step arrive on. The head step
	// of a queue-head program receives per-item ports instead (queue items
	// carry their delivery port), so it is -1 there.
	inPort int
	// outPort is the emission port that continues the chain. Emissions on
	// any other port have no consumers by construction and are dropped,
	// exactly as the interpreted Emit drops consumer-less ports. -1 for
	// sink and exit steps.
	outPort int
	// sink marks a terminal step: batch-metered, latency-tracked, recycled.
	sink bool
	// exit marks a generic tail step executed through the full interpreted
	// machinery (a fan-out or a dynamic successor follows).
	exit bool
	// recycle mirrors Engine.recycle[node].
	recycle bool
	// mu is the node's stateful-operator lock (nil for stateless ops),
	// taken once per stage per batch instead of once per tuple.
	mu *sync.Mutex
}

// regionProgram is one compiled manual region.
type regionProgram struct {
	// head is the region head: a dynamic node (steps[0].node == head) or a
	// source (steps cover the chain hanging off the source's only edge).
	head graph.NodeID
	// srcPort is the source output port feeding the region (-1 for
	// queue-head programs): the source loop buffers emissions on this port
	// and flushes them through the program batch-at-a-time.
	srcPort int
	steps   []regionStep
}

// compilePrograms builds the compiled-region set for cfg. Compilation is
// skipped entirely when disabled or when a fault injector is configured
// (injected panics and delays fire per tuple inside process's recover
// scope; the interpreted path keeps those semantics bit-exact).
func (e *Engine) compilePrograms(cfg *engineConfig) {
	if e.opts.DisableRegionCompile || e.opts.Fault != nil {
		return
	}
	progs := make([]*regionProgram, e.g.NumNodes())
	any := false
	for _, nid := range cfg.queueList {
		if p := e.compileChain(nid, nid, -1, -1, cfg.placement); p != nil {
			progs[nid] = p
			any = true
		}
	}
	for _, sid := range e.g.Sources() {
		nd := e.g.Node(sid)
		if len(nd.Out) != 1 {
			continue // fan-out sources keep the interpreted emitter
		}
		eg := nd.Out[0]
		if cfg.placement[eg.To] {
			continue // the queue is the region head, not the source
		}
		if p := e.compileChain(sid, eg.To, eg.ToPort, eg.FromPort, cfg.placement); p != nil {
			progs[sid] = p
			any = true
		}
	}
	if any {
		cfg.progs = progs
	}
}

// compileChain flattens the straight-line chain starting at start (arriving
// on inPort) for the region headed at head. It returns nil for programs
// that would be a lone exit step — those are exactly the interpreted path,
// so there is nothing to compile.
func (e *Engine) compileChain(head, start graph.NodeID, inPort, srcPort int, placement []bool) *regionProgram {
	p := &regionProgram{head: head, srcPort: srcPort}
	node, port := start, inPort
	for {
		nd := e.g.Node(node)
		st := regionStep{
			node:    node,
			op:      nd.Op,
			inPort:  port,
			outPort: -1,
			recycle: e.recycle[node],
			mu:      e.statefulM[node],
		}
		if b, ok := nd.Op.(spl.BatchProcessor); ok {
			st.bop = b
		}
		if len(nd.Out) == 0 {
			st.sink = true
			p.steps = append(p.steps, st)
			return p
		}
		if len(nd.Out) == 1 && !placement[nd.Out[0].To] {
			eg := nd.Out[0]
			st.outPort = eg.FromPort
			p.steps = append(p.steps, st)
			node, port = eg.To, eg.ToPort
			continue
		}
		// Fan-out, or the successor is dynamic: a generic exit step closes
		// the chain.
		st.exit = true
		p.steps = append(p.steps, st)
		if len(p.steps) == 1 {
			return nil
		}
		return p
	}
}

// stageCollector is the emitter interior stages run their operators
// against: emissions on the chain's continuation port append to the next
// stage's buffer, anything else is dropped (the chain owns the node's only
// out edge, so no other port has consumers — matching the interpreted
// Emit's consumer-less path). want == -1 drops everything (sink steps).
type stageCollector struct {
	want int
	out  []*spl.Tuple
}

var _ spl.Emitter = (*stageCollector)(nil)

// Emit implements spl.Emitter.
func (c *stageCollector) Emit(port int, t *spl.Tuple) {
	if port == c.want {
		c.out = append(c.out, t)
	}
}

// runRegionItems executes a compiled region on a batch of queue items. It
// is the compiled counterpart of executeBatch. Sampling mirrors the
// interpreted path's observation counts exactly — one queue-wait
// observation per stamped item, one head-histogram observation per stamped
// item — with the region's batch-amortized execution time standing in for
// the per-item timing (the interpreted measurement includes the inline
// downstream work too, so the two agree in meaning).
func (e *Engine) runRegionItems(em *emitter, p *regionProgram, items []item) {
	sampled := 0
	var t0 int64
	for i := range items {
		if items[i].enq != 0 {
			if t0 == 0 {
				t0 = time.Now().UnixNano()
			}
			e.qwaitHist.Observe(time.Duration(t0 - items[i].enq))
			sampled++
		}
	}
	em.stats.FusedBatches.Add(1)
	em.stats.FusedTuples.Add(uint64(len(items)))
	// Queue items carry per-delivery ports; run maximal same-port spans
	// through the chain so every stage sees a uniform port. Spans execute
	// in arrival order, so per-consumer output order matches the
	// interpreted path exactly.
	i := 0
	for i < len(items) {
		port := items[i].port
		j := i + 1
		for j < len(items) && items[j].port == port {
			j++
		}
		buf := em.ibuf[:0]
		for k := i; k < j; k++ {
			buf = append(buf, items[k].t)
		}
		em.ibuf = buf
		e.runRegion(em, p, buf, port)
		i = j
	}
	if sampled > 0 {
		if h := e.opHist[p.steps[0].node]; h != nil {
			d := time.Duration(time.Now().UnixNano()-t0) / time.Duration(len(items))
			for k := 0; k < sampled; k++ {
				h.Observe(d)
			}
		}
	}
}

// flushSource pushes the source loop's buffered emissions through the
// source's compiled region and resets the buffer. The buffer survives
// flushes, so the steady state allocates nothing.
func (e *Engine) flushSource(em *emitter) {
	p := em.srcProg
	em.stats.FusedBatches.Add(1)
	em.stats.FusedTuples.Add(uint64(len(em.srcBuf)))
	e.runRegion(em, p, em.srcBuf, p.steps[0].inPort)
	em.srcBuf = em.srcBuf[:0]
}

// runRegion executes the program's steps on a batch of owned tuples
// arriving at steps[0] on port. The input slice is consumed; stage outputs
// ping-pong between the emitter's two scratch buffers, which are reused
// across batches so the steady state allocates nothing.
func (e *Engine) runRegion(em *emitter, p *regionProgram, in []*spl.Tuple, port int) {
	ts := em.ts
	cur := in
	flip := 0
	for si := range p.steps {
		if len(cur) == 0 {
			return
		}
		st := &p.steps[si]
		if si > 0 {
			port = st.inPort
		}
		if e.sup != nil && e.sup.quarantined(int(st.node), time.Now().UnixNano()) {
			// The batch's tuples are exclusively ours, so a quarantine drop
			// returns them to the pool, exactly like the interpreted path —
			// just decided once per batch instead of once per tuple.
			e.sup.drops.Add(uint64(len(cur)))
			for _, t := range cur {
				t.Release()
			}
			return
		}
		if st.exit {
			// Generic tail: fan-out cloning, dynamic delivery, and emit
			// affinity all live in the interpreted machinery; each tuple
			// re-enters it here with full ownership.
			for _, t := range cur {
				e.execute(em, st.node, port, t)
			}
			return
		}
		ts.Enter(int(st.node))
		if st.sink {
			e.runSinkStep(em, st, port, cur)
			ts.Leave()
			return
		}
		coll := &em.coll
		coll.want = st.outPort
		coll.out = em.rbufs[flip][:0]
		if st.mu != nil {
			st.mu.Lock()
		}
		if st.bop != nil {
			if e.runStepBatch(st, coll, port, cur) && st.recycle {
				for _, t := range cur {
					t.Release()
				}
			}
		} else {
			for _, t := range cur {
				if e.runStepTuple(st, coll, port, t) && st.recycle {
					t.Release()
				}
			}
		}
		if st.mu != nil {
			st.mu.Unlock()
		}
		ts.Leave()
		em.rbufs[flip] = coll.out
		cur = coll.out
		coll.out = nil
		flip ^= 1
	}
}

// runSinkStep runs a terminal step on a batch: one meter add for the whole
// batch, per-tuple latency/recycle through finishSink. The caller has
// already entered the profiler state.
func (e *Engine) runSinkStep(em *emitter, st *regionStep, port int, in []*spl.Tuple) {
	coll := &em.coll
	coll.want = -1 // a sink's emissions have no consumers
	if st.mu != nil {
		st.mu.Lock()
	}
	if st.bop != nil {
		ok := e.runStepBatch(st, coll, port, in)
		for _, t := range in {
			e.finishSink(st.node, t, ok)
		}
	} else {
		for _, t := range in {
			e.finishSink(st.node, t, e.runStepTuple(st, coll, port, t))
		}
	}
	if st.mu != nil {
		st.mu.Unlock()
	}
	em.sinkMeter.Add(uint64(len(in)))
}

// runStepTuple invokes a step's operator on one tuple against the stage
// collector, containing panics exactly like process: the tuple is lost but
// the scheduler thread survives, the panic is counted, and supervision is
// notified. ok reports normal completion.
func (e *Engine) runStepTuple(st *regionStep, coll *stageCollector, port int, t *spl.Tuple) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.opPanics.Add(1)
			if e.sup != nil {
				e.sup.notePanic(int(st.node), time.Now())
			}
		}
	}()
	st.op.Process(port, t, coll)
	return true
}

// runStepBatch invokes a step's vectorized operator on the whole batch. A
// panic loses the remainder of the batch at this stage — the batched
// analogue of a per-tuple panic losing its tuple — and counts once.
func (e *Engine) runStepBatch(st *regionStep, coll *stageCollector, port int, in []*spl.Tuple) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.opPanics.Add(1)
			if e.sup != nil {
				e.sup.notePanic(int(st.node), time.Now())
			}
		}
	}()
	st.bop.ProcessBatch(port, in, coll)
	return true
}
