package exec

import (
	"fmt"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/queue"
)

// This file implements the core.Engine control surface of the live engine.

// NumOperators implements core.Engine.
func (e *Engine) NumOperators() int { return e.g.NumNodes() }

// Placeable implements core.Engine: any non-source operator can take a
// scheduler queue.
func (e *Engine) Placeable() []bool {
	out := make([]bool, e.g.NumNodes())
	for i := range out {
		out[i] = !e.g.Node(graph.NodeID(i)).Source
	}
	return out
}

// CostMetric implements core.Engine, returning the sampling profiler's
// per-operator cost metric for the most recent observation window.
func (e *Engine) CostMetric() []float64 {
	return e.profiler.CostMetric()
}

// Placement implements core.Engine.
func (e *Engine) Placement() []bool {
	cfg := e.cfg.Load()
	out := make([]bool, len(cfg.placement))
	copy(out, cfg.placement)
	return out
}

// ApplyPlacement implements core.Engine: it pauses all dispatch loops at a
// tuple boundary, swaps in the new queue configuration (keeping queues, and
// their in-flight tuples, for operators that stay dynamic), drains the
// queues of operators reverting to manual by executing their tuples inline,
// and resumes.
func (e *Engine) ApplyPlacement(dynamic []bool) error {
	if len(dynamic) != e.g.NumNodes() {
		return fmt.Errorf("exec: placement length %d, want %d", len(dynamic), e.g.NumNodes())
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()

	old := e.cfg.Load()
	cfg, err := e.buildConfig(dynamic, old)
	if err != nil {
		return err
	}

	e.pauseAll()
	e.cfg.Store(cfg)
	// Drain queues that no longer exist: their tuples are executed here,
	// inline, under the new configuration.
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	for _, nid := range old.queueList {
		if cfg.queues[nid] != nil {
			continue
		}
		for {
			it, ok := old.queues[nid].TryPop()
			if !ok {
				break
			}
			e.execute(em, nid, it.port, it.t)
		}
	}
	e.resumeAll()
	return nil
}

// ThreadCount implements core.Engine, returning the scheduler pool size.
func (e *Engine) ThreadCount() int {
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	return len(e.workers)
}

// SetThreadCount implements core.Engine, growing or shrinking the scheduler
// pool online.
func (e *Engine) SetThreadCount(n int) error {
	if n < 1 || n > e.opts.MaxThreads {
		return fmt.Errorf("exec: thread count %d outside [1, %d]", n, e.opts.MaxThreads)
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	e.setWorkersLocked(n)
	return nil
}

// setWorkersLocked resizes the pool; the caller holds reconfigMu. Worker
// slots (deque + counters) are keyed by worker id and never discarded, so a
// shrink-then-grow reuses them: counters stay cumulative and deques are
// allocated once.
func (e *Engine) setWorkersLocked(n int) {
	for len(e.workers) < n {
		id := len(e.workers)
		for len(e.allSlots) <= id {
			d, err := queue.NewWSDeque[ditem](e.opts.LocalQueueCapacity)
			if err != nil {
				panic(err) // unreachable: capacity validated in New
			}
			e.allSlots = append(e.allSlots, &wslot{deq: d})
		}
		w := &worker{
			id:   id,
			quit: make(chan struct{}),
			slot: e.allSlots[id],
			rng:  uint64(id)*0x9E3779B97F4A7C15 | 1,
		}
		e.workers = append(e.workers, w)
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	shrunk := false
	for len(e.workers) > n {
		w := e.workers[len(e.workers)-1]
		e.workers = e.workers[:len(e.workers)-1]
		close(w.quit)
		shrunk = true
	}
	// Publish the live-slot prefix for stealers and idle rescans. A stale
	// snapshot in a thief's hands is harmless: stealing from a retiring
	// worker's deque just races its owner's flush, and both conserve.
	live := make([]*wslot, len(e.workers))
	copy(live, e.allSlots[:len(e.workers)])
	e.slots.Store(&live)
	if shrunk {
		// Retiring workers may be idle-parked; wake them so they observe
		// their closed quit channel and exit.
		e.wakeAllIdle()
	}
}

// MaxThreads implements core.Engine.
func (e *Engine) MaxThreads() int { return e.opts.MaxThreads }

// Observe implements core.Engine: it resets the profiler window, lets the
// engine run for one adaptation period of wall-clock time, and returns the
// sink throughput over that period.
func (e *Engine) Observe() (float64, error) {
	e.profiler.ResetCounts()
	e.meter.Rate(time.Now()) // restart the rate window
	time.Sleep(e.opts.AdaptPeriod)
	return e.meter.Rate(time.Now()), nil
}

// Now implements core.Engine, returning wall-clock time since Start.
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	start := e.start
	e.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// SinkCount returns the total number of tuples delivered to sink operators
// since Start.
func (e *Engine) SinkCount() uint64 { return e.meter.Total() }

// Latency returns the end-to-end (source emit to sink arrival) latency
// summary. It is all zeros unless Options.TrackLatency was set.
func (e *Engine) Latency() metrics.LatencySnapshot { return e.latency.Snapshot() }

// OperatorPanics returns how many operator invocations panicked; each panic
// is contained to the tuple being processed.
func (e *Engine) OperatorPanics() uint64 { return e.opPanics.Load() }

// Queues returns the number of scheduler queues currently placed.
func (e *Engine) Queues() int {
	return len(e.cfg.Load().queueList)
}

// Drain stops the engine's (non-exempt) sources from emitting further
// tuples while everything else keeps running. Combine with WaitIdle and
// Stop, or use DrainAndStop.
func (e *Engine) Drain() {
	e.drain.Store(true)
}

// DrainAndStop gracefully shuts the engine down: sources stop emitting,
// in-flight tuples are processed to completion (bounded by timeout), and
// all goroutines exit. It reports whether the pipeline fully drained.
func (e *Engine) DrainAndStop(timeout time.Duration) bool {
	e.Drain()
	ok := e.WaitIdle(timeout)
	e.Stop()
	return ok
}

// WaitIdle blocks until all scheduler queues are empty and sources have
// finished, or the timeout elapses; it reports whether the engine became
// idle. Tests use it to assert tuple conservation with bounded sources.
func (e *Engine) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.idle() {
			// Double-check after a short settle to avoid racing a tuple
			// that is mid-flight between queues.
			time.Sleep(5 * time.Millisecond)
			if e.idle() {
				return true
			}
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

func (e *Engine) idle() bool {
	cfg := e.cfg.Load()
	for _, nid := range cfg.queueList {
		if cfg.queues[nid].Len() > 0 {
			return false
		}
	}
	for _, s := range *e.slots.Load() {
		if !s.deq.Empty() {
			return false
		}
	}
	return true
}

// QueueStats summarizes the scheduler queues' instantaneous state.
type QueueStats struct {
	// Queues is the number of scheduler queues.
	Queues int
	// TotalDepth is the sum of queued tuples across all shared queues and
	// worker-local deques: everything still waiting to execute, which is
	// what stall detection cares about.
	TotalDepth int
	// MaxDepth is the deepest single shared queue.
	MaxDepth int
	// LocalDepth is the portion of TotalDepth sitting in worker deques.
	LocalDepth int
}

// QueueStats returns instantaneous queue depths, for monitoring and
// backpressure diagnosis.
func (e *Engine) QueueStats() QueueStats {
	cfg := e.cfg.Load()
	st := QueueStats{Queues: len(cfg.queueList)}
	for _, nid := range cfg.queueList {
		d := cfg.queues[nid].Len()
		st.TotalDepth += d
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	for _, s := range *e.slots.Load() {
		d := s.deq.Len()
		st.LocalDepth += d
		st.TotalDepth += d
	}
	return st
}

// SchedStats returns the work-stealing scheduler's cumulative counters,
// summed across every worker slot (live and retired), source loop, and the
// reconfiguration/external emitter group.
func (e *Engine) SchedStats() metrics.SchedSnapshot {
	e.reconfigMu.Lock()
	slots := make([]*wslot, len(e.allSlots))
	copy(slots, e.allSlots)
	e.reconfigMu.Unlock()
	sum := e.extStats.Snapshot()
	for _, s := range slots {
		snap := s.stats.Snapshot()
		sum.Merge(snap)
	}
	for i := range e.srcStats {
		sum.Merge(e.srcStats[i].Snapshot())
	}
	return sum
}

// SchedCounts reports the headline scheduler counters; it exists so
// internal/core can observe scheduler behaviour through a structural
// interface without importing this package.
func (e *Engine) SchedCounts() (local, steals, overflows, injected uint64) {
	s := e.SchedStats()
	return s.LocalPushes, s.Steals, s.Overflows, s.Injected
}
