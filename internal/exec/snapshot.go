package exec

import (
	"fmt"

	"streamelastic/internal/graph"
	"streamelastic/internal/state"
)

// StateBlob is one operator's full state snapshot, keyed by the operator's
// node id in the engine's local graph. The cluster migration executor maps
// node ids through Plan.LocalOf to move blobs between differently-shaped
// plans of the same job graph.
type StateBlob struct {
	Node int
	Data []byte
}

// ExportState captures a full snapshot of every state.Snapshotter operator
// under the engine's pause barrier, so all blobs belong to one point in the
// tuple stream. The returned bytes are private copies; the engine keeps
// running (or stays drained) afterwards. Returns nil once the engine has
// stopped — there is no pause barrier to cut against.
func (e *Engine) ExportState() []StateBlob {
	if e.stop.Load() {
		return nil
	}
	var enc state.Encoder
	var out []StateBlob
	e.reconfigMu.Lock()
	e.pauseAll()
	n := e.g.NumNodes()
	for i := 0; i < n; i++ {
		snap, ok := e.g.Node(graph.NodeID(i)).Op.(state.Snapshotter)
		if !ok {
			continue
		}
		enc.Reset()
		snap.StateSnapshot(&enc, true)
		out = append(out, StateBlob{Node: i, Data: append([]byte(nil), enc.Bytes()...)})
	}
	e.resumeAll()
	e.reconfigMu.Unlock()
	return out
}

// ImportState restores operator state captured by ExportState on a
// predecessor engine. Node ids are local to this engine's graph (the caller
// remaps them when the plans differ). Call before Start.
func (e *Engine) ImportState(blobs []StateBlob) error {
	n := e.g.NumNodes()
	for _, b := range blobs {
		if b.Node < 0 || b.Node >= n {
			return fmt.Errorf("exec: import state: node %d out of range", b.Node)
		}
		snap, ok := e.g.Node(graph.NodeID(b.Node)).Op.(state.Snapshotter)
		if !ok {
			return fmt.Errorf("exec: import state: node %d is not a snapshotter", b.Node)
		}
		if err := snap.StateRestore(state.NewDecoder(b.Data), true); err != nil {
			return fmt.Errorf("exec: import state node %d: %w", b.Node, err)
		}
	}
	return nil
}
