package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// BenchmarkLiveSingleQueue measures live sink throughput of the canonical
// single-queue topology — source -> work (dynamic, one scheduler queue) ->
// sink — with one scheduler thread and zero synthetic compute, so the
// number reported is the cost of the queue crossing itself: clone, enqueue,
// dequeue, dispatch. It uses only the public engine API so the same file
// runs unmodified against older checkouts for before/after comparison.
func BenchmarkLiveSingleQueue(b *testing.B) {
	g := graph.New()
	gen := spl.NewGenerator("src", 256)
	src := g.AddSource(gen, nil)
	cv := spl.NewCostVar(0)
	work := g.AddOperator(spl.NewWork("w", cv), cv)
	if err := g.Connect(src, 0, work, 0, 1); err != nil {
		b.Fatal(err)
	}
	sid := g.AddOperator(spl.NewCountingSink("snk"), nil)
	if err := g.Connect(work, 0, sid, 0, 1); err != nil {
		b.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		b.Fatal(err)
	}

	e, err := New(g, Options{MaxThreads: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	place := make([]bool, g.NumNodes())
	place[1] = true
	if err := e.ApplyPlacement(place); err != nil {
		b.Fatal(err)
	}
	if err := e.SetThreadCount(1); err != nil {
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // warm up
	b.ResetTimer()
	start := e.SinkCount()
	t0 := time.Now()
	target := time.Duration(b.N) * 100 * time.Microsecond
	if target < 200*time.Millisecond {
		target = 200 * time.Millisecond
	}
	time.Sleep(target)
	elapsed := time.Since(t0).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(e.SinkCount()-start)/elapsed, "tuples/s")
}
