package exec

import (
	"fmt"
	"runtime"
	"testing"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// syncSourceStep returns a closure driving one generator batch through an
// all-manual chain on the calling goroutine. With disable=false the batch
// is captured and flushed through the compiled region program; with
// disable=true every Emit delivers tuple-at-a-time through the interpreted
// recursive path. Same graph shape, same tuple traffic — the difference is
// purely the execution strategy, which is what BenchmarkManualChain
// measures.
func syncSourceStep(tb testing.TB, g *graph.Graph, srcBatch int, disable bool) func() {
	tb.Helper()
	e, err := New(g, Options{DisableRegionCompile: disable})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	if !disable {
		if cfg.progs == nil || cfg.progs[0] == nil {
			tb.Fatal("no compiled source program for the all-manual chain")
		}
		em.srcProg = cfg.progs[0]
	}
	gen := g.Node(0).Op.(*spl.Generator)
	gen.Batch = srcBatch
	return func() {
		em.node = 0
		gen.Next(em)
		if len(em.srcBuf) > 0 {
			e.flushSource(em)
		}
	}
}

// benchManualChain measures the manual-region steady state: one source
// batch of `srcBatch` tuples per iteration through `depth` Work stages and
// a CountingSink, everything on the driving goroutine (manual threading —
// no scheduler queues, no workers). tuples/s counts source tuples, so the
// scalar/fused ratio is the per-tuple interpretation overhead the region
// compiler removes: graph lookups, per-tuple supervision and profiler
// checks, and the recursive deliver walk.
func benchManualChain(b *testing.B, depth, srcBatch int, disable bool) {
	g, sink := buildChainB(b, depth, 0, 0)
	step := syncSourceStep(b, g, srcBatch, disable)
	for i := 0; i < 64; i++ {
		step() // warm tuple pool and region scratch buffers
	}
	start := sink.Count()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	moved := sink.Count() - start
	if want := uint64(b.N) * uint64(srcBatch); moved != want {
		b.Fatalf("sink saw %d tuples, want %d", moved, want)
	}
	b.ReportMetric(float64(moved)/b.Elapsed().Seconds(), "tuples/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkManualChain is the BENCH_7 headline comparison: interpreted
// tuple-at-a-time execution versus compiled region programs with batch
// drive, on deep all-manual chains. Compare tuples/s between
// scalar/depth=N and fused/depth=N; the acceptance bar is fused >= 1.5x
// scalar on the deep chain with 0 allocs/op.
func BenchmarkManualChain(b *testing.B) {
	const srcBatch = 64
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"scalar", true}, {"fused", false}} {
		for _, depth := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode.name, depth), func(b *testing.B) {
				benchManualChain(b, depth, srcBatch, mode.disable)
			})
		}
	}
}
