package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// benchChain builds an unbounded pipeline for engine micro-benchmarks.
func benchChain(b *testing.B, workOps int, flops float64) (*graph.Graph, *spl.CountingSink) {
	b.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 64)
	prev := g.AddSource(gen, nil)
	for i := 0; i < workOps; i++ {
		cv := spl.NewCostVar(flops)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			b.Fatal(err)
		}
		prev = id
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		b.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		b.Fatal(err)
	}
	return g, sink
}

// benchThroughput measures live sink throughput under a given placement.
func benchThroughput(b *testing.B, dynamic bool, threads int) {
	b.Helper()
	g, _ := benchChain(b, 8, 100)
	e, err := New(g, Options{MaxThreads: 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	if dynamic {
		place := make([]bool, g.NumNodes())
		for i := 1; i < len(place); i++ {
			place[i] = true
		}
		if err := e.ApplyPlacement(place); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.SetThreadCount(threads); err != nil {
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // warm up
	b.ResetTimer()
	start := e.SinkCount()
	t0 := time.Now()
	// Run for a duration proportional to b.N and report tuples/sec.
	target := time.Duration(b.N) * 100 * time.Microsecond
	if target < 50*time.Millisecond {
		target = 50 * time.Millisecond
	}
	time.Sleep(target)
	elapsed := time.Since(t0).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(e.SinkCount()-start)/elapsed, "tuples/s")
}

func BenchmarkLiveManualThreading(b *testing.B) {
	benchThroughput(b, false, 1)
}

func BenchmarkLiveDynamicThreading2(b *testing.B) {
	benchThroughput(b, true, 2)
}

func BenchmarkLiveDynamicThreading4(b *testing.B) {
	benchThroughput(b, true, 4)
}

// BenchmarkReconfiguration measures the cost of an online placement change
// while the pipeline is under load.
func BenchmarkReconfiguration(b *testing.B) {
	g, _ := benchChain(b, 16, 100)
	e, err := New(g, Options{MaxThreads: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	if err := e.SetThreadCount(2); err != nil {
		b.Fatal(err)
	}
	placements := [2][]bool{
		make([]bool, g.NumNodes()),
		make([]bool, g.NumNodes()),
	}
	for i := 1; i < g.NumNodes(); i += 2 {
		placements[1][i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ApplyPlacement(placements[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThreadResize measures the cost of growing/shrinking the pool.
func BenchmarkThreadResize(b *testing.B) {
	g, _ := benchChain(b, 4, 10)
	e, err := New(g, Options{MaxThreads: 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 1 + i%8
		if err := e.SetThreadCount(n); err != nil {
			b.Fatal(err)
		}
	}
}
