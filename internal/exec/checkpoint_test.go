package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
	"streamelastic/internal/state"
)

// buildCounterGraph is the checkpoint unit-test topology: a bounded keyed
// generator feeding one KeyedCounter into a counting sink. The counter is
// node 1.
func buildCounterGraph(t testing.TB) (*graph.Graph, *spl.KeyedCounter) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = 1
	src := g.AddSource(gen, nil)
	ctr := spl.NewKeyedCounter("ctr", 64, 0)
	cid := g.AddOperator(ctr, nil)
	if err := g.Connect(src, 0, cid, 0, 1); err != nil {
		t.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(cid, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, ctr
}

const ctrNode = 1

func newTestCheckpointer(t testing.TB, opts Options, cfg CheckpointConfig) (*Checkpointer, *spl.KeyedCounter, *Engine) {
	t.Helper()
	g, ctr := buildCounterGraph(t)
	e, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Store == nil {
		cfg.Store = state.NewMemStore()
	}
	return NewCheckpointer(e, cfg), ctr, e
}

func feedKeys(ctr *spl.KeyedCounter, keys ...uint64) {
	for _, k := range keys {
		ctr.Process(0, &spl.Tuple{Key: k}, spl.DiscardEmitter)
	}
}

func TestCheckpointCommitAndLaunchRestore(t *testing.T) {
	store := state.NewMemStore()
	var floor uint64
	wm := uint64(0)
	c, ctr, _ := newTestCheckpointer(t, Options{}, CheckpointConfig{
		Store:       store,
		Watermark:   func() uint64 { return wm },
		CommitFloor: func(w uint64) { floor = w },
	})
	feedKeys(ctr, 1, 2, 3, 3)
	wm = 42
	if !c.CheckpointNow() {
		t.Fatal("first checkpoint did not commit")
	}
	if floor != 42 {
		t.Fatalf("commit floor %d, want 42", floor)
	}
	st := c.Stats()
	if st.Checkpoints != 1 || st.Epoch != 1 || st.Watermark != 42 || st.StatefulOps != 1 {
		t.Fatalf("stats after first commit: %+v", st)
	}

	// A fresh process restores the committed cut at launch.
	c2, ctr2, _ := newTestCheckpointer(t, Options{}, CheckpointConfig{Store: store})
	if err := c2.Restore(); err != nil {
		t.Fatal(err)
	}
	if got := ctr2.Count(3); got != 2 {
		t.Fatalf("restored count(3) = %d, want 2", got)
	}
	if got := ctr2.Count(1); got != 1 {
		t.Fatalf("restored count(1) = %d, want 1", got)
	}
	// The epoch sequence resumes where the previous process stopped.
	if !c2.CheckpointNow() {
		t.Fatal("post-restore checkpoint did not commit")
	}
	if st := c2.Stats(); st.Epoch != 2 {
		t.Fatalf("post-restore epoch %d, want 2", st.Epoch)
	}
}

func TestIncrementalCheckpointCapturesOnlyDirtyKeys(t *testing.T) {
	store := state.NewMemStore()
	c, ctr, _ := newTestCheckpointer(t, Options{}, CheckpointConfig{Store: store})
	for k := uint64(1); k <= 40; k++ {
		feedKeys(ctr, k)
	}
	feedKeys(ctr, 1, 2, 3)
	if !c.CheckpointNow() { // epoch 1, full
		t.Fatal("full checkpoint failed")
	}
	recs, _ := store.Load()
	fullRecs := len(recs)

	// A clean interval commits an empty epoch: no data records appended.
	if !c.CheckpointNow() {
		t.Fatal("clean checkpoint failed")
	}
	if recs, _ = store.Load(); len(recs) != fullRecs {
		t.Fatalf("clean epoch appended records: %d -> %d", fullRecs, len(recs))
	}

	feedKeys(ctr, 9)
	if !c.CheckpointNow() { // epoch 3, incremental
		t.Fatal("incremental checkpoint failed")
	}
	recs, _ = store.Load()
	if len(recs) != fullRecs+1 {
		t.Fatalf("incremental epoch appended %d records, want 1", len(recs)-fullRecs)
	}
	last := recs[len(recs)-1]
	if last.Full || last.Epoch != 3 {
		t.Fatalf("incremental record: full=%v epoch=%d", last.Full, last.Epoch)
	}
	if len(last.Data) >= len(recs[0].Data) {
		t.Fatalf("incremental record (%dB) not smaller than full (%dB)", len(last.Data), len(recs[0].Data))
	}

	// Full + incremental chain restores to the merged state.
	c2, ctr2, _ := newTestCheckpointer(t, Options{}, CheckpointConfig{Store: store})
	if err := c2.Restore(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 2, 3, 9} {
		if ctr2.Count(k) != ctr.Count(k) {
			t.Fatalf("key %d: restored %d, live %d", k, ctr2.Count(k), ctr.Count(k))
		}
	}
}

// TestCheckpointSkippedWhileQuarantined pins the consistency guard: a cut
// taken while a stateful operator is dropping tuples would stamp a
// watermark past input that operator never saw.
func TestCheckpointSkippedWhileQuarantined(t *testing.T) {
	c, ctr, e := newTestCheckpointer(t, Options{PanicBudget: 1}, CheckpointConfig{})
	feedKeys(ctr, 1)
	e.sup.nodes[ctrNode].until.Store(time.Now().Add(time.Hour).UnixNano())
	if c.CheckpointNow() {
		t.Fatal("checkpoint committed while the stateful operator was quarantined")
	}
	if st := c.Stats(); st.Skipped != 1 || st.Checkpoints != 0 {
		t.Fatalf("stats: %+v", st)
	}
	e.sup.nodes[ctrNode].until.Store(0)
	if !c.CheckpointNow() {
		t.Fatal("checkpoint still refused after release")
	}
}

// TestQuarantineRecoveryDropsStaleState is the drop-then-restore
// regression: state mutated after the last committed cut (including by
// tuples half-processed around a panic) must be rolled back on recovery,
// and the transport rewound to the cut's watermark so the gap replays.
func TestQuarantineRecoveryDropsStaleState(t *testing.T) {
	var rewound []uint64
	wm := uint64(0)
	c, ctr, e := newTestCheckpointer(t, Options{PanicBudget: 2, QuarantineBase: time.Millisecond}, CheckpointConfig{
		Watermark: func() uint64 { return wm },
		Rewind:    func(to uint64) { rewound = append(rewound, to) },
	})
	feedKeys(ctr, 7, 7, 8)
	wm = 300
	if !c.CheckpointNow() {
		t.Fatal("checkpoint failed")
	}

	// Post-checkpoint mutations that a recovery must discard.
	feedKeys(ctr, 7, 7, 7, 9)
	if ctr.Count(7) != 5 {
		t.Fatalf("precondition: count(7) = %d, want 5", ctr.Count(7))
	}

	// Exhaust the panic budget to quarantine the counter, then expire the
	// quarantine: the supervisor must park the node on the checkpointer
	// (recoverSentinel) instead of releasing it with stale state.
	now := time.Now()
	e.sup.notePanic(ctrNode, now)
	e.sup.notePanic(ctrNode, now)
	if e.sup.nodes[ctrNode].until.Load() == 0 {
		t.Fatal("counter not quarantined after exhausting the budget")
	}
	e.sup.nodes[ctrNode].until.Store(1) // force expiry
	if !e.sup.quarantined(ctrNode, time.Now().UnixNano()) {
		t.Fatal("expired quarantine released directly: stale state kept")
	}
	if got := e.sup.nodes[ctrNode].until.Load(); got != recoverSentinel {
		t.Fatalf("until = %d, want recoverSentinel", got)
	}

	var node int
	select {
	case node = <-c.recoverCh:
	default:
		t.Fatal("supervisor did not request recovery")
	}
	c.recover([]int{node})

	if got := ctr.Count(7); got != 2 {
		t.Fatalf("count(7) after recovery = %d, want 2 (checkpoint value)", got)
	}
	if got := ctr.Count(9); got != 0 {
		t.Fatalf("count(9) after recovery = %d, want 0", got)
	}
	if len(rewound) != 1 || rewound[0] != 300 {
		t.Fatalf("rewind calls %v, want [300]", rewound)
	}
	if e.sup.nodes[ctrNode].until.Load() != 0 {
		t.Fatal("operator still quarantined after recovery")
	}
	if st := c.Stats(); st.Restores != 1 {
		t.Fatalf("restores = %d, want 1", st.Restores)
	}
}

// TestRecoverBeforeFirstCommitResets pins the zero-epoch path: with
// nothing committed the cut is the stream's beginning, so recovery resets
// state and rewinds to zero — sound because acks were gated at zero.
func TestRecoverBeforeFirstCommitResets(t *testing.T) {
	var rewound []uint64
	c, ctr, _ := newTestCheckpointer(t, Options{PanicBudget: 1}, CheckpointConfig{
		Rewind: func(to uint64) { rewound = append(rewound, to) },
	})
	feedKeys(ctr, 5, 5, 6)
	c.recover([]int{ctrNode})
	if got := ctr.Count(5); got != 0 {
		t.Fatalf("count(5) after zero-epoch recovery = %d, want 0", got)
	}
	if len(rewound) != 1 || rewound[0] != 0 {
		t.Fatalf("rewind calls %v, want [0]", rewound)
	}
}

func TestCheckpointCrashFaultForcesFull(t *testing.T) {
	inj := fault.New(1)
	store := state.NewMemStore()
	c, ctr, _ := newTestCheckpointer(t, Options{Fault: inj}, CheckpointConfig{Store: store})
	feedKeys(ctr, 1, 2)
	if !c.CheckpointNow() { // epoch 1, full
		t.Fatal("baseline checkpoint failed")
	}

	feedKeys(ctr, 3)
	inj.Arm(fault.CkptCrash, 0, fault.Plan{Nth: 1, MaxFires: 1})
	if c.CheckpointNow() {
		t.Fatal("checkpoint committed through a CkptCrash")
	}
	if st := c.Stats(); st.Errors != 1 || st.Epoch != 1 {
		t.Fatalf("stats after crash: %+v", st)
	}
	recs, _ := store.Load()
	for _, r := range recs {
		if r.Epoch > 1 {
			t.Fatalf("uncommitted epoch %d visible after crash", r.Epoch)
		}
	}

	// The crashed epoch drained the dirty sets, so the next checkpoint
	// must be full or key 3 would never be recaptured.
	if !c.CheckpointNow() {
		t.Fatal("post-crash checkpoint failed")
	}
	recs, _ = store.Load()
	last := recs[len(recs)-1]
	if !last.Full {
		t.Fatal("post-crash checkpoint was incremental: dirty keys lost")
	}
	c2, ctr2, _ := newTestCheckpointer(t, Options{}, CheckpointConfig{Store: store})
	if err := c2.Restore(); err != nil {
		t.Fatal(err)
	}
	if ctr2.Count(3) != 1 {
		t.Fatalf("key dirtied in crashed epoch lost: count(3) = %d", ctr2.Count(3))
	}
}

func TestRestoreTornFaultFailsCleanly(t *testing.T) {
	inj := fault.New(2)
	c, ctr, _ := newTestCheckpointer(t, Options{Fault: inj, PanicBudget: 1}, CheckpointConfig{})
	feedKeys(ctr, 1, 2, 3, 4)
	if !c.CheckpointNow() {
		t.Fatal("checkpoint failed")
	}
	inj.Arm(fault.RestoreTorn, 0, fault.Plan{Nth: 1, MaxFires: 1})
	c.recover([]int{ctrNode}) // must not panic
	if st := c.Stats(); st.Errors == 0 {
		t.Fatal("torn restore not counted as an error")
	}
}

// TestStatefulHotPathZeroAllocs pins the non-checkpointing hot path: with
// dirty tracking off, steady-state keyed-state updates allocate nothing.
func TestStatefulHotPathZeroAllocs(t *testing.T) {
	j := spl.NewKeyedJoin("j")
	tup := &spl.Tuple{}
	for k := uint64(0); k < 512; k++ {
		tup.Key, tup.Num1 = k, 1
		j.Process(1, tup, spl.DiscardEmitter)
	}
	k := uint64(0)
	if got := testing.AllocsPerRun(2000, func() {
		tup.Key, tup.Num1 = k&511, 2
		j.Process(1, tup, spl.DiscardEmitter)
		k++
	}); got != 0 {
		t.Fatalf("KeyedJoin build path allocates %.1f/op with tracking off", got)
	}

	ctr := spl.NewKeyedCounter("c", 256, 0)
	for i := uint64(0); i < 1024; i++ {
		tup.Key = i & 63
		ctr.Process(0, tup, spl.DiscardEmitter)
	}
	k = 0
	if got := testing.AllocsPerRun(2000, func() {
		tup.Key = k & 63
		ctr.Process(0, tup, spl.DiscardEmitter)
		k++
	}); got != 0 {
		t.Fatalf("KeyedCounter hot path allocates %.1f/op with tracking off", got)
	}
}

// benchCkptChain is the checkpoint overhead pipeline: keyed generator ->
// KeyedCounter -> sink, live under the scheduler.
func benchCkptChain(b *testing.B) (*graph.Graph, *spl.KeyedCounter) {
	b.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 64)
	gen.Keys = 1 << 10
	src := g.AddSource(gen, nil)
	ctr := spl.NewKeyedCounter("ctr", 4096, 1)
	cid := g.AddOperator(ctr, nil)
	if err := g.Connect(src, 0, cid, 0, 1); err != nil {
		b.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(cid, 0, sid, 0, 1); err != nil {
		b.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		b.Fatal(err)
	}
	return g, ctr
}

// BenchmarkCheckpoint measures live pipeline throughput with checkpointing
// off and at 1s / 100ms intervals against a real file-backed log — the
// overhead sweep recorded in BENCH_8.json.
func BenchmarkCheckpoint(b *testing.B) {
	run := func(b *testing.B, interval time.Duration) {
		g, _ := benchCkptChain(b)
		e, err := New(g, Options{MaxThreads: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		defer e.Stop()
		if interval > 0 {
			log, err := state.OpenFileLog(b.TempDir() + "/bench.ckpt")
			if err != nil {
				b.Fatal(err)
			}
			c := NewCheckpointer(e, CheckpointConfig{Store: log, Interval: interval})
			c.Start()
			defer c.Stop()
		}
		time.Sleep(20 * time.Millisecond) // warm up
		b.ResetTimer()
		start := e.SinkCount()
		t0 := time.Now()
		target := time.Duration(b.N) * 100 * time.Microsecond
		if target < 300*time.Millisecond {
			target = 300 * time.Millisecond
		}
		time.Sleep(target)
		elapsed := time.Since(t0).Seconds()
		b.StopTimer()
		b.ReportMetric(float64(e.SinkCount()-start)/elapsed, "tuples/s")
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("1s", func(b *testing.B) { run(b, time.Second) })
	b.Run("100ms", func(b *testing.B) { run(b, 100*time.Millisecond) })
}
