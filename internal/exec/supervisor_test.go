package exec

import (
	"testing"
	"time"
)

func newTestSupervision(budget int, base, max, decay time.Duration) *supervision {
	return newSupervision(4, Options{
		PanicBudget:    budget,
		QuarantineBase: base,
		QuarantineMax:  max,
		PanicDecay:     decay,
	})
}

func TestSupervisionBudgetTripsQuarantine(t *testing.T) {
	s := newTestSupervision(3, 100*time.Millisecond, time.Second, time.Hour)
	base := time.Unix(0, 0)
	s.notePanic(1, base)
	s.notePanic(1, base.Add(time.Millisecond))
	if s.quarantines.Load() != 0 {
		t.Fatal("quarantine engaged below budget")
	}
	if s.quarantined(1, base.Add(2*time.Millisecond).UnixNano()) {
		t.Fatal("operator quarantined below budget")
	}
	s.notePanic(1, base.Add(2*time.Millisecond))
	if s.quarantines.Load() != 1 {
		t.Fatalf("quarantines = %d after budget exhausted, want 1", s.quarantines.Load())
	}
	if !s.quarantined(1, base.Add(3*time.Millisecond).UnixNano()) {
		t.Fatal("operator not quarantined after budget exhausted")
	}
	// Other operators are unaffected.
	if s.quarantined(0, base.Add(3*time.Millisecond).UnixNano()) {
		t.Fatal("unrelated operator quarantined")
	}
}

func TestSupervisionExponentialBackoffCapped(t *testing.T) {
	base := 10 * time.Millisecond
	max := 35 * time.Millisecond
	s := newTestSupervision(1, base, max, time.Hour)
	now := time.Unix(0, 0)
	wants := []time.Duration{
		10 * time.Millisecond, // round 0
		20 * time.Millisecond, // round 1
		35 * time.Millisecond, // round 2 would be 40ms: capped
		35 * time.Millisecond, // stays at the cap
	}
	for i, want := range wants {
		s.notePanic(2, now)
		until := s.nodes[2].until.Load()
		if got := time.Duration(until - now.UnixNano()); got != want {
			t.Fatalf("quarantine %d lasts %v, want %v", i, got, want)
		}
		// Release by observing the expiry, then advance past it.
		now = time.Unix(0, until).Add(time.Millisecond)
		if s.quarantined(2, now.UnixNano()) {
			t.Fatalf("quarantine %d still active after expiry", i)
		}
	}
}

func TestSupervisionSingleReleasePerEngagement(t *testing.T) {
	s := newTestSupervision(1, 10*time.Millisecond, time.Second, time.Hour)
	now := time.Unix(0, 0)
	s.notePanic(0, now)
	after := now.Add(20 * time.Millisecond).UnixNano()
	// Every post-expiry check agrees the operator is free, but exactly one
	// of them is counted as the release probe.
	for i := 0; i < 5; i++ {
		if s.quarantined(0, after) {
			t.Fatal("operator still quarantined after expiry")
		}
	}
	if got := s.releases.Load(); got != 1 {
		t.Fatalf("releases = %d, want exactly 1 per engagement", got)
	}
}

func TestSupervisionDecayForgivesStrikesThenRounds(t *testing.T) {
	decay := 100 * time.Millisecond
	s := newTestSupervision(2, 10*time.Millisecond, time.Second, decay)
	now := time.Unix(0, 0)
	// Two quick panics: quarantine, round goes to 1.
	s.notePanic(3, now)
	s.notePanic(3, now.Add(time.Millisecond))
	if s.quarantines.Load() != 1 || s.nodes[3].round != 1 {
		t.Fatalf("quarantines=%d round=%d, want 1/1", s.quarantines.Load(), s.nodes[3].round)
	}
	// A long quiet spell forgives the (zero) strikes and then the round,
	// so the next burst starts from a clean slate at the base duration.
	quiet := now.Add(time.Millisecond).Add(3 * decay)
	s.notePanic(3, quiet)
	if s.nodes[3].round != 0 {
		t.Fatalf("round = %d after quiet spell, want 0", s.nodes[3].round)
	}
	if s.nodes[3].strikes != 1 {
		t.Fatalf("strikes = %d after one post-quiet panic, want 1", s.nodes[3].strikes)
	}
	s.notePanic(3, quiet.Add(time.Millisecond))
	until := s.nodes[3].until.Load()
	if got := time.Duration(until - quiet.Add(time.Millisecond).UnixNano()); got != 10*time.Millisecond {
		t.Fatalf("post-decay quarantine lasts %v, want the base 10ms", got)
	}
}

func TestSupervisionActiveCount(t *testing.T) {
	s := newTestSupervision(1, 50*time.Millisecond, time.Second, time.Hour)
	now := time.Unix(0, 0)
	s.notePanic(0, now)
	s.notePanic(2, now)
	if got := s.active(now.Add(time.Millisecond).UnixNano()); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	if got := s.active(now.Add(time.Minute).UnixNano()); got != 0 {
		t.Fatalf("active = %d after expiry, want 0", got)
	}
}
