package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/sim"
	"streamelastic/internal/spl"
)

// measureLive runs the engine under a fixed configuration for window and
// returns the sink throughput.
func measureLive(t *testing.T, g *graph.Graph, place []bool, threads int, window time.Duration) float64 {
	t.Helper()
	e, err := New(g, Options{MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if place != nil {
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SetThreadCount(threads); err != nil {
		t.Fatal(err)
	}
	time.Sleep(window / 4) // warm up
	start := e.SinkCount()
	time.Sleep(window)
	return float64(e.SinkCount()-start) / window.Seconds()
}

// TestSimPredictsLiveOrdering cross-validates the simulated machine against
// the live engine on this host: on a single-CPU machine the dynamic model's
// queue overheads cannot be repaid by parallelism, so manual threading must
// win — and a 1-core simulated machine must predict the same ordering.
func TestSimPredictsLiveOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation timing test skipped in -short mode")
	}
	// Keep the per-operator compute small relative to the per-crossing copy
	// so the queue overhead the test is about stays a meaningful share of
	// the tuple cost; at compute-bound operating points the ordering sinks
	// into measurement noise.
	g := graph.New()
	gen := spl.NewGenerator("src", 1024)
	prev := g.AddSource(gen, spl.NewCostVar(0))
	for i := 0; i < 6; i++ {
		cv := spl.NewCostVar(500)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	snk := g.AddOperator(spl.NewCountingSink("snk"), nil)
	if err := g.Connect(prev, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	allDyn := make([]bool, g.NumNodes())
	for i := 1; i < len(allDyn); i++ {
		allDyn[i] = true
	}

	// Simulated prediction on a 1-core machine.
	se, err := sim.New(g, sim.Xeon176().WithCores(1), sim.WithPayload(1024))
	if err != nil {
		t.Fatal(err)
	}
	simManual := se.Throughput()
	if err := se.ApplyPlacement(allDyn); err != nil {
		t.Fatal(err)
	}
	if err := se.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	simDynamic := se.Throughput()
	if simManual <= simDynamic {
		t.Fatalf("1-core sim predicts dynamic (%v) >= manual (%v); queue overheads missing from the model",
			simDynamic, simManual)
	}

	// Live measurement.
	liveManual := measureLive(t, g, nil, 1, 400*time.Millisecond)
	liveDynamic := measureLive(t, g, allDyn, 2, 400*time.Millisecond)
	if liveManual == 0 || liveDynamic == 0 {
		t.Skip("host too loaded to measure throughput")
	}
	if liveManual < liveDynamic {
		t.Fatalf("live ordering contradicts the model on 1 CPU: manual %v < dynamic %v",
			liveManual, liveDynamic)
	}
}
