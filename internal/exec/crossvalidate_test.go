package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/sim"
	"streamelastic/internal/spl"
)

// measureLive runs the engine under a fixed configuration for window and
// returns the sink throughput. opts lets callers toggle execution-strategy
// knobs (e.g. DisableRegionCompile); MaxThreads defaults to 8.
func measureLive(t *testing.T, g *graph.Graph, place []bool, threads int, window time.Duration, opts Options) float64 {
	t.Helper()
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 8
	}
	e, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if place != nil {
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SetThreadCount(threads); err != nil {
		t.Fatal(err)
	}
	time.Sleep(window / 4) // warm up
	start := e.SinkCount()
	time.Sleep(window)
	return float64(e.SinkCount()-start) / window.Seconds()
}

// TestSimPredictsLiveOrdering cross-validates the simulated machine against
// the live engine on this host: on a single-CPU machine the dynamic model's
// queue overheads cannot be repaid by parallelism, so manual threading must
// win — and a 1-core simulated machine must predict the same ordering.
func TestSimPredictsLiveOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation timing test skipped in -short mode")
	}
	// Keep the per-operator compute small relative to the per-crossing copy
	// so the queue overhead the test is about stays a meaningful share of
	// the tuple cost; at compute-bound operating points the ordering sinks
	// into measurement noise.
	g := graph.New()
	gen := spl.NewGenerator("src", 1024)
	prev := g.AddSource(gen, spl.NewCostVar(0))
	for i := 0; i < 6; i++ {
		cv := spl.NewCostVar(500)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	snk := g.AddOperator(spl.NewCountingSink("snk"), nil)
	if err := g.Connect(prev, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	allDyn := make([]bool, g.NumNodes())
	for i := 1; i < len(allDyn); i++ {
		allDyn[i] = true
	}

	// Simulated prediction on a 1-core machine.
	se, err := sim.New(g, sim.Xeon176().WithCores(1), sim.WithPayload(1024))
	if err != nil {
		t.Fatal(err)
	}
	simManual := se.Throughput()
	if err := se.ApplyPlacement(allDyn); err != nil {
		t.Fatal(err)
	}
	if err := se.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	simDynamic := se.Throughput()
	if simManual <= simDynamic {
		t.Fatalf("1-core sim predicts dynamic (%v) >= manual (%v); queue overheads missing from the model",
			simDynamic, simManual)
	}

	// Live measurement.
	liveManual := measureLive(t, g, nil, 1, 400*time.Millisecond, Options{})
	liveDynamic := measureLive(t, g, allDyn, 2, 400*time.Millisecond, Options{})
	if liveManual == 0 || liveDynamic == 0 {
		t.Skip("host too loaded to measure throughput")
	}
	if liveManual < liveDynamic {
		t.Fatalf("live ordering contradicts the model on 1 CPU: manual %v < dynamic %v",
			liveManual, liveDynamic)
	}
}

// TestLiveFusedNotSlowerThanScalar cross-validates the region compiler's
// whole-system effect: the same all-manual chain, measured live with
// compilation on and off, must show the compiled path at least matching the
// interpreted one. The bar is deliberately loose (0.9x, with a noise skip)
// because this is a wall-clock test on a shared host — BenchmarkManualChain
// is where the real speedup is quantified.
func TestLiveFusedNotSlowerThanScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation timing test skipped in -short mode")
	}
	g := graph.New()
	gen := spl.NewGenerator("src", 256)
	prev := g.AddSource(gen, spl.NewCostVar(0))
	for i := 0; i < 8; i++ {
		cv := spl.NewCostVar(100)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	snk := g.AddOperator(spl.NewCountingSink("snk"), nil)
	if err := g.Connect(prev, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	gen.Batch = 64

	scalar := measureLive(t, g, nil, 1, 400*time.Millisecond, Options{DisableRegionCompile: true})
	fused := measureLive(t, g, nil, 1, 400*time.Millisecond, Options{})
	if scalar == 0 || fused == 0 {
		t.Skip("host too loaded to measure throughput")
	}
	if fused < 0.9*scalar {
		t.Fatalf("compiled path slower than interpreted live: fused %v < 0.9 * scalar %v", fused, scalar)
	}
	t.Logf("live tuples/s: fused %.0f, scalar %.0f (%.2fx)", fused, scalar, fused/scalar)
}
