package exec

import (
	"fmt"
	"testing"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// captureSink records every tuple it receives as a formatted row — values,
// not pointers, since the two paths under comparison pool tuples
// differently. It is deliberately not Recyclable so the harness never
// depends on release timing.
type captureSink struct {
	rows []string
}

func (c *captureSink) Name() string { return "capture" }

func (c *captureSink) Process(port int, t *spl.Tuple, _ spl.Emitter) {
	c.rows = append(c.rows,
		fmt.Sprintf("p%d|%d|%d|%d|%s|%g|%g", port, t.Seq, t.Key, t.Time, t.Text, t.Num1, t.Num2))
}

// chainFromSpec builds src -> (ops from spec) -> captureSink. Each spec
// byte picks one operator; state-bearing operators are freshly constructed
// per call so repeated builds are independent. Chains are capped at six
// operators.
func chainFromSpec(tb testing.TB, spec []byte, tuples uint64, srcBatch int) (*graph.Graph, *captureSink) {
	tb.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 0)
	gen.MaxTuples = tuples
	gen.Batch = srcBatch
	gen.Keys = 4
	gen.Texts = []string{"alpha beta", "gamma", "", "delta epsilon zeta"}
	prev := g.AddSource(gen, nil)
	n := len(spec)
	if n > 6 {
		n = 6
	}
	for i := 0; i < n; i++ {
		var op spl.Operator
		switch spec[i] % 6 {
		case 0:
			op = spl.NewWork(fmt.Sprintf("w%d", i), spl.NewCostVar(float64(spec[i]%16)))
		case 1:
			k := uint64(spec[i]%3 + 2)
			op = spl.NewFilter(fmt.Sprintf("f%d", i), func(t *spl.Tuple) bool { return t.Seq%k != 0 })
		case 2:
			d := float64(spec[i])
			op = spl.NewMap(fmt.Sprintf("m%d", i), func(t *spl.Tuple) *spl.Tuple {
				t.Num1 += d
				t.Num2 = t.Num1 * 0.5
				return t
			})
		case 3:
			op = spl.NewTokenize(fmt.Sprintf("tk%d", i))
		case 4:
			op = spl.NewExpand(fmt.Sprintf("x%d", i), int(spec[i]%3)+1)
		case 5:
			op = spl.NewSample(fmt.Sprintf("s%d", i), int(spec[i]%4)+1)
		}
		id := g.AddOperator(op, nil)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			tb.Fatal(err)
		}
		prev = id
	}
	sink := &captureSink{}
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		tb.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// runSourceHead drives the chain synchronously as a source-headed region:
// all-manual placement, the generator's batches captured and flushed
// through the compiled program (or delivered inline when compilation is
// disabled), exactly mirroring sourceLoop.
func runSourceHead(tb testing.TB, spec []byte, tuples uint64, srcBatch int, disable bool) []string {
	tb.Helper()
	g, sink := chainFromSpec(tb, spec, tuples, srcBatch)
	e, err := New(g, Options{DisableRegionCompile: disable})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	if cfg.progs != nil {
		em.srcProg = cfg.progs[0]
	}
	gen := g.Node(0).Op.(spl.Source)
	for {
		em.node = 0
		more := gen.Next(em)
		if len(em.srcBuf) > 0 {
			e.flushSource(em)
		}
		if !more {
			break
		}
	}
	return sink.rows
}

// runQueueHead drives the chain synchronously as a queue-headed region: a
// scheduler queue in front of the first operator, drained with batch pops
// through executeBatch — the worker-loop shape.
func runQueueHead(tb testing.TB, spec []byte, tuples uint64, srcBatch int, disable bool) []string {
	tb.Helper()
	g, sink := chainFromSpec(tb, spec, tuples, srcBatch)
	e, err := New(g, Options{DisableRegionCompile: disable})
	if err != nil {
		tb.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1] = true
	if err := e.ApplyPlacement(place); err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	gen := g.Node(0).Op.(spl.Source)
	q := cfg.queues[1]
	batch := make([]item, workerBatch)
	for {
		em.node = 0
		more := gen.Next(em)
		for {
			k := q.TryPopN(batch)
			if k == 0 {
				break
			}
			e.executeBatch(em, 1, batch[:k])
		}
		if !more {
			break
		}
	}
	return sink.rows
}

// FuzzBatchEquivalence is the compiled path's correctness oracle: for a
// random operator chain and input stream, the batch-compiled execution must
// produce byte-identical output — same tuple values, same count, same order
// at the sink — as the interpreted tuple-at-a-time path, in both region
// shapes (source-headed and queue-headed).
func FuzzBatchEquivalence(f *testing.F) {
	f.Add([]byte{0}, uint8(10), uint8(1))
	f.Add([]byte{0, 2, 1}, uint8(40), uint8(8))
	f.Add([]byte{3, 4, 5}, uint8(25), uint8(4))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(64), uint8(16))
	f.Add([]byte{4, 4, 2}, uint8(12), uint8(3))
	f.Add([]byte{5, 3, 0, 2}, uint8(50), uint8(7))
	f.Add([]byte{}, uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, spec []byte, n uint8, batch uint8) {
		tuples := uint64(n%64) + 1
		srcBatch := int(batch%16) + 1
		for _, shape := range []struct {
			name string
			run  func(testing.TB, []byte, uint64, int, bool) []string
		}{
			{"source-head", runSourceHead},
			{"queue-head", runQueueHead},
		} {
			fused := shape.run(t, spec, tuples, srcBatch, false)
			scalar := shape.run(t, spec, tuples, srcBatch, true)
			if len(fused) != len(scalar) {
				t.Fatalf("%s: fused emitted %d rows, scalar %d (spec=%v tuples=%d batch=%d)",
					shape.name, len(fused), len(scalar), spec, tuples, srcBatch)
			}
			for i := range fused {
				if fused[i] != scalar[i] {
					t.Fatalf("%s: row %d differs (spec=%v tuples=%d batch=%d):\nfused:  %s\nscalar: %s",
						shape.name, i, spec, tuples, srcBatch, fused[i], scalar[i])
				}
			}
		}
	})
}

// TestBatchEquivalenceSeeds runs the fuzz seed corpus as a plain test so
// `go test` covers the equivalence oracle without -fuzz.
func TestBatchEquivalenceSeeds(t *testing.T) {
	seeds := []struct {
		spec  []byte
		n     uint8
		batch uint8
	}{
		{[]byte{0}, 10, 1},
		{[]byte{0, 2, 1}, 40, 8},
		{[]byte{3, 4, 5}, 25, 4},
		{[]byte{1, 1, 1, 1, 1, 1}, 64, 16},
		{[]byte{4, 4, 2}, 12, 3},
		{[]byte{5, 3, 0, 2}, 50, 7},
		{nil, 5, 2},
	}
	for _, s := range seeds {
		tuples := uint64(s.n%64) + 1
		srcBatch := int(s.batch%16) + 1
		for _, shape := range []struct {
			name string
			run  func(testing.TB, []byte, uint64, int, bool) []string
		}{
			{"source-head", runSourceHead},
			{"queue-head", runQueueHead},
		} {
			fused := shape.run(t, s.spec, tuples, srcBatch, false)
			scalar := shape.run(t, s.spec, tuples, srcBatch, true)
			if len(fused) != len(scalar) {
				t.Fatalf("%s: fused %d rows, scalar %d (spec=%v)", shape.name, len(fused), len(scalar), s.spec)
			}
			for i := range fused {
				if fused[i] != scalar[i] {
					t.Fatalf("%s: row %d differs (spec=%v):\nfused:  %s\nscalar: %s",
						shape.name, i, s.spec, fused[i], scalar[i])
				}
			}
		}
	}
}
