package exec

import (
	"sync"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

func TestLatencyTracking(t *testing.T) {
	const n = 1000
	g, sink := buildChain(t, 3, n, 100)
	e := startEngine(t, g, Options{TrackLatency: true})
	waitCount(t, sink, n, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for e.Latency().Count < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	snap := e.Latency()
	if snap.Count != n {
		t.Fatalf("latency samples = %d, want %d", snap.Count, n)
	}
	if snap.Mean <= 0 || snap.P99 <= 0 {
		t.Fatalf("latency snapshot not populated: %+v", snap)
	}
	if !(snap.P50 <= snap.P95 && snap.P95 <= snap.P99) {
		t.Fatalf("quantiles not ordered: %+v", snap)
	}
	// End-to-end latency on an in-process pipeline must be far below a
	// second.
	if snap.P99 > 5*time.Second {
		t.Fatalf("implausible p99 latency %v", snap.P99)
	}
}

func TestLatencyDisabledByDefault(t *testing.T) {
	const n = 200
	g, sink := buildChain(t, 2, n, 10)
	e := startEngine(t, g, Options{})
	waitCount(t, sink, n, 10*time.Second)
	if got := e.Latency().Count; got != 0 {
		t.Fatalf("latency recorded %d samples with tracking disabled", got)
	}
}

// panicOp panics on every k-th tuple.
type panicOp struct {
	name  string
	every uint64
}

func (p *panicOp) Name() string { return p.name }

func (p *panicOp) Process(_ int, t *spl.Tuple, out spl.Emitter) {
	if p.every > 0 && t.Seq%p.every == 0 {
		panic("injected operator failure")
	}
	out.Emit(0, t)
}

func TestOperatorPanicContained(t *testing.T) {
	const n = 1000
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = n
	src := g.AddSource(gen, nil)
	bad := g.AddOperator(&panicOp{name: "flaky", every: 10}, nil)
	sink := spl.NewCountingSink("snk")
	snk := g.AddOperator(sink, nil)
	if err := g.Connect(src, 0, bad, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(bad, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{})
	// Every 10th tuple panics (seq 0, 10, ...): 900 survive.
	waitCount(t, sink, 900, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for e.OperatorPanics() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.OperatorPanics(); got != 100 {
		t.Fatalf("operator panics = %d, want 100", got)
	}
	if got := sink.Count(); got != 900 {
		t.Fatalf("sink received %d, want 900", got)
	}
}

func TestOperatorPanicContainedUnderDynamicModel(t *testing.T) {
	const n = 1000
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = n
	src := g.AddSource(gen, nil)
	bad := g.AddOperator(&panicOp{name: "flaky", every: 4}, nil)
	sink := spl.NewCountingSink("snk")
	snk := g.AddOperator(sink, nil)
	if err := g.Connect(src, 0, bad, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(bad, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{})
	place := make([]bool, g.NumNodes())
	place[bad] = true
	place[snk] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, 750, 15*time.Second)
	if got := sink.Count(); got != 750 {
		t.Fatalf("sink received %d, want 750", got)
	}
}

// TestReorderRestoresOrderUnderDynamicModel runs a pipeline whose middle
// stage executes under the dynamic model with several threads (which may
// reorder tuples) followed by a Reorder operator, and asserts the sink
// observes strictly ascending sequence numbers.
func TestReorderRestoresOrderUnderDynamicModel(t *testing.T) {
	const n = 3000
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = n
	src := g.AddSource(gen, nil)
	cv := spl.NewCostVar(500)
	work := g.AddOperator(spl.NewWork("w", cv), cv)
	reorder := g.AddOperator(spl.NewReorder("seq", 0, 4096), nil)
	var mu sync.Mutex
	var seqs []uint64
	sink := spl.NewMap("check", func(tp *spl.Tuple) *spl.Tuple {
		mu.Lock()
		seqs = append(seqs, tp.Seq)
		mu.Unlock()
		return nil
	})
	snk := g.AddOperator(sink, nil)
	for _, c := range [][2]graph.NodeID{{src, work}, {work, reorder}, {reorder, snk}} {
		if err := g.Connect(c[0], 0, c[1], 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{})
	place := make([]bool, g.NumNodes())
	place[work] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := len(seqs)
		mu.Unlock()
		if got >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("sequence violated at %d: got %d", i, s)
		}
	}
}

// TestLivePhaseChangeReadaptation is the live-engine counterpart of the
// paper's Fig. 13: after the coordinator settles, the workload's operator
// costs shift heavily; the coordinator must detect the change and re-adapt
// while real tuples keep flowing.
func TestLivePhaseChangeReadaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("live adaptation test skipped in -short mode")
	}
	g := graph.New()
	gen := spl.NewGenerator("src", 64)
	src := g.AddSource(gen, nil)
	prev := src
	costs := make([]*spl.CostVar, 0, 6)
	for i := 0; i < 6; i++ {
		cv := spl.NewCostVar(2_000)
		costs = append(costs, cv)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	snk := g.AddOperator(spl.NewCountingSink("snk"), nil)
	if err := g.Connect(prev, 0, snk, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{AdaptPeriod: 50 * time.Millisecond, MaxThreads: 8})
	cfg := core.DefaultConfig()
	cfg.MaxThreads = 8
	coord, err := core.NewCoordinator(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := coord.RunUntilSettled(600); err != nil || !ok {
		t.Fatalf("initial live settle failed: %v", err)
	}
	// Phase change: every stage becomes 50x heavier.
	for _, cv := range costs {
		cv.Set(100_000)
	}
	left, resettled := false, false
	for i := 0; i < 600; i++ {
		settled, err := coord.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !settled {
			left = true
		}
		if left && settled {
			resettled = true
			break
		}
	}
	if !left {
		t.Fatal("live workload change not detected")
	}
	if !resettled {
		t.Fatal("live re-adaptation did not settle")
	}
}
