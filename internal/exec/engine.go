// Package exec implements the live engine: a goroutine-based processing
// element that executes an operator graph under the two threading models of
// the paper. Source operators run on dedicated operator goroutines; under
// the manual model downstream operators execute inline on the emitting
// goroutine, and under the dynamic model a scheduler queue is placed in
// front of the operator and a pool of scheduler goroutines pulls tuples
// from any queue. Placement and pool size are reconfigurable online, which
// is the control surface the elastic controllers in internal/core drive.
//
// The hot path is engineered to be allocation-free in the steady state:
// tuples and payload buffers crossing scheduler queues come from the pools
// in internal/spl (queue crossings clone from the pool and release the
// original; recyclable sinks release the final copy), emitters are reused
// per dispatch loop, and workers drain queues in batches. Idle workers park
// on a condition variable consulted by producers instead of sleep-polling.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// pushSpinLimit bounds how long a producer spins on a full scheduler queue
// before falling back to inline execution.
const pushSpinLimit = 256

// workerBatch is how many tuples a worker drains from one queue per visit.
// Batching amortizes the queue-cursor CAS, the config load, and the
// profiler Enter/Leave transitions across the whole run.
const workerBatch = 32

// idleSpinLimit is how many empty scans a worker tolerates (yielding
// between scans) before parking on the idle condition variable.
const idleSpinLimit = 16

// item is one queued tuple delivery.
type item struct {
	port int
	t    *spl.Tuple
}

// engineConfig is the immutable runtime configuration workers snapshot once
// per dispatch. Reconfiguration swaps in a new one while all loops are
// parked.
type engineConfig struct {
	placement []bool
	queues    []*queue.MPMC[item] // indexed by node id; nil when manual
	queueList []graph.NodeID      // nodes that have queues, in id order
}

// Options configure a live engine.
type Options struct {
	// MaxThreads caps the scheduler pool (default 64).
	MaxThreads int
	// QueueCapacity is the per-queue capacity, a power of two (default 1024).
	QueueCapacity int
	// AdaptPeriod is how long Observe measures (default 100ms; the paper
	// uses 5s, which is far longer than needed for synthetic workloads).
	AdaptPeriod time.Duration
	// ProfilePeriod is the cost-profiler sampling period (default 1ms).
	ProfilePeriod time.Duration
	// TrackLatency stamps every source-emitted tuple's Time attribute with
	// the wall clock and records sink-arrival latency in a histogram.
	// Leave it off when operators use Time as an application event time.
	TrackLatency bool
	// Fault is an optional fault injector consulted on the operator hot
	// path; nil (the default) costs one pointer check per dispatch.
	Fault *fault.Injector
	// FaultSiteBase offsets this engine's node ids into the injector's site
	// namespace (fault.OpSite of the owning PE), so one injector can target
	// operators across PEs without collisions.
	FaultSiteBase int
	// PanicBudget enables operator supervision when > 0: an operator whose
	// recovered panics exhaust the budget is quarantined — its input drops
	// and counts instead of executing — for an exponentially growing
	// timeout, then probed back in. Clean running decays the history.
	PanicBudget int
	// QuarantineBase/QuarantineMax bound the quarantine timeout's
	// exponential growth (defaults 100ms / 5s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// PanicDecay is the clean-run interval that forgives one strike or
	// backoff round (default 1s).
	PanicDecay time.Duration
}

func (o *Options) setDefaults() {
	if o.MaxThreads == 0 {
		o.MaxThreads = 64
	}
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 1024
	}
	if o.AdaptPeriod == 0 {
		o.AdaptPeriod = 100 * time.Millisecond
	}
	if o.ProfilePeriod == 0 {
		o.ProfilePeriod = time.Millisecond
	}
	if o.QuarantineBase <= 0 {
		o.QuarantineBase = 100 * time.Millisecond
	}
	if o.QuarantineMax < o.QuarantineBase {
		o.QuarantineMax = 5 * time.Second
	}
	if o.QuarantineMax < o.QuarantineBase {
		o.QuarantineMax = o.QuarantineBase
	}
	if o.PanicDecay <= 0 {
		o.PanicDecay = time.Second
	}
}

// Engine executes a graph with elastic threading. Create with New, launch
// with Start, and always Stop it to release its goroutines.
type Engine struct {
	g    *graph.Graph
	opts Options

	outByPort [][][]graph.Edge // node -> port -> edges
	isSink    []bool
	recycle   []bool        // sink whose operator opts into tuple recycling
	statefulM []*sync.Mutex // per-node lock for Stateful operators

	cfg atomic.Pointer[engineConfig]

	meter      *metrics.Meter
	profiler   *metrics.Profiler
	reconfigTS *metrics.ThreadState
	latency    metrics.Histogram
	isSource   []bool
	opPanics   atomic.Uint64
	sup        *supervision // nil unless Options.PanicBudget > 0

	// Pause/park machinery for online reconfiguration.
	mu       sync.Mutex
	cond     *sync.Cond
	pauseReq atomic.Bool
	parked   int
	loops    int

	// Idle-worker parking. Producers consult waiters after every enqueue
	// and hand out wake tokens (idleWakes, guarded by idleMu); workers with
	// nothing to scan park on idleCond instead of sleep-polling, so an idle
	// pool costs no CPU and wakes within a scheduler hop of a push.
	idleMu    sync.Mutex
	idleCond  *sync.Cond
	idleWakes int
	waiters   atomic.Int32

	reconfigMu sync.Mutex // serializes ApplyPlacement/SetThreadCount

	stop    atomic.Bool
	drain   atomic.Bool
	wg      sync.WaitGroup
	workers []*worker
	started bool
	start   time.Time
}

// worker is one scheduler goroutine.
type worker struct {
	id   int
	quit chan struct{}
}

// New validates the graph (finalized, every node has an operator, sources
// implement spl.Source) and returns an engine with all operators manual and
// one scheduler thread configured.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	opts.setDefaults()
	if !g.Finalized() {
		return nil, errors.New("exec: graph not finalized")
	}
	if opts.QueueCapacity < 2 || opts.QueueCapacity&(opts.QueueCapacity-1) != 0 {
		return nil, fmt.Errorf("exec: queue capacity %d is not a power of two", opts.QueueCapacity)
	}
	n := g.NumNodes()
	e := &Engine{
		g:         g,
		opts:      opts,
		outByPort: make([][][]graph.Edge, n),
		isSink:    make([]bool, n),
		recycle:   make([]bool, n),
		isSource:  make([]bool, n),
		statefulM: make([]*sync.Mutex, n),
		meter:     metrics.NewMeter(time.Now()),
		profiler:  metrics.NewProfiler(n),
	}
	e.cond = sync.NewCond(&e.mu)
	e.idleCond = sync.NewCond(&e.idleMu)
	e.reconfigTS = e.profiler.Register()
	for i := 0; i < n; i++ {
		nd := g.Node(graph.NodeID(i))
		if nd.Op == nil {
			return nil, fmt.Errorf("exec: node %d has no operator", i)
		}
		if nd.Source {
			if _, ok := nd.Op.(spl.Source); !ok {
				return nil, fmt.Errorf("exec: source node %d operator %q does not implement spl.Source", i, nd.Op.Name())
			}
		}
		if _, ok := nd.Op.(spl.Stateful); ok {
			e.statefulM[i] = &sync.Mutex{}
		}
		maxPort := -1
		for _, eg := range nd.Out {
			if eg.FromPort > maxPort {
				maxPort = eg.FromPort
			}
		}
		ports := make([][]graph.Edge, maxPort+1)
		for _, eg := range nd.Out {
			ports[eg.FromPort] = append(ports[eg.FromPort], eg)
		}
		e.outByPort[i] = ports
		e.isSink[i] = len(nd.Out) == 0
		if _, ok := nd.Op.(spl.Recyclable); ok {
			e.recycle[i] = e.isSink[i]
		}
		e.isSource[i] = nd.Source
	}
	if opts.PanicBudget > 0 {
		e.sup = newSupervision(n, opts)
	}
	cfg, err := e.buildConfig(make([]bool, n), nil)
	if err != nil {
		return nil, err
	}
	e.cfg.Store(cfg)
	return e, nil
}

// buildConfig assembles a new engineConfig, reusing queues from prev for
// nodes that stay dynamic so in-flight tuples survive reconfiguration.
func (e *Engine) buildConfig(placement []bool, prev *engineConfig) (*engineConfig, error) {
	n := e.g.NumNodes()
	cfg := &engineConfig{
		placement: make([]bool, n),
		queues:    make([]*queue.MPMC[item], n),
	}
	copy(cfg.placement, placement)
	for i := 0; i < n; i++ {
		if e.g.Node(graph.NodeID(i)).Source {
			cfg.placement[i] = false
		}
		if !cfg.placement[i] {
			continue
		}
		if prev != nil && prev.queues[i] != nil {
			cfg.queues[i] = prev.queues[i]
		} else {
			q, err := queue.NewMPMC[item](e.opts.QueueCapacity)
			if err != nil {
				return nil, fmt.Errorf("exec: queue for node %d: %w", i, err)
			}
			cfg.queues[i] = q
		}
		cfg.queueList = append(cfg.queueList, graph.NodeID(i))
	}
	return cfg, nil
}

// Start launches the source operator threads, the initial scheduler pool
// and the profiler. The context bounds the profiler only; use Stop to shut
// the engine down.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("exec: engine already started")
	}
	e.started = true
	e.start = time.Now()
	e.mu.Unlock()

	e.meter.Reset(time.Now())
	e.profiler.Start(ctx, e.opts.ProfilePeriod)
	for _, s := range e.g.Sources() {
		e.wg.Add(1)
		go e.sourceLoop(s)
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	// Keep any pool size configured before Start (for example by a
	// coordinator constructed against this engine); default to one thread.
	if len(e.workers) == 0 {
		e.setWorkersLocked(1)
	}
	return nil
}

// Stop terminates all goroutines and waits for them to exit. It is safe to
// call more than once.
func (e *Engine) Stop() {
	if e.stop.Swap(true) {
		e.wg.Wait()
		return
	}
	e.mu.Lock()
	e.pauseReq.Store(false)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wakeAllIdle()
	e.wg.Wait()
	e.profiler.Stop()
}

// enterLoop registers a running dispatch loop for the pause barrier.
func (e *Engine) enterLoop() {
	e.mu.Lock()
	e.loops++
	e.mu.Unlock()
}

// exitLoop unregisters a dispatch loop.
func (e *Engine) exitLoop() {
	e.mu.Lock()
	e.loops--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// maybePark blocks while a reconfiguration is in progress. Loops call it
// between dispatches, never mid-tuple.
func (e *Engine) maybePark() {
	if !e.pauseReq.Load() {
		return
	}
	e.mu.Lock()
	e.parked++
	e.cond.Broadcast()
	for e.pauseReq.Load() && !e.stop.Load() {
		e.cond.Wait()
	}
	e.parked--
	e.mu.Unlock()
}

// pauseAll requests a pause and waits until every dispatch loop is parked.
// The caller must hold reconfigMu and must call resumeAll afterwards.
func (e *Engine) pauseAll() {
	e.pauseReq.Store(true)
	// Idle-parked workers must wake to reach the pause barrier.
	e.wakeAllIdle()
	e.mu.Lock()
	for e.parked < e.loops && !e.stop.Load() {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// resumeAll releases parked loops.
func (e *Engine) resumeAll() {
	e.pauseReq.Store(false)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wakeWorkers hands out up to n idle-wake tokens, capped by the number of
// currently parked workers. Producers call it after every enqueue; with no
// parked workers it is a single atomic load.
func (e *Engine) wakeWorkers(n int) {
	w := int(e.waiters.Load())
	if w == 0 {
		return
	}
	if n > w {
		n = w
	}
	// Signal under idleMu: a worker between its condition check and Wait
	// holds the lock, so a wake issued here cannot slip past it.
	e.idleMu.Lock()
	e.idleWakes += n
	if n == 1 {
		e.idleCond.Signal()
	} else {
		e.idleCond.Broadcast()
	}
	e.idleMu.Unlock()
}

// wakeAllIdle wakes every idle-parked worker without issuing wake tokens;
// used by shutdown, pause, and pool-shrink paths whose wake conditions the
// workers re-check themselves.
func (e *Engine) wakeAllIdle() {
	e.idleMu.Lock()
	e.idleCond.Broadcast()
	e.idleMu.Unlock()
}

// chanClosed reports whether the close-only channel ch has been closed.
func chanClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// parkIdle blocks the worker until a producer hands it a wake token or the
// engine needs it elsewhere (pause, shutdown, pool shrink). Parked workers
// cost no CPU, and a push wakes one within a scheduler hop — well under the
// 50µs floor of the sleep-poll this replaces.
func (e *Engine) parkIdle(w *worker, cfg *engineConfig) {
	e.waiters.Add(1)
	// Rescan after publishing the waiter count: a producer that enqueued
	// before observing the waiter skipped its wake, so the push must be
	// found here. (Producers enqueue before loading waiters; workers
	// publish the waiter before scanning — one side always sees the other.)
	for _, nid := range cfg.queueList {
		if cfg.queues[nid].Len() > 0 {
			e.waiters.Add(-1)
			return
		}
	}
	e.idleMu.Lock()
	for e.idleWakes == 0 && !e.stop.Load() && !e.pauseReq.Load() && !chanClosed(w.quit) {
		e.idleCond.Wait()
	}
	if e.idleWakes > 0 {
		e.idleWakes--
	}
	e.idleMu.Unlock()
	e.waiters.Add(-1)
}

// sourceLoop drives one source operator on its own goroutine.
func (e *Engine) sourceLoop(id graph.NodeID) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	src := e.g.Node(id).Op.(spl.Source)
	_, exempt := e.g.Node(id).Op.(spl.DrainExempt)
	draining := func() bool { return e.drain.Load() && !exempt }
	em := &emitter{e: e, ts: ts, node: id}
	for !e.stop.Load() && !draining() {
		e.maybePark()
		if e.stop.Load() || draining() {
			return
		}
		em.cfg = e.cfg.Load()
		em.node = id
		ts.Enter(int(id))
		more := src.Next(em)
		ts.Leave()
		if !more {
			return
		}
	}
}

// workerLoop is one scheduler thread: it scans the scheduler queues for
// work and drains up to workerBatch tuples from the first non-empty queue
// it finds, executing the owning operator for each. The scan starts from a
// rotating position so workers spread across queues. A worker that finds
// nothing yields for a few scans and then parks until a producer wakes it.
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	em := &emitter{e: e, ts: ts}
	batch := make([]item, workerBatch)
	rot := w.id
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		if chanClosed(w.quit) {
			return
		}
		e.maybePark()
		cfg := e.cfg.Load()
		em.cfg = cfg
		n := len(cfg.queueList)
		worked := false
		for i := 0; i < n; i++ {
			nid := cfg.queueList[(rot+i)%n]
			if k := cfg.queues[nid].TryPopN(batch); k > 0 {
				rot = (rot + i) % n
				e.executeBatch(em, nid, batch[:k])
				worked = true
				break
			}
		}
		if worked {
			idle = 0
			continue
		}
		rot++
		idle++
		if idle < idleSpinLimit {
			runtime.Gosched()
			continue
		}
		e.parkIdle(w, cfg)
	}
}

// execute runs operator node on tuple t, updating the profiler state and
// the sink meter.
func (e *Engine) execute(em *emitter, node graph.NodeID, port int, t *spl.Tuple) {
	if e.sup != nil && e.sup.quarantined(int(node), time.Now().UnixNano()) {
		// The tuple is exclusively ours here (queue crossings and fan-out
		// clone), so a quarantine drop returns it to the pool.
		e.sup.drops.Add(1)
		t.Release()
		return
	}
	ts := em.ts
	ts.Enter(int(node))
	ok := e.process(em, e.g.Node(node), node, port, t)
	ts.Leave()
	if e.isSink[node] {
		e.meter.Add(1)
		e.finishSink(node, t, ok)
	}
}

// executeBatch runs operator node on a batch of tuples drained from its
// scheduler queue, entering the profiler state once for the whole batch and
// metering sinks with a single atomic add.
func (e *Engine) executeBatch(em *emitter, node graph.NodeID, items []item) {
	if e.sup != nil && e.sup.quarantined(int(node), time.Now().UnixNano()) {
		e.sup.drops.Add(uint64(len(items)))
		for i := range items {
			items[i].t.Release()
		}
		return
	}
	nd := e.g.Node(node)
	ts := em.ts
	ts.Enter(int(node))
	if sink := e.isSink[node]; sink {
		for i := range items {
			ok := e.process(em, nd, node, items[i].port, items[i].t)
			e.finishSink(node, items[i].t, ok)
		}
		ts.Leave()
		e.meter.Add(uint64(len(items)))
		return
	}
	for i := range items {
		e.process(em, nd, node, items[i].port, items[i].t)
	}
	ts.Leave()
}

// finishSink records sink-side latency and recycles the tuple when the sink
// operator guarantees it retains nothing. ok is false when the operator
// panicked, in which case the tuple's state is unknown and it is left to
// the garbage collector.
func (e *Engine) finishSink(node graph.NodeID, t *spl.Tuple, ok bool) {
	if e.opts.TrackLatency && t.Time > 0 {
		e.latency.Record(time.Duration(time.Now().UnixNano() - t.Time))
	}
	if ok && e.recycle[node] {
		t.Release()
	}
}

// process invokes the operator with the loop's reusable emitter pointed at
// node. A panicking operator loses its tuple but must not kill the
// scheduler thread, so panics are contained and counted; ok reports whether
// the invocation completed normally.
func (e *Engine) process(em *emitter, nd *graph.Node, node graph.NodeID, port int, t *spl.Tuple) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.opPanics.Add(1)
			if e.sup != nil {
				e.sup.notePanic(int(node), time.Now())
			}
			// The panic may have unwound through nested inline execution,
			// leaving the profiler state and the emitter pointed at a
			// downstream operator; restore both.
			em.node = node
			em.ts.Enter(int(node))
		}
	}()
	// Chaos hooks fire inside the recover scope, so an injected panic takes
	// the exact path a real operator panic takes.
	if e.inj() != nil {
		site := e.opts.FaultSiteBase + int(node)
		if d := e.opts.Fault.FireDelay(fault.OpSlow, site); d > 0 {
			time.Sleep(d)
		}
		if e.opts.Fault.Fire(fault.OpPanic, site) {
			panic(fmt.Sprintf("exec: injected panic in operator %q", nd.Op.Name()))
		}
	}
	if m := e.statefulM[node]; m != nil {
		m.Lock()
		defer m.Unlock()
	}
	em.node = node
	nd.Op.Process(port, t, em)
	return true
}

// inj returns the configured fault injector (nil for production engines).
func (e *Engine) inj() *fault.Injector { return e.opts.Fault }

// emitter routes an operator's output tuples: queued (with a pooled tuple
// copy) for dynamic consumers, inline execution for manual ones. One
// emitter is allocated per dispatch loop and reused for every dispatch; its
// cfg is refreshed at each loop iteration and its node tracks the operator
// currently executing on the loop's goroutine.
type emitter struct {
	e    *Engine
	cfg  *engineConfig
	ts   *metrics.ThreadState
	node graph.NodeID
}

var _ spl.Emitter = (*emitter)(nil)

// Emit implements spl.Emitter. Because the emitter is shared down inline
// execution chains, Emit snapshots the emitting node on entry and restores
// the emitter and the profiler state once after the last edge — and only
// when an inline delivery actually clobbered them.
func (em *emitter) Emit(port int, t *spl.Tuple) {
	node := em.node
	if em.e.opts.TrackLatency && em.e.isSource[node] {
		t.Time = time.Now().UnixNano()
	}
	ports := em.e.outByPort[node]
	if port < 0 || port >= len(ports) {
		return // no consumers on this port
	}
	edges := ports[port]
	inlined := false
	for i, eg := range edges {
		// Fan-out: every consumer beyond the last gets its own copy so
		// consumers cannot observe each other's mutations; deliver clones
		// queued deliveries itself, so only inline ones pre-copy here.
		if em.e.deliver(em, eg.To, eg.ToPort, t, i == len(edges)-1) {
			inlined = true
		}
	}
	if inlined {
		em.node = node
		em.ts.Enter(int(node))
	}
}

// deliver hands a tuple to node. Under the dynamic model it reserves a
// queue cell first and clones the tuple only once the enqueue is known to
// succeed (the clone is the paper's copy overhead), then recycles the
// original when it owns it. Under the manual model it executes the operator
// inline. owned reports whether the callee may consume t; when false (a
// fan-out edge before the last) the tuple is cloned for any consuming path.
// deliver reports whether it executed operators inline on the calling
// goroutine.
func (e *Engine) deliver(em *emitter, node graph.NodeID, port int, t *spl.Tuple, owned bool) bool {
	cfg := em.cfg
	if cfg.placement[node] {
		q := cfg.queues[node]
		for spins := 0; ; spins++ {
			if s, ok := q.TryReservePush(); ok {
				s.Commit(item{port: port, t: t.Clone()})
				if owned {
					t.Release()
				}
				e.wakeWorkers(1)
				return false
			}
			if e.stop.Load() {
				return false
			}
			if e.pauseReq.Load() || spins >= pushSpinLimit {
				// Execute inline instead of spinning: either a
				// reconfiguration is waiting for us to park, or the queue
				// has stayed full — and with every worker potentially
				// blocked as a producer on a full downstream queue,
				// waiting indefinitely would deadlock the pipeline. The
				// tuple jumps the queue, trading strict FIFO order for
				// liveness. No clone was made, so no copy work is wasted.
				break
			}
			runtime.Gosched()
		}
	}
	tt := t
	if !owned {
		tt = t.Clone()
	}
	e.execute(em, node, port, tt)
	return true
}
