// Package exec implements the live engine: a goroutine-based processing
// element that executes an operator graph under the two threading models of
// the paper. Source operators run on dedicated operator goroutines; under
// the manual model downstream operators execute inline on the emitting
// goroutine, and under the dynamic model a scheduler queue is placed in
// front of the operator and a pool of scheduler goroutines pulls tuples
// from any queue. Placement and pool size are reconfigurable online, which
// is the control surface the elastic controllers in internal/core drive.
//
// The hot path is engineered to be allocation-free in the steady state:
// tuples and payload buffers crossing scheduler queues come from the pools
// in internal/spl (queue crossings clone from the pool and release the
// original; recyclable sinks release the final copy), emitters are reused
// per dispatch loop, and workers drain queues in batches. Idle workers park
// on sharded condition variables consulted by producers instead of
// sleep-polling.
//
// Scheduling is work stealing (unless Options.DisableWorkStealing): each
// worker owns a bounded deque, a worker emitting to a dynamic operator
// pushes onto its own deque (emit affinity — no shared-queue CAS, the tuple
// stays cache-hot), and a worker looks for work local-first, then steals
// half a random victim's deque, then falls back to the shared MPMC queues,
// which remain the injection path for sources, imports, reconfiguration
// drains, and deque overflow.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/obs"
	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// pushSpinLimit bounds how long a producer spins on a full scheduler queue
// before falling back to inline execution.
const pushSpinLimit = 256

// workerBatch is how many tuples a worker drains from one queue per visit.
// Batching amortizes the queue-cursor CAS, the config load, and the
// profiler Enter/Leave transitions across the whole run.
const workerBatch = 32

// idleSpinLimit is how many empty scans a worker tolerates (yielding
// between scans) before parking on the idle condition variable.
const idleSpinLimit = 16

// recSampleEvery thins steal/park flight-recorder writes to one in this
// many per worker (a power of two). Park/steal transitions fire at queue
// drain rate — with compiled regions, tens of thousands per second — and
// recording each one floods the ring and evicts the rare, valuable events
// (adaptations, quarantines, faults). The sampled record carries the
// worker's cumulative counter so a dump still reconstructs the true rate;
// the SchedStats counters stay exact regardless.
const recSampleEvery = 64

// parkShards is how many park/wake shards the idle machinery spreads
// workers across (a power of two). A producer with a wake to hand out scans
// shards starting at its own, so it wakes a nearby worker and never
// broadcasts; shard count bounds the scan.
const parkShards = 8

// item is one queued tuple delivery. enq is the enqueue timestamp in unix
// nanoseconds when the sampling gate selected this delivery, 0 otherwise.
type item struct {
	port int
	t    *spl.Tuple
	enq  int64
}

// ditem is one deque-queued tuple delivery. Worker deques are per worker,
// not per operator, so the destination node rides along.
type ditem struct {
	node graph.NodeID
	port int
	t    *spl.Tuple
	enq  int64
}

// engineConfig is the immutable runtime configuration workers snapshot once
// per dispatch. Reconfiguration swaps in a new one while all loops are
// parked.
type engineConfig struct {
	placement []bool
	queues    []*queue.MPMC[item] // indexed by node id; nil when manual
	queueList []graph.NodeID      // nodes that have queues, in id order
	// progs holds the compiled manual-region programs for this placement,
	// indexed by region-head node id (see region.go); nil entries fall back
	// to the interpreted path, and the whole slice is nil when compilation
	// is disabled. Rebuilt with every config, so a placement move can never
	// execute a stale program.
	progs []*regionProgram
}

// Options configure a live engine.
type Options struct {
	// MaxThreads caps the scheduler pool (default 64).
	MaxThreads int
	// QueueCapacity is the per-queue capacity, a power of two (default 1024).
	QueueCapacity int
	// DisableWorkStealing turns off per-worker deques and emit affinity,
	// routing every dynamic delivery through the shared MPMC queues. The
	// zero value (stealing on) is the production configuration; the flag
	// exists for A/B benchmarks and diagnosis.
	DisableWorkStealing bool
	// LocalQueueCapacity is the per-worker deque capacity, a power of two
	// (default 256). A full deque overflows to the shared queue, so a small
	// capacity only shifts traffic, never drops it.
	LocalQueueCapacity int
	// AdaptPeriod is how long Observe measures (default 100ms; the paper
	// uses 5s, which is far longer than needed for synthetic workloads).
	AdaptPeriod time.Duration
	// ProfilePeriod is the cost-profiler sampling period (default 1ms).
	ProfilePeriod time.Duration
	// TrackLatency stamps every source-emitted tuple's Time attribute with
	// the wall clock and records sink-arrival latency in a histogram.
	// Leave it off when operators use Time as an application event time.
	TrackLatency bool
	// Fault is an optional fault injector consulted on the operator hot
	// path; nil (the default) costs one pointer check per dispatch.
	Fault *fault.Injector
	// FaultSiteBase offsets this engine's node ids into the injector's site
	// namespace (fault.OpSite of the owning PE), so one injector can target
	// operators across PEs without collisions.
	FaultSiteBase int
	// PanicBudget enables operator supervision when > 0: an operator whose
	// recovered panics exhaust the budget is quarantined — its input drops
	// and counts instead of executing — for an exponentially growing
	// timeout, then probed back in. Clean running decays the history.
	PanicBudget int
	// QuarantineBase/QuarantineMax bound the quarantine timeout's
	// exponential growth (defaults 100ms / 5s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// PanicDecay is the clean-run interval that forgives one strike or
	// backoff round (default 1s).
	PanicDecay time.Duration
	// DisableRegionCompile turns off compiled manual regions and batched
	// operator execution, interpreting every delivery tuple-at-a-time. The
	// zero value (compilation on) is the production configuration; the flag
	// exists for A/B benchmarks and the batch-equivalence fuzzer. Engines
	// with a fault injector skip compilation regardless (see region.go).
	DisableRegionCompile bool
	// SampleEvery enables per-operator latency and queue-wait sampling:
	// every Nth queued delivery per emitting loop is timestamped at enqueue
	// and timed through its operator into the op_exec_seconds and
	// op_queue_wait_seconds histograms. 0 (the default) disables sampling;
	// the disabled path costs a single integer compare per delivery.
	SampleEvery int
	// Obs is the registry the engine registers its series on. Nil gives the
	// engine a private registry, reachable via Engine.Registry.
	Obs *obs.Registry
	// Recorder receives steal/park and supervision flight-recorder events.
	// Nil disables recording (the Record call is a nil-receiver no-op).
	Recorder *obs.FlightRecorder
	// ObsPE is the processing-element id stamped on recorded events.
	ObsPE int
}

func (o *Options) setDefaults() {
	if o.MaxThreads == 0 {
		o.MaxThreads = 64
	}
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 1024
	}
	if o.LocalQueueCapacity == 0 {
		o.LocalQueueCapacity = 256
	}
	if o.AdaptPeriod == 0 {
		o.AdaptPeriod = 100 * time.Millisecond
	}
	if o.ProfilePeriod == 0 {
		o.ProfilePeriod = time.Millisecond
	}
	if o.QuarantineBase <= 0 {
		o.QuarantineBase = 100 * time.Millisecond
	}
	if o.QuarantineMax < o.QuarantineBase {
		o.QuarantineMax = 5 * time.Second
	}
	if o.QuarantineMax < o.QuarantineBase {
		o.QuarantineMax = o.QuarantineBase
	}
	if o.PanicDecay <= 0 {
		o.PanicDecay = time.Second
	}
}

// Engine executes a graph with elastic threading. Create with New, launch
// with Start, and always Stop it to release its goroutines.
type Engine struct {
	g    *graph.Graph
	opts Options

	outByPort [][][]graph.Edge // node -> port -> edges
	isSink    []bool
	recycle   []bool        // operators whose inputs the runtime releases after Process
	statefulM []*sync.Mutex // per-node lock for Stateful operators

	cfg atomic.Pointer[engineConfig]

	meter      *metrics.Meter
	profiler   *metrics.Profiler
	reconfigTS *metrics.ThreadState
	latency    metrics.Histogram
	isSource   []bool
	opPanics   atomic.Uint64
	sup        *supervision // nil unless Options.PanicBudget > 0

	// Observability: the engine's registry (Options.Obs or a private one),
	// the flight recorder (possibly nil), and the sampling histograms — one
	// execution histogram per non-source node plus one engine-wide
	// queue-wait histogram, all registered up front so series presence does
	// not depend on the sampling rate.
	reg       *obs.Registry
	rec       *obs.FlightRecorder
	recPE     int32
	opHist    []*obs.Histogram
	qwaitHist *obs.Histogram

	// Pause/park machinery for online reconfiguration.
	mu       sync.Mutex
	cond     *sync.Cond
	pauseReq atomic.Bool
	parked   int
	loops    int

	// Idle-worker parking, sharded so a wake never takes a global lock and
	// never broadcasts. Producers consult waiters (the global count, a
	// single atomic load when nobody is parked) after every enqueue and hand
	// a wake token to one shard near their own; workers with nothing to scan
	// park on their shard's condition variable instead of sleep-polling, so
	// an idle pool costs no CPU and wakes within a scheduler hop of a push.
	shards  [parkShards]parkShard
	waiters atomic.Int32

	// Work stealing. allSlots is append-only and indexed by worker id, so a
	// worker re-created after a pool shrink reuses its deque and keeps its
	// cumulative counters; slots snapshots the live prefix for stealers and
	// idle rescans. srcStats has one counter group per source loop and
	// extStats covers everything else that emits (reconfiguration drains,
	// tests); per-party groups keep hot-path increments contention-free.
	stealing bool
	allSlots []*wslot // guarded by reconfigMu
	slots    atomic.Pointer[[]*wslot]
	srcStats []metrics.SchedCounters
	extStats metrics.SchedCounters

	reconfigMu sync.Mutex // serializes ApplyPlacement/SetThreadCount

	stop    atomic.Bool
	drain   atomic.Bool
	wg      sync.WaitGroup
	workers []*worker
	started bool
	start   time.Time
}

// parkShard is one slice of the idle-parking machinery.
type parkShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	wakes   int          // outstanding wake tokens, guarded by mu
	waiters atomic.Int32 // workers parked or about to park here
}

// wslot is the per-worker scheduling state that outlives the worker
// goroutine: its deque and its counters survive pool shrinks so a regrown
// pool resumes where it left off and counters stay cumulative.
type wslot struct {
	deq   *queue.WSDeque[ditem]
	stats metrics.SchedCounters
}

// worker is one scheduler goroutine.
type worker struct {
	id   int
	quit chan struct{}
	slot *wslot
	rng  uint64 // xorshift64 state for randomized victim selection
}

// nextRand advances the worker's private xorshift64 generator.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// New validates the graph (finalized, every node has an operator, sources
// implement spl.Source) and returns an engine with all operators manual and
// one scheduler thread configured.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	opts.setDefaults()
	if !g.Finalized() {
		return nil, errors.New("exec: graph not finalized")
	}
	if opts.QueueCapacity < 2 || opts.QueueCapacity&(opts.QueueCapacity-1) != 0 {
		return nil, fmt.Errorf("exec: queue capacity %d is not a power of two", opts.QueueCapacity)
	}
	if opts.LocalQueueCapacity < 2 || opts.LocalQueueCapacity&(opts.LocalQueueCapacity-1) != 0 {
		return nil, fmt.Errorf("exec: local queue capacity %d is not a power of two", opts.LocalQueueCapacity)
	}
	n := g.NumNodes()
	e := &Engine{
		g:         g,
		opts:      opts,
		outByPort: make([][][]graph.Edge, n),
		isSink:    make([]bool, n),
		recycle:   make([]bool, n),
		isSource:  make([]bool, n),
		statefulM: make([]*sync.Mutex, n),
		meter:     metrics.NewMeter(time.Now()),
		profiler:  metrics.NewProfiler(n),
		stealing:  !opts.DisableWorkStealing,
		srcStats:  make([]metrics.SchedCounters, len(g.Sources())),
	}
	e.cond = sync.NewCond(&e.mu)
	for i := range e.shards {
		e.shards[i].cond = sync.NewCond(&e.shards[i].mu)
	}
	e.slots.Store(&[]*wslot{})
	e.reconfigTS = e.profiler.Register()
	for i := 0; i < n; i++ {
		nd := g.Node(graph.NodeID(i))
		if nd.Op == nil {
			return nil, fmt.Errorf("exec: node %d has no operator", i)
		}
		if nd.Source {
			if _, ok := nd.Op.(spl.Source); !ok {
				return nil, fmt.Errorf("exec: source node %d operator %q does not implement spl.Source", i, nd.Op.Name())
			}
		}
		if _, ok := nd.Op.(spl.Stateful); ok {
			e.statefulM[i] = &sync.Mutex{}
		}
		maxPort := -1
		for _, eg := range nd.Out {
			if eg.FromPort > maxPort {
				maxPort = eg.FromPort
			}
		}
		ports := make([][]graph.Edge, maxPort+1)
		for _, eg := range nd.Out {
			ports[eg.FromPort] = append(ports[eg.FromPort], eg)
		}
		e.outByPort[i] = ports
		e.isSink[i] = len(nd.Out) == 0
		// Recyclable is not sink-only: any operator that neither retains nor
		// forwards its input (Expand's burst tuples are fresh acquires, for
		// example) gives the runtime a release point, keeping the steady
		// state allocation-free mid-graph too.
		if _, ok := nd.Op.(spl.Recyclable); ok {
			e.recycle[i] = true
		}
		e.isSource[i] = nd.Source
	}
	if opts.PanicBudget > 0 {
		e.sup = newSupervision(n, opts)
	}
	e.reg = opts.Obs
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.rec = opts.Recorder
	e.recPE = int32(opts.ObsPE)
	e.registerMetrics()
	cfg, err := e.buildConfig(make([]bool, n), nil)
	if err != nil {
		return nil, err
	}
	e.cfg.Store(cfg)
	return e, nil
}

// buildConfig assembles a new engineConfig, reusing queues from prev for
// nodes that stay dynamic so in-flight tuples survive reconfiguration.
func (e *Engine) buildConfig(placement []bool, prev *engineConfig) (*engineConfig, error) {
	n := e.g.NumNodes()
	cfg := &engineConfig{
		placement: make([]bool, n),
		queues:    make([]*queue.MPMC[item], n),
	}
	copy(cfg.placement, placement)
	for i := 0; i < n; i++ {
		if e.g.Node(graph.NodeID(i)).Source {
			cfg.placement[i] = false
		}
		if !cfg.placement[i] {
			continue
		}
		if prev != nil && prev.queues[i] != nil {
			cfg.queues[i] = prev.queues[i]
		} else {
			q, err := queue.NewMPMC[item](e.opts.QueueCapacity)
			if err != nil {
				return nil, fmt.Errorf("exec: queue for node %d: %w", i, err)
			}
			cfg.queues[i] = q
		}
		cfg.queueList = append(cfg.queueList, graph.NodeID(i))
	}
	e.compilePrograms(cfg)
	return cfg, nil
}

// Start launches the source operator threads, the initial scheduler pool
// and the profiler. The context bounds the profiler only; use Stop to shut
// the engine down.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("exec: engine already started")
	}
	e.started = true
	e.start = time.Now()
	e.mu.Unlock()

	e.meter.Reset(time.Now())
	e.profiler.Start(ctx, e.opts.ProfilePeriod)
	for i, s := range e.g.Sources() {
		e.wg.Add(1)
		go e.sourceLoop(i, s)
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	// Keep any pool size configured before Start (for example by a
	// coordinator constructed against this engine); default to one thread.
	if len(e.workers) == 0 {
		e.setWorkersLocked(1)
	}
	return nil
}

// Stop terminates all goroutines and waits for them to exit. It is safe to
// call more than once.
func (e *Engine) Stop() {
	if e.stop.Swap(true) {
		e.wg.Wait()
		return
	}
	e.mu.Lock()
	e.pauseReq.Store(false)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wakeAllIdle()
	e.wg.Wait()
	e.profiler.Stop()
}

// enterLoop registers a running dispatch loop for the pause barrier.
func (e *Engine) enterLoop() {
	e.mu.Lock()
	e.loops++
	e.mu.Unlock()
}

// exitLoop unregisters a dispatch loop.
func (e *Engine) exitLoop() {
	e.mu.Lock()
	e.loops--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// maybePark blocks while a reconfiguration is in progress. Loops call it
// between dispatches, never mid-tuple.
func (e *Engine) maybePark() {
	if !e.pauseReq.Load() {
		return
	}
	e.mu.Lock()
	e.parked++
	e.cond.Broadcast()
	for e.pauseReq.Load() && !e.stop.Load() {
		e.cond.Wait()
	}
	e.parked--
	e.mu.Unlock()
}

// pauseAll requests a pause and waits until every dispatch loop is parked.
// The caller must hold reconfigMu and must call resumeAll afterwards.
func (e *Engine) pauseAll() {
	e.pauseReq.Store(true)
	// Idle-parked workers must wake to reach the pause barrier.
	e.wakeAllIdle()
	e.mu.Lock()
	for e.parked < e.loops && !e.stop.Load() {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// resumeAll releases parked loops.
func (e *Engine) resumeAll() {
	e.pauseReq.Store(false)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wakeWorkers hands out up to n idle-wake tokens, capped by the number of
// currently parked workers. With no parked workers it is a single atomic
// load.
func (e *Engine) wakeWorkers(n int) {
	e.wake(n, 0, &e.extStats)
}

// wake grants up to n wake tokens to parked workers, scanning shards from
// origin so the woken worker is a nearby one (same shard as the producer
// when possible) and at most the requested number of workers stir — never a
// broadcast. Producers call it after every enqueue.
//
// No wakeup is lost: a parking worker increments its shard's waiter count,
// then the global count, then rescans every queue and deque before
// sleeping; a producer enqueues before loading the global count. If the
// producer reads 0 here, the worker's rescan is ordered after the enqueue
// and finds the work. If it reads >0, the worker's shard count was
// incremented even earlier, so the shard scan below finds the shard, and
// the token — granted under the shard lock the worker must take to sleep —
// cannot slip past it.
func (e *Engine) wake(n, origin int, stats *metrics.SchedCounters) {
	if e.waiters.Load() == 0 {
		return
	}
	granted := 0
	for i := 0; i < parkShards && granted < n; i++ {
		sh := &e.shards[(origin+i)&(parkShards-1)]
		w := int(sh.waiters.Load())
		if w == 0 {
			continue
		}
		give := n - granted
		if give > w {
			give = w
		}
		sh.mu.Lock()
		sh.wakes += give
		if give == 1 {
			sh.cond.Signal()
		} else {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
		granted += give
	}
	if granted > 0 {
		stats.Wakes.Add(uint64(granted))
	}
}

// wakeAllIdle wakes every idle-parked worker without issuing wake tokens;
// used by shutdown, pause, and pool-shrink paths whose wake conditions the
// workers re-check themselves.
func (e *Engine) wakeAllIdle() {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// chanClosed reports whether the close-only channel ch has been closed.
func chanClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// parkIdle blocks the worker until a producer hands its shard a wake token
// or the engine needs the worker elsewhere (pause, shutdown, pool shrink).
// Parked workers cost no CPU, and a push wakes one within a scheduler hop —
// well under the 50µs floor of the sleep-poll this replaces.
func (e *Engine) parkIdle(w *worker) {
	sh := &e.shards[w.id&(parkShards-1)]
	sh.waiters.Add(1)
	e.waiters.Add(1)
	// Rescan after publishing the waiter counts: a producer that enqueued
	// before observing a waiter skipped its wake, so the push must be found
	// here. (Producers enqueue before loading waiters; workers publish the
	// waiter before scanning — one side always sees the other.) The scan
	// reloads the engine config rather than trusting the loop's snapshot — a
	// reconfiguration may have added queues since — and covers the other
	// workers' deques, whose owners may have pushed right before parking
	// themselves.
	work := false
	cfg := e.cfg.Load()
	for _, nid := range cfg.queueList {
		if cfg.queues[nid].Len() > 0 {
			work = true
			break
		}
	}
	if !work {
		for _, s := range *e.slots.Load() {
			if s != w.slot && !s.deq.Empty() {
				work = true
				break
			}
		}
	}
	if work {
		e.waiters.Add(-1)
		sh.waiters.Add(-1)
		return
	}
	if p := w.slot.stats.Parks.Add(1); p&(recSampleEvery-1) == 1 {
		e.rec.Record(obs.EvPark, e.recPE, int64(w.id), int64(p), "")
	}
	sh.mu.Lock()
	for sh.wakes == 0 && !e.stop.Load() && !e.pauseReq.Load() && !chanClosed(w.quit) {
		sh.cond.Wait()
	}
	if sh.wakes > 0 {
		sh.wakes--
	}
	sh.mu.Unlock()
	// Decrement global before shard: wake only scans shards while the
	// global count is nonzero, and this order keeps a shard's count nonzero
	// for the whole window in which the global count says someone is parked.
	e.waiters.Add(-1)
	sh.waiters.Add(-1)
}

// sourceLoop drives one source operator on its own goroutine. idx is the
// source's position in g.Sources(), which indexes its private counter
// group and spreads sources across the wake shards.
func (e *Engine) sourceLoop(idx int, id graph.NodeID) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	src := e.g.Node(id).Op.(spl.Source)
	_, exempt := e.g.Node(id).Op.(spl.DrainExempt)
	draining := func() bool { return e.drain.Load() && !exempt }
	em := e.newEmitter(ts)
	em.node = id
	em.stats = &e.srcStats[idx]
	em.origin = idx
	// Sources stripe the sink meter from the top so inline sink execution on
	// a source loop does not share a stripe with the same-numbered worker.
	em.sinkMeter = e.meter.Shard(metrics.MeterShards - 1 - idx)
	for !e.stop.Load() && !draining() {
		e.maybePark()
		if e.stop.Load() || draining() {
			return
		}
		em.cfg = e.cfg.Load()
		em.srcProg = nil
		if progs := em.cfg.progs; progs != nil {
			em.srcProg = progs[id]
		}
		em.node = id
		ts.Enter(int(id))
		more := src.Next(em)
		ts.Leave()
		// Flush the compiled-region capture buffer after every Next call:
		// batch depth is whatever one source invocation emitted, and nothing
		// is ever in flight across iterations — maybePark and the pause
		// barrier only ever see an empty buffer.
		if len(em.srcBuf) > 0 {
			e.flushSource(em)
		}
		if !more {
			return
		}
	}
}

// workerLoop is one scheduler thread. Work is found in steal-loop order:
// the worker drains its own deque first (LIFO, batched), then steals half a
// victim's deque (victim scan starts at a random worker), then falls back
// to the shared scheduler queues, draining up to workerBatch tuples from
// the first non-empty one (the scan starts from a rotating position so
// workers spread across queues). A worker that finds nothing anywhere
// yields for a few scans and then parks until a producer wakes it.
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	em := e.newEmitter(ts)
	em.stats = &w.slot.stats
	em.origin = w.id
	em.sinkMeter = e.meter.Shard(w.id)
	if e.stealing {
		em.local = w.slot.deq
	}
	batch := make([]item, workerBatch)
	dbatch := make([]ditem, workerBatch)
	rot := w.id
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		if chanClosed(w.quit) {
			// The pool shrank under us: conserve in-flight work by running
			// the deque dry before retiring (the slot may be re-adopted by a
			// future worker, but nothing refills it until then).
			e.flushLocal(em, w.slot)
			return
		}
		e.maybePark()
		cfg := e.cfg.Load()
		em.cfg = cfg
		worked := false
		if e.stealing {
			if k := w.slot.deq.PopBottomN(dbatch); k > 0 {
				w.slot.stats.LocalPops.Add(uint64(k))
				e.executeDBatch(em, batch, dbatch[:k])
				worked = true
			} else if k := e.trySteal(w, dbatch); k > 0 {
				if s := w.slot.stats.Steals.Add(1); s&(recSampleEvery-1) == 1 {
					e.rec.Record(obs.EvSteal, e.recPE, int64(k), int64(w.id), "")
				}
				w.slot.stats.StolenTuples.Add(uint64(k))
				e.executeDBatch(em, batch, dbatch[:k])
				worked = true
			}
		}
		if !worked {
			n := len(cfg.queueList)
			for i := 0; i < n; i++ {
				nid := cfg.queueList[(rot+i)%n]
				if k := cfg.queues[nid].TryPopN(batch); k > 0 {
					rot = (rot + i) % n
					e.executeBatch(em, nid, batch[:k])
					worked = true
					break
				}
			}
		}
		if worked {
			idle = 0
			continue
		}
		rot++
		idle++
		if idle < idleSpinLimit {
			runtime.Gosched()
			continue
		}
		e.parkIdle(w)
	}
}

// trySteal scans the other live workers' deques from a random starting
// victim and takes half the first non-empty one, copying up to len(out)
// items into out. It returns how many were stolen.
func (e *Engine) trySteal(w *worker, out []ditem) int {
	slots := *e.slots.Load()
	n := len(slots)
	if n <= 1 {
		return 0
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := slots[(off+i)%n]
		if v == w.slot {
			continue
		}
		if k := v.deq.StealHalf(out); k > 0 {
			return k
		}
	}
	return 0
}

// flushLocal empties a retiring worker's deque by executing the tuples
// inline. The emitter's affinity is switched off first so re-emissions land
// in the shared queues (or inline) rather than back in the deque being
// drained.
func (e *Engine) flushLocal(em *emitter, slot *wslot) {
	if em.local == nil {
		return
	}
	em.local = nil
	em.cfg = e.cfg.Load()
	for {
		it, ok := slot.deq.PopBottom()
		if !ok {
			return
		}
		slot.stats.LocalPops.Add(1)
		e.execute(em, it.node, it.port, it.t)
	}
}

// executeDBatch runs a deque batch, grouping runs of consecutive
// same-operator items into executeBatch calls so the profiler transition
// and the sink meter amortize exactly as on the shared-queue path. scratch
// must be at least len(items) long.
func (e *Engine) executeDBatch(em *emitter, scratch []item, items []ditem) {
	i := 0
	for i < len(items) {
		node := items[i].node
		j := i + 1
		for j < len(items) && items[j].node == node {
			j++
		}
		for k := i; k < j; k++ {
			scratch[k-i] = item{port: items[k].port, t: items[k].t, enq: items[k].enq}
		}
		e.executeBatch(em, node, scratch[:j-i])
		i = j
	}
}

// execute runs operator node on tuple t, updating the profiler state and
// the sink meter.
func (e *Engine) execute(em *emitter, node graph.NodeID, port int, t *spl.Tuple) {
	if e.sup != nil && e.sup.quarantined(int(node), time.Now().UnixNano()) {
		// The tuple is exclusively ours here (queue crossings and fan-out
		// clone), so a quarantine drop returns it to the pool.
		e.sup.drops.Add(1)
		t.Release()
		return
	}
	ts := em.ts
	ts.Enter(int(node))
	ok := e.process(em, e.g.Node(node), node, port, t)
	ts.Leave()
	if e.isSink[node] {
		em.sinkMeter.Add(1)
		e.finishSink(node, t, ok)
	} else if ok && e.recycle[node] {
		t.Release()
	}
}

// executeBatch runs operator node on a batch of tuples drained from its
// scheduler queue, entering the profiler state once for the whole batch and
// metering sinks with a single atomic add.
func (e *Engine) executeBatch(em *emitter, node graph.NodeID, items []item) {
	if progs := em.cfg.progs; progs != nil {
		if p := progs[node]; p != nil {
			e.runRegionItems(em, p, items)
			return
		}
	}
	if e.sup != nil && e.sup.quarantined(int(node), time.Now().UnixNano()) {
		e.sup.drops.Add(uint64(len(items)))
		for i := range items {
			items[i].t.Release()
		}
		return
	}
	nd := e.g.Node(node)
	ts := em.ts
	ts.Enter(int(node))
	if sink := e.isSink[node]; sink {
		for i := range items {
			var ok bool
			if items[i].enq != 0 {
				ok = e.processSampled(em, nd, node, items[i].port, items[i].t, items[i].enq)
			} else {
				ok = e.process(em, nd, node, items[i].port, items[i].t)
			}
			e.finishSink(node, items[i].t, ok)
		}
		ts.Leave()
		em.sinkMeter.Add(uint64(len(items)))
		return
	}
	if e.recycle[node] {
		for i := range items {
			var ok bool
			if items[i].enq != 0 {
				ok = e.processSampled(em, nd, node, items[i].port, items[i].t, items[i].enq)
			} else {
				ok = e.process(em, nd, node, items[i].port, items[i].t)
			}
			if ok {
				items[i].t.Release()
			}
		}
		ts.Leave()
		return
	}
	for i := range items {
		if items[i].enq != 0 {
			e.processSampled(em, nd, node, items[i].port, items[i].t, items[i].enq)
		} else {
			e.process(em, nd, node, items[i].port, items[i].t)
		}
	}
	ts.Leave()
}

// finishSink records sink-side latency and recycles the tuple when the sink
// operator guarantees it retains nothing. ok is false when the operator
// panicked, in which case the tuple's state is unknown and it is left to
// the garbage collector.
func (e *Engine) finishSink(node graph.NodeID, t *spl.Tuple, ok bool) {
	if e.opts.TrackLatency && t.Time > 0 {
		e.latency.Record(time.Duration(time.Now().UnixNano() - t.Time))
	}
	if ok && e.recycle[node] {
		t.Release()
	}
}

// process invokes the operator with the loop's reusable emitter pointed at
// node. A panicking operator loses its tuple but must not kill the
// scheduler thread, so panics are contained and counted; ok reports whether
// the invocation completed normally.
func (e *Engine) process(em *emitter, nd *graph.Node, node graph.NodeID, port int, t *spl.Tuple) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.opPanics.Add(1)
			if e.sup != nil {
				e.sup.notePanic(int(node), time.Now())
			}
			// The panic may have unwound through nested inline execution,
			// leaving the profiler state and the emitter pointed at a
			// downstream operator; restore both.
			em.node = node
			em.ts.Enter(int(node))
		}
	}()
	// Chaos hooks fire inside the recover scope, so an injected panic takes
	// the exact path a real operator panic takes.
	if e.inj() != nil {
		site := e.opts.FaultSiteBase + int(node)
		if d := e.opts.Fault.FireDelay(fault.OpSlow, site); d > 0 {
			time.Sleep(d)
		}
		if e.opts.Fault.Fire(fault.OpPanic, site) {
			panic(fmt.Sprintf("exec: injected panic in operator %q", nd.Op.Name()))
		}
	}
	if m := e.statefulM[node]; m != nil {
		m.Lock()
		defer m.Unlock()
	}
	em.node = node
	nd.Op.Process(port, t, em)
	return true
}

// inj returns the configured fault injector (nil for production engines).
func (e *Engine) inj() *fault.Injector { return e.opts.Fault }

// emitter routes an operator's output tuples: deque-pushed (emit affinity)
// or queued for dynamic consumers — both with a pooled tuple copy — and
// inline execution for manual ones. One emitter is allocated per dispatch
// loop and reused for every dispatch; its cfg is refreshed at each loop
// iteration and its node tracks the operator currently executing on the
// loop's goroutine. local is the owning worker's deque (nil off the worker
// pool or when stealing is disabled), stats the loop's private counter
// group, and origin the wake shard producers near this loop should prefer.
type emitter struct {
	e      *Engine
	cfg    *engineConfig
	ts     *metrics.ThreadState
	node   graph.NodeID
	local  *queue.WSDeque[ditem]
	stats  *metrics.SchedCounters
	origin int

	// sinkMeter is this loop's private stripe of the engine sink meter.
	// Sink metering was the last shared atomic on the tuple hot path; giving
	// every dispatch loop its own cache-line-padded stripe makes it a
	// contention-free add, merged lazily by SinkCount/Observe readers.
	sinkMeter *metrics.MeterShard

	// Sampling gate: every sampleN-th queued delivery from this loop is
	// timestamped. Plain ints — the emitter is loop-private.
	sampleN   int
	sampleCnt int

	// Compiled-region scratch state (region.go), all loop-private and
	// reused across batches so the compiled steady state allocates nothing:
	// ibuf stages queue items' tuples into a batch, rbufs ping-pong stage
	// outputs down a program, and coll is the stage collector the compiled
	// operators emit into. srcProg is the compiled program rooted at this
	// loop's source (nil off source loops or when the region is not
	// compiled) and srcBuf the capture buffer Emit diverts source emissions
	// into until the loop flushes.
	ibuf    []*spl.Tuple
	rbufs   [2][]*spl.Tuple
	coll    stageCollector
	srcProg *regionProgram
	srcBuf  []*spl.Tuple
}

// newEmitter returns a dispatch-loop emitter with counters defaulted to the
// engine's catch-all group; loops with a private group override stats.
func (e *Engine) newEmitter(ts *metrics.ThreadState) *emitter {
	return &emitter{e: e, ts: ts, stats: &e.extStats, sampleN: e.opts.SampleEvery,
		sinkMeter: e.meter.Shard(0)}
}

// stamp returns the enqueue timestamp for a queued delivery the sampling
// gate selects, 0 otherwise. With sampling disabled it is a single compare.
func (em *emitter) stamp() int64 {
	if em.sampleN == 0 {
		return 0
	}
	em.sampleCnt++
	if em.sampleCnt < em.sampleN {
		return 0
	}
	em.sampleCnt = 0
	return time.Now().UnixNano()
}

var (
	_ spl.Emitter      = (*emitter)(nil)
	_ spl.BatchEmitter = (*emitter)(nil)
)

// EmitN implements spl.BatchEmitter: a source holding a whole batch (the
// transport import draining its injection ring) lands it in one call. When
// the source loop is running a compiled region the batch bulk-appends into
// the capture buffer — a cross-PE batch frame reaches the region program
// without ever being re-serialized into per-tuple delivery — otherwise it
// falls back to per-tuple Emit with identical semantics.
func (em *emitter) EmitN(port int, ts []*spl.Tuple) {
	node := em.node
	if p := em.srcProg; p != nil && node == p.head && port == p.srcPort {
		if em.e.opts.TrackLatency && em.e.isSource[node] {
			now := time.Now().UnixNano()
			for _, t := range ts {
				t.Time = now
			}
		}
		em.srcBuf = append(em.srcBuf, ts...)
		return
	}
	for _, t := range ts {
		em.Emit(port, t)
	}
}

// Emit implements spl.Emitter. Because the emitter is shared down inline
// execution chains, Emit snapshots the emitting node on entry and restores
// the emitter and the profiler state once after the last edge — and only
// when an inline delivery actually clobbered them.
func (em *emitter) Emit(port int, t *spl.Tuple) {
	node := em.node
	if em.e.opts.TrackLatency && em.e.isSource[node] {
		t.Time = time.Now().UnixNano()
	}
	// A source loop with a compiled region captures its emissions instead
	// of delivering them; the loop flushes the batch through the program
	// after each Next call. The head is a source node and inline chains
	// never execute sources, so only the source's own emissions match.
	if p := em.srcProg; p != nil && node == p.head && port == p.srcPort {
		em.srcBuf = append(em.srcBuf, t)
		return
	}
	ports := em.e.outByPort[node]
	if port < 0 || port >= len(ports) {
		return // no consumers on this port
	}
	edges := ports[port]
	inlined := false
	for i, eg := range edges {
		// Fan-out: every consumer beyond the last gets its own copy so
		// consumers cannot observe each other's mutations; deliver clones
		// queued deliveries itself, so only inline ones pre-copy here.
		if em.e.deliver(em, eg.To, eg.ToPort, t, i == len(edges)-1) {
			inlined = true
		}
	}
	if inlined {
		em.node = node
		em.ts.Enter(int(node))
	}
}

// deliver hands a tuple to node. Under the dynamic model a worker pushes a
// clone onto its own deque (emit affinity: no shared-queue CAS, and the
// worker runs the tuple next while it is cache-hot); everyone else — and a
// worker whose deque is full — reserves a shared-queue cell first and
// clones the tuple only once the enqueue is known to succeed (the clone is
// the paper's copy overhead either way), then recycles the original when it
// owns it. Under the manual model it executes the operator inline. owned
// reports whether the callee may consume t; when false (a fan-out edge
// before the last) the tuple is cloned for any consuming path. deliver
// reports whether it executed operators inline on the calling goroutine.
func (e *Engine) deliver(em *emitter, node graph.NodeID, port int, t *spl.Tuple, owned bool) bool {
	cfg := em.cfg
	if cfg.placement[node] {
		if d := em.local; d != nil && !d.Full() {
			c := t.Clone()
			if d.PushBottom(ditem{node: node, port: port, t: c, enq: em.stamp()}) {
				if owned {
					t.Release()
				}
				em.stats.LocalPushes.Add(1)
				e.wake(1, em.origin, em.stats)
				return false
			}
			// Unreachable in practice — only thieves move top, so a deque
			// the owner saw non-full cannot fill — but if it ever happens
			// the clone goes back to the pool and the shared path takes
			// over.
			c.Release()
		}
		q := cfg.queues[node]
		for spins := 0; ; spins++ {
			if s, ok := q.TryReservePush(); ok {
				s.Commit(item{port: port, t: t.Clone(), enq: em.stamp()})
				if owned {
					t.Release()
				}
				if em.local != nil {
					em.stats.Overflows.Add(1)
				} else {
					em.stats.Injected.Add(1)
				}
				e.wake(1, em.origin, em.stats)
				return false
			}
			if e.stop.Load() {
				return false
			}
			if e.pauseReq.Load() || spins >= pushSpinLimit {
				// Execute inline instead of spinning: either a
				// reconfiguration is waiting for us to park, or the queue
				// has stayed full — and with every worker potentially
				// blocked as a producer on a full downstream queue,
				// waiting indefinitely would deadlock the pipeline. The
				// tuple jumps the queue, trading strict FIFO order for
				// liveness. No clone was made, so no copy work is wasted.
				break
			}
			runtime.Gosched()
		}
	}
	tt := t
	if !owned {
		tt = t.Clone()
	}
	e.execute(em, node, port, tt)
	return true
}
