// Package exec implements the live engine: a goroutine-based processing
// element that executes an operator graph under the two threading models of
// the paper. Source operators run on dedicated operator goroutines; under
// the manual model downstream operators execute inline on the emitting
// goroutine, and under the dynamic model a scheduler queue is placed in
// front of the operator and a pool of scheduler goroutines pulls tuples
// from any queue. Placement and pool size are reconfigurable online, which
// is the control surface the elastic controllers in internal/core drive.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// pushSpinLimit bounds how long a producer spins on a full scheduler queue
// before falling back to inline execution.
const pushSpinLimit = 256

// item is one queued tuple delivery.
type item struct {
	port int
	t    *spl.Tuple
}

// engineConfig is the immutable runtime configuration workers snapshot once
// per dispatch. Reconfiguration swaps in a new one while all loops are
// parked.
type engineConfig struct {
	placement []bool
	queues    []*queue.MPMC[item] // indexed by node id; nil when manual
	queueList []graph.NodeID      // nodes that have queues, in id order
}

// Options configure a live engine.
type Options struct {
	// MaxThreads caps the scheduler pool (default 64).
	MaxThreads int
	// QueueCapacity is the per-queue capacity, a power of two (default 1024).
	QueueCapacity int
	// AdaptPeriod is how long Observe measures (default 100ms; the paper
	// uses 5s, which is far longer than needed for synthetic workloads).
	AdaptPeriod time.Duration
	// ProfilePeriod is the cost-profiler sampling period (default 1ms).
	ProfilePeriod time.Duration
	// TrackLatency stamps every source-emitted tuple's Time attribute with
	// the wall clock and records sink-arrival latency in a histogram.
	// Leave it off when operators use Time as an application event time.
	TrackLatency bool
}

func (o *Options) setDefaults() {
	if o.MaxThreads == 0 {
		o.MaxThreads = 64
	}
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 1024
	}
	if o.AdaptPeriod == 0 {
		o.AdaptPeriod = 100 * time.Millisecond
	}
	if o.ProfilePeriod == 0 {
		o.ProfilePeriod = time.Millisecond
	}
}

// Engine executes a graph with elastic threading. Create with New, launch
// with Start, and always Stop it to release its goroutines.
type Engine struct {
	g    *graph.Graph
	opts Options

	outByPort [][][]graph.Edge // node -> port -> edges
	isSink    []bool
	statefulM []*sync.Mutex // per-node lock for Stateful operators

	cfg atomic.Pointer[engineConfig]

	meter      *metrics.Meter
	profiler   *metrics.Profiler
	reconfigTS *metrics.ThreadState
	latency    metrics.Histogram
	isSource   []bool
	opPanics   atomic.Uint64

	// Pause/park machinery for online reconfiguration.
	mu       sync.Mutex
	cond     *sync.Cond
	pauseReq atomic.Bool
	parked   int
	loops    int

	reconfigMu sync.Mutex // serializes ApplyPlacement/SetThreadCount

	stop    atomic.Bool
	drain   atomic.Bool
	wg      sync.WaitGroup
	workers []*worker
	started bool
	start   time.Time
}

// worker is one scheduler goroutine.
type worker struct {
	id   int
	quit chan struct{}
}

// New validates the graph (finalized, every node has an operator, sources
// implement spl.Source) and returns an engine with all operators manual and
// one scheduler thread configured.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	opts.setDefaults()
	if !g.Finalized() {
		return nil, errors.New("exec: graph not finalized")
	}
	if opts.QueueCapacity < 2 || opts.QueueCapacity&(opts.QueueCapacity-1) != 0 {
		return nil, fmt.Errorf("exec: queue capacity %d is not a power of two", opts.QueueCapacity)
	}
	n := g.NumNodes()
	e := &Engine{
		g:         g,
		opts:      opts,
		outByPort: make([][][]graph.Edge, n),
		isSink:    make([]bool, n),
		isSource:  make([]bool, n),
		statefulM: make([]*sync.Mutex, n),
		meter:     metrics.NewMeter(time.Now()),
		profiler:  metrics.NewProfiler(n),
	}
	e.cond = sync.NewCond(&e.mu)
	e.reconfigTS = e.profiler.Register()
	for i := 0; i < n; i++ {
		nd := g.Node(graph.NodeID(i))
		if nd.Op == nil {
			return nil, fmt.Errorf("exec: node %d has no operator", i)
		}
		if nd.Source {
			if _, ok := nd.Op.(spl.Source); !ok {
				return nil, fmt.Errorf("exec: source node %d operator %q does not implement spl.Source", i, nd.Op.Name())
			}
		}
		if _, ok := nd.Op.(spl.Stateful); ok {
			e.statefulM[i] = &sync.Mutex{}
		}
		maxPort := -1
		for _, eg := range nd.Out {
			if eg.FromPort > maxPort {
				maxPort = eg.FromPort
			}
		}
		ports := make([][]graph.Edge, maxPort+1)
		for _, eg := range nd.Out {
			ports[eg.FromPort] = append(ports[eg.FromPort], eg)
		}
		e.outByPort[i] = ports
		e.isSink[i] = len(nd.Out) == 0
		e.isSource[i] = nd.Source
	}
	e.cfg.Store(e.buildConfig(make([]bool, n), nil))
	return e, nil
}

// buildConfig assembles a new engineConfig, reusing queues from prev for
// nodes that stay dynamic so in-flight tuples survive reconfiguration.
func (e *Engine) buildConfig(placement []bool, prev *engineConfig) *engineConfig {
	n := e.g.NumNodes()
	cfg := &engineConfig{
		placement: make([]bool, n),
		queues:    make([]*queue.MPMC[item], n),
	}
	copy(cfg.placement, placement)
	for i := 0; i < n; i++ {
		if e.g.Node(graph.NodeID(i)).Source {
			cfg.placement[i] = false
		}
		if !cfg.placement[i] {
			continue
		}
		if prev != nil && prev.queues[i] != nil {
			cfg.queues[i] = prev.queues[i]
		} else {
			q, err := queue.NewMPMC[item](e.opts.QueueCapacity)
			if err != nil {
				// Capacity is validated in New; this cannot fail.
				panic(err)
			}
			cfg.queues[i] = q
		}
		cfg.queueList = append(cfg.queueList, graph.NodeID(i))
	}
	return cfg
}

// Start launches the source operator threads, the initial scheduler pool
// and the profiler. The context bounds the profiler only; use Stop to shut
// the engine down.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("exec: engine already started")
	}
	e.started = true
	e.start = time.Now()
	e.mu.Unlock()

	e.meter.Reset(time.Now())
	e.profiler.Start(ctx, e.opts.ProfilePeriod)
	for _, s := range e.g.Sources() {
		e.wg.Add(1)
		go e.sourceLoop(s)
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	// Keep any pool size configured before Start (for example by a
	// coordinator constructed against this engine); default to one thread.
	if len(e.workers) == 0 {
		e.setWorkersLocked(1)
	}
	return nil
}

// Stop terminates all goroutines and waits for them to exit. It is safe to
// call more than once.
func (e *Engine) Stop() {
	if e.stop.Swap(true) {
		e.wg.Wait()
		return
	}
	e.mu.Lock()
	e.pauseReq.Store(false)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	e.profiler.Stop()
}

// enterLoop registers a running dispatch loop for the pause barrier.
func (e *Engine) enterLoop() {
	e.mu.Lock()
	e.loops++
	e.mu.Unlock()
}

// exitLoop unregisters a dispatch loop.
func (e *Engine) exitLoop() {
	e.mu.Lock()
	e.loops--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// maybePark blocks while a reconfiguration is in progress. Loops call it
// between dispatches, never mid-tuple.
func (e *Engine) maybePark() {
	if !e.pauseReq.Load() {
		return
	}
	e.mu.Lock()
	e.parked++
	e.cond.Broadcast()
	for e.pauseReq.Load() && !e.stop.Load() {
		e.cond.Wait()
	}
	e.parked--
	e.mu.Unlock()
}

// pauseAll requests a pause and waits until every dispatch loop is parked.
// The caller must hold reconfigMu and must call resumeAll afterwards.
func (e *Engine) pauseAll() {
	e.pauseReq.Store(true)
	e.mu.Lock()
	for e.parked < e.loops && !e.stop.Load() {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// resumeAll releases parked loops.
func (e *Engine) resumeAll() {
	e.pauseReq.Store(false)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// sourceLoop drives one source operator on its own goroutine.
func (e *Engine) sourceLoop(id graph.NodeID) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	src := e.g.Node(id).Op.(spl.Source)
	_, exempt := e.g.Node(id).Op.(spl.DrainExempt)
	draining := func() bool { return e.drain.Load() && !exempt }
	for !e.stop.Load() && !draining() {
		e.maybePark()
		if e.stop.Load() || draining() {
			return
		}
		cfg := e.cfg.Load()
		ts.Enter(int(id))
		more := src.Next(&emitter{e: e, cfg: cfg, ts: ts, node: id})
		ts.Leave()
		if !more {
			return
		}
	}
}

// workerLoop is one scheduler thread: it scans the scheduler queues for
// work and executes the owning operator for each tuple found. The scan
// starts from a rotating position so workers spread across queues.
func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	e.enterLoop()
	defer e.exitLoop()
	ts := e.profiler.Register()
	defer e.profiler.Release(ts)
	rot := w.id
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		select {
		case <-w.quit:
			return
		default:
		}
		e.maybePark()
		cfg := e.cfg.Load()
		n := len(cfg.queueList)
		worked := false
		for i := 0; i < n; i++ {
			nid := cfg.queueList[(rot+i)%n]
			if it, ok := cfg.queues[nid].TryPop(); ok {
				rot = (rot + i) % n
				e.execute(cfg, ts, nid, it.port, it.t)
				worked = true
				break
			}
		}
		if worked {
			idle = 0
			continue
		}
		rot++
		idle++
		if idle < 16 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// execute runs operator node on tuple t, updating the profiler state and
// the sink meter. A panicking operator loses its tuple but must not kill
// the scheduler thread, so panics are contained and counted.
func (e *Engine) execute(cfg *engineConfig, ts *metrics.ThreadState, node graph.NodeID, port int, t *spl.Tuple) {
	nd := e.g.Node(node)
	ts.Enter(int(node))
	e.process(cfg, ts, nd, node, port, t)
	ts.Leave()
	if e.isSink[node] {
		e.meter.Add(1)
		if e.opts.TrackLatency && t.Time > 0 {
			e.latency.Record(time.Duration(time.Now().UnixNano() - t.Time))
		}
	}
}

func (e *Engine) process(cfg *engineConfig, ts *metrics.ThreadState, nd *graph.Node, node graph.NodeID, port int, t *spl.Tuple) {
	defer func() {
		if r := recover(); r != nil {
			e.opPanics.Add(1)
		}
	}()
	if m := e.statefulM[node]; m != nil {
		m.Lock()
		defer m.Unlock()
	}
	nd.Op.Process(port, t, &emitter{e: e, cfg: cfg, ts: ts, node: node})
}

// emitter routes an operator's output tuples: queued (with a tuple copy)
// for dynamic consumers, inline execution for manual ones.
type emitter struct {
	e    *Engine
	cfg  *engineConfig
	ts   *metrics.ThreadState
	node graph.NodeID
}

var _ spl.Emitter = (*emitter)(nil)

// Emit implements spl.Emitter.
func (em *emitter) Emit(port int, t *spl.Tuple) {
	if em.e.opts.TrackLatency && em.e.isSource[em.node] {
		t.Time = time.Now().UnixNano()
	}
	ports := em.e.outByPort[em.node]
	if port < 0 || port >= len(ports) {
		return // no consumers on this port
	}
	edges := ports[port]
	for i, eg := range edges {
		tt := t
		if i < len(edges)-1 {
			// Fan-out: every consumer beyond the first gets a copy so
			// they cannot observe each other's mutations.
			tt = t.Clone()
		}
		em.e.deliver(em.cfg, em.ts, eg.To, eg.ToPort, tt)
		// Restore the profiler state: deliver may have executed a long
		// inline chain under other operator ids.
		em.ts.Enter(int(em.node))
	}
}

// deliver hands a tuple to node: enqueue (copying) when the node is
// dynamic, execute inline when manual.
func (e *Engine) deliver(cfg *engineConfig, ts *metrics.ThreadState, node graph.NodeID, port int, t *spl.Tuple) {
	if cfg.placement[node] {
		// Copy overhead: tuples are owned by their region, so crossing a
		// scheduler queue deep-copies.
		it := item{port: port, t: t.Clone()}
		q := cfg.queues[node]
		for spins := 0; !q.TryPush(it); spins++ {
			if e.stop.Load() {
				return
			}
			if e.pauseReq.Load() || spins >= pushSpinLimit {
				// Execute inline instead of spinning: either a
				// reconfiguration is waiting for us to park, or the queue
				// has stayed full — and with every worker potentially
				// blocked as a producer on a full downstream queue,
				// waiting indefinitely would deadlock the pipeline. The
				// tuple jumps the queue, trading strict FIFO order for
				// liveness.
				e.execute(cfg, ts, node, port, it.t)
				return
			}
			runtime.Gosched()
		}
		return
	}
	e.execute(cfg, ts, node, port, t)
}
