package exec

import (
	"context"
	"syscall"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// hotChain builds a source -> work -> sink pipeline for the hot-path tests
// and benchmarks. tuples == 0 means unbounded.
func hotChain(tb testing.TB, tuples uint64, payload int, flops float64) (*graph.Graph, *spl.CountingSink) {
	tb.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", payload)
	gen.MaxTuples = tuples
	src := g.AddSource(gen, nil)
	cv := spl.NewCostVar(flops)
	work := g.AddOperator(spl.NewWork("w", cv), cv)
	if err := g.Connect(src, 0, work, 0, 1); err != nil {
		tb.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(work, 0, sid, 0, 1); err != nil {
		tb.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// syncCrossingStep returns a closure that pushes one tuple through a
// scheduler-queue crossing synchronously on the calling goroutine: the
// source emits into the work operator's queue, then the queue is drained
// with a batch pop and executed (work runs inline into the recyclable
// sink). The engine is never started, so every step of the crossing —
// clone-into-queue, release-original, batch pop, sink recycle — happens on
// one goroutine, which is what testing.AllocsPerRun can measure.
func syncCrossingStep(tb testing.TB, g *graph.Graph) func() {
	tb.Helper()
	e, err := New(g, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1] = true // queue in front of the work operator
	if err := e.ApplyPlacement(place); err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	gen := g.Node(0).Op.(spl.Source)
	q := cfg.queues[1]
	batch := make([]item, workerBatch)
	return func() {
		em.node = 0
		gen.Next(em)
		if k := q.TryPopN(batch); k > 0 {
			e.executeBatch(em, 1, batch[:k])
		}
	}
}

// TestQueueCrossingSteadyStateAllocFree is the benchmark guard for the
// tuple-pooling work: once the pools are warm, pushing a tuple across a
// scheduler queue and through a recyclable sink allocates nothing.
func TestQueueCrossingSteadyStateAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector")
	}
	g, _ := hotChain(t, 0, 256, 0)
	step := syncCrossingStep(t, g)
	for i := 0; i < 128; i++ {
		step() // warm the tuple and payload pools
	}
	avg := testing.AllocsPerRun(5000, step)
	if avg > 0.05 {
		t.Fatalf("steady-state queue crossing allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestIdleWorkersParkAndWake checks the park/wake protocol end to end: once
// the pipeline runs out of tuples every worker parks (visible in the waiter
// count), a direct enqueue plus wake resumes processing, and the woken
// worker parks again when the queue is dry.
func TestIdleWorkersParkAndWake(t *testing.T) {
	const tuples = 50
	g, sink := hotChain(t, tuples, 8, 0)
	e := startEngine(t, g, Options{MaxThreads: 4})
	place := make([]bool, g.NumNodes())
	place[1], place[2] = true, true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, tuples, 5*time.Second)

	waitWaiters := func(want int32) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if e.waiters.Load() == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("waiters = %d, want %d", e.waiters.Load(), want)
	}
	waitWaiters(2) // both workers idle-parked, burning no CPU

	// A producer-side push plus wake must pull a parked worker back out.
	cfg := e.cfg.Load()
	if !cfg.queues[2].TryPush(item{port: 0, t: &spl.Tuple{Seq: 999}}) {
		t.Fatal("failed to enqueue directly to the sink queue")
	}
	e.wakeWorkers(1)
	waitCount(t, sink, tuples+1, 5*time.Second)
	waitWaiters(2) // and it parks again once the queue is dry

	// Shrinking the pool must wake the retiring parked worker so it exits.
	if err := e.SetThreadCount(1); err != nil {
		t.Fatal(err)
	}
	waitWaiters(1)
}

// BenchmarkQueueCrossingSync measures the per-tuple cost of one scheduler
// queue crossing (clone into queue, batch pop, inline execute, sink
// recycle) with no goroutine handoff, isolating the hot path's CPU and
// allocator behaviour from scheduling noise.
func BenchmarkQueueCrossingSync(b *testing.B) {
	g, _ := hotChain(b, 0, 256, 0)
	step := syncCrossingStep(b, g)
	for i := 0; i < 128; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkIdleWorkerCPU measures how much process CPU time a fully idle
// engine burns per wall-clock second with four scheduler threads parked.
// With the old 50µs sleep-poll this was a steady busy-wait cost; with
// condition-variable parking it should be approximately zero.
func BenchmarkIdleWorkerCPU(b *testing.B) {
	g, _ := hotChain(b, 1, 8, 0)
	e, err := New(g, Options{MaxThreads: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	place := make([]bool, g.NumNodes())
	place[1], place[2] = true, true
	if err := e.ApplyPlacement(place); err != nil {
		b.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		b.Fatal(err)
	}
	e.Drain()
	e.WaitIdle(time.Second)
	time.Sleep(20 * time.Millisecond) // let the workers park

	window := time.Duration(b.N) * 100 * time.Microsecond
	if window < 200*time.Millisecond {
		window = 200 * time.Millisecond
	}
	var r0, r1 syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &r0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	time.Sleep(window)
	b.StopTimer()
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &r1); err != nil {
		b.Fatal(err)
	}
	cpu := rusageCPU(&r1) - rusageCPU(&r0)
	b.ReportMetric(float64(cpu.Milliseconds())/window.Seconds(), "cpu-ms/s")
}

func rusageCPU(r *syscall.Rusage) time.Duration {
	return time.Duration(r.Utime.Sec+r.Stime.Sec)*time.Second +
		time.Duration(r.Utime.Usec+r.Stime.Usec)*time.Microsecond
}
