package exec

import (
	"context"
	"fmt"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// fanInGraph builds the contended fan-in topology: `sources` independent
// chains source -> expand(factor) -> work(flops) whose work stages all feed
// one shared sink node.
func fanInGraph(tb testing.TB, sources, factor int, flops float64) (*graph.Graph, *spl.CountingSink) {
	tb.Helper()
	g := graph.New()
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	for i := 0; i < sources; i++ {
		gen := spl.NewGenerator(fmt.Sprintf("src%d", i), 64)
		src := g.AddSource(gen, nil)
		xp := g.AddOperator(spl.NewExpand(fmt.Sprintf("xp%d", i), factor), nil)
		if err := g.Connect(src, 0, xp, 0, 1); err != nil {
			tb.Fatal(err)
		}
		cv := spl.NewCostVar(flops)
		work := g.AddOperator(spl.NewWork(fmt.Sprintf("w%d", i), cv), cv)
		if err := g.Connect(xp, 0, work, 0, 1); err != nil {
			tb.Fatal(err)
		}
		if err := g.Connect(work, 0, sid, 0, 1); err != nil {
			tb.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// benchFanIn measures sink throughput on the contended fan-in shape that
// motivates the work-stealing scheduler: several sources each feed an
// expansion burst and a work stage, and every work stage fans into one
// shared sink node. With the shared-MPMC scheduler every burst tuple and
// every fan-in delivery crosses a contended queue; with stealing the same
// traffic rides the producing worker's own deque and the shared queues
// carry only source injections.
func benchFanIn(b *testing.B, steal bool, workers int) {
	b.Helper()
	const sources, factor, flops = 4, 8, 200
	g, _ := fanInGraph(b, sources, factor, flops)
	e, err := New(g, Options{MaxThreads: 16, DisableWorkStealing: !steal})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer e.Stop()
	place := make([]bool, g.NumNodes())
	for i := range place {
		place[i] = !g.Node(graph.NodeID(i)).Source
	}
	if err := e.ApplyPlacement(place); err != nil {
		b.Fatal(err)
	}
	if err := e.SetThreadCount(workers); err != nil {
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // warm up pools and deques
	b.ResetTimer()
	start := e.SinkCount()
	t0 := time.Now()
	target := time.Duration(b.N) * 100 * time.Microsecond
	if target < 100*time.Millisecond {
		target = 100 * time.Millisecond
	}
	time.Sleep(target)
	elapsed := time.Since(t0).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(e.SinkCount()-start)/elapsed, "tuples/s")
	if steal {
		s := e.SchedStats()
		b.ReportMetric(float64(s.Steals)/elapsed, "steals/s")
	}
}

// BenchmarkContendedFanIn is the BENCH_4 headline comparison: shared-MPMC
// scheduling versus work stealing at 2/4/8/16 workers on the same fan-in
// topology. Compare tuples/s between shared/workers=N and steal/workers=N.
func BenchmarkContendedFanIn(b *testing.B) {
	for _, mode := range []struct {
		name  string
		steal bool
	}{{"shared", false}, {"steal", true}} {
		for _, w := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, w), func(b *testing.B) {
				benchFanIn(b, mode.steal, w)
			})
		}
	}
}
