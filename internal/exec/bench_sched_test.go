package exec

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// countingSink abstracts over the sharded CountingSink and the mutex-
// serialized LockedCountingSink so the fan-in benchmark can compare the two
// sink-metering modes on the same topology (the Fig. 10 sharded-vs-locked
// comparison).
type countingSink interface {
	spl.Operator
	Count() uint64
}

// fanInGraph builds the contended fan-in topology: `sources` independent
// chains source -> expand(factor) -> work(flops) whose work stages all feed
// one shared sink node. lockedSink selects the paper's lock-contention
// baseline sink instead of the sharded default.
func fanInGraph(tb testing.TB, sources, factor int, flops float64, lockedSink bool) (*graph.Graph, countingSink) {
	tb.Helper()
	g := graph.New()
	var sink countingSink
	if lockedSink {
		sink = spl.NewLockedCountingSink("snk")
	} else {
		sink = spl.NewCountingSink("snk")
	}
	sid := g.AddOperator(sink, nil)
	for i := 0; i < sources; i++ {
		gen := spl.NewGenerator(fmt.Sprintf("src%d", i), 64)
		src := g.AddSource(gen, nil)
		xp := g.AddOperator(spl.NewExpand(fmt.Sprintf("xp%d", i), factor), nil)
		if err := g.Connect(src, 0, xp, 0, 1); err != nil {
			tb.Fatal(err)
		}
		cv := spl.NewCostVar(flops)
		work := g.AddOperator(spl.NewWork(fmt.Sprintf("w%d", i), cv), cv)
		if err := g.Connect(xp, 0, work, 0, 1); err != nil {
			tb.Fatal(err)
		}
		if err := g.Connect(work, 0, sid, 0, 1); err != nil {
			tb.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// startFanIn builds and starts a fan-in engine with all non-source nodes
// scheduled dynamically on `workers` workers. Everything here — graph
// construction, engine start, placement, thread-count ramp, pool/deque
// warm-up — is per-benchmark setup that must stay outside the timed region.
func startFanIn(tb testing.TB, steal, lockedSink bool, workers int) *Engine {
	tb.Helper()
	const sources, factor, flops = 4, 8, 200
	g, _ := fanInGraph(tb, sources, factor, flops, lockedSink)
	e, err := New(g, Options{MaxThreads: 16, DisableWorkStealing: !steal})
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		tb.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	for i := range place {
		place[i] = !g.Node(graph.NodeID(i)).Source
	}
	if err := e.ApplyPlacement(place); err != nil {
		e.Stop()
		tb.Fatal(err)
	}
	if err := e.SetThreadCount(workers); err != nil {
		e.Stop()
		tb.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // warm up pools and deques
	return e
}

// benchFanIn measures sink throughput on the contended fan-in shape that
// motivates the work-stealing scheduler: several sources each feed an
// expansion burst and a work stage, and every work stage fans into one
// shared sink node. With the shared-MPMC scheduler every burst tuple and
// every fan-in delivery crosses a contended queue; with stealing the same
// traffic rides the producing worker's own deque and the shared queues
// carry only source injections. The timed region contains nothing but the
// running pipeline: with sharded sink metering and recyclable-operator
// release the steady state is allocation-free (see
// TestContendedFanInSteadyStateAllocFree), so allocs/op stays 0.
func benchFanIn(b *testing.B, steal, lockedSink bool, workers int) {
	b.Helper()
	e := startFanIn(b, steal, lockedSink, workers)
	defer e.Stop()
	b.ResetTimer()
	start := e.SinkCount()
	t0 := time.Now()
	target := time.Duration(b.N) * 100 * time.Microsecond
	if target < 100*time.Millisecond {
		target = 100 * time.Millisecond
	}
	time.Sleep(target)
	elapsed := time.Since(t0).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(e.SinkCount()-start)/elapsed, "tuples/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	if steal {
		s := e.SchedStats()
		b.ReportMetric(float64(s.Steals)/elapsed, "steals/s")
	}
}

// BenchmarkContendedFanIn is the BENCH_4/BENCH_6 headline comparison:
// shared-MPMC scheduling versus work stealing at 2/4/8/16 workers on the
// same fan-in topology, with the sharded sink by default. Compare tuples/s
// between shared/workers=N and steal/workers=N, and against
// BenchmarkContendedFanInLockedSink for the Fig. 10 sink-contention cost.
func BenchmarkContendedFanIn(b *testing.B) {
	for _, mode := range []struct {
		name  string
		steal bool
	}{{"shared", false}, {"steal", true}} {
		for _, w := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, w), func(b *testing.B) {
				benchFanIn(b, mode.steal, false, w)
			})
		}
	}
}

// BenchmarkContendedFanInLockedSink is the same sweep with the paper's
// lock-contention baseline sink: every worker takes one shared mutex per
// tuple at the sink, the contention wall Fig. 10 describes.
func BenchmarkContendedFanInLockedSink(b *testing.B) {
	for _, mode := range []struct {
		name  string
		steal bool
	}{{"shared", false}, {"steal", true}} {
		for _, w := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, w), func(b *testing.B) {
				benchFanIn(b, mode.steal, true, w)
			})
		}
	}
}

// TestContendedFanInSteadyStateAllocFree pins the satellite fix for the ~90
// allocs/op BENCH_4 measured in the fan-in steady state: Expand abandoned
// its input tuple (no release point for a non-sink operator), so every
// source->expand queue crossing leaked a pooled tuple struct and payload
// buffer to the GC at ~1M allocs/s. With Expand marked Recyclable and the
// engine releasing recyclable inputs mid-graph, the running pipeline must
// allocate nothing.
func TestContendedFanInSteadyStateAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	e := startFanIn(t, true, false, 4)
	defer e.Stop()
	// Settle, then measure total process allocations over a window. The
	// pipeline moves >100k tuples in the window, so even a fraction of an
	// alloc per tuple (the old leak was ~3 per source tuple) blows the
	// budget; the budget absorbs incidental runtime/timer allocations.
	time.Sleep(200 * time.Millisecond)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := e.SinkCount()
	time.Sleep(300 * time.Millisecond)
	runtime.ReadMemStats(&after)
	moved := e.SinkCount() - start
	allocs := after.Mallocs - before.Mallocs
	if moved < 10000 {
		t.Skipf("pipeline too slow to judge: moved %d tuples", moved)
	}
	if allocs > 2000 {
		t.Fatalf("steady state allocated %d objects while moving %d tuples; want near zero",
			allocs, moved)
	}
}
