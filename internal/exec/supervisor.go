package exec

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/obs"
)

// recoverSentinel is the until value meaning "quarantine expired, state
// recovery in flight": the operator keeps dropping tuples (they will be
// replayed from the checkpoint watermark) until the checkpointer finishes
// the restore and calls finishRecovery.
const recoverSentinel = int64(math.MaxInt64)

// supervision is the engine's operator supervisor: it tracks recovered
// panics per operator against a panic budget and quarantines repeat
// offenders. A quarantined operator's input drops-and-counts instead of
// executing — a crashing operator must not take its scheduler thread's
// throughput (or, worse, the whole PE) with it — for an exponentially
// growing timeout, after which the operator is probed back in. Sustained
// clean running decays both the strike count and the backoff round, so an
// operator that recovered for real earns its reputation back.
type supervision struct {
	budget int
	base   time.Duration
	max    time.Duration
	decay  time.Duration

	nodes []opHealth

	rec   *obs.FlightRecorder // possibly nil; Record no-ops then
	recPE int32

	quarantines atomic.Uint64 // quarantine engagements
	releases    atomic.Uint64 // probes back in after a quarantine expired
	drops       atomic.Uint64 // tuples dropped while quarantined

	// Recovery hook, armed by the checkpoint coordinator before Start.
	// When recoverable[node] is set, an expired quarantine requests a
	// state restore instead of releasing directly; the operator stays
	// quarantined (recoverSentinel) until finishRecovery.
	recoverable    []bool
	requestRecover func(node int)
}

// opHealth is one operator's supervision state. The until field is the hot
// path: zero means healthy, and quarantined() touches nothing else.
type opHealth struct {
	until atomic.Int64 // unix nanos; quarantined while now < until

	mu      sync.Mutex
	strikes int       // panics since the last quarantine or decay
	round   int       // backoff round; quarantine lasts base << round
	last    time.Time // last panic, for decay
}

func newSupervision(n int, opts Options) *supervision {
	return &supervision{
		budget: opts.PanicBudget,
		base:   opts.QuarantineBase,
		max:    opts.QuarantineMax,
		decay:  opts.PanicDecay,
		nodes:  make([]opHealth, n),
		rec:    opts.Recorder,
		recPE:  int32(opts.ObsPE),
	}
}

// quarantined reports whether node is currently quarantined. The first
// caller to observe an expired quarantine releases the operator (counted as
// a probe), so exactly one release is recorded per engagement.
func (s *supervision) quarantined(node int, now int64) bool {
	h := &s.nodes[node]
	until := h.until.Load()
	if until == 0 {
		return false
	}
	if now < until {
		return true
	}
	if s.recoverable != nil && node < len(s.recoverable) && s.recoverable[node] {
		// Drop-then-restore: the quarantine expired, but the operator's
		// state must be rolled back to the last checkpoint before tuples
		// are readmitted. Exactly one caller wins the CAS and requests
		// the restore; everyone keeps dropping until it completes.
		if h.until.CompareAndSwap(until, recoverSentinel) {
			s.requestRecover(node)
		}
		return true
	}
	if h.until.CompareAndSwap(until, 0) {
		s.releases.Add(1)
		s.rec.Record(obs.EvRelease, s.recPE, int64(node), 0, "")
	}
	return false
}

// armRecovery registers the checkpoint coordinator's restore hook. Must be
// called before the engine starts (no synchronization on the fields).
func (s *supervision) armRecovery(recoverable []bool, request func(node int)) {
	s.recoverable = recoverable
	s.requestRecover = request
}

// pollExpired requests recovery for any recoverable node whose quarantine
// has expired, without waiting for a delivery to observe the expiry.
// Deliveries normally drive the check, but a quarantined stateful operator
// can stall its own input — acks gate on checkpoint commits and commits
// skip while it is quarantined — so waiting for traffic would deadlock:
// recovery needs a delivery, the delivery needs an ack, the ack needs a
// commit, the commit needs the recovery. The checkpoint loop calls this on
// its tick to break that cycle.
func (s *supervision) pollExpired(now int64) {
	if s.recoverable == nil {
		return
	}
	for i := range s.nodes {
		if !s.recoverable[i] {
			continue
		}
		h := &s.nodes[i]
		until := h.until.Load()
		if until == 0 || until == recoverSentinel || now < until {
			continue
		}
		if h.until.CompareAndSwap(until, recoverSentinel) {
			s.requestRecover(i)
		}
	}
}

// finishRecovery ends a recovery engagement: the operator is released and
// the probe counted, mirroring the direct-release path.
func (s *supervision) finishRecovery(node int) {
	h := &s.nodes[node]
	if h.until.Load() == recoverSentinel {
		h.until.Store(0)
		s.releases.Add(1)
		s.rec.Record(obs.EvRelease, s.recPE, int64(node), 0, "restored")
	}
}

// notePanic records one recovered panic against node's budget, engaging a
// quarantine when the budget is exhausted. Clean time since the previous
// panic forgives strikes first and then backoff rounds, one per decay
// interval.
func (s *supervision) notePanic(node int, now time.Time) {
	h := &s.nodes[node]
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.last.IsZero() && s.decay > 0 {
		quiet := now.Sub(h.last)
		for quiet >= s.decay && (h.strikes > 0 || h.round > 0) {
			if h.strikes > 0 {
				h.strikes--
			} else {
				h.round--
			}
			quiet -= s.decay
		}
	}
	h.last = now
	h.strikes++
	if h.strikes < s.budget {
		return
	}
	h.strikes = 0
	d := s.base << h.round
	if d <= 0 || d > s.max {
		d = s.max
	}
	if h.round < 30 {
		h.round++
	}
	h.until.Store(now.Add(d).UnixNano())
	s.quarantines.Add(1)
	s.rec.Record(obs.EvQuarantine, s.recPE, int64(node), int64(d), "")
}

// active counts operators currently quarantined.
func (s *supervision) active(now int64) int {
	n := 0
	for i := range s.nodes {
		if u := s.nodes[i].until.Load(); u != 0 && now < u {
			n++
		}
	}
	return n
}

// SupervisionStats is the supervisor's externally visible state.
type SupervisionStats struct {
	// Quarantines counts engagements; Releases counts probes back in;
	// Dropped counts tuples dropped while quarantined; Active is how many
	// operators are quarantined right now.
	Quarantines uint64
	Releases    uint64
	Dropped     uint64
	Active      int
}

// Supervision returns the engine's supervisor counters; the zero value when
// supervision is disabled (Options.PanicBudget == 0).
func (e *Engine) Supervision() SupervisionStats {
	if e.sup == nil {
		return SupervisionStats{}
	}
	return SupervisionStats{
		Quarantines: e.sup.quarantines.Load(),
		Releases:    e.sup.releases.Load(),
		Dropped:     e.sup.drops.Load(),
		Active:      e.sup.active(time.Now().UnixNano()),
	}
}
