package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

var _ core.Engine = (*Engine)(nil)

// buildChain constructs a source -> n work ops -> sink pipeline with a
// bounded generator.
func buildChain(t *testing.T, n int, tuples uint64, flops float64) (*graph.Graph, *spl.CountingSink) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = tuples
	prev := g.AddSource(gen, spl.NewCostVar(0))
	for i := 0; i < n; i++ {
		cv := spl.NewCostVar(flops)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

func startEngine(t *testing.T, g *graph.Graph, opts Options) *Engine {
	t.Helper()
	e, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// waitCount polls until the sink has seen want tuples or the timeout hits.
func waitCount(t *testing.T, sink *spl.CountingSink, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if sink.Count() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sink count %d, want %d", sink.Count(), want)
}

func TestNewValidatesGraph(t *testing.T) {
	g := graph.New()
	g.AddSource(spl.NewGenerator("s", 0), nil)
	if _, err := New(g, Options{}); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, Options{QueueCapacity: 3}); err == nil {
		t.Fatal("non-power-of-two queue capacity accepted")
	}

	// Missing operator.
	g2 := graph.New()
	g2.AddSource(nil, nil)
	if err := g2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g2, Options{}); err == nil {
		t.Fatal("graph with nil operator accepted")
	}

	// Source that is not an spl.Source.
	g3 := graph.New()
	g3.AddSource(spl.NewCountingSink("notasource"), nil)
	if err := g3.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g3, Options{}); err == nil {
		t.Fatal("source without spl.Source accepted")
	}
}

func TestManualModeDeliversAllTuples(t *testing.T) {
	const n = 2000
	g, sink := buildChain(t, 5, n, 10)
	e := startEngine(t, g, Options{})
	waitCount(t, sink, n, 10*time.Second)
	if got := sink.Count(); got != n {
		t.Fatalf("sink received %d tuples, want exactly %d", got, n)
	}
	if e.Queues() != 0 {
		t.Fatalf("manual engine has %d queues", e.Queues())
	}
	if e.SinkCount() != n {
		t.Fatalf("meter counted %d, want %d", e.SinkCount(), n)
	}
}

func TestDynamicModeDeliversAllTuples(t *testing.T) {
	const n = 2000
	g, sink := buildChain(t, 5, n, 10)
	e := startEngine(t, g, Options{})
	place := make([]bool, g.NumNodes())
	for i := 1; i < len(place); i++ {
		place[i] = true
	}
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	if e.Queues() != 6 {
		t.Fatalf("queues = %d, want 6", e.Queues())
	}
	waitCount(t, sink, n, 10*time.Second)
	if got := sink.Count(); got != n {
		t.Fatalf("sink received %d tuples, want exactly %d", got, n)
	}
}

func TestReconfigurationPreservesTuples(t *testing.T) {
	const n = 5000
	g, sink := buildChain(t, 8, n, 50)
	e := startEngine(t, g, Options{})
	// Flip the placement repeatedly while the stream is in flight.
	for round := 0; round < 20; round++ {
		place := make([]bool, g.NumNodes())
		for i := 1; i < len(place); i++ {
			place[i] = (i+round)%2 == 0
		}
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, sink, n, 20*time.Second)
	if got := sink.Count(); got != n {
		t.Fatalf("sink received %d tuples after reconfigurations, want exactly %d", got, n)
	}
}

func TestThreadPoolResizeWhileRunning(t *testing.T) {
	const n = 5000
	g, sink := buildChain(t, 4, n, 50)
	e := startEngine(t, g, Options{MaxThreads: 16})
	place := make([]bool, g.NumNodes())
	for i := 1; i < len(place); i++ {
		place[i] = true
	}
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{8, 2, 12, 1, 6} {
		if err := e.SetThreadCount(c); err != nil {
			t.Fatal(err)
		}
		if got := e.ThreadCount(); got != c {
			t.Fatalf("thread count = %d, want %d", got, c)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCount(t, sink, n, 20*time.Second)
	if got := sink.Count(); got != n {
		t.Fatalf("sink received %d, want %d", got, n)
	}
}

func TestSetThreadCountValidation(t *testing.T) {
	g, _ := buildChain(t, 2, 10, 1)
	e, err := New(g, Options{MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if err := e.SetThreadCount(0); err == nil {
		t.Fatal("accepted 0 threads")
	}
	if err := e.SetThreadCount(5); err == nil {
		t.Fatal("accepted thread count above max")
	}
	if e.MaxThreads() != 4 {
		t.Fatalf("MaxThreads = %d", e.MaxThreads())
	}
}

func TestApplyPlacementValidation(t *testing.T) {
	g, _ := buildChain(t, 2, 10, 1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if err := e.ApplyPlacement(make([]bool, 2)); err == nil {
		t.Fatal("accepted wrong-length placement")
	}
}

func TestPlacementIgnoresSources(t *testing.T) {
	g, _ := buildChain(t, 2, 10, 1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	place := make([]bool, g.NumNodes())
	place[0] = true // source
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if e.Placement()[0] {
		t.Fatal("source became dynamic")
	}
	if e.Queues() != 0 {
		t.Fatalf("queues = %d, want 0", e.Queues())
	}
	able := e.Placeable()
	if able[0] || !able[1] {
		t.Fatalf("placeable = %v", able)
	}
}

func TestFanOutDeliversToAllConsumers(t *testing.T) {
	const n = 1000
	g := graph.New()
	gen := spl.NewGenerator("src", 4)
	gen.MaxTuples = n
	src := g.AddSource(gen, nil)
	sinkA := spl.NewCountingSink("a")
	sinkB := spl.NewCountingSink("b")
	a := g.AddOperator(sinkA, nil)
	b := g.AddOperator(sinkB, nil)
	if err := g.Connect(src, 0, a, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(src, 0, b, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{})
	// Make one consumer dynamic so both paths are exercised.
	place := make([]bool, g.NumNodes())
	place[b] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sinkA, n, 10*time.Second)
	waitCount(t, sinkB, n, 10*time.Second)
	if sinkA.Count() != n || sinkB.Count() != n {
		t.Fatalf("fan-out counts = %d/%d, want %d/%d", sinkA.Count(), sinkB.Count(), n, n)
	}
}

func TestStatefulOperatorSerialized(t *testing.T) {
	// A round-robin split under the dynamic model with several threads must
	// still distribute exactly evenly, which requires serialization.
	const n = 3000
	width := 3
	g := graph.New()
	gen := spl.NewGenerator("src", 4)
	gen.MaxTuples = n
	src := g.AddSource(gen, nil)
	split := g.AddOperator(spl.NewRoundRobinSplit("split", width), nil)
	if err := g.Connect(src, 0, split, 0, 1); err != nil {
		t.Fatal(err)
	}
	sinks := make([]*spl.CountingSink, width)
	for i := 0; i < width; i++ {
		sinks[i] = spl.NewCountingSink("snk")
		id := g.AddOperator(sinks[i], nil)
		if err := g.Connect(split, i, id, 0, 1.0/float64(width)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{})
	place := make([]bool, g.NumNodes())
	place[split] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	total := func() uint64 {
		var s uint64
		for _, snk := range sinks {
			s += snk.Count()
		}
		return s
	}
	deadline := time.Now().Add(15 * time.Second)
	for total() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if total() != n {
		t.Fatalf("total = %d, want %d", total(), n)
	}
	for i, snk := range sinks {
		if snk.Count() != n/uint64(width) {
			t.Fatalf("sink %d received %d, want %d", i, snk.Count(), n/uint64(width))
		}
	}
}

func TestObserveMeasuresThroughput(t *testing.T) {
	g, _ := buildChain(t, 2, 0 /* unbounded */, 10)
	e := startEngine(t, g, Options{AdaptPeriod: 30 * time.Millisecond})
	thr, err := e.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 {
		t.Fatalf("observed throughput %v, want > 0", thr)
	}
	if e.Now() <= 0 {
		t.Fatal("engine clock did not advance")
	}
}

func TestCostMetricIdentifiesHeavyOperator(t *testing.T) {
	// Source -> light(10 FLOPs) -> heavy(2M FLOPs) -> sink; the profiler
	// must attribute far more samples to the heavy operator.
	g := graph.New()
	gen := spl.NewGenerator("src", 4)
	src := g.AddSource(gen, nil)
	lightCV := spl.NewCostVar(10)
	light := g.AddOperator(spl.NewWork("light", lightCV), lightCV)
	heavyCV := spl.NewCostVar(2_000_000)
	heavy := g.AddOperator(spl.NewWork("heavy", heavyCV), heavyCV)
	sink := g.AddOperator(spl.NewCountingSink("snk"), nil)
	for _, c := range [][2]graph.NodeID{{src, light}, {light, heavy}, {heavy, sink}} {
		if err := g.Connect(c[0], 0, c[1], 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := startEngine(t, g, Options{AdaptPeriod: 200 * time.Millisecond, ProfilePeriod: 200 * time.Microsecond})
	if _, err := e.Observe(); err != nil {
		t.Fatal(err)
	}
	m := e.CostMetric()
	if m[heavy] <= m[light] {
		t.Fatalf("cost metric heavy=%v <= light=%v", m[heavy], m[light])
	}
}

func TestStartTwiceFails(t *testing.T) {
	g, _ := buildChain(t, 1, 10, 1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestStopIdempotent(t *testing.T) {
	g, _ := buildChain(t, 1, 10, 1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	e.Stop()
}

func TestWaitIdleOnBoundedStream(t *testing.T) {
	const n = 500
	g, sink := buildChain(t, 3, n, 10)
	e := startEngine(t, g, Options{})
	place := make([]bool, g.NumNodes())
	place[2] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, n, 10*time.Second)
	if !e.WaitIdle(5 * time.Second) {
		t.Fatal("engine did not become idle after the bounded stream finished")
	}
}

// TestCoordinatorDrivesLiveEngine is the end-to-end test: the multi-level
// coordinator adapts a live pipeline with a genuinely hot operator and
// improves its throughput.
func TestCoordinatorDrivesLiveEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("live adaptation test skipped in -short mode")
	}
	g, _ := buildChain(t, 6, 0 /* unbounded */, 20_000)
	e := startEngine(t, g, Options{AdaptPeriod: 50 * time.Millisecond, MaxThreads: 8})
	cfg := core.DefaultConfig()
	cfg.MaxThreads = 8
	coord, err := core.NewCoordinator(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps, settled, err := coord.RunUntilSettled(400)
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatalf("coordinator did not settle on the live engine in %d steps", steps)
	}
	tr := coord.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	// On a loaded single-CPU host an individual observation window can
	// legitimately measure zero (the source may be descheduled for the
	// whole period), so assert that throughput was observed at all.
	maxThr := 0.0
	for _, e := range tr {
		if e.Throughput > maxThr {
			maxThr = e.Throughput
		}
	}
	if maxThr <= 0 {
		t.Fatal("no throughput recorded in any observation window")
	}
}

func TestWorkerChurnReleasesProfilerStates(t *testing.T) {
	g, _ := buildChain(t, 2, 0, 1)
	e := startEngine(t, g, Options{MaxThreads: 16})
	for i := 0; i < 50; i++ {
		if err := e.SetThreadCount(1 + i%8); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}
	// Give exiting workers a moment to release their states.
	deadline := time.Now().Add(5 * time.Second)
	for e.profiler.RegisteredThreads() > 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// 2 workers + 1 source + 1 reconfig state, plus a small transient
	// allowance.
	if got := e.profiler.RegisteredThreads(); got > 8 {
		t.Fatalf("profiler retains %d thread states after churn", got)
	}
}

func TestDrainAndStop(t *testing.T) {
	// Unbounded source: DrainAndStop must stop emission, finish in-flight
	// tuples, and return cleanly.
	g, sink := buildChain(t, 6, 0, 100)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	for i := 1; i < len(place); i++ {
		place[i] = true
	}
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, 500, 10*time.Second)
	if !e.DrainAndStop(10 * time.Second) {
		t.Fatal("engine did not drain")
	}
	// After drain, the count must be stable (no tuples lost mid-queue and
	// none still flowing).
	final := sink.Count()
	time.Sleep(50 * time.Millisecond)
	if sink.Count() != final {
		t.Fatal("tuples still flowing after DrainAndStop returned")
	}
}

func TestQueueStats(t *testing.T) {
	g, _ := buildChain(t, 4, 0, 1)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	st := e.QueueStats()
	if st.Queues != 0 || st.TotalDepth != 0 {
		t.Fatalf("fresh engine stats %+v", st)
	}
	place := make([]bool, g.NumNodes())
	place[2] = true
	place[3] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	st = e.QueueStats()
	if st.Queues != 2 {
		t.Fatalf("queues = %d, want 2", st.Queues)
	}
	if st.TotalDepth != 0 || st.MaxDepth != 0 {
		t.Fatalf("not-started engine has queued tuples: %+v", st)
	}
}
