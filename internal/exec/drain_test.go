package exec

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// gateOp blocks every invocation until its gate is closed, wedging the
// worker that picked it up and backing its queue up behind it.
type gateOp struct {
	gate chan struct{}
}

func (o *gateOp) Name() string { return "gate" }

func (o *gateOp) Process(_ int, t *spl.Tuple, em spl.Emitter) {
	<-o.gate
	em.Emit(0, t)
}

// TestDrainAndStopTimeout wedges an operator so the pipeline cannot become
// idle: DrainAndStop must give up after its timeout, report the failure,
// and still stop the engine cleanly once the operator unblocks.
func TestDrainAndStopTimeout(t *testing.T) {
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = 50
	src := g.AddSource(gen, spl.NewCostVar(0))
	gate := &gateOp{gate: make(chan struct{})}
	gid := g.AddOperator(gate, spl.NewCostVar(0))
	if err := g.Connect(src, 0, gid, 0, 1); err != nil {
		t.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(gid, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Options{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queue the gate operator: the wedge must show up as scheduler-queue
	// backlog (inline execution would hide it inside the source goroutine).
	place := make([]bool, g.NumNodes())
	place[gid] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	// Let the backlog form behind the wedged worker before draining.
	deadline := time.Now().Add(5 * time.Second)
	for e.QueueStats().TotalDepth == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.QueueStats().TotalDepth == 0 {
		t.Fatal("no backlog formed behind the wedged operator")
	}
	// Unblock the wedged operator only after the drain deadline has long
	// passed, so Stop (inside DrainAndStop) can join the worker.
	unblock := time.AfterFunc(500*time.Millisecond, func() { close(gate.gate) })
	defer unblock.Stop()

	start := time.Now()
	if e.DrainAndStop(100 * time.Millisecond) {
		t.Fatal("DrainAndStop reported a full drain with a wedged operator")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("DrainAndStop gave up after %v, before its timeout", elapsed)
	}
	// The engine is fully stopped: a second Stop is a no-op and the sink
	// count no longer moves.
	e.Stop()
	got := sink.Count()
	time.Sleep(20 * time.Millisecond)
	if sink.Count() != got {
		t.Fatal("tuples still flowing after DrainAndStop returned")
	}
}

// exemptGenerator is a bounded generator that keeps emitting through a
// drain — the transport import stubs behave this way, because upstream PEs
// still have in-flight tuples to deliver.
type exemptGenerator struct {
	*spl.Generator
}

func (exemptGenerator) DrainExempt() {}

// TestDrainKeepsExemptSources drains an engine whose source is
// drain-exempt: the source must keep emitting (Drain does not silence it)
// and the pipeline still reaches idle once the source's bound is hit.
func TestDrainKeepsExemptSources(t *testing.T) {
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = 2000
	src := g.AddSource(exemptGenerator{gen}, spl.NewCostVar(0))
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(src, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Options{MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Drain immediately: a non-exempt source would stop near zero, an
	// exempt one runs to its bound.
	e.Drain()
	if !e.WaitIdle(10 * time.Second) {
		t.Fatal("engine never became idle")
	}
	if got := sink.Count(); got != 2000 {
		t.Fatalf("sink saw %d tuples, want all 2000 despite the drain", got)
	}
}
