package exec

import (
	"strconv"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/metrics"
	"streamelastic/internal/obs"
	"streamelastic/internal/spl"
)

// This file wires the engine into the obs registry: every status surface the
// engine used to expose ad hoc (SchedStats, Supervision, Latency, queue
// depths) is registered as a collector series, and the sampling histograms
// behind Options.SampleEvery live here.

// Registry returns the registry the engine's series are registered on:
// Options.Obs when one was supplied, otherwise the engine's private one.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// registerMetrics registers the engine's series on e.reg. Called once from
// New, before the engine is reachable, so collector callbacks that take
// engine locks can never deadlock against registration.
func (e *Engine) registerMetrics() {
	r := e.reg
	r.GaugeFunc(obs.MetricOperators, "Number of operators in the graph.",
		func() float64 { return float64(e.NumOperators()) })
	r.GaugeFunc(obs.MetricThreads, "Scheduler pool size.",
		func() float64 { return float64(e.ThreadCount()) })
	r.GaugeFunc(obs.MetricQueues, "Scheduler queues currently placed.",
		func() float64 { return float64(e.Queues()) })
	r.GaugeFunc(obs.MetricUptime, "Seconds since the engine started.",
		func() float64 { return e.Now().Seconds() })
	r.GaugeFunc(obs.MetricQueueDepth, "Tuples waiting in shared queues and worker deques.",
		func() float64 { return float64(e.QueueStats().TotalDepth) },
		obs.Label{Key: "scope", Value: "total"})
	r.GaugeFunc(obs.MetricQueueDepth, "Tuples waiting in shared queues and worker deques.",
		func() float64 { return float64(e.QueueStats().LocalDepth) },
		obs.Label{Key: "scope", Value: "local"})
	r.CounterFunc(obs.MetricSinkTuples, "Tuples delivered to sink operators.", e.SinkCount)
	r.CounterFunc(obs.MetricPanics, "Operator invocations that panicked.", e.OperatorPanics)

	sched := func(read func(metrics.SchedSnapshot) uint64) func() uint64 {
		return func() uint64 { return read(e.SchedStats()) }
	}
	r.CounterFunc(obs.MetricSchedLocalPushes, "Tuples pushed onto the emitting worker's own deque.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.LocalPushes }))
	r.CounterFunc(obs.MetricSchedLocalPops, "Tuples popped back off a worker's own deque.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.LocalPops }))
	r.CounterFunc(obs.MetricSchedSteals, "Successful steal operations.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.Steals }))
	r.CounterFunc(obs.MetricSchedStolenTuples, "Tuples moved by steals.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.StolenTuples }))
	r.CounterFunc(obs.MetricSchedOverflows, "Deque-full overflows to the shared queues.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.Overflows }))
	r.CounterFunc(obs.MetricSchedInjected, "Tuples injected through the shared queues.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.Injected }))
	r.CounterFunc(obs.MetricSchedParks, "Times a worker parked idle.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.Parks }))
	r.CounterFunc(obs.MetricSchedWakes, "Wake tokens granted to parked workers.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.Wakes }))
	r.CounterFunc(obs.MetricSchedFusedBatches, "Batches executed through compiled region programs.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.FusedBatches }))
	r.CounterFunc(obs.MetricSchedFusedTuples, "Tuples entering compiled region programs.",
		sched(func(s metrics.SchedSnapshot) uint64 { return s.FusedTuples }))

	// Supervision series register unconditionally: Engine.Supervision is
	// zero-valued when supervision is off, so the series just read 0.
	r.CounterFunc(obs.MetricSupQuarantines, "Operator quarantine engagements.",
		func() uint64 { return e.Supervision().Quarantines })
	r.CounterFunc(obs.MetricSupReleases, "Operators probed back in after quarantine.",
		func() uint64 { return e.Supervision().Releases })
	r.CounterFunc(obs.MetricSupDropped, "Tuples dropped while their operator was quarantined.",
		func() uint64 { return e.Supervision().Dropped })
	r.GaugeFunc(obs.MetricSupActive, "Operators currently quarantined.",
		func() float64 { return float64(e.Supervision().Active) })

	r.HistogramFunc(obs.MetricLatency, "End-to-end source-to-sink latency (requires TrackLatency).",
		func() obs.HistSnapshot {
			return obs.HistSnapshot{
				Buckets: e.latency.Buckets(),
				Count:   e.latency.Count(),
				Sum:     float64(e.latency.Sum()) * 1e-9,
				Scale:   1e-9,
			}
		})

	// Per-operator execution latency: one native histogram per non-source
	// node, fed by the sampling gate. Registered regardless of SampleEvery so
	// the series set is stable; with sampling off they stay empty.
	n := e.g.NumNodes()
	e.opHist = make([]*obs.Histogram, n)
	for i := 0; i < n; i++ {
		nd := e.g.Node(graph.NodeID(i))
		if nd.Source {
			continue
		}
		e.opHist[i] = r.Histogram(obs.MetricOpExec, "Sampled per-operator execution latency.",
			obs.Label{Key: "op", Value: nd.Op.Name()},
			obs.Label{Key: "node", Value: strconv.Itoa(i)})
	}
	e.qwaitHist = r.Histogram(obs.MetricOpQueueWait, "Sampled scheduler-queue wait (enqueue to dispatch).")
}

// processSampled is the sampled variant of process: the queue wait (enqueue
// to dispatch) goes to the engine-wide queue-wait histogram and the operator
// invocation to the node's execution histogram. Both observations are plain
// atomic adds, so the sampled path allocates nothing.
func (e *Engine) processSampled(em *emitter, nd *graph.Node, node graph.NodeID, port int, t *spl.Tuple, enq int64) bool {
	start := time.Now().UnixNano()
	e.qwaitHist.Observe(time.Duration(start - enq))
	ok := e.process(em, nd, node, port, t)
	if h := e.opHist[node]; h != nil {
		h.Observe(time.Duration(time.Now().UnixNano() - start))
	}
	return ok
}
