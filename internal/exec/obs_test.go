package exec

import (
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/obs"
	"streamelastic/internal/spl"
)

// syncSamplingStep is syncCrossingStep with the sampling gate armed: the
// closure pushes one tuple through a scheduler-queue crossing synchronously,
// with every sampleEvery-th delivery timestamped and timed.
func syncSamplingStep(tb testing.TB, g *graph.Graph, sampleEvery int) func() {
	tb.Helper()
	e, err := New(g, Options{SampleEvery: sampleEvery})
	if err != nil {
		tb.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1] = true
	if err := e.ApplyPlacement(place); err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	gen := g.Node(0).Op.(spl.Source)
	q := cfg.queues[1]
	batch := make([]item, workerBatch)
	return func() {
		em.node = 0
		gen.Next(em)
		if k := q.TryPopN(batch); k > 0 {
			e.executeBatch(em, 1, batch[:k])
		}
	}
}

// TestSampledCrossingAllocFree guards the tentpole's hot-path promise: with
// the sampling gate selecting every delivery, a queue crossing still
// allocates nothing — the stamp, the queue-wait observe, and the operator
// histogram observe are all plain atomics.
func TestSampledCrossingAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector")
	}
	g, _ := hotChain(t, 0, 256, 0)
	step := syncSamplingStep(t, g, 1)
	for i := 0; i < 128; i++ {
		step()
	}
	avg := testing.AllocsPerRun(5000, step)
	if avg > 0.05 {
		t.Fatalf("sampled queue crossing allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestSamplingFeedsHistograms checks the samples land where the exposition
// reads them: the engine-wide queue-wait histogram and the work operator's
// execution histogram.
func TestSamplingFeedsHistograms(t *testing.T) {
	g, _ := hotChain(t, 0, 64, 0)
	const n = 100
	reg := obs.NewRegistry()
	e2, err := New(g, Options{SampleEvery: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1] = true
	if err := e2.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	cfg := e2.cfg.Load()
	em := e2.newEmitter(e2.reconfigTS)
	em.cfg = cfg
	gen := g.Node(0).Op.(spl.Source)
	q := cfg.queues[1]
	batch := make([]item, workerBatch)
	for i := 0; i < n; i++ {
		em.node = 0
		gen.Next(em)
		if k := q.TryPopN(batch); k > 0 {
			e2.executeBatch(em, 1, batch[:k])
		}
	}
	var qwait, opexec uint64
	for _, s := range reg.Gather() {
		switch s.Name {
		case obs.MetricOpQueueWait:
			qwait += s.Hist.Count
		case obs.MetricOpExec:
			opexec += s.Hist.Count
		}
	}
	if qwait != n/2 {
		t.Fatalf("queue-wait samples = %d, want %d", qwait, n/2)
	}
	if opexec != n/2 {
		t.Fatalf("op-exec samples = %d, want %d", opexec, n/2)
	}
}

// TestSamplingDisabledStampsNothing asserts the off-by-default contract: no
// enqueue timestamps, no histogram observations.
func TestSamplingDisabledStampsNothing(t *testing.T) {
	g, _ := hotChain(t, 0, 64, 0)
	reg := obs.NewRegistry()
	e, err := New(g, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	place := make([]bool, g.NumNodes())
	place[1] = true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	gen := g.Node(0).Op.(spl.Source)
	q := cfg.queues[1]
	batch := make([]item, workerBatch)
	for i := 0; i < 50; i++ {
		em.node = 0
		gen.Next(em)
		if k := q.TryPopN(batch); k > 0 {
			e.executeBatch(em, 1, batch[:k])
		}
	}
	for _, s := range reg.Gather() {
		if (s.Name == obs.MetricOpQueueWait || s.Name == obs.MetricOpExec) && s.Hist.Count != 0 {
			t.Fatalf("%s has %d samples with sampling disabled", s.Name, s.Hist.Count)
		}
	}
}

// TestEngineRegistersCoreSeries asserts the engine's registry exposes the
// scheduler, supervision, and latency families the /metrics contract needs.
func TestEngineRegistersCoreSeries(t *testing.T) {
	g, _ := hotChain(t, 0, 64, 0)
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range e.Registry().Gather() {
		names[s.Name] = true
	}
	for _, want := range []string{
		obs.MetricOperators, obs.MetricThreads, obs.MetricQueues,
		obs.MetricSinkTuples, obs.MetricPanics, obs.MetricQueueDepth,
		obs.MetricSchedLocalPushes, obs.MetricSchedSteals, obs.MetricSchedParks,
		obs.MetricSupQuarantines, obs.MetricSupActive,
		obs.MetricLatency, obs.MetricOpExec, obs.MetricOpQueueWait,
	} {
		if !names[want] {
			t.Fatalf("engine registry missing series %q (have %v)", want, names)
		}
	}
}

// TestRecorderCapturesQuarantine drives a panicking operator past its budget
// and asserts the supervisor recorded quarantine (and later release) events.
func TestRecorderCapturesQuarantine(t *testing.T) {
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = 0
	src := g.AddSource(gen, nil)
	boom := spl.NewMap("boom", func(tu *spl.Tuple) *spl.Tuple {
		panic("kaboom")
	})
	bid := g.AddOperator(boom, nil)
	if err := g.Connect(src, 0, bid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder(64)
	e, err := New(g, Options{
		PanicBudget:    2,
		QuarantineBase: 10 * time.Millisecond,
		Recorder:       rec,
		ObsPE:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.cfg.Load()
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	gen2 := g.Node(0).Op.(spl.Source)
	for i := 0; i < 4; i++ {
		em.node = 0
		gen2.Next(em)
	}
	var quarantines int
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EvQuarantine {
			quarantines++
			if ev.PE != 3 || ev.A != int64(bid) {
				t.Fatalf("quarantine event = %+v, want pe=3 a=%d", ev, bid)
			}
		}
	}
	if quarantines == 0 {
		t.Fatal("no quarantine event recorded")
	}
}

// BenchmarkQueueCrossingSampling measures the hot-path cost of the sampling
// gate at its three interesting settings: disabled (one compare), 1%
// (amortized stamps), and every tuple (worst case).
func BenchmarkQueueCrossingSampling(b *testing.B) {
	for _, bc := range []struct {
		name  string
		every int
	}{
		{"off", 0},
		{"1pct", 100},
		{"all", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			g, _ := hotChain(b, 0, 256, 0)
			step := syncSamplingStep(b, g, bc.every)
			for i := 0; i < 128; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}
