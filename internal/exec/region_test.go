package exec

import (
	"testing"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// progsOf returns the current config's compiled-program table (nil when
// compilation produced nothing).
func progsOf(e *Engine) []*regionProgram { return e.cfg.Load().progs }

// TestRegionCompilationShapes pins the compiler's structural rules: which
// heads get programs, where chains stop, and which options suppress
// compilation entirely.
func TestRegionCompilationShapes(t *testing.T) {
	g, _ := buildChain(t, 3, 0, 0) // src -> w -> w -> w -> sink

	t.Run("all-manual compiles one source program", func(t *testing.T) {
		e, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		progs := progsOf(e)
		if progs == nil || progs[0] == nil {
			t.Fatal("no source-head program for an all-manual chain")
		}
		p := progs[0]
		if len(p.steps) != 4 {
			t.Fatalf("source program has %d steps, want 4 (3 work + sink)", len(p.steps))
		}
		if !p.steps[3].sink {
			t.Fatal("last step of a full chain is not a sink step")
		}
		for i := 1; i < len(progs); i++ {
			if progs[i] != nil {
				t.Fatalf("unexpected program at node %d", i)
			}
		}
	})

	t.Run("mid-queue splits the chain into two programs", func(t *testing.T) {
		e, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		place := make([]bool, g.NumNodes())
		place[2] = true // queue in front of the middle work operator
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		progs := progsOf(e)
		if progs == nil {
			t.Fatal("no programs after placing a queue")
		}
		// The source's manual prefix is src -> w1 -> (queue): one operator
		// followed by the boundary is a lone exit step, which is exactly
		// the interpreted path — correctly elided.
		if progs[0] != nil {
			t.Fatalf("source program = %+v, want nil (lone exit step)", progs[0])
		}
		if progs[2] == nil || len(progs[2].steps) != 3 {
			t.Fatalf("queue-head program = %+v, want head work + work + sink", progs[2])
		}
		if progs[2].steps[0].node != 2 || !progs[2].steps[2].sink {
			t.Fatalf("queue-head program steps wrong: %+v", progs[2].steps)
		}
	})

	t.Run("all-dynamic compiles nothing", func(t *testing.T) {
		e, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		place := make([]bool, g.NumNodes())
		for i := 1; i < len(place); i++ {
			place[i] = true
		}
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		// Every interior region is a lone dynamic operator followed by
		// another queue — a lone exit step, elided. Only the dynamic sink
		// keeps a program: its single sink step batches the sink meter and
		// recycle even with no chain behind it.
		progs := progsOf(e)
		if progs == nil {
			t.Fatal("no program table under all-dynamic placement")
		}
		for i, p := range progs {
			if i == g.NumNodes()-1 {
				if p == nil || len(p.steps) != 1 || !p.steps[0].sink {
					t.Fatalf("dynamic sink program = %+v, want a single sink step", p)
				}
				continue
			}
			if p != nil {
				t.Fatalf("node %d has a program under all-dynamic placement: %+v", i, p)
			}
		}
	})

	t.Run("DisableRegionCompile compiles nothing", func(t *testing.T) {
		e, err := New(g, Options{DisableRegionCompile: true})
		if err != nil {
			t.Fatal(err)
		}
		if progsOf(e) != nil {
			t.Fatal("programs compiled with DisableRegionCompile set")
		}
	})

	t.Run("fault injector suppresses compilation", func(t *testing.T) {
		inj := fault.New(1)
		e, err := New(g, Options{Fault: inj})
		if err != nil {
			t.Fatal(err)
		}
		if progsOf(e) != nil {
			t.Fatal("programs compiled with a fault injector configured; chaos semantics require the interpreted path")
		}
	})
}

// TestRecompileOnReconfigure flips queue placements repeatedly mid-run and
// checks (a) the compiled program set always matches the live placement,
// (b) no tuple is lost or duplicated across the recompilations, and (c)
// cost attribution still ranks the heavy operator first — the controller's
// argmax must not care whether regions were compiled, interpreted, or
// switched between the two mid-stream.
func TestRecompileOnReconfigure(t *testing.T) {
	const tuples = 30000
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = tuples
	src := g.AddSource(gen, spl.NewCostVar(0))
	light := spl.NewCostVar(200)
	w1 := g.AddOperator(spl.NewWork("light", light), light)
	if err := g.Connect(src, 0, w1, 0, 1); err != nil {
		t.Fatal(err)
	}
	heavy := spl.NewCostVar(100000)
	w2 := g.AddOperator(spl.NewWork("heavy", heavy), heavy)
	if err := g.Connect(w1, 0, w2, 0, 1); err != nil {
		t.Fatal(err)
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, nil)
	if err := g.Connect(w2, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}

	e := startEngine(t, g, Options{MaxThreads: 4})
	if err := e.SetThreadCount(2); err != nil {
		t.Fatal(err)
	}

	placements := [][]bool{
		{false, false, false, false}, // all manual: one source program
		{false, true, false, false},  // queue at light
		{false, false, true, false},  // queue at heavy
		{false, true, true, true},    // all dynamic: no programs
		{false, false, true, true},   // queue at heavy and sink
	}
	for round := 0; round < 10; round++ {
		place := placements[round%len(placements)]
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		progs := progsOf(e)
		for n := 0; n < g.NumNodes(); n++ {
			hasQueue := place[n]
			if hasQueue && progs != nil && progs[n] != nil && progs[n].steps[0].node != graph.NodeID(n) {
				t.Fatalf("round %d: program at queue node %d starts at node %d", round, n, progs[n].steps[0].node)
			}
			if !hasQueue && n != 0 && progs != nil && progs[n] != nil {
				t.Fatalf("round %d: manual non-source node %d has a queue-head program", round, n)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitCount(t, sink, tuples, 30*time.Second)
	if !e.DrainAndStop(10 * time.Second) {
		t.Fatal("engine did not drain")
	}
	if got := sink.Count(); got != tuples {
		t.Fatalf("sink saw %d tuples across recompilations, want exactly %d", got, tuples)
	}
	checkSchedConservation(t, e)

	cost := e.CostMetric()
	argmax := 0
	for i, c := range cost {
		if c > cost[argmax] {
			argmax = i
		}
	}
	if argmax != int(w2) {
		t.Fatalf("cost metric argmax = node %d (%v), want heavy node %d", argmax, cost, w2)
	}
}

// TestFusedConservationUnderShrink runs the burst topology with a compiled
// manual tail (work -> sink) hanging off a dynamic expand, shrinks the pool
// mid-run, and requires exact delivery plus the deque-flow invariant — the
// compiled path must conserve tuples under steals and retiring workers just
// like the interpreted one.
func TestFusedConservationUnderShrink(t *testing.T) {
	const tuples, factor = 2000, 8
	g, sink := expandChain(t, tuples, factor, 100)
	e := startEngine(t, g, Options{MaxThreads: 8})
	// Queue at expand and at work; work's region (work -> sink) compiles.
	place := make([]bool, g.NumNodes())
	place[1], place[2] = true, true
	if err := e.ApplyPlacement(place); err != nil {
		t.Fatal(err)
	}
	if progs := progsOf(e); progs == nil || progs[2] == nil {
		t.Fatal("no compiled program at the work queue; test is not exercising the fused path")
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, 1000, 10*time.Second) // mid-flight
	if err := e.SetThreadCount(1); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sink, tuples*factor, 30*time.Second)
	if !e.DrainAndStop(20 * time.Second) {
		t.Fatal("engine did not drain after shrink")
	}
	if got := sink.Count(); got != tuples*factor {
		t.Fatalf("sink saw %d tuples after shrink, want %d", got, tuples*factor)
	}
	checkSchedConservation(t, e)
	if s := e.SchedStats(); s.FusedTuples == 0 {
		t.Fatal("fused counters never moved; compiled path not taken")
	}
}

// syncFusedSourceStep drives a source-head compiled region synchronously:
// the generator's batched emissions are captured into the emitter's source
// buffer exactly as sourceLoop would, then flushed through the compiled
// program on the calling goroutine.
func syncFusedSourceStep(tb testing.TB, g *graph.Graph, srcBatch int) func() {
	tb.Helper()
	e, err := New(g, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := e.cfg.Load()
	if cfg.progs == nil || cfg.progs[0] == nil {
		tb.Fatal("no compiled source program for the all-manual chain")
	}
	em := e.newEmitter(e.reconfigTS)
	em.cfg = cfg
	em.srcProg = cfg.progs[0]
	gen := g.Node(0).Op.(spl.Source)
	if sg, ok := gen.(*spl.Generator); ok {
		sg.Batch = srcBatch
	}
	return func() {
		em.node = 0
		gen.Next(em)
		if len(em.srcBuf) > 0 {
			e.flushSource(em)
		}
	}
}

// TestFusedSourceSteadyStateAllocFree holds the compiled source-batch path
// to the same bar as the queue-crossing guards: capture, flush, every chain
// stage, and the sink recycle allocate nothing once buffers are warm.
func TestFusedSourceSteadyStateAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector")
	}
	g, _ := buildChainB(t, 4, 0, 0)
	step := syncFusedSourceStep(t, g, 32)
	for i := 0; i < 128; i++ {
		step() // warm the tuple pool and the region scratch buffers
	}
	avg := testing.AllocsPerRun(2000, step)
	if avg > 0.05 {
		t.Fatalf("compiled source batch allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestFusedQueueHeadMatchesScalarCounts pushes an identical bounded stream
// through a compiled queue-head region and through the interpreted path and
// requires identical sink counts — the cheap end-to-end equivalence check
// (FuzzBatchEquivalence compares full tuple values and order).
func TestFusedQueueHeadMatchesScalarCounts(t *testing.T) {
	counts := make(map[string]uint64)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fused", false}, {"scalar", true}} {
		g, sink := expandChain(t, 500, 4, 0)
		e, err := New(g, Options{DisableRegionCompile: mode.disable})
		if err != nil {
			t.Fatal(err)
		}
		place := make([]bool, g.NumNodes())
		place[1] = true // queue at expand; expand -> work -> sink compiles
		if err := e.ApplyPlacement(place); err != nil {
			t.Fatal(err)
		}
		cfg := e.cfg.Load()
		if mode.disable && cfg.progs != nil {
			t.Fatal("scalar engine has compiled programs")
		}
		if !mode.disable && (cfg.progs == nil || cfg.progs[1] == nil) {
			t.Fatal("fused engine has no program at the expand queue")
		}
		em := e.newEmitter(e.reconfigTS)
		em.cfg = cfg
		gen := g.Node(0).Op.(spl.Source)
		q := cfg.queues[1]
		batch := make([]item, workerBatch)
		for {
			em.node = 0
			if !gen.Next(em) {
				break
			}
			for {
				k := q.TryPopN(batch)
				if k == 0 {
					break
				}
				e.executeBatch(em, 1, batch[:k])
			}
		}
		counts[mode.name] = sink.Count()
		if !mode.disable {
			if s := e.SchedStats(); s.FusedTuples == 0 {
				t.Fatal("fused run never took the compiled path")
			}
		}
	}
	if counts["fused"] != counts["scalar"] || counts["fused"] != 500*4 {
		t.Fatalf("fused delivered %d, scalar %d, want both %d", counts["fused"], counts["scalar"], 500*4)
	}
}

// buildChainB is buildChain for benchmarks too (testing.TB).
func buildChainB(tb testing.TB, n int, tuples uint64, flops float64) (*graph.Graph, *spl.CountingSink) {
	tb.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = tuples
	prev := g.AddSource(gen, spl.NewCostVar(0))
	for i := 0; i < n; i++ {
		cv := spl.NewCostVar(flops)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			tb.Fatal(err)
		}
		prev = id
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		tb.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}
