package exec

import (
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/obs"
	"streamelastic/internal/spl"
	"streamelastic/internal/state"
)

// CheckpointConfig wires a Checkpointer to its engine's surroundings: the
// durable store, the cadence, and the transport hooks that make a restored
// state cut exactly-once instead of merely crash-consistent.
type CheckpointConfig struct {
	// Store persists checkpoint records; required.
	Store state.Store
	// Interval between periodic checkpoints (default 1s).
	Interval time.Duration
	// FullEvery forces a full snapshot every n-th checkpoint, bounding the
	// incremental chain a recovery must replay (default 16).
	FullEvery int
	// Watermark returns the input transport's emit watermark — the wire
	// sequence of the last tuple handed to the engine. Read under the
	// pause barrier, it stamps the checkpoint with its exact input cut.
	// Nil means no transport (watermark 0).
	Watermark func() uint64
	// Rewind rolls the input transport back to a committed watermark so
	// the tuples after the cut are retransmitted. Called with the engine
	// paused. Nil means no transport replay (restore only).
	Rewind func(to uint64)
	// CommitFloor advances the transport's acknowledgement floor after an
	// epoch commits: everything at or below the watermark is durable and
	// may leave the sender's retransmit ring. Nil when acks are ungated.
	CommitFloor func(wm uint64)
}

// Checkpointer takes periodic incremental snapshots of every
// state.Snapshotter operator in an engine and drives stateful recovery:
// when a quarantined recoverable operator's timeout expires, the
// supervisor parks it on the checkpointer, which restores the last
// committed cut and rewinds the transport so the gap is replayed.
//
// Consistency contract: snapshots are taken under the engine's pause
// barrier, so every operator's state and the input watermark belong to one
// point in the tuple stream. Epochs become recoverable only at Commit;
// a crash mid-epoch (CkptCrash) loses at most the uncommitted epoch.
type Checkpointer struct {
	e   *Engine
	cfg CheckpointConfig

	snaps  []state.Snapshotter // per node; nil = not a snapshotter
	filter []bool              // per node; replay-filter ops skip recovery restores

	recoverCh chan int
	stopCh    chan struct{}
	doneCh    chan struct{}
	started   bool

	// Epoch bookkeeping; touched only by the run goroutine (and by
	// NewCheckpointer/Restore before Start).
	epoch     uint64
	sinceFull int
	enc       state.Encoder

	total     *obs.Counter
	errors    *obs.Counter
	skipped   *obs.Counter
	restores  *obs.Counter
	lastBytes *obs.Gauge
	lastWM    *obs.Gauge
	lastEpoch *obs.Gauge
	durHist   *obs.Histogram
	bytesHist *obs.Histogram
	dirtyHist *obs.Histogram
}

// NewCheckpointer scans e's graph for state.Snapshotter operators, turns on
// their dirty-key tracking, arms the supervisor's drop-then-restore hook,
// and registers checkpoint metrics. Call before Engine.Start; call Restore
// to load a previous run's state, then Start to begin the periodic loop.
func NewCheckpointer(e *Engine, cfg CheckpointConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = 16
	}
	n := e.g.NumNodes()
	c := &Checkpointer{
		e:         e,
		cfg:       cfg,
		snaps:     make([]state.Snapshotter, n),
		filter:    make([]bool, n),
		recoverCh: make(chan int, n),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	recoverable := make([]bool, n)
	for i := 0; i < n; i++ {
		op := e.g.Node(graph.NodeID(i)).Op
		snap, ok := op.(state.Snapshotter)
		if !ok {
			continue
		}
		snap.StateTrack(true)
		c.snaps[i] = snap
		recoverable[i] = true
		if _, ok := op.(state.ReplayFilter); ok {
			c.filter[i] = true
		}
	}
	if e.sup != nil {
		e.sup.armRecovery(recoverable, c.requestRecover)
	}
	r := e.reg
	c.total = r.Counter(obs.MetricCkptTotal, "Checkpoints committed.")
	c.errors = r.Counter(obs.MetricCkptErrors, "Checkpoint append/commit/restore failures.")
	c.skipped = r.Counter(obs.MetricCkptSkipped, "Checkpoints skipped while an operator was quarantined.")
	c.restores = r.Counter(obs.MetricCkptRestores, "State restores performed.")
	c.lastBytes = r.Gauge(obs.MetricCkptLastBytes, "Snapshot bytes of the last committed checkpoint.")
	c.lastWM = r.Gauge(obs.MetricCkptWatermark, "Input watermark of the last committed checkpoint.")
	c.lastEpoch = r.Gauge(obs.MetricCkptEpoch, "Epoch of the last committed checkpoint.")
	c.durHist = r.Histogram(obs.MetricCkptDuration, "Wall time per checkpoint (pause through commit).")
	c.bytesHist = r.Histogram(obs.MetricCkptBytes, "Snapshot bytes per checkpoint.")
	c.dirtyHist = r.Histogram(obs.MetricCkptDirtyKeys, "Dirty keys captured per checkpoint.")
	return c
}

// requestRecover is the supervisor's hook: park the node on the run loop.
// The channel holds one slot per node and the supervisor requests at most
// one recovery per engagement, so the send never blocks.
func (c *Checkpointer) requestRecover(node int) { c.recoverCh <- node }

// Start launches the periodic checkpoint loop.
func (c *Checkpointer) Start() {
	if c.started {
		return
	}
	c.started = true
	go c.run()
}

// Stop halts the loop and closes the store.
func (c *Checkpointer) Stop() {
	if !c.started {
		_ = c.cfg.Store.Close()
		return
	}
	c.started = false
	close(c.stopCh)
	<-c.doneCh
	_ = c.cfg.Store.Close()
}

func (c *Checkpointer) run() {
	defer close(c.doneCh)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case node := <-c.recoverCh:
			nodes := []int{node}
			// Coalesce recoveries requested around the same expiry: one
			// restore serves them all (it is a whole-engine cut anyway).
			for {
				select {
				case more := <-c.recoverCh:
					nodes = append(nodes, more)
					continue
				default:
				}
				break
			}
			c.recover(nodes)
		case <-tick.C:
			// Time-driven expiry: a quarantined stateful operator can have
			// stalled its own input (see supervision.pollExpired), so the
			// delivery-driven expiry check may never run again.
			if c.e.sup != nil {
				c.e.sup.pollExpired(time.Now().UnixNano())
			}
			c.CheckpointNow()
		}
	}
}

// pendingRec is one operator snapshot captured under the pause, written to
// the store after resume.
type pendingRec struct {
	op    int
	data  []byte
	dirty int
}

// CheckpointNow takes one checkpoint: pause, snapshot every tracked
// operator (full or incremental), stamp the transport watermark, resume,
// then append + commit outside the pause. Returns whether an epoch was
// committed.
func (c *Checkpointer) CheckpointNow() bool {
	if c.e.stop.Load() {
		return false
	}
	start := time.Now()
	full := c.sinceFull >= c.cfg.FullEvery || c.epoch == 0

	c.e.reconfigMu.Lock()
	c.e.pauseAll()
	// A quarantined operator has been dropping tuples: a cut taken now
	// would advance the watermark past input the operator never saw, and
	// recovery from it would lose those tuples. Skip until it recovers.
	// Exact under the pause: nothing quarantines or recovers mid-check.
	if c.e.sup != nil {
		for i := range c.snaps {
			if c.snaps[i] != nil && c.e.sup.nodes[i].until.Load() != 0 {
				c.e.resumeAll()
				c.e.reconfigMu.Unlock()
				c.skipped.Add(1)
				return false
			}
		}
	}
	var wm uint64
	if c.cfg.Watermark != nil {
		wm = c.cfg.Watermark()
	}
	var pend []pendingRec
	dirtyTotal := 0
	for i, snap := range c.snaps {
		if snap == nil {
			continue
		}
		c.enc.Reset()
		dirty := snap.StateSnapshot(&c.enc, full)
		if !full && dirty == 0 {
			continue // nothing changed since the last checkpoint
		}
		dirtyTotal += dirty
		pend = append(pend, pendingRec{op: i, data: append([]byte(nil), c.enc.Bytes()...), dirty: dirty})
	}
	c.e.resumeAll()
	c.e.reconfigMu.Unlock()

	// Persist outside the pause: the captured bytes are private copies, so
	// the engine runs while the store writes.
	epoch := c.epoch + 1
	inj := c.e.inj()
	site := c.e.opts.ObsPE
	if inj != nil && inj.Fire(fault.CkptCrash, site) {
		// Simulate dying mid-append: a torn record, no commit. The dirty
		// sets were already drained into this failed epoch, so the next
		// snapshot must be full or those keys would never be recaptured.
		if ta, ok := c.cfg.Store.(state.TornAppender); ok && len(pend) > 0 {
			_ = ta.AppendTorn(state.Record{Epoch: epoch, Op: int32(pend[0].op), Full: full, Watermark: wm, Data: pend[0].data})
		}
		c.sinceFull = c.cfg.FullEvery
		c.errors.Add(1)
		return false
	}
	corrupt := inj != nil && inj.Fire(fault.CkptCorrupt, site)
	bytes := 0
	for i, p := range pend {
		rec := state.Record{Epoch: epoch, Op: int32(p.op), Full: full, Watermark: wm, Data: p.data}
		var err error
		if corrupt && i == 0 {
			// Storage-level bit flip inside a record that will be
			// committed: loads must detect it by CRC and skip it.
			if co, ok := c.cfg.Store.(state.Corrupter); ok {
				err = co.AppendCorrupt(rec)
			} else {
				err = c.cfg.Store.Append(rec)
			}
		} else {
			err = c.cfg.Store.Append(rec)
		}
		if err != nil {
			c.sinceFull = c.cfg.FullEvery
			c.errors.Add(1)
			return false
		}
		bytes += len(p.data)
	}
	if err := c.cfg.Store.Commit(epoch); err != nil {
		c.sinceFull = c.cfg.FullEvery
		c.errors.Add(1)
		return false
	}
	c.epoch = epoch
	if full {
		c.sinceFull = 0
		// Older epochs are redundant under a committed full snapshot.
		if err := c.cfg.Store.Compact(epoch); err != nil {
			c.errors.Add(1)
		}
	} else {
		c.sinceFull++
	}
	if c.cfg.CommitFloor != nil {
		c.cfg.CommitFloor(wm)
	}
	c.total.Add(1)
	c.lastBytes.Set(float64(bytes))
	c.lastWM.Set(float64(wm))
	c.lastEpoch.Set(float64(epoch))
	c.durHist.Observe(time.Since(start))
	c.bytesHist.Observe(time.Duration(bytes))
	c.dirtyHist.Observe(time.Duration(dirtyTotal))
	kind := "incr"
	if full {
		kind = "full"
	}
	c.e.rec.Record(obs.EvCheckpoint, c.e.recPE, int64(epoch), int64(bytes), kind)
	return true
}

// Restore loads the last committed cut into the operators at launch. No
// rewind happens: a fresh process has a fresh wire-sequence domain, and
// replay across restarts is the sender's retransmit-on-reconnect. Call
// after NewCheckpointer, before Engine.Start.
func (c *Checkpointer) Restore() error {
	recs, err := c.cfg.Store.Load()
	if err != nil {
		c.errors.Add(1)
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		op := int(r.Op)
		if op < 0 || op >= len(c.snaps) || c.snaps[op] == nil {
			continue
		}
		if err := c.snaps[op].StateRestore(state.NewDecoder(r.Data), r.Full); err != nil {
			c.errors.Add(1)
		}
	}
	// Resume the epoch sequence where the previous process left it, and
	// count the incremental chain since the last full so FullEvery keeps
	// its bound across restarts.
	lastFull := uint64(0)
	seen := map[uint64]bool{}
	for _, r := range recs {
		if r.Full && r.Epoch > lastFull {
			lastFull = r.Epoch
		}
		if r.Epoch > c.epoch {
			c.epoch = r.Epoch
		}
		seen[r.Epoch] = true
	}
	c.sinceFull = 0
	for e := range seen {
		if e > lastFull {
			c.sinceFull++
		}
	}
	c.restores.Add(1)
	c.lastEpoch.Set(float64(c.epoch))
	c.e.rec.Record(obs.EvRestore, c.e.recPE, -1, int64(c.epoch), "launch")
	return nil
}

// recover restores the last committed cut while the engine is paused and
// rewinds the transport to its watermark, then releases the quarantined
// nodes. Replay-filter operators (Reorder) keep their live state: their
// cursor is the exactly-once dedup for the replayed range.
func (c *Checkpointer) recover(nodes []int) {
	if c.e.stop.Load() {
		return
	}
	c.e.reconfigMu.Lock()
	c.e.pauseAll()
	recs, err := c.cfg.Store.Load()
	if err != nil {
		c.errors.Add(1)
		recs = nil
	}
	inj := c.e.inj()
	site := c.e.opts.ObsPE
	var wm uint64
	if len(recs) == 0 {
		// Nothing committed yet: the cut is the stream's beginning. Acks
		// were gated at zero from the start, so the sender's ring still
		// holds everything; Reset + rewind(0) replays the whole input.
		for i, snap := range c.snaps {
			if snap == nil || c.filter[i] {
				continue
			}
			if rs, ok := snap.(spl.Resettable); ok {
				rs.Reset()
			}
		}
	} else {
		for _, r := range recs {
			op := int(r.Op)
			if op < 0 || op >= len(c.snaps) || c.snaps[op] == nil || c.filter[op] {
				continue
			}
			data := r.Data
			if inj != nil && inj.Fire(fault.RestoreTorn, site) && len(data) > 1 {
				// A record torn mid-read: the decoder must fail cleanly,
				// never panic or apply a half-read delta silently.
				data = data[:len(data)/2]
			}
			if err := c.snaps[op].StateRestore(state.NewDecoder(data), r.Full); err != nil {
				c.errors.Add(1)
			}
		}
		wm = recs[len(recs)-1].Watermark
	}
	if c.cfg.Rewind != nil {
		c.cfg.Rewind(wm)
	}
	c.e.resumeAll()
	c.e.reconfigMu.Unlock()
	if c.e.sup != nil {
		for _, n := range nodes {
			c.e.sup.finishRecovery(n)
		}
	}
	c.restores.Add(1)
	for _, n := range nodes {
		c.e.rec.Record(obs.EvRestore, c.e.recPE, int64(n), int64(c.epoch), "quarantine")
	}
}

// CheckpointStats is the checkpointer's externally visible state.
type CheckpointStats struct {
	Checkpoints  uint64 // epochs committed
	Errors       uint64 // append/commit/restore failures
	Skipped      uint64 // cuts skipped while an operator was quarantined
	Restores     uint64 // state restores (launch + quarantine recovery)
	LastBytes    uint64 // snapshot bytes of the last committed epoch
	Watermark    uint64 // input watermark of the last committed epoch
	Epoch        uint64 // last committed epoch
	StatefulOps  int    // operators under checkpoint
	ReplayFilter int    // of those, replay-filter ops kept live on recovery
}

// Stats returns the checkpointer's counters.
func (c *Checkpointer) Stats() CheckpointStats {
	st := CheckpointStats{
		Checkpoints: c.total.Value(),
		Errors:      c.errors.Value(),
		Skipped:     c.skipped.Value(),
		Restores:    c.restores.Value(),
		LastBytes:   uint64(c.lastBytes.Value()),
		Watermark:   uint64(c.lastWM.Value()),
		Epoch:       uint64(c.lastEpoch.Value()),
	}
	for i := range c.snaps {
		if c.snaps[i] != nil {
			st.StatefulOps++
			if c.filter[i] {
				st.ReplayFilter++
			}
		}
	}
	return st
}
