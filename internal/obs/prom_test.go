package obs

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusBasic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", Label{Key: "code", Value: "200"})
	c.Add(7)
	g := r.Gauge("temp", "Temperature.")
	g.Set(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		`requests_total{code="200"} 7` + "\n",
		"# TYPE temp gauge\n",
		"temp 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "h", Label{Key: "v", Value: "a\"b\\c\nd"})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `m_total{v="a\"b\\c\nd"} 0`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, buf.String())
	}
}

func TestWritePrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "line1\nline2 \\ end")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP m_total line1\nline2 \\ end`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, buf.String())
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.")
	h.Observe(100 * time.Nanosecond) // bucket 6, upper bound 128e-9
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Microsecond) // bucket 9, upper bound 1024e-9
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1.28e-07"} 2` + "\n",
		`lat_seconds_bucket{le="1.024e-06"} 3` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Trimmed: nothing past the highest non-empty bucket except +Inf.
	if strings.Contains(out, `le="2.048e-06"`) {
		t.Fatalf("output contains empty trailing bucket:\n%s", out)
	}
}

func TestWritePrometheusAllMergesFamilies(t *testing.T) {
	r0 := NewRegistry(Label{Key: "pe", Value: "0"})
	r1 := NewRegistry(Label{Key: "pe", Value: "1"})
	r0.Counter("shared_total", "Shared.").Add(1)
	r1.Counter("shared_total", "Shared.").Add(2)
	var buf bytes.Buffer
	if err := WritePrometheusAll(&buf, r0, r1, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# HELP shared_total"); n != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE shared_total"); n != 1 {
		t.Fatalf("TYPE emitted %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`shared_total{pe="0"} 1` + "\n",
		`shared_total{pe="1"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusWellFormed checks structural invariants on a mixed
// exposition: every non-comment line is `name{labels} value`, each family's
// HELP/TYPE appears exactly once and before its samples.
func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry(Label{Key: "pe", Value: "0"})
	r.Counter("a_total", "A.").Add(3)
	r.Gauge("b", "B.").Set(-0.25)
	r.Histogram("c_seconds", "C.").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	seenType := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if seenType[parts[2]] {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			seenType[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		// Sample line: must contain a space separating name+labels from value.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
			name = name[:j]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !seenType[name] && !seenType[base] {
			t.Fatalf("sample %q appears before its TYPE line", line)
		}
	}
}

func FuzzPromEscape(f *testing.F) {
	f.Add("plain")
	f.Add(`with "quotes" and \slashes\`)
	f.Add("new\nline")
	f.Fuzz(func(t *testing.T, v string) {
		got := escapeLabelValue(v)
		if strings.ContainsRune(got, '\n') {
			t.Fatalf("escaped value %q contains a raw newline", got)
		}
		// Unescape and verify round-trip.
		var un strings.Builder
		for i := 0; i < len(got); i++ {
			if got[i] == '\\' && i+1 < len(got) {
				switch got[i+1] {
				case '\\':
					un.WriteByte('\\')
				case '"':
					un.WriteByte('"')
				case 'n':
					un.WriteByte('\n')
				default:
					t.Fatalf("unknown escape \\%c in %q", got[i+1], got)
				}
				i++
				continue
			}
			if got[i] == '"' {
				t.Fatalf("unescaped quote in %q", got)
			}
			un.WriteByte(got[i])
		}
		if un.String() != v {
			t.Fatalf("round-trip mismatch: %q -> %q -> %q", v, got, un.String())
		}
	})
}
