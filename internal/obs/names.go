package obs

// Canonical metric names. Producers register under these so the /statusz
// builder and tests can find series without stringly-typed drift.
const (
	// Engine.
	MetricOperators  = "engine_operators"
	MetricThreads    = "engine_threads"
	MetricQueues     = "engine_queues"
	MetricUptime     = "engine_uptime_seconds"
	MetricSinkTuples = "engine_sink_tuples_total"
	MetricPanics     = "engine_operator_panics_total"
	MetricQueueDepth = "engine_queue_depth"
	MetricLatency    = "engine_latency_seconds"

	// Coordinator.
	MetricSettled = "coordinator_settled"

	// Work-stealing scheduler.
	MetricSchedLocalPushes  = "sched_local_pushes_total"
	MetricSchedLocalPops    = "sched_local_pops_total"
	MetricSchedSteals       = "sched_steals_total"
	MetricSchedStolenTuples = "sched_stolen_tuples_total"
	MetricSchedOverflows    = "sched_overflows_total"
	MetricSchedInjected     = "sched_injected_total"
	MetricSchedParks        = "sched_parks_total"
	MetricSchedWakes        = "sched_wakes_total"
	MetricSchedFusedBatches = "sched_fused_batches_total"
	MetricSchedFusedTuples  = "sched_fused_tuples_total"

	// Supervision.
	MetricSupQuarantines = "supervision_quarantines_total"
	MetricSupReleases    = "supervision_releases_total"
	MetricSupDropped     = "supervision_dropped_total"
	MetricSupActive      = "supervision_quarantined"

	// Per-operator sampling.
	MetricOpExec      = "op_exec_seconds"
	MetricOpQueueWait = "op_queue_wait_seconds"

	// Transport.
	MetricTransportTuples      = "transport_tuples_total"
	MetricTransportFrames      = "transport_frames_total"
	MetricTransportBytes       = "transport_bytes_total"
	MetricTransportDropped     = "transport_dropped_total"
	MetricTransportFlushes     = "transport_flushes_total"
	MetricTransportRetransmits = "transport_retransmits_total"
	MetricTransportReconnects  = "transport_reconnects_total"
	MetricTransportUnacked     = "transport_unacked"
	MetricTransportDups        = "transport_dups_dropped_total"
	MetricTransportResumes     = "transport_resumes_total"
	// MetricTransportDrainSize is the writer's staging-ring drain-size
	// histogram (tuples per drain). Formerly transport_batch_size, renamed
	// because it records ring drains, not wire batches or flush batches.
	MetricTransportDrainSize = "transport_drain_size"

	// Watchdog.
	MetricWatchdogHealthy  = "watchdog_healthy"
	MetricWatchdogFrozen   = "watchdog_frozen"
	MetricWatchdogTrips    = "watchdog_trips_total"
	MetricWatchdogRecovers = "watchdog_recovers_total"

	// Cluster width and migration.
	MetricClusterWidthMin       = "cluster_width_min"
	MetricClusterWidthMax       = "cluster_width_max"
	MetricClusterWidthStep      = "cluster_width_step"
	MetricClusterWidthDesired   = "cluster_width_desired"
	MetricClusterWidthAllocated = "cluster_width_allocated"
	MetricClusterWidthPending   = "cluster_width_pending"
	MetricClusterGeneration     = "cluster_generation"
	MetricClusterMigStarted     = "cluster_migrations_started_total"
	MetricClusterMigCompleted   = "cluster_migrations_completed_total"
	MetricClusterMigAborted     = "cluster_migrations_aborted_total"
	MetricClusterReplayed       = "cluster_replayed_tuples_total"

	// Checkpointing.
	MetricCkptTotal     = "checkpoint_total"
	MetricCkptErrors    = "checkpoint_errors_total"
	MetricCkptSkipped   = "checkpoint_skipped_total"
	MetricCkptRestores  = "checkpoint_restores_total"
	MetricCkptLastBytes = "checkpoint_last_bytes"
	MetricCkptWatermark = "checkpoint_watermark"
	MetricCkptEpoch     = "checkpoint_epoch"
	MetricCkptDuration  = "checkpoint_duration_seconds"
	MetricCkptBytes     = "checkpoint_bytes"
	MetricCkptDirtyKeys = "checkpoint_dirty_keys"
)

// RegisterSettled registers the coordinator's settled gauge on r. Every
// coordinator owner (runtime, PE job, streamrun's single-PE path) goes
// through here so the series keeps one name and help string.
func RegisterSettled(r *Registry, settled func() bool) {
	r.GaugeFunc(MetricSettled, "Whether the elastic coordinator has settled (1) or is still adapting (0).", func() float64 {
		if settled() {
			return 1
		}
		return 0
	})
}
