// Package obs is the runtime's unified observability subsystem: a per-PE
// telemetry registry of atomic counters, gauges, and sharded log2-bucketed
// histograms registered by name+labels; a bounded flight recorder of
// structured runtime events; and Prometheus text exposition over the
// registries. It replaces the ad-hoc reporting surfaces that grew with the
// engine (StreamStats, SchedCounters, /statusz formatting, trace CSV) with
// one read path: producers register instruments or collector callbacks
// once, and every consumer — /metrics, /statusz, dashboards — reads the
// same series.
//
// Instruments are built for the engine's hot path: counter increments and
// histogram observations are single atomic operations with no allocation,
// and collector callbacks are only invoked at scrape time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// Kind discriminates registered series types.
type Kind uint8

// Series kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing series. Inc and Add are single
// atomic adds; the trailing pad keeps adjacent counters off one cache line
// so independent hot-path writers do not false-share.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value series.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one registered (label set -> collector) binding. Exactly one
// collector field is non-nil, matching the family's kind.
type series struct {
	labels []Label // const labels merged in, sorted by key
	sig    string  // canonical label signature: identity within the family

	counter   *Counter
	gauge     *Gauge
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
	histFn    func() HistSnapshot
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	bySig  map[string]*series
}

// Registry holds one processing element's metric families. All methods are
// safe for concurrent use; instrument operations (Counter.Inc, Gauge.Set,
// Histogram.Observe) never touch the registry lock.
type Registry struct {
	constLabels []Label

	mu       sync.Mutex
	families map[string]*family
	names    []string // family names, sorted
}

// NewRegistry returns an empty registry. constLabels are attached to every
// series it registers — a job gives each PE's registry a pe="N" label so
// the merged /metrics exposition keeps the PEs' series distinct.
func NewRegistry(constLabels ...Label) *Registry {
	cl := append([]Label(nil), constLabels...)
	sort.Slice(cl, func(i, j int) bool { return cl[i].Key < cl[j].Key })
	return &Registry{constLabels: cl, families: make(map[string]*family)}
}

// ConstLabels returns the labels attached to every series in the registry.
func (r *Registry) ConstLabels() []Label { return append([]Label(nil), r.constLabels...) }

// mergeLabels combines the registry's const labels with per-series labels
// into one sorted set.
func (r *Registry) mergeLabels(labels []Label) []Label {
	out := make([]Label, 0, len(r.constLabels)+len(labels))
	out = append(out, r.constLabels...)
	out = append(out, labels...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelSig renders a canonical signature for a sorted label set.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sig := ""
	for _, l := range labels {
		sig += fmt.Sprintf("%q=%q,", l.Key, l.Value)
	}
	return sig
}

// getFamily returns the family for name, creating it on first registration;
// it panics on a kind conflict, which is always a programming error.
// The caller holds r.mu.
func (r *Registry) getFamily(name, help string, kind Kind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bySig: make(map[string]*series)}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// add installs s in f, or returns the already-registered series with the
// same label signature (nil when there is none). The caller holds r.mu.
func (f *family) add(s *series) *series {
	if prev := f.bySig[s.sig]; prev != nil {
		return prev
	}
	f.bySig[s.sig] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
	return nil
}

// set installs s in f, replacing any series already registered under the
// same label signature. Replacement swaps the series pointer, never mutates
// the old series: a Gather that copied the slice before the swap still reads
// the old (immutable) binding safely. The caller holds r.mu.
func (f *family) set(s *series) {
	if prev := f.bySig[s.sig]; prev != nil {
		f.bySig[s.sig] = s
		for i, old := range f.series {
			if old == prev {
				f.series[i] = s
				break
			}
		}
		return
	}
	f.bySig[s.sig] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
}

// Counter registers (or returns the existing) counter for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindCounter)
	s := &series{labels: r.mergeLabels(labels), counter: &Counter{}}
	s.sig = labelSig(s.labels)
	if prev := f.add(s); prev != nil {
		if prev.counter == nil {
			panic(fmt.Sprintf("obs: metric %q%s already registered as a callback", name, s.sig))
		}
		return prev.counter
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be safe for concurrent use. Registering a second collector
// for the same name+labels panics.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindCounter)
	s := &series{labels: r.mergeLabels(labels), counterFn: fn}
	s.sig = labelSig(s.labels)
	if f.add(s) != nil {
		panic(fmt.Sprintf("obs: duplicate registration of %q%s", name, s.sig))
	}
}

// Gauge registers (or returns the existing) gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindGauge)
	s := &series{labels: r.mergeLabels(labels), gauge: &Gauge{}}
	s.sig = labelSig(s.labels)
	if prev := f.add(s); prev != nil {
		if prev.gauge == nil {
			panic(fmt.Sprintf("obs: metric %q%s already registered as a callback", name, s.sig))
		}
		return prev.gauge
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindGauge)
	s := &series{labels: r.mergeLabels(labels), gaugeFn: fn}
	s.sig = labelSig(s.labels)
	if f.add(s) != nil {
		panic(fmt.Sprintf("obs: duplicate registration of %q%s", name, s.sig))
	}
}

// SetCounterFunc registers a counter collector for name+labels, replacing
// any previous binding for the same series. The rebind registrar for
// endpoints that churn at runtime (a re-dialed stream after a region
// migration re-registers under the same labels without panicking).
func (r *Registry) SetCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindCounter)
	s := &series{labels: r.mergeLabels(labels), counterFn: fn}
	s.sig = labelSig(s.labels)
	f.set(s)
}

// SetGaugeFunc registers a gauge collector for name+labels, replacing any
// previous binding for the same series.
func (r *Registry) SetGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindGauge)
	s := &series{labels: r.mergeLabels(labels), gaugeFn: fn}
	s.sig = labelSig(s.labels)
	f.set(s)
}

// Histogram registers (or returns the existing) histogram for name+labels.
// Observations are durations; buckets are log2 in nanoseconds and exported
// in seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindHistogram)
	s := &series{labels: r.mergeLabels(labels), hist: &Histogram{}}
	s.sig = labelSig(s.labels)
	if prev := f.add(s); prev != nil {
		if prev.hist == nil {
			panic(fmt.Sprintf("obs: metric %q%s already registered as a callback", name, s.sig))
		}
		return prev.hist
	}
	return s.hist
}

// HistogramFunc registers a histogram whose snapshot is read from fn at
// scrape time — the bridge for histograms that live outside the registry
// (the engine's latency histogram, the transport's batch-size buckets).
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindHistogram)
	s := &series{labels: r.mergeLabels(labels), histFn: fn}
	s.sig = labelSig(s.labels)
	if f.add(s) != nil {
		panic(fmt.Sprintf("obs: duplicate registration of %q%s", name, s.sig))
	}
}

// SetHistogramFunc registers a histogram snapshot collector for name+labels,
// replacing any previous binding for the same series.
func (r *Registry) SetHistogramFunc(name, help string, fn func() HistSnapshot, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, KindHistogram)
	s := &series{labels: r.mergeLabels(labels), histFn: fn}
	s.sig = labelSig(s.labels)
	f.set(s)
}

// Sample is one series' current value as returned by Gather.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value carries gauges (and a float rendering of counters); U carries
	// counters at full precision. Hist is set for histogram series.
	Value float64
	U     uint64
	Hist  *HistSnapshot
}

// collect evaluates one series. Called outside the registry lock so
// collector callbacks may take their own locks freely.
func (s *series) collect(name string, kind Kind) Sample {
	out := Sample{Name: name, Labels: s.labels, Kind: kind}
	switch {
	case s.counter != nil:
		out.U = s.counter.Value()
		out.Value = float64(out.U)
	case s.counterFn != nil:
		out.U = s.counterFn()
		out.Value = float64(out.U)
	case s.gauge != nil:
		out.Value = s.gauge.Value()
	case s.gaugeFn != nil:
		out.Value = s.gaugeFn()
	case s.hist != nil:
		h := s.hist.Snapshot()
		out.Hist = &h
	case s.histFn != nil:
		h := s.histFn()
		out.Hist = &h
	}
	return out
}

// snapshotFamilies copies the family list (series slices included) so
// collection can run without the registry lock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.names))
	for _, name := range r.names {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind}
		cp.series = append(cp.series, f.series...)
		out = append(out, cp)
	}
	return out
}

// Gather evaluates every registered series, sorted by name then label
// signature — a deterministic scrape for renderers like the /statusz
// builder.
func (r *Registry) Gather() []Sample {
	var out []Sample
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			out = append(out, s.collect(f.name, f.kind))
		}
	}
	return out
}
