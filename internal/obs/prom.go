package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry's series in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusAll(w, r)
}

// WritePrometheusAll merges several registries into one exposition: each
// metric name gets a single # HELP/# TYPE pair (the format allows only
// one), with the series of every registry listed under it — per-PE
// registries stay distinguishable through their pe const label. Help text
// is taken from the first registry that registered the name.
func WritePrometheusAll(w io.Writer, regs ...*Registry) error {
	type merged struct {
		help   string
		kind   Kind
		series []*series
	}
	byName := make(map[string]*merged)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, f := range r.snapshotFamilies() {
			m := byName[f.name]
			if m == nil {
				m = &merged{help: f.help, kind: f.kind}
				byName[f.name] = m
				names = append(names, f.name)
			}
			m.series = append(m.series, f.series...)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(m.help), name, m.kind); err != nil {
			return err
		}
		for _, s := range m.series {
			sm := s.collect(name, m.kind)
			if err := writeSample(w, sm); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one series: a single line for counters and gauges, the
// full cumulative bucket/sum/count group for histograms.
func writeSample(w io.Writer, s Sample) error {
	if s.Hist == nil {
		val := formatValue(s.Kind, s)
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelBlock(s.Labels), val)
		return err
	}
	h := s.Hist
	// Trim to the highest non-empty bucket: 64 log2 buckets would dominate
	// the exposition, and the trailing zero run carries no information the
	// +Inf bucket does not.
	maxIdx := -1
	for i, b := range h.Buckets {
		if b > 0 {
			maxIdx = i
		}
	}
	var cum uint64
	for i := 0; i <= maxIdx; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatFloat(h.UpperBound(i), 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.Name, labelBlock(s.Labels, Label{Key: "le", Value: le}), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		s.Name, labelBlock(s.Labels, Label{Key: "le", Value: "+Inf"}), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		s.Name, labelBlock(s.Labels), strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelBlock(s.Labels), h.Count)
	return err
}

// formatValue renders a counter or gauge sample value.
func formatValue(kind Kind, s Sample) string {
	if kind == KindCounter {
		return strconv.FormatUint(s.U, 10)
	}
	return strconv.FormatFloat(s.Value, 'g', -1, 64)
}

// labelBlock renders {k="v",...} for the labels plus any extras, or the
// empty string when there are none.
func labelBlock(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(l Label) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	for _, l := range labels {
		emit(l)
	}
	for _, l := range extra {
		emit(l)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes help text per the text format: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
