package obs

import (
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
	g.SetInt(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge value = %v, want -3", got)
	}
}

func TestDuplicateRegistrationReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", Label{Key: "x", Value: "1"})
	b := r.Counter("dup_total", "help", Label{Key: "x", Value: "1"})
	if a != b {
		t.Fatal("duplicate Counter registration returned a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("duplicate counter does not share state")
	}
	h1 := r.Histogram("h_seconds", "help")
	h2 := r.Histogram("h_seconds", "help")
	if h1 != h2 {
		t.Fatal("duplicate Histogram registration returned a different instrument")
	}
	g1 := r.Gauge("g", "help")
	g2 := r.Gauge("g", "help")
	if g1 != g2 {
		t.Fatal("duplicate Gauge registration returned a different instrument")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name as a different kind did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestDuplicateCollectorPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("fn_total", "help", func() uint64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate CounterFunc registration did not panic")
		}
	}()
	r.CounterFunc("fn_total", "help", func() uint64 { return 2 })
}

func TestConstLabelsMergedAndSorted(t *testing.T) {
	r := NewRegistry(Label{Key: "pe", Value: "3"})
	r.Counter("c_total", "help", Label{Key: "a", Value: "x"})
	samples := r.Gather()
	if len(samples) != 1 {
		t.Fatalf("Gather returned %d samples, want 1", len(samples))
	}
	labels := samples[0].Labels
	if len(labels) != 2 || labels[0].Key != "a" || labels[1].Key != "pe" || labels[1].Value != "3" {
		t.Fatalf("labels = %v, want sorted [a=x pe=3]", labels)
	}
}

func TestGatherDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "help")
	r.Counter("aa_total", "help", Label{Key: "k", Value: "2"})
	r.Counter("aa_total", "help", Label{Key: "k", Value: "1"})
	r.GaugeFunc("mm", "help", func() float64 { return 7 })
	want := []struct {
		name string
		val  string
	}{
		{"aa_total", "1"}, {"aa_total", "2"}, {"mm", ""}, {"zz_total", ""},
	}
	for i := 0; i < 3; i++ {
		samples := r.Gather()
		if len(samples) != len(want) {
			t.Fatalf("Gather returned %d samples, want %d", len(samples), len(want))
		}
		for j, w := range want {
			if samples[j].Name != w.name {
				t.Fatalf("sample %d name = %q, want %q", j, samples[j].Name, w.name)
			}
			if w.val != "" && samples[j].Labels[0].Value != w.val {
				t.Fatalf("sample %d label value = %q, want %q", j, samples[j].Labels[0].Value, w.val)
			}
		}
	}
}

func TestCollectorValuesFlow(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("c_total", "help", func() uint64 { return 42 })
	r.GaugeFunc("g", "help", func() float64 { return 1.5 })
	r.HistogramFunc("h_seconds", "help", func() HistSnapshot {
		return HistSnapshot{Buckets: []uint64{0, 2}, Count: 2, Sum: 6, Scale: 1e-9}
	})
	for _, s := range r.Gather() {
		switch s.Name {
		case "c_total":
			if s.U != 42 {
				t.Fatalf("counter fn U = %d, want 42", s.U)
			}
		case "g":
			if s.Value != 1.5 {
				t.Fatalf("gauge fn value = %v, want 1.5", s.Value)
			}
		case "h_seconds":
			if s.Hist == nil || s.Hist.Count != 2 {
				t.Fatalf("histogram fn snapshot = %+v, want count 2", s.Hist)
			}
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket 6: [64,128)
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Microsecond) // bucket 9: [512,1024) — 1000ns
	h.Observe(-time.Second)     // clamps to 0, bucket 0
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.Buckets[6] != 2 || snap.Buckets[9] != 1 || snap.Buckets[0] != 1 {
		t.Fatalf("buckets = %v, want 2 in [6], 1 in [9], 1 in [0]", snap.Buckets)
	}
	wantSum := (100 + 100 + 1000 + 0) * 1e-9
	if diff := snap.Sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if m := snap.Mean(); m <= 0 {
		t.Fatalf("mean = %v, want > 0", m)
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 6, upper bound 128ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Microsecond) // bucket 13, upper bound 16384ns
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q != 128e-9 {
		t.Fatalf("p50 = %v, want 128ns in seconds", q)
	}
	if q := snap.Quantile(0.99); q != 16384e-9 {
		t.Fatalf("p99 = %v, want 16384ns in seconds", q)
	}
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestRegisterSettled(t *testing.T) {
	r := NewRegistry()
	settled := false
	RegisterSettled(r, func() bool { return settled })
	read := func() float64 {
		for _, s := range r.Gather() {
			if s.Name == MetricSettled {
				return s.Value
			}
		}
		t.Fatal("settled gauge not found")
		return -1
	}
	if v := read(); v != 0 {
		t.Fatalf("settled = %v, want 0", v)
	}
	settled = true
	if v := read(); v != 1 {
		t.Fatalf("settled = %v, want 1", v)
	}
}
