package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic buckets: bucket i covers raw
// values in [2^i, 2^(i+1)), so 64 buckets span any int64 duration in
// nanoseconds.
const histBuckets = 64

// histShards spreads concurrent observers across independent cache-line
// groups (a power of two). The shard is picked from the observed value
// itself — no per-goroutine state, no unsafe — which is enough to break up
// write contention because neighboring latency samples differ in their low
// bits.
const histShards = 4

// histShard is one shard's buckets plus its count/sum, padded so two shards
// never share a cache line.
type histShard struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [48]byte
}

// Histogram is a sharded, lock-free, log2-bucketed duration histogram.
// Observe is three atomic adds and allocates nothing, so it can sit on the
// engine's per-tuple path behind the sampling gate. Buckets are powers of
// two in nanoseconds; the exposition scales them to seconds.
type Histogram struct {
	shards [histShards]histShard
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	v := uint64(n)
	idx := 0
	if v > 0 {
		idx = bits.Len64(v) - 1
	}
	s := &h.shards[(v^v>>7)&uint64(histShards-1)]
	s.buckets[idx].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Snapshot merges the shards into one point-in-time view. Concurrent
// observers may land between shard reads; the skew is at most a few
// in-flight samples, fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	out := HistSnapshot{Buckets: make([]uint64, histBuckets), Scale: 1e-9}
	var rawSum uint64
	for i := range h.shards {
		s := &h.shards[i]
		for b := 0; b < histBuckets; b++ {
			out.Buckets[b] += s.buckets[b].Load()
		}
		out.Count += s.count.Load()
		rawSum += s.sum.Load()
	}
	out.Sum = float64(rawSum) * 1e-9
	return out
}

// HistSnapshot is a point-in-time view of any log2-bucketed histogram —
// the registry's own histograms and external ones bridged through
// HistogramFunc (the engine latency histogram, the transport batch-size
// buckets).
type HistSnapshot struct {
	// Buckets[i] counts observations whose raw value fell in [2^i, 2^(i+1)).
	Buckets []uint64
	// Count is the total number of observations; Sum is their total in
	// exported units.
	Count uint64
	Sum   float64
	// Scale converts a raw bucket bound to the exported unit: 1e-9 for
	// nanosecond histograms exported in seconds, 1 (or 0, meaning 1) for
	// unit-less histograms like batch sizes.
	Scale float64
}

func (s HistSnapshot) scale() float64 {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

// UpperBound returns bucket i's exclusive upper bound in exported units.
func (s HistSnapshot) UpperBound(i int) float64 {
	return math.Ldexp(1, i+1) * s.scale()
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) in
// exported units: the top of the bucket containing it. With no
// observations it returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return s.UpperBound(i)
		}
	}
	return s.UpperBound(len(s.Buckets) - 1)
}

// Mean returns the mean observation in exported units, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
