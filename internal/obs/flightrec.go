package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies flight-recorder events.
type EventKind uint8

// Event kinds. A and B are kind-specific numeric payloads:
//
//	EvAdapt            A=threads B=queues, Detail="phase: note"
//	EvFault            A=site    B=event rank, Detail=point label
//	EvQuarantine       A=node    B=timeout nanos
//	EvRelease          A=node
//	EvReconnect        A=stream
//	EvRetransmit       A=stream  B=frames retransmitted
//	EvResume           A=stream
//	EvWatchdogTrip     Detail=probe cause
//	EvWatchdogRecover
//	EvSteal            A=tuples stolen B=thief worker id (sampled by the engine)
//	EvPark             A=worker id B=cumulative parks (sampled by the engine)
//	EvCheckpoint       A=epoch   B=snapshot bytes, Detail="full"/"incr"
//	EvRestore          A=node (-1 = all) B=epoch, Detail=cause
const (
	EvAdapt EventKind = iota + 1
	EvFault
	EvQuarantine
	EvRelease
	EvReconnect
	EvRetransmit
	EvResume
	EvWatchdogTrip
	EvWatchdogRecover
	EvSteal
	EvPark
	EvCheckpoint
	EvRestore
)

// String returns the kind's stable dump label.
func (k EventKind) String() string {
	switch k {
	case EvAdapt:
		return "adapt"
	case EvFault:
		return "fault"
	case EvQuarantine:
		return "quarantine"
	case EvRelease:
		return "release"
	case EvReconnect:
		return "reconnect"
	case EvRetransmit:
		return "retransmit"
	case EvResume:
		return "resume"
	case EvWatchdogTrip:
		return "watchdog-trip"
	case EvWatchdogRecover:
		return "watchdog-recover"
	case EvSteal:
		return "steal"
	case EvPark:
		return "park"
	case EvCheckpoint:
		return "checkpoint"
	case EvRestore:
		return "restore"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Event is one structured flight-recorder entry. Seq is a global 1-based
// record number; Time is unix nanoseconds; PE is the originating processing
// element (-1 when not PE-scoped).
type Event struct {
	Seq    uint64
	Time   int64
	Kind   EventKind
	PE     int32
	A, B   int64
	Detail string
}

// frSlot is one ring cell. The per-slot mutex makes a wrapped-over write
// race-clean against readers without serializing writers globally.
type frSlot struct {
	mu sync.Mutex
	ev Event
}

// DefaultFlightRecorderSize is the ring capacity used when none is given.
const DefaultFlightRecorderSize = 4096

// FlightRecorder is a bounded ring of the most recent structured runtime
// events: elasticity decisions, fault injections, quarantines, transport
// reconnects/retransmits, watchdog transitions, steal/park transitions. It
// exists to answer "what was the runtime doing right before this?" — the
// watchdog dumps it automatically on a trip.
//
// Record reserves a slot with one atomic add and writes under that slot's
// mutex: concurrent writers never contend unless they collide on a cell,
// and recording allocates nothing. A nil *FlightRecorder is valid and
// drops every event, so call sites need no guards.
type FlightRecorder struct {
	seq   atomic.Uint64
	slots []frSlot
	mask  uint64
}

// NewFlightRecorder returns a recorder retaining the last `capacity` events
// (rounded up to a power of two; <= 0 means DefaultFlightRecorderSize).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderSize
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]frSlot, n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Safe for concurrent use and on a nil receiver.
func (f *FlightRecorder) Record(kind EventKind, pe int32, a, b int64, detail string) {
	if f == nil {
		return
	}
	s := f.seq.Add(1)
	slot := &f.slots[(s-1)&f.mask]
	slot.mu.Lock()
	slot.ev = Event{Seq: s, Time: time.Now().UnixNano(), Kind: kind, PE: pe, A: a, B: b, Detail: detail}
	slot.mu.Unlock()
}

// Len returns how many events have ever been recorded (not how many are
// retained).
func (f *FlightRecorder) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Events returns the retained events in sequence order. Records landing
// while the scan runs may or may not appear; ordering among returned events
// is always by Seq.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		f.slots[i].mu.Lock()
		ev := f.slots[i].ev
		f.slots[i].mu.Unlock()
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DumpTo writes a human-readable dump of the retained events, oldest first.
func (f *FlightRecorder) DumpTo(w io.Writer) error {
	for _, ev := range f.Events() {
		t := time.Unix(0, ev.Time).UTC().Format("15:04:05.000000")
		if _, err := fmt.Fprintf(w, "%8d %s pe=%d %-16s a=%d b=%d %s\n",
			ev.Seq, t, ev.PE, ev.Kind, ev.A, ev.B, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
