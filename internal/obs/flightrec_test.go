package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(8)
	if f.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", f.Cap())
	}
	f.Record(EvAdapt, 0, 4, 2, "thread-count: +1")
	f.Record(EvFault, -1, 65537, 3, "op-panic")
	if f.Len() != 2 {
		t.Fatalf("len = %d, want 2", f.Len())
	}
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("Events returned %d, want 2", len(evs))
	}
	if evs[0].Kind != EvAdapt || evs[0].A != 4 || evs[0].B != 2 || evs[0].Detail != "thread-count: +1" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvFault || evs[1].PE != -1 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
}

func TestFlightRecorderCapacityRounding(t *testing.T) {
	if got := NewFlightRecorder(5).Cap(); got != 8 {
		t.Fatalf("cap(5) = %d, want 8", got)
	}
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightRecorderSize {
		t.Fatalf("cap(0) = %d, want %d", got, DefaultFlightRecorderSize)
	}
	if got := NewFlightRecorder(-1).Cap(); got != DefaultFlightRecorderSize {
		t.Fatalf("cap(-1) = %d, want %d", got, DefaultFlightRecorderSize)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 1; i <= 20; i++ {
		f.Record(EvSteal, 0, int64(i), 0, "")
	}
	if f.Len() != 20 {
		t.Fatalf("len = %d, want 20", f.Len())
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// Last 8 records, in sequence order.
	for i, ev := range evs {
		wantSeq := uint64(13 + i)
		if ev.Seq != wantSeq || ev.A != int64(wantSeq) {
			t.Fatalf("event %d = seq %d a %d, want seq/a %d", i, ev.Seq, ev.A, wantSeq)
		}
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	f := NewFlightRecorder(64)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(EvPark, int32(w), int64(i), 0, "")
				if i%16 == 0 {
					f.Events() // concurrent reads while the ring wraps
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != writers*perWriter {
		t.Fatalf("len = %d, want %d", f.Len(), writers*perWriter)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not strictly ordered by seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecorderDumpDeterministic(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(EvQuarantine, 1, 3, 1e9, "")
	f.Record(EvReconnect, 0, 7, 0, "")
	f.Record(EvWatchdogTrip, 2, 0, 0, "engine: sink stalled")
	var a, b bytes.Buffer
	if err := f.DumpTo(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.DumpTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two dumps of an idle recorder differ")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3:\n%s", len(lines), a.String())
	}
	for i, want := range []string{"quarantine", "reconnect", "watchdog-trip"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("dump line %d = %q, want kind %q", i, lines[i], want)
		}
	}
	if !strings.Contains(lines[2], "engine: sink stalled") {
		t.Fatalf("dump line %q missing detail", lines[2])
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(EvAdapt, 0, 0, 0, "") // must not panic
	if f.Len() != 0 || f.Cap() != 0 || f.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	if err := f.DumpTo(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvAdapt, EvFault, EvQuarantine, EvRelease, EvReconnect,
		EvRetransmit, EvResume, EvWatchdogTrip, EvWatchdogRecover, EvSteal, EvPark}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind-") {
			t.Fatalf("kind %d has no label", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind label %q", s)
		}
		seen[s] = true
	}
	if got := EventKind(99).String(); got != "kind-99" {
		t.Fatalf("unknown kind label = %q", got)
	}
}
