package obs

import (
	"testing"
	"time"
)

// allocGuard asserts that step allocates nothing per run, matching the
// engine's pool-guard convention: warm first, then AllocsPerRun, skipped
// under the race detector where instrumentation itself allocates.
func allocGuard(t *testing.T, name string, step func()) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("alloc accounting is unreliable under the race detector")
	}
	for i := 0; i < 128; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg > 0.05 {
		t.Fatalf("%s allocates %.3f per op, want 0", name, avg)
	}
}

func TestCounterIncAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	allocGuard(t, "Counter.Inc", c.Inc)
}

func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help")
	d := 137 * time.Nanosecond
	allocGuard(t, "Histogram.Observe", func() {
		h.Observe(d)
		d += 991 * time.Nanosecond // walk the buckets and shards
	})
}

func TestFlightRecordAllocFree(t *testing.T) {
	f := NewFlightRecorder(64)
	allocGuard(t, "FlightRecorder.Record", func() {
		f.Record(EvSteal, 0, 16, 3, "")
	})
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * 7)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(0)
		for pb.Next() {
			h.Observe(d)
			d += 977
		}
	})
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightRecorderSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EvPark, 0, int64(i), 0, "")
	}
}
