package spl

import (
	"sync/atomic"
	"time"
)

// Throttle wraps a Source and caps its emission rate, emulating a
// rate-bounded feed (a network ingest, a line-rate NIC) on the live engine.
// It uses a token bucket refilled in wall-clock time.
type Throttle struct {
	src Source
	// TuplesPerSecond is the sustained rate cap.
	TuplesPerSecond float64
	// Burst is the bucket depth (default: one tenth of a second's worth).
	Burst float64

	tokens   float64
	lastFill time.Time
	now      func() time.Time
}

var _ Source = (*Throttle)(nil)

// NewThrottle returns src capped at tuplesPerSecond.
func NewThrottle(src Source, tuplesPerSecond float64) *Throttle {
	return &Throttle{
		src:             src,
		TuplesPerSecond: tuplesPerSecond,
		Burst:           tuplesPerSecond / 10,
		now:             time.Now,
	}
}

// Name returns the wrapped source's name with a throttle suffix.
func (t *Throttle) Name() string { return t.src.Name() + "-throttled" }

// Process is a no-op: sources have no input ports.
func (t *Throttle) Process(int, *Tuple, Emitter) {}

// Next emits the wrapped source's next tuple once a token is available,
// sleeping briefly (never more than a millisecond) while the bucket is
// empty so the engine's pause barrier stays responsive.
func (t *Throttle) Next(out Emitter) bool {
	if t.Burst < 1 {
		t.Burst = 1
	}
	for {
		now := t.now()
		if t.lastFill.IsZero() {
			// Start with one token so the first tuple is immediate even
			// under an injected (frozen) clock.
			t.lastFill = now
			t.tokens = 1
		}
		t.tokens += now.Sub(t.lastFill).Seconds() * t.TuplesPerSecond
		t.lastFill = now
		if t.tokens > t.Burst {
			t.tokens = t.Burst
		}
		if t.tokens >= 1 {
			t.tokens--
			return t.src.Next(out)
		}
		wait := time.Duration((1 - t.tokens) / t.TuplesPerSecond * float64(time.Second))
		if wait > time.Millisecond {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}

// Sample forwards one tuple in every k, dropping the rest. It is stateless
// across threads (an atomic counter), so it is safe under the dynamic
// threading model.
type Sample struct {
	name string
	k    uint64
	n    atomic.Uint64
}

var _ Operator = (*Sample)(nil)

// NewSample returns an operator passing every k-th tuple (k >= 1).
func NewSample(name string, k int) *Sample {
	if k < 1 {
		k = 1
	}
	return &Sample{name: name, k: uint64(k)}
}

// Name returns the operator name.
func (s *Sample) Name() string { return s.name }

// Process forwards every k-th tuple.
func (s *Sample) Process(_ int, t *Tuple, out Emitter) {
	if s.n.Add(1)%s.k == 0 {
		out.Emit(0, t)
	}
}

// Union forwards tuples from any input port to output port 0, tagging
// nothing: it exists to merge streams structurally where an explicit
// operator is clearer than multiple edges into a shared consumer.
type Union struct {
	name string
}

var _ Operator = (*Union)(nil)

// NewUnion returns a merging pass-through operator.
func NewUnion(name string) *Union { return &Union{name: name} }

// Name returns the operator name.
func (u *Union) Name() string { return u.name }

// Process forwards t unchanged on port 0.
func (u *Union) Process(_ int, t *Tuple, out Emitter) {
	out.Emit(0, t)
}
