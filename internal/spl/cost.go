package spl

import (
	"math"
	"sync/atomic"
)

// CostVar is a mutable per-operator compute cost, expressed in FLOPs per
// tuple. It is shared between a synthetic Work operator (which spins for
// that many floating-point operations in the live engine) and the simulated
// machine (which converts it to service time analytically). Storing it
// behind an atomic lets workload phase changes retarget operator costs while
// an engine is running, which is how the Fig. 13 experiment perturbs the
// workload.
type CostVar struct {
	bits atomic.Uint64
}

// NewCostVar returns a cost variable initialized to flops.
func NewCostVar(flops float64) *CostVar {
	v := &CostVar{}
	v.Set(flops)
	return v
}

// FLOPs returns the current cost in FLOPs per tuple.
func (v *CostVar) FLOPs() float64 {
	return math.Float64frombits(v.bits.Load())
}

// Set updates the cost to flops per tuple.
func (v *CostVar) Set(flops float64) {
	v.bits.Store(math.Float64bits(flops))
}
