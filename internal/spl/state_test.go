package spl

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"streamelastic/internal/state"
)

// mirror drives src through `rounds` batches, mirroring its state into dst
// via one full snapshot followed by an incremental snapshot per batch —
// the exact sequence the checkpoint coordinator produces. After mirror
// returns, dst must be behaviorally identical to src.
func mirror(t *testing.T, src, dst state.Snapshotter, rounds int, feed func(round int)) {
	t.Helper()
	src.StateTrack(true)
	var enc state.Encoder
	src.StateSnapshot(&enc, true)
	if err := dst.StateRestore(state.NewDecoder(enc.Bytes()), true); err != nil {
		t.Fatalf("full restore: %v", err)
	}
	for r := 0; r < rounds; r++ {
		feed(r)
		enc.Reset()
		src.StateSnapshot(&enc, false)
		if err := dst.StateRestore(state.NewDecoder(enc.Bytes()), false); err != nil {
			t.Fatalf("incremental restore round %d: %v", r, err)
		}
	}
}

// gather returns an emitter appending into out.
func gather(out *[]*Tuple) Emitter {
	return EmitterFunc(func(_ int, t *Tuple) { *out = append(*out, t) })
}

func TestKeyedJoinSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewKeyedJoin("src")
	dst := NewKeyedJoin("dst")
	mirror(t, src, dst, 8, func(round int) {
		for i := 0; i < 50; i++ {
			k := uint64(rng.Intn(64))
			if rng.Intn(5) == 0 {
				// Overwrites and fresh keys both land in the dirty set.
				src.Process(1, &Tuple{Key: k, Num1: -1}, DiscardEmitter)
			} else {
				src.Process(1, &Tuple{Key: k, Num1: float64(round*100 + i)}, DiscardEmitter)
			}
		}
	})
	if src.Size() != dst.Size() {
		t.Fatalf("table size src=%d dst=%d", src.Size(), dst.Size())
	}
	// Identical probes must enrich identically.
	for k := uint64(0); k < 80; k++ {
		var a, b []*Tuple
		src.Process(0, &Tuple{Key: k, Num1: 1}, gather(&a))
		dst.Process(0, &Tuple{Key: k, Num1: 1}, gather(&b))
		if len(a) != len(b) {
			t.Fatalf("key %d: src emitted %d, dst %d", k, len(a), len(b))
		}
		if len(a) == 1 && (a[0].Num2 != b[0].Num2 || a[0].Key != b[0].Key) {
			t.Fatalf("key %d: src=%+v dst=%+v", k, a[0], b[0])
		}
	}
}

func TestTimeWindowSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(name string) *TimeWindow {
		return NewTimeWindow(name, 8*time.Second, 2*time.Second, AggSum)
	}
	src, dst := mk("src"), mk("dst")
	tm := int64(0)
	mirror(t, src, dst, 6, func(round int) {
		for i := 0; i < 40; i++ {
			tm += int64(rng.Intn(2)) * int64(time.Second)
			src.Process(0, &Tuple{Time: tm, Key: uint64(rng.Intn(4)), Num1: float64(rng.Intn(10))}, DiscardEmitter)
		}
	})
	// The same suffix stream must close the same windows with the same
	// aggregates. Pane-close emission order is map-random: sort.
	var a, b []*Tuple
	ea, eb := gather(&a), gather(&b)
	for i := 0; i < 60; i++ {
		tm += int64(rng.Intn(3)) * int64(time.Second)
		tup := Tuple{Time: tm, Key: uint64(rng.Intn(4)), Num1: float64(rng.Intn(10))}
		ta, tb := tup, tup
		src.Process(0, &ta, ea)
		dst.Process(0, &tb, eb)
	}
	key := func(x *Tuple) [2]int64 { return [2]int64{x.Time, int64(x.Key)} }
	sort.Slice(a, func(i, j int) bool { return key(a[i]) != key(a[j]) && (a[i].Time < a[j].Time || (a[i].Time == a[j].Time && a[i].Key < a[j].Key)) })
	sort.Slice(b, func(i, j int) bool { return key(b[i]) != key(b[j]) && (b[i].Time < b[j].Time || (b[i].Time == b[j].Time && b[i].Key < b[j].Key)) })
	if len(a) != len(b) {
		t.Fatalf("src closed %d windows, dst %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Key != b[i].Key || a[i].Num1 != b[i].Num1 || a[i].Num2 != b[i].Num2 {
			t.Fatalf("window %d: src=%+v dst=%+v", i, a[i], b[i])
		}
	}
}

func TestKeyedCounterSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewKeyedCounter("src", 32, 7)
	dst := NewKeyedCounter("dst", 32, 7)
	mirror(t, src, dst, 8, func(round int) {
		for i := 0; i < 45; i++ {
			src.Process(0, &Tuple{Key: uint64(rng.Intn(10)), Seq: uint64(i)}, DiscardEmitter)
		}
	})
	for k := uint64(0); k < 12; k++ {
		if src.Count(k) != dst.Count(k) {
			t.Fatalf("key %d: src count %d, dst %d", k, src.Count(k), dst.Count(k))
		}
	}
	// The suffix stream exercises the restored ring cursor: the same old
	// keys must slide out of both windows in lockstep.
	var a, b []*Tuple
	ea, eb := gather(&a), gather(&b)
	for i := 0; i < 100; i++ {
		k := uint64(rng.Intn(10))
		src.Process(0, &Tuple{Key: k}, ea)
		dst.Process(0, &Tuple{Key: k}, eb)
	}
	if len(a) != len(b) {
		t.Fatalf("emitted %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Num1 != b[i].Num1 {
			t.Fatalf("emit %d: src=(%d,%v) dst=(%d,%v)", i, a[i].Key, a[i].Num1, b[i].Key, b[i].Num1)
		}
	}
}

func TestReorderSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewReorder("src", 1, 64)
	dst := NewReorder("dst", 1, 64)
	// Feed a shuffled prefix with holes so the buffer and cursor both
	// carry state at snapshot time.
	seqs := rng.Perm(40)
	var srcOut []*Tuple
	mirror(t, src, dst, 4, func(round int) {
		for i := round * 10; i < (round+1)*10; i++ {
			src.Process(0, &Tuple{Seq: uint64(seqs[i] + 1)}, gather(&srcOut))
		}
	})
	// Both must now release the identical remaining stream.
	rest := rng.Perm(40)
	var a, b []*Tuple
	ea, eb := gather(&a), gather(&b)
	for _, s := range rest {
		src.Process(0, &Tuple{Seq: uint64(s + 41)}, ea)
		dst.Process(0, &Tuple{Seq: uint64(s + 41)}, eb)
	}
	if len(a) != len(b) {
		t.Fatalf("released %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatalf("release %d: src seq %d, dst seq %d", i, a[i].Seq, b[i].Seq)
		}
	}
	// Replayed (already released) sequences are dropped by the restored
	// cursor exactly as by the live one.
	var ra, rb []*Tuple
	src.Process(0, &Tuple{Seq: 1}, gather(&ra))
	dst.Process(0, &Tuple{Seq: 1}, gather(&rb))
	if len(ra) != 0 || len(rb) != 0 {
		t.Fatalf("replayed seq released: src=%d dst=%d", len(ra), len(rb))
	}
}

// TestSnapshotRestoreCorruptInputs pins the no-panic contract for all four
// stateful operators against truncated snapshots.
func TestSnapshotRestoreCorruptInputs(t *testing.T) {
	ops := func() []state.Snapshotter {
		return []state.Snapshotter{
			NewKeyedJoin("j"),
			NewTimeWindow("w", time.Second, 0, AggCount),
			NewKeyedCounter("c", 8, 0),
			NewReorder("r", 0, 8),
		}
	}
	srcs := ops()
	for i, src := range srcs {
		src.StateTrack(true)
		switch o := src.(type) {
		case *KeyedJoin:
			for k := uint64(0); k < 20; k++ {
				o.Process(1, &Tuple{Key: k, Num1: 1}, DiscardEmitter)
			}
		case *TimeWindow:
			for s := int64(0); s < 20; s++ {
				o.Process(0, &Tuple{Time: s * int64(time.Second), Key: uint64(s % 3), Num1: 1}, DiscardEmitter)
			}
		case *KeyedCounter:
			for k := uint64(0); k < 20; k++ {
				o.Process(0, &Tuple{Key: k}, DiscardEmitter)
			}
		case *Reorder:
			o.Process(0, &Tuple{Seq: 5}, DiscardEmitter)
			o.Process(0, &Tuple{Seq: 7}, DiscardEmitter)
		}
		var enc state.Encoder
		src.StateSnapshot(&enc, true)
		full := append([]byte(nil), enc.Bytes()...)
		for cut := 0; cut < len(full); cut++ {
			fresh := ops()[i]
			if err := fresh.StateRestore(state.NewDecoder(full[:cut]), true); err == nil && cut < len(full)-1 {
				// Some prefixes decode cleanly (e.g. an empty-map header);
				// only panics are failures here, errors are the contract.
				_ = err
			}
		}
	}
}
