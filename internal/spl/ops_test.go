package spl

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// collect gathers emitted tuples per port.
type collect struct {
	byPort map[int][]*Tuple
}

func newCollect() *collect { return &collect{byPort: make(map[int][]*Tuple)} }

func (c *collect) Emit(port int, t *Tuple) {
	c.byPort[port] = append(c.byPort[port], t)
}

func (c *collect) all() []*Tuple {
	var out []*Tuple
	for p := 0; p < len(c.byPort); p++ {
		out = append(out, c.byPort[p]...)
	}
	return out
}

func TestGeneratorEmitsSequencedTuples(t *testing.T) {
	g := NewGenerator("src", 16)
	g.MaxTuples = 5
	g.Keys = 3
	out := newCollect()
	n := 0
	for g.Next(out) {
		n++
	}
	if n != 5 {
		t.Fatalf("generator produced %d tuples, want 5", n)
	}
	if g.Next(out) {
		t.Fatal("generator produced past MaxTuples")
	}
	tuples := out.byPort[0]
	for i, tp := range tuples {
		if tp.Seq != uint64(i) {
			t.Fatalf("tuple %d has seq %d", i, tp.Seq)
		}
		if tp.Key != uint64(i)%3 {
			t.Fatalf("tuple %d has key %d, want %d", i, tp.Key, i%3)
		}
		if len(tp.Payload) != 16 {
			t.Fatalf("tuple %d payload size %d, want 16", i, len(tp.Payload))
		}
	}
}

func TestGeneratorReset(t *testing.T) {
	g := NewGenerator("src", 0)
	g.MaxTuples = 1
	out := newCollect()
	if !g.Next(out) {
		t.Fatal("first Next returned false")
	}
	if g.Next(out) {
		t.Fatal("Next past MaxTuples returned true")
	}
	g.Reset()
	if !g.Next(out) {
		t.Fatal("Next after Reset returned false")
	}
}

func TestGeneratorUnboundedAndZeroPayload(t *testing.T) {
	g := NewGenerator("src", 0)
	out := newCollect()
	for i := 0; i < 100; i++ {
		if !g.Next(out) {
			t.Fatalf("unbounded generator stopped at %d", i)
		}
	}
	if got := out.byPort[0][0].Payload; got != nil {
		t.Fatalf("zero payload generator emitted payload %v", got)
	}
}

func TestWorkForwardsAndBurnsCost(t *testing.T) {
	cost := NewCostVar(1000)
	w := NewWork("w", cost)
	out := newCollect()
	in := &Tuple{Seq: 42}
	w.Process(0, in, out)
	if len(out.byPort[0]) != 1 || out.byPort[0][0] != in {
		t.Fatalf("work did not forward the tuple: %v", out.byPort)
	}
	if w.sink.Load() == 0 {
		t.Fatal("work accumulated no result; spin may be eliminated")
	}
	if w.Cost() != cost {
		t.Fatal("Cost() did not return the shared cost var")
	}
}

func TestCostVarSetGet(t *testing.T) {
	v := NewCostVar(10)
	if got := v.FLOPs(); got != 10 {
		t.Fatalf("FLOPs() = %v, want 10", got)
	}
	v.Set(12345.5)
	if got := v.FLOPs(); got != 12345.5 {
		t.Fatalf("FLOPs() after Set = %v, want 12345.5", got)
	}
}

func TestSpinFLOPsReturnsFiniteWork(t *testing.T) {
	a := SpinFLOPs(0, 1)
	b := SpinFLOPs(10000, 1)
	if a == b {
		t.Fatal("spinning 10000 FLOPs produced the same value as 0 FLOPs")
	}
}

func TestMapTransformsAndDrops(t *testing.T) {
	m := NewMap("m", func(t *Tuple) *Tuple {
		if t.Seq%2 == 1 {
			return nil
		}
		t.Num1 = float64(t.Seq) * 2
		return t
	})
	out := newCollect()
	for i := 0; i < 4; i++ {
		m.Process(0, &Tuple{Seq: uint64(i)}, out)
	}
	got := out.byPort[0]
	if len(got) != 2 {
		t.Fatalf("map forwarded %d tuples, want 2", len(got))
	}
	if got[1].Num1 != 4 {
		t.Fatalf("map result Num1 = %v, want 4", got[1].Num1)
	}
}

func TestFilterPredicate(t *testing.T) {
	f := NewFilter("f", func(t *Tuple) bool { return t.Num1 > 0 })
	out := newCollect()
	f.Process(0, &Tuple{Num1: 1}, out)
	f.Process(0, &Tuple{Num1: -1}, out)
	if len(out.byPort[0]) != 1 {
		t.Fatalf("filter passed %d tuples, want 1", len(out.byPort[0]))
	}
}

func TestTokenizeSplitsWords(t *testing.T) {
	tk := NewTokenize("tok")
	out := newCollect()
	tk.Process(0, &Tuple{Seq: 9, Text: "  the quick  brown fox "}, out)
	got := out.byPort[0]
	want := []string{"the", "quick", "brown", "fox"}
	if len(got) != len(want) {
		t.Fatalf("tokenize emitted %d tuples, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Text != w {
			t.Fatalf("token %d = %q, want %q", i, got[i].Text, w)
		}
		if got[i].Seq != 9 {
			t.Fatalf("token %d lost source seq: %d", i, got[i].Seq)
		}
	}
	if got[0].Key == got[1].Key {
		t.Fatal("distinct words hashed to the same key")
	}
}

func TestHashStringStable(t *testing.T) {
	f := func(s string) bool { return hashString(s) == hashString(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if hashString("a") == hashString("b") {
		t.Fatal("trivially distinct strings collided")
	}
}

func TestRoundRobinSplitDistributesEvenly(t *testing.T) {
	s := NewRoundRobinSplit("split", 4)
	out := newCollect()
	for i := 0; i < 40; i++ {
		s.Process(0, &Tuple{Seq: uint64(i)}, out)
	}
	for p := 0; p < 4; p++ {
		if len(out.byPort[p]) != 10 {
			t.Fatalf("port %d received %d tuples, want 10", p, len(out.byPort[p]))
		}
	}
}

func TestRoundRobinSplitConcurrentSafety(t *testing.T) {
	s := NewRoundRobinSplit("split", 3)
	var mu sync.Mutex
	counts := make(map[int]int)
	em := EmitterFunc(func(port int, _ *Tuple) {
		mu.Lock()
		counts[port]++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s.Process(0, &Tuple{}, em)
			}
		}()
	}
	wg.Wait()
	total := 0
	for p, c := range counts {
		total += c
		if c != 400 {
			t.Fatalf("port %d received %d tuples, want 400", p, c)
		}
	}
	if total != 1200 {
		t.Fatalf("total %d, want 1200", total)
	}
}

func TestKeyedCounterSlidingWindow(t *testing.T) {
	k := NewKeyedCounter("agg", 4, 0)
	out := newCollect()
	// Window of 4: after tuples with keys 1,1,2,3 the count of 1 is 2.
	for _, key := range []uint64{1, 1, 2, 3} {
		k.Process(0, &Tuple{Key: key}, out)
	}
	if got := k.Count(1); got != 2 {
		t.Fatalf("count(1) = %d, want 2", got)
	}
	// Two more tuples evict the two 1s.
	k.Process(0, &Tuple{Key: 4}, out)
	k.Process(0, &Tuple{Key: 5}, out)
	if got := k.Count(1); got != 0 {
		t.Fatalf("count(1) after eviction = %d, want 0", got)
	}
	if got := k.Count(3); got != 1 {
		t.Fatalf("count(3) = %d, want 1", got)
	}
}

func TestKeyedCounterEmitsPeriodically(t *testing.T) {
	k := NewKeyedCounter("agg", 10, 3)
	out := newCollect()
	for i := 0; i < 9; i++ {
		k.Process(0, &Tuple{Key: 1}, out)
	}
	if len(out.byPort[0]) != 3 {
		t.Fatalf("counter emitted %d tuples, want 3", len(out.byPort[0]))
	}
	last := out.byPort[0][2]
	if last.Num1 != 9 {
		t.Fatalf("emitted count = %v, want 9", last.Num1)
	}
}

func TestKeyedCounterReset(t *testing.T) {
	k := NewKeyedCounter("agg", 4, 0)
	k.Process(0, &Tuple{Key: 1}, DiscardEmitter)
	k.Reset()
	if got := k.Count(1); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

func TestKeyedCounterWindowNeverExceedsSize(t *testing.T) {
	f := func(keys []uint8) bool {
		window := 8
		k := NewKeyedCounter("agg", window, 0)
		for _, key := range keys {
			k.Process(0, &Tuple{Key: uint64(key % 4)}, DiscardEmitter)
		}
		total := int64(0)
		for key := uint64(0); key < 4; key++ {
			total += k.Count(key)
		}
		limit := int64(window)
		if int64(len(keys)) < limit {
			limit = int64(len(keys))
		}
		return total == limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingSinkConcurrent(t *testing.T) {
	s := NewCountingSink("snk")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Process(0, &Tuple{}, DiscardEmitter)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got != 4000 {
		t.Fatalf("sink counted %d, want 4000", got)
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("sink count after reset = %d, want 0", got)
	}
}

func TestOperatorNames(t *testing.T) {
	ops := []Operator{
		NewGenerator("g", 0),
		NewWork("w", NewCostVar(1)),
		NewMap("m", func(t *Tuple) *Tuple { return t }),
		NewFilter("f", func(*Tuple) bool { return true }),
		NewTokenize("t"),
		NewRoundRobinSplit("s", 2),
		NewKeyedCounter("k", 2, 1),
		NewCountingSink("c"),
	}
	for i, op := range ops {
		if op.Name() == "" {
			t.Fatalf("operator %d (%T) has empty name", i, op)
		}
	}
}

func ExampleTokenize() {
	tk := NewTokenize("tok")
	tk.Process(0, &Tuple{Text: "hello elastic world"}, EmitterFunc(func(_ int, t *Tuple) {
		fmt.Println(t.Text)
	}))
	// Output:
	// hello
	// elastic
	// world
}
