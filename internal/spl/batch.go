package spl

import (
	"math"
	"strings"
)

// BatchProcessor is an opt-in extension of Operator for vectorized
// execution. The runtime hands a batch of tuples that arrived on the same
// input port to ProcessBatch instead of calling Process once per tuple,
// amortizing the interface dispatch, the profiler transition, and any
// per-invocation state loads across the whole batch.
//
// The contract is strict equivalence: ProcessBatch(port, ts, out) must be
// observably identical — same emissions, in the same order, same operator
// state afterwards — to calling Process(port, t, out) for each tuple of ts
// in order. The runtime fuzzes this equivalence (FuzzBatchEquivalence), so
// an implementation that reorders or coalesces emissions is a bug, not an
// optimization. The batch slice is owned by the caller and must not be
// retained; it is never empty.
type BatchProcessor interface {
	Operator
	// ProcessBatch handles ts, all arriving on input port port, emitting
	// derived tuples through out exactly as per-tuple Process would.
	ProcessBatch(port int, ts []*Tuple, out Emitter)
}

var (
	_ BatchProcessor = (*Work)(nil)
	_ BatchProcessor = (*Map)(nil)
	_ BatchProcessor = (*Filter)(nil)
	_ BatchProcessor = (*Tokenize)(nil)
	_ BatchProcessor = (*Expand)(nil)
	_ BatchProcessor = (*Sample)(nil)
	_ BatchProcessor = (*CountingSink)(nil)
)

// ProcessBatch burns the configured FLOPs for every tuple, loading the cost
// variable once per batch and folding the spin results into a single
// compiler-defeating store. The per-tuple compute is unchanged — only the
// bookkeeping amortizes.
func (w *Work) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	flops := w.cost.FLOPs()
	acc := 0.0
	for _, t := range ts {
		acc += SpinFLOPs(flops, t.Num1)
		out.Emit(0, t)
	}
	w.sink.Store(math.Float64bits(acc))
}

// ProcessBatch applies the map function to every tuple in order.
func (m *Map) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	fn := m.fn
	for _, t := range ts {
		if r := fn(t); r != nil {
			out.Emit(0, r)
		}
	}
}

// ProcessBatch forwards the tuples the predicate accepts, in order.
func (f *Filter) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	pred := f.pred
	for _, t := range ts {
		if pred(t) {
			out.Emit(0, t)
		}
	}
}

// ProcessBatch tokenizes every tuple's Text in order.
func (tk *Tokenize) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	for _, t := range ts {
		for _, w := range strings.Fields(t.Text) {
			tok := AcquireTuple()
			tok.Seq, tok.Time, tok.Text, tok.Key = t.Seq, t.Time, w, hashString(w)
			out.Emit(0, tok)
		}
	}
}

// ProcessBatch emits the expansion burst of every input tuple in order.
func (x *Expand) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	for _, t := range ts {
		for i := 0; i < x.factor; i++ {
			c := AcquireTuple()
			c.Seq, c.Time, c.Key, c.Num1 = t.Seq, t.Time, t.Key, t.Num1
			c.Num2 = float64(i)
			out.Emit(0, c)
		}
	}
}

// ProcessBatch counts the whole batch with one striped add. The stripe is
// picked from the first tuple's bits; per-batch (rather than per-tuple)
// striping still spreads concurrent workers across cache lines, which is
// all the sharding is for.
func (c *CountingSink) ProcessBatch(_ int, ts []*Tuple, _ Emitter) {
	var v uint64
	if ts[0] != nil {
		v = ts[0].Seq ^ ts[0].Key
	}
	c.shards[(v^v>>3)&(sinkShards-1)].n.Add(uint64(len(ts)))
}

// ProcessBatch claims a contiguous run of counter values with one atomic
// add and forwards the tuples those values select, in order. Sequentially
// this is identical to per-tuple Process; under concurrent execution both
// paths assign counter values to tuples in a scheduler-dependent order.
func (s *Sample) ProcessBatch(_ int, ts []*Tuple, out Emitter) {
	base := s.n.Add(uint64(len(ts))) - uint64(len(ts))
	for i, t := range ts {
		if (base+uint64(i)+1)%s.k == 0 {
			out.Emit(0, t)
		}
	}
}
