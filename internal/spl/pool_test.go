package spl

import "testing"

func TestPayloadClassBoundaries(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {63, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << maxPayloadClassBits, numPayloadClasses - 1},
		{1<<maxPayloadClassBits + 1, -1},
	}
	for _, c := range cases {
		if got := payloadClass(c.n); got != c.class {
			t.Errorf("payloadClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestAcquirePayloadSizes(t *testing.T) {
	for _, n := range []int{1, 64, 65, 1000, 4096, 1 << 20} {
		tp := AcquireTuple()
		tp.AcquirePayload(n)
		if len(tp.Payload) != n {
			t.Fatalf("AcquirePayload(%d): len = %d", n, len(tp.Payload))
		}
		if !tp.PayloadPooled() {
			t.Fatalf("AcquirePayload(%d): buffer not pooled", n)
		}
		tp.Release()
	}

	// Oversized payloads fall back to plain allocation.
	tp := AcquireTuple()
	tp.AcquirePayload(1<<maxPayloadClassBits + 1)
	if tp.PayloadPooled() {
		t.Fatal("oversized payload claimed to be pooled")
	}
	if len(tp.Payload) != 1<<maxPayloadClassBits+1 {
		t.Fatalf("oversized payload len = %d", len(tp.Payload))
	}
	tp.Release()
}

func TestReleaseZeroesTuple(t *testing.T) {
	tp := AcquireTuple()
	tp.Seq, tp.Key, tp.Text, tp.Num1 = 7, 9, "x", 3.5
	tp.AcquirePayload(100)
	tp.Release()
	// The next acquire (possibly the same struct) must always be zeroed.
	got := AcquireTuple()
	if got.Seq != 0 || got.Key != 0 || got.Text != "" || got.Num1 != 0 || got.Payload != nil || got.payloadBox != nil {
		t.Fatalf("acquired tuple not zeroed: %+v", got)
	}
	got.Release()
}

func TestReleaseForeignTupleSafe(t *testing.T) {
	// Tuples built with a literal (and payloads owned elsewhere) may be
	// released: the struct is recycled, the payload is left to the GC.
	shared := make([]byte, 32)
	tp := &Tuple{Seq: 1, Payload: shared}
	if tp.PayloadPooled() {
		t.Fatal("literal tuple claims pooled payload")
	}
	tp.Release()
	if shared[0] != 0 { // buffer untouched, still owned by the caller
		t.Fatal("release scribbled on a foreign payload buffer")
	}
}

func TestClonePooledIndependence(t *testing.T) {
	orig := &Tuple{Seq: 3, Payload: []byte{1, 2, 3, 4}}
	c := orig.Clone()
	if !c.PayloadPooled() {
		t.Fatal("clone payload not drawn from the pool")
	}
	c.Payload[0] = 99
	if orig.Payload[0] != 1 {
		t.Fatal("clone aliases the original payload")
	}
	c.Release()
	if orig.Payload[0] != 1 || orig.Seq != 3 {
		t.Fatal("releasing the clone disturbed the original")
	}
}

// TestCloneReleaseSteadyStateAllocFree is the pool's core guarantee: a
// warmed clone/release cycle — the per-crossing work of the dynamic
// threading model — performs no allocations.
func TestCloneReleaseSteadyStateAllocFree(t *testing.T) {
	orig := &Tuple{Seq: 1, Payload: make([]byte, 1024)}
	// Warm the pools.
	for i := 0; i < 64; i++ {
		orig.Clone().Release()
	}
	avg := testing.AllocsPerRun(2000, func() {
		orig.Clone().Release()
	})
	if avg > 0.05 {
		t.Fatalf("clone/release cycle allocates %.3f allocs/op, want ~0", avg)
	}
}

// TestExpandCycleSteadyStateAllocFree pins the recyclable-operator fix for
// the fan-in leak (BENCH_4's ~90 allocs/op): Expand emits fresh tuples and
// the runtime releases its input afterwards, so one full input-clone ->
// expand -> release-everything cycle must draw entirely from the pools.
func TestExpandCycleSteadyStateAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-mode sync.Pool drops Puts; guard runs without -race")
	}
	x := NewExpand("x", 8)
	if _, ok := any(x).(Recyclable); !ok {
		t.Fatal("Expand must be Recyclable so the runtime can release its input")
	}
	src := &Tuple{Seq: 7, Payload: make([]byte, 64)}
	sink := EmitterFunc(func(_ int, t *Tuple) { t.Release() })
	cycle := func() {
		in := src.Clone() // the queue-crossing copy
		x.Process(0, in, sink)
		in.Release() // the runtime's recyclable-input release
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(2000, cycle); avg > 0.05 {
		t.Fatalf("expand cycle allocates %.3f allocs/op, want ~0", avg)
	}
}
