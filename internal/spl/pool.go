package spl

import (
	"math/bits"
	"sync"
)

// Tuple and payload pooling.
//
// Every scheduler-queue crossing clones a tuple (the paper's copy overhead),
// so under the dynamic threading model the hot path would allocate a Tuple
// plus a payload buffer per crossing. The pools below make the steady state
// allocation-free: Clone draws both the struct and the payload buffer from
// pools, and Release returns them.
//
// Ownership protocol (see DESIGN.md "Hot path & memory discipline"):
//
//   - Emit transfers ownership of the tuple to the runtime; the emitting
//     operator must not touch it afterwards.
//   - The runtime releases a tuple once it has cloned it into a scheduler
//     queue (the clone carries the data onward) and after a Recyclable sink
//     has processed it.
//   - Only payload buffers obtained from the pool (via Clone or
//     AcquirePayload) are recycled; buffers merely referenced by a tuple —
//     such as a Generator's shared payload — are left alone.
//
// Releasing a tuple that was never pool-allocated is safe; sync.Pool accepts
// foreign values. Releasing the same tuple twice is a bug (two later
// acquires would alias), which is why only the runtime calls Release.

// Payload size classes are powers of two from 64 B to 1 MiB; larger payloads
// fall back to the garbage collector.
const (
	minPayloadClassBits = 6
	maxPayloadClassBits = 20
	numPayloadClasses   = maxPayloadClassBits - minPayloadClassBits + 1
)

var tuplePool = sync.Pool{New: func() any { return new(Tuple) }}

// payloadPools recycles payload buffers per power-of-two size class. The
// pools store *[]byte boxes rather than slices so neither Get nor Put
// allocates an interface header; the box pointer travels with the buffer
// inside Tuple.payloadBox between acquire and release.
var payloadPools [numPayloadClasses]sync.Pool

func init() {
	for c := range payloadPools {
		size := 1 << (minPayloadClassBits + c)
		payloadPools[c].New = func() any {
			b := make([]byte, size)
			return &b
		}
	}
}

// payloadClass returns the size class whose buffers hold n > 0 bytes, or -1
// when n exceeds the largest pooled class.
func payloadClass(n int) int {
	if n > 1<<maxPayloadClassBits {
		return -1
	}
	c := bits.Len(uint(n-1)) - minPayloadClassBits
	if c < 0 {
		return 0
	}
	return c
}

// AcquireTuple returns a zeroed tuple from the pool. Callers that hand the
// tuple to Emit relinquish it; the runtime recycles it at the end of its
// life, so sources and operators that acquire every emitted tuple run
// allocation-free in the steady state.
func AcquireTuple() *Tuple {
	return tuplePool.Get().(*Tuple)
}

// AcquirePayload gives t an exclusively owned payload buffer of length n
// drawn from the pool (len(t.Payload) == n; contents are unspecified).
// Release will return the buffer to its size class.
func (t *Tuple) AcquirePayload(n int) {
	if t.arena != nil {
		// The tuple is trading an arena view for an owned buffer; drop the
		// view's reference first so the frame buffer can recycle.
		t.arena.Release()
		t.arena = nil
	}
	if n <= 0 {
		t.Payload, t.payloadBox = nil, nil
		return
	}
	c := payloadClass(n)
	if c < 0 {
		t.Payload, t.payloadBox = make([]byte, n), nil
		return
	}
	box := payloadPools[c].Get().(*[]byte)
	t.Payload, t.payloadBox = (*box)[:n], box
}

// Release returns the tuple — and its payload buffer, when pool-owned — to
// the pools. The caller must hold the only live reference; afterwards the
// tuple must not be touched. Only the runtime and tests call Release; see
// the ownership protocol above.
func (t *Tuple) Release() {
	if t.payloadBox != nil {
		payloadPools[payloadClass(cap(*t.payloadBox))].Put(t.payloadBox)
	} else if t.arena != nil {
		t.arena.Release()
	}
	*t = Tuple{}
	tuplePool.Put(t)
}

// PayloadPooled reports whether the tuple's payload buffer is owned by the
// payload pool (diagnostic; used by tests).
func (t *Tuple) PayloadPooled() bool { return t.payloadBox != nil }
