package spl

import (
	"bytes"
	"sync"
	"testing"
)

// viewTuple decodes a fake "frame region" into a tuple view.
func viewTuple(a *Arena, off, n int) *Tuple {
	t := AcquireTuple()
	t.AttachArena(a, a.Bytes()[off:off+n])
	return t
}

func TestArenaViewsSurviveOutOfOrderRelease(t *testing.T) {
	a := AcquireArena(64)
	for i := range a.Bytes() {
		a.Bytes()[i] = byte(i)
	}
	t1 := viewTuple(a, 0, 16)
	t2 := viewTuple(a, 16, 16)
	t3 := viewTuple(a, 32, 32)
	a.Release() // producer done attaching; tuples now own the buffer

	// Release the middle sibling first, then the first; the last tuple's
	// view must still read the original bytes.
	t2.Release()
	t1.Release()
	if a.Refs() != 1 {
		t.Fatalf("refs = %d after two of three views released, want 1", a.Refs())
	}
	want := make([]byte, 32)
	for i := range want {
		want[i] = byte(32 + i)
	}
	if !bytes.Equal(t3.Payload, want) {
		t.Fatalf("surviving view corrupted: %v", t3.Payload[:4])
	}
	t3.Release()
	if a.Refs() != 0 {
		t.Fatalf("refs = %d after all views released, want 0", a.Refs())
	}
}

func TestArenaViewRetainedPastNextFrame(t *testing.T) {
	// Frame 1: one tuple retains its view while frames 2..N are decoded into
	// fresh arenas of the same size class. The retained view's bytes must
	// not be overwritten — i.e. frame 1's buffer must not have been recycled
	// into a later arena while a view was live.
	a1 := AcquireArena(128)
	for i := range a1.Bytes() {
		a1.Bytes()[i] = 0xA1
	}
	held := viewTuple(a1, 0, 128)
	a1.Release()

	for frame := 0; frame < 8; frame++ {
		an := AcquireArena(128)
		for i := range an.Bytes() {
			an.Bytes()[i] = byte(frame)
		}
		tn := viewTuple(an, 0, 128)
		an.Release()
		tn.Release()
	}
	for i, b := range held.Payload {
		if b != 0xA1 {
			t.Fatalf("retained view byte %d overwritten by later frame: %#x", i, b)
		}
	}
	held.Release()
}

func TestArenaReleaseBeforeProducerDrop(t *testing.T) {
	// A tuple Released before the producer drops the creator reference must
	// not recycle the buffer out from under the producer.
	a := AcquireArena(64)
	tp := viewTuple(a, 0, 64)
	tp.Release()
	if a.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (creator still holds)", a.Refs())
	}
	a.Bytes()[0] = 7 // still safe to touch
	a.Release()
	if a.Refs() != 0 {
		t.Fatalf("refs = %d after creator drop", a.Refs())
	}
}

func TestAttachArenaReplacesPooledPayload(t *testing.T) {
	tp := AcquireTuple()
	tp.AcquirePayload(256)
	if !tp.PayloadPooled() {
		t.Fatal("setup: payload not pooled")
	}
	a := AcquireArena(64)
	tp.AttachArena(a, a.Bytes()[:32])
	if tp.PayloadPooled() {
		t.Fatal("pooled payload box survived AttachArena")
	}
	if !tp.ArenaBacked() {
		t.Fatal("tuple not arena-backed after AttachArena")
	}
	if len(tp.Payload) != 32 {
		t.Fatalf("payload view length = %d", len(tp.Payload))
	}
	a.Release()
	tp.Release()
}

func TestAcquirePayloadDropsArenaRef(t *testing.T) {
	a := AcquireArena(64)
	tp := viewTuple(a, 0, 64)
	a.Release()
	if a.Refs() != 1 {
		t.Fatalf("refs = %d", a.Refs())
	}
	tp.AcquirePayload(16)
	if a.Refs() != 0 {
		t.Fatalf("refs = %d after view traded for owned buffer, want 0", a.Refs())
	}
	if tp.ArenaBacked() {
		t.Fatal("tuple still arena-backed")
	}
	tp.Release()
}

func TestArenaCloneDeepCopies(t *testing.T) {
	a := AcquireArena(64)
	for i := range a.Bytes() {
		a.Bytes()[i] = 0x5C
	}
	tp := viewTuple(a, 0, 64)
	a.Release()

	c := tp.Clone()
	if c.ArenaBacked() {
		t.Fatal("clone shares the arena; queue crossings need owned bytes")
	}
	tp.Release() // arena recycles now
	for i, b := range c.Payload {
		if b != 0x5C {
			t.Fatalf("clone byte %d = %#x after arena recycle", i, b)
		}
	}
	c.Release()
}

func TestArenaOversizePayloadFallsBackToGC(t *testing.T) {
	n := (1 << maxPayloadClassBits) + 1
	a := AcquireArena(n)
	if a.box != nil {
		t.Fatal("oversize arena drew from the pool")
	}
	if len(a.Bytes()) != n {
		t.Fatalf("len = %d", len(a.Bytes()))
	}
	a.Release()
}

func TestArenaConcurrentViewRelease(t *testing.T) {
	const views = 64
	a := AcquireArena(1024)
	tuples := make([]*Tuple, views)
	for i := range tuples {
		tuples[i] = viewTuple(a, i*16, 16)
	}
	a.Release()
	var wg sync.WaitGroup
	for _, tp := range tuples {
		wg.Add(1)
		go func(tp *Tuple) {
			defer wg.Done()
			tp.Release()
		}(tp)
	}
	wg.Wait()
	if a.Refs() != 0 {
		t.Fatalf("refs = %d after concurrent release", a.Refs())
	}
}
