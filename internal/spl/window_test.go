package spl

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// feedWindow pushes tuples and returns everything emitted.
func feedWindow(w *TimeWindow, tuples []*Tuple) []*Tuple {
	var out []*Tuple
	em := EmitterFunc(func(_ int, t *Tuple) { out = append(out, t) })
	for _, t := range tuples {
		w.Process(0, t, em)
	}
	return out
}

func at(sec int64, key uint64, v float64) *Tuple {
	return &Tuple{Time: sec * int64(time.Second), Key: key, Num1: v}
}

func TestTimeWindowTumblingCount(t *testing.T) {
	// Tumbling 10s window (slide == size).
	w := NewTimeWindow("w", 10*time.Second, 0, AggCount)
	out := feedWindow(w, []*Tuple{
		at(1, 1, 5), at(3, 1, 5), at(7, 2, 5),
		at(12, 1, 5), // crosses into the next pane: closes [0,10)
	})
	if len(out) != 2 {
		t.Fatalf("emitted %d aggregates, want 2 (keys 1 and 2): %+v", len(out), out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if out[0].Key != 1 || out[0].Num1 != 2 {
		t.Fatalf("key 1 count = %v, want 2", out[0].Num1)
	}
	if out[1].Key != 2 || out[1].Num1 != 1 {
		t.Fatalf("key 2 count = %v, want 1", out[1].Num1)
	}
	// The emitted window-end timestamp is the pane boundary.
	if out[0].Time != 10*int64(time.Second) {
		t.Fatalf("window end = %d", out[0].Time)
	}
}

func TestTimeWindowSlidingSum(t *testing.T) {
	// 6s window sliding by 2s: the paper's sliding, time(60), time(1)
	// shape at a smaller scale.
	w := NewTimeWindow("w", 6*time.Second, 2*time.Second, AggSum)
	var out []*Tuple
	em := EmitterFunc(func(_ int, tp *Tuple) { out = append(out, tp) })
	w.Process(0, at(1, 1, 10), em) // pane 0
	w.Process(0, at(3, 1, 20), em) // pane 1
	w.Process(0, at(5, 1, 30), em) // pane 2
	if len(out) != 2 {
		t.Fatalf("expected 2 pane closings so far, got %d", len(out))
	}
	// Pane 0 closes with sum 10 (only pane 0 in window), pane 1 with 30.
	if out[0].Num1 != 10 || out[1].Num1 != 30 {
		t.Fatalf("sliding sums = %v, %v; want 10, 30", out[0].Num1, out[1].Num1)
	}
	// Advance far: pane 2 closes with 10+20+30 = 60 (all within 6s)...
	out = nil
	w.Process(0, at(7, 1, 1), em) // closes pane 2
	if len(out) != 1 || out[0].Num1 != 60 {
		t.Fatalf("3-pane window sum = %+v, want 60", out)
	}
	// ...then pane 3 closes with 20+30+1 = 51 (pane 0 slid out).
	out = nil
	w.Process(0, at(9, 1, 0), em)
	if len(out) != 1 || out[0].Num1 != 51 {
		t.Fatalf("slid-out window sum = %+v, want 51", out)
	}
}

func TestTimeWindowAggFunctions(t *testing.T) {
	cases := []struct {
		fn   AggregateFunc
		want float64
	}{
		{AggCount, 3}, {AggSum, 60}, {AggAvg, 20}, {AggMin, 10}, {AggMax, 30},
	}
	for _, c := range cases {
		w := NewTimeWindow("w", 10*time.Second, 0, c.fn)
		out := feedWindow(w, []*Tuple{
			at(1, 1, 10), at(2, 1, 20), at(3, 1, 30), at(11, 1, 0),
		})
		if len(out) != 1 {
			t.Fatalf("%v: emitted %d", c.fn, len(out))
		}
		if out[0].Num1 != c.want {
			t.Fatalf("%v = %v, want %v", c.fn, out[0].Num1, c.want)
		}
		if out[0].Num2 != 3 {
			t.Fatalf("%v count attribute = %v, want 3", c.fn, out[0].Num2)
		}
	}
}

func TestTimeWindowDropsLateTuples(t *testing.T) {
	w := NewTimeWindow("w", 4*time.Second, 2*time.Second, AggCount)
	var out []*Tuple
	em := EmitterFunc(func(_ int, tp *Tuple) { out = append(out, tp) })
	w.Process(0, at(1, 1, 1), em)
	w.Process(0, at(20, 1, 1), em) // watermark jumps far ahead
	out = nil
	w.Process(0, at(1, 1, 1), em) // far too late: silently dropped
	w.Process(0, at(30, 1, 1), em)
	// The late tuple must not appear in any later window.
	for _, e := range out {
		if e.Time <= 4*int64(time.Second) {
			t.Fatalf("late tuple resurrected an old window: %+v", e)
		}
	}
}

func TestTimeWindowReset(t *testing.T) {
	w := NewTimeWindow("w", 10*time.Second, 0, AggCount)
	feedWindow(w, []*Tuple{at(1, 1, 1)})
	w.Reset()
	out := feedWindow(w, []*Tuple{at(100, 1, 1), at(111, 1, 1)})
	if len(out) != 1 || out[0].Num1 != 1 {
		t.Fatalf("after reset: %+v, want one count-1 window", out)
	}
}

func TestTimeWindowPaneGarbageCollection(t *testing.T) {
	w := NewTimeWindow("w", 4*time.Second, 2*time.Second, AggCount)
	em := DiscardEmitter
	for sec := int64(0); sec < 2000; sec += 2 {
		w.Process(0, at(sec, uint64(sec%8), 1), em)
	}
	w.mu.Lock()
	panes := w.panes.Len()
	w.mu.Unlock()
	if panes > 4 {
		t.Fatalf("window retains %d panes; expired panes not collected", panes)
	}
}

// TestTimeWindowCountMatchesBruteForce cross-checks the pane-based
// implementation against a brute-force recomputation on random streams.
func TestTimeWindowCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const (
		size  = 8 * time.Second
		slide = 2 * time.Second
	)
	for trial := 0; trial < 20; trial++ {
		w := NewTimeWindow("w", size, slide, AggCount)
		var events []*Tuple
		tm := int64(0)
		var emitted []*Tuple
		em := EmitterFunc(func(_ int, tp *Tuple) { emitted = append(emitted, tp) })
		for i := 0; i < 200; i++ {
			tm += int64(rng.Intn(3)) * int64(time.Second)
			tp := &Tuple{Time: tm, Key: uint64(rng.Intn(3)), Num1: 1}
			events = append(events, tp)
			w.Process(0, tp, em)
		}
		for _, agg := range emitted {
			end := agg.Time
			start := end - int64(size)
			count := 0.0
			for _, ev := range events {
				if ev.Key == agg.Key && ev.Time >= start && ev.Time < end && ev.Time <= tm {
					count++
				}
			}
			if agg.Num1 != count {
				t.Fatalf("trial %d: window ending %ds key %d: got %v, brute force %v",
					trial, end/int64(time.Second), agg.Key, agg.Num1, count)
			}
		}
	}
}

func TestAggregateFuncString(t *testing.T) {
	for _, c := range []struct {
		fn   AggregateFunc
		want string
	}{
		{AggCount, "count"}, {AggSum, "sum"}, {AggAvg, "avg"},
		{AggMin, "min"}, {AggMax, "max"}, {AggregateFunc(0), "unknown"},
	} {
		if c.fn.String() != c.want {
			t.Fatalf("%d.String() = %q", c.fn, c.fn.String())
		}
	}
}
