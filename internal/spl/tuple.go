// Package spl implements the stream-processing data and operator model that
// the elastic runtime schedules: tuples, operators, sources, and a library of
// built-in operators. It mirrors the SPL abstractions described in the paper
// (operators receive and emit tuples on streams) without any scheduling
// policy of its own; threading decisions live in internal/exec and
// internal/core.
package spl

// Tuple is the unit of data flowing between operators.
//
// Tuples carry a fixed set of scalar attributes plus an opaque payload. The
// payload is what makes tuple size matter to the scheduler: crossing a
// scheduler queue — the shared MPMC queues and the per-worker work-stealing
// deques alike — deep-copies the tuple, including the payload, which is the
// "copy overhead" the paper attributes to the dynamic threading model.
//
// Ownership on the dynamic path is exclusive end to end: the emitting side
// clones the tuple into the queue or deque and releases its original, and
// whoever removes the clone — the worker that popped it locally, a thief
// that stole it, or a reconfiguration drain — owns it outright and must
// execute or Release it exactly once. Deque cells are zeroed on removal so
// a pooled tuple is never reachable from two places.
type Tuple struct {
	// Seq is a sequence number assigned by the producing source.
	Seq uint64
	// Key is a partitioning key used by keyed operators.
	Key uint64
	// Time is an event timestamp in nanoseconds, assigned by the source.
	Time int64
	// Text is the primary string attribute (e.g. a word, a domain name).
	Text string
	// Num1 and Num2 are numeric attributes (e.g. price and volume).
	Num1 float64
	Num2 float64
	// Payload is the opaque serialized body of the tuple.
	Payload []byte

	// payloadBox, when non-nil, is the pooled buffer backing Payload;
	// Release returns it to its size-class pool. Tuples whose payload
	// merely references a buffer owned elsewhere leave it nil.
	payloadBox *[]byte

	// arena, when non-nil, means Payload is a read-only view into a shared
	// ref-counted frame buffer (see Arena); Release drops the reference
	// instead of recycling a payload buffer. Mutually exclusive with
	// payloadBox.
	arena *Arena
}

// Clone returns a deep copy of the tuple. The payload bytes are copied, so
// the clone can safely cross a scheduler queue while the original is reused
// by the producing thread. The clone's struct and payload buffer come from
// the tuple pool; recycle them with Release when the clone's life ends.
func (t *Tuple) Clone() *Tuple {
	c := tuplePool.Get().(*Tuple)
	c.Seq, c.Key, c.Time = t.Seq, t.Key, t.Time
	c.Text, c.Num1, c.Num2 = t.Text, t.Num1, t.Num2
	if n := len(t.Payload); n > 0 {
		c.AcquirePayload(n)
		copy(c.Payload, t.Payload)
	} else {
		c.Payload, c.payloadBox = nil, nil
	}
	return c
}

// Size returns the number of bytes the tuple occupies for copy-cost
// accounting: the payload plus a fixed header estimate for the scalar
// attributes.
func (t *Tuple) Size() int {
	return len(t.Payload) + tupleHeaderBytes + len(t.Text)
}

// tupleHeaderBytes approximates the fixed in-memory size of a tuple's scalar
// attributes for copy-cost accounting.
const tupleHeaderBytes = 64
