package spl

import (
	"sync"
	"sync/atomic"
)

// Reorder restores per-stream sequence order downstream of a dynamic
// region: under the dynamic threading model several scheduler threads
// process tuples of the same stream concurrently, so arrival order at a
// consumer is not emission order. Reorder buffers out-of-order tuples and
// releases them in ascending Seq order.
//
// The buffer is bounded: when it fills, the operator force-releases from
// the smallest buffered sequence onward (counting the order violation)
// rather than stalling the pipeline, and tuples older than the release
// cursor are dropped as duplicates/late.
type Reorder struct {
	name string
	cap  int

	mu   sync.Mutex
	next uint64
	buf  map[uint64]*Tuple

	forced  atomic.Uint64
	dropped atomic.Uint64
}

var (
	_ Operator = (*Reorder)(nil)
	_ Stateful = (*Reorder)(nil)
)

// NewReorder returns a resequencer expecting Seq values starting at start,
// buffering at most capacity out-of-order tuples.
func NewReorder(name string, start uint64, capacity int) *Reorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Reorder{name: name, cap: capacity, next: start, buf: make(map[uint64]*Tuple)}
}

// Name returns the operator name.
func (r *Reorder) Name() string { return r.name }

// Stateful marks the resequencing buffer as serialized.
func (r *Reorder) Stateful() {}

// Process buffers or releases t, emitting any newly contiguous run.
func (r *Reorder) Process(_ int, t *Tuple, out Emitter) {
	r.mu.Lock()
	var release []*Tuple
	switch {
	case t.Seq < r.next:
		r.dropped.Add(1)
	case t.Seq == r.next:
		release = append(release, t)
		r.next++
		for {
			nt, ok := r.buf[r.next]
			if !ok {
				break
			}
			delete(r.buf, r.next)
			release = append(release, nt)
			r.next++
		}
	default:
		r.buf[t.Seq] = t
		if len(r.buf) > r.cap {
			// Bounded buffer: give up on the gap and release everything
			// we can, in order, from the smallest buffered sequence.
			r.forced.Add(1)
			min := t.Seq
			for s := range r.buf {
				if s < min {
					min = s
				}
			}
			r.next = min
			for {
				nt, ok := r.buf[r.next]
				if !ok {
					break
				}
				delete(r.buf, r.next)
				release = append(release, nt)
				r.next++
			}
		}
	}
	r.mu.Unlock()
	for _, rt := range release {
		out.Emit(0, rt)
	}
}

// Forced returns how many times the bounded buffer forced an out-of-order
// release.
func (r *Reorder) Forced() uint64 { return r.forced.Load() }

// Dropped returns how many tuples arrived behind the release cursor and
// were discarded.
func (r *Reorder) Dropped() uint64 { return r.dropped.Load() }

// Pending returns the number of buffered out-of-order tuples.
func (r *Reorder) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
