package spl

import (
	"sync"
	"sync/atomic"

	"streamelastic/internal/state"
)

// Reorder restores per-stream sequence order downstream of a dynamic
// region: under the dynamic threading model several scheduler threads
// process tuples of the same stream concurrently, so arrival order at a
// consumer is not emission order. Reorder buffers out-of-order tuples and
// releases them in ascending Seq order.
//
// The buffer is bounded: when it fills, the operator force-releases from
// the smallest buffered sequence onward (counting the order violation)
// rather than stalling the pipeline, and tuples older than the release
// cursor are dropped as duplicates/late.
//
// Reorder is also the runtime's exactly-once output filter: replayed
// tuples land behind the release cursor and are dropped as duplicates.
// That is why it implements state.ReplayFilter — during quarantine
// recovery its live cursor is deliberately kept (restoring it would
// re-release the replayed range). It still checkpoints and restores on a
// cold restart.
type Reorder struct {
	name string
	cap  int

	mu   sync.Mutex
	next *state.Cell[uint64]
	buf  *state.Map[*Tuple]

	forced  atomic.Uint64
	dropped atomic.Uint64
}

var (
	_ Operator           = (*Reorder)(nil)
	_ Stateful           = (*Reorder)(nil)
	_ state.Snapshotter  = (*Reorder)(nil)
	_ state.ReplayFilter = (*Reorder)(nil)
)

// encBufTuple / decBufTuple encode one buffered tuple. Restored tuples are
// pool-acquired with owned payload copies, matching the release-on-emit
// lifecycle.
func encBufTuple(e *state.Encoder, t *Tuple) {
	e.Uvarint(t.Seq)
	e.Uvarint(t.Key)
	e.Varint(t.Time)
	e.String(t.Text)
	e.Float64(t.Num1)
	e.Float64(t.Num2)
	e.Blob(t.Payload)
}

func decBufTuple(d *state.Decoder) *Tuple {
	t := AcquireTuple()
	t.Seq = d.Uvarint()
	t.Key = d.Uvarint()
	t.Time = d.Varint()
	t.Text = d.String()
	t.Num1 = d.Float64()
	t.Num2 = d.Float64()
	b := d.Blob()
	if len(b) > 0 {
		t.AcquirePayload(len(b))
		copy(t.Payload, b)
	}
	return t
}

// NewReorder returns a resequencer expecting Seq values starting at start,
// buffering at most capacity out-of-order tuples.
func NewReorder(name string, start uint64, capacity int) *Reorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Reorder{
		name: name,
		cap:  capacity,
		next: state.NewCell(start, state.EncUint64, state.DecUint64),
		buf:  state.NewMap(0, encBufTuple, decBufTuple),
	}
}

// Name returns the operator name.
func (r *Reorder) Name() string { return r.name }

// Stateful marks the resequencing buffer as serialized.
func (r *Reorder) Stateful() {}

// FiltersReplay marks the release cursor as the exactly-once dedup state:
// quarantine recovery keeps it live instead of restoring it.
func (r *Reorder) FiltersReplay() {}

// Process buffers or releases t, emitting any newly contiguous run.
func (r *Reorder) Process(_ int, t *Tuple, out Emitter) {
	r.mu.Lock()
	next := r.next.Get()
	var release []*Tuple
	switch {
	case t.Seq < next:
		r.dropped.Add(1)
	case t.Seq == next:
		release = append(release, t)
		next++
		for {
			nt, ok := r.buf.Get(next)
			if !ok {
				break
			}
			r.buf.Delete(next)
			release = append(release, nt)
			next++
		}
		r.next.Set(next)
	default:
		r.buf.Put(t.Seq, t)
		if r.buf.Len() > r.cap {
			// Bounded buffer: give up on the gap and release everything
			// we can, in order, from the smallest buffered sequence.
			r.forced.Add(1)
			min := t.Seq
			r.buf.Range(func(s uint64, _ *Tuple) bool {
				if s < min {
					min = s
				}
				return true
			})
			next = min
			for {
				nt, ok := r.buf.Get(next)
				if !ok {
					break
				}
				r.buf.Delete(next)
				release = append(release, nt)
				next++
			}
			r.next.Set(next)
		}
	}
	r.mu.Unlock()
	for _, rt := range release {
		out.Emit(0, rt)
	}
}

// Forced returns how many times the bounded buffer forced an out-of-order
// release.
func (r *Reorder) Forced() uint64 { return r.forced.Load() }

// Dropped returns how many tuples arrived behind the release cursor and
// were discarded.
func (r *Reorder) Dropped() uint64 { return r.dropped.Load() }

// Pending returns the number of buffered out-of-order tuples.
func (r *Reorder) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Len()
}

// StateTrack enables dirty tracking for incremental checkpoints.
func (r *Reorder) StateTrack(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next.Track(on)
	r.buf.Track(on)
}

// StateSnapshot encodes the release cursor and buffered tuples.
func (r *Reorder) StateSnapshot(enc *state.Encoder, full bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next.Snapshot(enc, full)
	n += r.buf.Snapshot(enc, full)
	return n
}

// StateRestore applies a snapshot. A full restore releases any currently
// buffered tuples back to the pool before replacing them.
func (r *Reorder) StateRestore(dec *state.Decoder, full bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if full {
		r.buf.Range(func(_ uint64, t *Tuple) bool {
			t.Release()
			return true
		})
	}
	if err := r.next.Restore(dec, full); err != nil {
		return err
	}
	return r.buf.Restore(dec, full)
}
