package spl

// Emitter delivers tuples produced by an operator to one of its output
// ports. The runtime supplies the implementation: under the manual threading
// model an emit executes the downstream operator inline on the calling
// thread; under the dynamic model it copies the tuple into the downstream
// scheduler queue.
type Emitter interface {
	// Emit submits t on the given output port. The callee takes ownership
	// of t; the caller must not reuse it afterwards unless it emitted a
	// Clone.
	Emit(port int, t *Tuple)
}

// BatchEmitter is an optional extension of Emitter for callers that hold a
// whole batch of tuples. EmitN submits every tuple of ts on the given output
// port in order, with the same ownership transfer as Emit; implementations
// that capture source output into a batch buffer (compiled regions) can
// bulk-append instead of looping. Sources that already produce slices — such
// as the transport import draining its injection ring — should type-assert
// their Emitter and prefer EmitN when available.
type BatchEmitter interface {
	Emitter
	EmitN(port int, ts []*Tuple)
}

// Operator processes tuples arriving on its input ports. Implementations
// must be safe for concurrent Process calls unless they are marked as
// stateful via the Stateful interface: under the dynamic threading model any
// scheduler thread may execute any operator.
type Operator interface {
	// Name returns a short diagnostic name for the operator.
	Name() string
	// Process handles one tuple arriving on input port port, emitting any
	// derived tuples through out.
	Process(port int, t *Tuple, out Emitter)
}

// Source produces tuples when driven by a dedicated operator thread.
// Sources are the roots of a stream graph; the runtime assigns each source
// its own thread regardless of threading model.
type Source interface {
	Operator
	// Next produces the next batch of tuples through out and reports
	// whether the source can produce more. Returning false stops the
	// operator thread.
	Next(out Emitter) bool
}

// Stateful marks operators whose Process must not run concurrently with
// itself. The runtime serializes execution of stateful operators with a
// per-operator lock when they are scheduled dynamically.
type Stateful interface {
	Stateful()
}

// DrainExempt marks sources that must keep running while the engine drains
// (for example transport imports, which carry the very tuples a drain waits
// for); they stop only at full shutdown.
type DrainExempt interface {
	DrainExempt()
}

// Resettable is implemented by operators that carry accumulated state which
// tests and repeated benchmark runs need to clear between runs.
type Resettable interface {
	Reset()
}

// Recyclable marks terminal operators that never retain a reference to a
// processed tuple (or any of its attributes' backing storage, such as the
// payload slice) after Process returns. The runtime releases tuples
// delivered to a recyclable sink back to the tuple pool, closing the
// allocation-free steady-state loop. Operators that collect, buffer, or
// forward tuples must not implement it.
type Recyclable interface {
	RecyclesTuples()
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(port int, t *Tuple)

// Emit calls f(port, t).
func (f EmitterFunc) Emit(port int, t *Tuple) { f(port, t) }

// DiscardEmitter drops every tuple. It is useful for driving terminal
// operators in tests.
var DiscardEmitter Emitter = EmitterFunc(func(int, *Tuple) {})
