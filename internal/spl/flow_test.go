package spl

import (
	"sync"
	"testing"
	"time"
)

func TestThrottleCapsRate(t *testing.T) {
	gen := NewGenerator("src", 0)
	th := NewThrottle(gen, 1000)
	// Inject a fake clock so the test is deterministic and fast.
	now := time.Unix(100, 0)
	th.now = func() time.Time { return now }
	out := newCollect()

	// First call fills nothing (lastFill initializes); tokens start at 0,
	// so the token loop sleeps. Advance the clock from a helper goroutine
	// is overkill: instead pre-advance between calls.
	emitted := 0
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond) // 1 token per ms at 1000/s
		if th.Next(out) {
			emitted++
		}
	}
	if emitted != 50 {
		t.Fatalf("emitted %d, want 50", emitted)
	}
	if len(out.byPort[0]) != 50 {
		t.Fatalf("collected %d tuples", len(out.byPort[0]))
	}
}

func TestThrottleBurstBounded(t *testing.T) {
	gen := NewGenerator("src", 0)
	th := NewThrottle(gen, 1000)
	now := time.Unix(100, 0)
	th.now = func() time.Time { return now }
	out := newCollect()
	// Prime lastFill.
	now = now.Add(time.Millisecond)
	if !th.Next(out) {
		t.Fatal("first Next failed")
	}
	// A long idle period must not accumulate unbounded tokens: burst is
	// 100 (one tenth of a second at 1000/s).
	now = now.Add(10 * time.Second)
	if !th.Next(out) {
		t.Fatal("Next after idle failed")
	}
	if th.tokens > th.Burst {
		t.Fatalf("tokens %v exceed burst %v", th.tokens, th.Burst)
	}
}

func TestThrottleRealTimeApproximateRate(t *testing.T) {
	gen := NewGenerator("src", 0)
	th := NewThrottle(gen, 2000)
	out := newCollect()
	start := time.Now()
	n := 0
	for time.Since(start) < 200*time.Millisecond {
		if th.Next(out) {
			n++
		}
	}
	// 2000/s over 0.2s = ~400; allow generous slack for scheduling.
	if n < 150 || n > 900 {
		t.Fatalf("throttled source emitted %d tuples in 200ms at 2000/s", n)
	}
}

func TestThrottleName(t *testing.T) {
	th := NewThrottle(NewGenerator("feed", 0), 10)
	if th.Name() != "feed-throttled" {
		t.Fatalf("name = %q", th.Name())
	}
}

func TestSampleForwardsEveryKth(t *testing.T) {
	s := NewSample("s", 5)
	out := newCollect()
	for i := 0; i < 100; i++ {
		s.Process(0, &Tuple{Seq: uint64(i)}, out)
	}
	if got := len(out.byPort[0]); got != 20 {
		t.Fatalf("sample passed %d tuples, want 20", got)
	}
}

func TestSampleKOne(t *testing.T) {
	s := NewSample("s", 0) // clamped to 1
	out := newCollect()
	for i := 0; i < 10; i++ {
		s.Process(0, &Tuple{}, out)
	}
	if got := len(out.byPort[0]); got != 10 {
		t.Fatalf("sample(1) passed %d tuples, want 10", got)
	}
}

func TestSampleConcurrentCountExact(t *testing.T) {
	s := NewSample("s", 4)
	var mu sync.Mutex
	count := 0
	em := EmitterFunc(func(int, *Tuple) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s.Process(0, &Tuple{}, em)
			}
		}()
	}
	wg.Wait()
	if count != 800 { // 3200 tuples / 4
		t.Fatalf("concurrent sample passed %d, want 800", count)
	}
}

func TestUnionForwards(t *testing.T) {
	u := NewUnion("u")
	out := newCollect()
	u.Process(0, &Tuple{Seq: 1}, out)
	u.Process(3, &Tuple{Seq: 2}, out)
	if got := len(out.byPort[0]); got != 2 {
		t.Fatalf("union forwarded %d tuples, want 2 on port 0", got)
	}
	if u.Name() != "u" {
		t.Fatal("wrong name")
	}
}

func TestGeneratorTextCorpus(t *testing.T) {
	g := NewGenerator("src", 0)
	g.Texts = []string{"alpha beta", "gamma"}
	g.MaxTuples = 4
	out := newCollect()
	for g.Next(out) {
	}
	got := out.byPort[0]
	if got[0].Text != "alpha beta" || got[1].Text != "gamma" || got[2].Text != "alpha beta" {
		t.Fatalf("corpus cycling broken: %q %q %q", got[0].Text, got[1].Text, got[2].Text)
	}
}
