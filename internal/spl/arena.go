package spl

import (
	"sync"
	"sync/atomic"
)

// Arena is a pooled, ref-counted receive buffer that lets decoded tuples
// carry payload *views* into a single frame buffer instead of copying each
// payload into its own pooled buffer.
//
// Lifecycle protocol (an extension of the PR 1 ownership rules):
//
//   - The producer (the PE frame decoder) calls AcquireArena(n), reads the
//     frame into Bytes(), and holds one creator reference.
//   - Each tuple that views into the arena is attached with AttachArena,
//     which takes its own reference. Tuple.Release drops it; tuples from the
//     same frame may be Released in any order and at any time — the buffer
//     lives until the last view goes.
//   - When the producer has attached every view it will ever attach, it
//     drops the creator reference with Release. From then on the arena's
//     life is governed solely by its tuples.
//
// The backing buffer comes from the payload size-class pools, so a frame
// decode costs zero steady-state allocations and zero payload copies: the
// bytes are read from the wire straight into the arena and the tuple's
// Payload aliases them until Release.
//
// Views are read-only by convention: multiple tuples may alias overlapping
// ranges, and the buffer is recycled wholesale, so operators must Clone (deep
// copy) before mutating a payload — exactly the rule queue crossings already
// enforce.
type Arena struct {
	buf  []byte
	box  *[]byte // pooled backing buffer, nil when GC-owned (oversize)
	refs atomic.Int32
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// AcquireArena returns an arena with an n-byte buffer (n > 0) and one
// creator reference. The buffer contents are unspecified; fill via Bytes.
func AcquireArena(n int) *Arena {
	a := arenaPool.Get().(*Arena)
	a.refs.Store(1)
	if c := payloadClass(n); c >= 0 {
		box := payloadPools[c].Get().(*[]byte)
		a.buf, a.box = (*box)[:n], box
	} else {
		a.buf, a.box = make([]byte, n), nil
	}
	return a
}

// Bytes returns the arena's buffer. The producer fills it before attaching
// views; afterwards it must be treated as immutable.
func (a *Arena) Bytes() []byte { return a.buf }

// Retain adds a reference. Exposed for producers that hand the same arena to
// multiple frames or stash it across calls; tuple views take their reference
// through AttachArena.
func (a *Arena) Retain() { a.refs.Add(1) }

// RetainN adds n references in one atomic operation. The batch frame decoder
// uses it to pre-take every view reference for a whole batch before attaching
// the views with AttachArenaRetained, so an n-tuple batch costs one atomic
// add instead of n.
func (a *Arena) RetainN(n int32) {
	if n > 0 {
		a.refs.Add(n)
	}
}

// Release drops one reference; the last drop returns the buffer to its
// size-class pool and the arena struct to the arena pool. After Release the
// caller must not touch the arena (nor any view into it, for the last
// holder).
func (a *Arena) Release() {
	if a.refs.Add(-1) != 0 {
		return
	}
	if a.box != nil {
		payloadPools[payloadClass(cap(*a.box))].Put(a.box)
	}
	a.buf, a.box = nil, nil
	arenaPool.Put(a)
}

// Refs returns the current reference count (diagnostic; used by tests).
func (a *Arena) Refs() int32 { return a.refs.Load() }

// AttachArena makes the tuple a view holder of a: Payload aliases view
// (a subslice of a.Bytes()), the tuple takes one arena reference, and
// Tuple.Release will drop it instead of recycling a pooled payload buffer.
// Any previously owned pooled payload is returned first.
func (t *Tuple) AttachArena(a *Arena, view []byte) {
	if t.payloadBox != nil {
		payloadPools[payloadClass(cap(*t.payloadBox))].Put(t.payloadBox)
		t.payloadBox = nil
	}
	a.Retain()
	t.Payload, t.arena = view, a
}

// AttachArenaRetained is AttachArena for a reference the caller already
// holds (via RetainN): the tuple becomes a view holder of a without taking a
// new reference, adopting one of the pre-taken ones. Tuple.Release drops it
// as usual.
func (t *Tuple) AttachArenaRetained(a *Arena, view []byte) {
	if t.payloadBox != nil {
		payloadPools[payloadClass(cap(*t.payloadBox))].Put(t.payloadBox)
		t.payloadBox = nil
	}
	t.Payload, t.arena = view, a
}

// ArenaBacked reports whether the tuple's payload is a view into a shared
// arena (diagnostic; used by tests).
func (t *Tuple) ArenaBacked() bool { return t.arena != nil }
