package spl

import (
	"testing"
	"time"
)

func BenchmarkWorkOp100FLOPs(b *testing.B) {
	w := NewWork("w", NewCostVar(100))
	t := &Tuple{Num1: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Process(0, t, DiscardEmitter)
	}
}

func BenchmarkWorkOp10KFLOPs(b *testing.B) {
	w := NewWork("w", NewCostVar(10_000))
	t := &Tuple{Num1: 1}
	for i := 0; i < b.N; i++ {
		w.Process(0, t, DiscardEmitter)
	}
}

func BenchmarkTupleClone1KB(b *testing.B) {
	t := &Tuple{Seq: 1, Payload: make([]byte, 1024)}
	b.ReportAllocs()
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		_ = t.Clone()
	}
}

func BenchmarkTupleClone16KB(b *testing.B) {
	t := &Tuple{Seq: 1, Payload: make([]byte, 16384)}
	b.SetBytes(16384)
	for i := 0; i < b.N; i++ {
		_ = t.Clone()
	}
}

func BenchmarkTokenize(b *testing.B) {
	tk := NewTokenize("tok")
	t := &Tuple{Text: "the quick brown fox jumps over the lazy dog"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Process(0, t, DiscardEmitter)
	}
}

func BenchmarkKeyedCounter(b *testing.B) {
	k := NewKeyedCounter("agg", 4096, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Process(0, &Tuple{Key: uint64(i % 64)}, DiscardEmitter)
	}
}

func BenchmarkTimeWindowSliding(b *testing.B) {
	w := NewTimeWindow("w", 60*time.Second, time.Second, AggCount)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Process(0, &Tuple{
			Time: int64(i) * int64(10*time.Millisecond),
			Key:  uint64(i % 16),
			Num1: 1,
		}, DiscardEmitter)
	}
}

func BenchmarkReorderInOrder(b *testing.B) {
	r := NewReorder("r", 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Process(0, &Tuple{Seq: uint64(i)}, DiscardEmitter)
	}
}

func BenchmarkKeyedJoinProbe(b *testing.B) {
	j := NewKeyedJoin("join")
	for k := uint64(0); k < 64; k++ {
		j.Process(1, &Tuple{Key: k, Num1: float64(k)}, DiscardEmitter)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Process(0, &Tuple{Key: uint64(i % 64), Num1: 1}, DiscardEmitter)
	}
}

func BenchmarkSpinFLOPsCalibration(b *testing.B) {
	// Measures how close SpinFLOPs(N) is to N actual FLOPs of work; the
	// ns/op divided by N gives seconds-per-FLOP on this host.
	for i := 0; i < b.N; i++ {
		SpinFLOPs(1000, 1)
	}
}
