package spl

import (
	"testing"
	"testing/quick"
)

func TestTupleCloneDeepCopiesPayload(t *testing.T) {
	orig := &Tuple{Seq: 7, Key: 3, Text: "abc", Num1: 1.5, Payload: []byte{1, 2, 3}}
	c := orig.Clone()
	if c == orig {
		t.Fatal("Clone returned the same pointer")
	}
	c.Payload[0] = 99
	if orig.Payload[0] != 1 {
		t.Fatalf("mutating clone payload changed original: %v", orig.Payload)
	}
	if c.Seq != orig.Seq || c.Key != orig.Key || c.Text != orig.Text || c.Num1 != orig.Num1 {
		t.Fatalf("clone attributes differ: %+v vs %+v", c, orig)
	}
}

func TestTupleCloneNilPayload(t *testing.T) {
	orig := &Tuple{Seq: 1}
	c := orig.Clone()
	if c.Payload != nil {
		t.Fatalf("clone of nil payload is %v, want nil", c.Payload)
	}
}

func TestTupleClonePropertyIndependence(t *testing.T) {
	f := func(seq, key uint64, text string, payload []byte) bool {
		orig := &Tuple{Seq: seq, Key: key, Text: text, Payload: payload}
		c := orig.Clone()
		if len(payload) > 0 {
			c.Payload[0] ^= 0xff
			if orig.Payload[0] == c.Payload[0] {
				return false
			}
		}
		return c.Seq == seq && c.Key == key && c.Text == text && len(c.Payload) == len(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleSizeCountsPayloadAndText(t *testing.T) {
	small := (&Tuple{}).Size()
	withPayload := (&Tuple{Payload: make([]byte, 100)}).Size()
	if withPayload-small != 100 {
		t.Fatalf("payload contributes %d bytes, want 100", withPayload-small)
	}
	withText := (&Tuple{Text: "hello"}).Size()
	if withText-small != 5 {
		t.Fatalf("text contributes %d bytes, want 5", withText-small)
	}
}
