package spl

import (
	"sync"

	"streamelastic/internal/state"
)

// KeyedJoin is an enrichment join: tuples on port 1 (the build side) update
// a per-key table of the latest value; tuples on port 0 (the probe side)
// are emitted enriched with the current build-side values, carrying the
// probe tuple's Num1 and the build side's Num1 in Num2. Probe tuples whose
// key has no build-side entry are dropped (inner-join semantics) unless
// EmitUnmatched is set.
//
// This is the generalized form of the VWAP application's bargain join
// (quotes probed against the latest per-symbol VWAP).
//
// The build table lives in a state.Map so it is checkpointable: the
// coordinator snapshots dirty keys incrementally and restores the table on
// recovery (see DESIGN.md "Checkpoint & recovery").
type KeyedJoin struct {
	name string
	// EmitUnmatched forwards probe tuples with Num2 = 0 when the key has
	// no build-side entry (left-outer semantics).
	EmitUnmatched bool

	mu    sync.Mutex
	table *state.Map[float64]
}

var (
	_ Operator          = (*KeyedJoin)(nil)
	_ Stateful          = (*KeyedJoin)(nil)
	_ Resettable        = (*KeyedJoin)(nil)
	_ state.Snapshotter = (*KeyedJoin)(nil)
)

// NewKeyedJoin returns an enrichment join keyed on the Key attribute.
func NewKeyedJoin(name string) *KeyedJoin {
	return &KeyedJoin{name: name, table: state.NewMap(0, state.EncFloat64, state.DecFloat64)}
}

// Name returns the operator name.
func (j *KeyedJoin) Name() string { return j.name }

// Stateful marks the build table as serialized.
func (j *KeyedJoin) Stateful() {}

// Reset clears the build table.
func (j *KeyedJoin) Reset() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.table.Clear()
}

// Process updates the table (port 1) or probes it (port 0).
func (j *KeyedJoin) Process(port int, t *Tuple, out Emitter) {
	j.mu.Lock()
	if port == 1 {
		j.table.Put(t.Key, t.Num1)
		j.mu.Unlock()
		return
	}
	v, ok := j.table.Get(t.Key)
	j.mu.Unlock()
	if !ok && !j.EmitUnmatched {
		return
	}
	o := AcquireTuple()
	o.Seq, o.Key, o.Time, o.Text = t.Seq, t.Key, t.Time, t.Text
	o.Num1, o.Num2, o.Payload = t.Num1, v, t.Payload
	out.Emit(0, o)
}

// Size returns the number of keys in the build table.
func (j *KeyedJoin) Size() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table.Len()
}

// StateTrack enables dirty-key tracking for incremental checkpoints.
func (j *KeyedJoin) StateTrack(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.table.Track(on)
}

// StateSnapshot encodes the build table (fully or only dirty keys).
func (j *KeyedJoin) StateSnapshot(enc *state.Encoder, full bool) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table.Snapshot(enc, full)
}

// StateRestore applies a snapshot produced by StateSnapshot.
func (j *KeyedJoin) StateRestore(dec *state.Decoder, full bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table.Restore(dec, full)
}
