package spl

import "sync"

// KeyedJoin is an enrichment join: tuples on port 1 (the build side) update
// a per-key table of the latest value; tuples on port 0 (the probe side)
// are emitted enriched with the current build-side values, carrying the
// probe tuple's Num1 and the build side's Num1 in Num2. Probe tuples whose
// key has no build-side entry are dropped (inner-join semantics) unless
// EmitUnmatched is set.
//
// This is the generalized form of the VWAP application's bargain join
// (quotes probed against the latest per-symbol VWAP).
type KeyedJoin struct {
	name string
	// EmitUnmatched forwards probe tuples with Num2 = 0 when the key has
	// no build-side entry (left-outer semantics).
	EmitUnmatched bool

	mu    sync.Mutex
	table map[uint64]float64
}

var (
	_ Operator = (*KeyedJoin)(nil)
	_ Stateful = (*KeyedJoin)(nil)
)

// NewKeyedJoin returns an enrichment join keyed on the Key attribute.
func NewKeyedJoin(name string) *KeyedJoin {
	return &KeyedJoin{name: name, table: make(map[uint64]float64)}
}

// Name returns the operator name.
func (j *KeyedJoin) Name() string { return j.name }

// Stateful marks the build table as serialized.
func (j *KeyedJoin) Stateful() {}

// Process updates the table (port 1) or probes it (port 0).
func (j *KeyedJoin) Process(port int, t *Tuple, out Emitter) {
	j.mu.Lock()
	if port == 1 {
		j.table[t.Key] = t.Num1
		j.mu.Unlock()
		return
	}
	v, ok := j.table[t.Key]
	j.mu.Unlock()
	if !ok && !j.EmitUnmatched {
		return
	}
	out.Emit(0, &Tuple{
		Seq: t.Seq, Key: t.Key, Time: t.Time, Text: t.Text,
		Num1: t.Num1, Num2: v, Payload: t.Payload,
	})
}

// Size returns the number of keys in the build table.
func (j *KeyedJoin) Size() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.table)
}
