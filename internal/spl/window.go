package spl

import (
	"sync"
	"time"

	"streamelastic/internal/state"
)

// AggregateFunc folds the numeric attribute of windowed tuples.
type AggregateFunc int

// Window aggregation functions over the Num1 attribute.
const (
	AggCount AggregateFunc = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the function name.
func (f AggregateFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "unknown"
	}
}

// TimeWindow aggregates tuples per key over a sliding event-time window,
// the windowing of the paper's Fig. 2 Aggregate operator
// (`window sliding, time(60), time(1), partitioned`). Event time is the
// tuple's Time attribute in nanoseconds; the window is divided into panes
// of Slide duration, and an aggregate tuple is emitted per key whenever the
// watermark (the largest Time seen) crosses into a new pane.
//
// The implementation is pane-based: each pane holds partial aggregates per
// key, and a window result combines the last Size/Slide panes, so window
// maintenance is O(panes), not O(tuples). Panes live in a state.Map keyed
// by pane index and the watermark cursor in a state.Cell, so checkpoints
// are incremental at pane granularity: only panes touched since the last
// snapshot are re-encoded.
type TimeWindow struct {
	name  string
	size  time.Duration
	slide time.Duration
	fn    AggregateFunc

	mu     sync.Mutex
	panes  *state.Map[map[uint64]*paneAgg] // pane index -> key -> partial
	cursor *state.Cell[winCursor]
}

type winCursor struct {
	watermark int64
	curPane   int64
	started   bool
}

type paneAgg struct {
	count int64
	sum   float64
	min   float64
	max   float64
	text  string
}

var (
	_ Operator          = (*TimeWindow)(nil)
	_ Stateful          = (*TimeWindow)(nil)
	_ Resettable        = (*TimeWindow)(nil)
	_ state.Snapshotter = (*TimeWindow)(nil)
)

// encPane / decPane encode one pane's per-key partial aggregates.
func encPane(e *state.Encoder, m map[uint64]*paneAgg) {
	e.Uvarint(uint64(len(m)))
	for k, a := range m {
		e.Uvarint(k)
		e.Varint(a.count)
		e.Float64(a.sum)
		e.Float64(a.min)
		e.Float64(a.max)
		e.String(a.text)
	}
}

func decPane(d *state.Decoder) map[uint64]*paneAgg {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		d.Fail()
		return nil
	}
	m := make(map[uint64]*paneAgg, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Uvarint()
		a := &paneAgg{count: d.Varint(), sum: d.Float64(), min: d.Float64(), max: d.Float64(), text: d.String()}
		if d.Err() != nil {
			break
		}
		m[k] = a
	}
	return m
}

func encWinCursor(e *state.Encoder, c winCursor) {
	e.Varint(c.watermark)
	e.Varint(c.curPane)
	e.Bool(c.started)
}

func decWinCursor(d *state.Decoder) winCursor {
	return winCursor{watermark: d.Varint(), curPane: d.Varint(), started: d.Bool()}
}

// NewTimeWindow returns a sliding event-time window aggregator. size must
// be a positive multiple of slide.
func NewTimeWindow(name string, size, slide time.Duration, fn AggregateFunc) *TimeWindow {
	if slide <= 0 {
		slide = size
	}
	return &TimeWindow{
		name:   name,
		size:   size,
		slide:  slide,
		fn:     fn,
		panes:  state.NewMap(0, encPane, decPane),
		cursor: state.NewCell(winCursor{}, encWinCursor, decWinCursor),
	}
}

// Name returns the operator name.
func (w *TimeWindow) Name() string { return w.name }

// Stateful marks the window state as serialized.
func (w *TimeWindow) Stateful() {}

// Reset clears all window state.
func (w *TimeWindow) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.panes.Clear()
	w.cursor.Set(winCursor{})
}

// Process folds t into its pane and emits per-key aggregates when the
// watermark advances into a new pane. Late tuples (older than the window)
// are dropped.
func (w *TimeWindow) Process(_ int, t *Tuple, out Emitter) {
	w.mu.Lock()
	emitted := w.fold(t)
	w.mu.Unlock()
	for _, e := range emitted {
		out.Emit(0, e)
	}
}

// fold updates state and returns any aggregate tuples to emit; the caller
// holds the lock and emits outside it.
func (w *TimeWindow) fold(t *Tuple) []*Tuple {
	cur := w.cursor.Get()
	pane := t.Time / int64(w.slide)
	if !cur.started {
		cur.started = true
		cur.curPane = pane
		cur.watermark = t.Time
		w.cursor.Set(cur)
	}
	panesPerWindow := int64(w.size / w.slide)
	if pane <= cur.curPane-panesPerWindow {
		return nil // too late: outside every open window
	}

	m, ok := w.panes.Get(uint64(pane))
	if !ok {
		m = make(map[uint64]*paneAgg)
	}
	agg := m[t.Key]
	if agg == nil {
		agg = &paneAgg{min: t.Num1, max: t.Num1, text: t.Text}
		m[t.Key] = agg
	}
	agg.count++
	agg.sum += t.Num1
	if t.Num1 < agg.min {
		agg.min = t.Num1
	}
	if t.Num1 > agg.max {
		agg.max = t.Num1
	}
	// Re-put even when the pane existed: the Put marks the pane dirty so
	// incremental checkpoints pick up the in-place aggregate mutation.
	w.panes.Put(uint64(pane), m)

	if t.Time > cur.watermark {
		cur.watermark = t.Time
	}
	var out []*Tuple
	// Close every pane the watermark has fully passed.
	for cur.watermark/int64(w.slide) > cur.curPane {
		out = append(out, w.closePane(cur.curPane, panesPerWindow)...)
		cur.curPane++
		// Garbage-collect panes that can no longer contribute.
		w.panes.Delete(uint64(cur.curPane - panesPerWindow))
	}
	w.cursor.Set(cur)
	return out
}

// closePane emits one aggregate per key over the window ending at pane.
func (w *TimeWindow) closePane(pane, panesPerWindow int64) []*Tuple {
	keys := make(map[uint64]bool)
	for p := pane - panesPerWindow + 1; p <= pane; p++ {
		if m, ok := w.panes.Get(uint64(p)); ok {
			for k := range m {
				keys[k] = true
			}
		}
	}
	var out []*Tuple
	for k := range keys {
		var total paneAgg
		first := true
		for p := pane - panesPerWindow + 1; p <= pane; p++ {
			m, ok := w.panes.Get(uint64(p))
			if !ok {
				continue
			}
			agg := m[k]
			if agg == nil {
				continue
			}
			if first {
				total.min, total.max, total.text = agg.min, agg.max, agg.text
				first = false
			}
			total.count += agg.count
			total.sum += agg.sum
			if agg.min < total.min {
				total.min = agg.min
			}
			if agg.max > total.max {
				total.max = agg.max
			}
		}
		if total.count == 0 {
			continue
		}
		var value float64
		switch w.fn {
		case AggCount:
			value = float64(total.count)
		case AggSum:
			value = total.sum
		case AggAvg:
			value = total.sum / float64(total.count)
		case AggMin:
			value = total.min
		case AggMax:
			value = total.max
		}
		out = append(out, &Tuple{
			Key:  k,
			Time: (pane + 1) * int64(w.slide),
			Text: total.text,
			Num1: value,
			Num2: float64(total.count),
		})
	}
	return out
}

// StateTrack enables pane-granularity dirty tracking.
func (w *TimeWindow) StateTrack(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.panes.Track(on)
	w.cursor.Track(on)
}

// StateSnapshot encodes the open panes and the watermark cursor.
func (w *TimeWindow) StateSnapshot(enc *state.Encoder, full bool) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.panes.Snapshot(enc, full)
	n += w.cursor.Snapshot(enc, full)
	return n
}

// StateRestore applies a snapshot produced by StateSnapshot.
func (w *TimeWindow) StateRestore(dec *state.Decoder, full bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.panes.Restore(dec, full); err != nil {
		return err
	}
	return w.cursor.Restore(dec, full)
}
