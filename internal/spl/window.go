package spl

import (
	"sync"
	"time"
)

// AggregateFunc folds the numeric attribute of windowed tuples.
type AggregateFunc int

// Window aggregation functions over the Num1 attribute.
const (
	AggCount AggregateFunc = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the function name.
func (f AggregateFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "unknown"
	}
}

// TimeWindow aggregates tuples per key over a sliding event-time window,
// the windowing of the paper's Fig. 2 Aggregate operator
// (`window sliding, time(60), time(1), partitioned`). Event time is the
// tuple's Time attribute in nanoseconds; the window is divided into panes
// of Slide duration, and an aggregate tuple is emitted per key whenever the
// watermark (the largest Time seen) crosses into a new pane.
//
// The implementation is pane-based: each pane holds partial aggregates per
// key, and a window result combines the last Size/Slide panes, so window
// maintenance is O(panes), not O(tuples).
type TimeWindow struct {
	name  string
	size  time.Duration
	slide time.Duration
	fn    AggregateFunc

	mu        sync.Mutex
	panes     map[int64]map[uint64]*paneAgg // pane index -> key -> partial
	watermark int64
	curPane   int64
	started   bool
}

type paneAgg struct {
	count int64
	sum   float64
	min   float64
	max   float64
	text  string
}

var (
	_ Operator   = (*TimeWindow)(nil)
	_ Stateful   = (*TimeWindow)(nil)
	_ Resettable = (*TimeWindow)(nil)
)

// NewTimeWindow returns a sliding event-time window aggregator. size must
// be a positive multiple of slide.
func NewTimeWindow(name string, size, slide time.Duration, fn AggregateFunc) *TimeWindow {
	if slide <= 0 {
		slide = size
	}
	return &TimeWindow{
		name:  name,
		size:  size,
		slide: slide,
		fn:    fn,
		panes: make(map[int64]map[uint64]*paneAgg),
	}
}

// Name returns the operator name.
func (w *TimeWindow) Name() string { return w.name }

// Stateful marks the window state as serialized.
func (w *TimeWindow) Stateful() {}

// Reset clears all window state.
func (w *TimeWindow) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.panes = make(map[int64]map[uint64]*paneAgg)
	w.watermark, w.curPane, w.started = 0, 0, false
}

// Process folds t into its pane and emits per-key aggregates when the
// watermark advances into a new pane. Late tuples (older than the window)
// are dropped.
func (w *TimeWindow) Process(_ int, t *Tuple, out Emitter) {
	w.mu.Lock()
	emitted := w.fold(t)
	w.mu.Unlock()
	for _, e := range emitted {
		out.Emit(0, e)
	}
}

// fold updates state and returns any aggregate tuples to emit; the caller
// holds the lock and emits outside it.
func (w *TimeWindow) fold(t *Tuple) []*Tuple {
	pane := t.Time / int64(w.slide)
	if !w.started {
		w.started = true
		w.curPane = pane
		w.watermark = t.Time
	}
	panesPerWindow := int64(w.size / w.slide)
	if pane <= w.curPane-panesPerWindow {
		return nil // too late: outside every open window
	}

	m := w.panes[pane]
	if m == nil {
		m = make(map[uint64]*paneAgg)
		w.panes[pane] = m
	}
	agg := m[t.Key]
	if agg == nil {
		agg = &paneAgg{min: t.Num1, max: t.Num1, text: t.Text}
		m[t.Key] = agg
	}
	agg.count++
	agg.sum += t.Num1
	if t.Num1 < agg.min {
		agg.min = t.Num1
	}
	if t.Num1 > agg.max {
		agg.max = t.Num1
	}

	if t.Time > w.watermark {
		w.watermark = t.Time
	}
	var out []*Tuple
	// Close every pane the watermark has fully passed.
	for w.watermark/int64(w.slide) > w.curPane {
		out = append(out, w.closePane(w.curPane)...)
		w.curPane++
		// Garbage-collect panes that can no longer contribute.
		delete(w.panes, w.curPane-panesPerWindow)
	}
	return out
}

// closePane emits one aggregate per key over the window ending at pane.
func (w *TimeWindow) closePane(pane int64) []*Tuple {
	panesPerWindow := int64(w.size / w.slide)
	keys := make(map[uint64]bool)
	for p := pane - panesPerWindow + 1; p <= pane; p++ {
		for k := range w.panes[p] {
			keys[k] = true
		}
	}
	var out []*Tuple
	for k := range keys {
		var total paneAgg
		first := true
		for p := pane - panesPerWindow + 1; p <= pane; p++ {
			agg := w.panes[p][k]
			if agg == nil {
				continue
			}
			if first {
				total.min, total.max, total.text = agg.min, agg.max, agg.text
				first = false
			}
			total.count += agg.count
			total.sum += agg.sum
			if agg.min < total.min {
				total.min = agg.min
			}
			if agg.max > total.max {
				total.max = agg.max
			}
		}
		if total.count == 0 {
			continue
		}
		var value float64
		switch w.fn {
		case AggCount:
			value = float64(total.count)
		case AggSum:
			value = total.sum
		case AggAvg:
			value = total.sum / float64(total.count)
		case AggMin:
			value = total.min
		case AggMax:
			value = total.max
		}
		out = append(out, &Tuple{
			Key:  k,
			Time: (pane + 1) * int64(w.slide),
			Text: total.text,
			Num1: value,
			Num2: float64(total.count),
		})
	}
	return out
}
