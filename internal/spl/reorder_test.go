package spl

import (
	"math/rand"
	"testing"
)

func seqOf(out []*Tuple) []uint64 {
	s := make([]uint64, len(out))
	for i, t := range out {
		s[i] = t.Seq
	}
	return s
}

func TestReorderPassThroughInOrder(t *testing.T) {
	r := NewReorder("r", 0, 16)
	out := newCollect()
	for i := uint64(0); i < 10; i++ {
		r.Process(0, &Tuple{Seq: i}, out)
	}
	got := seqOf(out.byPort[0])
	if len(got) != 10 {
		t.Fatalf("released %d", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if r.Pending() != 0 || r.Forced() != 0 || r.Dropped() != 0 {
		t.Fatalf("counters: pending %d forced %d dropped %d", r.Pending(), r.Forced(), r.Dropped())
	}
}

func TestReorderBuffersGap(t *testing.T) {
	r := NewReorder("r", 0, 16)
	out := newCollect()
	r.Process(0, &Tuple{Seq: 2}, out)
	r.Process(0, &Tuple{Seq: 1}, out)
	if len(out.byPort[0]) != 0 {
		t.Fatalf("released before the gap filled: %v", seqOf(out.byPort[0]))
	}
	if r.Pending() != 2 {
		t.Fatalf("pending = %d", r.Pending())
	}
	r.Process(0, &Tuple{Seq: 0}, out)
	got := seqOf(out.byPort[0])
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("release order %v", got)
	}
}

func TestReorderRandomPermutationWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r := NewReorder("r", 0, 64)
		out := newCollect()
		// Shuffle within windows of 32 (< capacity) so order is restored
		// exactly.
		const total = 512
		var stream []uint64
		for base := uint64(0); base < total; base += 32 {
			window := make([]uint64, 32)
			for i := range window {
				window[i] = base + uint64(i)
			}
			rng.Shuffle(len(window), func(i, j int) { window[i], window[j] = window[j], window[i] })
			stream = append(stream, window...)
		}
		for _, s := range stream {
			r.Process(0, &Tuple{Seq: s}, out)
		}
		got := seqOf(out.byPort[0])
		if len(got) != total {
			t.Fatalf("trial %d: released %d of %d", trial, len(got), total)
		}
		for i, s := range got {
			if s != uint64(i) {
				t.Fatalf("trial %d: out of order at %d: %d", trial, i, s)
			}
		}
		if r.Forced() != 0 {
			t.Fatalf("trial %d: forced releases within capacity", trial)
		}
	}
}

func TestReorderBoundedBufferForcesRelease(t *testing.T) {
	r := NewReorder("r", 0, 4)
	out := newCollect()
	// Seq 0 never arrives; 1..6 overflow the 4-slot buffer.
	for s := uint64(1); s <= 6; s++ {
		r.Process(0, &Tuple{Seq: s}, out)
	}
	if r.Forced() == 0 {
		t.Fatal("buffer overflow did not force a release")
	}
	got := seqOf(out.byPort[0])
	if len(got) == 0 {
		t.Fatal("nothing released after overflow")
	}
	// Whatever was released is still internally ordered.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("forced release out of order: %v", got)
		}
	}
	// The abandoned tuple is dropped if it finally arrives.
	before := len(out.byPort[0])
	r.Process(0, &Tuple{Seq: 0}, out)
	if len(out.byPort[0]) != before {
		t.Fatal("late tuple released after its slot was abandoned")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
}

func TestReorderStartOffset(t *testing.T) {
	r := NewReorder("r", 100, 8)
	out := newCollect()
	r.Process(0, &Tuple{Seq: 100}, out)
	r.Process(0, &Tuple{Seq: 99}, out) // behind the cursor: dropped
	if len(out.byPort[0]) != 1 {
		t.Fatalf("released %d", len(out.byPort[0]))
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestKeyedJoinInner(t *testing.T) {
	j := NewKeyedJoin("join")
	out := newCollect()
	// Probe before any build: dropped.
	j.Process(0, &Tuple{Key: 1, Num1: 5}, out)
	if len(out.byPort[0]) != 0 {
		t.Fatal("unmatched probe emitted under inner semantics")
	}
	// Build then probe.
	j.Process(1, &Tuple{Key: 1, Num1: 42}, out)
	j.Process(0, &Tuple{Key: 1, Num1: 5, Text: "probe"}, out)
	got := out.byPort[0]
	if len(got) != 1 {
		t.Fatalf("emitted %d", len(got))
	}
	if got[0].Num1 != 5 || got[0].Num2 != 42 || got[0].Text != "probe" {
		t.Fatalf("joined tuple %+v", got[0])
	}
	// Newer build value wins.
	j.Process(1, &Tuple{Key: 1, Num1: 43}, out)
	j.Process(0, &Tuple{Key: 1, Num1: 6}, out)
	if out.byPort[0][1].Num2 != 43 {
		t.Fatalf("stale build value: %+v", out.byPort[0][1])
	}
	if j.Size() != 1 {
		t.Fatalf("table size %d", j.Size())
	}
}

func TestKeyedJoinLeftOuter(t *testing.T) {
	j := NewKeyedJoin("join")
	j.EmitUnmatched = true
	out := newCollect()
	j.Process(0, &Tuple{Key: 9, Num1: 7}, out)
	if len(out.byPort[0]) != 1 || out.byPort[0][0].Num2 != 0 {
		t.Fatalf("unmatched probe under outer semantics: %+v", out.byPort[0])
	}
}
