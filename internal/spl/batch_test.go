package spl

import (
	"fmt"
	"testing"
)

// recordingEmitter captures emissions as formatted value rows so scalar and
// batch runs compare by content, not tuple identity.
type recordingEmitter struct {
	rows []string
}

func (r *recordingEmitter) Emit(port int, t *Tuple) {
	r.rows = append(r.rows, fmt.Sprintf("p%d|%d|%d|%s|%g|%g", port, t.Seq, t.Key, t.Text, t.Num1, t.Num2))
}

// mkBatch builds n tuples with varied fields, including texts that exercise
// Tokenize's empty/multi-word cases.
func mkBatch(n int) []*Tuple {
	texts := []string{"alpha beta", "", "gamma", "one two three"}
	ts := make([]*Tuple, n)
	for i := range ts {
		ts[i] = &Tuple{
			Seq:  uint64(i + 1),
			Key:  uint64(i % 5),
			Text: texts[i%len(texts)],
			Num1: float64(i) * 1.5,
			Num2: float64(i),
		}
	}
	return ts
}

// checkBatchEquivalence runs the same input through per-tuple Process on
// one operator instance and ProcessBatch on a second, identically
// constructed instance, and requires identical emissions. Fresh instances
// matter: stateful operators (Sample) advance their counters as they run.
func checkBatchEquivalence(t *testing.T, scalarOp Operator, batchOp BatchProcessor, n int) {
	t.Helper()
	in := mkBatch(n)
	var scalar, batch recordingEmitter
	for _, tup := range in {
		cp := *tup
		scalarOp.Process(0, &cp, &scalar)
	}
	batchIn := make([]*Tuple, len(in))
	for i, tup := range in {
		cp := *tup
		batchIn[i] = &cp
	}
	batchOp.ProcessBatch(0, batchIn, &batch)
	if len(scalar.rows) != len(batch.rows) {
		t.Fatalf("scalar emitted %d, batch %d", len(scalar.rows), len(batch.rows))
	}
	for i := range scalar.rows {
		if scalar.rows[i] != batch.rows[i] {
			t.Fatalf("row %d differs:\nscalar: %s\nbatch:  %s", i, scalar.rows[i], batch.rows[i])
		}
	}
}

func TestWorkBatchEquivalence(t *testing.T) {
	cv := NewCostVar(50)
	checkBatchEquivalence(t, NewWork("w", cv), NewWork("w", cv), 33)
}

func TestMapBatchEquivalence(t *testing.T) {
	fn := func(t *Tuple) *Tuple {
		if t.Seq%4 == 0 {
			return nil // exercise the drop branch
		}
		t.Num1 += 2
		return t
	}
	checkBatchEquivalence(t, NewMap("m", fn), NewMap("m", fn), 33)
}

func TestFilterBatchEquivalence(t *testing.T) {
	pred := func(t *Tuple) bool { return t.Seq%3 != 0 }
	checkBatchEquivalence(t, NewFilter("f", pred), NewFilter("f", pred), 33)
}

func TestTokenizeBatchEquivalence(t *testing.T) {
	checkBatchEquivalence(t, NewTokenize("tk"), NewTokenize("tk"), 33)
}

func TestExpandBatchEquivalence(t *testing.T) {
	checkBatchEquivalence(t, NewExpand("x", 3), NewExpand("x", 3), 17)
}

func TestSampleBatchEquivalence(t *testing.T) {
	for _, k := range []int{1, 2, 7} {
		checkBatchEquivalence(t, NewSample("s", k), NewSample("s", k), 40)
	}
}

func TestSampleBatchResumesMidStream(t *testing.T) {
	// The counter must carry across batches exactly as it does across
	// per-tuple calls: two batches of 10 through one instance select the
	// same tuples as 20 scalar calls through another.
	s1, s2 := NewSample("s", 3), NewSample("s", 3)
	in := mkBatch(20)
	var scalar, batch recordingEmitter
	for _, tup := range in {
		s1.Process(0, tup, &scalar)
	}
	s2.ProcessBatch(0, in[:10], &batch)
	s2.ProcessBatch(0, in[10:], &batch)
	if len(scalar.rows) != len(batch.rows) {
		t.Fatalf("scalar emitted %d, batch %d", len(scalar.rows), len(batch.rows))
	}
	for i := range scalar.rows {
		if scalar.rows[i] != batch.rows[i] {
			t.Fatalf("row %d differs:\nscalar: %s\nbatch:  %s", i, scalar.rows[i], batch.rows[i])
		}
	}
}

func TestCountingSinkBatchEquivalence(t *testing.T) {
	scalar, batch := NewCountingSink("a"), NewCountingSink("b")
	in := mkBatch(100)
	for _, tup := range in {
		scalar.Process(0, tup, nil)
	}
	batch.ProcessBatch(0, in[:60], nil)
	batch.ProcessBatch(0, in[60:], nil)
	if scalar.Count() != batch.Count() || batch.Count() != 100 {
		t.Fatalf("scalar counted %d, batch %d, want 100", scalar.Count(), batch.Count())
	}
}
