package spl

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"streamelastic/internal/state"
)

// Generator is a source that emits synthetic tuples with a configurable
// payload size. It is the workhorse source for benchmarks: the paper's
// representative benchmarks vary the tuple payload from 1 B to 16384 B.
type Generator struct {
	// PayloadBytes is the size of each tuple's payload.
	PayloadBytes int
	// MaxTuples bounds how many tuples the generator emits; 0 means
	// unbounded.
	MaxTuples uint64
	// Keys is the number of distinct partition keys to cycle through;
	// 0 or 1 means all tuples share key 0.
	Keys uint64
	// Texts, when non-empty, is a corpus the generator cycles through for
	// the Text attribute (for tokenizer-style pipelines).
	Texts []string
	// Batch is how many tuples one Next call emits (0 or 1 means one).
	// Deeper batches feed the engine's compiled-region batch path: the
	// source loop buffers one Next call's emissions and pushes them through
	// the region program in a single pass.
	Batch int

	name    string
	seq     uint64
	payload []byte
}

var _ Source = (*Generator)(nil)

// NewGenerator returns a generator source named name emitting tuples with
// payloadBytes bytes of payload.
func NewGenerator(name string, payloadBytes int) *Generator {
	return &Generator{PayloadBytes: payloadBytes, name: name}
}

// Name returns the operator name.
func (g *Generator) Name() string { return g.name }

// Process is a no-op: generators have no input ports.
func (g *Generator) Process(int, *Tuple, Emitter) {}

// Next emits one batch of tuples (Batch of them, default one) and reports
// whether more remain.
func (g *Generator) Next(out Emitter) bool {
	if g.MaxTuples != 0 && g.seq >= g.MaxTuples {
		return false
	}
	if g.payload == nil && g.PayloadBytes > 0 {
		g.payload = make([]byte, g.PayloadBytes)
		for i := range g.payload {
			g.payload[i] = byte(i)
		}
	}
	n := g.Batch
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if g.MaxTuples != 0 && g.seq >= g.MaxTuples {
			break
		}
		t := AcquireTuple()
		t.Seq, t.Time = g.seq, int64(g.seq)
		if g.Keys > 1 {
			t.Key = g.seq % g.Keys
		}
		if g.PayloadBytes > 0 {
			// The emitted tuple shares the generator's payload buffer; the
			// runtime clones tuples whenever they cross a scheduler queue,
			// which is exactly where SPL pays its copy cost.
			t.Payload = g.payload
		}
		if len(g.Texts) > 0 {
			t.Text = g.Texts[g.seq%uint64(len(g.Texts))]
		}
		g.seq++
		out.Emit(0, t)
	}
	return true
}

// Reset rewinds the generator's sequence counter.
func (g *Generator) Reset() { g.seq = 0 }

// Work is a synthetic compute operator that performs a configurable number
// of floating-point operations per tuple and forwards the tuple downstream.
// Its cost is read from a shared CostVar so workload phase changes apply to
// running engines.
type Work struct {
	name string
	cost *CostVar
	// sink absorbs the spin result so the compiler cannot eliminate the
	// loop; it is atomic because any scheduler thread may execute the
	// operator concurrently under the dynamic threading model.
	sink atomic.Uint64
}

var _ Operator = (*Work)(nil)

// NewWork returns a compute operator named name whose per-tuple cost is
// read from cost.
func NewWork(name string, cost *CostVar) *Work {
	return &Work{name: name, cost: cost}
}

// Name returns the operator name.
func (w *Work) Name() string { return w.name }

// Cost returns the operator's cost variable.
func (w *Work) Cost() *CostVar { return w.cost }

// Process burns the configured number of FLOPs and forwards the tuple on
// port 0.
func (w *Work) Process(_ int, t *Tuple, out Emitter) {
	w.sink.Store(math.Float64bits(SpinFLOPs(w.cost.FLOPs(), t.Num1)))
	out.Emit(0, t)
}

// SpinFLOPs performs approximately flops floating-point operations seeded
// with x and returns an accumulated value so the compiler cannot eliminate
// the loop.
func SpinFLOPs(flops, x float64) float64 {
	acc := x + 1.0001
	// Each iteration is two FLOPs (one multiply, one add).
	n := int(flops / 2)
	for i := 0; i < n; i++ {
		acc = acc*1.0000001 + 0.3
	}
	return acc
}

// Map applies a user function to each tuple and forwards the result on
// port 0. A nil result drops the tuple.
type Map struct {
	name string
	fn   func(*Tuple) *Tuple
}

var _ Operator = (*Map)(nil)

// NewMap returns a mapping operator.
func NewMap(name string, fn func(*Tuple) *Tuple) *Map {
	return &Map{name: name, fn: fn}
}

// Name returns the operator name.
func (m *Map) Name() string { return m.name }

// Process applies the map function.
func (m *Map) Process(_ int, t *Tuple, out Emitter) {
	if r := m.fn(t); r != nil {
		out.Emit(0, r)
	}
}

// Filter forwards tuples for which the predicate returns true.
type Filter struct {
	name string
	pred func(*Tuple) bool
}

var _ Operator = (*Filter)(nil)

// NewFilter returns a filtering operator.
func NewFilter(name string, pred func(*Tuple) bool) *Filter {
	return &Filter{name: name, pred: pred}
}

// Name returns the operator name.
func (f *Filter) Name() string { return f.name }

// Process forwards t when the predicate accepts it.
func (f *Filter) Process(_ int, t *Tuple, out Emitter) {
	if f.pred(t) {
		out.Emit(0, t)
	}
}

// Tokenize splits the Text attribute on spaces and emits one tuple per
// token, mirroring the word-count example in the paper's Fig. 2.
type Tokenize struct {
	name string
}

var _ Operator = (*Tokenize)(nil)

// NewTokenize returns a tokenizing operator.
func NewTokenize(name string) *Tokenize { return &Tokenize{name: name} }

// Name returns the operator name.
func (tk *Tokenize) Name() string { return tk.name }

// Process emits one tuple per whitespace-separated token of t.Text.
func (tk *Tokenize) Process(_ int, t *Tuple, out Emitter) {
	for _, w := range strings.Fields(t.Text) {
		tok := AcquireTuple()
		tok.Seq, tok.Time, tok.Text, tok.Key = t.Seq, t.Time, w, hashString(w)
		out.Emit(0, tok)
	}
}

func hashString(s string) uint64 {
	// FNV-1a, inlined to avoid per-tuple hasher allocations.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Expand emits Factor tuples per input tuple, each carrying the input's
// attributes with a fan-out index in Num2. It models burst-amplifying
// operators (tokenizers, joins, window flushes) and is the load generator
// for the work-stealing scheduler tests and benchmarks: one dequeued tuple
// turns into a burst the executing worker either keeps on its own deque or
// has stolen from it.
type Expand struct {
	name   string
	factor int
}

var (
	_ Operator   = (*Expand)(nil)
	_ Recyclable = (*Expand)(nil)
)

// NewExpand returns an operator that emits factor output tuples per input.
func NewExpand(name string, factor int) *Expand {
	return &Expand{name: name, factor: factor}
}

// Name returns the operator name.
func (x *Expand) Name() string { return x.name }

// RecyclesTuples marks Expand for input recycling: the burst tuples it emits
// are freshly acquired copies of the input's attributes, so the input — and
// its pooled payload buffer — is dead the moment Process returns. Without
// this the runtime had no release point for it and every expanded tuple's
// input leaked to the garbage collector (the ~90 allocs/op BENCH_4 observed
// in the contended fan-in steady state).
func (x *Expand) RecyclesTuples() {}

// Process emits factor copies of t on port 0.
func (x *Expand) Process(_ int, t *Tuple, out Emitter) {
	for i := 0; i < x.factor; i++ {
		c := AcquireTuple()
		c.Seq, c.Time, c.Key, c.Num1 = t.Seq, t.Time, t.Key, t.Num1
		c.Num2 = float64(i)
		out.Emit(0, c)
	}
}

// RoundRobinSplit distributes input tuples across its output ports in
// round-robin order, implementing the data-parallel split of the paper's
// benchmark graphs (Fig. 8b).
type RoundRobinSplit struct {
	name  string
	width int
	next  int
	mu    sync.Mutex
}

var (
	_ Operator = (*RoundRobinSplit)(nil)
	_ Stateful = (*RoundRobinSplit)(nil)
)

// NewRoundRobinSplit returns a splitter across width output ports.
func NewRoundRobinSplit(name string, width int) *RoundRobinSplit {
	return &RoundRobinSplit{name: name, width: width}
}

// Name returns the operator name.
func (s *RoundRobinSplit) Name() string { return s.name }

// Stateful marks the splitter as serialized: the round-robin cursor is
// shared state.
func (s *RoundRobinSplit) Stateful() {}

// Process forwards t on the next output port in round-robin order.
func (s *RoundRobinSplit) Process(_ int, t *Tuple, out Emitter) {
	s.mu.Lock()
	p := s.next
	s.next = (s.next + 1) % s.width
	s.mu.Unlock()
	out.Emit(p, t)
}

// KeyedCounter maintains per-key counts over a sliding count-based window
// and periodically emits (key, count) tuples. It stands in for the paper's
// windowed Aggregate operator.
//
// The per-key counts live in a state.Map and the window ring in a
// state.Cell, so the operator is checkpointable: incremental snapshots
// carry only keys whose count changed plus the (bounded) ring cursor.
type KeyedCounter struct {
	name      string
	window    int
	emitEvery int

	mu     sync.Mutex
	counts *state.Map[int64]
	cursor *state.Cell[counterCursor]
}

type counterCursor struct {
	ring   []uint64
	pos    int
	filled bool
	seen   int
}

var (
	_ Operator          = (*KeyedCounter)(nil)
	_ Stateful          = (*KeyedCounter)(nil)
	_ Resettable        = (*KeyedCounter)(nil)
	_ state.Snapshotter = (*KeyedCounter)(nil)
)

func encCounterCursor(e *state.Encoder, c counterCursor) {
	e.Uvarint(uint64(len(c.ring)))
	for _, k := range c.ring {
		e.Uvarint(k)
	}
	e.Varint(int64(c.pos))
	e.Bool(c.filled)
	e.Varint(int64(c.seen))
}

func decCounterCursor(d *state.Decoder) counterCursor {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		d.Fail()
		return counterCursor{}
	}
	ring := make([]uint64, n)
	for i := range ring {
		ring[i] = d.Uvarint()
	}
	return counterCursor{ring: ring, pos: int(d.Varint()), filled: d.Bool(), seen: int(d.Varint())}
}

// NewKeyedCounter returns a sliding-window counter over the last window
// tuples that emits current counts every emitEvery tuples.
func NewKeyedCounter(name string, window, emitEvery int) *KeyedCounter {
	return &KeyedCounter{
		name:      name,
		window:    window,
		emitEvery: emitEvery,
		counts:    state.NewMap(0, state.EncInt64, state.DecInt64),
		cursor:    state.NewCell(counterCursor{ring: make([]uint64, window)}, encCounterCursor, decCounterCursor),
	}
}

// Name returns the operator name.
func (k *KeyedCounter) Name() string { return k.name }

// RecyclesTuples marks the counter as safe for tuple recycling: Process
// copies the key into the window ring and never retains or forwards its
// input; emitted aggregates are fresh acquires.
func (k *KeyedCounter) RecyclesTuples() {}

// Stateful marks the counter as serialized.
func (k *KeyedCounter) Stateful() {}

// Reset clears all window state.
func (k *KeyedCounter) Reset() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.counts.Clear()
	k.cursor.Set(counterCursor{ring: make([]uint64, k.window)})
}

// Process slides the window by t and emits the key's current count every
// emitEvery tuples.
func (k *KeyedCounter) Process(_ int, t *Tuple, out Emitter) {
	k.mu.Lock()
	cur := k.cursor.Get()
	if cur.filled {
		old := cur.ring[cur.pos]
		if c, _ := k.counts.Get(old); c-1 <= 0 {
			k.counts.Delete(old)
		} else {
			k.counts.Put(old, c-1)
		}
	}
	cur.ring[cur.pos] = t.Key
	cur.pos++
	if cur.pos == k.window {
		cur.pos, cur.filled = 0, true
	}
	c, _ := k.counts.Get(t.Key)
	count := c + 1
	k.counts.Put(t.Key, count)
	cur.seen++
	emit := k.emitEvery > 0 && cur.seen%k.emitEvery == 0
	k.cursor.Set(cur)
	k.mu.Unlock()
	if emit {
		agg := AcquireTuple()
		agg.Seq, agg.Time, agg.Key, agg.Text, agg.Num1 = t.Seq, t.Time, t.Key, t.Text, float64(count)
		out.Emit(0, agg)
	}
}

// Count returns the current window count for key.
func (k *KeyedCounter) Count(key uint64) int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, _ := k.counts.Get(key)
	return c
}

// StateTrack enables dirty-key tracking for incremental checkpoints.
func (k *KeyedCounter) StateTrack(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.counts.Track(on)
	k.cursor.Track(on)
}

// StateSnapshot encodes the counts and the window ring cursor.
func (k *KeyedCounter) StateSnapshot(enc *state.Encoder, full bool) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := k.counts.Snapshot(enc, full)
	n += k.cursor.Snapshot(enc, full)
	return n
}

// StateRestore applies a snapshot produced by StateSnapshot.
func (k *KeyedCounter) StateRestore(dec *state.Decoder, full bool) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.counts.Restore(dec, full); err != nil {
		return err
	}
	if err := k.cursor.Restore(dec, full); err != nil {
		return err
	}
	// A snapshot from a differently-sized instance must not leave the
	// ring shorter than the window; pad defensively (corrupt-input
	// hardening, not an expected path).
	cur := k.cursor.Get()
	if len(cur.ring) != k.window {
		ring := make([]uint64, k.window)
		copy(ring, cur.ring)
		cur.ring = ring
		if cur.pos >= k.window {
			cur.pos = 0
		}
		k.cursor.Set(cur)
	}
	return nil
}

// sinkShards stripes CountingSink across independent cache-line-padded
// counters (a power of two). Like obs.Histogram, the shard is picked from the
// tuple's sequence number — no per-goroutine state needed — so concurrent
// workers funneling into one sink spread their increments across lines
// instead of serializing on a single mutex.
const sinkShards = 8

// sinkShard is one padded counter stripe.
type sinkShard struct {
	n atomic.Uint64
	_ [56]byte
}

// CountingSink counts received tuples on sharded, cache-line-padded atomic
// stripes merged lazily by Count. This is the post-Fig.-10 design: the
// paper's data-parallel benchmark observes that a sink tracking throughput
// with a lock-protected local variable becomes a contention point as the
// thread count grows, so the shared lock is gone from the hot path. The
// original lock-contention variant survives as LockedCountingSink for
// baseline measurements.
type CountingSink struct {
	name   string
	shards [sinkShards]sinkShard
}

var (
	_ Operator   = (*CountingSink)(nil)
	_ Resettable = (*CountingSink)(nil)
	_ Recyclable = (*CountingSink)(nil)
)

// NewCountingSink returns a terminal counting operator.
func NewCountingSink(name string) *CountingSink {
	return &CountingSink{name: name}
}

// Name returns the operator name.
func (c *CountingSink) Name() string { return c.name }

// RecyclesTuples marks the sink as safe for tuple recycling: Process never
// retains the tuple or its payload.
func (c *CountingSink) RecyclesTuples() {}

// Process counts the tuple and emits nothing. The stripe comes from the
// tuple's sequence bits (xor-folded so striding producers still spread), one
// padded atomic add, no shared lock.
func (c *CountingSink) Process(_ int, t *Tuple, _ Emitter) {
	var v uint64
	if t != nil {
		v = t.Seq ^ t.Key
	}
	c.shards[(v^v>>3)&(sinkShards-1)].n.Add(1)
}

// Count returns the number of tuples received so far, merging the stripes.
// Concurrent Process calls may land between stripe reads; the skew is at
// most a few in-flight tuples, fine for throughput accounting.
func (c *CountingSink) Count() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Reset zeroes the sink's counter. Unlike the meter, sinks are reset only
// while the engine is quiesced (between benchmark phases), so storing zero
// per stripe is safe.
func (c *CountingSink) Reset() {
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}

// LockedCountingSink is the paper's Fig. 10 contention baseline: a counter
// behind one shared mutex that every worker must take per tuple. It exists
// so benchmarks can measure the sharded sink against the lock-protected
// variant; production graphs should use CountingSink.
type LockedCountingSink struct {
	name string

	mu    sync.Mutex
	count uint64
}

var (
	_ Operator   = (*LockedCountingSink)(nil)
	_ Resettable = (*LockedCountingSink)(nil)
	_ Recyclable = (*LockedCountingSink)(nil)
)

// NewLockedCountingSink returns the mutex-serialized counting sink used as
// the Fig. 10 lock-contention baseline.
func NewLockedCountingSink(name string) *LockedCountingSink {
	return &LockedCountingSink{name: name}
}

// Name returns the operator name.
func (c *LockedCountingSink) Name() string { return c.name }

// RecyclesTuples marks the sink as safe for tuple recycling.
func (c *LockedCountingSink) RecyclesTuples() {}

// Process counts the tuple under the shared mutex.
func (c *LockedCountingSink) Process(_ int, _ *Tuple, _ Emitter) {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
}

// Count returns the number of tuples received so far.
func (c *LockedCountingSink) Count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Reset zeroes the sink's counter.
func (c *LockedCountingSink) Reset() {
	c.mu.Lock()
	c.count = 0
	c.mu.Unlock()
}
