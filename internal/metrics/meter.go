// Package metrics provides the runtime measurements the elastic controllers
// consume: a tuple-throughput meter and the sampling cost profiler described
// in the paper (a per-thread state variable snapshotted periodically to
// estimate relative operator cost).
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// MeterShards is the number of independent counter stripes in a Meter. It is
// a power of two so Shard can mask rather than mod. Sixteen stripes cover the
// worker counts the engine sweeps (2–16) without two workers sharing a line.
const MeterShards = 16

// MeterShard is one cache-line-padded counter stripe of a Meter. Hot loops
// that know their identity (a scheduler worker, a source loop) hold a shard
// pointer and increment it without touching the other stripes, so sink
// metering stops being a shared atomic that every worker bounces.
type MeterShard struct {
	n atomic.Uint64
	_ [56]byte // pad to a cache line so adjacent shards never false-share
}

// Add records n events on this shard.
func (s *MeterShard) Add(n uint64) { s.n.Add(n) }

// Meter counts events (tuples arriving at sinks) and converts count deltas
// into rates. It is safe for concurrent use. Writers either call Add (which
// lands on stripe 0) or, on hot paths with a stable worker identity, cache a
// Shard and add there; readers merge the stripes lazily.
//
// The stripes are monotonic — Reset never zeroes them, it advances a baseline
// instead — so a Rate reader can never observe the count moving backwards and
// compute a uint64-wraparound delta, the failure mode of the old single
// counter whose Reset stored zero while a Rate window was open.
type Meter struct {
	shards [MeterShards]MeterShard

	// base is the stripe-sum at the last Reset; Total reports sum-base.
	base atomic.Uint64

	mu       sync.Mutex
	lastAt   time.Time
	lastSeen uint64
}

// NewMeter returns a meter whose rate window starts now.
func NewMeter(now time.Time) *Meter {
	return &Meter{lastAt: now}
}

// Shard returns stripe i (mod MeterShards). The returned pointer is stable
// for the meter's lifetime; hot loops cache it once.
func (m *Meter) Shard(i int) *MeterShard {
	return &m.shards[i&(MeterShards-1)]
}

// Add records n events (on stripe 0). Callers with a stable identity should
// prefer Shard(i).Add to spread contention.
func (m *Meter) Add(n uint64) {
	m.shards[0].n.Add(n)
}

// rawTotal merges the stripes. Each stripe only ever grows, so the sum is
// monotonic with respect to any single writer, though a concurrent reader may
// see a slightly stale merge — fine for metering.
func (m *Meter) rawTotal() uint64 {
	var sum uint64
	for i := range m.shards {
		sum += m.shards[i].n.Load()
	}
	return sum
}

// Total returns the number of events recorded since construction or the last
// Reset.
func (m *Meter) Total() uint64 {
	cur, base := m.rawTotal(), m.base.Load()
	if cur < base {
		// A racing Reset advanced the baseline past our stale stripe merge.
		return 0
	}
	return cur - base
}

// Rate returns the events-per-second rate since the previous Rate call (or
// construction) and advances the window to now. A non-positive elapsed
// interval yields 0. The snapshot is taken under the same lock Reset holds,
// so a mid-window Reset can never make cur lag lastSeen and wrap the delta.
func (m *Meter) Rate(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.rawTotal()
	if cur < m.lastSeen {
		// Stale stripe merge racing fresh adds; clamp rather than wrap.
		cur = m.lastSeen
	}
	elapsed := now.Sub(m.lastAt).Seconds()
	delta := cur - m.lastSeen
	m.lastAt = now
	m.lastSeen = cur
	if elapsed <= 0 {
		return 0
	}
	return float64(delta) / elapsed
}

// Reset zeroes the meter's visible total and restarts the rate window at now.
// The stripes themselves are never rewound — Reset advances the baseline and
// the rate window's lastSeen to the current stripe sum — so concurrent Add,
// Rate, and Total all stay consistent across a reset.
func (m *Meter) Reset(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.rawTotal()
	m.base.Store(cur)
	m.lastSeen = cur
	m.lastAt = now
}
