// Package metrics provides the runtime measurements the elastic controllers
// consume: a tuple-throughput meter and the sampling cost profiler described
// in the paper (a per-thread state variable snapshotted periodically to
// estimate relative operator cost).
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Meter counts events (tuples arriving at sinks) and converts count deltas
// into rates. It is safe for concurrent use; Add is a single atomic
// increment so it can sit on the hot path.
type Meter struct {
	count atomic.Uint64

	mu       sync.Mutex
	lastAt   time.Time
	lastSeen uint64
}

// NewMeter returns a meter whose rate window starts now.
func NewMeter(now time.Time) *Meter {
	return &Meter{lastAt: now}
}

// Add records n events.
func (m *Meter) Add(n uint64) {
	m.count.Add(n)
}

// Total returns the number of events recorded since construction.
func (m *Meter) Total() uint64 {
	return m.count.Load()
}

// Rate returns the events-per-second rate since the previous Rate call (or
// construction) and advances the window to now. A non-positive elapsed
// interval yields 0.
func (m *Meter) Rate(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.count.Load()
	elapsed := now.Sub(m.lastAt).Seconds()
	delta := cur - m.lastSeen
	m.lastAt = now
	m.lastSeen = cur
	if elapsed <= 0 {
		return 0
	}
	return float64(delta) / elapsed
}

// Reset zeroes the meter and restarts the rate window at now.
func (m *Meter) Reset(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count.Store(0)
	m.lastSeen = 0
	m.lastAt = now
}
