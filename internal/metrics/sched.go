package metrics

import "sync/atomic"

// SchedCounters is one party's view of the work-stealing scheduler: every
// engine worker, source loop, and the reconfiguration emitter owns a private
// group, so the hot path increments plain atomics with no sharing. The
// engine sums groups on demand into a SchedSnapshot.
//
// The struct is padded to its own cache line so adjacent workers' counters
// never false-share.
type SchedCounters struct {
	// LocalPushes counts tuples a worker pushed onto its own deque (the
	// emit-affinity fast path).
	LocalPushes atomic.Uint64
	// LocalPops counts tuples a worker popped back off its own deque.
	LocalPops atomic.Uint64
	// Steals counts successful StealHalf calls; StolenTuples counts the
	// tuples they moved.
	Steals       atomic.Uint64
	StolenTuples atomic.Uint64
	// Overflows counts tuples a worker diverted to the shared MPMC queue
	// because its deque was full.
	Overflows atomic.Uint64
	// Injected counts tuples entering through the shared queues from outside
	// the worker pool: sources, imports, and reconfiguration drains.
	Injected atomic.Uint64
	// Parks counts times a worker went to sleep; Wakes counts wake tokens
	// granted to parked workers.
	Parks atomic.Uint64
	Wakes atomic.Uint64
	// FusedBatches counts batches executed through a compiled region
	// program; FusedTuples counts the tuples that entered those batches.
	FusedBatches atomic.Uint64
	FusedTuples  atomic.Uint64

	_ [64]byte
}

// SchedSnapshot is a point-in-time sum of scheduler counters, cumulative
// since engine construction.
type SchedSnapshot struct {
	LocalPushes  uint64 `json:"local_pushes"`
	LocalPops    uint64 `json:"local_pops"`
	Steals       uint64 `json:"steals"`
	StolenTuples uint64 `json:"stolen_tuples"`
	Overflows    uint64 `json:"overflows"`
	Injected     uint64 `json:"injected"`
	Parks        uint64 `json:"parks"`
	Wakes        uint64 `json:"wakes"`
	FusedBatches uint64 `json:"fused_batches"`
	FusedTuples  uint64 `json:"fused_tuples"`
}

// Snapshot reads the counter group. Each load is individually atomic; the
// group as a whole is a racy-but-monotonic view, which is all the status
// surfaces need.
func (c *SchedCounters) Snapshot() SchedSnapshot {
	return SchedSnapshot{
		LocalPushes:  c.LocalPushes.Load(),
		LocalPops:    c.LocalPops.Load(),
		Steals:       c.Steals.Load(),
		StolenTuples: c.StolenTuples.Load(),
		Overflows:    c.Overflows.Load(),
		Injected:     c.Injected.Load(),
		Parks:        c.Parks.Load(),
		Wakes:        c.Wakes.Load(),
		FusedBatches: c.FusedBatches.Load(),
		FusedTuples:  c.FusedTuples.Load(),
	}
}

// Merge adds o into s.
func (s *SchedSnapshot) Merge(o SchedSnapshot) {
	s.LocalPushes += o.LocalPushes
	s.LocalPops += o.LocalPops
	s.Steals += o.Steals
	s.StolenTuples += o.StolenTuples
	s.Overflows += o.Overflows
	s.Injected += o.Injected
	s.Parks += o.Parks
	s.Wakes += o.Wakes
	s.FusedBatches += o.FusedBatches
	s.FusedTuples += o.FusedTuples
}
