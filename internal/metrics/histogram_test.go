package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h.Snapshot())
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(time.Second)
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.999)
	// Log-bucketed: the bound is within 2x of the true value.
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want in [1ms, 2ms]", p50)
	}
	if p99 < time.Second || p99 > 2*time.Second {
		t.Fatalf("p99.9 = %v, want in [1s, 2s]", p99)
	}
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("negative quantile not clamped: %v", q)
	}
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Fatalf("quantile > 1 not clamped: %v", q)
	}
}

func TestHistogramNonPositiveDurations(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	// Both land in the first bucket; the quantile upper bound is tiny.
	if q := h.Quantile(1); q > 2 {
		t.Fatalf("quantile of non-positive samples = %v", q)
	}
}

func TestHistogramQuantileIsUpperBoundProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		maxD := time.Duration(0)
		for _, v := range raw {
			d := time.Duration(v)
			if d > maxD {
				maxD = d
			}
			h.Record(d)
		}
		q := h.Quantile(1)
		// The 100th percentile upper bound must be >= the true maximum and
		// within a factor of 2 of it (log buckets).
		if q < maxD {
			return false
		}
		if maxD > 0 && q > 2*maxD {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramHugeDuration(t *testing.T) {
	var h Histogram
	h.Record(time.Duration(math.MaxInt64))
	if h.Count() != 1 {
		t.Fatal("huge duration not recorded")
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("quantile of huge duration not positive")
	}
}

func TestLatencySnapshotOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
	if s.Mean <= 0 {
		t.Fatalf("mean = %v", s.Mean)
	}
}
