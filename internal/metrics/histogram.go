package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic latency buckets: bucket i covers
// [2^i, 2^(i+1)) nanoseconds, so 64 buckets span any int64 duration.
const histBuckets = 64

// Histogram is a lock-free log-bucketed latency histogram. Record is a
// single atomic increment, cheap enough for per-tuple use on the hot path.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Record adds one latency observation. Non-positive durations land in the
// first bucket.
func (h *Histogram) Record(d time.Duration) {
	n := int64(d)
	idx := 0
	if n > 0 {
		idx = 63 - leadingZeros64(uint64(n))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

func leadingZeros64(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		if n == 64 {
			return 64
		}
		n++
		x <<= 1
	}
	return n
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns a copy of the per-bucket counts; bucket i covers
// [2^i, 2^(i+1)) nanoseconds.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, histBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Mean returns the mean latency, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(c))
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) latency:
// the top of the bucket containing it. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i >= 62 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(int64(1) << (i + 1))
		}
	}
	return time.Duration(math.MaxInt64)
}

// Snapshot summarizes the histogram.
type LatencySnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot returns the current latency summary.
func (h *Histogram) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Reset zeroes the histogram. Concurrent Records may be partially lost,
// which is acceptable for windowed monitoring.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
