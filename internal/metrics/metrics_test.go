package metrics

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestMeterRate(t *testing.T) {
	start := time.Unix(0, 0)
	m := NewMeter(start)
	m.Add(100)
	rate := m.Rate(start.Add(2 * time.Second))
	if rate != 50 {
		t.Fatalf("rate = %v, want 50", rate)
	}
	// Second window: 30 more events over 1s.
	m.Add(30)
	rate = m.Rate(start.Add(3 * time.Second))
	if rate != 30 {
		t.Fatalf("second-window rate = %v, want 30", rate)
	}
	if m.Total() != 130 {
		t.Fatalf("total = %d, want 130", m.Total())
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewMeter(now)
	m.Add(10)
	if rate := m.Rate(now); rate != 0 {
		t.Fatalf("rate over zero window = %v, want 0", rate)
	}
}

func TestMeterReset(t *testing.T) {
	start := time.Unix(0, 0)
	m := NewMeter(start)
	m.Add(5)
	m.Reset(start.Add(time.Second))
	if m.Total() != 0 {
		t.Fatalf("total after reset = %d", m.Total())
	}
	m.Add(7)
	if rate := m.Rate(start.Add(2 * time.Second)); rate != 7 {
		t.Fatalf("rate after reset = %v, want 7", rate)
	}
}

func TestMeterConcurrentAdd(t *testing.T) {
	m := NewMeter(time.Now())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(1)
			}
		}()
	}
	wg.Wait()
	if m.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", m.Total())
	}
}

func TestMeterShardsMerge(t *testing.T) {
	start := time.Unix(0, 0)
	m := NewMeter(start)
	for i := 0; i < 2*MeterShards; i++ {
		m.Shard(i).Add(uint64(i + 1))
	}
	// Shard(i) masks, so i and i+MeterShards land on the same stripe; the
	// merged total is still the plain sum.
	want := uint64(2 * MeterShards * (2*MeterShards + 1) / 2)
	if m.Total() != want {
		t.Fatalf("total = %d, want %d", m.Total(), want)
	}
	if rate := m.Rate(start.Add(time.Second)); rate != float64(want) {
		t.Fatalf("rate = %v, want %v", rate, float64(want))
	}
}

func TestMeterShardStable(t *testing.T) {
	m := NewMeter(time.Unix(0, 0))
	if m.Shard(3) != m.Shard(3+MeterShards) {
		t.Fatal("shard index does not wrap")
	}
	if m.Shard(0) == m.Shard(1) {
		t.Fatal("distinct shard indexes alias")
	}
}

// TestMeterResetMidWindow pins the old bug: Reset used to zero the counter
// while Rate's window still remembered the pre-reset count, so the next
// Rate computed cur-lastSeen on uint64 and wrapped to ~1.8e19. With the
// baseline scheme the post-reset window sees only post-reset events.
func TestMeterResetMidWindow(t *testing.T) {
	start := time.Unix(0, 0)
	m := NewMeter(start)
	m.Add(1000)
	if rate := m.Rate(start.Add(time.Second)); rate != 1000 {
		t.Fatalf("first window rate = %v", rate)
	}
	m.Add(500)
	m.Reset(start.Add(1500 * time.Millisecond))
	m.Add(10)
	rate := m.Rate(start.Add(2 * time.Second))
	if rate < 0 || rate > 1e6 {
		t.Fatalf("post-reset rate wrapped: %v", rate)
	}
	if m.Total() != 10 {
		t.Fatalf("post-reset total = %d, want 10", m.Total())
	}
}

func TestMeterConcurrentResetRate(t *testing.T) {
	m := NewMeter(time.Now())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := m.Shard(i)
			for {
				select {
				case <-stop:
					return
				default:
					sh.Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		now := time.Now()
		if r := m.Rate(now); r < 0 || r > 1e18 {
			close(stop)
			wg.Wait()
			t.Fatalf("rate wrapped under concurrent reset: %v", r)
		}
		if i%10 == 0 {
			m.Reset(now)
		}
		if tot := m.Total(); tot > 1<<62 {
			close(stop)
			wg.Wait()
			t.Fatalf("total wrapped under concurrent reset: %d", tot)
		}
	}
	close(stop)
	wg.Wait()
}

func TestThreadStateTransitions(t *testing.T) {
	var s ThreadState
	s.Leave()
	if s.Current() != -1 {
		t.Fatalf("idle state = %d, want -1", s.Current())
	}
	s.Enter(7)
	if s.Current() != 7 {
		t.Fatalf("state = %d, want 7", s.Current())
	}
	s.Leave()
	if s.Current() != -1 {
		t.Fatalf("state after leave = %d, want -1", s.Current())
	}
}

func TestProfilerSampleCountsBusyOperators(t *testing.T) {
	p := NewProfiler(4)
	a := p.Register()
	b := p.Register()
	c := p.Register()

	a.Enter(0)
	b.Enter(0)
	c.Enter(3)
	p.Sample()
	c.Leave()
	p.Sample()

	m := p.CostMetric()
	// Operator 0 was observed on two threads in sample 1 and two threads in
	// sample 2: the counter counts appearances, so 4 over 2 samples = 2.
	if m[0] != 2.0 {
		t.Fatalf("metric[0] = %v, want 2.0 (full metric %v)", m[0], m)
	}
	if m[3] != 0.5 {
		t.Fatalf("metric[3] = %v, want 0.5", m[3])
	}
	if m[1] != 0 || m[2] != 0 {
		t.Fatalf("idle operators have nonzero metric: %v", m)
	}
	if p.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", p.Samples())
	}
}

func TestProfilerIgnoresOutOfRangeStates(t *testing.T) {
	p := NewProfiler(2)
	s := p.Register()
	s.Enter(99)
	p.Sample()
	m := p.CostMetric()
	if m[0] != 0 || m[1] != 0 {
		t.Fatalf("out-of-range state counted: %v", m)
	}
}

func TestProfilerResetCounts(t *testing.T) {
	p := NewProfiler(1)
	s := p.Register()
	s.Enter(0)
	p.Sample()
	p.ResetCounts()
	if m := p.CostMetric(); m[0] != 0 {
		t.Fatalf("metric after reset = %v", m)
	}
	if p.Samples() != 0 {
		t.Fatalf("samples after reset = %d", p.Samples())
	}
}

func TestProfilerEmptyMetric(t *testing.T) {
	p := NewProfiler(3)
	m := p.CostMetric()
	for i, v := range m {
		if v != 0 {
			t.Fatalf("metric[%d] = %v with no samples", i, v)
		}
	}
}

func TestProfilerBackgroundSampling(t *testing.T) {
	p := NewProfiler(1)
	s := p.Register()
	s.Enter(0)
	ctx := context.Background()
	p.Start(ctx, time.Millisecond)
	p.Start(ctx, time.Millisecond) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for p.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if p.Samples() < 3 {
		t.Fatalf("background profiler took %d samples, want >= 3", p.Samples())
	}
	if m := p.CostMetric(); m[0] == 0 {
		t.Fatal("busy operator has zero cost metric")
	}
}

func TestProfilerStopViaContext(t *testing.T) {
	p := NewProfiler(1)
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx, time.Millisecond)
	cancel()
	// Stop must still return promptly even though the goroutine exited via
	// the context.
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return after context cancellation")
	}
}

func TestProfilerRelease(t *testing.T) {
	p := NewProfiler(2)
	a := p.Register()
	b := p.Register()
	if p.RegisteredThreads() != 2 {
		t.Fatalf("registered = %d", p.RegisteredThreads())
	}
	p.Release(a)
	if p.RegisteredThreads() != 1 {
		t.Fatalf("registered after release = %d", p.RegisteredThreads())
	}
	// Releasing twice (or an unknown state) is harmless.
	p.Release(a)
	if p.RegisteredThreads() != 1 {
		t.Fatal("double release corrupted the registry")
	}
	// The remaining state still samples.
	b.Enter(1)
	p.Sample()
	if m := p.CostMetric(); m[1] != 1 {
		t.Fatalf("metric = %v", m)
	}
}
