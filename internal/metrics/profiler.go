package metrics

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// idleOperator is the state value meaning "not executing any operator".
const idleOperator = -1

// ThreadState is the per-thread state variable the profiler samples. Worker
// threads set it to the index of the operator they are about to execute and
// clear it when they finish, exactly as the paper describes ("a runtime
// level per-thread state variable for each thread in the system, which is
// set to the corresponding operator index when threads enter the processing
// logic of that operator").
type ThreadState struct {
	cur atomic.Int64
}

// Enter records that the thread is executing operator op.
func (s *ThreadState) Enter(op int) {
	s.cur.Store(int64(op))
}

// Leave records that the thread is idle.
func (s *ThreadState) Leave() {
	s.cur.Store(idleOperator)
}

// Current returns the operator index the thread is executing, or -1.
func (s *ThreadState) Current() int {
	return int(s.cur.Load())
}

// Profiler estimates relative operator cost by periodically snapshotting
// every registered thread's state variable and counting how often each
// operator appears. The counter correlates with operator cost × rate and is
// reported as the operator cost metric.
type Profiler struct {
	numOps int

	mu      sync.Mutex
	threads []*ThreadState
	counts  []uint64
	samples uint64

	stop chan struct{}
	done chan struct{}
}

// NewProfiler returns a profiler for a graph of numOps operators.
func NewProfiler(numOps int) *Profiler {
	return &Profiler{
		numOps: numOps,
		counts: make([]uint64, numOps),
	}
}

// Register adds a new thread state variable to the sample set and returns
// it. Threads register once at startup and Release their state when they
// exit, so long-lived engines with thread churn do not accumulate stale
// entries.
func (p *Profiler) Register() *ThreadState {
	s := &ThreadState{}
	s.Leave()
	p.mu.Lock()
	p.threads = append(p.threads, s)
	p.mu.Unlock()
	return s
}

// Release removes a thread state from the sample set.
func (p *Profiler) Release(s *ThreadState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, cur := range p.threads {
		if cur == s {
			last := len(p.threads) - 1
			p.threads[i] = p.threads[last]
			p.threads[last] = nil
			p.threads = p.threads[:last]
			return
		}
	}
}

// RegisteredThreads returns the number of live thread states.
func (p *Profiler) RegisteredThreads() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.threads)
}

// Sample takes one snapshot of all registered threads, incrementing the
// counter of every operator observed running.
func (p *Profiler) Sample() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.threads {
		if op := s.Current(); op >= 0 && op < p.numOps {
			p.counts[op]++
		}
	}
	p.samples++
}

// Start launches the background sampling goroutine with the given period.
// Stop must be called to shut it down. Starting an already-started profiler
// is a no-op.
func (p *Profiler) Start(ctx context.Context, period time.Duration) {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.Sample()
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Stop terminates the sampling goroutine and waits for it to exit.
func (p *Profiler) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// CostMetric returns a copy of the per-operator sample counters normalized
// to per-sample frequencies. With no samples it returns all zeros.
func (p *Profiler) CostMetric() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, p.numOps)
	if p.samples == 0 {
		return out
	}
	for i, c := range p.counts {
		out[i] = float64(c) / float64(p.samples)
	}
	return out
}

// ResetCounts zeroes the per-operator counters so the next window starts
// fresh.
func (p *Profiler) ResetCounts() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.counts {
		p.counts[i] = 0
	}
	p.samples = 0
}

// Samples returns the number of snapshots taken since the last reset.
func (p *Profiler) Samples() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}
