package state

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointCodec throws arbitrary bytes at every decode surface of the
// checkpoint stack — the snapshot codec, Map/Cell restore, and the file
// log's open/load scan. Corrupt or truncated input must surface as an error
// (or be skipped/truncated by the CRC framing), never as a panic or an
// oversized allocation.
func FuzzCheckpointCodec(f *testing.F) {
	var seed Encoder
	seed.Uvarint(3)
	seed.Uvarint(1)
	seed.Byte(1)
	seed.Float64(1.5)
	seed.Uvarint(2)
	seed.Byte(0)
	seed.Uvarint(7)
	seed.Byte(1)
	seed.Float64(-2)
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	// A valid framed log record, so mutations explore the frame parser.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	seedLog := filepath.Join(dir, "seed.ckpt")
	if l, err := OpenFileLog(seedLog); err == nil {
		_ = l.Append(Record{Epoch: 1, Op: 2, Full: true, Watermark: 9, Data: seed.Bytes()})
		_ = l.Commit(1)
		l.Close()
		if raw, err := os.ReadFile(seedLog); err == nil {
			f.Add(raw)
		}
	}
	os.RemoveAll(dir)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Snapshot codec: map and cell restores over raw bytes, both modes.
		m := NewMap(4, EncFloat64, DecFloat64)
		_ = m.Restore(NewDecoder(data), true)
		_ = m.Restore(NewDecoder(data), false)
		c := NewCell(0.0, EncFloat64, DecFloat64)
		_ = c.Restore(NewDecoder(data), true)

		// Primitive reads never run away on garbage.
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			_ = d.Uvarint()
			_ = d.Byte()
			_ = d.Blob()
		}

		// File log: the bytes as an on-disk log. Open must truncate torn
		// tails, skip CRC-failed records, and Load must return only intact
		// committed data.
		p := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		l, err := OpenFileLog(p)
		if err != nil {
			return
		}
		recs, err := l.Load()
		if err == nil {
			for _, r := range recs {
				// Returned records must round-trip the frame contract.
				_ = NewMap(2, EncFloat64, DecFloat64).Restore(NewDecoder(r.Data), r.Full)
			}
		}
		l.Close()
	})
}
