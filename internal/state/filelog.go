package state

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// File log framing. Every record is independently CRC-framed so a torn
// tail (crash mid-append) or bit flip is detected on load and the log is
// truncated back to the last intact record:
//
//	record  = magic(1) kind(1) crc32(4 LE) len(4 LE) body(len)
//	data    = epoch uvarint | op uvarint | flags(1: bit0 full) |
//	          watermark uvarint | snapshot bytes (rest of body)
//	commit  = epoch uvarint
//
// The CRC covers kind+body. Epochs become recoverable only once their
// commit record is present, so Load after a crash mid-epoch falls back to
// the previous committed epoch.
const (
	logMagic       = 0xA7
	recKindData    = 0
	recKindCommit  = 1
	recHeaderBytes = 10
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot drive a huge allocation on load.
	maxRecordBytes = 1 << 30
)

// FileLog is the durable Store: an append-only CRC-framed log per PE.
// Compact rewrites the log in place (write temp + rename) once a full
// snapshot makes older epochs redundant.
type FileLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	scr  []byte // scratch frame buffer reused across appends

	corrupt atomic.Uint64 // CRC-failed records detected (and skipped) by scans
}

// OpenFileLog opens (creating if needed) the log at path. Any torn tail
// from a previous crash is truncated away so new appends stay readable.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &FileLog{path: path, f: f}
	good, _, err := l.scan()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Path returns the log's file path.
func (l *FileLog) Path() string { return l.path }

// scan reads the whole file and returns the byte offset of the end of the
// last framed record plus every intact record (data and commit) in order.
// A record whose frame is parseable but whose CRC fails (bit flip, injected
// corruption) is counted and skipped — the records after it are still
// recovered. Only a malformed tail (torn append: short frame, bad magic)
// stops the scan; bytes past that point are dropped by truncation. That is
// the recovery contract, not an error.
func (l *FileLog) scan() (int64, []logRec, error) {
	raw, err := os.ReadFile(l.path)
	if err != nil {
		return 0, nil, err
	}
	var recs []logRec
	off := 0
	for {
		rec, n, st := parseRecord(raw[off:])
		if st == parseStop {
			break
		}
		if st == parseSkip {
			l.corrupt.Add(1)
		} else {
			recs = append(recs, rec)
		}
		off += n
	}
	return int64(off), recs, nil
}

// CorruptionsDetected returns how many CRC-failed records scans have
// skipped over the log's lifetime in this process.
func (l *FileLog) CorruptionsDetected() uint64 { return l.corrupt.Load() }

type logRec struct {
	kind      byte
	epoch     uint64
	op        uint64
	full      bool
	watermark uint64
	data      []byte
}

// parseStatus classifies one frame-parse attempt.
type parseStatus int

const (
	parseOK   parseStatus = iota // intact record
	parseSkip                    // frame parseable but content corrupt: skip it
	parseStop                    // malformed/short: torn tail, stop scanning
)

// parseRecord decodes one frame from b, returning the record, the byte
// count to advance, and a status. A frame whose header is intact but whose
// CRC or body fails validation returns parseSkip with the frame's size, so
// the scan can step over an isolated corruption and keep the records after
// it.
func parseRecord(b []byte) (logRec, int, parseStatus) {
	if len(b) < recHeaderBytes {
		return logRec{}, 0, parseStop
	}
	if b[0] != logMagic {
		return logRec{}, 0, parseStop
	}
	kind := b[1]
	if kind != recKindData && kind != recKindCommit {
		return logRec{}, 0, parseStop
	}
	crc := binary.LittleEndian.Uint32(b[2:6])
	n := binary.LittleEndian.Uint32(b[6:10])
	if uint64(n) > maxRecordBytes || uint64(len(b)-recHeaderBytes) < uint64(n) {
		return logRec{}, 0, parseStop
	}
	size := recHeaderBytes + int(n)
	body := b[recHeaderBytes:size]
	h := crc32.NewIEEE()
	h.Write([]byte{kind})
	h.Write(body)
	if h.Sum32() != crc {
		return logRec{}, size, parseSkip
	}
	rec := logRec{kind: kind}
	d := NewDecoder(body)
	rec.epoch = d.Uvarint()
	if kind == recKindData {
		rec.op = d.Uvarint()
		flags := d.Byte()
		rec.full = flags&1 != 0
		rec.watermark = d.Uvarint()
		if d.Err() != nil {
			return logRec{}, size, parseSkip
		}
		rec.data = append([]byte(nil), body[len(body)-d.Remaining():]...)
	} else if d.Err() != nil {
		return logRec{}, size, parseSkip
	}
	return rec, size, parseOK
}

// frame encodes one record into l.scr.
func (l *FileLog) frame(kind byte, body []byte) []byte {
	need := recHeaderBytes + len(body)
	if cap(l.scr) < need {
		l.scr = make([]byte, need)
	}
	buf := l.scr[:need]
	buf[0] = logMagic
	buf[1] = kind
	h := crc32.NewIEEE()
	h.Write([]byte{kind})
	h.Write(body)
	binary.LittleEndian.PutUint32(buf[2:6], h.Sum32())
	binary.LittleEndian.PutUint32(buf[6:10], uint32(len(body)))
	copy(buf[recHeaderBytes:], body)
	return buf
}

func dataBody(rec Record) []byte {
	var e Encoder
	e.Uvarint(rec.Epoch)
	e.Uvarint(uint64(rec.Op))
	flags := byte(0)
	if rec.Full {
		flags |= 1
	}
	e.Byte(flags)
	e.Uvarint(rec.Watermark)
	e.buf = append(e.buf, rec.Data...)
	return e.buf
}

// Append stages one data record.
func (l *FileLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(l.frame(recKindData, dataBody(rec)))
	return err
}

// AppendTorn writes a deliberately half-written record (fault injection:
// CkptCrash). The torn bytes are exactly what a crash mid-append leaves
// behind; OpenFileLog and Load must truncate them away.
func (l *FileLog) AppendTorn(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	frame := l.frame(recKindData, dataBody(rec))
	cut := len(frame)/2 + 1
	if _, err := l.f.Write(frame[:cut]); err != nil {
		return err
	}
	// Re-truncate immediately so subsequent appends in this process stay
	// readable — a real crash would never append again; the injector's
	// job is only to exercise the load-side truncation path, which the
	// fuzz target and open-time scan cover against the raw torn bytes.
	pos, err := l.f.Seek(0, 1)
	if err != nil {
		return err
	}
	if err := l.f.Truncate(pos - int64(cut)); err != nil {
		return err
	}
	_, err = l.f.Seek(pos-int64(cut), 0)
	return err
}

// AppendCorrupt writes a fully framed record and then flips one payload
// byte in place (fault injection: CkptCorrupt), leaving a frame whose CRC
// check must fail. Scans detect it, count it, and skip over it without
// losing the records around it.
func (l *FileLog) AppendCorrupt(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	frame := l.frame(recKindData, dataBody(rec))
	pos, err := l.f.Seek(0, 1)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	// Flip the last body byte: the frame header stays parseable, the CRC
	// no longer matches.
	off := pos + int64(len(frame)) - 1
	if _, err := l.f.WriteAt([]byte{frame[len(frame)-1] ^ 0xFF}, off); err != nil {
		return err
	}
	return nil
}

// Commit appends epoch's commit record, making the epoch's staged data
// records recoverable by Load.
func (l *FileLog) Commit(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var e Encoder
	e.Uvarint(epoch)
	if _, err := l.f.Write(l.frame(recKindCommit, e.Bytes())); err != nil {
		return err
	}
	return nil
}

// Load returns records of committed epochs in append order.
func (l *FileLog) Load() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, recs, err := l.scan()
	if err != nil {
		return nil, err
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.kind == recKindCommit {
			committed[r.epoch] = true
		}
	}
	var out []Record
	for _, r := range recs {
		if r.kind == recKindData && committed[r.epoch] {
			out = append(out, Record{
				Epoch: r.epoch, Op: int32(r.op), Full: r.full,
				Watermark: r.watermark, Data: r.data,
			})
		}
	}
	return out, nil
}

// Compact rewrites the log keeping only committed records with
// Epoch >= keepEpoch, via temp file + rename.
func (l *FileLog) Compact(keepEpoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, recs, err := l.scan()
	if err != nil {
		return err
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.kind == recKindCommit {
			committed[r.epoch] = true
		}
	}
	tmp := l.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	written := make(map[uint64]bool)
	for _, r := range recs {
		if r.epoch < keepEpoch || !committed[r.epoch] {
			continue
		}
		if r.kind == recKindData {
			body := dataBody(Record{
				Epoch: r.epoch, Op: int32(r.op), Full: r.full,
				Watermark: r.watermark, Data: r.data,
			})
			if _, err := nf.Write(l.frame(recKindData, body)); err != nil {
				nf.Close()
				os.Remove(tmp)
				return err
			}
			continue
		}
		if written[r.epoch] {
			continue
		}
		written[r.epoch] = true
		var e Encoder
		e.Uvarint(r.epoch)
		if _, err := nf.Write(l.frame(recKindCommit, e.Bytes())); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, l.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	l.f.Close()
	l.f = nf
	return nil
}

// Close closes the underlying file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

var _ Store = (*FileLog)(nil)
var _ Store = (*MemStore)(nil)
var _ TornAppender = (*FileLog)(nil)
var _ Corrupter = (*FileLog)(nil)

// String implements fmt.Stringer for debugging.
func (l *FileLog) String() string { return fmt.Sprintf("filelog(%s)", l.path) }
