package state

// Snapshotter is implemented by operators that expose checkpointable keyed
// state. The checkpoint coordinator calls these under the engine's pause
// barrier, so implementations see no concurrent Process calls; they still
// take their own mutex so direct (non-engine) callers stay safe.
type Snapshotter interface {
	// StateTrack enables or disables dirty-key tracking. Tracking is off
	// by default so the non-checkpointing hot path pays nothing; the
	// coordinator switches it on when checkpointing is enabled.
	StateTrack(on bool)
	// StateSnapshot encodes the operator's state into enc. When full is
	// set it writes the complete state, otherwise only entries dirtied
	// since the previous snapshot. It returns the number of entries
	// written and clears the dirty set.
	StateSnapshot(enc *Encoder, full bool) int
	// StateRestore applies a snapshot produced by StateSnapshot with the
	// same full flag. A full restore replaces all state; an incremental
	// one merges (tombstones delete). Corrupt input returns an error and
	// never panics.
	StateRestore(dec *Decoder, full bool) error
}

// ReplayFilter marks a Snapshotter whose live state IS the exactly-once
// output filter (e.g. spl.Reorder's release cursor). During quarantine
// recovery such operators are deliberately NOT restored: keeping their
// live cursor is what deduplicates the replayed tuple range. They are
// still checkpointed and restored on a cold job restart.
type ReplayFilter interface {
	FiltersReplay()
}

// DefaultRanges is the number of power-of-two key ranges a Map partitions
// its keys into when the caller does not choose.
const DefaultRanges = 8

// mix is a 64-bit finalizer (splitmix64 style) spreading keys across
// ranges independently of their low bits.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// u64set is an open-addressed hash set of keys, used for the per-range
// dirty sets. A tracked Put already computed mix(k) to pick the range, so
// add reuses that hash (high bits — the low bits are shared by every key
// in a range) and costs one probe chain instead of a second full Go-map
// insert, which is what keeps checkpoint tracking cheap on the hot path.
// Key 0 is held out-of-band so 0 can mean "empty slot". The zero value is
// ready to use; slots allocate lazily on the first add.
type u64set struct {
	slots []uint64
	n     int
	zero  bool
}

func (s *u64set) add(k, h uint64) {
	if k == 0 {
		if !s.zero {
			s.zero = true
			s.n++
		}
		return
	}
	if len(s.slots) == 0 {
		s.slots = make([]uint64, 16)
	} else if 2*(s.n+1) > len(s.slots) {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	i := (h >> 32) & mask
	for {
		switch s.slots[i] {
		case 0:
			s.slots[i] = k
			s.n++
			return
		case k:
			return
		}
		i = (i + 1) & mask
	}
}

func (s *u64set) grow() {
	old := s.slots
	s.slots = make([]uint64, 2*len(old))
	mask := uint64(len(s.slots) - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := (mix(k) >> 32) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = k
	}
}

func (s *u64set) len() int { return s.n }

func (s *u64set) clear() {
	if s.n == 0 {
		return
	}
	clear(s.slots)
	s.n = 0
	s.zero = false
}

// each calls fn for every key in the set. Order is unspecified but
// deterministic for a given insertion history.
func (s *u64set) each(fn func(k uint64)) {
	if s.zero {
		fn(0)
	}
	for _, k := range s.slots {
		if k != 0 {
			fn(k)
		}
	}
}

type mapRange[V any] struct {
	data  map[uint64]V
	dirty u64set
}

// Map is a per-key state map partitioned into power-of-two key ranges.
// The partitioning gives checkpoints and future key migration a stable
// range-addressable unit (Elasticutor's "move keys, not operators"), and
// the per-range dirty sets make incremental snapshots cheap: a snapshot
// only walks keys written since the last one.
//
// Map is not internally synchronized; the owning operator's mutex (the
// Stateful contract) covers it.
type Map[V any] struct {
	ranges []mapRange[V]
	mask   uint64
	track  bool
	encV   func(*Encoder, V)
	decV   func(*Decoder) V
}

// NewMap returns a Map partitioned into `ranges` key ranges (rounded up to
// a power of two; <= 0 means DefaultRanges). encV/decV encode one value.
func NewMap[V any](ranges int, encV func(*Encoder, V), decV func(*Decoder) V) *Map[V] {
	if ranges <= 0 {
		ranges = DefaultRanges
	}
	n := 1
	for n < ranges {
		n <<= 1
	}
	m := &Map[V]{ranges: make([]mapRange[V], n), mask: uint64(n - 1), encV: encV, decV: decV}
	for i := range m.ranges {
		m.ranges[i].data = make(map[uint64]V)
	}
	return m
}

func (m *Map[V]) rangeOf(k uint64) *mapRange[V] { return &m.ranges[mix(k)&m.mask] }

// Get returns the value for k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	v, ok := m.rangeOf(k).data[k]
	return v, ok
}

// Put stores v under k, marking the key dirty when tracking is on.
func (m *Map[V]) Put(k uint64, v V) {
	h := mix(k)
	r := &m.ranges[h&m.mask]
	r.data[k] = v
	if m.track {
		r.dirty.add(k, h)
	}
}

// Delete removes k. When tracking is on the deletion is remembered so the
// next incremental snapshot emits a tombstone.
func (m *Map[V]) Delete(k uint64) {
	h := mix(k)
	r := &m.ranges[h&m.mask]
	delete(r.data, k)
	if m.track {
		r.dirty.add(k, h)
	}
}

// Len returns the total number of keys.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.ranges {
		n += len(m.ranges[i].data)
	}
	return n
}

// DirtyLen returns the number of keys recorded as dirty.
func (m *Map[V]) DirtyLen() int {
	n := 0
	for i := range m.ranges {
		n += m.ranges[i].dirty.len()
	}
	return n
}

// RangeCount returns the number of key ranges.
func (m *Map[V]) RangeCount() int { return len(m.ranges) }

// RangeLens returns the key count per range (migration planning input).
func (m *Map[V]) RangeLens() []int {
	out := make([]int, len(m.ranges))
	for i := range m.ranges {
		out[i] = len(m.ranges[i].data)
	}
	return out
}

// Range calls fn for every key until fn returns false. Iteration order is
// unspecified.
func (m *Map[V]) Range(fn func(k uint64, v V) bool) {
	for i := range m.ranges {
		for k, v := range m.ranges[i].data {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Clear drops all keys. When tracking is on, every dropped key is
// remembered as a tombstone so the next incremental snapshot reflects the
// clearing (Reset-while-checkpointing stays correct).
func (m *Map[V]) Clear() {
	for i := range m.ranges {
		r := &m.ranges[i]
		if m.track {
			for k := range r.data {
				r.dirty.add(k, mix(k))
			}
		}
		clear(r.data)
	}
}

// wipe drops all keys and dirty marks without recording tombstones; used
// by full restores, whose result matches the durable state by definition.
func (m *Map[V]) wipe() {
	for i := range m.ranges {
		clear(m.ranges[i].data)
		m.ranges[i].dirty.clear()
	}
}

// Track switches dirty-key tracking on or off. Turning it on starts with
// an empty dirty set: the caller is expected to take a full snapshot
// first.
func (m *Map[V]) Track(on bool) {
	m.track = on
	if !on {
		for i := range m.ranges {
			m.ranges[i].dirty.clear()
		}
	}
}

// Snapshot encodes either the full map or only dirty keys into enc and
// clears the dirty set. Each entry is key + presence byte + value;
// presence 0 is a tombstone (incremental only). Returns entries written.
func (m *Map[V]) Snapshot(enc *Encoder, full bool) int {
	n := 0
	if full {
		enc.Uvarint(uint64(m.Len()))
		for i := range m.ranges {
			for k, v := range m.ranges[i].data {
				enc.Uvarint(k)
				enc.Byte(1)
				m.encV(enc, v)
				n++
			}
			m.ranges[i].dirty.clear()
		}
		return n
	}
	enc.Uvarint(uint64(m.DirtyLen()))
	for i := range m.ranges {
		r := &m.ranges[i]
		r.dirty.each(func(k uint64) {
			enc.Uvarint(k)
			if v, ok := r.data[k]; ok {
				enc.Byte(1)
				m.encV(enc, v)
			} else {
				enc.Byte(0)
			}
			n++
		})
		r.dirty.clear()
	}
	return n
}

// Restore applies a snapshot. A full restore clears the map first; an
// incremental one merges entries and applies tombstones. Restored entries
// are not marked dirty (they match the durable state by construction).
func (m *Map[V]) Restore(dec *Decoder, full bool) error {
	if full {
		m.wipe()
	}
	count := dec.Uvarint()
	for i := uint64(0); i < count && dec.Err() == nil; i++ {
		k := dec.Uvarint()
		present := dec.Byte()
		if dec.Err() != nil {
			break
		}
		if present != 0 {
			v := m.decV(dec)
			if dec.Err() != nil {
				break
			}
			m.rangeOf(k).data[k] = v
		} else {
			delete(m.rangeOf(k).data, k)
		}
	}
	return dec.Err()
}

// Cell is a single non-keyed state value (a cursor, a watermark, a small
// ring) with the same track/snapshot/restore protocol as Map.
type Cell[V any] struct {
	v     V
	dirty bool
	track bool
	encV  func(*Encoder, V)
	decV  func(*Decoder) V
}

// NewCell returns a cell holding initial.
func NewCell[V any](initial V, encV func(*Encoder, V), decV func(*Decoder) V) *Cell[V] {
	return &Cell[V]{v: initial, encV: encV, decV: decV}
}

// Get returns the current value.
func (c *Cell[V]) Get() V { return c.v }

// Set stores v, marking the cell dirty when tracking is on.
func (c *Cell[V]) Set(v V) {
	c.v = v
	if c.track {
		c.dirty = true
	}
}

// Track switches dirty tracking on or off.
func (c *Cell[V]) Track(on bool) {
	c.track = on
	if !on {
		c.dirty = false
	}
}

// Snapshot writes the value (always on full, only when dirty otherwise)
// and clears the dirty mark. Returns entries written (0 or 1).
func (c *Cell[V]) Snapshot(enc *Encoder, full bool) int {
	if full || c.dirty {
		enc.Byte(1)
		c.encV(enc, c.v)
		c.dirty = false
		return 1
	}
	enc.Byte(0)
	return 0
}

// Restore reads a cell snapshot: flag 0 leaves the value unchanged.
func (c *Cell[V]) Restore(dec *Decoder, _ bool) error {
	if dec.Byte() != 0 {
		v := c.decV(dec)
		if dec.Err() == nil {
			c.v = v
			c.dirty = false
		}
	}
	return dec.Err()
}

// Common value codecs.

// Float64Codec encodes a float64 value.
func EncFloat64(e *Encoder, v float64) { e.Float64(v) }

// DecFloat64 decodes a float64 value.
func DecFloat64(d *Decoder) float64 { return d.Float64() }

// EncInt64 encodes an int64 value.
func EncInt64(e *Encoder, v int64) { e.Varint(v) }

// DecInt64 decodes an int64 value.
func DecInt64(d *Decoder) int64 { return d.Varint() }

// EncUint64 encodes a uint64 value.
func EncUint64(e *Encoder, v uint64) { e.Uvarint(v) }

// DecUint64 decodes a uint64 value.
func DecUint64(d *Decoder) uint64 { return d.Uvarint() }
