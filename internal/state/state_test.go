package state

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.Uvarint(0)
	e.Uvarint(1 << 60)
	e.Varint(-12345)
	e.Float64(3.25)
	e.Bool(true)
	e.Byte(0xAB)
	e.String("hello")
	e.Blob([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint 0 = %d", v)
	}
	if v := d.Uvarint(); v != 1<<60 {
		t.Fatalf("uvarint big = %d", v)
	}
	if v := d.Varint(); v != -12345 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.Float64(); v != 3.25 {
		t.Fatalf("float = %v", v)
	}
	if !d.Bool() {
		t.Fatal("bool")
	}
	if v := d.Byte(); v != 0xAB {
		t.Fatalf("byte = %x", v)
	}
	if v := d.String(); v != "hello" {
		t.Fatalf("string = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("blob = %v", v)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderTruncationNeverPanics(t *testing.T) {
	var e Encoder
	e.String("payload")
	e.Float64(1)
	full := append([]byte(nil), e.Bytes()...)
	for cut := 0; cut <= len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.String()
		_ = d.Float64()
		_ = d.Uvarint()
		if cut < len(full) && d.Err() == nil {
			t.Fatalf("cut %d: expected sticky error", cut)
		}
	}
}

func TestMapSnapshotFullAndIncremental(t *testing.T) {
	m := NewMap(4, EncFloat64, DecFloat64)
	for k := uint64(0); k < 100; k++ {
		m.Put(k, float64(k))
	}
	m.Track(true)

	var e Encoder
	if n := m.Snapshot(&e, true); n != 100 {
		t.Fatalf("full snapshot entries = %d", n)
	}
	restored := NewMap(4, EncFloat64, DecFloat64)
	if err := restored.Restore(NewDecoder(e.Bytes()), true); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 100 {
		t.Fatalf("restored %d keys", restored.Len())
	}

	// Mutate a handful of keys; the incremental must carry exactly those.
	m.Put(5, 500)
	m.Delete(7)
	m.Put(200, 1)
	if m.DirtyLen() != 3 {
		t.Fatalf("dirty = %d, want 3", m.DirtyLen())
	}
	e.Reset()
	if n := m.Snapshot(&e, false); n != 3 {
		t.Fatalf("incremental entries = %d", n)
	}
	if m.DirtyLen() != 0 {
		t.Fatal("snapshot did not clear the dirty set")
	}
	if err := restored.Restore(NewDecoder(e.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if v, _ := restored.Get(5); v != 500 {
		t.Fatalf("key 5 = %v", v)
	}
	if _, ok := restored.Get(7); ok {
		t.Fatal("tombstone for key 7 not applied")
	}
	if v, _ := restored.Get(200); v != 1 {
		t.Fatalf("key 200 = %v", v)
	}
	if restored.Len() != 100 {
		t.Fatalf("after merge len = %d, want 100", restored.Len())
	}
}

func TestMapClearMarksTombstones(t *testing.T) {
	m := NewMap(2, EncFloat64, DecFloat64)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Track(true)
	var e Encoder
	m.Snapshot(&e, true) // baseline full; dirty now empty

	m.Clear()
	if m.DirtyLen() != 2 {
		t.Fatalf("Clear marked %d tombstones, want 2", m.DirtyLen())
	}
	e.Reset()
	m.Snapshot(&e, false)
	peer := NewMap(2, EncFloat64, DecFloat64)
	peer.Put(1, 1)
	peer.Put(2, 2)
	if err := peer.Restore(NewDecoder(e.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if peer.Len() != 0 {
		t.Fatalf("peer retains %d keys after tombstone merge", peer.Len())
	}
}

func TestMapRestoreCorruptInput(t *testing.T) {
	m := NewMap(2, EncFloat64, DecFloat64)
	// A giant count with no entries behind it must error, not allocate.
	var e Encoder
	e.Uvarint(1 << 40)
	if err := m.Restore(NewDecoder(e.Bytes()), true); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

func TestCellSnapshotRestore(t *testing.T) {
	c := NewCell(int64(7), EncInt64, DecInt64)
	c.Track(true)
	var e Encoder
	if n := c.Snapshot(&e, false); n != 0 {
		t.Fatalf("clean cell wrote %d entries", n)
	}
	c.Set(42)
	e.Reset()
	if n := c.Snapshot(&e, false); n != 1 {
		t.Fatalf("dirty cell wrote %d entries", n)
	}
	peer := NewCell(int64(0), EncInt64, DecInt64)
	if err := peer.Restore(NewDecoder(e.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if peer.Get() != 42 {
		t.Fatalf("restored cell = %d", peer.Get())
	}
}

func TestMemStoreCommitGate(t *testing.T) {
	s := NewMemStore()
	_ = s.Append(Record{Epoch: 1, Op: 0, Full: true, Data: []byte("a")})
	recs, _ := s.Load()
	if len(recs) != 0 {
		t.Fatal("uncommitted epoch visible")
	}
	_ = s.Commit(1)
	recs, _ = s.Load()
	if len(recs) != 1 || string(recs[0].Data) != "a" {
		t.Fatalf("committed load = %+v", recs)
	}
	_ = s.Append(Record{Epoch: 2, Op: 0, Full: true, Data: []byte("b")})
	_ = s.Commit(2)
	_ = s.Compact(2)
	recs, _ = s.Load()
	if len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("after compact: %+v", recs)
	}
}

func openTempLog(t *testing.T) (*FileLog, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.ckpt")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestFileLogRoundTrip(t *testing.T) {
	l, path := openTempLog(t)
	rec1 := Record{Epoch: 1, Op: 3, Full: true, Watermark: 10, Data: []byte("full-snap")}
	rec2 := Record{Epoch: 2, Op: 3, Full: false, Watermark: 20, Data: []byte("delta")}
	if err := l.Append(rec1); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec2); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 has no commit: invisible, also after reopen.
	recs, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 1 || recs[0].Watermark != 10 || !bytes.Equal(recs[0].Data, []byte("full-snap")) {
		t.Fatalf("load = %+v", recs)
	}
	l.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err = l2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("reopened load = %+v", recs)
	}
}

func TestFileLogTornTailTruncated(t *testing.T) {
	l, path := openTempLog(t)
	_ = l.Append(Record{Epoch: 1, Op: 0, Full: true, Watermark: 5, Data: []byte("good")})
	_ = l.Commit(1)
	l.Close()
	// Simulate a crash mid-append: raw garbage half-frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{logMagic, recKindData, 0x12, 0x34})
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "good" {
		t.Fatalf("after torn tail: %+v", recs)
	}
	// Appends after the truncation stay readable.
	_ = l2.Append(Record{Epoch: 2, Op: 0, Full: true, Data: []byte("after")})
	_ = l2.Commit(2)
	recs, _ = l2.Load()
	if len(recs) != 2 {
		t.Fatalf("append after truncation lost: %+v", recs)
	}
}

func TestFileLogAppendTorn(t *testing.T) {
	l, _ := openTempLog(t)
	defer l.Close()
	_ = l.Append(Record{Epoch: 1, Op: 0, Full: true, Data: []byte("keep")})
	_ = l.Commit(1)
	if err := l.AppendTorn(Record{Epoch: 2, Op: 0, Full: false, Data: []byte("torn-away")}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "keep" {
		t.Fatalf("torn record leaked: %+v", recs)
	}
}

func TestFileLogCorruptRecordSkipped(t *testing.T) {
	l, _ := openTempLog(t)
	defer l.Close()
	_ = l.Append(Record{Epoch: 1, Op: 0, Full: true, Data: []byte("first")})
	if err := l.AppendCorrupt(Record{Epoch: 1, Op: 1, Full: true, Data: []byte("bitflip")}); err != nil {
		t.Fatal(err)
	}
	_ = l.Append(Record{Epoch: 1, Op: 2, Full: true, Data: []byte("third")})
	_ = l.Commit(1)
	recs, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt middle record is skipped; its neighbors survive.
	if len(recs) != 2 || string(recs[0].Data) != "first" || string(recs[1].Data) != "third" {
		t.Fatalf("corrupt-skip load = %+v", recs)
	}
	if l.CorruptionsDetected() == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestFileLogCompact(t *testing.T) {
	l, path := openTempLog(t)
	for e := uint64(1); e <= 3; e++ {
		_ = l.Append(Record{Epoch: e, Op: 0, Full: e == 3, Data: []byte{byte(e)}})
		_ = l.Commit(e)
	}
	before, _ := os.Stat(path)
	if err := l.Compact(3); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	recs, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 3 {
		t.Fatalf("after compact: %+v", recs)
	}
	// The log stays appendable after the rename swap.
	_ = l.Append(Record{Epoch: 4, Op: 0, Full: false, Data: []byte("post")})
	_ = l.Commit(4)
	recs, _ = l.Load()
	if len(recs) != 2 {
		t.Fatalf("append after compact: %+v", recs)
	}
	l.Close()
}

// TestFileLogRandomTruncation drops random byte counts off a multi-record
// log and verifies every load is clean: committed prefixes survive, nothing
// panics, nothing torn is returned.
func TestFileLogRandomTruncation(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trunc.ckpt")
	l, err := OpenFileLog(base)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for e := uint64(1); e <= 5; e++ {
		for op := int32(0); op < 3; op++ {
			_ = l.Append(Record{Epoch: e, Op: op, Full: op == 0, Watermark: e * 100, Data: payload})
		}
		_ = l.Commit(e)
	}
	l.Close()
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cut := rng.Intn(len(raw) + 1)
		p := filepath.Join(t.TempDir(), "t.ckpt")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := OpenFileLog(p)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		recs, err := tl.Load()
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		for _, r := range recs {
			if len(r.Data) != len(payload) {
				t.Fatalf("cut %d: torn data returned (%d bytes)", cut, len(r.Data))
			}
		}
		tl.Close()
	}
}
