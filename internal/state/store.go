package state

import "sync"

// Record is one operator snapshot inside a checkpoint epoch. Op is the
// engine-local node id; Watermark is the input-transport emit watermark
// the epoch was stamped with (0 when unknown); Full distinguishes full
// snapshots from incremental deltas.
type Record struct {
	Epoch     uint64
	Op        int32
	Full      bool
	Watermark uint64
	Data      []byte
}

// Store persists checkpoint records. An epoch only becomes recoverable
// once Commit(epoch) succeeds: Load never returns records of uncommitted
// epochs, which is how a crash mid-checkpoint (CkptCrash) degrades to
// "recover from the previous epoch" instead of a torn restore.
type Store interface {
	// Append stages one record of the current epoch.
	Append(rec Record) error
	// Commit marks epoch durable.
	Commit(epoch uint64) error
	// Load returns all records of committed epochs in append order.
	Load() ([]Record, error)
	// Compact drops records with Epoch < keepEpoch (called after a full
	// snapshot makes older deltas redundant).
	Compact(keepEpoch uint64) error
	Close() error
}

// TornAppender is optionally implemented by stores that can emulate a
// crash mid-append (a half-written record) for fault injection.
type TornAppender interface {
	AppendTorn(rec Record) error
}

// Corrupter is optionally implemented by stores that can emulate
// storage-level corruption (a bit flip inside a committed frame) for fault
// injection; loads must detect the damage via CRC and skip the record.
type Corrupter interface {
	AppendCorrupt(rec Record) error
}

// MemStore is the in-memory Store used by tests and the simulator.
type MemStore struct {
	mu        sync.Mutex
	recs      []Record
	committed map[uint64]bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{committed: make(map[uint64]bool)}
}

// Append stages a record; the data is copied so callers may reuse buffers.
func (s *MemStore) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Data = append([]byte(nil), rec.Data...)
	s.recs = append(s.recs, rec)
	return nil
}

// Commit marks epoch recoverable.
func (s *MemStore) Commit(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.committed[epoch] = true
	return nil
}

// Load returns committed records in append order.
func (s *MemStore) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		if s.committed[r.Epoch] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Compact drops records (and commit marks) below keepEpoch.
func (s *MemStore) Compact(keepEpoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.recs[:0]
	for _, r := range s.recs {
		if r.Epoch >= keepEpoch {
			kept = append(kept, r)
		}
	}
	s.recs = kept
	for e := range s.committed {
		if e < keepEpoch {
			delete(s.committed, e)
		}
	}
	return nil
}

// Close releases nothing; it exists to satisfy Store.
func (s *MemStore) Close() error { return nil }
