// Package state provides the keyed operator-state substrate: per-key
// state cells partitioned into power-of-two key ranges with dirty-key
// tracking (so checkpoints can be incremental), a compact snapshot codec,
// and append-only checkpoint stores (in-memory and CRC-framed file log).
//
// The package is deliberately free of dependencies on the rest of the
// runtime: operators encode their own tuple fields through Encoder /
// Decoder, and the exec checkpoint coordinator moves opaque []byte
// snapshots into a Store.
package state

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortBuffer is reported by Decoder when a read runs past the end of
// the snapshot payload (torn or truncated record).
var ErrShortBuffer = errors.New("state: snapshot truncated")

// Encoder accumulates a snapshot payload. The zero value is ready to use;
// Reset lets one encoder be reused across operators without reallocating.
type Encoder struct {
	buf []byte
}

// Reset truncates the encoder, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Bytes returns the encoded payload. The slice aliases the encoder's
// internal buffer and is invalidated by the next Reset or append.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Float64 appends a float64 as 8 fixed bytes (IEEE 754 bits, little endian).
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads a snapshot payload produced by Encoder. All reads are
// bounds-checked: a read past the end sets a sticky error and returns zero
// values, so restore paths never panic on corrupt or truncated input.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder reads views into b and
// never mutates it.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrShortBuffer
	}
	d.off = len(d.buf)
}

// Fail marks the decoder corrupt. Value codecs call it when a decoded
// count or length is inconsistent with the remaining payload, so corrupt
// snapshots can never drive oversized allocations.
func (d *Decoder) Fail() { d.fail() }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Float64 reads an 8-byte float64.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice. The returned slice aliases the
// decoder's input; copy it if it must outlive the snapshot buffer.
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
