package queue

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestNewSPSCRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{-2, 0, 1, 6} {
		if _, err := NewSPSC[int](c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
}

func TestSPSCFIFO(t *testing.T) {
	q, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	if q.Len() != 4 || q.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d, want 4/4", q.Len(), q.Cap())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestSPSCConcurrentStream(t *testing.T) {
	const total = 20000
	q, _ := NewSPSC[int](64)
	done := make(chan error, 1)
	go func() {
		for want := 0; want < total; {
			v, ok := q.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != want {
				done <- &orderError{got: v, want: want}
				return
			}
			want++
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		for !q.TryPush(i) {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type orderError struct{ got, want int }

func (e *orderError) Error() string {
	return "spsc out of order"
}

func TestSPSCPropertyFIFO(t *testing.T) {
	f := func(vals []int8) bool {
		q, _ := NewSPSC[int8](8)
		var model []int8
		for _, v := range vals {
			if q.TryPush(v) {
				model = append(model, v)
			} else if len(model) < 8 {
				return false
			}
		}
		for _, want := range model {
			got, ok := q.TryPop()
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
