package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// WSDeque is the bounded work-stealing deque the engine places under each
// scheduler worker. The owner pushes and pops at the bottom (LIFO, so the
// worker runs its own most recent emission next — depth-first execution that
// keeps the tuple it just produced cache-hot and bounds deque growth to the
// pipeline depth), while thieves remove half the deque from the top, taking
// the oldest work first.
//
// The implementation is a finely-locked ring: a single word-sized spinlock
// serializes every mutation. A classic lock-free Chase-Lev deque reads the
// stolen cell before its CAS on top publishes the claim, which is a data
// race on the cell under the Go memory model once the owner wraps the ring —
// correct on real hardware but permanently red under the race detector this
// repo gates on. The lock sidesteps that while costing one uncontended
// CAS+store pair per operation: thieves only arrive when their own deque ran
// dry, so in the steady state the lock has exactly one customer — the owner —
// and batch operations (PopBottomN, StealHalf) amortize it further.
//
// Ownership protocol: values pushed here are owned exclusively by the deque,
// exactly as with the MPMC scheduler queues; PopBottomN and StealHalf
// transfer that exclusive ownership to the caller. Cells are zeroed on
// removal so the ring never pins pooled tuples.
//
// The cursors are atomics written only while holding the lock, so Len,
// Empty, and Full may read them locklessly; see Full for why the owner may
// trust its racy answer.
type WSDeque[T any] struct {
	lock atomic.Uint32
	top  atomic.Uint64 // oldest element; thieves advance it
	bot  atomic.Uint64 // next push slot; only the owner moves it
	mask uint64
	buf  []T
}

// NewWSDeque returns a deque with the given capacity, which must be a power
// of two and at least 2.
func NewWSDeque[T any](capacity int) (*WSDeque[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("wsdeque capacity %d is not a power of two >= 2", capacity)
	}
	return &WSDeque[T]{
		mask: uint64(capacity - 1),
		buf:  make([]T, capacity),
	}, nil
}

// acquire spins for the deque lock. Critical sections are a handful of
// loads and stores, so the lock is almost always free on the first CAS; the
// Gosched backoff only matters when the holder was preempted mid-section.
func (d *WSDeque[T]) acquire() {
	spins := 0
	for !d.lock.CompareAndSwap(0, 1) {
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

func (d *WSDeque[T]) release() {
	d.lock.Store(0)
}

// PushBottom appends v at the owner end, reporting false when the deque is
// full. Only the deque's owner may call it.
func (d *WSDeque[T]) PushBottom(v T) bool {
	d.acquire()
	b, t := d.bot.Load(), d.top.Load()
	if b-t > d.mask {
		d.release()
		return false
	}
	d.buf[b&d.mask] = v
	d.bot.Store(b + 1)
	d.release()
	return true
}

// PopBottom removes and returns the most recently pushed value, reporting
// false when the deque is empty. Only the owner may call it.
func (d *WSDeque[T]) PopBottom() (T, bool) {
	var zero T
	d.acquire()
	b, t := d.bot.Load(), d.top.Load()
	if b == t {
		d.release()
		return zero, false
	}
	b--
	v := d.buf[b&d.mask]
	d.buf[b&d.mask] = zero
	d.bot.Store(b)
	d.release()
	return v, true
}

// PopBottomN removes up to len(out) values from the owner end, newest
// first, and returns how many were removed. Only the owner may call it.
// Batching amortizes the lock acquisition across a whole drain.
func (d *WSDeque[T]) PopBottomN(out []T) int {
	var zero T
	if len(out) == 0 {
		return 0
	}
	d.acquire()
	b, t := d.bot.Load(), d.top.Load()
	n := b - t
	if n == 0 {
		d.release()
		return 0
	}
	if n > uint64(len(out)) {
		n = uint64(len(out))
	}
	for i := uint64(0); i < n; i++ {
		b--
		out[i] = d.buf[b&d.mask]
		d.buf[b&d.mask] = zero
	}
	d.bot.Store(b)
	d.release()
	return int(n)
}

// StealHalf removes ceil(size/2) values from the top (the oldest work),
// capped at len(out), copies them into out in oldest-first order, and
// returns how many were stolen. Any goroutine may call it. Taking half per
// steal, rather than one item, balances load in O(log n) steals and keeps
// thieves off the lock.
func (d *WSDeque[T]) StealHalf(out []T) int {
	var zero T
	if len(out) == 0 {
		return 0
	}
	d.acquire()
	b, t := d.bot.Load(), d.top.Load()
	size := b - t
	if size == 0 {
		d.release()
		return 0
	}
	n := (size + 1) / 2
	if n > uint64(len(out)) {
		n = uint64(len(out))
	}
	for i := uint64(0); i < n; i++ {
		out[i] = d.buf[(t+i)&d.mask]
		d.buf[(t+i)&d.mask] = zero
	}
	d.top.Store(t + n)
	d.release()
	return int(n)
}

// Len returns an instantaneous estimate of the number of queued values.
func (d *WSDeque[T]) Len() int {
	t := d.top.Load()
	b := d.bot.Load()
	if b < t {
		return 0
	}
	n := int(b - t)
	if n > len(d.buf) {
		n = len(d.buf)
	}
	return n
}

// Cap returns the deque capacity.
func (d *WSDeque[T]) Cap() int { return len(d.buf) }

// Empty reports whether the deque looks empty right now.
func (d *WSDeque[T]) Empty() bool { return d.Len() == 0 }

// Full reports whether the deque looks full. For the owner the answer is
// conservative without the lock: bot only moves under the owner's own hand
// and top only advances (thieves shrink the deque), so a stale read can
// claim full when space just appeared — never the reverse. The engine uses
// this to take the overflow path without locking first.
func (d *WSDeque[T]) Full() bool {
	return d.bot.Load()-d.top.Load() > d.mask
}
