package queue

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

func TestTryPushNPopNSingleThreaded(t *testing.T) {
	q, _ := NewMPMC[int](8)
	if got := q.TryPushN(nil); got != 0 {
		t.Fatalf("TryPushN(nil) = %d", got)
	}
	if got := q.TryPopN(nil); got != 0 {
		t.Fatalf("TryPopN(nil) = %d", got)
	}

	vals := []int{0, 1, 2, 3, 4}
	if got := q.TryPushN(vals); got != 5 {
		t.Fatalf("TryPushN pushed %d, want 5", got)
	}
	// Only 3 cells remain: an oversized batch pushes a prefix.
	if got := q.TryPushN([]int{5, 6, 7, 8, 9}); got != 3 {
		t.Fatalf("TryPushN on nearly full queue pushed %d, want 3", got)
	}
	if got := q.TryPushN([]int{99}); got != 0 {
		t.Fatalf("TryPushN on full queue pushed %d, want 0", got)
	}

	out := make([]int, 3)
	if got := q.TryPopN(out); got != 3 {
		t.Fatalf("TryPopN popped %d, want 3", got)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	// Oversized pop drains what is there.
	big := make([]int, 16)
	if got := q.TryPopN(big); got != 5 {
		t.Fatalf("TryPopN popped %d, want 5", got)
	}
	for i, v := range big[:5] {
		if v != i+3 {
			t.Fatalf("big[%d] = %d, want %d", i, v, i+3)
		}
	}
	if got := q.TryPopN(big); got != 0 {
		t.Fatalf("TryPopN on empty queue popped %d, want 0", got)
	}
}

func TestTryPushNPopNWrapAround(t *testing.T) {
	q, _ := NewMPMC[int](8)
	buf := make([]int, 5)
	next := 0
	for round := 0; round < 200; round++ {
		vals := []int{next, next + 1, next + 2, next + 3, next + 4}
		if got := q.TryPushN(vals); got != 5 {
			t.Fatalf("round %d: pushed %d", round, got)
		}
		if got := q.TryPopN(buf); got != 5 {
			t.Fatalf("round %d: popped %d", round, got)
		}
		for i, v := range buf {
			if v != next+i {
				t.Fatalf("round %d: buf[%d] = %d, want %d", round, i, v, next+i)
			}
		}
		next += 5
	}
}

func TestTryReservePushCommit(t *testing.T) {
	q, _ := NewMPMC[int](4)
	s, ok := q.TryReservePush()
	if !ok {
		t.Fatal("reserve failed on empty queue")
	}
	// The reserved-but-uncommitted cell ends the queue for consumers.
	if _, ok := q.TryPop(); ok {
		t.Fatal("popped an uncommitted reservation")
	}
	s.Commit(42)
	v, ok := q.TryPop()
	if !ok || v != 42 {
		t.Fatalf("pop after commit = (%d, %v), want (42, true)", v, ok)
	}

	// Reservations respect capacity.
	for i := 0; i < 4; i++ {
		s, ok := q.TryReservePush()
		if !ok {
			t.Fatalf("reserve %d failed", i)
		}
		s.Commit(i)
	}
	if _, ok := q.TryReservePush(); ok {
		t.Fatal("reserve succeeded on full queue")
	}
}

// TestMPMCBatchNoLossNoDuplication stresses TryPushN/TryPopN (mixed with
// single ops) across several producers and consumers: every value must come
// out exactly once. Run with -race to check the publication protocol.
func TestMPMCBatchNoLossNoDuplication(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	q, _ := NewMPMC[int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			next := p * perProd
			end := next + perProd
			for next < end {
				// Alternate batch sizes, including single-value batches.
				n := 1 + (next % 7)
				if next+n > end {
					n = end - next
				}
				batch := make([]int, n)
				for i := range batch {
					batch[i] = next + i
				}
				pushed := 0
				for pushed < n {
					k := q.TryPushN(batch[pushed:])
					if k == 0 {
						runtime.Gosched()
						continue
					}
					pushed += k
				}
				next += n
			}
		}(p)
	}
	var mu sync.Mutex
	got := make([]int, 0, producers*perProd)
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			local := make([]int, 0, perProd)
			buf := make([]int, 1+c*3) // varied batch sizes per consumer
			for {
				if k := q.TryPopN(buf); k > 0 {
					local = append(local, buf[:k]...)
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					for {
						k := q.TryPopN(buf)
						if k == 0 {
							mu.Lock()
							got = append(got, local...)
							mu.Unlock()
							return
						}
						local = append(local, buf[:k]...)
					}
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if len(got) != producers*perProd {
		t.Fatalf("drained %d values, want %d", len(got), producers*perProd)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("value %d missing or duplicated (saw %d at position %d)", i, v, i)
		}
	}
}

// TestMPMCBatchPerProducerOrder verifies a producer's batches stay in order
// with a batch-popping consumer.
func TestMPMCBatchPerProducerOrder(t *testing.T) {
	const perProd = 3000
	q, _ := NewMPMC[[2]int](32)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := 0
			for i < perProd {
				n := 1 + i%5
				if i+n > perProd {
					n = perProd - i
				}
				batch := make([][2]int, n)
				for j := range batch {
					batch[j] = [2]int{p, i + j}
				}
				pushed := 0
				for pushed < n {
					k := q.TryPushN(batch[pushed:])
					if k == 0 {
						runtime.Gosched()
						continue
					}
					pushed += k
				}
				i += n
			}
		}(p)
	}
	lastSeen := map[int]int{0: -1, 1: -1}
	popped := 0
	buf := make([][2]int, 8)
	for popped < 2*perProd {
		k := q.TryPopN(buf)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range buf[:k] {
			if v[1] <= lastSeen[v[0]] {
				t.Fatalf("producer %d value %d arrived after %d", v[0], v[1], lastSeen[v[0]])
			}
			lastSeen[v[0]] = v[1]
		}
		popped += k
	}
	wg.Wait()
}

// BenchmarkMPMCBatch32 measures a 32-tuple batch push + pop cycle; divide
// ns/op by 32 to compare with the single-op benchmarks above.
func BenchmarkMPMCBatch32(b *testing.B) {
	q, _ := NewMPMC[int](1024)
	in := make([]int, 32)
	out := make([]int, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.TryPushN(in)
		q.TryPopN(out)
	}
}

// FuzzMPMCBatchOps drives an arbitrary single-threaded sequence of
// batch/single pushes and pops against a model FIFO, exercising boundary
// batch sizes (0, 1, capacity, oversized) and wrap-around.
func FuzzMPMCBatchOps(f *testing.F) {
	f.Add([]byte{0x05, 0x83, 0x02, 0x81, 0x10, 0x90})
	f.Add([]byte{0x01, 0x81, 0x01, 0x81})
	f.Add([]byte{0x0f, 0x8f, 0x10, 0x90, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 16
		q, _ := NewMPMC[int](capacity)
		var model []int
		next := 0
		for _, op := range ops {
			n := int(op & 0x7f) // batch size 0..127, crossing capacity
			if op&0x80 == 0 {
				// Push a batch of n sequential values.
				vals := make([]int, n)
				for i := range vals {
					vals[i] = next + i
				}
				k := q.TryPushN(vals)
				wantK := capacity - len(model)
				if wantK > n {
					wantK = n
				}
				if k != wantK {
					t.Fatalf("TryPushN(%d) with %d queued = %d, want %d", n, len(model), k, wantK)
				}
				model = append(model, vals[:k]...)
				next += k
			} else {
				out := make([]int, n)
				k := q.TryPopN(out)
				wantK := len(model)
				if wantK > n {
					wantK = n
				}
				if k != wantK {
					t.Fatalf("TryPopN(%d) with %d queued = %d, want %d", n, len(model), k, wantK)
				}
				for i := 0; i < k; i++ {
					if out[i] != model[i] {
						t.Fatalf("popped %d at %d, want %d", out[i], i, model[i])
					}
				}
				model = model[k:]
			}
			if q.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", q.Len(), len(model))
			}
		}
	})
}
