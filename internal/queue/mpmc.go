// Package queue provides the bounded queues the runtime places in front of
// operators under the dynamic threading model. The MPMC ring follows the
// low-synchronization design direction of the Streams scheduler (Schneider &
// Wu, PLDI '17): producers and consumers coordinate through per-cell
// sequence numbers and CAS on the head/tail cursors, never through a lock.
package queue

import (
	"fmt"
	"sync/atomic"
)

// MPMC is a bounded multi-producer multi-consumer FIFO queue. The zero
// value is not usable; construct with NewMPMC.
//
// The implementation is the classic Vyukov bounded queue: each cell carries
// a sequence number that encodes whether it is ready for a producer or a
// consumer, so both sides only contend on their own cursor.
type MPMC[T any] struct {
	mask  uint64
	cells []cell[T]
	_     [64]byte // keep enqueue and dequeue cursors on separate cache lines
	enq   atomic.Uint64
	_     [64]byte
	deq   atomic.Uint64
}

type cell[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMPMC returns a queue with the given capacity, which must be a power of
// two and at least 2.
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("mpmc capacity %d is not a power of two >= 2", capacity)
	}
	q := &MPMC[T]{
		mask:  uint64(capacity - 1),
		cells: make([]cell[T], capacity),
	}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q, nil
}

// TryPush attempts to enqueue v, reporting false when the queue is full.
func (q *MPMC[T]) TryPush(v T) bool {
	s, ok := q.TryReservePush()
	if !ok {
		return false
	}
	s.Commit(v)
	return true
}

// PushSlot is a reserved enqueue cell returned by TryReservePush. The holder
// must call Commit exactly once, promptly: until the slot is committed,
// consumers treat the queue as ending just before it, and an abandoned slot
// wedges the queue permanently.
type PushSlot[T any] struct {
	c   *cell[T]
	pos uint64
}

// Commit publishes v into the reserved cell, making it visible to
// consumers.
func (s PushSlot[T]) Commit(v T) {
	s.c.val = v
	s.c.seq.Store(s.pos + 1)
}

// TryReservePush reserves the next enqueue cell with a CAS on the enqueue
// cursor, reporting false when the queue is full. Separating reservation
// from Commit lets producers construct the value only once the enqueue is
// known to succeed — the engine uses this to clone a tuple only when the
// push will go through.
func (q *MPMC[T]) TryReservePush() (PushSlot[T], bool) {
	pos := q.enq.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				return PushSlot[T]{c: c, pos: pos}, true
			}
			pos = q.enq.Load()
		case seq < pos:
			// The cell still holds an unconsumed value: queue full.
			return PushSlot[T]{}, false
		default:
			pos = q.enq.Load()
		}
	}
}

// TryPushN enqueues a prefix of vals, reserving a run of cells with a single
// CAS on the enqueue cursor, and returns how many values were enqueued
// (0 when the queue is full). Values keep their slice order; cells are
// published in order, so consumers may observe a partially published batch
// as a momentarily shorter queue, never as a gap.
func (q *MPMC[T]) TryPushN(vals []T) int {
	want := uint64(len(vals))
	if want == 0 {
		return 0
	}
	pos := q.enq.Load()
	for {
		// Count the run of producer-ready cells starting at pos.
		n := uint64(0)
		for n < want {
			seq := q.cells[(pos+n)&q.mask].seq.Load()
			if seq != pos+n {
				if n == 0 && seq < pos {
					return 0 // queue full
				}
				break
			}
			n++
		}
		if n == 0 {
			// Stale cursor: another producer advanced it; retry.
			pos = q.enq.Load()
			continue
		}
		if q.enq.CompareAndSwap(pos, pos+n) {
			for i := uint64(0); i < n; i++ {
				c := &q.cells[(pos+i)&q.mask]
				c.val = vals[i]
				c.seq.Store(pos + i + 1)
			}
			return int(n)
		}
		pos = q.enq.Load()
	}
}

// TryPopN dequeues up to len(out) values into out, reserving a run of
// published cells with a single CAS on the dequeue cursor, and returns how
// many values were dequeued (0 when the queue is empty).
func (q *MPMC[T]) TryPopN(out []T) int {
	var zero T
	want := uint64(len(out))
	if want == 0 {
		return 0
	}
	pos := q.deq.Load()
	for {
		// Count the run of published cells starting at pos.
		n := uint64(0)
		for n < want {
			seq := q.cells[(pos+n)&q.mask].seq.Load()
			if seq != pos+n+1 {
				if n == 0 && seq <= pos {
					return 0 // queue empty
				}
				break
			}
			n++
		}
		if n == 0 {
			// Stale cursor: another consumer advanced it; retry.
			pos = q.deq.Load()
			continue
		}
		if q.deq.CompareAndSwap(pos, pos+n) {
			for i := uint64(0); i < n; i++ {
				c := &q.cells[(pos+i)&q.mask]
				out[i] = c.val
				c.val = zero
				c.seq.Store(pos + i + q.mask + 1)
			}
			return int(n)
		}
		pos = q.deq.Load()
	}
}

// TryPop attempts to dequeue a value, reporting false when the queue is
// empty.
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.deq.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			if q.deq.CompareAndSwap(pos, pos+1) {
				v := c.val
				c.val = zero
				c.seq.Store(pos + q.mask + 1)
				return v, true
			}
			pos = q.deq.Load()
		case seq <= pos:
			// The cell has not been produced yet: queue empty.
			return zero, false
		default:
			pos = q.deq.Load()
		}
	}
}

// Len returns an instantaneous estimate of the number of queued values.
func (q *MPMC[T]) Len() int {
	d := q.deq.Load()
	e := q.enq.Load()
	if e < d {
		return 0
	}
	n := int(e - d)
	if n > len(q.cells) {
		return len(q.cells)
	}
	return n
}

// Cap returns the queue capacity.
func (q *MPMC[T]) Cap() int { return len(q.cells) }

// Drain pops all currently queued values and passes them to fn. It returns
// the number drained. Concurrent pushes may leave values behind; callers
// that need a complete drain must first stop all producers.
func (q *MPMC[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := q.TryPop()
		if !ok {
			return n
		}
		fn(v)
		n++
	}
}
