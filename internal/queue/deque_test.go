package queue

import (
	"sync"
	"testing"
)

func TestWSDequeCapacityValidation(t *testing.T) {
	for _, c := range []int{-1, 0, 1, 3, 6, 100} {
		if _, err := NewWSDeque[int](c); err == nil {
			t.Fatalf("capacity %d accepted", c)
		}
	}
	for _, c := range []int{2, 4, 256, 1 << 16} {
		d, err := NewWSDeque[int](c)
		if err != nil {
			t.Fatalf("capacity %d rejected: %v", c, err)
		}
		if d.Cap() != c {
			t.Fatalf("Cap() = %d, want %d", d.Cap(), c)
		}
	}
}

func TestWSDequeOwnerLIFO(t *testing.T) {
	d, err := NewWSDeque[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	for i := 0; i < 8; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.PushBottom(99) {
		t.Fatal("push into full deque succeeded")
	}
	if !d.Full() || d.Len() != 8 {
		t.Fatalf("full deque reports Full=%v Len=%d", d.Full(), d.Len())
	}
	for i := 7; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d (LIFO)", v, ok, i)
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty after popping everything")
	}
}

func TestWSDequePopBottomNNewestFirst(t *testing.T) {
	d, _ := NewWSDeque[int](16)
	for i := 0; i < 5; i++ {
		d.PushBottom(i)
	}
	out := make([]int, 3)
	if k := d.PopBottomN(out); k != 3 {
		t.Fatalf("PopBottomN = %d, want 3", k)
	}
	for i, want := range []int{4, 3, 2} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if k := d.PopBottomN(out); k != 2 {
		t.Fatalf("PopBottomN on remainder = %d, want 2", k)
	}
	if k := d.PopBottomN(out); k != 0 {
		t.Fatalf("PopBottomN on empty = %d, want 0", k)
	}
	if k := d.PopBottomN(nil); k != 0 {
		t.Fatalf("PopBottomN(nil) = %d, want 0", k)
	}
}

// TestWSDequeStealHalf pins down the steal-half contract: ceil(size/2)
// values, oldest first, capped by the output buffer.
func TestWSDequeStealHalf(t *testing.T) {
	out := make([]int, 16)
	for _, tc := range []struct {
		size, outCap, want int
	}{
		{0, 16, 0},
		{1, 16, 1}, // a lone item is stealable: ceil(1/2) = 1
		{2, 16, 1},
		{5, 16, 3},
		{8, 16, 4},
		{8, 2, 2}, // capped by the buffer
		{8, 0, 0},
	} {
		d, _ := NewWSDeque[int](16)
		for i := 0; i < tc.size; i++ {
			d.PushBottom(i)
		}
		k := d.StealHalf(out[:tc.outCap])
		if k != tc.want {
			t.Fatalf("size=%d outCap=%d: stole %d, want %d", tc.size, tc.outCap, k, tc.want)
		}
		for i := 0; i < k; i++ {
			if out[i] != i {
				t.Fatalf("size=%d: out[%d] = %d, want %d (oldest first)", tc.size, i, out[i], i)
			}
		}
		if d.Len() != tc.size-k {
			t.Fatalf("size=%d: Len after steal = %d, want %d", tc.size, d.Len(), tc.size-k)
		}
	}
}

// TestWSDequeWrapAround pushes and pops across the ring boundary many times
// so cursor arithmetic past the first lap is exercised.
func TestWSDequeWrapAround(t *testing.T) {
	d, _ := NewWSDeque[int](4)
	next, expect := 0, 0
	out := make([]int, 4)
	for round := 0; round < 100; round++ {
		for d.PushBottom(next) {
			next++
		}
		// Steal the old half, pop the new half: together they must account
		// for every pushed value exactly once.
		k := d.StealHalf(out)
		for i := 0; i < k; i++ {
			if out[i] != expect {
				t.Fatalf("round %d: stole %d, want %d", round, out[i], expect)
			}
			expect++
		}
		for {
			if _, ok := d.PopBottom(); !ok {
				break
			}
		}
		expect = next // popped the rest in LIFO order; resync
	}
}

// TestWSDequeConservationUnderConcurrentSteals is the no-loss/no-dup
// property test: one owner pushes N unique values (popping some itself)
// while several thieves steal halves concurrently. Every value must be seen
// exactly once across all parties.
func TestWSDequeConservationUnderConcurrentSteals(t *testing.T) {
	const (
		total    = 200000
		thieves  = 4
		capacity = 256
	)
	d, err := NewWSDeque[uint64](capacity)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[uint64]int, total)
	record := func(vals []uint64) {
		mu.Lock()
		for _, v := range vals {
			seen[v]++
		}
		mu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, capacity)
			local := make([]uint64, 0, 4096)
			for {
				k := d.StealHalf(buf)
				local = append(local, buf[:k]...)
				if len(local) > 2048 {
					record(local)
					local = local[:0]
				}
				if k == 0 {
					select {
					case <-done:
						// One final sweep: the owner may have pushed between
						// our last steal and its close of done.
						k := d.StealHalf(buf)
						local = append(local, buf[:k]...)
						record(local)
						return
					default:
					}
				}
			}
		}()
	}

	ownerSeen := make([]uint64, 0, total)
	for v := uint64(0); v < total; {
		if d.PushBottom(v) {
			v++
		} else if got, ok := d.PopBottom(); ok {
			ownerSeen = append(ownerSeen, got)
		}
		// Every few pushes the owner takes work back itself, interleaving
		// owner pops with the concurrent steals.
		if v%7 == 0 {
			if got, ok := d.PopBottom(); ok {
				ownerSeen = append(ownerSeen, got)
			}
		}
	}
	for {
		got, ok := d.PopBottom()
		if !ok {
			break
		}
		ownerSeen = append(ownerSeen, got)
	}
	close(done)
	wg.Wait()
	record(ownerSeen)

	if len(seen) != total {
		t.Fatalf("saw %d distinct values, want %d (lost %d)", len(seen), total, total-len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times, want exactly once", v, n)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("deque not empty at the end: %d left", d.Len())
	}
}

// TestWSDequeOpsAllocFree guards the owner push/pop and steal paths with
// the same zero-alloc bar as the engine's hot-path guards.
func TestWSDequeOpsAllocFree(t *testing.T) {
	d, _ := NewWSDeque[uint64](256)
	out := make([]uint64, 64)
	if avg := testing.AllocsPerRun(5000, func() {
		for i := uint64(0); i < 16; i++ {
			d.PushBottom(i)
		}
		d.StealHalf(out)
		for {
			if _, ok := d.PopBottom(); !ok {
				break
			}
		}
	}); avg > 0.01 {
		t.Fatalf("deque push/steal/pop cycle allocates %.3f allocs/op, want 0", avg)
	}
}

// FuzzDeque model-checks arbitrary operation sequences against a reference
// slice deque: every push, owner pop, batched pop, and steal must agree
// with the model on both values and counts.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 0, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 16
		d, err := NewWSDeque[uint64](capacity)
		if err != nil {
			t.Fatal(err)
		}
		var model []uint64 // model[0] is the top (oldest), model[len-1] the bottom
		next := uint64(1)
		buf := make([]uint64, capacity)
		for _, op := range ops {
			switch op % 4 {
			case 0: // owner push
				ok := d.PushBottom(next)
				wantOK := len(model) < capacity
				if ok != wantOK {
					t.Fatalf("push ok=%v, model wants %v (size %d)", ok, wantOK, len(model))
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // owner pop
				v, ok := d.PopBottom()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("pop ok=%v, model wants %v", ok, wantOK)
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						t.Fatalf("pop = %d, model wants %d", v, want)
					}
				}
			case 2: // owner batched pop
				n := int(op/4)%capacity + 1
				k := d.PopBottomN(buf[:n])
				want := len(model)
				if want > n {
					want = n
				}
				if k != want {
					t.Fatalf("PopBottomN(%d) = %d, model wants %d", n, k, want)
				}
				for i := 0; i < k; i++ {
					if buf[i] != model[len(model)-1-i] {
						t.Fatalf("PopBottomN[%d] = %d, model wants %d", i, buf[i], model[len(model)-1-i])
					}
				}
				model = model[:len(model)-k]
			case 3: // steal
				n := int(op/4)%capacity + 1
				k := d.StealHalf(buf[:n])
				want := (len(model) + 1) / 2
				if want > n {
					want = n
				}
				if k != want {
					t.Fatalf("StealHalf(%d) = %d, model wants %d (size %d)", n, k, want, len(model))
				}
				for i := 0; i < k; i++ {
					if buf[i] != model[i] {
						t.Fatalf("StealHalf[%d] = %d, model wants %d", i, buf[i], model[i])
					}
				}
				model = model[k:]
			}
			if d.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", d.Len(), len(model))
			}
		}
	})
}

func BenchmarkWSDequePushPop(b *testing.B) {
	d, _ := NewWSDeque[uint64](256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(uint64(i))
		d.PopBottom()
	}
}

func BenchmarkWSDequeStealHalf(b *testing.B) {
	d, _ := NewWSDeque[uint64](256)
	out := make([]uint64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := uint64(0); j < 32; j++ {
			d.PushBottom(j)
		}
		for d.StealHalf(out) > 0 {
		}
	}
}
