package queue

import (
	"fmt"
	"sync/atomic"
)

// SPSC is a bounded single-producer single-consumer FIFO ring. It is wait
// free on both sides and used for dedicated threaded ports, where exactly
// one upstream thread feeds exactly one downstream thread (the paper's
// hand-optimized manual threading configuration).
type SPSC[T any] struct {
	mask  uint64
	cells []T
	_     [64]byte
	head  atomic.Uint64 // next slot to pop
	_     [64]byte
	tail  atomic.Uint64 // next slot to push
}

// NewSPSC returns a ring with the given capacity, which must be a power of
// two and at least 2.
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("spsc capacity %d is not a power of two >= 2", capacity)
	}
	return &SPSC[T]{mask: uint64(capacity - 1), cells: make([]T, capacity)}, nil
}

// TryPush attempts to enqueue v, reporting false when the ring is full.
// Only one goroutine may call TryPush.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() > q.mask {
		return false
	}
	q.cells[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// TryPop attempts to dequeue a value, reporting false when the ring is
// empty. Only one goroutine may call TryPop.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false
	}
	v := q.cells[head&q.mask]
	q.cells[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// Len returns the number of queued values.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.cells) }
