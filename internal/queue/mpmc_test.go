package queue

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMPMCRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{-1, 0, 1, 3, 100} {
		if _, err := NewMPMC[int](c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
	if _, err := NewMPMC[int](8); err != nil {
		t.Fatalf("capacity 8 rejected: %v", err)
	}
}

func TestMPMCFIFOSingleThreaded(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full queue", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full queue")
	}
	if got := q.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestMPMCWrapAround(t *testing.T) {
	q, _ := NewMPMC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(round*10 + i) {
				t.Fatalf("round %d push %d failed", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d pop = (%d,%v), want %d", round, v, ok, round*10+i)
			}
		}
	}
}

// TestMPMCNoLossNoDuplication pushes a known set of values from several
// producers while several consumers drain; every value must come out exactly
// once.
func TestMPMCNoLossNoDuplication(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 500
	)
	q, _ := NewMPMC[int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var mu sync.Mutex
	got := make([]int, 0, producers*perProd)
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			local := make([]int, 0, perProd)
			for {
				v, ok := q.TryPop()
				if ok {
					local = append(local, v)
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					// Producers finished; drain whatever remains.
					for {
						v, ok := q.TryPop()
						if !ok {
							mu.Lock()
							got = append(got, local...)
							mu.Unlock()
							return
						}
						local = append(local, v)
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if len(got) != producers*perProd {
		t.Fatalf("drained %d values, want %d", len(got), producers*perProd)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("value %d missing or duplicated (saw %d at position %d)", i, v, i)
		}
	}
}

// TestMPMCPerProducerOrder verifies FIFO order is preserved per producer
// with a single consumer.
func TestMPMCPerProducerOrder(t *testing.T) {
	const perProd = 1000
	q, _ := NewMPMC[[2]int](32)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !q.TryPush([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	lastSeen := map[int]int{0: -1, 1: -1}
	popped := 0
	for popped < 2*perProd {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v[1] <= lastSeen[v[0]] {
			t.Fatalf("producer %d value %d arrived after %d", v[0], v[1], lastSeen[v[0]])
		}
		lastSeen[v[0]] = v[1]
		popped++
	}
	wg.Wait()
}

func TestMPMCDrain(t *testing.T) {
	q, _ := NewMPMC[int](8)
	for i := 0; i < 5; i++ {
		q.TryPush(i)
	}
	sum := 0
	n := q.Drain(func(v int) { sum += v })
	if n != 5 || sum != 10 {
		t.Fatalf("drain = (%d, sum %d), want (5, 10)", n, sum)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestMPMCCap(t *testing.T) {
	q, _ := NewMPMC[int](16)
	if q.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", q.Cap())
	}
}

// TestMPMCPropertySequentialEquivalence checks that any single-threaded
// sequence of pushes then pops behaves like a bounded FIFO.
func TestMPMCPropertySequentialEquivalence(t *testing.T) {
	f := func(vals []int16) bool {
		q, _ := NewMPMC[int16](16)
		var model []int16
		for _, v := range vals {
			pushed := q.TryPush(v)
			if len(model) < 16 {
				if !pushed {
					return false
				}
				model = append(model, v)
			} else if pushed {
				return false
			}
		}
		for _, want := range model {
			got, ok := q.TryPop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.TryPop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMPMCUncontended(b *testing.B) {
	q, _ := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPush(i)
		q.TryPop()
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	q, _ := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}
