package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/monitor"
	"streamelastic/internal/pe"
	"streamelastic/internal/spl"
)

// recSink collects (seq -> key, count) keyed by sequence, so the
// exactly-once comparison is order-insensitive (the aggregate stream's
// content is deterministic; its interleaving across a migration is not).
type recSink struct {
	mu    sync.Mutex
	recs  map[uint64][2]uint64
	dups  atomic.Uint64
	count atomic.Uint64
}

func newRecSink() *recSink { return &recSink{recs: make(map[uint64][2]uint64)} }

func (s *recSink) Name() string { return "recsink" }

func (s *recSink) RecyclesTuples() {}

func (s *recSink) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	rec := [2]uint64{t.Key, uint64(t.Num1)}
	s.mu.Lock()
	if _, ok := s.recs[t.Seq]; ok {
		s.dups.Add(1)
	} else {
		s.recs[t.Seq] = rec
		s.count.Add(1)
	}
	s.mu.Unlock()
}

// output renders the collected records in sequence order as bytes — the
// byte-identity artifact for run-to-run comparison.
func (s *recSink) output() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := make([]uint64, 0, len(s.recs))
	for seq := range s.recs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]byte, 0, len(seqs)*24)
	var rec [24]byte
	for _, seq := range seqs {
		r := s.recs[seq]
		binary.LittleEndian.PutUint64(rec[0:], seq)
		binary.LittleEndian.PutUint64(rec[8:], r[0])
		binary.LittleEndian.PutUint64(rec[16:], r[1])
		out = append(out, rec[:]...)
	}
	return out
}

// chainJob builds the 6-node linear pipeline the cluster tests scale:
// throttled generator -> work -> keyed counter (stateful, snapshot-carried
// across migrations) -> work -> work -> recording sink. Linear so every
// PE has at most one import, which (with a single engine thread) makes
// per-operator invocation order equal generator order — the property that
// keeps injected operator panics deterministic across runs.
func chainJob(t testing.TB, maxTuples uint64, rate float64) (*graph.Graph, *recSink) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = maxTuples
	gen.Keys = 16
	var root spl.Source = gen
	if rate > 0 {
		root = spl.NewThrottle(gen, rate)
	}
	src := g.AddSource(root, spl.NewCostVar(10))
	w1 := g.AddOperator(spl.NewWork("w1", spl.NewCostVar(40)), spl.NewCostVar(40))
	ctr := g.AddOperator(spl.NewKeyedCounter("ctr", 64, 1), spl.NewCostVar(60))
	w2 := g.AddOperator(spl.NewWork("w2", spl.NewCostVar(40)), spl.NewCostVar(40))
	w3 := g.AddOperator(spl.NewWork("w3", spl.NewCostVar(40)), spl.NewCostVar(40))
	sink := newRecSink()
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	for _, e := range [][2]graph.NodeID{{src, w1}, {w1, ctr}, {ctr, w2}, {w2, w3}, {w3, sid}} {
		if err := g.Connect(e[0], 0, e[1], 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

// testPEOpts is the deterministic per-PE config: one engine thread, no
// elasticity or work stealing (invocation order = arrival order), blocking
// backpressure, a panic budget far above any armed fault plan so injected
// panics drop exactly the tuple being processed and never quarantine.
func testPEOpts(inj *fault.Injector) pe.Options {
	return pe.Options{
		DisableElasticity: true,
		Fault:             inj,
		Transport: pe.TransportConfig{
			BlockTimeout:       time.Minute,
			RetransmitCapacity: 4096,
		},
		Exec: exec.Options{
			MaxThreads:          1,
			DisableWorkStealing: true,
			PanicBudget:         1000,
			PanicDecay:          time.Hour,
		},
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitSinkCount waits until the sink stops growing at or beyond want.
func waitSinkCount(t *testing.T, sink *recSink, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last, stagnant := uint64(0), 0
	for time.Now().Before(deadline) {
		n := sink.count.Load()
		if n >= want {
			return
		}
		if n == last {
			stagnant++
			if n > 0 && stagnant > 600 { // ~3s without progress
				return
			}
		} else {
			last, stagnant = n, 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func scrapeStatus(t *testing.T, url string) []monitor.Status {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []monitor.Status
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterGrowShrinkConservation scales a live stateful pipeline 2 -> 4
// -> 2 mid-stream, with no faults, and asserts exactly-once conservation:
// every generated sequence reaches the sink exactly once, across four
// region migrations.
func TestClusterGrowShrinkConservation(t *testing.T) {
	const tuples = 60000
	g, sink := chainJob(t, tuples, 150000)
	m, err := New(g, Options{
		Spec: WidthSpec{Min: 2, Max: 4, Step: 1, Desired: 2},
		PE:   testPEOpts(fault.New(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		m.Stop()
		t.Fatal(err)
	}
	defer m.Stop()

	if got := m.Status().Allocated; got != 2 {
		t.Fatalf("initial allocation = %d, want 2", got)
	}
	if got := len(m.Registries()); got != 3 {
		t.Fatalf("registries = %d, want 3 (cluster + 2 members)", got)
	}

	m.SetDesired(4)
	waitFor(t, "grow to 4", 30*time.Second, func() bool {
		st := m.Status()
		return st.Allocated == 4 && st.Pending == ""
	})
	if got := len(m.Registries()); got != 5 {
		t.Fatalf("registries after grow = %d, want 5", got)
	}

	m.SetDesired(2)
	waitFor(t, "shrink to 2", 30*time.Second, func() bool {
		st := m.Status()
		return st.Allocated == 2 && st.Pending == ""
	})

	waitSinkCount(t, sink, tuples, 60*time.Second)
	if !m.DrainAndStop(30 * time.Second) {
		t.Fatal("fleet did not drain")
	}

	if d := sink.dups.Load(); d != 0 {
		t.Fatalf("sink saw %d duplicate sequences", d)
	}
	if n := sink.count.Load(); n != tuples {
		t.Fatalf("sink saw %d unique sequences, want %d (exactly-once conservation)", n, tuples)
	}
	st := m.Status()
	if st.MigrationsCompleted != 4 {
		t.Errorf("migrations completed = %d, want 4 (2 splits + 2 merges)", st.MigrationsCompleted)
	}
	if st.MigrationsAborted != 0 {
		t.Errorf("migrations aborted = %d, want 0", st.MigrationsAborted)
	}
	if st.Generation != 4 {
		t.Errorf("generation = %d, want 4", st.Generation)
	}
}

// TestClusterStatusz pins the /statusz surface: the synthetic cluster
// status leads with the width spec and migration ledger, members follow
// under their stable ids, and /metrics carries the cluster width series.
func TestClusterStatusz(t *testing.T) {
	g, sink := chainJob(t, 20000, 100000)
	m, err := New(g, Options{
		Spec: WidthSpec{Min: 2, Max: 4, Step: 2, Desired: 2},
		PE:   testPEOpts(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		m.Stop()
		t.Fatal(err)
	}
	defer m.Stop()

	srv := httptest.NewServer(monitor.ObservabilityHandlerDynamic(m, m.Registries, m.FlightRecorder()))
	defer srv.Close()

	sts := scrapeStatus(t, srv.URL)
	if len(sts) != 3 {
		t.Fatalf("statusz rows = %d, want 3", len(sts))
	}
	cs := sts[0]
	if cs.Name != "cluster" || cs.Width == nil || cs.Migrations == nil {
		t.Fatalf("first status = %+v, want synthetic cluster row", cs)
	}
	if cs.Width.Min != 2 || cs.Width.Max != 4 || cs.Width.Step != 2 || cs.Width.Allocated != 2 {
		t.Fatalf("width = %+v", cs.Width)
	}
	if sts[1].Name != "pe0" || sts[2].Name != "pe1" {
		t.Fatalf("member names = %q, %q", sts[1].Name, sts[2].Name)
	}

	m.SetDesired(4)
	waitFor(t, "grow to 4", 30*time.Second, func() bool {
		st := m.Status()
		return st.Allocated == 4 && st.Pending == ""
	})
	sts = scrapeStatus(t, srv.URL)
	if got := sts[0].Width.Allocated; got != 4 {
		t.Fatalf("allocated after grow = %d, want 4", got)
	}
	if got := sts[0].Migrations.Completed; got != 2 {
		t.Fatalf("migrations on statusz = %d, want 2", got)
	}
	// New members surface under fresh stable ids, never reusing retired
	// ones; exactly one original survives the single split.
	names := map[string]bool{}
	for _, s := range sts[1:] {
		names[s.Name] = true
	}
	if len(names) != 4 {
		t.Fatalf("member rows = %d, want 4", len(names))
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	metrics := string(body[:n])
	for _, want := range []string{"cluster_width_allocated", "cluster_width_desired", "cluster_migrations_completed_total"} {
		if !contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	waitSinkCount(t, sink, 20000, 60*time.Second)
	m.DrainAndStop(30 * time.Second)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestClusterOptionValidation pins the rejected configurations: the
// migration protocol needs ungated acks, TCP retransmit machinery, and
// blocking backpressure.
func TestClusterOptionValidation(t *testing.T) {
	g, _ := chainJob(t, 10, 0)
	base := Options{Spec: WidthSpec{Min: 1, Max: 2}}

	bad := base
	bad.PE.Checkpoint.Enabled = true
	if _, err := New(g, bad); err == nil {
		t.Error("checkpointing accepted")
	}
	bad = base
	bad.PE.LocalEdges = true
	if _, err := New(g, bad); err == nil {
		t.Error("local edges accepted")
	}
	bad = base
	bad.PE.Transport.DropOnFull = true
	if _, err := New(g, bad); err == nil {
		t.Error("DropOnFull accepted")
	}
	bad = base
	bad.Spec = WidthSpec{Min: 2, Max: 100}
	if _, err := New(g, bad); err == nil {
		t.Error("width beyond node count accepted")
	}
}
