package cluster

import (
	"fmt"
	"net"
	"strconv"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/graph"
	"streamelastic/internal/obs"
	"streamelastic/internal/pe"
	"streamelastic/internal/spl"
)

// memberLoad is the planner's view of one member.
type memberLoad struct {
	idx   int // position in the fleet order
	id    int
	slots int
	load  int // instantaneous queue depth
}

// pickSplit chooses the member to split on grow: the most loaded member
// that has at least two topological slots (ties: more slots, then lower
// id, so repeated grows spread instead of re-splitting one PE). Returns -1
// when no member can split.
func pickSplit(loads []memberLoad) int {
	best := -1
	for i, l := range loads {
		if l.slots < 2 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := loads[best]
		if l.load > b.load ||
			(l.load == b.load && l.slots > b.slots) ||
			(l.load == b.load && l.slots == b.slots && l.id < b.id) {
			best = i
		}
	}
	return best
}

// pickMerge chooses the adjacent pair to merge on shrink: the pair with
// the least combined load (ties: earlier pair). Contiguity of topological
// ranges means only adjacent members can merge. Returns -1 when the fleet
// has fewer than two members.
func pickMerge(loads []memberLoad) int {
	best := -1
	bestLoad := 0
	for i := 0; i+1 < len(loads); i++ {
		sum := loads[i].load + loads[i+1].load
		if best < 0 || sum < bestLoad {
			best, bestLoad = i, sum
		}
	}
	return best
}

// loads snapshots every member's instantaneous queue depth.
func (m *Manager) loads() []memberLoad {
	m.mu.Lock()
	mems := append([]*member(nil), m.members...)
	m.mu.Unlock()
	out := make([]memberLoad, len(mems))
	for i, mem := range mems {
		out[i] = memberLoad{
			idx:   i,
			id:    mem.id,
			slots: mem.hi - mem.lo,
			load:  mem.rt.Eng.QueueStats().TotalDepth,
		}
	}
	return out
}

// growOne adds one PE by splitting the most loaded member's range in two.
func (m *Manager) growOne() error {
	loads := m.loads()
	i := pickSplit(loads)
	if i < 0 {
		return fmt.Errorf("cluster: no member with enough slots to split")
	}
	m.mu.Lock()
	mem := m.members[i]
	m.mu.Unlock()
	mid := mem.lo + (mem.hi-mem.lo)/2
	return m.migrateGroup(i, 1, [][2]int{{mem.lo, mid}, {mid, mem.hi}})
}

// shrinkOne removes one PE by merging the least loaded adjacent pair.
func (m *Manager) shrinkOne() error {
	loads := m.loads()
	i := pickMerge(loads)
	if i < 0 {
		return fmt.Errorf("cluster: nothing to merge")
	}
	m.mu.Lock()
	a, b := m.members[i], m.members[i+1]
	m.mu.Unlock()
	return m.migrateGroup(i, 2, [][2]int{{a.lo, b.hi}})
}

// migrateGroup replaces the fleet positions [first, first+count) with new
// members covering newRanges, moving the running region between PEs with
// exactly-once semantics. The choreography:
//
//  1. Freeze the group's up-boundary exports (surviving senders park, no
//     drops) and stop the group's control loops.
//  2. Drain the group's engines (terminal for their real sources — the
//     shared operator instances resume emission in the replacements) and
//     wait for quiescence: engines idle, and per stream class the counters
//     prove nothing unaccounted is in flight.
//  3. Cut a state snapshot of the group's stateful operators under the
//     pause barrier, map node ids to the job graph, and Reset the shared
//     instances so the restore into the replacements is load-bearing.
//  4. Partition the job graph under the new shape; only the replaced
//     positions' plans are used (survivors keep their runtimes, plans,
//     and stream endpoints untouched).
//  5. Wire new internal edges fresh (sequence domain from zero). At the
//     up-boundary, seed the new import at the old import's delivered
//     watermark and Reroute the frozen export to it: anything staged but
//     undelivered replays from the retransmit ring on re-attach, so the
//     cut is exactly-once by construction.
//  6. Retire the old members: close their endpoints, stop their engines.
//     Then wire the down-boundary: a new export seeded at the retired
//     export's sequence high dials the surviving import's unchanged
//     address (retiring first frees the import to re-accept promptly).
//  7. Start the replacements, unfreeze the up-boundary, commit.
func (m *Manager) migrateGroup(first, count int, newRanges [][2]int) error {
	m.migStarted.Add(1)
	m.mu.Lock()
	group := append([]*member(nil), m.members[first:first+count]...)
	inGroup := make(map[int]bool, count)
	for _, mem := range group {
		inGroup[mem.id] = true
	}
	var up, internal, down []*streamRT
	for _, st := range m.streams {
		f, t := inGroup[st.fromMember], inGroup[st.toMember]
		switch {
		case f && t:
			internal = append(internal, st)
		case t:
			up = append(up, st)
		case f:
			down = append(down, st)
		}
	}
	streamByKey := make(map[edgeKey]*streamRT, len(m.streams))
	for k, st := range m.streams {
		streamByKey[k] = st
	}
	m.mu.Unlock()

	abort := func(err error) error {
		for _, st := range up {
			st.exp.Unfreeze()
		}
		m.migAborted.Add(1)
		return err
	}

	// 1. Freeze the up-boundary; stop the group's control loops so no
	// coordinator reconfigures an engine we are about to quiesce.
	for _, st := range up {
		st.exp.Freeze()
	}
	for _, mem := range group {
		mem.rt.StopControl()
	}

	// 2. Drain and quiesce.
	for _, mem := range group {
		mem.rt.Eng.Drain()
	}
	if !m.quiesce(group, up, internal, down) {
		return abort(fmt.Errorf("cluster: migration quiesce timed out after %v", m.drainTimeout))
	}

	// 3. Snapshot state, keyed by job-graph node id, then reset the shared
	// instances (Partition re-adds the same operator objects).
	stateOf := make(map[graph.NodeID][]byte)
	for _, mem := range group {
		globalOf := make(map[int]graph.NodeID)
		for gid, local := range mem.plan.LocalOf {
			if local >= 0 {
				globalOf[int(local)] = graph.NodeID(gid)
			}
		}
		for _, b := range mem.rt.Eng.ExportState() {
			gid, ok := globalOf[b.Node]
			if !ok {
				continue // transport stub, not a job-graph operator
			}
			stateOf[gid] = b.Data
		}
	}
	for gid := range stateOf {
		if rs, ok := m.g.Node(gid).Op.(spl.Resettable); ok {
			rs.Reset()
		}
	}

	// 4. Repartition under the new fleet shape.
	m.mu.Lock()
	ranges := make([][2]int, 0, len(m.members)-count+len(newRanges))
	for _, mem := range m.members[:first] {
		ranges = append(ranges, [2]int{mem.lo, mem.hi})
	}
	ranges = append(ranges, newRanges...)
	for _, mem := range m.members[first+count:] {
		ranges = append(ranges, [2]int{mem.lo, mem.hi})
	}
	memberAt := make(map[int]*member) // surviving fleet position -> member
	for i, mem := range m.members {
		if i < first {
			memberAt[i] = mem
		} else if i >= first+count {
			memberAt[i-count+len(newRanges)] = mem
		}
	}
	m.mu.Unlock()
	plans, crosses, err := pe.Partition(m.g, m.assignFor(ranges))
	if err != nil {
		return abort(fmt.Errorf("cluster: repartition: %w", err))
	}

	newMems := make([]*member, len(newRanges))
	newPos := func(p int) bool { return p >= first && p < first+len(newRanges) }
	for k, r := range newRanges {
		m.mu.Lock()
		id := m.nextMemberID
		m.nextMemberID++
		m.mu.Unlock()
		newMems[k] = &member{
			id:   id,
			lo:   r[0],
			hi:   r[1],
			plan: plans[first+k],
			reg:  obs.NewRegistry(obs.Label{Key: "pe", Value: strconv.Itoa(id)}),
		}
	}

	// 5. Wire the new members' streams. Old imports/exports to retire and
	// streamRT field updates are collected and applied at commit.
	type streamUpdate struct {
		st         *streamRT // live stream to mutate, or (replace) fresh one
		replace    bool      // wholesale replacement (rewired internal edge)
		exp        *pe.Export
		imp        *pe.Import
		addr       string
		fromMember int
		toMember   int
	}
	var updates []streamUpdate
	var added []*streamRT
	var oldImports []*pe.Import
	newInternal := make(map[edgeKey]bool)
	for _, ce := range crosses {
		key := edgeKey{from: ce.From, fromPort: ce.FromPort, to: ce.To, toPort: ce.ToPort}
		switch {
		case newPos(ce.FromPE) && newPos(ce.ToPE):
			// Internal to the replacements: a fresh edge, sequences from 0.
			newInternal[key] = true
			fromMem, toMem := newMems[ce.FromPE-first], newMems[ce.ToPE-first]
			if old, ok := streamByKey[key]; ok {
				// The edge existed between two retiring members; keep its
				// stable id, the endpoints are replaced wholesale.
				st := &streamRT{id: old.id, key: key, fromMember: fromMem.id, toMember: toMem.id}
				exp := plans[ce.FromPE].ExportEndpoint(ce.Stream)
				imp := plans[ce.ToPE].ImportEndpoint(ce.Stream)
				if err := m.wireFresh(st, exp, imp, fromMem, toMem); err != nil {
					return abort(fmt.Errorf("cluster: rewire internal stream %d: %w", old.id, err))
				}
				updates = append(updates, streamUpdate{st: st, replace: true})
			} else {
				m.mu.Lock()
				st := &streamRT{id: m.nextStreamID, key: key, fromMember: fromMem.id, toMember: toMem.id}
				m.nextStreamID++
				m.mu.Unlock()
				exp := plans[ce.FromPE].ExportEndpoint(ce.Stream)
				imp := plans[ce.ToPE].ImportEndpoint(ce.Stream)
				if err := m.wireFresh(st, exp, imp, fromMem, toMem); err != nil {
					return abort(fmt.Errorf("cluster: wire internal stream %d: %w", st.id, err))
				}
				added = append(added, st)
			}
		case newPos(ce.ToPE):
			// Up-boundary: the surviving (frozen) export reroutes to a new
			// import seeded at the old import's delivered watermark; frames
			// staged but undelivered replay from the retransmit ring.
			st, ok := streamByKey[key]
			if !ok {
				return abort(fmt.Errorf("cluster: up-boundary edge %v has no live stream", key))
			}
			toMem := newMems[ce.ToPE-first]
			imp := plans[ce.ToPE].ImportEndpoint(ce.Stream)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return abort(fmt.Errorf("cluster: listen for stream %d: %w", st.id, err))
			}
			imp.Configure(m.rec, toMem.id, st.id)
			imp.SeedWatermark(st.imp.Delivered())
			imp.Listen(ln)
			imp.RegisterMetrics(toMem.reg, st.id, st.fromMember)
			oldImports = append(oldImports, st.imp)
			st.exp.Reroute(ln.Addr().String())
			// The surviving export keeps its original metrics binding: the
			// endpoint object is unchanged, and rebinding under the new peer
			// label would leave a stale duplicate series.
			updates = append(updates, streamUpdate{
				st: st, imp: imp, addr: ln.Addr().String(),
				fromMember: st.fromMember, toMember: toMem.id,
			})
		case newPos(ce.FromPE):
			// Down-boundary: handled after the old members retire, so the
			// surviving import is already re-accepting when the replacement
			// export dials. Nothing to do yet.
		}
	}

	// 6. Build the replacement runtimes and restore the region's state.
	for _, nm := range newMems {
		rt, err := pe.NewPERuntime(nm.plan, nm.reg, m.rec, m.peOpts, nil)
		if err != nil {
			return abort(fmt.Errorf("cluster: build pe%d: %w", nm.id, err))
		}
		nm.rt = rt
		var blobs []exec.StateBlob
		for gid, data := range stateOf {
			if local := nm.plan.LocalOf[gid]; local >= 0 {
				blobs = append(blobs, exec.StateBlob{Node: int(local), Data: data})
			}
		}
		if err := rt.Eng.ImportState(blobs); err != nil {
			return abort(fmt.Errorf("cluster: restore pe%d: %w", nm.id, err))
		}
	}

	// 7. Retire the old members. Down exports' sequence highs are read
	// before Close; the replay ledger folds their retransmit counts in at
	// commit. Closing the down exports frees the surviving imports to
	// re-accept.
	var retiredReplay uint64
	downSeed := make(map[*streamRT]uint64, len(down))
	for _, st := range down {
		downSeed[st] = st.exp.SeqHigh()
		retiredReplay += st.exp.RetransTuples()
		st.exp.Close()
	}
	for _, st := range internal {
		retiredReplay += st.exp.RetransTuples()
		st.exp.Close()
		st.imp.Close()
	}
	for _, imp := range oldImports {
		imp.Close()
	}
	for _, mem := range group {
		mem.rt.StopEngine()
	}

	// 8. Down-boundary: the replacement export continues the retired
	// export's sequence domain and dials the surviving import's unchanged
	// address; resume == seed, so the attach is clean and the import's
	// dedup watermark carries over.
	for _, ce := range crosses {
		if !newPos(ce.FromPE) || newPos(ce.ToPE) {
			continue
		}
		key := edgeKey{from: ce.From, fromPort: ce.FromPort, to: ce.To, toPort: ce.ToPort}
		st, ok := streamByKey[key]
		if !ok {
			return abort(fmt.Errorf("cluster: down-boundary edge %v has no live stream", key))
		}
		fromMem := newMems[ce.FromPE-first]
		exp := plans[ce.FromPE].ExportEndpoint(ce.Stream)
		exp.Configure(m.peOpts.Transport, m.peOpts.Fault, st.id, m.rec, fromMem.id)
		exp.SeedSequence(downSeed[st])
		conn, err := net.DialTimeout("tcp", st.addr, m.peOpts.DialTimeout)
		if err != nil {
			return abort(fmt.Errorf("cluster: redial stream %d: %w", st.id, err))
		}
		if err := exp.Connect(conn, st.addr); err != nil {
			return abort(fmt.Errorf("cluster: reconnect stream %d: %w", st.id, err))
		}
		exp.RegisterMetrics(fromMem.reg, st.id, st.toMember)
		updates = append(updates, streamUpdate{
			st: st, exp: exp, addr: st.addr,
			fromMember: fromMem.id, toMember: st.toMember,
		})
	}

	// 9. Start the replacements and release the frozen boundary.
	for _, nm := range newMems {
		if err := nm.rt.Start(m.ctx); err != nil {
			return abort(fmt.Errorf("cluster: start pe%d: %w", nm.id, err))
		}
	}
	for _, st := range up {
		st.exp.Unfreeze()
	}

	// 10. Commit.
	m.mu.Lock()
	fleet := make([]*member, 0, len(ranges))
	for i := range ranges {
		if newPos(i) {
			fleet = append(fleet, newMems[i-first])
		} else {
			fleet = append(fleet, memberAt[i])
		}
	}
	m.members = fleet
	for _, st := range internal {
		if !newInternal[st.key] {
			delete(m.streams, st.key) // merged away: the edge is local now
		}
	}
	for _, u := range updates {
		if u.replace {
			m.streams[u.st.key] = u.st
			continue
		}
		if u.exp != nil {
			u.st.exp = u.exp
		}
		if u.imp != nil {
			u.st.imp = u.imp
		}
		u.st.addr = u.addr
		u.st.fromMember = u.fromMember
		u.st.toMember = u.toMember
	}
	for _, st := range added {
		m.streams[st.key] = st
	}
	m.allocated.Store(int64(len(fleet)))
	m.gen.Add(1)
	m.mu.Unlock()
	m.replayedBase.Add(retiredReplay)
	m.migCompleted.Add(1)
	return nil
}

// quiesce waits (bounded by DrainTimeout) until the group is provably
// quiet, requiring two consecutive passes with a settle gap.
func (m *Manager) quiesce(group []*member, up, internal, down []*streamRT) bool {
	deadline := time.Now().Add(m.drainTimeout)
	settled := 0
	for time.Now().Before(deadline) {
		if m.quiet(group, up, internal, down) {
			settled++
			if settled >= 2 {
				return true
			}
		} else {
			settled = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// quiet checks the per-stream-class quiescence conditions:
//
//   - group engines idle (drained, queues empty, workers parked);
//   - up-boundary: the import has emitted everything it delivered — frames
//     staged but undelivered sit unacked in the frozen export's retransmit
//     ring and replay to the replacement import after reroute, so they
//     need not drain;
//   - internal: staging ring empty and the import has delivered and
//     emitted everything ever staged — the edge is replaced by a fresh
//     sequence domain, so an undrained tuple here would be lost;
//   - down-boundary: staging ring empty and the surviving import's dedup
//     watermark has caught the export's sequence high — the replacement
//     export seeds there with an empty ring, so a gap would never replay.
func (m *Manager) quiet(group []*member, up, internal, down []*streamRT) bool {
	for _, mem := range group {
		if !mem.rt.Eng.WaitIdle(5 * time.Millisecond) {
			return false
		}
	}
	for _, st := range up {
		if st.imp.Emitted() != st.imp.Delivered() {
			return false
		}
	}
	for _, st := range internal {
		if st.exp.StagedDepth() != 0 {
			return false
		}
		h := st.exp.SeqHigh()
		if st.imp.Delivered() != h || st.imp.Emitted() != h {
			return false
		}
	}
	for _, st := range down {
		if st.exp.StagedDepth() != 0 {
			return false
		}
		if st.imp.Delivered() != st.exp.SeqHigh() {
			return false
		}
	}
	return true
}
