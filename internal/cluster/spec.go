// Package cluster is the job manager above internal/pe: it plans placement
// of graph regions across a fleet of PEs and grows or shrinks that fleet
// under a declared malleable width spec, migrating running regions between
// PEs without stopping the job. The paper automates elasticity inside one
// PE (thread count and queue placement); this package is the next level up,
// rescaling the number of PEs the same dataflow spans.
package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// WidthSpec is a jobtree-style malleable width declaration: the fleet may
// run any width w with Min <= w <= Max and (w-Min)%Step == 0. Desired is
// the width the reconciler steers toward; lowering it below the current
// allocation is a voluntary shrink.
type WidthSpec struct {
	Min     int
	Max     int
	Step    int // default 1
	Desired int // default Max
}

// ParseWidthSpec parses "min:max[:step[:desired]]", the -width flag syntax.
func ParseWidthSpec(s string) (WidthSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return WidthSpec{}, fmt.Errorf("cluster: width spec %q: want min:max[:step[:desired]]", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return WidthSpec{}, fmt.Errorf("cluster: width spec %q: %w", s, err)
		}
		vals[i] = v
	}
	w := WidthSpec{Min: vals[0], Max: vals[1]}
	if len(vals) > 2 {
		w.Step = vals[2]
	}
	if len(vals) > 3 {
		w.Desired = vals[3]
	}
	w = w.withDefaults()
	return w, w.Validate()
}

// withDefaults fills Step (1) and Desired (Max).
func (w WidthSpec) withDefaults() WidthSpec {
	if w.Step == 0 {
		w.Step = 1
	}
	if w.Desired == 0 {
		w.Desired = w.Max
	}
	return w
}

// Validate rejects inconsistent specs.
func (w WidthSpec) Validate() error {
	if w.Min < 1 {
		return fmt.Errorf("cluster: width min %d < 1", w.Min)
	}
	if w.Max < w.Min {
		return fmt.Errorf("cluster: width max %d < min %d", w.Max, w.Min)
	}
	if w.Step < 1 {
		return fmt.Errorf("cluster: width step %d < 1", w.Step)
	}
	if (w.Max-w.Min)%w.Step != 0 {
		return fmt.Errorf("cluster: width max %d not reachable from min %d by step %d", w.Max, w.Min, w.Step)
	}
	if w.Desired < w.Min || w.Desired > w.Max || (w.Desired-w.Min)%w.Step != 0 {
		return fmt.Errorf("cluster: desired width %d outside %d:%d step %d", w.Desired, w.Min, w.Max, w.Step)
	}
	return nil
}

// Clamp maps an arbitrary desired width onto the nearest allowed width at
// or below it (never below Min, never above Max, always step-aligned).
func (w WidthSpec) Clamp(desired int) int {
	if desired < w.Min {
		return w.Min
	}
	if desired > w.Max {
		desired = w.Max
	}
	return w.Min + (desired-w.Min)/w.Step*w.Step
}
