package cluster

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
	"streamelastic/internal/pe"
)

// Options configure a cluster job manager.
type Options struct {
	// Spec is the malleable width declaration the reconciler enforces.
	Spec WidthSpec
	// PE configures every member PE (engine, elasticity, transport, fault
	// injection). Checkpointing, local edges, and DropOnFull transports are
	// rejected: migration's seeded resume handshake needs the TCP
	// retransmit machinery with ungated acks and lossless backpressure.
	PE pe.Options
	// ReconcileInterval is the reconcile loop's cadence (default 100ms).
	ReconcileInterval time.Duration
	// DrainTimeout bounds the quiescence wait of one migration (default
	// 30s). A migration that cannot quiesce in time is aborted; because
	// draining a PE's real sources is terminal, an abort wedges the fleet,
	// so size this generously.
	DrainTimeout time.Duration
}

// member is one PE of the fleet. id is stable across the fleet's lifetime
// (never reused) and is the PE label on the member's registry, the peer
// label on stream metrics, and the name on /statusz; lo/hi is the member's
// half-open range of the job graph's topological order.
type member struct {
	id     int
	lo, hi int
	plan   *pe.Plan
	rt     *pe.PERuntime
	reg    *obs.Registry
}

// edgeKey names a cross-PE stream by the job-graph edge it carries — the
// identity that survives repartitioning, unlike pe.Partition's stream
// numbering which depends on the assignment.
type edgeKey struct {
	from     graph.NodeID
	fromPort int
	to       graph.NodeID
	toPort   int
}

// streamRT is one live cross-PE stream. id is stable for the edge's
// lifetime (fault site, metrics stream label, recorder tag); addr is the
// import end's listen address; fromMember/toMember are stable member ids.
type streamRT struct {
	id         int
	key        edgeKey
	exp        *pe.Export
	imp        *pe.Import
	addr       string
	fromMember int
	toMember   int
}

// Status is the cluster's externally visible state.
type Status struct {
	Spec                WidthSpec
	Desired             int
	Allocated           int
	Pending             string
	Generation          uint64
	MigrationsStarted   uint64
	MigrationsCompleted uint64
	MigrationsAborted   uint64
	// ReplayedTuples counts tuples rewritten by resume handshakes across
	// the fleet's lifetime — the replay traffic migrations (and ordinary
	// reconnects) caused.
	ReplayedTuples uint64
}

// Manager is the cluster-level job manager: it runs one dataflow graph
// across a fleet of PEs and grows or shrinks that fleet under its width
// spec, migrating regions between PEs without stopping the job.
type Manager struct {
	g      *graph.Graph
	topo   []graph.NodeID
	spec   WidthSpec
	peOpts pe.Options
	rec    *obs.FlightRecorder
	creg   *obs.Registry

	reconcileInterval time.Duration
	drainTimeout      time.Duration

	mu           sync.Mutex
	members      []*member
	streams      map[edgeKey]*streamRT
	nextMemberID int
	nextStreamID int
	pending      string
	started      bool
	stopped      bool
	loopRunning  bool

	desired   atomic.Int64
	allocated atomic.Int64
	gen       atomic.Uint64
	wedged    atomic.Bool

	migStarted   atomic.Uint64
	migCompleted atomic.Uint64
	migAborted   atomic.Uint64
	replayedBase atomic.Uint64

	ctx      context.Context
	kick     chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
}

// New plans the initial fleet at the spec's clamped desired width and wires
// it, ready for Start.
func New(g *graph.Graph, opts Options) (*Manager, error) {
	spec := opts.Spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !g.Finalized() {
		return nil, fmt.Errorf("cluster: job graph not finalized")
	}
	if spec.Max > g.NumNodes() {
		return nil, fmt.Errorf("cluster: width max %d exceeds %d graph nodes", spec.Max, g.NumNodes())
	}
	p := opts.PE
	if p.Checkpoint.Enabled {
		return nil, fmt.Errorf("cluster: checkpointing is incompatible with migration (ack gating at the checkpoint floor breaks the seeded resume handshake)")
	}
	if p.LocalEdges || p.LocalEdgeFor != nil {
		return nil, fmt.Errorf("cluster: local edges have no retransmit machinery; migration needs TCP streams")
	}
	if p.Transport.DropOnFull {
		return nil, fmt.Errorf("cluster: DropOnFull transports lose tuples while an edge is frozen; migration needs blocking backpressure")
	}
	if p.DialTimeout == 0 {
		p.DialTimeout = 5 * time.Second
	}
	rec := p.Recorder
	if rec == nil {
		rec = obs.NewFlightRecorder(obs.DefaultFlightRecorderSize)
		p.Recorder = rec
	}
	if p.Fault != nil {
		p.Fault.SetObserver(func(ev fault.Event) {
			rec.Record(obs.EvFault, -1, int64(ev.Site), int64(ev.N), ev.Point.String())
		})
	}
	m := &Manager{
		g:                 g,
		topo:              g.Topo(),
		spec:              spec,
		peOpts:            p,
		rec:               rec,
		reconcileInterval: opts.ReconcileInterval,
		drainTimeout:      opts.DrainTimeout,
		streams:           make(map[edgeKey]*streamRT),
		kick:              make(chan struct{}, 1),
		stopCh:            make(chan struct{}),
		doneCh:            make(chan struct{}),
	}
	if m.reconcileInterval <= 0 {
		m.reconcileInterval = 100 * time.Millisecond
	}
	if m.drainTimeout <= 0 {
		m.drainTimeout = 30 * time.Second
	}
	m.desired.Store(int64(spec.Desired))
	m.creg = obs.NewRegistry(obs.Label{Key: "pe", Value: "cluster"})
	m.registerClusterMetrics()
	if err := m.buildFleet(evenRanges(len(m.topo), spec.Clamp(spec.Desired))); err != nil {
		return nil, err
	}
	return m, nil
}

// evenRanges splits n topological slots into w contiguous, non-empty,
// near-equal half-open ranges.
func evenRanges(n, w int) [][2]int {
	out := make([][2]int, w)
	for k := 0; k < w; k++ {
		out[k] = [2]int{k * n / w, (k + 1) * n / w}
	}
	return out
}

// assignFor maps the job graph onto PE indices from an ordered range list:
// topological slot i in range k means assignment to PE k.
func (m *Manager) assignFor(ranges [][2]int) pe.Assignment {
	assign := make(pe.Assignment, len(m.topo))
	for k, r := range ranges {
		for i := r[0]; i < r[1]; i++ {
			assign[m.topo[i]] = k
		}
	}
	return assign
}

// buildFleet wires generation zero: partition, fresh streams, runtimes.
func (m *Manager) buildFleet(ranges [][2]int) error {
	plans, crosses, err := pe.Partition(m.g, m.assignFor(ranges))
	if err != nil {
		return err
	}
	members := make([]*member, len(ranges))
	for k, r := range ranges {
		id := m.nextMemberID
		m.nextMemberID++
		members[k] = &member{
			id:   id,
			lo:   r[0],
			hi:   r[1],
			plan: plans[k],
			reg:  obs.NewRegistry(obs.Label{Key: "pe", Value: strconv.Itoa(id)}),
		}
	}
	abort := func() {
		for _, st := range m.streams {
			if st.exp != nil {
				st.exp.Close()
			}
			if st.imp != nil {
				st.imp.Close()
			}
		}
	}
	for _, ce := range crosses {
		key := edgeKey{from: ce.From, fromPort: ce.FromPort, to: ce.To, toPort: ce.ToPort}
		st := &streamRT{
			id:         m.nextStreamID,
			key:        key,
			fromMember: members[ce.FromPE].id,
			toMember:   members[ce.ToPE].id,
		}
		m.nextStreamID++
		exp := plans[ce.FromPE].ExportEndpoint(ce.Stream)
		imp := plans[ce.ToPE].ImportEndpoint(ce.Stream)
		if err := m.wireFresh(st, exp, imp, members[ce.FromPE], members[ce.ToPE]); err != nil {
			abort()
			return fmt.Errorf("cluster: wire stream %d: %w", st.id, err)
		}
		m.streams[key] = st
	}
	for _, mem := range members {
		rt, err := pe.NewPERuntime(mem.plan, mem.reg, m.rec, m.peOpts, nil)
		if err != nil {
			abort()
			return err
		}
		mem.rt = rt
	}
	m.members = members
	m.allocated.Store(int64(len(members)))
	return nil
}

// wireFresh connects a brand-new stream (wire sequences from zero): the
// import listens on loopback, the export dials, and both register their
// transport series on their owners' registries.
func (m *Manager) wireFresh(st *streamRT, exp *pe.Export, imp *pe.Import, from, to *member) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, e := ln.Accept()
		acceptCh <- accepted{conn: c, err: e}
	}()
	conn, err := net.DialTimeout("tcp", addr, m.peOpts.DialTimeout)
	if err != nil {
		_ = ln.Close()
		return err
	}
	acc := <-acceptCh
	if acc.err != nil {
		_ = conn.Close()
		_ = ln.Close()
		return acc.err
	}
	exp.Configure(m.peOpts.Transport, m.peOpts.Fault, st.id, m.rec, from.id)
	if err := exp.Connect(conn, addr); err != nil {
		_ = acc.conn.Close()
		_ = ln.Close()
		return err
	}
	imp.Configure(m.rec, to.id, st.id)
	imp.Connect(acc.conn, ln)
	exp.RegisterMetrics(from.reg, st.id, to.id)
	imp.RegisterMetrics(to.reg, st.id, from.id)
	st.exp, st.imp, st.addr = exp, imp, addr
	return nil
}

// Start launches every member and the reconcile loop.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("cluster: already started")
	}
	m.started = true
	m.loopRunning = true
	m.ctx = ctx
	mems := append([]*member(nil), m.members...)
	m.mu.Unlock()
	for _, mem := range mems {
		if err := mem.rt.Start(ctx); err != nil {
			return err
		}
	}
	go m.loop()
	return nil
}

// SetDesired moves the width target; the reconcile loop grows or shrinks
// the fleet toward the spec-clamped value. Lowering it below the current
// allocation is a voluntary shrink.
func (m *Manager) SetDesired(n int) {
	m.desired.Store(int64(n))
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// loop is the reconcile loop: observe, plan, migrate, repeat.
func (m *Manager) loop() {
	defer close(m.doneCh)
	t := time.NewTicker(m.reconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-m.kick:
		case <-t.C:
		}
		m.reconcileOnce()
	}
}

// reconcileOnce steps the fleet toward the clamped desired width, one
// migration at a time, re-reading the target between steps.
func (m *Manager) reconcileOnce() {
	for !m.wedged.Load() {
		select {
		case <-m.stopCh:
			return
		default:
		}
		target := m.spec.Clamp(int(m.desired.Load()))
		cur := int(m.allocated.Load())
		if cur == target {
			m.setPending("")
			return
		}
		var err error
		if cur < target {
			m.setPending(fmt.Sprintf("growing %d -> %d", cur, target))
			err = m.growOne()
		} else {
			m.setPending(fmt.Sprintf("shrinking %d -> %d", cur, target))
			err = m.shrinkOne()
		}
		if err != nil {
			// Draining a region's real sources is terminal, so a failed
			// migration cannot be rolled back; stop reconciling and
			// surface the wedge on /statusz rather than thrash.
			m.wedged.Store(true)
			m.setPending("aborted: " + err.Error())
			return
		}
	}
}

func (m *Manager) setPending(s string) {
	m.mu.Lock()
	m.pending = s
	m.mu.Unlock()
}

// haltLoop stops the reconcile loop and waits for it to exit, so no
// migration races a drain or shutdown.
func (m *Manager) haltLoop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.mu.Lock()
	running := m.loopRunning
	m.mu.Unlock()
	if running {
		<-m.doneCh
	}
}

// Stop shuts the fleet down: reconcile loop, control loops, streams (which
// unblocks import readers), then engines. Safe to call more than once.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	m.haltLoop()
	m.mu.Lock()
	mems := append([]*member(nil), m.members...)
	streams := make([]*streamRT, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	for _, mem := range mems {
		mem.rt.StopControl()
	}
	for _, st := range streams {
		st.exp.Close()
		st.imp.Close()
	}
	for _, mem := range mems {
		mem.rt.StopEngine()
	}
}

// DrainAndStop gracefully shuts the fleet down: the reconcile loop halts
// first (no migration races the drain), real sources stop emitting,
// in-flight tuples flow through every member and stream to completion
// (bounded by timeout), then everything stops. It reports whether the
// whole fleet drained.
func (m *Manager) DrainAndStop(timeout time.Duration) bool {
	m.haltLoop()
	m.mu.Lock()
	mems := append([]*member(nil), m.members...)
	m.mu.Unlock()
	for _, mem := range mems {
		mem.rt.Eng.Drain()
	}
	deadline := time.Now().Add(timeout)
	drained := false
	for time.Now().Before(deadline) {
		all := true
		for _, mem := range mems {
			if !mem.rt.Eng.WaitIdle(10 * time.Millisecond) {
				all = false
				break
			}
		}
		if all {
			// Idle twice with a settle gap: tuples may still be in flight
			// on a stream between members.
			time.Sleep(20 * time.Millisecond)
			again := true
			for _, mem := range mems {
				if !mem.rt.Eng.WaitIdle(10 * time.Millisecond) {
					again = false
					break
				}
			}
			if again {
				drained = true
				break
			}
		}
	}
	m.Stop()
	return drained
}

// Status returns the cluster's width and migration state.
func (m *Manager) Status() Status {
	m.mu.Lock()
	pending := m.pending
	m.mu.Unlock()
	return Status{
		Spec:                m.spec,
		Desired:             int(m.desired.Load()),
		Allocated:           int(m.allocated.Load()),
		Pending:             pending,
		Generation:          m.gen.Load(),
		MigrationsStarted:   m.migStarted.Load(),
		MigrationsCompleted: m.migCompleted.Load(),
		MigrationsAborted:   m.migAborted.Load(),
		ReplayedTuples:      m.replayedTuples(),
	}
}

// replayedTuples is the fleet-lifetime replay ledger: retired exports'
// counts (folded into replayedBase at migration commit) plus the live
// exports' counters.
func (m *Manager) replayedTuples() uint64 {
	total := m.replayedBase.Load()
	m.mu.Lock()
	for _, st := range m.streams {
		if st.exp != nil {
			total += st.exp.RetransTuples()
		}
	}
	m.mu.Unlock()
	return total
}

// Members returns the current member ids in fleet order.
func (m *Manager) Members() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.members))
	for i, mem := range m.members {
		out[i] = mem.id
	}
	return out
}

// registerClusterMetrics publishes the width spec, allocation, and
// migration ledger on the cluster registry (const label pe="cluster").
func (m *Manager) registerClusterMetrics() {
	r := m.creg
	r.GaugeFunc(obs.MetricClusterWidthMin, "Width spec minimum PEs.",
		func() float64 { return float64(m.spec.Min) })
	r.GaugeFunc(obs.MetricClusterWidthMax, "Width spec maximum PEs.",
		func() float64 { return float64(m.spec.Max) })
	r.GaugeFunc(obs.MetricClusterWidthStep, "Width spec step increment.",
		func() float64 { return float64(m.spec.Step) })
	r.GaugeFunc(obs.MetricClusterWidthDesired, "Desired fleet width.",
		func() float64 { return float64(m.desired.Load()) })
	r.GaugeFunc(obs.MetricClusterWidthAllocated, "Currently allocated PEs.",
		func() float64 { return float64(m.allocated.Load()) })
	r.GaugeFunc(obs.MetricClusterWidthPending, "1 while a width transition is in flight.",
		func() float64 {
			m.mu.Lock()
			p := m.pending
			m.mu.Unlock()
			if p != "" {
				return 1
			}
			return 0
		})
	r.GaugeFunc(obs.MetricClusterGeneration, "Fleet generation (bumped per committed migration).",
		func() float64 { return float64(m.gen.Load()) })
	r.CounterFunc(obs.MetricClusterMigStarted, "Region migrations started.", m.migStarted.Load)
	r.CounterFunc(obs.MetricClusterMigCompleted, "Region migrations committed.", m.migCompleted.Load)
	r.CounterFunc(obs.MetricClusterMigAborted, "Region migrations aborted.", m.migAborted.Load)
	r.CounterFunc(obs.MetricClusterReplayed, "Tuples rewritten by resume handshakes.", m.replayedTuples)
}

// Registries returns the cluster registry followed by every current
// member's registry — the dynamic set behind /metrics.
func (m *Manager) Registries() []*obs.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*obs.Registry, 0, len(m.members)+1)
	out = append(out, m.creg)
	for _, mem := range m.members {
		out = append(out, mem.reg)
	}
	return out
}

// FlightRecorder returns the fleet's shared flight recorder.
func (m *Manager) FlightRecorder() *obs.FlightRecorder { return m.rec }

var _ monitor.Provider = (*Manager)(nil)

// Statuses implements monitor.Provider: a synthetic cluster status (width
// spec, allocation, migration ledger) first, then one status per member,
// named by stable member id.
func (m *Manager) Statuses() []monitor.Status {
	cs := m.Status()
	out := []monitor.Status{{
		Name: "cluster",
		Width: &monitor.WidthStatus{
			Min:       cs.Spec.Min,
			Max:       cs.Spec.Max,
			Step:      cs.Spec.Step,
			Desired:   cs.Desired,
			Allocated: cs.Allocated,
			Pending:   cs.Pending,
		},
		Migrations: &monitor.MigrationStatus{
			Started:   cs.MigrationsStarted,
			Completed: cs.MigrationsCompleted,
			Aborted:   cs.MigrationsAborted,
			Replayed:  cs.ReplayedTuples,
		},
	}}
	m.mu.Lock()
	mems := append([]*member(nil), m.members...)
	m.mu.Unlock()
	for _, mem := range mems {
		var h *monitor.WatchdogStatus
		if mem.rt.Watchdog != nil {
			st := mem.rt.Watchdog.Status()
			h = &st
		}
		out = append(out, monitor.BuildStatus(fmt.Sprintf("pe%d", mem.id), mem.reg, h))
	}
	return out
}

// AdaptationTrace implements monitor.Provider. Index 0 is the synthetic
// cluster status (no trace); member traces follow in Statuses order.
func (m *Manager) AdaptationTrace(index int) []core.TraceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	if index < 1 || index > len(m.members) {
		return nil
	}
	rt := m.members[index-1].rt
	if rt.Coord == nil {
		return nil
	}
	return rt.Coord.Trace()
}
