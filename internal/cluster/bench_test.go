package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// benchChain is chainJob without the test plumbing: an endless throttled
// 6-node stateful chain, so a benchmark can cycle grow/shrink for as many
// iterations as the harness asks for.
func benchChain(b *testing.B, rate float64) (*graph.Graph, *recSink) {
	b.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 8)
	gen.MaxTuples = 1 << 62
	gen.Keys = 16
	src := g.AddSource(spl.NewThrottle(gen, rate), spl.NewCostVar(10))
	w1 := g.AddOperator(spl.NewWork("w1", spl.NewCostVar(40)), spl.NewCostVar(40))
	ctr := g.AddOperator(spl.NewKeyedCounter("ctr", 64, 1), spl.NewCostVar(60))
	w2 := g.AddOperator(spl.NewWork("w2", spl.NewCostVar(40)), spl.NewCostVar(40))
	w3 := g.AddOperator(spl.NewWork("w3", spl.NewCostVar(40)), spl.NewCostVar(40))
	sink := newRecSink()
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	for _, e := range [][2]graph.NodeID{{src, w1}, {w1, ctr}, {ctr, w2}, {w2, w3}, {w3, sid}} {
		if err := g.Connect(e[0], 0, e[1], 0, 1); err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Finalize(); err != nil {
		b.Fatal(err)
	}
	return g, sink
}

// settleAndDip drives one width transition and measures it: wall time from
// SetDesired until the fleet reports allocated == target with no pending
// transition, and the deepest 50ms sink-throughput window observed while
// settling (the delivery dip the migration freeze/drain caused), as a
// fraction of the steady rate.
func settleAndDip(m *Manager, sink *recSink, target int, steady float64) (settle time.Duration, dip float64) {
	const sample = 5 * time.Millisecond
	const window = 10 // 10 samples = 50ms windows
	counts := []uint64{sink.count.Load()}
	start := time.Now()
	m.SetDesired(target)
	for {
		st := m.Status()
		if st.Allocated == target && st.Pending == "" {
			break
		}
		time.Sleep(sample)
		counts = append(counts, sink.count.Load())
	}
	settle = time.Since(start)
	// Keep sampling one window past settle so a dip at the very end of the
	// transition is still covered by a full window.
	for i := 0; i < window; i++ {
		time.Sleep(sample)
		counts = append(counts, sink.count.Load())
	}
	minRate := steady
	for i := 0; i+window < len(counts); i++ {
		r := float64(counts[i+window]-counts[i]) / (float64(window) * sample.Seconds())
		if r < minRate {
			minRate = r
		}
	}
	if steady <= 0 {
		return settle, 1
	}
	return settle, minRate / steady
}

// BenchmarkClusterGrowShrink cycles a live stateful pipeline 2 -> 4 -> 2
// per iteration and reports the elasticity costs the design doc quotes:
// time-to-settle for grow and shrink, and the deepest 50ms delivery-rate
// window during each transition relative to steady state (1.0 = no dip).
func BenchmarkClusterGrowShrink(b *testing.B) {
	const rate = 150000
	g, sink := benchChain(b, rate)
	m, err := New(g, Options{
		Spec: WidthSpec{Min: 2, Max: 4, Step: 1, Desired: 2},
		PE:   testPEOpts(fault.New(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		m.Stop()
		b.Fatal(err)
	}
	defer m.Stop()

	// Measure the steady delivery rate at width 2 before any migration.
	warm := sink.count.Load()
	for sink.count.Load() == warm {
		time.Sleep(time.Millisecond)
	}
	c0 := sink.count.Load()
	t0 := time.Now()
	time.Sleep(300 * time.Millisecond)
	steady := float64(sink.count.Load()-c0) / time.Since(t0).Seconds()

	var growSettle, shrinkSettle time.Duration
	var growDip, shrinkDip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, d := settleAndDip(m, sink, 4, steady)
		growSettle += s
		growDip += d
		s, d = settleAndDip(m, sink, 2, steady)
		shrinkSettle += s
		shrinkDip += d
	}
	b.StopTimer()

	n := float64(b.N)
	b.ReportMetric(float64(growSettle.Milliseconds())/n, "settle_grow_ms")
	b.ReportMetric(float64(shrinkSettle.Milliseconds())/n, "settle_shrink_ms")
	b.ReportMetric(growDip/n, "dip_grow_ratio")
	b.ReportMetric(shrinkDip/n, "dip_shrink_ratio")
	b.ReportMetric(steady, "steady_tuples/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")

	st := m.Status()
	if st.MigrationsAborted != 0 {
		b.Fatalf("migrations aborted mid-benchmark: %d", st.MigrationsAborted)
	}
	if d := sink.dups.Load(); d != 0 {
		b.Fatalf("sink saw %d duplicates across %d grow/shrink cycles", d, b.N)
	}
}
