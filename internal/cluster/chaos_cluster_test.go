package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/monitor"
)

const (
	chaosClusterTuples = 60000
	chaosClusterRate   = 40000
	chaosClusterSeed   = 7
	// Operator panics exhaust well before the grow is requested, so the
	// three dropped tuples are identical in both runs regardless of where
	// regions later live.
	chaosPanicEveryN = 1200
	chaosPanicFires  = 3
)

// armChaos arms the shared fault plan for one run. Panics target w1
// (global node 1), resolved through the initial width-2 partition — both
// runs start from the identical partition, so the site matches. ConnKill
// is armed across every stream id the run can mint (the initial cross
// edge plus edges created by splits): connection kills are
// output-transparent by construction (retransmit ring + seq dedup), so
// arming them everywhere — including streams that only exist
// mid-migration — is safe in both runs.
func armChaos(m *Manager, inj *fault.Injector) int {
	m.mu.Lock()
	site := fault.OpSite(m.members[0].plan.PE, int(m.members[0].plan.LocalOf[1]))
	m.mu.Unlock()
	inj.Arm(fault.OpPanic, site, fault.Plan{EveryN: chaosPanicEveryN, MaxFires: chaosPanicFires})
	for sid := 0; sid < 8; sid++ {
		inj.Arm(fault.ConnKill, sid, fault.Plan{EveryN: 1750, MaxFires: 6})
	}
	return site
}

// streamResumes sums resume handshakes across the live fleet's imports.
func streamResumes(m *Manager) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, st := range m.streams {
		if st.imp != nil {
			n += st.imp.Resumes()
		}
	}
	return n
}

// TestChaosClusterMigration is the headline exactly-once claim for region
// migration: a stateful pipeline is grown 2 -> 4 and shrunk 4 -> 2 while
// streaming, with connections killed mid-migration and operator panics
// dropping tuples, and the sink's rendered output is byte-identical to a
// same-seed run that never migrates. Migration must add nothing, lose
// nothing, and duplicate nothing.
func TestChaosClusterMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}

	// Baseline: same graph, same seed, same fault plan, fixed width 2.
	baseline := func() []byte {
		g, sink := chainJob(t, chaosClusterTuples, chaosClusterRate)
		inj := fault.New(chaosClusterSeed)
		m, err := New(g, Options{
			Spec: WidthSpec{Min: 2, Max: 2, Step: 1, Desired: 2},
			PE:   testPEOpts(inj),
		})
		if err != nil {
			t.Fatal(err)
		}
		armChaos(m, inj)
		if err := m.Start(context.Background()); err != nil {
			m.Stop()
			t.Fatal(err)
		}
		defer m.Stop()
		waitSinkCount(t, sink, chaosClusterTuples-chaosPanicFires, 60*time.Second)
		if !m.DrainAndStop(30 * time.Second) {
			t.Fatal("baseline fleet did not drain")
		}
		if d := sink.dups.Load(); d != 0 {
			t.Fatalf("baseline sink saw %d duplicates", d)
		}
		return sink.output()
	}()

	// Migrated run: identical except the fleet is resized mid-stream.
	g, sink := chainJob(t, chaosClusterTuples, chaosClusterRate)
	inj := fault.New(chaosClusterSeed)
	m, err := New(g, Options{
		Spec: WidthSpec{Min: 2, Max: 4, Step: 1, Desired: 2},
		PE:   testPEOpts(inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	site := armChaos(m, inj)
	if err := m.Start(context.Background()); err != nil {
		m.Stop()
		t.Fatal(err)
	}
	defer m.Stop()

	srv := httptest.NewServer(monitor.ObservabilityHandlerDynamic(m, m.Registries, m.FlightRecorder()))
	defer srv.Close()

	// Let the panics burn out before moving anything, so the dropped
	// tuples match the baseline exactly.
	waitFor(t, "operator panics to exhaust", 30*time.Second, func() bool {
		return inj.Fires(fault.OpPanic, site) == chaosPanicFires
	})

	// Grow 2 -> 4 while streaming, watching /statusz for the pending
	// transition. Each migration holds pending for at least two quiesce
	// passes, so a 2ms poll observes it.
	pendingSeen := false
	m.SetDesired(4)
	waitFor(t, "grow to 4", 60*time.Second, func() bool {
		sts := scrapeStatus(t, srv.URL)
		if w := sts[0].Width; w != nil && w.Pending != "" {
			pendingSeen = true
		}
		st := m.Status()
		return st.Allocated == 4 && st.Pending == ""
	})
	if !pendingSeen {
		t.Error("/statusz never reported a pending width transition during grow")
	}

	// Shrink 4 -> 2, still streaming.
	m.SetDesired(2)
	waitFor(t, "shrink to 2", 60*time.Second, func() bool {
		st := m.Status()
		return st.Allocated == 2 && st.Pending == ""
	})

	waitSinkCount(t, sink, chaosClusterTuples-chaosPanicFires, 60*time.Second)
	resumes := streamResumes(m)
	if !m.DrainAndStop(30 * time.Second) {
		t.Fatal("migrated fleet did not drain")
	}

	if d := sink.dups.Load(); d != 0 {
		t.Fatalf("migrated sink saw %d duplicate sequences", d)
	}
	migrated := sink.output()
	if !bytes.Equal(baseline, migrated) {
		t.Fatalf("migrated output differs from unmigrated baseline: %d vs %d bytes (exactly-once broken by migration)",
			len(migrated), len(baseline))
	}

	st := m.Status()
	if st.MigrationsCompleted != 4 {
		t.Errorf("migrations completed = %d, want 4", st.MigrationsCompleted)
	}
	if st.MigrationsAborted != 0 {
		t.Errorf("migrations aborted = %d, want 0", st.MigrationsAborted)
	}

	// The run must actually have exercised the fault paths: connections
	// were killed (and recovered via resume handshakes).
	var kills uint64
	for sid := 0; sid < 8; sid++ {
		kills += inj.Fires(fault.ConnKill, sid)
	}
	if kills == 0 {
		t.Error("no connections were killed: chaos plan never fired")
	}
	if resumes == 0 {
		t.Error("no resume handshakes observed despite connection kills")
	}
}
