package cluster

import "testing"

func TestParseWidthSpec(t *testing.T) {
	cases := []struct {
		in   string
		want WidthSpec
		err  bool
	}{
		{in: "2:4", want: WidthSpec{Min: 2, Max: 4, Step: 1, Desired: 4}},
		{in: "2:8:2", want: WidthSpec{Min: 2, Max: 8, Step: 2, Desired: 8}},
		{in: "2:8:2:4", want: WidthSpec{Min: 2, Max: 8, Step: 2, Desired: 4}},
		{in: "1:1", want: WidthSpec{Min: 1, Max: 1, Step: 1, Desired: 1}},
		{in: "4:2", err: true},          // max < min
		{in: "0:4", err: true},          // min < 1
		{in: "2:5:2", err: true},        // max unreachable by step
		{in: "2:8:2:3", err: true},      // desired off the step grid
		{in: "2", err: true},            // too few fields
		{in: "2:4:1:2:9", err: true},    // too many fields
		{in: "two:4", err: true},        // not a number
	}
	for _, c := range cases {
		got, err := ParseWidthSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseWidthSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseWidthSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseWidthSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestWidthSpecClamp(t *testing.T) {
	w := WidthSpec{Min: 2, Max: 8, Step: 2, Desired: 4}
	cases := []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {7, 6}, {8, 8}, {100, 8},
	}
	for _, c := range cases {
		if got := w.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEvenRanges(t *testing.T) {
	for _, c := range []struct{ n, w int }{{6, 2}, {6, 4}, {7, 3}, {5, 5}, {10, 1}} {
		r := evenRanges(c.n, c.w)
		if len(r) != c.w {
			t.Fatalf("evenRanges(%d,%d): %d ranges", c.n, c.w, len(r))
		}
		pos := 0
		for k, rr := range r {
			if rr[0] != pos {
				t.Fatalf("evenRanges(%d,%d): range %d starts at %d, want %d", c.n, c.w, k, rr[0], pos)
			}
			if rr[1] <= rr[0] {
				t.Fatalf("evenRanges(%d,%d): empty range %d", c.n, c.w, k)
			}
			pos = rr[1]
		}
		if pos != c.n {
			t.Fatalf("evenRanges(%d,%d): covers %d slots", c.n, c.w, pos)
		}
	}
}

func TestPickSplit(t *testing.T) {
	// Most loaded splittable member wins; single-slot members are skipped.
	loads := []memberLoad{
		{idx: 0, id: 0, slots: 1, load: 100},
		{idx: 1, id: 1, slots: 3, load: 50},
		{idx: 2, id: 2, slots: 2, load: 50},
		{idx: 3, id: 3, slots: 2, load: 10},
	}
	if got := pickSplit(loads); got != 1 {
		t.Fatalf("pickSplit = %d, want 1 (load tie broken by more slots)", got)
	}
	if got := pickSplit([]memberLoad{{slots: 1}, {slots: 1}}); got != -1 {
		t.Fatalf("pickSplit on unsplittable fleet = %d, want -1", got)
	}
}

func TestPickMerge(t *testing.T) {
	loads := []memberLoad{
		{idx: 0, load: 50},
		{idx: 1, load: 5},
		{idx: 2, load: 3},
		{idx: 3, load: 40},
	}
	if got := pickMerge(loads); got != 1 {
		t.Fatalf("pickMerge = %d, want 1 (pair 1+2 has least combined load)", got)
	}
	if got := pickMerge([]memberLoad{{idx: 0}}); got != -1 {
		t.Fatalf("pickMerge on single member = %d, want -1", got)
	}
}
