package experiments

import (
	"strings"
	"testing"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

func TestFig1ShapeMatchesPaper(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("fig1 has %d series, want 4 (payload x cores)", len(r.Series))
	}
	for _, s := range r.Series {
		// Claim 1: best throughput is not at 100% dynamic.
		if s.BestSweep.PercentDynamic == 100 {
			t.Errorf("payload %d cores %d: optimum at 100%% dynamic", s.PayloadBytes, s.Cores)
		}
		// Claim 2: the framework reaches a good fraction of the best
		// hand-swept configuration automatically.
		if s.Framework.Throughput < 0.7*s.BestSweep.Throughput {
			t.Errorf("payload %d cores %d: framework %.0f < 70%% of best sweep %.0f",
				s.PayloadBytes, s.Cores, s.Framework.Throughput, s.BestSweep.Throughput)
		}
	}
	// Claim 3 (1KB payload, 88 cores): the optimum is interior, and the
	// framework clearly beats full-dynamic.
	for _, s := range r.Series {
		if s.PayloadBytes != 1024 || s.Cores != 88 {
			continue
		}
		full := s.Sweep[len(s.Sweep)-1]
		if s.BestSweep.PercentDynamic == 0 {
			t.Error("1KB/88: optimum at 0% dynamic, want interior")
		}
		if s.Framework.Throughput < 1.5*full.Throughput {
			t.Errorf("1KB/88: framework %.0f not clearly above full dynamic %.0f",
				s.Framework.Throughput, full.Throughput)
		}
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "framework (auto)") {
		t.Fatal("Fprint missing framework line")
	}
}

func TestFig6OptimizationsShortenAdaptation(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 4 {
		t.Fatalf("fig6 has %d runs, want 4", len(r.Runs))
	}
	base := r.Runs[0] // no optimizations
	for _, run := range r.Runs[1:] {
		// Optimizations must not lengthen the adaptation period...
		if run.SettleTime > base.SettleTime {
			t.Errorf("%s settles at %v, slower than no-optimizations %v",
				run.Label, run.SettleTime, base.SettleTime)
		}
		// ...and must not sacrifice converged throughput (paper: "The
		// improvement in adaptation time is achieved without sacrificing
		// throughput"; allow 15% tolerance for noise).
		if run.FinalThroughput < 0.85*base.FinalThroughput {
			t.Errorf("%s throughput %.0f sacrificed vs baseline %.0f",
				run.Label, run.FinalThroughput, base.FinalThroughput)
		}
	}
	// The full optimization set must be strictly faster than no
	// optimizations (paper: 1000s -> ~400s).
	full := r.Runs[2] // history + sf=0.6
	if full.SettleTime >= base.SettleTime {
		t.Errorf("history+sf=0.6 settle %v not faster than baseline %v",
			full.SettleTime, base.SettleTime)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "adaptation period reduced") {
		t.Fatal("Fprint missing reduction summary")
	}
	// Timeline CSV export works.
	var tl strings.Builder
	if err := r.Timeline(&tl, 0); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(tl.String()), "\n")) < 10 {
		t.Fatal("timeline export too short")
	}
	if err := r.Timeline(&tl, 99); err == nil {
		t.Fatal("timeline accepted out-of-range index")
	}
}

func TestFig9PipelineTrends(t *testing.T) {
	r, err := Fig9([]sim.Machine{sim.Xeon176()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 {
		t.Fatalf("fig9 has %d rows, want 18 (2 dists x 3 ops x 3 payloads)", len(r.Rows))
	}
	for _, row := range r.Rows {
		_, mlX := row.SpeedupVsManual()
		// Multi-level must never lose badly to manual threading ("a safe
		// default choice").
		if mlX < 0.9 {
			t.Errorf("%s %s payload %d: multi-level speedup vs manual %.2f < 0.9",
				row.Graph, row.Distribution, row.PayloadBytes, mlX)
		}
		// Multi-level at least matches thread-count elasticity.
		if row.SpeedupVsDynamic() < 0.95 {
			t.Errorf("%s %s payload %d: multi-level/dynamic %.2f < 0.95",
				row.Graph, row.Distribution, row.PayloadBytes, row.SpeedupVsDynamic())
		}
	}
	// Trend: the advantage over dynamic grows with payload (balanced
	// 1000-op pipeline).
	get := func(payload int) BenchRow {
		for _, row := range r.Rows {
			if row.Graph == "pipeline-1000" && row.Distribution == "balanced" && row.PayloadBytes == payload {
				return row
			}
		}
		t.Fatalf("row not found for payload %d", payload)
		return BenchRow{}
	}
	small, large := get(128), get(16384)
	if large.SpeedupVsDynamic() <= small.SpeedupVsDynamic() {
		t.Errorf("multi-level advantage did not grow with payload: %.2f (128B) vs %.2f (16KB)",
			small.SpeedupVsDynamic(), large.SpeedupVsDynamic())
	}
	// Trend: the dynamic-operator ratio falls as payload grows.
	if large.MultiLevel.DynamicRatio >= small.MultiLevel.DynamicRatio {
		t.Errorf("dynamic ratio did not fall with payload: %.2f (128B) vs %.2f (16KB)",
			small.MultiLevel.DynamicRatio, large.MultiLevel.DynamicRatio)
	}
	// At 16KB, thread-count elasticity alone hurts vs manual (paper Fig 9a).
	dynX, _ := large.SpeedupVsManual()
	if dynX >= 1 {
		t.Errorf("16KB full dynamic speedup vs manual = %.2f, want < 1", dynX)
	}
}

func TestFig10ContendedSinkTrend(t *testing.T) {
	r, err := Fig10(sim.Xeon176().WithCores(88))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("fig10 has %d rows, want 6", len(r.Rows))
	}
	sawDynamicLoss := false
	for _, row := range r.Rows {
		dynX, mlX := row.SpeedupVsManual()
		if dynX < 1 {
			sawDynamicLoss = true
		}
		// Multi-level must stay at or above manual (paper: "consistently
		// equal or better than manual").
		if mlX < 0.95 {
			t.Errorf("%s payload %d: multi-level %.2fx below manual", row.Graph, row.PayloadBytes, mlX)
		}
	}
	if !sawDynamicLoss {
		t.Error("thread-count elasticity never lost to manual; Fig 10's sink-contention effect missing")
	}
}

func TestFig11MixedTrends(t *testing.T) {
	r, err := Fig11(sim.Xeon176().WithCores(88))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("fig11 has %d rows, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SpeedupVsDynamic() < 0.95 {
			t.Errorf("%s payload %d: multi-level below dynamic (%.2f)",
				row.Graph, row.PayloadBytes, row.SpeedupVsDynamic())
		}
	}
	// The improvement grows with payload at fixed depth.
	var small, large BenchRow
	for _, row := range r.Rows {
		if row.Graph == "mixed-10x100" {
			switch row.PayloadBytes {
			case 128:
				small = row
			case 16384:
				large = row
			}
		}
	}
	if large.SpeedupVsDynamic() <= small.SpeedupVsDynamic() {
		t.Errorf("mixed: advantage did not grow with payload (%.2f vs %.2f)",
			small.SpeedupVsDynamic(), large.SpeedupVsDynamic())
	}
}

func TestFig12BushyTrends(t *testing.T) {
	r, err := Fig12(sim.Xeon176())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("fig12 has %d rows, want 12 (4 core counts x 3 costs)", len(r.Rows))
	}
	// Claim: when the tuple cost is low, the benefit of multi-level over
	// dynamic is high (queue overhead dominates), and it shrinks as cost
	// grows.
	gain := map[float64][]float64{}
	for _, row := range r.Rows {
		var flops float64
		switch row.Graph {
		case "bushy-82/1flops":
			flops = 1
		case "bushy-82/100flops":
			flops = 100
		case "bushy-82/10000flops":
			flops = 10000
		}
		gain[flops] = append(gain[flops], row.SpeedupVsDynamic())
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(gain[1]) <= mean(gain[10000]) {
		t.Errorf("bushy: low-cost gain %.2f not above high-cost gain %.2f",
			mean(gain[1]), mean(gain[10000]))
	}
	// Claim: multi-level uses no more threads than dynamic at convergence.
	for _, row := range r.Rows {
		if row.MultiLevel.Threads > row.Dynamic.Threads*2 {
			t.Errorf("%s cores %d: multi-level uses %d threads vs dynamic %d",
				row.Graph, row.Cores, row.MultiLevel.Threads, row.Dynamic.Threads)
		}
	}
}

func TestFig13PhaseChange(t *testing.T) {
	r, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if r.ReAdaptation <= 0 {
		t.Fatal("re-adaptation time not positive")
	}
	// Paper: re-adaptation completes in ~500s of runtime; allow generous
	// headroom but require the same order of magnitude.
	if r.ReAdaptation.Seconds() > 2000 {
		t.Errorf("re-adaptation took %.0fs, want same order as the paper's ~500s", r.ReAdaptation.Seconds())
	}
	// Paper: both threads and dynamic operators increase in response to
	// the heavier workload.
	if r.ThreadsAfter <= r.ThreadsBefore {
		t.Errorf("threads did not increase: %d -> %d", r.ThreadsBefore, r.ThreadsAfter)
	}
	if r.QueuesAfter <= r.QueuesBefore {
		t.Errorf("dynamic operators did not increase: %d -> %d", r.QueuesBefore, r.QueuesAfter)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "re-settled") {
		t.Fatal("Fprint missing re-settle line")
	}
}

func TestFig15aVWAP(t *testing.T) {
	r, err := Fig15a()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("fig15a has %d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.HandThreads != 9 {
			t.Fatalf("VWAP hand threads = %d, want 9", row.HandThreads)
		}
		// Paper: both elastic schemes beat manual clearly (>= 2x) ...
		if Speedup(row.MultiLevel, row.Manual) < 2 {
			t.Errorf("cores %d: multi-level only %.2fx manual, want >= 2x",
				row.Cores, Speedup(row.MultiLevel, row.Manual))
		}
		// ... with fewer threads than the 9 hand-inserted ones.
		if row.MultiLevel.Threads >= row.HandThreads {
			t.Errorf("cores %d: multi-level uses %d threads, hand-optimized uses %d",
				row.Cores, row.MultiLevel.Threads, row.HandThreads)
		}
		// Multi-level at least matches thread-count elasticity.
		if Speedup(row.MultiLevel, row.Dynamic) < 0.95 {
			t.Errorf("cores %d: multi-level below dynamic", row.Cores)
		}
	}
	// The multi-level advantage over dynamic is largest on 4 cores.
	adv := func(cores int) float64 {
		for _, row := range r.Rows {
			if row.Cores == cores {
				return Speedup(row.MultiLevel, row.Dynamic)
			}
		}
		return 0
	}
	if adv(4) < adv(88) {
		t.Errorf("VWAP: advantage on 4 cores (%.2f) not above 88 cores (%.2f)", adv(4), adv(88))
	}
}

func TestFig15bPacketAnalysis(t *testing.T) {
	r, err := Fig15b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("fig15b has %d rows, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper: elastic schemes approach hand-optimized throughput with
		// far fewer threads.
		if row.MultiLevel.Throughput < 0.7*row.HandOpt.Throughput {
			t.Errorf("%s: multi-level %.0f < 70%% of hand-optimized %.0f",
				row.App, row.MultiLevel.Throughput, row.HandOpt.Throughput)
		}
		if row.App == "packetanalysis-8src" {
			if row.HandThreads != 129 {
				t.Fatalf("8-source hand threads = %d, want 129", row.HandThreads)
			}
			if row.MultiLevel.Threads >= row.HandThreads/2 {
				t.Errorf("8-source: multi-level uses %d threads, want far fewer than %d",
					row.MultiLevel.Threads, row.HandThreads)
			}
		}
		// Paper: multi-level's margin over dynamic is marginal here (small
		// tuples, expensive analytics) — it must at least not lose.
		if Speedup(row.MultiLevel, row.Dynamic) < 0.9 {
			t.Errorf("%s: multi-level clearly below dynamic", row.App)
		}
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "packetanalysis") {
		t.Fatal("Fprint missing app rows")
	}
}

func TestAblationPrimaryOrderOvershoot(t *testing.T) {
	r, err := AblationPrimaryOrder()
	if err != nil {
		t.Fatal(err)
	}
	paper, rejected := r.Rows[0], r.Rows[1]
	// §3.2: the rejected order oversubscribes more during adaptation.
	if rejected.MaxThreads < paper.MaxThreads {
		t.Errorf("rejected order peaked at %d threads, paper's at %d; expected more overshoot",
			rejected.MaxThreads, paper.MaxThreads)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "primary") {
		t.Fatal("Fprint missing rows")
	}
}

func TestAblationStartDirection(t *testing.T) {
	r, err := AblationStartDirection()
	if err != nil {
		t.Fatal(err)
	}
	paper, rejected := r.Rows[0], r.Rows[1]
	// §3.2: starting from maximum parallelism is less accurate (terminates
	// early near full-dynamic) and oversubscribes.
	if rejected.Throughput > paper.Throughput*1.05 {
		t.Errorf("start-maximum (%.0f) beat start-minimum (%.0f); paper expects the opposite",
			rejected.Throughput, paper.Throughput)
	}
	if rejected.MaxThreads <= paper.MaxThreads {
		t.Errorf("start-maximum peaked at %d threads vs %d; expected more oversubscription",
			rejected.MaxThreads, paper.MaxThreads)
	}
}

func TestAblationSens(t *testing.T) {
	r, err := AblationSens()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("sens ablation has %d rows, want 4", len(r.Rows))
	}
	// The paper's 0.05 must be competitive: within 20% of the best row.
	best := 0.0
	var paperThr float64
	for _, row := range r.Rows {
		if row.Throughput > best {
			best = row.Throughput
		}
		if row.Label == "SENS=0.05" {
			paperThr = row.Throughput
		}
	}
	if paperThr < 0.8*best {
		t.Errorf("SENS=0.05 throughput %.0f < 80%% of best %.0f", paperThr, best)
	}
}

func TestAblationGrouping(t *testing.T) {
	r, err := AblationGrouping()
	if err != nil {
		t.Fatal(err)
	}
	coarse, fine := r.Rows[0], r.Rows[1]
	// O2's purpose: adjusting whole cost classes at once finds far better
	// configurations in a comparable number of observations, because
	// near-per-operator groups make the search terminate after the first
	// unhelpful single-operator group.
	if coarse.Throughput < fine.Throughput {
		t.Errorf("log binning throughput %.0f below fine binning %.0f; O2 grouping should win",
			coarse.Throughput, fine.Throughput)
	}
	if coarse.Steps > 2*fine.Steps {
		t.Errorf("log binning took %d steps vs fine binning %d; grouping should not cost much settling time",
			coarse.Steps, fine.Steps)
	}
}

func TestRunToRunVarianceIsLow(t *testing.T) {
	r, err := RunToRunVariance(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Throughputs) != 8 {
		t.Fatalf("got %d runs, want 8", len(r.Throughputs))
	}
	// §4.4: low run-to-run variance despite the arbitrary within-group
	// operator selection. Allow 15% coefficient of variation.
	if r.CV > 0.15 {
		t.Fatalf("run-to-run CV = %.1f%%, want <= 15%%; throughputs %v", 100*r.CV, r.Throughputs)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "coefficient of variation") {
		t.Fatal("Fprint missing summary")
	}
}

func TestMultiPhaseAdaptation(t *testing.T) {
	r, err := MultiPhase([]float64{0.1, 0.9, 0.1}, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 3 {
		t.Fatalf("phases = %d", len(r.Phases))
	}
	for i, p := range r.Phases {
		if !p.Detected {
			t.Fatalf("phase %d not detected", i)
		}
		if p.Throughput <= 0 {
			t.Fatalf("phase %d throughput %v", i, p.Throughput)
		}
	}
	// The heavy phase (90%) needs more resources than the light ones.
	light, heavy := r.Phases[0], r.Phases[1]
	if heavy.Threads <= light.Threads {
		t.Errorf("heavy phase threads %d not above light phase %d", heavy.Threads, light.Threads)
	}
	if heavy.Queues <= light.Queues {
		t.Errorf("heavy phase queues %d not above light phase %d", heavy.Queues, light.Queues)
	}
	// Returning to the light phase must shed threads again (SASO: no
	// overshoot under the restored workload).
	back := r.Phases[2]
	if back.Threads >= heavy.Threads {
		t.Errorf("post-heavy phase kept %d threads (heavy had %d)", back.Threads, heavy.Threads)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "Multi-phase") {
		t.Fatal("Fprint missing header")
	}
}

// TestCoordinatorRobustOnRandomGraphs runs multi-level elasticity on a
// population of random DAG topologies: it must settle on every one of them
// and never end below manual threading ("a safe default choice").
func TestCoordinatorRobustOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		wcfg := workload.DefaultConfig()
		wcfg.PayloadBytes = 512
		b, err := workload.RandomDAG(wcfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		man, err := Manual(b.Graph, sim.Xeon176().WithCores(64), 512)
		if err != nil {
			t.Fatal(err)
		}
		ml, _, err := MultiLevel(b.Graph, sim.Xeon176().WithCores(64), 512, core.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d (%d nodes): %v", seed, b.Graph.NumNodes(), err)
		}
		if ml.Throughput < 0.9*man.Throughput {
			t.Errorf("seed %d: multi-level %.0f below manual %.0f", seed, ml.Throughput, man.Throughput)
		}
	}
}

func TestWarmRestartSkipsAdaptation(t *testing.T) {
	r, err := WarmRestart()
	if err != nil {
		t.Fatal(err)
	}
	if r.WarmSettle >= r.ColdSettle/10 {
		t.Fatalf("warm settle %v not dramatically below cold %v", r.WarmSettle, r.ColdSettle)
	}
	if r.WarmThroughput < 0.9*r.ColdThroughput {
		t.Fatalf("warm throughput %.0f below cold %.0f", r.WarmThroughput, r.ColdThroughput)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "Warm restart") {
		t.Fatal("Fprint missing header")
	}
}

func TestFig5InteractionStages(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if r.FirstQueues < 0 {
		t.Fatal("threading-model elasticity never placed queues (Fig. 5b missing)")
	}
	if r.FirstThreadRaise < 0 {
		t.Fatal("thread-count elasticity never raised the pool (Fig. 5c missing)")
	}
	if r.Settled < 0 {
		t.Fatal("never stabilized (Fig. 5f missing)")
	}
	if !(r.FirstQueues < r.FirstThreadRaise && r.FirstThreadRaise < r.Settled) {
		t.Fatalf("stages out of order: queues@%d threads@%d settled@%d",
			r.FirstQueues, r.FirstThreadRaise, r.Settled)
	}
	// Throughput at stabilization clearly exceeds the start.
	if last := r.Trace[r.Settled].Throughput; last < 2*r.Trace[0].Throughput {
		t.Fatalf("settled throughput %.0f not clearly above start %.0f",
			last, r.Trace[0].Throughput)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	for _, marker := range []string{"(a) start", "(b) threading-model", "(c) thread-count", "(f) no further"} {
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("walkthrough missing %q:\n%s", marker, sb.String())
		}
	}
}
