package experiments

import (
	"fmt"
	"io"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// Fig13Result captures the workload phase-change experiment.
type Fig13Result struct {
	// FirstSettle is when the initial adaptation converged.
	FirstSettle time.Duration
	// ChangeAt is when the heavy-operator ratio jumped from 10% to 90%.
	ChangeAt time.Duration
	// ReSettle is when adaptation converged on the new workload.
	ReSettle time.Duration
	// ReAdaptation is ReSettle - ChangeAt (the paper reports ~500 s).
	ReAdaptation time.Duration
	// Before/After capture the converged configurations.
	ThreadsBefore, ThreadsAfter int
	QueuesBefore, QueuesAfter   int
	ThrBefore, ThrAfter         float64
	// Trace is the full timeline.
	Trace []core.TraceEvent
}

// Fig13 reproduces Figure 13: a 100-operator skewed pipeline adapts, then
// 20 minutes in, the share of heavy-weight operators jumps from 10% to 90%.
// The paper's claims to preserve: the change is detected, re-adaptation
// completes in minutes (paper: ~500 s), and both the thread count and the
// number of dynamic operators increase substantially (paper: threads 32 ->
// 88, dynamic operators 42 -> 86).
func Fig13() (*Fig13Result, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024
	// The feed is rate-bounded (3000 FLOPs of per-tuple ingest work), so
	// the initial workload needs only a few dozen pool threads; the phase
	// change multiplies the downstream work and drives both the thread
	// count and the queue count up, as in the paper.
	wcfg.SourceFLOPs = 3000
	b, err := workload.Pipeline(100, wcfg)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(b.Graph, sim.Xeon176().WithCores(88), sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	coord, err := core.NewCoordinator(e, cfg)
	if err != nil {
		return nil, err
	}
	if _, ok, err := coord.RunUntilSettled(maxSteps); err != nil || !ok {
		return nil, fmt.Errorf("fig13 initial settle failed: %v", err)
	}
	res := &Fig13Result{
		FirstSettle:   coord.SettleTime(),
		ThreadsBefore: e.ThreadCount(),
		QueuesBefore:  e.Queues(),
	}
	tr := coord.Trace()
	res.ThrBefore = tr[len(tr)-1].Throughput

	// Keep monitoring until the paper's 20-minute mark, then change the
	// workload: 90% heavy-weight operators.
	for e.Now() < 20*time.Minute {
		if _, err := coord.Step(); err != nil {
			return nil, err
		}
	}
	res.ChangeAt = e.Now()
	b.ApplySkew(0.9, 0.1, 2)

	// Step until the coordinator leaves the settled state and settles
	// again.
	left := false
	for i := 0; i < maxSteps; i++ {
		settled, err := coord.Step()
		if err != nil {
			return nil, err
		}
		if !settled {
			left = true
		}
		if left && settled {
			break
		}
	}
	if !left {
		return nil, fmt.Errorf("fig13: workload change was never detected")
	}
	if !coord.Settled() {
		return nil, fmt.Errorf("fig13: did not re-settle after workload change")
	}
	res.ReSettle = coord.SettleTime()
	res.ReAdaptation = res.ReSettle - res.ChangeAt
	res.ThreadsAfter = e.ThreadCount()
	res.QueuesAfter = e.Queues()
	tr = coord.Trace()
	res.ThrAfter = tr[len(tr)-1].Throughput
	res.Trace = tr
	return res, nil
}

// Fprint summarizes the phase-change adaptation.
func (r *Fig13Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: adaptation to workload phase change (100-op pipeline, heavy 10% -> 90%)")
	fmt.Fprintf(w, "initial settle:      %.0fs\n", r.FirstSettle.Seconds())
	fmt.Fprintf(w, "change injected at:  %.0fs\n", r.ChangeAt.Seconds())
	fmt.Fprintf(w, "re-settled at:       %.0fs (re-adaptation %.0fs; paper ~500s)\n",
		r.ReSettle.Seconds(), r.ReAdaptation.Seconds())
	fmt.Fprintf(w, "threads:             %d -> %d (paper: 32 -> 88)\n", r.ThreadsBefore, r.ThreadsAfter)
	fmt.Fprintf(w, "dynamic operators:   %d -> %d (paper: 42 -> 86)\n", r.QueuesBefore, r.QueuesAfter)
	fmt.Fprintf(w, "throughput:          %.0f/s -> %.0f/s\n", r.ThrBefore, r.ThrAfter)
}
