package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// AblationRow is one configuration of a design-choice ablation.
type AblationRow struct {
	// Label names the configuration.
	Label string
	// Throughput is the converged throughput.
	Throughput float64
	// Steps is the number of adaptation observations used.
	Steps int
	// MaxThreads is the largest thread count ever applied (overshoot).
	MaxThreads int
	// FinalThreads and FinalQueues describe the converged configuration.
	FinalThreads int
	FinalQueues  int
}

// AblationResult is a set of ablation rows.
type AblationResult struct {
	Name  string
	Title string
	Rows  []AblationRow
}

// Fprint renders the ablation table.
func (r *AblationResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Ablation %s: %s\n", r.Name, r.Title)
	fmt.Fprintf(w, "%-36s %-14s %-7s %-11s %-9s %s\n",
		"configuration", "throughput/s", "steps", "max-threads", "threads", "queues")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-36s %-14.0f %-7d %-11d %-9d %d\n",
			row.Label, row.Throughput, row.Steps, row.MaxThreads, row.FinalThreads, row.FinalQueues)
	}
}

// maxThreadTracker wraps an engine to record the largest thread count ever
// applied, the overshoot metric of §3.2.
type maxThreadTracker struct {
	core.Engine
	max int
}

func (m *maxThreadTracker) SetThreadCount(n int) error {
	if err := m.Engine.SetThreadCount(n); err != nil {
		return err
	}
	if n > m.max {
		m.max = n
	}
	return nil
}

// ablationWorkload builds the common ablation workload: a 500-operator
// skewed pipeline with 1 KB tuples on 88 cores.
func ablationWorkload() (*workload.Build, sim.Machine, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024
	b, err := workload.Pipeline(500, wcfg)
	return b, sim.Xeon176().WithCores(88), err
}

// AblationPrimaryOrder compares the paper's chosen coordination order
// (thread count primary, threading model secondary) against the rejected
// alternative (threading model primary with thread count re-tuned inside
// each round). The paper's §3.2 rationale to verify: the rejected order
// repeatedly drives the thread count up to the point of degradation,
// oversubscribing the system during adaptation.
func AblationPrimaryOrder() (*AblationResult, error) {
	b, m, err := ablationWorkload()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "primary-order", Title: "which elastic component is primary (§3.2)"}
	cfg := core.DefaultConfig()

	// (1) Paper's choice: thread count primary.
	e, err := sim.New(b.Graph, m, sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	tracker := &maxThreadTracker{Engine: e}
	coord, err := core.NewCoordinator(tracker, cfg)
	if err != nil {
		return nil, err
	}
	steps, ok, err := coord.RunUntilSettled(maxSteps)
	if err != nil || !ok {
		return nil, fmt.Errorf("primary-order baseline: %v", err)
	}
	tr := coord.Trace()
	res.Rows = append(res.Rows, AblationRow{
		Label:        "thread count primary (paper)",
		Throughput:   tr[len(tr)-1].Throughput,
		Steps:        steps,
		MaxThreads:   tracker.max,
		FinalThreads: e.ThreadCount(),
		FinalQueues:  e.Queues(),
	})

	// (2) Rejected: threading model primary, thread count in the inner
	// loop. Each round adjusts the placement once, then fully re-explores
	// the thread count.
	e2, err := sim.New(b.Graph, m, sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	tracker2 := &maxThreadTracker{Engine: e2}
	totalSteps := 0
	prevThr := 0.0
	var lastThr float64
	for round := 0; round < 12; round++ {
		thr, _, n, err := core.TuneThreadingModel(tracker2, core.DirUp, cfg, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("primary-order swapped, tm round %d: %w", round, err)
		}
		totalSteps += n
		thr, n, err = core.TuneThreadCount(tracker2, cfg, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("primary-order swapped, tc round %d: %w", round, err)
		}
		totalSteps += n
		lastThr = thr
		if prevThr > 0 && thr < prevThr*(1+cfg.Sens) {
			break
		}
		prevThr = thr
	}
	res.Rows = append(res.Rows, AblationRow{
		Label:        "threading model primary (rejected)",
		Throughput:   lastThr,
		Steps:        totalSteps,
		MaxThreads:   tracker2.max,
		FinalThreads: e2.ThreadCount(),
		FinalQueues:  e2.Queues(),
	})
	return res, nil
}

// AblationStartDirection compares starting from minimum parallelism (the
// paper's choice) with starting from maximum parallelism (every operator
// dynamic, maximum threads) and exploring downwards. The paper's §3.2
// rationale to verify: starting at maximum parallelism, removing queues
// from the cheapest operators moves throughput by less than the noise
// floor, so the downward search terminates early at a worse configuration.
func AblationStartDirection() (*AblationResult, error) {
	b, m, err := ablationWorkload()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "start-direction", Title: "adjustment direction (§3.2)"}
	cfg := core.DefaultConfig()

	ml, _, err := MultiLevel(b.Graph, m, 1024, cfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Label:        "start minimum, explore up (paper)",
		Throughput:   ml.Throughput,
		Steps:        ml.Steps,
		MaxThreads:   ml.Threads,
		FinalThreads: ml.Threads,
		FinalQueues:  ml.Queues,
	})

	// Start from full parallelism and explore down.
	e, err := sim.New(b.Graph, m, sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	if err := e.ApplyPlacement(allDynamic(b.Graph)); err != nil {
		return nil, err
	}
	if err := e.SetThreadCount(e.MaxThreads()); err != nil {
		return nil, err
	}
	tracker := &maxThreadTracker{Engine: e, max: e.MaxThreads()}
	steps := 0
	_, _, n, err := core.TuneThreadingModel(tracker, core.DirDown, cfg, maxSteps)
	if err != nil {
		return nil, err
	}
	steps += n
	thr, n, err := core.TuneThreadCount(tracker, cfg, maxSteps)
	if err != nil {
		return nil, err
	}
	steps += n
	res.Rows = append(res.Rows, AblationRow{
		Label:        "start maximum, explore down",
		Throughput:   thr,
		Steps:        steps,
		MaxThreads:   tracker.max,
		FinalThreads: e.ThreadCount(),
		FinalQueues:  e.Queues(),
	})
	return res, nil
}

// AblationSens sweeps the sensitivity threshold SENS (§3.1.1, paper value
// 0.05): too small chases noise, too large stops exploration early.
func AblationSens() (*AblationResult, error) {
	b, m, err := ablationWorkload()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "sens", Title: "sensitivity threshold SENS (§3.1.1)"}
	for _, sens := range []float64{0.01, 0.05, 0.10, 0.20} {
		cfg := core.DefaultConfig()
		cfg.Sens = sens
		ml, _, err := MultiLevel(b.Graph, m, 1024, cfg)
		if err != nil {
			return nil, fmt.Errorf("sens %v: %w", sens, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:        fmt.Sprintf("SENS=%.2f", sens),
			Throughput:   ml.Throughput,
			Steps:        ml.Steps,
			MaxThreads:   ml.Threads,
			FinalThreads: ml.Threads,
			FinalQueues:  ml.Queues,
		})
	}
	return res, nil
}

// AblationGrouping compares the paper's logarithmic cost binning (O2)
// against near-per-operator binning. Group-level adjustment is what makes
// settling time logarithmic in the group size instead of linear in the
// operator count. The workload spreads operator costs continuously (a
// jittered skew) so that fine binning genuinely produces many more groups.
func AblationGrouping() (*AblationResult, error) {
	b, m, err := ablationWorkload()
	if err != nil {
		return nil, err
	}
	// Spread each operator's cost by a deterministic factor in [0.5, 2.0]
	// so costs are continuous rather than three exact classes.
	rng := rand.New(rand.NewSource(7))
	for _, cv := range b.WorkCosts {
		cv.Set(cv.FLOPs() * (0.5 + 1.5*rng.Float64()))
	}
	res := &AblationResult{Name: "grouping", Title: "logarithmic cost binning (O2)"}
	for _, g := range []struct {
		label string
		base  float64
	}{
		{"log10 binning (paper)", 10},
		{"fine binning (base 1.05)", 1.05},
	} {
		cfg := core.DefaultConfig()
		cfg.GroupBase = g.base
		ml, _, err := MultiLevel(b.Graph, m, 1024, cfg)
		if err != nil {
			return nil, fmt.Errorf("grouping %s: %w", g.label, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:        g.label,
			Throughput:   ml.Throughput,
			Steps:        ml.Steps,
			MaxThreads:   ml.Threads,
			FinalThreads: ml.Threads,
			FinalQueues:  ml.Queues,
		})
	}
	return res, nil
}
