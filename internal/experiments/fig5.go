package experiments

import (
	"fmt"
	"io"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// Fig5Result captures the multi-level interaction walkthrough: the full
// adaptation trace of a small pipeline plus the indices of the stages the
// paper's Fig. 5 illustrates.
type Fig5Result struct {
	// Trace is the full adaptation trace.
	Trace []core.TraceEvent
	// FirstQueues is the index of the first observation after the initial
	// threading-model exploration placed queues (Fig. 5b).
	FirstQueues int
	// FirstThreadRaise is the index of the first thread-count increase
	// (Fig. 5c).
	FirstThreadRaise int
	// LaterQueueChange is the index of a subsequent threading-model
	// adjustment after threads grew (Fig. 5d), or -1.
	LaterQueueChange int
	// Settled is the index of the stabilization event (Fig. 5f).
	Settled int
}

// Fig5 reproduces the staged interaction of the paper's Fig. 5 on a small
// pipeline: (a) start with idle scheduler threads and no queues, (b)
// threading-model elasticity places the first queues, (c) thread-count
// elasticity raises the pool, (d) another threading-model round adjusts the
// placement for the larger pool, (e-f) exploration finds no further
// improvement, reverts, and stabilizes.
func Fig5() (*Fig5Result, error) {
	wcfg := workload.DefaultConfig()
	wcfg.PayloadBytes = 256
	wcfg.BalancedFLOPs = 5000
	b, err := workload.Pipeline(10, wcfg)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(b.Graph, sim.Xeon176().WithCores(16), sim.WithPayload(256))
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(e, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, ok, err := coord.RunUntilSettled(maxSteps); err != nil || !ok {
		return nil, fmt.Errorf("fig5: settle failed: %v", err)
	}
	tr := coord.Trace()
	res := &Fig5Result{Trace: tr, FirstQueues: -1, FirstThreadRaise: -1, LaterQueueChange: -1, Settled: -1}
	startThreads := tr[0].Threads
	for i, ev := range tr {
		if res.FirstQueues < 0 && ev.Queues > 0 {
			res.FirstQueues = i
		}
		if res.FirstThreadRaise < 0 && ev.Threads > startThreads {
			res.FirstThreadRaise = i
		}
		if res.FirstThreadRaise >= 0 && i > res.FirstThreadRaise &&
			res.LaterQueueChange < 0 && ev.Phase == core.PhaseTM {
			res.LaterQueueChange = i
		}
		if res.Settled < 0 && ev.Phase == core.PhaseSettled {
			res.Settled = i
		}
	}
	return res, nil
}

// Fprint writes the annotated walkthrough.
func (r *Fig5Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 walkthrough: multi-level elasticity interaction (10-op pipeline, 16 cores)")
	stage := func(i int) string {
		switch {
		case i == r.FirstQueues:
			return " <- (b) threading-model elasticity places the first queues"
		case i == r.FirstThreadRaise:
			return " <- (c) thread-count elasticity raises the pool"
		case i == r.LaterQueueChange:
			return " <- (d) the placement is re-explored for the larger pool"
		case i == r.Settled:
			return " <- (f) no further improvement: revert and stabilize"
		default:
			return ""
		}
	}
	// Stage (a) is the starting state before the first observation: no
	// queues, minimum (idle) scheduler threads.
	fmt.Fprintln(w, "  -  (a) start: no queues, idle scheduler threads")
	for i, ev := range r.Trace {
		fmt.Fprintf(w, "%3d  t=%5.0fs thr=%9.0f T=%3d Q=%2d [%s]%s\n",
			i, ev.Time.Seconds(), ev.Throughput, ev.Threads, ev.Queues, ev.Phase, stage(i))
		if i > r.Settled && r.Settled >= 0 {
			break
		}
	}
}
