package experiments

import (
	"fmt"
	"io"
	"math"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// VarianceResult quantifies run-to-run variance of multi-level elasticity
// across seeds. The paper's §4.4 claim: "Low run-to-run variance suggests
// that the multi-level elasticity solution provides stability", with the
// arbitrary within-group operator selection (§3.1.1) incurring "negligible
// disturbance".
type VarianceResult struct {
	// Throughputs holds the converged throughput of every seeded run.
	Throughputs []float64
	// Mean and CV summarize them (CV = stddev/mean).
	Mean float64
	CV   float64
	// SettleSteps holds each run's observation count.
	SettleSteps []int
}

// RunToRunVariance runs multi-level elasticity on the Fig. 6 workload with
// seeds distinct seeds, varying both the noise stream and the arbitrary
// within-group operator subsets.
func RunToRunVariance(seeds int) (*VarianceResult, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024
	b, err := workload.Pipeline(500, wcfg)
	if err != nil {
		return nil, err
	}
	res := &VarianceResult{}
	for s := 1; s <= seeds; s++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(s)
		e, err := sim.New(b.Graph, sim.Xeon176().WithCores(88),
			sim.WithPayload(1024), sim.WithSeed(uint64(s)))
		if err != nil {
			return nil, err
		}
		coord, err := core.NewCoordinator(e, cfg)
		if err != nil {
			return nil, err
		}
		steps, ok, err := coord.RunUntilSettled(maxSteps)
		if err != nil || !ok {
			return nil, fmt.Errorf("variance seed %d: settle failed: %v", s, err)
		}
		tr := coord.Trace()
		res.Throughputs = append(res.Throughputs, tr[len(tr)-1].Throughput)
		res.SettleSteps = append(res.SettleSteps, steps)
	}
	sum := 0.0
	for _, v := range res.Throughputs {
		sum += v
	}
	res.Mean = sum / float64(len(res.Throughputs))
	varSum := 0.0
	for _, v := range res.Throughputs {
		d := v - res.Mean
		varSum += d * d
	}
	if res.Mean > 0 {
		res.CV = math.Sqrt(varSum/float64(len(res.Throughputs))) / res.Mean
	}
	return res, nil
}

// Fprint renders the variance summary.
func (r *VarianceResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Run-to-run variance (500-op skewed pipeline, multi-level elasticity, distinct seeds)")
	for i, thr := range r.Throughputs {
		fmt.Fprintf(w, "  seed %2d: %.0f/s in %d steps\n", i+1, thr, r.SettleSteps[i])
	}
	fmt.Fprintf(w, "mean %.0f/s, coefficient of variation %.1f%% (paper: \"little run-to-run variance\")\n",
		r.Mean, 100*r.CV)
}
