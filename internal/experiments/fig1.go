package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"streamelastic/internal/core"
	"streamelastic/internal/graph"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// Fig1Point is one point of the percent-dynamic sweep.
type Fig1Point struct {
	// PercentDynamic is the fraction of operators under the dynamic model,
	// 0-100.
	PercentDynamic int
	// Throughput is the settled throughput with elastically tuned threads.
	Throughput float64
	// Threads is the tuned thread count.
	Threads int
}

// Fig1Series is one configuration's sweep plus the framework's automatic
// result, mirroring one black line and its blue overlay in Fig. 1.
type Fig1Series struct {
	// PayloadBytes and Cores identify the configuration.
	PayloadBytes int
	Cores        int
	// Sweep holds the fixed-placement points (the black line).
	Sweep []Fig1Point
	// Framework is the multi-level elasticity result (the blue line).
	Framework Variant
	// BestSweep is the best fixed-placement point found.
	BestSweep Fig1Point
}

// Fig1Result is the full Fig. 1 reproduction.
type Fig1Result struct {
	Series []Fig1Series
}

// Fig1 reproduces Figure 1: a 100-operator pipeline with 100 FLOPs/tuple,
// payloads of 1 B and 1 KB, on 16 and 88 cores. The sweep varies the
// percentage of operators using the dynamic threading model (placed at
// seeded-random positions, thread count tuned elastically per point); the
// framework line is full multi-level elasticity. The paper's takeaways,
// which this reproduction must preserve: the best throughput is not at
// 100% dynamic, the optimum moves with payload and cores, and the
// framework lands near the best sweep point automatically.
func Fig1() (*Fig1Result, error) {
	res := &Fig1Result{}
	cfg := core.DefaultConfig()
	for _, payload := range []int{1, 1024} {
		for _, cores := range []int{16, 88} {
			wcfg := workload.DefaultConfig()
			wcfg.PayloadBytes = payload
			b, err := workload.Pipeline(100, wcfg)
			if err != nil {
				return nil, err
			}
			m := sim.Xeon176().WithCores(cores)
			s := Fig1Series{PayloadBytes: payload, Cores: cores}
			for pct := 0; pct <= 100; pct += 10 {
				pt, err := fig1Point(b.Graph, m, payload, pct, cfg)
				if err != nil {
					return nil, err
				}
				s.Sweep = append(s.Sweep, pt)
				if pt.Throughput > s.BestSweep.Throughput {
					s.BestSweep = pt
				}
			}
			ml, _, err := MultiLevel(b.Graph, m, payload, cfg)
			if err != nil {
				return nil, err
			}
			s.Framework = ml
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// fig1Point evaluates one fixed percent-dynamic placement with elastic
// thread tuning.
func fig1Point(g *graph.Graph, m sim.Machine, payload, pct int, cfg core.Config) (Fig1Point, error) {
	e, err := sim.New(g, m, sim.WithPayload(payload))
	if err != nil {
		return Fig1Point{}, err
	}
	place := make([]bool, g.NumNodes())
	var candidates []int
	for i := 0; i < g.NumNodes(); i++ {
		if !g.Node(graph.NodeID(i)).Source {
			candidates = append(candidates, i)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	k := pct * len(candidates) / 100
	for _, op := range candidates[:k] {
		place[op] = true
	}
	if err := e.ApplyPlacement(place); err != nil {
		return Fig1Point{}, err
	}
	var thr float64
	if k == 0 {
		// No queues: scheduler threads are idle, no tuning needed.
		thr = e.Throughput()
	} else {
		thr, _, err = core.TuneThreadCount(e, cfg, maxSteps)
		if err != nil {
			return Fig1Point{}, err
		}
	}
	return Fig1Point{PercentDynamic: pct, Throughput: thr, Threads: e.ThreadCount()}, nil
}

// Fprint writes the result as the paper's series.
func (r *Fig1Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: 100-op pipeline, throughput vs %% operators dynamic")
	for _, s := range r.Series {
		fmt.Fprintf(w, "\npayload %dB, %d cores:\n", s.PayloadBytes, s.Cores)
		fmt.Fprintf(w, "  %-10s %-14s %s\n", "%dynamic", "throughput/s", "threads")
		for _, p := range s.Sweep {
			fmt.Fprintf(w, "  %-10d %-14.0f %d\n", p.PercentDynamic, p.Throughput, p.Threads)
		}
		fmt.Fprintf(w, "  best sweep point: %d%% dynamic at %.0f/s\n",
			s.BestSweep.PercentDynamic, s.BestSweep.Throughput)
		fmt.Fprintf(w, "  framework (auto): %.0f/s with %d queues, %d threads (%.0f%% of best)\n",
			s.Framework.Throughput, s.Framework.Queues, s.Framework.Threads,
			100*s.Framework.Throughput/s.BestSweep.Throughput)
	}
}
