package experiments

import (
	"fmt"
	"io"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// BenchRow is one configuration of a benchmark-graph comparison: the three
// scheduling variants on one (graph, payload, machine, distribution) cell.
type BenchRow struct {
	// Graph describes the topology ("pipeline-500", "bushy-82", ...).
	Graph string
	// Machine is the modeled machine name.
	Machine string
	// Distribution is "balanced" or "skewed".
	Distribution string
	// PayloadBytes is the tuple payload.
	PayloadBytes int
	// Cores available on the machine.
	Cores int
	// Manual, Dynamic and MultiLevel are the variant outcomes.
	Manual     Variant
	Dynamic    Variant
	MultiLevel Variant
}

// SpeedupVsManual returns (dynamic, multilevel) speedups over manual, the
// paper's left y-axis.
func (r BenchRow) SpeedupVsManual() (float64, float64) {
	return Speedup(r.Dynamic, r.Manual), Speedup(r.MultiLevel, r.Manual)
}

// SpeedupVsDynamic is the number printed on top of the paper's black bars.
func (r BenchRow) SpeedupVsDynamic() float64 {
	return Speedup(r.MultiLevel, r.Dynamic)
}

// BenchResult is a set of rows for one figure.
type BenchResult struct {
	Figure string
	Title  string
	Rows   []BenchRow
}

// runRow evaluates the three variants on one built graph.
func runRow(b *workload.Build, m sim.Machine, payload int, dist string) (BenchRow, error) {
	cfg := core.DefaultConfig()
	man, err := Manual(b.Graph, m, payload)
	if err != nil {
		return BenchRow{}, err
	}
	dyn, err := Dynamic(b.Graph, m, payload, cfg)
	if err != nil {
		return BenchRow{}, err
	}
	ml, _, err := MultiLevel(b.Graph, m, payload, cfg)
	if err != nil {
		return BenchRow{}, err
	}
	return BenchRow{
		Graph:        b.Name,
		Machine:      m.Name,
		Distribution: dist,
		PayloadBytes: payload,
		Cores:        m.Cores,
		Manual:       man,
		Dynamic:      dyn,
		MultiLevel:   ml,
	}, nil
}

// Fig9 reproduces Figure 9: pipeline graphs with 100/500/1000 operators,
// payloads 128/1024/16384 B, balanced and skewed distributions, on both
// modeled machines. Trends to preserve: multi-level >= both baselines
// everywhere; its advantage over dynamic grows with payload and operator
// count; the dynamic-operator ratio falls as payload grows.
func Fig9(machines []sim.Machine) (*BenchResult, error) {
	res := &BenchResult{Figure: "fig9", Title: "pipeline graphs"}
	for _, m := range machines {
		for _, dist := range []string{"balanced", "skewed"} {
			for _, ops := range []int{100, 500, 1000} {
				for _, payload := range []int{128, 1024, 16384} {
					wcfg := workload.DefaultConfig()
					wcfg.PayloadBytes = payload
					wcfg.Skewed = dist == "skewed"
					b, err := workload.Pipeline(ops, wcfg)
					if err != nil {
						return nil, err
					}
					row, err := runRow(b, m, payload, dist)
					if err != nil {
						return nil, fmt.Errorf("fig9 %s/%s/%d/%d: %w", m.Name, dist, ops, payload, err)
					}
					res.Rows = append(res.Rows, row)
				}
			}
		}
	}
	return res, nil
}

// Fig10 reproduces Figure 10: pure data-parallel graphs of width 50 and
// 100 whose sink serializes on a lock. Trend to preserve: thread-count
// elasticity alone (full dynamic) can fall below manual threading because
// of sink contention, while multi-level stays at or above manual.
func Fig10(m sim.Machine) (*BenchResult, error) {
	res := &BenchResult{Figure: "fig10", Title: "pure data-parallel graphs"}
	for _, width := range []int{50, 100} {
		for _, payload := range []int{128, 1024, 16384} {
			wcfg := workload.DefaultConfig()
			wcfg.PayloadBytes = payload
			b, err := workload.DataParallel(width, wcfg)
			if err != nil {
				return nil, err
			}
			row, err := runRow(b, m, payload, "balanced")
			if err != nil {
				return nil, fmt.Errorf("fig10 %d/%d: %w", width, payload, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig11 reproduces Figure 11: graphs mixing data and pipeline parallelism
// (width 10, depth 50 and 100). Trends match Fig. 9: the multi-level
// advantage and the manual fraction both grow with operator count and
// payload.
func Fig11(m sim.Machine) (*BenchResult, error) {
	res := &BenchResult{Figure: "fig11", Title: "mixed pipeline/data-parallel graphs"}
	for _, depth := range []int{50, 100} {
		for _, payload := range []int{128, 1024, 16384} {
			wcfg := workload.DefaultConfig()
			wcfg.PayloadBytes = payload
			b, err := workload.Mixed(10, depth, wcfg)
			if err != nil {
				return nil, err
			}
			row, err := runRow(b, m, payload, "balanced")
			if err != nil {
				return nil, fmt.Errorf("fig11 %d/%d: %w", depth, payload, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig12 reproduces Figure 12: the 82-operator bushy tree with 16 to 88
// cores and per-tuple costs of 1, 100 and 10000 FLOPs (balanced). Trends
// to preserve: multi-level adapts to the available cores, its advantage
// over dynamic is largest at low tuple cost (queue overhead dominates),
// and it uses fewer threads.
func Fig12(base sim.Machine) (*BenchResult, error) {
	res := &BenchResult{Figure: "fig12", Title: "bushy graphs (82 operators)"}
	for _, cores := range []int{16, 32, 64, 88} {
		for _, flops := range []float64{1, 100, 10000} {
			wcfg := workload.DefaultConfig()
			wcfg.PayloadBytes = 16384
			wcfg.BalancedFLOPs = flops
			b, err := workload.Bushy(wcfg)
			if err != nil {
				return nil, err
			}
			b.Name = fmt.Sprintf("bushy-82/%.0fflops", flops)
			row, err := runRow(b, base.WithCores(cores), 16384, "balanced")
			if err != nil {
				return nil, fmt.Errorf("fig12 %d/%v: %w", cores, flops, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fprint renders the rows the way the paper's bar charts read: speedups
// over manual threading plus the dynamic-operator ratio.
func (r *BenchResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", r.Figure, r.Title)
	fmt.Fprintf(w, "%-22s %-11s %-9s %-8s %-7s %-9s %-9s %-9s %-9s %-8s %s\n",
		"graph", "machine", "dist", "payload", "cores",
		"manual/s", "dyn-x", "ml-x", "ml/dyn-x", "dynratio", "ml-threads")
	for _, row := range r.Rows {
		dynX, mlX := row.SpeedupVsManual()
		fmt.Fprintf(w, "%-22s %-11s %-9s %-8d %-7d %-9.0f %-9.2f %-9.2f %-9.2f %-8.2f %d\n",
			row.Graph, row.Machine, row.Distribution, row.PayloadBytes, row.Cores,
			row.Manual.Throughput, dynX, mlX, row.SpeedupVsDynamic(),
			row.MultiLevel.DynamicRatio, row.MultiLevel.Threads)
	}
}
