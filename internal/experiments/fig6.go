package experiments

import (
	"fmt"
	"io"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// Fig6Run is one optimization configuration's adaptation run.
type Fig6Run struct {
	// Label names the optimization set, matching the paper's subfigures.
	Label string
	// UseHistory and SatisfactionThreshold describe the configuration;
	// Satisfaction reports whether the satisfaction factor was enabled.
	UseHistory   bool
	Satisfaction bool
	Threshold    float64
	// SettleTime is the virtual time to convergence.
	SettleTime time.Duration
	// FinalThroughput is the settled throughput.
	FinalThroughput float64
	// TMRuns and TMSkipped count secondary explorations run and skipped.
	TMRuns    int
	TMSkipped int
	// Trace is the full adaptation timeline for plotting.
	Trace []core.TraceEvent
}

// Fig6Result is the full Fig. 6 reproduction.
type Fig6Result struct {
	Runs []Fig6Run
}

// Fig6 reproduces Figure 6: a 500-operator pipeline with skewed costs
// (10,000 / 100 / 1 FLOPs) and 1024 B tuples, adapted under four
// optimization sets: (a) no optimizations, (b) learning from history,
// (c) history + satisfaction factor 0.6, (d) history + satisfaction factor
// 0. The paper's claim to preserve: the optimizations cut the adaptation
// period substantially (1000 s -> ~400 s) without sacrificing converged
// throughput.
func Fig6() (*Fig6Result, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024

	type setup struct {
		label   string
		history bool
		sat     bool
		thre    float64
	}
	setups := []setup{
		{"(a) no optimizations", false, false, 0},
		{"(b) history", true, false, 0},
		{"(c) history + sf=0.6", true, true, 0.6},
		{"(d) history + sf=0", true, true, 0},
	}

	res := &Fig6Result{}
	for _, s := range setups {
		b, err := workload.Pipeline(500, wcfg)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.UseHistory = s.history
		cfg.UseSatisfaction = s.sat
		cfg.SatisfactionThreshold = s.thre

		e, err := sim.New(b.Graph, sim.Xeon176().WithCores(176), sim.WithPayload(1024))
		if err != nil {
			return nil, err
		}
		coord, err := core.NewCoordinator(e, cfg)
		if err != nil {
			return nil, err
		}
		if _, ok, err := coord.RunUntilSettled(maxSteps); err != nil || !ok {
			return nil, fmt.Errorf("fig6 %s: settle failed: %v", s.label, err)
		}
		tr := coord.Trace()
		stats := coord.Stats()
		res.Runs = append(res.Runs, Fig6Run{
			Label:           s.label,
			UseHistory:      s.history,
			Satisfaction:    s.sat,
			Threshold:       s.thre,
			SettleTime:      coord.SettleTime(),
			FinalThroughput: tr[len(tr)-1].Throughput,
			TMRuns:          stats.TMRuns,
			TMSkipped:       stats.TMRunsSkipped,
			Trace:           tr,
		})
	}
	return res, nil
}

// Fprint writes the settling-time comparison and a compact timeline per
// run.
func (r *Fig6Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: adaptation-period optimizations (500-op skewed pipeline, 1KB tuples)")
	fmt.Fprintf(w, "%-24s %-12s %-14s %-8s %s\n", "configuration", "settle(s)", "final thr/s", "tm-runs", "tm-skipped")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-24s %-12.0f %-14.0f %-8d %d\n",
			run.Label, run.SettleTime.Seconds(), run.FinalThroughput, run.TMRuns, run.TMSkipped)
	}
	base := r.Runs[0].SettleTime.Seconds()
	best := r.Runs[len(r.Runs)-1].SettleTime.Seconds()
	if base > 0 {
		fmt.Fprintf(w, "adaptation period reduced by %.0f%% (paper: 1000s -> ~400s, 60%%)\n",
			100*(1-best/base))
	}
}

// Timeline writes one run's trace as a CSV (time, throughput, threads,
// queues) for plotting, matching the axes of the paper's subfigures.
func (r *Fig6Result) Timeline(w io.Writer, idx int) error {
	if idx < 0 || idx >= len(r.Runs) {
		return fmt.Errorf("fig6: run index %d out of range", idx)
	}
	for _, e := range r.Runs[idx].Trace {
		if _, err := fmt.Fprintf(w, "%.0f,%.0f,%d,%d\n",
			e.Time.Seconds(), e.Throughput, e.Threads, e.Queues); err != nil {
			return err
		}
	}
	return nil
}
