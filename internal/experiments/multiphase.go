package experiments

import (
	"fmt"
	"io"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// PhaseOutcome records adaptation across one workload phase.
type PhaseOutcome struct {
	// HeavyRatio is the phase's share of heavy-weight operators.
	HeavyRatio float64
	// Detected reports whether the coordinator left the settled state
	// (always true for the first phase, which starts unsettled).
	Detected bool
	// SettleTime is when the phase's adaptation converged.
	SettleTime time.Duration
	// ReAdaptation is the time from phase start to convergence.
	ReAdaptation time.Duration
	// Threads, Queues and Throughput describe the converged configuration.
	Threads    int
	Queues     int
	Throughput float64
}

// MultiPhaseResult is the outcome of a scripted multi-phase workload.
type MultiPhaseResult struct {
	Phases []PhaseOutcome
}

// MultiPhase extends the paper's Fig. 13 single phase change to a scripted
// sequence of workload phases (heavy-operator ratios), verifying that the
// coordinator re-adapts to each: detection, re-settling, and configurations
// that track the workload's weight. This is the "varying workload"
// robustness the paper's SASO framing promises but only evaluates for one
// transition.
func MultiPhase(heavyRatios []float64, phaseLength time.Duration) (*MultiPhaseResult, error) {
	if len(heavyRatios) == 0 {
		return nil, fmt.Errorf("multiphase: no phases")
	}
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024
	wcfg.SourceFLOPs = 3000
	b, err := workload.Pipeline(100, wcfg)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(b.Graph, sim.Xeon176().WithCores(88), sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(e, core.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &MultiPhaseResult{}
	for i, ratio := range heavyRatios {
		phaseStart := e.Now()
		b.ApplySkew(ratio, 0.3*(1-ratio), int64(i+2))
		out := PhaseOutcome{HeavyRatio: ratio, Detected: i == 0}

		// Step until the coordinator (re-)settles within this phase.
		settledNow := false
		for step := 0; step < maxSteps; step++ {
			settled, err := coord.Step()
			if err != nil {
				return nil, err
			}
			if !settled {
				out.Detected = true
			}
			if out.Detected && settled {
				settledNow = true
				break
			}
			if e.Now()-phaseStart > phaseLength {
				break
			}
		}
		if !settledNow {
			return nil, fmt.Errorf("multiphase: phase %d (ratio %.0f%%) did not re-settle within %v",
				i, 100*ratio, phaseLength)
		}
		out.SettleTime = coord.SettleTime()
		out.ReAdaptation = out.SettleTime - phaseStart
		out.Threads = e.ThreadCount()
		out.Queues = e.Queues()
		tr := coord.Trace()
		out.Throughput = tr[len(tr)-1].Throughput

		// Dwell in the settled state for a few periods before the next
		// phase, as a real workload would.
		for k := 0; k < 5; k++ {
			if _, err := coord.Step(); err != nil {
				return nil, err
			}
		}
		res.Phases = append(res.Phases, out)
	}
	return res, nil
}

// Fprint renders the per-phase adaptation table.
func (r *MultiPhaseResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Multi-phase workload adaptation (extension of Fig. 13)")
	fmt.Fprintf(w, "%-8s %-10s %-14s %-9s %-8s %s\n",
		"phase", "heavy%", "re-adapt(s)", "threads", "queues", "throughput/s")
	for i, p := range r.Phases {
		fmt.Fprintf(w, "%-8d %-10.0f %-14.0f %-9d %-8d %.0f\n",
			i+1, 100*p.HeavyRatio, p.ReAdaptation.Seconds(), p.Threads, p.Queues, p.Throughput)
	}
}
