package experiments

import (
	"fmt"
	"io"

	"streamelastic/internal/apps"
	"streamelastic/internal/core"
	"streamelastic/internal/sim"
)

// AppRow compares the four scheduling variants on one application
// configuration, as in Fig. 15.
type AppRow struct {
	// App names the application; Cores the machine size.
	App   string
	Cores int
	// Manual, HandOpt, Dynamic, MultiLevel are the variants of Fig. 15:
	// no threads, developer-inserted threaded ports, thread-count
	// elasticity alone, and multi-level elasticity.
	Manual     Variant
	HandOpt    Variant
	Dynamic    Variant
	MultiLevel Variant
	// HandThreads is the developer-inserted thread count (9 for VWAP,
	// 17/129 for PacketAnalysis).
	HandThreads int
}

// Fig15Result is the application evaluation.
type Fig15Result struct {
	Rows []AppRow
}

// appRow runs all four variants on one application.
func appRow(a *apps.App, m sim.Machine, payload int) (AppRow, error) {
	cfg := core.DefaultConfig()
	man, err := Manual(a.Graph, m, payload)
	if err != nil {
		return AppRow{}, err
	}
	hand, err := HandOptimized(a.Graph, m, payload, a.HandPlacement)
	if err != nil {
		return AppRow{}, err
	}
	dyn, err := Dynamic(a.Graph, m, payload, cfg)
	if err != nil {
		return AppRow{}, err
	}
	ml, _, err := MultiLevel(a.Graph, m, payload, cfg)
	if err != nil {
		return AppRow{}, err
	}
	return AppRow{
		App:         a.Name,
		Cores:       m.Cores,
		Manual:      man,
		HandOpt:     hand,
		Dynamic:     dyn,
		MultiLevel:  ml,
		HandThreads: a.HandThreads,
	}, nil
}

// Fig15a reproduces the VWAP evaluation (Fig. 15a): 52 operators on 4, 16
// and 88 cores. Claims to preserve: both elastic schemes reach at least
// the hand-optimized throughput with far fewer threads (paper: 3 vs 9
// hand-inserted), and multi-level's extra benefit over thread-count
// elasticity is largest when resources are scarce (4 cores).
func Fig15a() (*Fig15Result, error) {
	res := &Fig15Result{}
	for _, cores := range []int{4, 16, 88} {
		a, err := apps.VWAP()
		if err != nil {
			return nil, err
		}
		row, err := appRow(a, sim.Xeon176().WithCores(cores), 128)
		if err != nil {
			return nil, fmt.Errorf("fig15a %d cores: %w", cores, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig15b reproduces the PacketAnalysis evaluation (Fig. 15b): the
// 1-source (387 operators, 17 hand threads) and 8-source (2305 operators,
// 129 hand threads) variants on the 176-core machine. Claims to preserve:
// the elastic schemes approach the hand-optimized throughput using an
// order of magnitude fewer threads (paper: 8-20 vs 129), and multi-level's
// margin over thread-count elasticity alone is small because tuples are
// tiny (~256 B) relative to the analytics cost.
func Fig15b() (*Fig15Result, error) {
	res := &Fig15Result{}
	for _, sources := range []int{1, 8} {
		a, err := apps.PacketAnalysis(sources)
		if err != nil {
			return nil, err
		}
		row, err := appRow(a, sim.Xeon176(), 256)
		if err != nil {
			return nil, fmt.Errorf("fig15b %d sources: %w", sources, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint renders the application comparison.
func (r *Fig15Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 15: application evaluation")
	fmt.Fprintf(w, "%-22s %-7s %-11s %-16s %-16s %-16s %s\n",
		"app", "cores", "manual/s", "handopt/s(thr)", "dynamic/s(thr)", "multilevel/s(thr)", "ml-queues")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %-7d %-11.0f %-16s %-16s %-16s %d\n",
			row.App, row.Cores, row.Manual.Throughput,
			fmt.Sprintf("%.0f(%d)", row.HandOpt.Throughput, row.HandOpt.Threads),
			fmt.Sprintf("%.0f(%d)", row.Dynamic.Throughput, row.Dynamic.Threads),
			fmt.Sprintf("%.0f(%d)", row.MultiLevel.Throughput, row.MultiLevel.Threads),
			row.MultiLevel.Queues)
	}
}
