// Package experiments regenerates every figure of the paper's evaluation
// on the simulated machine: the percent-dynamic sweep (Fig. 1), the
// adaptation-period optimizations (Fig. 6), the four benchmark-graph
// throughput comparisons (Figs. 9-12), workload-change adaptation (Fig. 13)
// and the two applications (Fig. 15). Each experiment returns structured
// rows and can print the same table/series the paper reports. DESIGN.md
// maps every experiment to its paper figure; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/graph"
	"streamelastic/internal/sim"
)

// maxSteps bounds every adaptation run; the simulated clock makes each step
// one virtual adaptation period.
const maxSteps = 5000

// Variant is the outcome of running one scheduling variant on one
// configuration.
type Variant struct {
	// Name identifies the variant: manual, dynamic, multilevel, handopt.
	Name string
	// Throughput is the settled sink throughput, tuples/second.
	Throughput float64
	// Threads is the number of scheduler (or dedicated) threads at
	// convergence.
	Threads int
	// Queues is the number of scheduler queues at convergence.
	Queues int
	// DynamicRatio is Queues divided by the number of placeable operators.
	DynamicRatio float64
	// Steps is the number of adaptation observations consumed.
	Steps int
	// SettleTime is the virtual time at which adaptation settled.
	SettleTime time.Duration
}

// allDynamic returns the placement with a queue in front of every
// placeable operator.
func allDynamic(g *graph.Graph) []bool {
	p := make([]bool, g.NumNodes())
	for i := range p {
		p[i] = !g.Node(graph.NodeID(i)).Source
	}
	return p
}

func placeableCount(g *graph.Graph) int {
	n := 0
	for i := 0; i < g.NumNodes(); i++ {
		if !g.Node(graph.NodeID(i)).Source {
			n++
		}
	}
	return n
}

// Manual evaluates the manual-threading baseline: no scheduler queues, all
// downstream work on the source operator threads.
func Manual(g *graph.Graph, m sim.Machine, payload int) (Variant, error) {
	e, err := sim.New(g, m, sim.WithPayload(payload))
	if err != nil {
		return Variant{}, err
	}
	return Variant{
		Name:       "manual",
		Throughput: e.Throughput(),
		Threads:    0,
		Queues:     0,
	}, nil
}

// Dynamic evaluates the paper's thread-count-elasticity baseline (Streams
// 4.2): every operator under the dynamic threading model, thread count
// tuned elastically.
func Dynamic(g *graph.Graph, m sim.Machine, payload int, cfg core.Config) (Variant, error) {
	e, err := sim.New(g, m, sim.WithPayload(payload), sim.WithSeed(uint64(cfg.Seed)))
	if err != nil {
		return Variant{}, err
	}
	if err := e.ApplyPlacement(allDynamic(g)); err != nil {
		return Variant{}, err
	}
	thr, steps, err := core.TuneThreadCount(e, cfg, maxSteps)
	if err != nil {
		return Variant{}, err
	}
	q := e.Queues()
	return Variant{
		Name:         "dynamic",
		Throughput:   thr,
		Threads:      e.ThreadCount(),
		Queues:       q,
		DynamicRatio: 1,
		Steps:        steps,
		SettleTime:   e.Now(),
	}, nil
}

// MultiLevel evaluates the paper's contribution: coordinated threading
// model and thread count elasticity.
func MultiLevel(g *graph.Graph, m sim.Machine, payload int, cfg core.Config) (Variant, []core.TraceEvent, error) {
	e, err := sim.New(g, m, sim.WithPayload(payload), sim.WithSeed(uint64(cfg.Seed)))
	if err != nil {
		return Variant{}, nil, err
	}
	coord, err := core.NewCoordinator(e, cfg)
	if err != nil {
		return Variant{}, nil, err
	}
	steps, settled, err := coord.RunUntilSettled(maxSteps)
	if err != nil {
		return Variant{}, nil, err
	}
	if !settled {
		return Variant{}, nil, fmt.Errorf("multi-level did not settle in %d steps", maxSteps)
	}
	tr := coord.Trace()
	q := e.Queues()
	return Variant{
		Name:         "multilevel",
		Throughput:   tr[len(tr)-1].Throughput,
		Threads:      e.ThreadCount(),
		Queues:       q,
		DynamicRatio: float64(q) / float64(placeableCount(g)),
		Steps:        steps,
		SettleTime:   coord.SettleTime(),
	}, tr, nil
}

// HandOptimized evaluates a developer-inserted threaded-port configuration:
// each queue is owned by one dedicated thread (the paper's hand-optimized
// VWAP and PacketAnalysis variants).
func HandOptimized(g *graph.Graph, m sim.Machine, payload int, placement []bool) (Variant, error) {
	e, err := sim.New(g, m, sim.WithPayload(payload), sim.WithDedicatedPorts())
	if err != nil {
		return Variant{}, err
	}
	if err := e.ApplyPlacement(placement); err != nil {
		return Variant{}, err
	}
	q := e.Queues()
	return Variant{
		Name:         "handopt",
		Throughput:   e.Throughput(),
		Threads:      e.ThreadCount(),
		Queues:       q,
		DynamicRatio: float64(q) / float64(placeableCount(g)),
	}, nil
}

// Speedup returns v's throughput relative to the baseline's.
func Speedup(v, baseline Variant) float64 {
	if baseline.Throughput == 0 {
		return 0
	}
	return v.Throughput / baseline.Throughput
}
