package experiments

import (
	"fmt"
	"io"
	"time"

	"streamelastic/internal/core"
	"streamelastic/internal/sim"
	"streamelastic/internal/workload"
)

// WarmRestartResult compares cold adaptation against a warm start from a
// configuration snapshot.
type WarmRestartResult struct {
	// ColdSettle is the settle time of full adaptation from scratch.
	ColdSettle time.Duration
	// ColdThroughput is the cold run's converged throughput.
	ColdThroughput float64
	// WarmSettle is the settle time when restoring the cold run's
	// snapshot (one observation period).
	WarmSettle time.Duration
	// WarmThroughput is the warm-started configuration's throughput.
	WarmThroughput float64
}

// WarmRestart demonstrates configuration snapshots (an extension beyond the
// paper): a PE restart that restores the learned placement and thread count
// skips the entire adaptation period. The paper's premise — long-running
// applications amortize adaptation — gets even stronger when restarts don't
// pay it again.
func WarmRestart() (*WarmRestartResult, error) {
	wcfg := workload.DefaultConfig()
	wcfg.Skewed = true
	wcfg.PayloadBytes = 1024
	b, err := workload.Pipeline(500, wcfg)
	if err != nil {
		return nil, err
	}
	m := sim.Xeon176().WithCores(88)

	cold, err := sim.New(b.Graph, m, sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	coord, err := core.NewCoordinator(cold, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, ok, err := coord.RunUntilSettled(maxSteps); err != nil || !ok {
		return nil, fmt.Errorf("warmrestart: cold run failed: %v", err)
	}
	tr := coord.Trace()
	res := &WarmRestartResult{
		ColdSettle:     coord.SettleTime(),
		ColdThroughput: tr[len(tr)-1].Throughput,
	}
	snap := coord.ConfigSnapshot()

	warm, err := sim.New(b.Graph, m, sim.WithPayload(1024))
	if err != nil {
		return nil, err
	}
	wcoord, err := core.NewCoordinatorFrom(warm, core.DefaultConfig(), snap)
	if err != nil {
		return nil, err
	}
	if _, ok, err := wcoord.RunUntilSettled(10); err != nil || !ok {
		return nil, fmt.Errorf("warmrestart: warm run did not settle immediately: %v", err)
	}
	wtr := wcoord.Trace()
	res.WarmSettle = wcoord.SettleTime()
	res.WarmThroughput = wtr[len(wtr)-1].Throughput
	return res, nil
}

// Fprint renders the comparison.
func (r *WarmRestartResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Warm restart from a configuration snapshot (extension)")
	fmt.Fprintf(w, "cold adaptation: settle %.0fs at %.0f/s\n", r.ColdSettle.Seconds(), r.ColdThroughput)
	fmt.Fprintf(w, "warm restart:    settle %.0fs at %.0f/s (%.0fx faster)\n",
		r.WarmSettle.Seconds(), r.WarmThroughput, r.ColdSettle.Seconds()/r.WarmSettle.Seconds())
}
