// Package workload builds the representative benchmark graphs of the
// paper's evaluation (Fig. 8): pipeline, data-parallel, mixed and bushy
// topologies, with balanced or skewed per-operator cost distributions and
// configurable tuple payloads. Every graph is fully executable (real
// operators), so the same build runs on the live engine and on the
// simulated machine.
package workload

import (
	"fmt"
	"math/rand"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// The paper's skewed distribution: 10% heavy-weight operators at 10,000
// FLOPs per tuple, 30% medium-weight at 100, the rest light-weight at 1.
const (
	HeavyFLOPs  = 10000
	MediumFLOPs = 100
	LightFLOPs  = 1

	defaultHeavyRatio  = 0.10
	defaultMediumRatio = 0.30
)

// Config selects the cost distribution and tuple shape of a benchmark
// graph.
type Config struct {
	// PayloadBytes is the tuple payload size (the paper sweeps 1 B to
	// 16384 B).
	PayloadBytes int
	// Skewed selects the skewed cost distribution; otherwise every work
	// operator costs BalancedFLOPs.
	Skewed bool
	// BalancedFLOPs is the uniform per-tuple cost under the balanced
	// distribution (the paper uses 100).
	BalancedFLOPs float64
	// Seed drives the random placement of heavy/medium/light operators.
	Seed int64
	// Tuples bounds the source; 0 means unbounded (benchmarks use
	// unbounded sources and measure rates).
	Tuples uint64
	// SourceFLOPs is the per-tuple ingest cost charged to the source
	// operator (deserialization, protocol handling). The Fig. 13
	// experiment uses it to model a rate-bounded feed.
	SourceFLOPs float64
	// SourceBatch is how many tuples the generator emits per scheduling
	// turn (<= 1 means one). Larger batches amortize source-loop overhead
	// and feed the compiled-region batch path whole batches at a time.
	SourceBatch int
}

// DefaultConfig returns the paper's common operating point: balanced
// 100-FLOP operators and a 1 KB payload.
func DefaultConfig() Config {
	return Config{PayloadBytes: 1024, BalancedFLOPs: 100, Seed: 1}
}

// Build is a constructed benchmark graph together with the handles
// experiments need: the cost variables of the work operators (for workload
// phase changes) and the sink.
type Build struct {
	// Graph is the finalized operator graph.
	Graph *graph.Graph
	// Sink is the terminal counting operator.
	Sink *spl.CountingSink
	// WorkCosts holds the cost variable of every work operator, in
	// creation order.
	WorkCosts []*spl.CostVar
	// Name describes the build for experiment output.
	Name string
}

// assignCosts applies the configured distribution over the work operators.
func (b *Build) assignCosts(cfg Config) {
	if !cfg.Skewed {
		flops := cfg.BalancedFLOPs
		if flops <= 0 {
			flops = 100
		}
		for _, cv := range b.WorkCosts {
			cv.Set(flops)
		}
		return
	}
	b.ApplySkew(defaultHeavyRatio, defaultMediumRatio, cfg.Seed)
}

// ApplySkew reassigns work-operator costs with the given heavy and medium
// ratios, placing the classes at seeded-random positions ("we randomly
// place the heavy-, medium- and light-weight operators in the graph without
// any prior knowledge"). Experiments use it directly for the Fig. 13
// workload phase change (heavy ratio 10% -> 90%).
func (b *Build) ApplySkew(heavyRatio, mediumRatio float64, seed int64) {
	n := len(b.WorkCosts)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nHeavy := int(heavyRatio * float64(n))
	nMedium := int(mediumRatio * float64(n))
	for i, p := range perm {
		switch {
		case i < nHeavy:
			b.WorkCosts[p].Set(HeavyFLOPs)
		case i < nHeavy+nMedium:
			b.WorkCosts[p].Set(MediumFLOPs)
		default:
			b.WorkCosts[p].Set(LightFLOPs)
		}
	}
}

// newSource builds the benchmark generator.
func newSource(cfg Config) *spl.Generator {
	gen := spl.NewGenerator("src", cfg.PayloadBytes)
	gen.MaxTuples = cfg.Tuples
	gen.Batch = cfg.SourceBatch
	return gen
}

// sourceCost returns the source node's cost variable.
func sourceCost(cfg Config) *spl.CostVar {
	return spl.NewCostVar(cfg.SourceFLOPs)
}

// addWork appends a work operator to the graph and records its cost var.
func (b *Build) addWork(g *graph.Graph, name string) graph.NodeID {
	cv := spl.NewCostVar(0)
	b.WorkCosts = append(b.WorkCosts, cv)
	return g.AddOperator(spl.NewWork(name, cv), cv)
}

// Pipeline builds the Fig. 8(a) chain: a source, n-2 work operators and a
// sink, n operators in total (the paper's pipelines have 100 to 1000).
func Pipeline(n int, cfg Config) (*Build, error) {
	if n < 3 {
		return nil, fmt.Errorf("workload: pipeline needs >= 3 operators, got %d", n)
	}
	b := &Build{Name: fmt.Sprintf("pipeline-%d", n)}
	g := graph.New()
	prev := g.AddSource(newSource(cfg), sourceCost(cfg))
	for i := 0; i < n-2; i++ {
		id := b.addWork(g, fmt.Sprintf("w%d", i))
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			return nil, err
		}
		prev = id
	}
	if err := b.finish(g, prev, cfg, false); err != nil {
		return nil, err
	}
	return b, nil
}

// DataParallel builds the Fig. 8(b) graph: a source splitting across width
// parallel work operators that all feed one sink. The sink is marked
// lock-contended, reproducing the throughput-counter contention the paper
// observes on this topology (Fig. 10).
func DataParallel(width int, cfg Config) (*Build, error) {
	if width < 1 {
		return nil, fmt.Errorf("workload: data-parallel width %d < 1", width)
	}
	b := &Build{Name: fmt.Sprintf("dataparallel-%d", width)}
	g := graph.New()
	src := g.AddSource(newSource(cfg), sourceCost(cfg))
	split := g.AddOperator(spl.NewRoundRobinSplit("split", width), nil)
	if err := g.Connect(src, 0, split, 0, 1); err != nil {
		return nil, err
	}
	b.Sink = spl.NewCountingSink("snk")
	snk := g.AddOperator(b.Sink, nil)
	for i := 0; i < width; i++ {
		w := b.addWork(g, fmt.Sprintf("w%d", i))
		if err := g.Connect(split, i, w, 0, 1/float64(width)); err != nil {
			return nil, err
		}
		if err := g.Connect(w, 0, snk, 0, 1); err != nil {
			return nil, err
		}
	}
	g.SetContended(snk)
	b.assignCosts(cfg)
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	b.Graph = g
	return b, nil
}

// Mixed builds the Fig. 8(c) graph: width data-parallel chains of depth
// work operators each, between a source-side split and a shared sink (the
// paper uses width 10 and depth 50-100).
func Mixed(width, depth int, cfg Config) (*Build, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("workload: mixed width %d / depth %d invalid", width, depth)
	}
	b := &Build{Name: fmt.Sprintf("mixed-%dx%d", width, depth)}
	g := graph.New()
	src := g.AddSource(newSource(cfg), sourceCost(cfg))
	split := g.AddOperator(spl.NewRoundRobinSplit("split", width), nil)
	if err := g.Connect(src, 0, split, 0, 1); err != nil {
		return nil, err
	}
	b.Sink = spl.NewCountingSink("snk")
	snk := g.AddOperator(b.Sink, nil)
	for i := 0; i < width; i++ {
		prev := graph.NodeID(-1)
		for d := 0; d < depth; d++ {
			w := b.addWork(g, fmt.Sprintf("w%d.%d", i, d))
			if d == 0 {
				if err := g.Connect(split, i, w, 0, 1/float64(width)); err != nil {
					return nil, err
				}
			} else {
				if err := g.Connect(prev, 0, w, 0, 1); err != nil {
					return nil, err
				}
			}
			prev = w
		}
		if err := g.Connect(prev, 0, snk, 0, 1); err != nil {
			return nil, err
		}
	}
	b.assignCosts(cfg)
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	b.Graph = g
	return b, nil
}

// Bushy builds the Fig. 8(d) tree used in the paper's bushy benchmark:
// a binary fan-out of splits, parallel work chains at the leaves, and a
// binary fan-in of merge operators, totalling exact 82 operators like the
// paper's graph. All work operators share the same cost under the balanced
// distribution.
func Bushy(cfg Config) (*Build, error) {
	const (
		fanDepth    = 3 // 7 splitters, 8 leaves
		leaves      = 8
		chainLength = 8 // work ops per leaf chain
	)
	b := &Build{Name: "bushy-82"}
	g := graph.New()
	src := g.AddSource(newSource(cfg), sourceCost(cfg))

	// Binary fan-out: 1 + 2 + 4 = 7 splitters.
	level := []graph.NodeID{}
	root := g.AddOperator(spl.NewRoundRobinSplit("s0", 2), nil)
	if err := g.Connect(src, 0, root, 0, 1); err != nil {
		return nil, err
	}
	level = append(level, root)
	splitCount := 1
	for d := 1; d < fanDepth; d++ {
		var next []graph.NodeID
		for _, parent := range level {
			for c := 0; c < 2; c++ {
				s := g.AddOperator(spl.NewRoundRobinSplit(fmt.Sprintf("s%d", splitCount), 2), nil)
				splitCount++
				if err := g.Connect(parent, c, s, 0, 0.5); err != nil {
					return nil, err
				}
				next = append(next, s)
			}
		}
		level = next
	}

	// Leaf chains: 8 chains x 8 work operators = 64, plus 2 extra on the
	// first chain to reach the paper's 82 total.
	chainEnds := make([]graph.NodeID, 0, leaves)
	li := 0
	for _, parent := range level {
		for c := 0; c < 2; c++ {
			length := chainLength
			if li == 0 {
				length += 2
			}
			prev := graph.NodeID(-1)
			for d := 0; d < length; d++ {
				w := b.addWork(g, fmt.Sprintf("w%d.%d", li, d))
				if d == 0 {
					if err := g.Connect(parent, c, w, 0, 0.5); err != nil {
						return nil, err
					}
				} else {
					if err := g.Connect(prev, 0, w, 0, 1); err != nil {
						return nil, err
					}
				}
				prev = w
			}
			chainEnds = append(chainEnds, prev)
			li++
		}
	}

	// Binary fan-in: 4 + 2 + 1 = 7 merge operators.
	for len(chainEnds) > 1 {
		var next []graph.NodeID
		for i := 0; i+1 < len(chainEnds); i += 2 {
			m := b.addWork(g, fmt.Sprintf("m%d", len(b.WorkCosts)))
			if err := g.Connect(chainEnds[i], 0, m, 0, 1); err != nil {
				return nil, err
			}
			if err := g.Connect(chainEnds[i+1], 0, m, 0, 1); err != nil {
				return nil, err
			}
			next = append(next, m)
		}
		chainEnds = next
	}

	if err := b.finish(g, chainEnds[0], cfg, false); err != nil {
		return nil, err
	}
	return b, nil
}

// finish attaches the sink, assigns costs and finalizes.
func (b *Build) finish(g *graph.Graph, last graph.NodeID, cfg Config, contendedSink bool) error {
	b.Sink = spl.NewCountingSink("snk")
	snk := g.AddOperator(b.Sink, nil)
	if err := g.Connect(last, 0, snk, 0, 1); err != nil {
		return err
	}
	if contendedSink {
		g.SetContended(snk)
	}
	b.assignCosts(cfg)
	if err := g.Finalize(); err != nil {
		return err
	}
	b.Graph = g
	return nil
}

// RandomDAG builds a random layered operator graph for robustness testing:
// a source feeding 2-5 layers of 1-6 operators each, with random fan-out
// (via splits), random skip connections, random per-operator costs spanning
// the paper's three weight classes, and a single sink. The result is
// deterministic in the seed.
func RandomDAG(cfg Config, seed int64) (*Build, error) {
	rng := rand.New(rand.NewSource(seed))
	b := &Build{Name: fmt.Sprintf("randomdag-%d", seed)}
	g := graph.New()
	src := g.AddSource(newSource(cfg), sourceCost(cfg))

	layers := 2 + rng.Intn(4)
	prev := []graph.NodeID{src}
	prevRatePer := 1.0 // approximate rate carried per upstream node
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(6)
		cur := make([]graph.NodeID, 0, width)
		for w := 0; w < width; w++ {
			id := b.addWork(g, fmt.Sprintf("l%d.%d", l, w))
			cur = append(cur, id)
		}
		// Every upstream node distributes its stream across 1..width
		// downstream nodes; every downstream node gets at least one input.
		for wi, id := range cur {
			from := prev[rng.Intn(len(prev))]
			if err := g.Connect(from, wi, id, 0, prevRatePer/float64(width)); err != nil {
				return nil, err
			}
		}
		for pi, from := range prev {
			// Ensure each upstream node has at least one consumer.
			if len(g.Node(from).Out) == 0 {
				to := cur[rng.Intn(len(cur))]
				if err := g.Connect(from, width+pi, to, 0, prevRatePer); err != nil {
					return nil, err
				}
			}
		}
		prev = cur
		prevRatePer = prevRatePer / float64(width) * 2 // rough balance
	}

	b.Sink = spl.NewCountingSink("snk")
	snk := g.AddOperator(b.Sink, nil)
	for i, from := range prev {
		if err := g.Connect(from, 100+i, snk, 0, 1); err != nil {
			return nil, err
		}
	}
	// Random cost classes.
	for _, cv := range b.WorkCosts {
		switch rng.Intn(3) {
		case 0:
			cv.Set(HeavyFLOPs)
		case 1:
			cv.Set(MediumFLOPs)
		default:
			cv.Set(LightFLOPs)
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	b.Graph = g
	return b, nil
}
