package workload

import (
	"testing"

	"streamelastic/internal/graph"
)

func TestPipelineShape(t *testing.T) {
	for _, n := range []int{100, 500, 1000} {
		b, err := Pipeline(n, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Graph.NumNodes(); got != n {
			t.Fatalf("pipeline(%d) has %d nodes", n, got)
		}
		if len(b.Graph.Sources()) != 1 || len(b.Graph.Sinks()) != 1 {
			t.Fatalf("pipeline(%d): %d sources, %d sinks", n,
				len(b.Graph.Sources()), len(b.Graph.Sinks()))
		}
		if len(b.WorkCosts) != n-2 {
			t.Fatalf("pipeline(%d) has %d work ops, want %d", n, len(b.WorkCosts), n-2)
		}
		for _, r := range b.Graph.Rates() {
			if r != 1 {
				t.Fatalf("pipeline rate %v, want 1", r)
			}
		}
	}
	if _, err := Pipeline(2, DefaultConfig()); err == nil {
		t.Fatal("pipeline(2) accepted")
	}
}

func TestDataParallelShape(t *testing.T) {
	b, err := DataParallel(50, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// src + split + 50 workers + sink
	if got := b.Graph.NumNodes(); got != 53 {
		t.Fatalf("data-parallel(50) has %d nodes, want 53", got)
	}
	sinks := b.Graph.Sinks()
	if len(sinks) != 1 {
		t.Fatalf("sinks = %v", sinks)
	}
	if !b.Graph.Node(sinks[0]).Contended {
		t.Fatal("data-parallel sink not marked contended (Fig. 10 effect)")
	}
	// Each worker sees 1/50 of the stream; the sink sees all of it.
	r := b.Graph.Rates()
	if r[sinks[0]] < 0.999 || r[sinks[0]] > 1.001 {
		t.Fatalf("sink rate %v, want 1", r[sinks[0]])
	}
	if _, err := DataParallel(0, DefaultConfig()); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestMixedShape(t *testing.T) {
	b, err := Mixed(10, 50, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// src + split + 10*50 + sink = 503
	if got := b.Graph.NumNodes(); got != 503 {
		t.Fatalf("mixed(10,50) has %d nodes, want 503", got)
	}
	r := b.Graph.Rates()
	sink := b.Graph.Sinks()[0]
	if r[sink] < 0.999 || r[sink] > 1.001 {
		t.Fatalf("sink rate %v, want 1", r[sink])
	}
	if _, err := Mixed(0, 5, DefaultConfig()); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestBushyShapeMatchesPaper(t *testing.T) {
	b, err := Bushy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Graph.NumNodes(); got != 82 {
		t.Fatalf("bushy graph has %d nodes, want 82 (paper's fixed size)", got)
	}
	if len(b.Graph.Sinks()) != 1 {
		t.Fatalf("bushy sinks = %v", b.Graph.Sinks())
	}
	// Tuple conservation: the sink must see the whole stream.
	r := b.Graph.Rates()
	sink := b.Graph.Sinks()[0]
	if r[sink] < 0.999 || r[sink] > 1.001 {
		t.Fatalf("bushy sink rate %v, want 1", r[sink])
	}
}

func TestBalancedDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BalancedFLOPs = 100
	b, err := Pipeline(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cv := range b.WorkCosts {
		if cv.FLOPs() != 100 {
			t.Fatalf("work op %d cost %v, want 100", i, cv.FLOPs())
		}
	}
}

func TestSkewedDistributionRatios(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skewed = true
	b, err := Pipeline(1002, cfg) // 1000 work ops
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, cv := range b.WorkCosts {
		counts[cv.FLOPs()]++
	}
	if counts[HeavyFLOPs] != 100 {
		t.Fatalf("heavy count = %d, want 100 (10%%)", counts[HeavyFLOPs])
	}
	if counts[MediumFLOPs] != 300 {
		t.Fatalf("medium count = %d, want 300 (30%%)", counts[MediumFLOPs])
	}
	if counts[LightFLOPs] != 600 {
		t.Fatalf("light count = %d, want 600 (60%%)", counts[LightFLOPs])
	}
}

func TestSkewDeterministicBySeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skewed = true
	b1, _ := Pipeline(100, cfg)
	b2, _ := Pipeline(100, cfg)
	for i := range b1.WorkCosts {
		if b1.WorkCosts[i].FLOPs() != b2.WorkCosts[i].FLOPs() {
			t.Fatalf("op %d differs across identical seeds", i)
		}
	}
	cfg.Seed = 99
	b3, _ := Pipeline(100, cfg)
	same := true
	for i := range b1.WorkCosts {
		if b1.WorkCosts[i].FLOPs() != b3.WorkCosts[i].FLOPs() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical skew placement")
	}
}

func TestApplySkewPhaseChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skewed = true
	b, err := Pipeline(102, cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := func() int {
		n := 0
		for _, cv := range b.WorkCosts {
			if cv.FLOPs() == HeavyFLOPs {
				n++
			}
		}
		return n
	}
	if got := heavy(); got != 10 {
		t.Fatalf("initial heavy count = %d, want 10", got)
	}
	// Fig. 13: the heavy ratio jumps from 10% to 90%.
	b.ApplySkew(0.9, 0.1, 2)
	if got := heavy(); got != 90 {
		t.Fatalf("heavy count after phase change = %d, want 90", got)
	}
	// Costs visible through the graph without rebuilding.
	costs := b.Graph.Costs()
	n := 0
	for _, c := range costs {
		if c == HeavyFLOPs {
			n++
		}
	}
	if n != 90 {
		t.Fatalf("graph sees %d heavy ops after phase change, want 90", n)
	}
}

func TestBoundedTuplesOption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tuples = 42
	b, err := Pipeline(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := b.Graph.Node(b.Graph.Sources()[0])
	if src.Op == nil {
		t.Fatal("source has no operator")
	}
}

func TestAllShapesFinalized(t *testing.T) {
	cfg := DefaultConfig()
	builds := []*Build{}
	if b, err := Pipeline(10, cfg); err == nil {
		builds = append(builds, b)
	}
	if b, err := DataParallel(4, cfg); err == nil {
		builds = append(builds, b)
	}
	if b, err := Mixed(3, 4, cfg); err == nil {
		builds = append(builds, b)
	}
	if b, err := Bushy(cfg); err == nil {
		builds = append(builds, b)
	}
	if len(builds) != 4 {
		t.Fatalf("built %d shapes, want 4", len(builds))
	}
	for _, b := range builds {
		if !b.Graph.Finalized() {
			t.Fatalf("%s not finalized", b.Name)
		}
		if b.Sink == nil {
			t.Fatalf("%s has no sink handle", b.Name)
		}
		// Every node must be reachable: rates > 0.
		for i, r := range b.Graph.Rates() {
			if r <= 0 {
				t.Fatalf("%s node %d has rate %v", b.Name, i, r)
			}
		}
		_ = graph.QueueCount(b.Graph, make([]bool, b.Graph.NumNodes()))
	}
}

func TestRandomDAGValidAndDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		b, err := RandomDAG(DefaultConfig(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !b.Graph.Finalized() {
			t.Fatalf("seed %d: not finalized", seed)
		}
		for i, r := range b.Graph.Rates() {
			if r <= 0 {
				t.Fatalf("seed %d: node %d unreachable (rate %v)", seed, i, r)
			}
		}
		if len(b.Graph.Sinks()) != 1 {
			t.Fatalf("seed %d: %d sinks", seed, len(b.Graph.Sinks()))
		}
		// Determinism: same seed, same shape.
		b2, err := RandomDAG(DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if b2.Graph.NumNodes() != b.Graph.NumNodes() {
			t.Fatalf("seed %d: non-deterministic shape", seed)
		}
	}
}
