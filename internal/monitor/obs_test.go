package monitor

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamelastic/internal/obs"
)

// registryForStatus builds a registry shaped like a PE's: engine gauges,
// sched counters, transport series with (stream, dir, peer) labels.
func registryForStatus() *obs.Registry {
	r := obs.NewRegistry(obs.Label{Key: "pe", Value: "0"})
	r.GaugeFunc(obs.MetricOperators, "operators", func() float64 { return 10 })
	r.GaugeFunc(obs.MetricThreads, "threads", func() float64 { return 4 })
	r.GaugeFunc(obs.MetricQueues, "queues", func() float64 { return 3 })
	r.GaugeFunc(obs.MetricUptime, "uptime", func() float64 { return 9.5 })
	obs.RegisterSettled(r, func() bool { return true })
	r.CounterFunc(obs.MetricSinkTuples, "sink tuples", func() uint64 { return 12345 })
	r.CounterFunc(obs.MetricPanics, "panics", func() uint64 { return 2 })
	r.GaugeFunc(obs.MetricSupActive, "quarantined", func() float64 { return 1 })
	r.CounterFunc(obs.MetricSchedSteals, "steals", func() uint64 { return 77 })
	r.CounterFunc(obs.MetricSchedParks, "parks", func() uint64 { return 5 })
	lat := r.Histogram(obs.MetricLatency, "latency")
	for i := 0; i < 100; i++ {
		lat.Observe(time.Millisecond)
	}
	exp := []obs.Label{
		{Key: "stream", Value: "0"}, {Key: "dir", Value: "export"}, {Key: "peer", Value: "1"},
	}
	r.CounterFunc(obs.MetricTransportTuples, "tuples", func() uint64 { return 777 }, exp...)
	r.CounterFunc(obs.MetricTransportBytes, "bytes", func() uint64 { return 43210 }, exp...)
	r.CounterFunc(obs.MetricTransportDropped, "dropped", func() uint64 { return 2 }, exp...)
	r.CounterFunc(obs.MetricTransportFlushes, "flushes", func() uint64 { return 9 }, exp...)
	r.CounterFunc(obs.MetricTransportRetransmits, "retrans", func() uint64 { return 3 }, exp...)
	r.GaugeFunc(obs.MetricTransportUnacked, "unacked", func() float64 { return 4 }, exp...)
	r.HistogramFunc(obs.MetricTransportDrainSize, "drains", func() obs.HistSnapshot {
		return obs.HistSnapshot{Buckets: []uint64{1, 0, 4, 0, 0}, Count: 5, Sum: 13, Scale: 1}
	}, exp...)
	imp := []obs.Label{
		{Key: "stream", Value: "0"}, {Key: "dir", Value: "import"}, {Key: "peer", Value: "0"},
	}
	r.CounterFunc(obs.MetricTransportTuples, "tuples", func() uint64 { return 775 }, imp...)
	r.CounterFunc(obs.MetricTransportBytes, "bytes", func() uint64 { return 43100 }, imp...)
	r.CounterFunc(obs.MetricTransportDups, "dups", func() uint64 { return 6 }, imp...)
	return r
}

func TestBuildStatusFromRegistry(t *testing.T) {
	h := &WatchdogStatus{Name: "pe0", Healthy: true}
	st := BuildStatus("pe0", registryForStatus(), h)
	if st.Name != "pe0" || st.Operators != 10 || st.Threads != 4 || st.Queues != 3 {
		t.Fatalf("config fields: %+v", st)
	}
	if !st.Settled || st.SinkTuples != 12345 || st.UptimeSecs != 9.5 {
		t.Fatalf("counters: %+v", st)
	}
	if st.OperatorPanics != 2 || st.Quarantined != 1 {
		t.Fatalf("supervision: %+v", st)
	}
	if st.Health == nil || !st.Health.Healthy {
		t.Fatalf("health: %+v", st.Health)
	}
	if st.Sched == nil || st.Sched.Steals != 77 || st.Sched.Parks != 5 {
		t.Fatalf("sched: %+v", st.Sched)
	}
	if st.Latency.Count != 100 || st.Latency.P99 <= 0 {
		t.Fatalf("latency: %+v", st.Latency)
	}
	if st.Latency.Mean < 0.9 || st.Latency.Mean > 1.1 {
		t.Fatalf("latency mean = %v ms, want ~1", st.Latency.Mean)
	}
	if len(st.Streams) != 2 {
		t.Fatalf("streams: %+v", st.Streams)
	}
	exp := st.Streams[0]
	if exp.Dir != "export" || exp.Peer != 1 || exp.Tuples != 777 || exp.Bytes != 43210 ||
		exp.Dropped != 2 || exp.Flushes != 9 || exp.Retransmits != 3 || exp.Unacked != 4 {
		t.Fatalf("export stream: %+v", exp)
	}
	if len(exp.DrainSizes) != 3 || exp.DrainSizes[2] != 4 {
		t.Fatalf("drain sizes trimmed wrong: %v", exp.DrainSizes)
	}
	imp := st.Streams[1]
	if imp.Dir != "import" || imp.Peer != 0 || imp.Tuples != 775 || imp.DupsDropped != 6 {
		t.Fatalf("import stream: %+v", imp)
	}
}

func TestBuildStatusNilRegistry(t *testing.T) {
	st := BuildStatus("x", nil, nil)
	if st.Name != "x" || st.Sched != nil || st.Streams != nil || st.Health != nil {
		t.Fatalf("nil registry status: %+v", st)
	}
}

func TestObservabilityHandler(t *testing.T) {
	reg := registryForStatus()
	fr := obs.NewFlightRecorder(64)
	fr.Record(obs.EvAdapt, 0, 4, 3, "threading-model: queue placed")
	p := fakeProvider{
		statuses: []Status{BuildStatus("pe0", reg, nil)},
	}
	srv := httptest.NewServer(ObservabilityHandler(p, []*obs.Registry{reg}, fr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE engine_sink_tuples_total counter",
		`engine_sink_tuples_total{pe="0"} 12345`,
		`transport_tuples_total{dir="export",pe="0",peer="1",stream="0"} 777`,
		"sched_steals_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/flightz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "queue placed") {
		t.Fatalf("/flightz = %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var sts []Status
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sts) != 1 || sts[0].SinkTuples != 12345 {
		t.Fatalf("/statusz = %+v", sts)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}

func TestObservabilityHandlerNoRecorder(t *testing.T) {
	srv := httptest.NewServer(ObservabilityHandler(fakeProvider{}, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/flightz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/flightz without recorder: status %d, want 404", resp.StatusCode)
	}
}

// TestWatchdogTripHook checks OnTrip fires once per trip with the cause and
// OnRecover fires once health returns — the flight-recorder dump trigger.
func TestWatchdogTripHook(t *testing.T) {
	healthy := true
	probe := Probe{Name: "engine", Check: func(time.Time) (bool, string) {
		if healthy {
			return true, ""
		}
		return false, "stalled"
	}}
	var trips []string
	recovers := 0
	w := NewWatchdog("pe0", []Probe{probe}, nil, WatchdogConfig{
		UnhealthyAfter: 2, HealthyAfter: 2,
		OnTrip:    func(cause string) { trips = append(trips, cause) },
		OnRecover: func() { recovers++ },
	})
	now := time.Now()
	healthy = false
	for i := 0; i < 4; i++ {
		w.CheckNow(now)
	}
	if len(trips) != 1 || trips[0] != "engine: stalled" {
		t.Fatalf("trips = %v, want one [engine: stalled]", trips)
	}
	healthy = true
	for i := 0; i < 4; i++ {
		w.CheckNow(now)
	}
	if recovers != 1 {
		t.Fatalf("recovers = %d, want 1", recovers)
	}
}
