package monitor

import (
	"sync"
	"testing"
	"time"
)

// fakeFreezer records SetFrozen transitions.
type fakeFreezer struct {
	mu     sync.Mutex
	frozen bool
	sets   []bool
}

func (f *fakeFreezer) SetFrozen(v bool) {
	f.mu.Lock()
	f.frozen = v
	f.sets = append(f.sets, v)
	f.mu.Unlock()
}

func (f *fakeFreezer) state() (bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen, len(f.sets)
}

// flipProbe reports whatever health the test sets.
type flipProbe struct {
	mu      sync.Mutex
	healthy bool
	detail  string
}

func (p *flipProbe) set(h bool) {
	p.mu.Lock()
	p.healthy = h
	p.mu.Unlock()
}

func (p *flipProbe) check(time.Time) (bool, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy, p.detail
}

func newTestWatchdog(fr *fakeFreezer) (*Watchdog, *flipProbe) {
	p := &flipProbe{healthy: true, detail: "probe detail"}
	w := NewWatchdog("t", []Probe{{Name: "flip", Check: p.check}}, fr,
		WatchdogConfig{Interval: time.Hour, UnhealthyAfter: 2, HealthyAfter: 3})
	return w, p
}

// tick drives CheckNow with a synthetic clock, bypassing the poll loop.
func tick(w *Watchdog, n int) {
	for i := 0; i < n; i++ {
		w.CheckNow(time.Now())
	}
}

func TestWatchdogHysteresisTripAndRecover(t *testing.T) {
	fr := &fakeFreezer{}
	w, p := newTestWatchdog(fr)

	// One bad poll is noise: no trip.
	p.set(false)
	tick(w, 1)
	if !w.Healthy() || w.Frozen() {
		t.Fatal("single bad poll tripped the watchdog")
	}
	// Second consecutive bad poll trips and freezes.
	tick(w, 1)
	if w.Healthy() || !w.Frozen() {
		t.Fatal("watchdog did not trip after UnhealthyAfter bad polls")
	}
	if frozen, _ := fr.state(); !frozen {
		t.Fatal("freezer not engaged on trip")
	}
	st := w.Status()
	if st.Trips != 1 || st.Recovers != 0 {
		t.Fatalf("trips=%d recovers=%d after trip, want 1/0", st.Trips, st.Recovers)
	}
	if st.LastCause != "flip: probe detail" {
		t.Fatalf("lastCause = %q", st.LastCause)
	}

	// Recovery must prove itself: HealthyAfter-1 good polls do not release.
	p.set(true)
	tick(w, 2)
	if w.Healthy() || !w.Frozen() {
		t.Fatal("watchdog released early")
	}
	// An intervening bad poll resets the good streak.
	p.set(false)
	tick(w, 1)
	p.set(true)
	tick(w, 2)
	if w.Healthy() {
		t.Fatal("good-poll streak survived an intervening bad poll")
	}
	tick(w, 1)
	if !w.Healthy() || w.Frozen() {
		t.Fatal("watchdog did not release after HealthyAfter good polls")
	}
	if frozen, _ := fr.state(); frozen {
		t.Fatal("freezer not released on recovery")
	}
	st = w.Status()
	if st.Trips != 1 || st.Recovers != 1 {
		t.Fatalf("trips=%d recovers=%d after recovery, want 1/1", st.Trips, st.Recovers)
	}
}

func TestWatchdogRepeatTripsCount(t *testing.T) {
	fr := &fakeFreezer{}
	w, p := newTestWatchdog(fr)
	for round := 0; round < 3; round++ {
		p.set(false)
		tick(w, 2)
		p.set(true)
		tick(w, 3)
	}
	st := w.Status()
	if st.Trips != 3 || st.Recovers != 3 {
		t.Fatalf("trips=%d recovers=%d, want 3/3", st.Trips, st.Recovers)
	}
	if _, sets := fr.state(); sets != 6 {
		t.Fatalf("freezer toggled %d times, want 6", sets)
	}
}

func TestWatchdogStopThaws(t *testing.T) {
	fr := &fakeFreezer{}
	w, p := newTestWatchdog(fr)
	w.Start()
	p.set(false)
	tick(w, 2) // trip via the synthetic clock; the hour-long ticker never fires
	if !w.Frozen() {
		t.Fatal("watchdog did not trip")
	}
	w.Stop()
	if w.Frozen() {
		t.Fatal("stopped watchdog left the freezer held")
	}
	if frozen, _ := fr.state(); frozen {
		t.Fatal("freezer still engaged after Stop")
	}
	// Stop again is a no-op.
	w.Stop()
}

func TestWatchdogFirstFailingProbeWins(t *testing.T) {
	a := &flipProbe{healthy: true}
	b := &flipProbe{healthy: false, detail: "b down"}
	w := NewWatchdog("t", []Probe{
		{Name: "a", Check: a.check},
		{Name: "b", Check: b.check},
	}, nil, WatchdogConfig{Interval: time.Hour, UnhealthyAfter: 1, HealthyAfter: 1})
	tick(w, 1)
	if w.Healthy() {
		t.Fatal("watchdog healthy with a failing probe")
	}
	if st := w.Status(); st.LastCause != "b: b down" {
		t.Fatalf("lastCause = %q, want the failing probe's", st.LastCause)
	}
	// Nil freezer: trips must not panic, Frozen still reports the state.
	if !w.Frozen() {
		t.Fatal("observe-only watchdog did not record frozen state")
	}
}
