package monitor

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamelastic/internal/core"
)

type fakeProvider struct {
	statuses []Status
	traces   map[int][]core.TraceEvent
}

func (f fakeProvider) Statuses() []Status { return f.statuses }

func (f fakeProvider) AdaptationTrace(i int) []core.TraceEvent { return f.traces[i] }

func newServer(t *testing.T) (*httptest.Server, fakeProvider) {
	t.Helper()
	p := fakeProvider{
		statuses: []Status{{
			Name: "pe0", Operators: 10, Threads: 4, Queues: 3,
			Settled: true, SinkTuples: 12345, UptimeSecs: 9.5,
			Latency: LatencyMS{Count: 100, Mean: 1.5, P50: 1, P95: 3, P99: 5},
			Streams: []StreamStatus{
				{Stream: 0, Dir: "export", Peer: 1, Tuples: 777, Bytes: 43210,
					Dropped: 2, Flushes: 9, DrainSizes: []uint64{1, 0, 4}},
				{Stream: 0, Dir: "import", Peer: 0, Tuples: 775, Bytes: 43100},
			},
		}},
		traces: map[int][]core.TraceEvent{
			0: {
				{Time: 5 * time.Second, Throughput: 1000, Threads: 2, Queues: 1, Phase: core.PhaseTC, Note: "x"},
			},
		},
	}
	srv := httptest.NewServer(Handler(p))
	t.Cleanup(srv.Close)
	return srv, p
}

func TestStatusEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got []Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SinkTuples != 12345 || got[0].Threads != 4 {
		t.Fatalf("decoded %+v", got)
	}
	if got[0].Latency.P99 != 5 {
		t.Fatalf("latency p99 = %v", got[0].Latency.P99)
	}
	if len(got[0].Streams) != 2 {
		t.Fatalf("streams = %+v, want 2 endpoints", got[0].Streams)
	}
	exp := got[0].Streams[0]
	if exp.Dir != "export" || exp.Tuples != 777 || exp.Bytes != 43210 ||
		exp.Dropped != 2 || exp.Flushes != 9 || len(exp.DrainSizes) != 3 {
		t.Fatalf("export stream status %+v", exp)
	}
	imp := got[0].Streams[1]
	if imp.Dir != "import" || imp.Tuples != 775 || imp.Bytes != 43100 {
		t.Fatalf("import stream status %+v", imp)
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/tracez?pe=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["throughput"].(float64) != 1000 {
		t.Fatalf("decoded %+v", got)
	}
	if got[0]["phase"].(string) != string(core.PhaseTC) {
		t.Fatalf("phase = %v", got[0]["phase"])
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/tracez?pe=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing trace status %d, want 404", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/tracez?pe=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad index status %d, want 400", resp.StatusCode)
	}
}

func TestStatusJSONFieldNames(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, field := range []string{
		"sinkTuples", "latencyMs", "uptimeSecs", "settled",
		"streams", "dir", "flushes", "drainSizes", "dropped",
	} {
		if !strings.Contains(body, field) {
			t.Fatalf("JSON missing field %q: %s", field, body)
		}
	}
}

func TestSASOEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := srv.Client().Get(srv.URL + "/sasoz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"observations", "oscillations", "accuracy", "overshootThreads"} {
		if _, ok := got[field]; !ok {
			t.Fatalf("sasoz missing %q: %v", field, got)
		}
	}
	if got["observations"].(float64) != 1 {
		t.Fatalf("observations = %v", got["observations"])
	}
	resp2, err := srv.Client().Get(srv.URL + "/sasoz?pe=7")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("missing trace status %d", resp2.StatusCode)
	}
}
