package monitor

import (
	"sync"
	"sync/atomic"
	"time"
)

// Probe is one health check the watchdog polls. Check receives the poll
// time and reports health plus a short human-readable detail for the
// unhealthy case. Implementations must be safe for concurrent use.
type Probe struct {
	Name  string
	Check func(now time.Time) (healthy bool, detail string)
}

// Freezer is the control surface the watchdog holds while its subject is
// unhealthy — in this runtime, the PE's elastic coordinator: adapting
// placement or thread counts from measurements taken during a fault window
// would chase noise, so the watchdog freezes adaptation until health
// returns.
type Freezer interface {
	SetFrozen(frozen bool)
}

// WatchdogConfig tunes the watchdog's cadence and hysteresis. The zero
// value means defaults.
type WatchdogConfig struct {
	// Interval is the poll period (default 50ms).
	Interval time.Duration
	// UnhealthyAfter is how many consecutive failing polls of any probe
	// trip the watchdog (default 2) — one bad sample is noise.
	UnhealthyAfter int
	// HealthyAfter is how many consecutive all-clear polls release it
	// (default 4) — recovery must prove itself before adaptation resumes.
	HealthyAfter int
	// OnTrip, when set, is invoked once per trip with the failing probe's
	// cause string — the hook flight-recorder dumps hang off. It runs on the
	// poll goroutine, outside the watchdog's lock.
	OnTrip func(cause string)
	// OnRecover, when set, is invoked once per recovery, outside the lock.
	OnRecover func()
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 2
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 4
	}
	return c
}

// WatchdogStatus is a watchdog's externally visible state.
type WatchdogStatus struct {
	Name      string `json:"name"`
	Healthy   bool   `json:"healthy"`
	Frozen    bool   `json:"frozen"`
	LastCause string `json:"lastCause,omitempty"`
	Trips     uint64 `json:"trips"`
	Recovers  uint64 `json:"recovers"`
}

// Watchdog polls a set of health probes and freezes a Freezer (typically
// the elastic coordinator) while any probe stays unhealthy, with hysteresis
// in both directions.
type Watchdog struct {
	name    string
	cfg     WatchdogConfig
	probes  []Probe
	freezer Freezer // may be nil: observe-only

	quit chan struct{}
	done chan struct{}

	healthy  atomic.Bool
	frozen   atomic.Bool
	trips    atomic.Uint64
	recovers atomic.Uint64

	mu        sync.Mutex
	started   bool
	stopped   bool
	badPolls  int
	goodPolls int
	lastCause string
}

// NewWatchdog builds a watchdog over the given probes. freezer may be nil
// for observe-only monitoring.
func NewWatchdog(name string, probes []Probe, freezer Freezer, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		name:    name,
		cfg:     cfg.withDefaults(),
		probes:  probes,
		freezer: freezer,
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.healthy.Store(true)
	return w
}

// Start launches the poll loop. Safe to call once.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return
	}
	w.started = true
	go w.loop()
}

// Stop halts the poll loop and thaws the freezer, so a stopped watchdog
// never leaves adaptation permanently frozen.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	if w.stopped || !w.started {
		w.stopped = true
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	if w.frozen.Swap(false) && w.freezer != nil {
		w.freezer.SetFrozen(false)
	}
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.quit:
			return
		case now := <-tick.C:
			w.CheckNow(now)
		}
	}
}

// CheckNow runs one poll round at the given time, applying the hysteresis
// state machine. Exposed for tests; the poll loop calls it on every tick.
func (w *Watchdog) CheckNow(now time.Time) {
	bad := ""
	for _, p := range w.probes {
		if ok, detail := p.Check(now); !ok {
			bad = p.Name
			if detail != "" {
				bad += ": " + detail
			}
			break
		}
	}
	tripped, recovered := false, false
	var cause string
	w.mu.Lock()
	if bad != "" {
		w.goodPolls = 0
		w.badPolls++
		w.lastCause = bad
		if w.badPolls >= w.cfg.UnhealthyAfter && w.healthy.Load() {
			w.healthy.Store(false)
			w.trips.Add(1)
			if !w.frozen.Swap(true) && w.freezer != nil {
				w.freezer.SetFrozen(true)
			}
			tripped, cause = true, bad
		}
	} else {
		w.badPolls = 0
		w.goodPolls++
		if w.goodPolls >= w.cfg.HealthyAfter && !w.healthy.Load() {
			w.healthy.Store(true)
			w.recovers.Add(1)
			if w.frozen.Swap(false) && w.freezer != nil {
				w.freezer.SetFrozen(false)
			}
			recovered = true
		}
	}
	w.mu.Unlock()
	// Hooks run outside the lock: a trip hook that dumps the flight
	// recorder (or reads Status) must not deadlock against the watchdog.
	if tripped && w.cfg.OnTrip != nil {
		w.cfg.OnTrip(cause)
	}
	if recovered && w.cfg.OnRecover != nil {
		w.cfg.OnRecover()
	}
}

// Healthy reports the watchdog's current verdict.
func (w *Watchdog) Healthy() bool { return w.healthy.Load() }

// Frozen reports whether the watchdog currently holds the freezer.
func (w *Watchdog) Frozen() bool { return w.frozen.Load() }

// Status returns the watchdog's externally visible state.
func (w *Watchdog) Status() WatchdogStatus {
	w.mu.Lock()
	cause := w.lastCause
	w.mu.Unlock()
	return WatchdogStatus{
		Name:      w.name,
		Healthy:   w.healthy.Load(),
		Frozen:    w.frozen.Load(),
		LastCause: cause,
		Trips:     w.trips.Load(),
		Recovers:  w.recovers.Load(),
	}
}
