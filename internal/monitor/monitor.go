// Package monitor exposes runtime state over HTTP for operations
// dashboards: current elastic configuration, throughput counters, latency
// percentiles and the adaptation trace, as JSON.
package monitor

import (
	"encoding/json"
	"net/http"

	"streamelastic/internal/core"
	"streamelastic/internal/metrics"
)

// Status is one engine's externally visible state.
type Status struct {
	Name       string    `json:"name"`
	Operators  int       `json:"operators"`
	Threads    int       `json:"threads"`
	Queues     int       `json:"queues"`
	Settled    bool      `json:"settled"`
	SinkTuples uint64    `json:"sinkTuples"`
	UptimeSecs float64   `json:"uptimeSecs"`
	Latency    LatencyMS `json:"latencyMs"`
	// OperatorPanics and Quarantined surface the supervision layer: total
	// recovered operator panics and how many operators are currently
	// quarantined (dropping input while they serve a panic timeout).
	OperatorPanics uint64 `json:"operatorPanics,omitempty"`
	Quarantined    int    `json:"quarantined,omitempty"`
	// Health is the PE's watchdog verdict; nil when no watchdog runs.
	Health *WatchdogStatus `json:"health,omitempty"`
	// Checkpoint is the PE's checkpoint coordinator state; nil when
	// checkpointing is disabled.
	Checkpoint *CheckpointStatus `json:"checkpoint,omitempty"`
	// Streams lists the PE's cross-PE stream endpoints' transport counters;
	// empty for single-PE runtimes.
	Streams []StreamStatus `json:"streams,omitempty"`
	// Sched is the engine's work-stealing scheduler counter snapshot; nil
	// for substrates without one.
	Sched *metrics.SchedSnapshot `json:"sched,omitempty"`
	// Width is the cluster job manager's fleet width; set only on the
	// synthetic cluster status, nil for per-PE statuses.
	Width *WidthStatus `json:"width,omitempty"`
	// Migrations is the cluster job manager's migration ledger; set only on
	// the synthetic cluster status.
	Migrations *MigrationStatus `json:"migrations,omitempty"`
}

// WidthStatus is a cluster's malleable width spec plus its current
// allocation, jobtree-style: desired may move anywhere in [min, max] along
// step-aligned increments; allocated follows it through migrations; pending
// names the transition in flight ("" when reconciled).
type WidthStatus struct {
	Min       int    `json:"min"`
	Max       int    `json:"max"`
	Step      int    `json:"step"`
	Desired   int    `json:"desired"`
	Allocated int    `json:"allocated"`
	Pending   string `json:"pending,omitempty"`
}

// MigrationStatus counts a cluster's region migrations and the replay
// traffic their resume handshakes caused.
type MigrationStatus struct {
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Aborted   uint64 `json:"aborted,omitempty"`
	Replayed  uint64 `json:"replayedTuples,omitempty"`
}

// StreamStatus is one cross-PE stream endpoint's transport counters as seen
// from the PE that owns the endpoint.
type StreamStatus struct {
	// Stream is the cross-edge stream id; Dir is "export" or "import";
	// Peer is the PE at the other end.
	Stream int    `json:"stream"`
	Dir    string `json:"dir"`
	Peer   int    `json:"peer"`
	// Tuples and Bytes count traffic through the endpoint; WireFrames
	// counts wire frames (staged on an export, decoded on an import), so
	// Tuples/WireFrames is the batch amortization ratio and
	// WireFrames/Flushes the frames per flush.
	Tuples     uint64 `json:"tuples"`
	WireFrames uint64 `json:"wireFrames,omitempty"`
	Bytes      uint64 `json:"bytes"`
	// Dropped, Flushes, and DrainSizes are export-side only: tuples the
	// stream could not carry, explicit flush syscalls, and the writer's
	// staging-ring drain-size histogram (log2 buckets — ring drains, not
	// wire batches or flush batches).
	Dropped    uint64   `json:"dropped,omitempty"`
	Flushes    uint64   `json:"flushes,omitempty"`
	DrainSizes []uint64 `json:"drainSizes,omitempty"`
	// Recovery counters: Retransmits/Reconnects/Unacked are export-side
	// (resume traffic, re-attached connections, frames of unknown delivery
	// at close); DupsDropped/Resumes are import-side (sequence dedup,
	// re-accepted connections).
	Retransmits uint64 `json:"retransmits,omitempty"`
	Reconnects  uint64 `json:"reconnects,omitempty"`
	Unacked     uint64 `json:"unacked,omitempty"`
	DupsDropped uint64 `json:"dupsDropped,omitempty"`
	Resumes     uint64 `json:"resumes,omitempty"`
}

// CheckpointStatus is one PE's checkpoint coordinator state: epochs
// committed, failures, cuts skipped while an operator was quarantined,
// restores performed, and the last committed epoch's size, watermark, and
// number.
type CheckpointStatus struct {
	Checkpoints   uint64 `json:"checkpoints"`
	Errors        uint64 `json:"errors,omitempty"`
	Skipped       uint64 `json:"skipped,omitempty"`
	Restores      uint64 `json:"restores,omitempty"`
	LastCkptBytes uint64 `json:"lastCkptBytes,omitempty"`
	Watermark     uint64 `json:"watermark,omitempty"`
	Epoch         uint64 `json:"epoch,omitempty"`
}

// LatencyMS renders a latency snapshot in milliseconds for JSON consumers.
type LatencyMS struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Provider supplies the state the handler serves. Implementations must be
// safe for concurrent use.
type Provider interface {
	// Statuses returns one Status per engine (a single-PE runtime returns
	// one; a job returns one per PE).
	Statuses() []Status
	// AdaptationTrace returns the trace of the indexed engine, or nil.
	AdaptationTrace(index int) []core.TraceEvent
}

// Handler serves the monitoring API:
//
//	GET /statusz          -> []Status
//	GET /tracez?pe=N      -> the adaptation trace of engine N (default 0)
//	GET /sasoz?pe=N       -> SASO analysis of engine N's trace
func Handler(p Provider) http.Handler {
	mux := http.NewServeMux()
	mountStatus(mux, p)
	return mux
}

// mountStatus registers the status/trace/SASO routes on mux; Handler and
// ObservabilityHandler share it.
func mountStatus(mux *http.ServeMux, p Provider) {
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Statuses())
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := peIndex(w, r)
		if !ok {
			return
		}
		tr := p.AdaptationTrace(idx)
		if tr == nil {
			http.Error(w, "no trace for that engine", http.StatusNotFound)
			return
		}
		type event struct {
			TimeSecs   float64 `json:"timeSecs"`
			Throughput float64 `json:"throughput"`
			Threads    int     `json:"threads"`
			Queues     int     `json:"queues"`
			Phase      string  `json:"phase"`
			Note       string  `json:"note"`
		}
		out := make([]event, 0, len(tr))
		for _, e := range tr {
			out = append(out, event{
				TimeSecs:   e.Time.Seconds(),
				Throughput: e.Throughput,
				Threads:    e.Threads,
				Queues:     e.Queues,
				Phase:      string(e.Phase),
				Note:       e.Note,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/sasoz", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := peIndex(w, r)
		if !ok {
			return
		}
		tr := p.AdaptationTrace(idx)
		if tr == nil {
			http.Error(w, "no trace for that engine", http.StatusNotFound)
			return
		}
		a := core.AnalyzeTrace(tr)
		writeJSON(w, map[string]any{
			"observations":      a.Observations,
			"settleTimeSecs":    a.SettleTime.Seconds(),
			"configChanges":     a.ConfigChanges,
			"oscillations":      a.Oscillations,
			"postSettleChanges": a.PostSettleChanges,
			"accuracy":          a.Accuracy(),
			"overshootThreads":  a.Overshoot(),
			"finalThroughput":   a.FinalThroughput,
			"peakThroughput":    a.PeakThroughput,
		})
	})
}

// peIndex parses the pe query parameter, writing an error response on
// failure.
func peIndex(w http.ResponseWriter, r *http.Request) (int, bool) {
	v := r.URL.Query().Get("pe")
	if v == "" {
		return 0, true
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			http.Error(w, "invalid pe index", http.StatusBadRequest)
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already written; nothing more to do.
		_ = err
	}
}
