package monitor

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"streamelastic/internal/core"
	"streamelastic/internal/metrics"
	"streamelastic/internal/obs"
)

// BuildStatus renders one engine's Status from its telemetry registry — the
// single source of truth behind /statusz. Every field the JSON carries is
// derived from a registered metric, so /statusz and /metrics can never
// disagree. health is the PE's watchdog verdict (nil when no watchdog runs).
func BuildStatus(name string, reg *obs.Registry, health *WatchdogStatus) Status {
	st := Status{Name: name}
	if health != nil {
		h := *health
		st.Health = &h
	}
	if reg == nil {
		return st
	}
	var sched metrics.SchedSnapshot
	sawSched := false
	ckpt := func() *CheckpointStatus {
		if st.Checkpoint == nil {
			st.Checkpoint = &CheckpointStatus{}
		}
		return st.Checkpoint
	}
	streams := make(map[streamKey]*StreamStatus)
	for _, s := range reg.Gather() {
		switch s.Name {
		case obs.MetricOperators:
			st.Operators = int(s.Value)
		case obs.MetricThreads:
			st.Threads = int(s.Value)
		case obs.MetricQueues:
			st.Queues = int(s.Value)
		case obs.MetricUptime:
			st.UptimeSecs = s.Value
		case obs.MetricSettled:
			st.Settled = s.Value != 0
		case obs.MetricSinkTuples:
			st.SinkTuples = s.U
		case obs.MetricPanics:
			st.OperatorPanics = s.U
		case obs.MetricSupActive:
			st.Quarantined = int(s.Value)
		case obs.MetricLatency:
			if s.Hist != nil {
				st.Latency = LatencyMS{
					Count: s.Hist.Count,
					Mean:  s.Hist.Mean() * 1e3,
					P50:   s.Hist.Quantile(0.50) * 1e3,
					P95:   s.Hist.Quantile(0.95) * 1e3,
					P99:   s.Hist.Quantile(0.99) * 1e3,
				}
			}
		case obs.MetricSchedLocalPushes:
			sched.LocalPushes, sawSched = s.U, true
		case obs.MetricSchedLocalPops:
			sched.LocalPops, sawSched = s.U, true
		case obs.MetricSchedSteals:
			sched.Steals, sawSched = s.U, true
		case obs.MetricSchedStolenTuples:
			sched.StolenTuples, sawSched = s.U, true
		case obs.MetricSchedOverflows:
			sched.Overflows, sawSched = s.U, true
		case obs.MetricSchedInjected:
			sched.Injected, sawSched = s.U, true
		case obs.MetricSchedParks:
			sched.Parks, sawSched = s.U, true
		case obs.MetricSchedWakes:
			sched.Wakes, sawSched = s.U, true
		case obs.MetricCkptTotal:
			ckpt().Checkpoints = s.U
		case obs.MetricCkptErrors:
			ckpt().Errors = s.U
		case obs.MetricCkptSkipped:
			ckpt().Skipped = s.U
		case obs.MetricCkptRestores:
			ckpt().Restores = s.U
		case obs.MetricCkptLastBytes:
			ckpt().LastCkptBytes = uint64(s.Value)
		case obs.MetricCkptWatermark:
			ckpt().Watermark = uint64(s.Value)
		case obs.MetricCkptEpoch:
			ckpt().Epoch = uint64(s.Value)
		case obs.MetricTransportTuples:
			streamFor(streams, s).Tuples = s.U
		case obs.MetricTransportFrames:
			streamFor(streams, s).WireFrames = s.U
		case obs.MetricTransportBytes:
			streamFor(streams, s).Bytes = s.U
		case obs.MetricTransportDropped:
			streamFor(streams, s).Dropped = s.U
		case obs.MetricTransportFlushes:
			streamFor(streams, s).Flushes = s.U
		case obs.MetricTransportRetransmits:
			streamFor(streams, s).Retransmits = s.U
		case obs.MetricTransportReconnects:
			streamFor(streams, s).Reconnects = s.U
		case obs.MetricTransportUnacked:
			streamFor(streams, s).Unacked = uint64(s.Value)
		case obs.MetricTransportDups:
			streamFor(streams, s).DupsDropped = s.U
		case obs.MetricTransportResumes:
			streamFor(streams, s).Resumes = s.U
		case obs.MetricTransportDrainSize:
			if s.Hist != nil && s.Hist.Count > 0 {
				streamFor(streams, s).DrainSizes = trimBuckets(s.Hist.Buckets)
			}
		}
	}
	if sawSched {
		st.Sched = &sched
	}
	if len(streams) > 0 {
		out := make([]StreamStatus, 0, len(streams))
		for _, ss := range streams {
			out = append(out, *ss)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Stream != out[j].Stream {
				return out[i].Stream < out[j].Stream
			}
			return out[i].Dir < out[j].Dir
		})
		st.Streams = out
	}
	return st
}

type streamKey struct {
	stream int
	dir    string
	peer   int
}

// streamFor groups transport samples by their (stream, dir, peer) labels.
func streamFor(m map[streamKey]*StreamStatus, s obs.Sample) *StreamStatus {
	var k streamKey
	for _, l := range s.Labels {
		switch l.Key {
		case "stream":
			k.stream, _ = strconv.Atoi(l.Value)
		case "dir":
			k.dir = l.Value
		case "peer":
			k.peer, _ = strconv.Atoi(l.Value)
		}
	}
	ss := m[k]
	if ss == nil {
		ss = &StreamStatus{Stream: k.stream, Dir: k.dir, Peer: k.peer}
		m[k] = ss
	}
	return ss
}

// trimBuckets drops the trailing run of empty buckets, returning nil for an
// all-zero histogram — the shape /statusz always used for batch sizes.
func trimBuckets(buckets []uint64) []uint64 {
	last := -1
	for i, b := range buckets {
		if b != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]uint64, last+1)
	copy(out, buckets[:last+1])
	return out
}

// ObservabilityHandler serves the full observability surface:
//
//	GET /statusz               -> []Status (from the telemetry registries)
//	GET /tracez?pe=N           -> adaptation trace of engine N as JSON rows
//	GET /tracez.json?pe=N      -> the same trace as Chrome trace_event JSON
//	GET /sasoz?pe=N            -> SASO analysis of engine N's trace
//	GET /metrics               -> Prometheus text exposition over all regs
//	GET /flightz               -> flight-recorder dump (404 when fr is nil)
//	GET /debug/pprof/...       -> net/http/pprof profiles
//
// It supersedes Handler for callers that hold registries; Handler remains
// for status-only consumers.
func ObservabilityHandler(p Provider, regs []*obs.Registry, fr *obs.FlightRecorder) http.Handler {
	return ObservabilityHandlerDynamic(p, func() []*obs.Registry { return regs }, fr)
}

// ObservabilityHandlerDynamic is ObservabilityHandler for providers whose
// registry set changes while serving — a cluster job manager grows and
// shrinks its PE fleet, and each scrape must see the current members'
// registries, not the launch-time snapshot.
func ObservabilityHandlerDynamic(p Provider, regs func() []*obs.Registry, fr *obs.FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mountStatus(mux, p)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheusAll(w, regs()...)
	})
	mux.HandleFunc("/flightz", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "no flight recorder", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = fr.DumpTo(w)
	})
	mux.HandleFunc("/tracez.json", func(w http.ResponseWriter, r *http.Request) {
		idx, ok := peIndex(w, r)
		if !ok {
			return
		}
		tr := p.AdaptationTrace(idx)
		if tr == nil {
			http.Error(w, "no trace for that engine", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = core.WriteChromeTrace(w, tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
