package apps

import (
	"fmt"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// App is a built application topology plus the hand-optimized threading its
// developers would have inserted, which the paper uses as the strongest
// manual baseline.
type App struct {
	// Name labels the application in experiment output.
	Name string
	// Graph is the finalized topology.
	Graph *graph.Graph
	// Sink is the terminal counting operator.
	Sink *spl.CountingSink
	// HandPlacement marks the hand-inserted threaded ports (one dedicated
	// thread each) of the hand-optimized variant.
	HandPlacement []bool
	// HandThreads is the number of hand-inserted threads.
	HandThreads int
}

// VWAP builds the paper's 52-operator volume-weighted-average-price
// application (§4.2): a market feed is parsed and split into trade and
// quote streams; trades feed a windowed VWAP aggregation, quotes are scored
// against the current VWAP to detect bargains, and detected bargains flow
// through a post-processing analytics chain to the sink. The hand-optimized
// variant has 9 hand-inserted threads, matching the paper.
func VWAP() (*App, error) {
	a := &App{Name: "vwap-52"}
	g := graph.New()

	connect := func(from graph.NodeID, fromPort int, to graph.NodeID, toPort int, rate float64) error {
		return g.Connect(from, fromPort, to, toPort, rate)
	}

	src := g.AddSource(NewMarketSource(64, 128), spl.NewCostVar(1500))
	parse := g.AddOperator(spl.NewMap("parse", func(t *spl.Tuple) *spl.Tuple { return t }), spl.NewCostVar(200))
	if err := connect(src, 0, parse, 0, 1); err != nil {
		return nil, err
	}

	filterTrade := g.AddOperator(spl.NewFilter("trades", func(t *spl.Tuple) bool { return t.Seq%2 == 0 }), spl.NewCostVar(100))
	filterQuote := g.AddOperator(spl.NewFilter("quotes", func(t *spl.Tuple) bool { return t.Seq%2 == 1 }), spl.NewCostVar(100))
	if err := connect(parse, 0, filterTrade, 0, 1); err != nil {
		return nil, err
	}
	if err := connect(parse, 0, filterQuote, 0, 1); err != nil {
		return nil, err
	}

	// Trade branch: 8 preprocessing operators, the VWAP window, 3
	// post-aggregation operators (12 total).
	prev := filterTrade
	rate := 0.5
	for i := 0; i < 8; i++ {
		cv := spl.NewCostVar(300)
		id := g.AddOperator(spl.NewWork(fmt.Sprintf("trade-pre%d", i), cv), cv)
		if err := connect(prev, 0, id, 0, rate); err != nil {
			return nil, err
		}
		prev, rate = id, 1
	}
	vwap := g.AddOperator(NewVWAPAggregate(256), spl.NewCostVar(500))
	if err := connect(prev, 0, vwap, 0, 1); err != nil {
		return nil, err
	}
	prev = vwap
	for i := 0; i < 3; i++ {
		cv := spl.NewCostVar(200)
		id := g.AddOperator(spl.NewWork(fmt.Sprintf("trade-post%d", i), cv), cv)
		if err := connect(prev, 0, id, 0, 1); err != nil {
			return nil, err
		}
		prev = id
	}
	tradeTail := prev

	// Quote branch: 12 normalization operators.
	prev, rate = filterQuote, 0.5
	for i := 0; i < 12; i++ {
		cv := spl.NewCostVar(300)
		id := g.AddOperator(spl.NewWork(fmt.Sprintf("quote%d", i), cv), cv)
		if err := connect(prev, 0, id, 0, rate); err != nil {
			return nil, err
		}
		prev, rate = id, 1
	}
	quoteTail := prev

	// Bargain detection joins the two branches: quotes on port 0, VWAP
	// updates on port 1.
	bargain := g.AddOperator(NewBargainIndex(), spl.NewCostVar(400))
	if err := connect(quoteTail, 0, bargain, 0, 1); err != nil {
		return nil, err
	}
	if err := connect(tradeTail, 0, bargain, 1, 1); err != nil {
		return nil, err
	}

	// Post-processing analytics chain: 22 operators, fed by detected
	// bargains (roughly a third of quotes).
	prev, rate = bargain, 0.3
	for i := 0; i < 22; i++ {
		cv := spl.NewCostVar(100)
		id := g.AddOperator(spl.NewWork(fmt.Sprintf("post%d", i), cv), cv)
		if err := connect(prev, 0, id, 0, rate); err != nil {
			return nil, err
		}
		prev, rate = id, 1
	}

	a.Sink = spl.NewCountingSink("snk")
	snk := g.AddOperator(a.Sink, spl.NewCostVar(10))
	if err := connect(prev, 0, snk, 0, 1); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	a.Graph = g

	// Hand-optimized threading: the developers inserted 9 threaded ports
	// at the computationally obvious spots — the VWAP window, the bargain
	// join, and seven spread through the post chain — leaving parsing and
	// filtering on the ingest thread, which is why elastic scheduling can
	// beat this configuration (§4.2).
	a.HandPlacement = make([]bool, g.NumNodes())
	hands := []graph.NodeID{vwap, bargain}
	post0 := int(bargain) + 1
	for i := 0; i < 7; i++ {
		hands = append(hands, graph.NodeID(post0+i*3))
	}
	for _, h := range hands {
		a.HandPlacement[h] = true
	}
	a.HandThreads = len(hands)
	return a, nil
}
