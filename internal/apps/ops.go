// Package apps builds the two applications of the paper's evaluation as
// executable topologies: VWAP (52 operators, §4.2) and PacketAnalysis (387
// or 2305 operators, §4.3). Where the paper used proprietary inputs — a
// live market feed, DPDK packet capture of corporate DNS traffic — the
// sources here generate synthetic equivalents with the same tuple sizes and
// key structure (see DESIGN.md, substitutions table). Each build also
// carries the hand-optimized threaded-port placement its developers would
// have inserted, which is the paper's strongest baseline.
package apps

import (
	"math"
	"strconv"
	"sync"

	"streamelastic/internal/spl"
)

// MarketSource generates synthetic trade and quote tuples for the VWAP
// application: Text carries the symbol, Key its hash, Num1 the price, Num2
// the volume; Seq parity distinguishes trades (even) from quotes (odd).
type MarketSource struct {
	// Symbols is the number of distinct tickers.
	Symbols int
	// PayloadBytes sizes the opaque payload (VWAP tuples are small).
	PayloadBytes int
	// MaxTuples bounds the stream; 0 means unbounded.
	MaxTuples uint64

	seq     uint64
	state   uint64
	payload []byte
}

var _ spl.Source = (*MarketSource)(nil)

// NewMarketSource returns a market data source.
func NewMarketSource(symbols, payloadBytes int) *MarketSource {
	return &MarketSource{Symbols: symbols, PayloadBytes: payloadBytes, state: 0x9e3779b9}
}

// Name returns the operator name.
func (m *MarketSource) Name() string { return "market-feed" }

// Process is a no-op: sources have no input ports.
func (m *MarketSource) Process(int, *spl.Tuple, spl.Emitter) {}

// Next emits one trade or quote.
func (m *MarketSource) Next(out spl.Emitter) bool {
	if m.MaxTuples != 0 && m.seq >= m.MaxTuples {
		return false
	}
	if m.payload == nil && m.PayloadBytes > 0 {
		m.payload = make([]byte, m.PayloadBytes)
	}
	m.state = m.state*6364136223846793005 + 1442695040888963407
	sym := int(m.state>>33) % m.Symbols
	price := 50 + 50*math.Abs(math.Sin(float64(m.state>>17)*1e-4))
	volume := float64(1 + (m.state>>7)%1000)
	t := &spl.Tuple{
		Seq:     m.seq,
		Key:     uint64(sym),
		Text:    "SYM" + strconv.Itoa(sym),
		Num1:    price,
		Num2:    volume,
		Payload: m.payload,
	}
	m.seq++
	out.Emit(0, t)
	return true
}

// Reset rewinds the source.
func (m *MarketSource) Reset() { m.seq = 0; m.state = 0x9e3779b9 }

// VWAPAggregate maintains a per-symbol volume-weighted average price over a
// sliding count window and emits the current VWAP for each trade.
type VWAPAggregate struct {
	window int

	mu    sync.Mutex
	bySym map[uint64]*vwapState
}

type vwapState struct {
	pv, vol []float64
	pos     int
	filled  bool
	sumPV   float64
	sumVol  float64
}

var (
	_ spl.Operator = (*VWAPAggregate)(nil)
	_ spl.Stateful = (*VWAPAggregate)(nil)
)

// NewVWAPAggregate returns a VWAP aggregator over the last window trades
// per symbol.
func NewVWAPAggregate(window int) *VWAPAggregate {
	return &VWAPAggregate{window: window, bySym: make(map[uint64]*vwapState)}
}

// Name returns the operator name.
func (v *VWAPAggregate) Name() string { return "vwap" }

// Stateful marks the aggregation window as serialized.
func (v *VWAPAggregate) Stateful() {}

// Process folds the trade into the symbol's window and emits the updated
// VWAP in Num1 (volume in Num2).
func (v *VWAPAggregate) Process(_ int, t *spl.Tuple, out spl.Emitter) {
	v.mu.Lock()
	st := v.bySym[t.Key]
	if st == nil {
		st = &vwapState{pv: make([]float64, v.window), vol: make([]float64, v.window)}
		v.bySym[t.Key] = st
	}
	if st.filled {
		st.sumPV -= st.pv[st.pos]
		st.sumVol -= st.vol[st.pos]
	}
	st.pv[st.pos] = t.Num1 * t.Num2
	st.vol[st.pos] = t.Num2
	st.sumPV += st.pv[st.pos]
	st.sumVol += st.vol[st.pos]
	st.pos++
	if st.pos == v.window {
		st.pos, st.filled = 0, true
	}
	vwap := 0.0
	if st.sumVol > 0 {
		vwap = st.sumPV / st.sumVol
	}
	v.mu.Unlock()
	out.Emit(0, &spl.Tuple{Seq: t.Seq, Key: t.Key, Text: t.Text, Num1: vwap, Num2: t.Num2, Payload: t.Payload})
}

// VWAP returns the current VWAP for a symbol key (0 if unseen).
func (v *VWAPAggregate) VWAP(key uint64) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := v.bySym[key]
	if st == nil || st.sumVol == 0 {
		return 0
	}
	return st.sumPV / st.sumVol
}

// BargainIndex compares quote prices against the most recent VWAP per
// symbol and emits tuples whose quoted price is below it, scoring the
// bargain in Num1. Quotes arrive on port 0, VWAP updates on port 1.
type BargainIndex struct {
	mu   sync.Mutex
	vwap map[uint64]float64
}

var (
	_ spl.Operator = (*BargainIndex)(nil)
	_ spl.Stateful = (*BargainIndex)(nil)
)

// NewBargainIndex returns a bargain detector.
func NewBargainIndex() *BargainIndex {
	return &BargainIndex{vwap: make(map[uint64]float64)}
}

// Name returns the operator name.
func (b *BargainIndex) Name() string { return "bargain-index" }

// Stateful marks the VWAP table as serialized.
func (b *BargainIndex) Stateful() {}

// Process updates the VWAP table (port 1) or scores a quote (port 0).
func (b *BargainIndex) Process(port int, t *spl.Tuple, out spl.Emitter) {
	b.mu.Lock()
	if port == 1 {
		b.vwap[t.Key] = t.Num1
		b.mu.Unlock()
		return
	}
	vwap := b.vwap[t.Key]
	b.mu.Unlock()
	if vwap > 0 && t.Num1 < vwap {
		score := (vwap - t.Num1) * t.Num2
		out.Emit(0, &spl.Tuple{Seq: t.Seq, Key: t.Key, Text: t.Text, Num1: score, Num2: t.Num2, Payload: t.Payload})
	}
}

// PacketSource generates synthetic DNS-query tuples standing in for the
// paper's DPDK capture: ~256-byte packets whose Text is a queried domain
// name, a fraction of which are DGA-like random strings.
type PacketSource struct {
	// PayloadBytes sizes the packet body (the paper notes ~256 B tuples).
	PayloadBytes int
	// DGARatio is the fraction of algorithmically-generated domains.
	DGARatio float64
	// MaxTuples bounds the stream; 0 means unbounded.
	MaxTuples uint64

	name    string
	seq     uint64
	state   uint64
	payload []byte
}

var _ spl.Source = (*PacketSource)(nil)

// NewPacketSource returns a packet source with the given name (the 8-source
// application instantiates eight of them).
func NewPacketSource(name string, payloadBytes int) *PacketSource {
	return &PacketSource{name: name, PayloadBytes: payloadBytes, DGARatio: 0.05, state: 0x2545f4914f6cdd1d}
}

// Name returns the operator name.
func (p *PacketSource) Name() string { return p.name }

// Process is a no-op: sources have no input ports.
func (p *PacketSource) Process(int, *spl.Tuple, spl.Emitter) {}

var commonDomains = []string{
	"example.com", "cdn.internal.net", "mail.corp.example", "api.service.io",
	"static.assets.example", "db.cluster.local", "auth.login.example",
}

// Next emits one DNS-query tuple.
func (p *PacketSource) Next(out spl.Emitter) bool {
	if p.MaxTuples != 0 && p.seq >= p.MaxTuples {
		return false
	}
	if p.payload == nil && p.PayloadBytes > 0 {
		p.payload = make([]byte, p.PayloadBytes)
	}
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	var domain string
	if float64(p.state%1000)/1000 < p.DGARatio {
		// DGA-like: random letters.
		b := make([]byte, 12)
		s := p.state
		for i := range b {
			s = s*6364136223846793005 + 1
			b[i] = byte('a' + (s>>33)%26)
		}
		domain = string(b) + ".com"
	} else {
		domain = commonDomains[p.state%uint64(len(commonDomains))]
	}
	t := &spl.Tuple{
		Seq:     p.seq,
		Key:     p.state,
		Text:    domain,
		Num1:    float64(p.state % 65536), // source port
		Payload: p.payload,
	}
	p.seq++
	out.Emit(0, t)
	return true
}

// Reset rewinds the source.
func (p *PacketSource) Reset() { p.seq = 0; p.state = 0x2545f4914f6cdd1d }

// EntropyScore computes the Shannon entropy of the Text attribute — the
// classic first feature of DGA detection — storing it in Num1.
type EntropyScore struct {
	name string
}

var _ spl.Operator = (*EntropyScore)(nil)

// NewEntropyScore returns an entropy-scoring operator.
func NewEntropyScore(name string) *EntropyScore { return &EntropyScore{name: name} }

// Name returns the operator name.
func (e *EntropyScore) Name() string { return e.name }

// Process computes entropy over t.Text and forwards the tuple.
func (e *EntropyScore) Process(_ int, t *spl.Tuple, out spl.Emitter) {
	var freq [256]int
	for i := 0; i < len(t.Text); i++ {
		freq[t.Text[i]]++
	}
	entropy := 0.0
	n := float64(len(t.Text))
	if n > 0 {
		for _, f := range freq {
			if f == 0 {
				continue
			}
			p := float64(f) / n
			entropy -= p * math.Log2(p)
		}
	}
	t.Num1 = entropy
	out.Emit(0, t)
}
