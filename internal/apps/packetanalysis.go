package apps

import (
	"fmt"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// PacketAnalysis builds the paper's network-monitoring application (§4.3):
// each source ingests packets (synthetic DNS queries standing in for the
// DPDK capture) and fans them out to three analysis pipelines — DGA
// detection, tunneling detection and volumetric analysis — whose reports
// feed one shared sink. The 1-source variant has 387 operators with 17
// hand-inserted threads; the 8-source variant has 2305 operators with 129,
// matching the paper's deployments.
func PacketAnalysis(sources int) (*App, error) {
	var parseLen, chainLen int
	switch sources {
	case 1:
		parseLen, chainLen = 6, 125 // 1 + 6+1+3*(125+1) + 1 = 387
	case 8:
		parseLen, chainLen = 4, 93 // 8*(1+4+1+3*(93+1)) + 1 = 2305
	default:
		return nil, fmt.Errorf("apps: PacketAnalysis supports 1 or 8 sources, got %d", sources)
	}

	a := &App{Name: fmt.Sprintf("packetanalysis-%dsrc", sources)}
	g := graph.New()
	a.Sink = spl.NewCountingSink("snk")

	type chainSpec struct {
		name  string
		flops float64
	}
	// Per-operator analytics costs are modest; the application is bounded
	// by ingest (the paper's DPDK sources run at line rate), which is why
	// the elastic schemes match the 129-thread hand-optimized variant with
	// an order of magnitude fewer threads.
	chains := []chainSpec{
		{name: "dga", flops: 40},
		{name: "tunnel", flops: 25},
		{name: "volumetric", flops: 10},
	}

	var hand []graph.NodeID
	var reportTails []graph.NodeID
	for s := 0; s < sources; s++ {
		src := g.AddSource(NewPacketSource(fmt.Sprintf("nic%d", s), 256), spl.NewCostVar(2000))
		prev := src
		for p := 0; p < parseLen; p++ {
			cv := spl.NewCostVar(200)
			id := g.AddOperator(spl.NewWork(fmt.Sprintf("s%d-parse%d", s, p), cv), cv)
			if err := g.Connect(prev, 0, id, 0, 1); err != nil {
				return nil, err
			}
			prev = id
		}
		// The dispatch operator fans every packet out to all three
		// analysis pipelines.
		dispatchCV := spl.NewCostVar(20)
		dispatch := g.AddOperator(spl.NewWork(fmt.Sprintf("s%d-dispatch", s), dispatchCV), dispatchCV)
		if err := g.Connect(prev, 0, dispatch, 0, 1); err != nil {
			return nil, err
		}
		hand = append(hand, dispatch)

		for _, spec := range chains {
			prev = dispatch
			placed := 0
			for d := 0; d < chainLen; d++ {
				var id graph.NodeID
				if d == 0 && spec.name == "dga" {
					// DGA detection opens with a real entropy feature.
					id = g.AddOperator(NewEntropyScore(fmt.Sprintf("s%d-dga-entropy", s)), spl.NewCostVar(spec.flops))
				} else {
					cv := spl.NewCostVar(spec.flops)
					id = g.AddOperator(spl.NewWork(fmt.Sprintf("s%d-%s%d", s, spec.name, d), cv), cv)
				}
				if err := g.Connect(prev, 0, id, 0, 1); err != nil {
					return nil, err
				}
				// Hand-optimized: 5 threaded ports spread evenly along
				// each analysis chain.
				if d%(chainLen/5+1) == 0 && placed < 5 {
					hand = append(hand, id)
					placed++
				}
				prev = id
			}
			cv := spl.NewCostVar(20)
			report := g.AddOperator(spl.NewWork(fmt.Sprintf("s%d-%s-report", s, spec.name), cv), cv)
			if err := g.Connect(prev, 0, report, 0, 1); err != nil {
				return nil, err
			}
			reportTails = append(reportTails, report)
		}
	}

	snk := g.AddOperator(a.Sink, spl.NewCostVar(10))
	for _, r := range reportTails {
		if err := g.Connect(r, 0, snk, 0, 1); err != nil {
			return nil, err
		}
	}
	hand = append(hand, snk)
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	a.Graph = g

	a.HandPlacement = make([]bool, g.NumNodes())
	for _, h := range hand {
		a.HandPlacement[h] = true
	}
	a.HandThreads = len(hand)
	return a, nil
}
