package apps

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/graph"
	"streamelastic/internal/sim"
	"streamelastic/internal/spl"
)

func TestVWAPMatchesPaperShape(t *testing.T) {
	a, err := VWAP()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Graph.NumNodes(); got != 52 {
		t.Fatalf("VWAP has %d operators, want 52 (paper §4.2)", got)
	}
	if a.HandThreads != 9 {
		t.Fatalf("VWAP hand-optimized threads = %d, want 9", a.HandThreads)
	}
	placed := 0
	for i, p := range a.HandPlacement {
		if p {
			placed++
			if a.Graph.Node(graph.NodeID(i)).Source {
				t.Fatalf("hand placement on source node %d", i)
			}
		}
	}
	if placed != a.HandThreads {
		t.Fatalf("hand placement count %d != HandThreads %d", placed, a.HandThreads)
	}
	if len(a.Graph.Sources()) != 1 || len(a.Graph.Sinks()) != 1 {
		t.Fatalf("VWAP sources/sinks = %d/%d", len(a.Graph.Sources()), len(a.Graph.Sinks()))
	}
}

func TestPacketAnalysisMatchesPaperShape(t *testing.T) {
	cases := []struct {
		sources, ops, hand int
	}{
		{1, 387, 17},
		{8, 2305, 129},
	}
	for _, c := range cases {
		a, err := PacketAnalysis(c.sources)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Graph.NumNodes(); got != c.ops {
			t.Fatalf("%d-source app has %d operators, want %d (paper §4.3)", c.sources, got, c.ops)
		}
		if a.HandThreads != c.hand {
			t.Fatalf("%d-source hand threads = %d, want %d", c.sources, a.HandThreads, c.hand)
		}
		if got := len(a.Graph.Sources()); got != c.sources {
			t.Fatalf("sources = %d, want %d", got, c.sources)
		}
		if got := len(a.Graph.Sinks()); got != 1 {
			t.Fatalf("sinks = %d, want 1", got)
		}
	}
	if _, err := PacketAnalysis(3); err == nil {
		t.Fatal("unsupported source count accepted")
	}
}

func TestVWAPRunsLive(t *testing.T) {
	a, err := VWAP()
	if err != nil {
		t.Fatal(err)
	}
	// Bound the market feed so the run terminates.
	src := a.Graph.Node(a.Graph.Sources()[0]).Op.(*MarketSource)
	src.MaxTuples = 3000
	e, err := exec.New(a.Graph, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	// Apply the hand-optimized placement to exercise queued execution.
	if err := e.ApplyPlacement(a.HandPlacement); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for a.Sink.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Sink.Count() == 0 {
		t.Fatal("VWAP produced no bargains from 3000 market tuples")
	}
}

func TestPacketAnalysisRunsOnSim(t *testing.T) {
	a, err := PacketAnalysis(1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(a.Graph, sim.Xeon176(), sim.WithPayload(256))
	if err != nil {
		t.Fatal(err)
	}
	manual := e.Throughput()
	if manual <= 0 {
		t.Fatal("manual throughput is zero")
	}
	if err := e.ApplyPlacement(a.HandPlacement); err != nil {
		t.Fatal(err)
	}
	if err := e.SetThreadCount(17); err != nil {
		t.Fatal(err)
	}
	hand := e.Throughput()
	if hand <= manual {
		t.Fatalf("hand-optimized placement (%v) not faster than manual (%v)", hand, manual)
	}
}

func TestVWAPAggregateWindow(t *testing.T) {
	v := NewVWAPAggregate(2)
	var last *spl.Tuple
	out := spl.EmitterFunc(func(_ int, t *spl.Tuple) { last = t })
	v.Process(0, &spl.Tuple{Key: 1, Num1: 10, Num2: 100}, out)
	if last.Num1 != 10 {
		t.Fatalf("vwap after one trade = %v, want 10", last.Num1)
	}
	v.Process(0, &spl.Tuple{Key: 1, Num1: 20, Num2: 100}, out)
	if last.Num1 != 15 {
		t.Fatalf("vwap after two equal-volume trades = %v, want 15", last.Num1)
	}
	// Window of 2: the first trade is evicted.
	v.Process(0, &spl.Tuple{Key: 1, Num1: 30, Num2: 300}, out)
	want := (20.0*100 + 30*300) / 400
	if last.Num1 != want {
		t.Fatalf("vwap after eviction = %v, want %v", last.Num1, want)
	}
	if got := v.VWAP(1); got != want {
		t.Fatalf("VWAP(1) = %v, want %v", got, want)
	}
	if got := v.VWAP(99); got != 0 {
		t.Fatalf("VWAP(unseen) = %v, want 0", got)
	}
}

func TestBargainIndexDetectsBargains(t *testing.T) {
	b := NewBargainIndex()
	var got []*spl.Tuple
	out := spl.EmitterFunc(func(_ int, t *spl.Tuple) { got = append(got, t) })
	// No VWAP known yet: no bargain.
	b.Process(0, &spl.Tuple{Key: 1, Num1: 5, Num2: 10}, out)
	if len(got) != 0 {
		t.Fatal("bargain emitted before any VWAP update")
	}
	// VWAP update on port 1, then a quote below it.
	b.Process(1, &spl.Tuple{Key: 1, Num1: 10}, out)
	b.Process(0, &spl.Tuple{Key: 1, Num1: 8, Num2: 10}, out)
	if len(got) != 1 {
		t.Fatalf("bargains = %d, want 1", len(got))
	}
	if got[0].Num1 != 20 { // (10-8)*10
		t.Fatalf("bargain score = %v, want 20", got[0].Num1)
	}
	// Quote above VWAP: no bargain.
	b.Process(0, &spl.Tuple{Key: 1, Num1: 12, Num2: 10}, out)
	if len(got) != 1 {
		t.Fatal("non-bargain quote emitted")
	}
}

func TestMarketSourceAlternatesAndBounds(t *testing.T) {
	m := NewMarketSource(4, 64)
	m.MaxTuples = 10
	var tuples []*spl.Tuple
	out := spl.EmitterFunc(func(_ int, t *spl.Tuple) { tuples = append(tuples, t) })
	for m.Next(out) {
	}
	if len(tuples) != 10 {
		t.Fatalf("market source emitted %d, want 10", len(tuples))
	}
	for i, tp := range tuples {
		if tp.Seq != uint64(i) {
			t.Fatalf("tuple %d seq %d", i, tp.Seq)
		}
		if tp.Key >= 4 {
			t.Fatalf("symbol key %d out of range", tp.Key)
		}
		if tp.Num1 <= 0 || tp.Num2 <= 0 {
			t.Fatalf("tuple %d has non-positive price/volume", i)
		}
	}
	m.Reset()
	if !m.Next(out) {
		t.Fatal("Next after Reset failed")
	}
}

func TestPacketSourceGeneratesDomains(t *testing.T) {
	p := NewPacketSource("nic0", 256)
	p.DGARatio = 0.5
	p.MaxTuples = 200
	var domains []string
	out := spl.EmitterFunc(func(_ int, tp *spl.Tuple) {
		domains = append(domains, tp.Text)
		if len(tp.Payload) != 256 {
			t.Fatalf("payload %d bytes, want 256", len(tp.Payload))
		}
	})
	for p.Next(out) {
	}
	if len(domains) != 200 {
		t.Fatalf("packet source emitted %d, want 200", len(domains))
	}
	known := map[string]bool{}
	for _, d := range commonDomains {
		known[d] = true
	}
	dga := 0
	for _, d := range domains {
		if !known[d] {
			dga++
		}
	}
	if dga == 0 || dga == len(domains) {
		t.Fatalf("DGA mix = %d/%d, want a mixture", dga, len(domains))
	}
}

func TestEntropyScoreSeparatesDGA(t *testing.T) {
	e := NewEntropyScore("entropy")
	score := func(s string) float64 {
		var out float64
		e.Process(0, &spl.Tuple{Text: s}, spl.EmitterFunc(func(_ int, t *spl.Tuple) { out = t.Num1 }))
		return out
	}
	low := score("aaaaaaaaaaaa.com")
	high := score("xq7kf9zj2wpv.com")
	if high <= low {
		t.Fatalf("entropy of DGA-like domain (%v) not above repetitive domain (%v)", high, low)
	}
	if score("") != 0 {
		t.Fatal("entropy of empty text not 0")
	}
}
