package pe

import (
	"fmt"
	"sync"
	"time"

	"streamelastic/internal/exec"
	"streamelastic/internal/monitor"
)

// defaultStallAfter is how long without progress counts as a stall for the
// watchdog probes when Options.StallAfter is zero.
const defaultStallAfter = time.Second

// engineProbe detects a wedged PE: scheduler queues holding tuples while
// the sink count makes no progress for a stall interval. An idle PE (empty
// queues) is healthy by definition — no work, no progress expected.
type engineProbe struct {
	eng        *exec.Engine
	stallAfter time.Duration

	mu       sync.Mutex
	lastSink uint64
	lastMove time.Time
}

func (p *engineProbe) check(now time.Time) (bool, string) {
	sink := p.eng.SinkCount()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastMove.IsZero() || sink != p.lastSink {
		p.lastSink = sink
		p.lastMove = now
		return true, ""
	}
	depth := p.eng.QueueStats().TotalDepth
	if depth == 0 {
		p.lastMove = now
		return true, ""
	}
	if stall := now.Sub(p.lastMove); stall >= p.stallAfter {
		return false, fmt.Sprintf("%d tuples queued, no sink progress for %v",
			depth, stall.Round(time.Millisecond))
	}
	return true, ""
}

// exportProbe detects a sick stream: the export is between connections
// (redialing a dead peer) or its writer has frames staged but has made no
// progress for a stall interval (peer accepting but not reading, or an
// injected writer stall).
type exportProbe struct {
	exp        *exportOp
	stallAfter time.Duration
}

func (p *exportProbe) check(now time.Time) (bool, string) {
	if !p.exp.Connected() {
		return false, "stream disconnected"
	}
	if p.exp.StagedDepth() > 0 {
		if stall := now.Sub(p.exp.LastProgress()); stall >= p.stallAfter {
			return false, fmt.Sprintf("writer stalled for %v with frames staged",
				stall.Round(time.Millisecond))
		}
	}
	return true, ""
}

// watchdogFor builds the PE's watchdog: engine probe plus one probe per
// export, freezing the PE's coordinator (nil for observe-only) while any
// probe stays unhealthy.
func watchdogFor(rt *PERuntime, cfg monitor.WatchdogConfig, stallAfter time.Duration) *monitor.Watchdog {
	if stallAfter <= 0 {
		stallAfter = defaultStallAfter
	}
	ep := &engineProbe{eng: rt.Eng, stallAfter: stallAfter}
	probes := []monitor.Probe{{Name: "engine", Check: ep.check}}
	for i, exp := range rt.Plan.exports {
		xp := &exportProbe{exp: exp, stallAfter: stallAfter}
		probes = append(probes, monitor.Probe{
			Name:  fmt.Sprintf("export-s%d", rt.Plan.Exports[i].Stream),
			Check: xp.check,
		})
	}
	var freezer monitor.Freezer
	if rt.Coord != nil {
		freezer = rt.Coord
	}
	return monitor.NewWatchdog(fmt.Sprintf("pe%d", rt.Plan.PE), probes, freezer, cfg)
}
