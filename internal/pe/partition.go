package pe

import (
	"fmt"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// Assignment maps every node of a job graph to a PE index. PE indices must
// be dense, starting at 0.
type Assignment []int

// StreamEnd references one endpoint of a cross-PE stream inside a PE plan.
type StreamEnd struct {
	// Stream is the cross-edge stream id, shared by the matching export
	// and import ends.
	Stream int
	// Local is the node id of the export operator or import source inside
	// the PE's graph.
	Local graph.NodeID
}

// CrossEdge is an edge of the job graph whose endpoints live in different
// PEs; it becomes a TCP stream at launch.
type CrossEdge struct {
	Stream   int
	FromPE   int
	ToPE     int
	From     graph.NodeID // global ids in the job graph
	FromPort int
	To       graph.NodeID
	ToPort   int
}

// Plan is one PE's slice of the job graph: the local subgraph plus the
// import/export stubs standing in for cross-PE streams.
type Plan struct {
	// PE is this plan's index.
	PE int
	// Graph is the local operator graph, finalized.
	Graph *graph.Graph
	// LocalOf maps global node ids to local ids (-1 when the node lives in
	// another PE).
	LocalOf []graph.NodeID
	// Imports and Exports list this PE's stream endpoints.
	Imports []StreamEnd
	Exports []StreamEnd

	imports []*importSource
	exports []*exportOp
}

// Partition splits a finalized job graph across PEs according to assign.
// Every cross-PE edge gets an export operator in the sender PE and an
// import source in the receiver PE; at launch each pair is connected by a
// TCP stream.
func Partition(g *graph.Graph, assign Assignment) ([]*Plan, []CrossEdge, error) {
	if !g.Finalized() {
		return nil, nil, fmt.Errorf("pe: job graph not finalized")
	}
	n := g.NumNodes()
	if len(assign) != n {
		return nil, nil, fmt.Errorf("pe: assignment covers %d nodes, graph has %d", len(assign), n)
	}
	numPE := 0
	for i, p := range assign {
		if p < 0 {
			return nil, nil, fmt.Errorf("pe: node %d assigned to negative PE %d", i, p)
		}
		if p+1 > numPE {
			numPE = p + 1
		}
	}
	seen := make([]bool, numPE)
	for _, p := range assign {
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok {
			return nil, nil, fmt.Errorf("pe: PE %d has no operators (indices must be dense)", p)
		}
	}

	plans := make([]*Plan, numPE)
	for p := range plans {
		plans[p] = &Plan{
			PE:      p,
			Graph:   graph.New(),
			LocalOf: make([]graph.NodeID, n),
		}
		for i := range plans[p].LocalOf {
			plans[p].LocalOf[i] = -1
		}
	}

	// Nodes, in global id order so local ids are deterministic.
	for i := 0; i < n; i++ {
		nd := g.Node(graph.NodeID(i))
		plan := plans[assign[i]]
		var local graph.NodeID
		if nd.Source {
			local = plan.Graph.AddSource(nd.Op, nd.Cost)
		} else {
			local = plan.Graph.AddOperator(nd.Op, nd.Cost)
		}
		if nd.Contended {
			plan.Graph.SetContended(local)
		}
		plan.LocalOf[i] = local
	}

	// Edges: local edges copy through; cross edges become export/import
	// stubs.
	var crosses []CrossEdge
	for i := 0; i < n; i++ {
		for _, e := range g.Node(graph.NodeID(i)).Out {
			fromPE, toPE := assign[e.From], assign[e.To]
			if fromPE == toPE {
				plan := plans[fromPE]
				err := plan.Graph.Connect(plan.LocalOf[e.From], e.FromPort, plan.LocalOf[e.To], e.ToPort, e.RateFactor)
				if err != nil {
					return nil, nil, fmt.Errorf("pe %d: %w", fromPE, err)
				}
				continue
			}
			stream := len(crosses)
			crosses = append(crosses, CrossEdge{
				Stream: stream, FromPE: fromPE, ToPE: toPE,
				From: e.From, FromPort: e.FromPort, To: e.To, ToPort: e.ToPort,
			})

			sender := plans[fromPE]
			exp := newExportOp(fmt.Sprintf("export-s%d", stream))
			expID := sender.Graph.AddOperator(exp, spl.NewCostVar(exportFLOPs))
			if err := sender.Graph.Connect(sender.LocalOf[e.From], e.FromPort, expID, 0, e.RateFactor); err != nil {
				return nil, nil, fmt.Errorf("pe %d export: %w", fromPE, err)
			}
			sender.Exports = append(sender.Exports, StreamEnd{Stream: stream, Local: expID})
			sender.exports = append(sender.exports, exp)

			receiver := plans[toPE]
			imp := newImportSource(fmt.Sprintf("import-s%d", stream))
			impID := receiver.Graph.AddSource(imp, spl.NewCostVar(importFLOPs))
			if err := receiver.Graph.Connect(impID, 0, receiver.LocalOf[e.To], e.ToPort, 1); err != nil {
				return nil, nil, fmt.Errorf("pe %d import: %w", toPE, err)
			}
			receiver.Imports = append(receiver.Imports, StreamEnd{Stream: stream, Local: impID})
			receiver.imports = append(receiver.imports, imp)
		}
	}

	for p, plan := range plans {
		if err := plan.Graph.Finalize(); err != nil {
			return nil, nil, fmt.Errorf("pe %d graph: %w", p, err)
		}
	}
	return plans, crosses, nil
}

// Cost hints for the transport stubs: serialization work per tuple.
const (
	exportFLOPs = 300
	importFLOPs = 300
)

// AssignContiguous splits the graph's topological order into numPE
// contiguous slices of roughly equal size — a simple placement that keeps
// pipeline neighbours together and cross-PE streams few.
func AssignContiguous(g *graph.Graph, numPE int) (Assignment, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("pe: graph not finalized")
	}
	n := g.NumNodes()
	if numPE < 1 || numPE > n {
		return nil, fmt.Errorf("pe: cannot split %d nodes across %d PEs", n, numPE)
	}
	assign := make(Assignment, n)
	topo := g.Topo()
	for i, id := range topo {
		p := i * numPE / n
		assign[id] = p
	}
	return assign, nil
}
