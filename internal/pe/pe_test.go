package pe

import (
	"context"
	"testing"
	"time"

	"streamelastic/internal/apps"
	"streamelastic/internal/core"
	"streamelastic/internal/exec"
	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// jobChain builds a source -> n work ops -> sink job graph.
func jobChain(t *testing.T, workOps int, tuples uint64) (*graph.Graph, *spl.CountingSink) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 32)
	gen.MaxTuples = tuples
	prev := g.AddSource(gen, spl.NewCostVar(10))
	for i := 0; i < workOps; i++ {
		cv := spl.NewCostVar(100)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	sink := spl.NewCountingSink("snk")
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

func TestPartitionValidation(t *testing.T) {
	g, _ := jobChain(t, 2, 10)
	if _, _, err := Partition(g, Assignment{0, 0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, _, err := Partition(g, Assignment{0, -1, 0, 0}); err == nil {
		t.Fatal("negative PE accepted")
	}
	if _, _, err := Partition(g, Assignment{0, 0, 2, 2}); err == nil {
		t.Fatal("sparse PE indices accepted")
	}
	if _, _, err := Partition(graph.New(), Assignment{}); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
}

func TestPartitionSplitsChain(t *testing.T) {
	g, _ := jobChain(t, 4, 10) // 6 nodes: src, w0..w3, sink
	assign := Assignment{0, 0, 0, 1, 1, 1}
	plans, crosses, err := Partition(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("%d plans, want 2", len(plans))
	}
	if len(crosses) != 1 {
		t.Fatalf("%d cross edges, want 1", len(crosses))
	}
	// PE 0: src, w0, w1 + 1 export = 4 nodes.
	if got := plans[0].Graph.NumNodes(); got != 4 {
		t.Fatalf("PE0 has %d nodes, want 4", got)
	}
	// PE 1: w2, w3, sink + 1 import = 4 nodes.
	if got := plans[1].Graph.NumNodes(); got != 4 {
		t.Fatalf("PE1 has %d nodes, want 4", got)
	}
	if len(plans[0].Exports) != 1 || len(plans[0].Imports) != 0 {
		t.Fatalf("PE0 endpoints: %d exports, %d imports", len(plans[0].Exports), len(plans[0].Imports))
	}
	if len(plans[1].Imports) != 1 || len(plans[1].Exports) != 0 {
		t.Fatalf("PE1 endpoints: %d imports, %d exports", len(plans[1].Imports), len(plans[1].Exports))
	}
	// The import is a source of PE1's graph.
	if srcs := plans[1].Graph.Sources(); len(srcs) != 1 {
		t.Fatalf("PE1 sources = %v, want exactly the import", srcs)
	}
	// Every global node is somewhere, exactly once.
	for i := 0; i < g.NumNodes(); i++ {
		found := 0
		for _, p := range plans {
			if p.LocalOf[i] >= 0 {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("global node %d present in %d plans", i, found)
		}
	}
}

func TestAssignContiguous(t *testing.T) {
	g, _ := jobChain(t, 8, 10)
	assign, err := AssignContiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != g.NumNodes() {
		t.Fatalf("assignment length %d", len(assign))
	}
	// Contiguity in topo order and density.
	prev := 0
	for _, id := range g.Topo() {
		p := assign[id]
		if p < prev || p > prev+1 {
			t.Fatalf("assignment not contiguous in topo order: %d after %d", p, prev)
		}
		prev = p
	}
	if prev != 2 {
		t.Fatalf("last PE = %d, want 2", prev)
	}
	if _, err := AssignContiguous(g, 0); err == nil {
		t.Fatal("0 PEs accepted")
	}
	if _, err := AssignContiguous(g, g.NumNodes()+1); err == nil {
		t.Fatal("more PEs than nodes accepted")
	}
}

// launchAndWait runs a job until the sink sees want tuples.
func launchAndWait(t *testing.T, g *graph.Graph, assign Assignment, opts Options, sink *spl.CountingSink, want uint64) *Job {
	t.Helper()
	job, err := Launch(g, assign, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	t.Cleanup(job.Stop)
	deadline := time.Now().Add(30 * time.Second)
	for sink.Count() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.Count(); got != want {
		t.Fatalf("final sink received %d tuples, want %d", got, want)
	}
	return job
}

func TestJobTwoPEsDeliversAllTuples(t *testing.T) {
	const n = 3000
	g, sink := jobChain(t, 4, n)
	assign := Assignment{0, 0, 0, 1, 1, 1}
	job := launchAndWait(t, g, assign, Options{DisableElasticity: true}, sink, n)
	// The stream carried every tuple exactly once.
	exp := job.PEs[0].Plan.exports[0]
	imp := job.PEs[1].Plan.imports[0]
	if exp.Sent() != n {
		t.Fatalf("export sent %d, want %d", exp.Sent(), n)
	}
	if exp.Dropped() != 0 {
		t.Fatalf("export dropped %d tuples", exp.Dropped())
	}
	if imp.Received() != n {
		t.Fatalf("import received %d, want %d", imp.Received(), n)
	}
	if len(job.Streams()) != 1 {
		t.Fatalf("streams = %d, want 1", len(job.Streams()))
	}
}

func TestJobThreePEsWithElasticity(t *testing.T) {
	const n = 3000
	g, sink := jobChain(t, 7, n) // 9 nodes
	assign, err := AssignContiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Exec:    exec.Options{AdaptPeriod: 30 * time.Millisecond, MaxThreads: 4},
		Elastic: core.DefaultConfig(),
	}
	opts.Elastic.MaxThreads = 4
	job := launchAndWait(t, g, assign, opts, sink, n)
	// Every PE ran its own coordinator and recorded observations (the
	// first observation lands one adaptation period after Start, which may
	// be after the bounded stream already finished).
	deadline := time.Now().Add(10 * time.Second)
	for _, rt := range job.PEs {
		if rt.Coord == nil {
			t.Fatal("PE without coordinator")
		}
		for len(rt.Coord.Trace()) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if len(rt.Coord.Trace()) == 0 {
			t.Fatalf("PE %d recorded no adaptation", rt.Plan.PE)
		}
	}
}

func TestJobStopIdempotentAndUnblocksIdleStreams(t *testing.T) {
	// Unbounded source, but we stop the job while streams are active.
	g, _ := jobChain(t, 4, 0)
	assign := Assignment{0, 0, 0, 1, 1, 1}
	job, err := Launch(g, assign, Options{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		job.Stop()
		job.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("job.Stop did not return; a stream reader is stuck")
	}
}

func TestJobStartTwice(t *testing.T) {
	g, _ := jobChain(t, 2, 100)
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestJobFanOutAcrossPEs(t *testing.T) {
	// src -> split -> two workers in different PEs -> shared sink in a
	// third PE: exercises multiple streams into and out of PEs.
	g := graph.New()
	gen := spl.NewGenerator("src", 16)
	gen.MaxTuples = 2000
	src := g.AddSource(gen, nil)
	split := g.AddOperator(spl.NewRoundRobinSplit("split", 2), nil)
	w0cv := spl.NewCostVar(100)
	w0 := g.AddOperator(spl.NewWork("w0", w0cv), w0cv)
	w1cv := spl.NewCostVar(100)
	w1 := g.AddOperator(spl.NewWork("w1", w1cv), w1cv)
	sink := spl.NewCountingSink("snk")
	snk := g.AddOperator(sink, nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(src, 0, split, 0, 1))
	must(g.Connect(split, 0, w0, 0, 0.5))
	must(g.Connect(split, 1, w1, 0, 0.5))
	must(g.Connect(w0, 0, snk, 0, 1))
	must(g.Connect(w1, 0, snk, 0, 1))
	must(g.Finalize())

	assign := Assignment{0, 0, 1, 1, 2}
	job := launchAndWait(t, g, assign, Options{DisableElasticity: true}, sink, 2000)
	if got := len(job.Streams()); got != 4 {
		t.Fatalf("streams = %d, want 4 (2 into PE1, 2 out of PE1)", got)
	}
}

func TestJobDrainAndStop(t *testing.T) {
	// Unbounded source across 2 PEs: drain must stop the real source,
	// flush every stream, and deliver everything in flight.
	g, sink := jobChain(t, 4, 0)
	assign := Assignment{0, 0, 0, 1, 1, 1}
	job, err := Launch(g, assign, Options{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sink.Count() < 500 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !job.DrainAndStop(15 * time.Second) {
		t.Fatal("job did not drain")
	}
	// Conservation after drain: everything the export sent arrived.
	exp := job.PEs[0].Plan.exports[0]
	imp := job.PEs[1].Plan.imports[0]
	if exp.Sent() != imp.Received() {
		t.Fatalf("stream lost tuples in drain: sent %d received %d", exp.Sent(), imp.Received())
	}
	if sink.Count() != imp.Received() {
		t.Fatalf("PE1 lost tuples in drain: received %d, sink %d", imp.Received(), sink.Count())
	}
}

func TestPartitionLargeApplicationGraph(t *testing.T) {
	// Partition the paper's 8-source PacketAnalysis graph (2305 operators)
	// across 8 PEs: every node placed once, plans finalized, transport
	// stubs consistent.
	a, err := apps.PacketAnalysis(8)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := AssignContiguous(a.Graph, 8)
	if err != nil {
		t.Fatal(err)
	}
	plans, crosses, err := Partition(a.Graph, assign)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 8 {
		t.Fatalf("plans = %d", len(plans))
	}
	totalNodes := 0
	exports, imports := 0, 0
	for _, p := range plans {
		totalNodes += p.Graph.NumNodes()
		exports += len(p.Exports)
		imports += len(p.Imports)
	}
	if exports != len(crosses) || imports != len(crosses) {
		t.Fatalf("stub counts: %d exports, %d imports, %d streams", exports, imports, len(crosses))
	}
	if totalNodes != a.Graph.NumNodes()+2*len(crosses) {
		t.Fatalf("node conservation: %d PE nodes, %d original + %d stubs",
			totalNodes, a.Graph.NumNodes(), 2*len(crosses))
	}
}
