//go:build !race

package pe

// raceDetectorEnabled reports whether this test binary was built with the
// race detector; see race_on_test.go.
const raceDetectorEnabled = false
