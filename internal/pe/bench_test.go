package pe

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/spl"
)

// benchPayloads are the wire sizes the transport benchmarks sweep: a tiny
// tuple whose whole batch record fits in 64 bytes (the shape where per-frame
// overhead dominates), a small telemetry-style tuple, a typical record, and a
// bulk frame.
var benchPayloads = []int{16, 64, 1024, 16384}

// benchTuple returns a template tuple with a pooled payload of n bytes and
// no text, so the decode side exercises pure pooled construction.
func benchTuple(n int) *spl.Tuple {
	t := spl.AcquireTuple()
	t.Seq = 42
	t.Key = 7
	t.Time = 123456789
	t.Num1 = 3.25
	t.Num2 = -1.5
	t.AcquirePayload(n)
	for i := range t.Payload {
		t.Payload[i] = byte(i)
	}
	return t
}

// runImportDrain consumes tuples from an import source on a dedicated
// goroutine until want tuples arrived, releasing each back to the pool.
func runImportDrain(imp *importSource, want uint64) (*atomic.Uint64, chan struct{}) {
	var got atomic.Uint64
	em := spl.EmitterFunc(func(_ int, t *spl.Tuple) {
		got.Add(1)
		t.Release()
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got.Load() < want && imp.Next(em) {
		}
	}()
	return &got, done
}

// BenchmarkExportImport measures the batched transport end to end over a
// loopback TCP pair: Process stages pooled clones, the writer goroutine
// coalesces frames, the receive side decodes into pooled tuples and
// batch-drains. tuples/s is reported alongside ns/op.
func BenchmarkExportImport(b *testing.B) {
	for _, size := range benchPayloads {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			send, recv := loopbackPair(b)
			exp := newExportOp("x")
			// A long block timeout makes the benchmark lossless: the ring
			// applies backpressure instead of dropping under burst.
			exp.cfg = TransportConfig{BlockTimeout: time.Minute}.withDefaults()
			if err := exp.connect(send, ""); err != nil {
				b.Fatal(err)
			}
			imp := newImportSource("i")
			imp.connect(recv, nil)
			_, done := runImportDrain(imp, uint64(b.N))

			tp := benchTuple(size)
			defer tp.Release()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exp.Process(0, tp, nil)
			}
			<-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			if exp.Dropped() != 0 {
				b.Fatalf("benchmark dropped %d tuples", exp.Dropped())
			}
			exp.close()
			imp.close()
		})
	}
}

// BenchmarkExportImportWire is the wire-format A/B at equal flush policy:
// identical transport, staging ring, retransmit window, and flush tuning in
// both runs — the only difference is PerTupleFrames, i.e. whether a writer
// drain leaves as one v2 batch frame or as one v1 frame per tuple. This is
// the BENCH_9 comparison; every row reports gomaxprocs for provenance (on a
// 1-core box the writer, reader, and producer share the core, so the
// per-frame CPU overhead is what the batch amortizes away).
func BenchmarkExportImportWire(b *testing.B) {
	modes := []struct {
		name     string
		perTuple bool
	}{
		{"batch", false},
		{"pertuple", true},
	}
	for _, mode := range modes {
		for _, size := range benchPayloads {
			b.Run(fmt.Sprintf("wire=%s/payload=%d", mode.name, size), func(b *testing.B) {
				send, recv := loopbackPair(b)
				exp := newExportOp("x")
				exp.cfg = TransportConfig{
					BlockTimeout:   time.Minute,
					PerTupleFrames: mode.perTuple,
				}.withDefaults()
				if err := exp.connect(send, ""); err != nil {
					b.Fatal(err)
				}
				imp := newImportSource("i")
				imp.connect(recv, nil)
				_, done := runImportDrain(imp, uint64(b.N))

				tp := benchTuple(size)
				defer tp.Release()
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					exp.Process(0, tp, nil)
				}
				<-done
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
				if exp.Dropped() != 0 {
					b.Fatalf("benchmark dropped %d tuples", exp.Dropped())
				}
				if mode.perTuple {
					if got, want := exp.WireFrames(), exp.Sent(); got != want {
						b.Fatalf("per-tuple mode staged %d frames for %d tuples", got, want)
					}
				} else if b.N >= 4096 && exp.WireFrames() >= exp.Sent() {
					// Only meaningful at volume: a tiny smoke run can drain
					// one tuple per pass and legitimately never amortize.
					b.Fatalf("batch mode staged %d frames for %d tuples; no amortization",
						exp.WireFrames(), exp.Sent())
				}
				exp.close()
				imp.close()
			})
		}
	}
}

// perTupleFlushSender replicates the pre-overhaul send path: a mutex around
// an encoder that flushes after every tuple, one syscall per frame.
type perTupleFlushSender struct {
	mu  sync.Mutex
	enc *encoder
}

func (s *perTupleFlushSender) send(t *spl.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.encode(t)
}

// BenchmarkExportImportPerTupleFlush is the baseline the tentpole is
// measured against: identical wire format and receive side, but the sender
// holds a lock and flushes every frame individually.
func BenchmarkExportImportPerTupleFlush(b *testing.B) {
	for _, size := range benchPayloads {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			send, recv := loopbackPair(b)
			defer send.Close()
			sender := &perTupleFlushSender{enc: newEncoder(send)}
			// Drain the import's resume handshake and acknowledgements; the
			// raw baseline sender does not speak the back-channel protocol.
			go func() { _, _ = io.Copy(io.Discard, send) }()
			imp := newImportSource("i")
			imp.connect(recv, nil)
			defer imp.close()
			_, done := runImportDrain(imp, uint64(b.N))

			tp := benchTuple(size)
			defer tp.Release()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sender.send(tp); err != nil {
					b.Fatal(err)
				}
			}
			<-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkEncodeSteadyState measures writeFrame with the scratch buffer
// warm: steady-state encoding must be allocation-free.
func BenchmarkEncodeSteadyState(b *testing.B) {
	enc := newEncoder(io.Discard)
	tp := benchTuple(64)
	defer tp.Release()
	if _, err := enc.writeFrame(tp); err != nil { // warm the scratch buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.writeFrame(tp); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader serves the same encoded frame forever, so decode benchmarks
// never hit EOF or a real connection.
type loopReader struct {
	frame []byte
	off   int
}

func (r *loopReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

// encodedFrame returns one wire frame for a payload of n bytes.
func encodedFrame(tb testing.TB, n int) []byte {
	tb.Helper()
	tp := benchTuple(n)
	defer tp.Release()
	var sink writeRecorder
	enc := newEncoder(&sink)
	if err := enc.encode(tp); err != nil {
		tb.Fatal(err)
	}
	return sink.buf
}

type writeRecorder struct{ buf []byte }

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// BenchmarkDecodeSteadyState measures pooled tuple construction from the
// wire: with the tuple and payload pools warm, decode must be
// allocation-free.
func BenchmarkDecodeSteadyState(b *testing.B) {
	dec := newDecoder(&loopReader{frame: encodedFrame(b, 64)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := dec.decode()
		if err != nil {
			b.Fatal(err)
		}
		t.Release()
	}
}

// benchBatch returns writerBatchTuples pooled tuples with n-byte payloads —
// one full writer drain, the batch encode/decode unit of work.
func benchBatch(n int) []*spl.Tuple {
	ts := make([]*spl.Tuple, writerBatchTuples)
	for i := range ts {
		ts[i] = benchTuple(n)
		ts[i].Seq = uint64(i)
	}
	return ts
}

func releaseBatch(ts []*spl.Tuple) {
	for _, t := range ts {
		t.Release()
	}
}

// BenchmarkBatchEncodeSteadyState measures marshalBatchFrame with a warm
// scratch buffer: one full drain per op, reported per tuple via tuples/s.
// Steady-state batch encoding must be allocation-free.
func BenchmarkBatchEncodeSteadyState(b *testing.B) {
	ts := benchBatch(64)
	defer releaseBatch(ts)
	buf, err := marshalBatchFrame(nil, 1, ts) // warm the scratch buffer
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = marshalBatchFrame(buf, uint64(i)*writerBatchTuples+1, ts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*writerBatchTuples/b.Elapsed().Seconds(), "tuples/s")
}

// encodedBatchFrame returns one v2 wire frame carrying a full drain of
// payload-n tuples.
func encodedBatchFrame(tb testing.TB, n int) []byte {
	tb.Helper()
	ts := benchBatch(n)
	defer releaseBatch(ts)
	frame, err := marshalBatchFrame(nil, 1, ts)
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

// BenchmarkBatchDecodeSteadyState measures decodeFrame on a full batch
// frame: one arena read and one RetainN materialize writerBatchTuples
// arena-view tuples per op. Steady-state batch decoding must be
// allocation-free with the pools warm.
func BenchmarkBatchDecodeSteadyState(b *testing.B) {
	dec := newDecoder(&loopReader{frame: encodedBatchFrame(b, 64)})
	out := make([]*spl.Tuple, maxBatchTuples)
	n, _, err := dec.decodeFrame(out) // warm the tuple and arena pools
	if err != nil {
		b.Fatal(err)
	}
	releaseAll(out[:n])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _, err := dec.decodeFrame(out)
		if err != nil {
			b.Fatal(err)
		}
		releaseAll(out[:n])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*writerBatchTuples/b.Elapsed().Seconds(), "tuples/s")
}

// TestBatchEncodeSteadyStateZeroAlloc pins the zero-alloc contract of batch
// frame marshalling independent of benchmark runs.
func TestBatchEncodeSteadyStateZeroAlloc(t *testing.T) {
	ts := benchBatch(64)
	defer releaseBatch(ts)
	buf, err := marshalBatchFrame(nil, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b, err := marshalBatchFrame(buf, 1, ts)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch encode allocates %.1f objects per call, want 0", allocs)
	}
}

// TestBatchDecodeSteadyStateZeroAlloc pins the zero-alloc contract of batch
// decode. Skipped under -race for the same reason as
// TestDecodeSteadyStateZeroAlloc: sync.Pool drops Puts there, and one batch
// frame cycles writerBatchTuples pooled tuples plus a pooled arena.
func TestBatchDecodeSteadyStateZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops Puts under -race; zero-alloc steady state cannot hold")
	}
	dec := newDecoder(&loopReader{frame: encodedBatchFrame(t, 64)})
	out := make([]*spl.Tuple, maxBatchTuples)
	n, _, err := dec.decodeFrame(out) // warm the tuple and arena pools
	if err != nil {
		t.Fatal(err)
	}
	releaseAll(out[:n])
	allocs := testing.AllocsPerRun(100, func() {
		n, _, err := dec.decodeFrame(out)
		if err != nil {
			t.Fatal(err)
		}
		releaseAll(out[:n])
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch decode allocates %.1f objects per call, want 0", allocs)
	}
}

// TestEncodeSteadyStateZeroAlloc pins the zero-alloc contract of writeFrame
// independent of benchmark runs.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	enc := newEncoder(io.Discard)
	tp := benchTuple(64)
	defer tp.Release()
	if _, err := enc.writeFrame(tp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := enc.writeFrame(tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state writeFrame allocates %.1f objects per call, want 0", allocs)
	}
}

// TestDecodeSteadyStateZeroAlloc pins the zero-alloc contract of arena-backed
// decode tuple construction. Skipped under -race: sync.Pool drops ~25% of
// Puts there, and decode cycles three pooled objects per frame (tuple, arena,
// payload box), so the forced re-allocations exceed what AllocsPerRun's
// integer averaging hides. The non-race pass and the benchmarks keep the
// guard honest.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops Puts under -race; zero-alloc steady state cannot hold")
	}
	dec := newDecoder(&loopReader{frame: encodedFrame(t, 64)})
	warm, err := dec.decode() // warm the tuple and payload pools
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	allocs := testing.AllocsPerRun(100, func() {
		tp, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		tp.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f objects per call, want 0", allocs)
	}
}
