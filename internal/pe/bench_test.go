package pe

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/spl"
)

// benchPayloads are the wire sizes the transport benchmarks sweep: a small
// telemetry-style tuple, a typical record, and a bulk frame.
var benchPayloads = []int{64, 1024, 16384}

// benchTuple returns a template tuple with a pooled payload of n bytes and
// no text, so the decode side exercises pure pooled construction.
func benchTuple(n int) *spl.Tuple {
	t := spl.AcquireTuple()
	t.Seq = 42
	t.Key = 7
	t.Time = 123456789
	t.Num1 = 3.25
	t.Num2 = -1.5
	t.AcquirePayload(n)
	for i := range t.Payload {
		t.Payload[i] = byte(i)
	}
	return t
}

// runImportDrain consumes tuples from an import source on a dedicated
// goroutine until want tuples arrived, releasing each back to the pool.
func runImportDrain(imp *importSource, want uint64) (*atomic.Uint64, chan struct{}) {
	var got atomic.Uint64
	em := spl.EmitterFunc(func(_ int, t *spl.Tuple) {
		got.Add(1)
		t.Release()
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got.Load() < want && imp.Next(em) {
		}
	}()
	return &got, done
}

// BenchmarkExportImport measures the batched transport end to end over a
// loopback TCP pair: Process stages pooled clones, the writer goroutine
// coalesces frames, the receive side decodes into pooled tuples and
// batch-drains. tuples/s is reported alongside ns/op.
func BenchmarkExportImport(b *testing.B) {
	for _, size := range benchPayloads {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			send, recv := loopbackPair(b)
			exp := newExportOp("x")
			// A long block timeout makes the benchmark lossless: the ring
			// applies backpressure instead of dropping under burst.
			exp.cfg = TransportConfig{BlockTimeout: time.Minute}.withDefaults()
			if err := exp.connect(send, ""); err != nil {
				b.Fatal(err)
			}
			imp := newImportSource("i")
			imp.connect(recv, nil)
			_, done := runImportDrain(imp, uint64(b.N))

			tp := benchTuple(size)
			defer tp.Release()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exp.Process(0, tp, nil)
			}
			<-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			if exp.Dropped() != 0 {
				b.Fatalf("benchmark dropped %d tuples", exp.Dropped())
			}
			exp.close()
			imp.close()
		})
	}
}

// perTupleFlushSender replicates the pre-overhaul send path: a mutex around
// an encoder that flushes after every tuple, one syscall per frame.
type perTupleFlushSender struct {
	mu  sync.Mutex
	enc *encoder
}

func (s *perTupleFlushSender) send(t *spl.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.encode(t)
}

// BenchmarkExportImportPerTupleFlush is the baseline the tentpole is
// measured against: identical wire format and receive side, but the sender
// holds a lock and flushes every frame individually.
func BenchmarkExportImportPerTupleFlush(b *testing.B) {
	for _, size := range benchPayloads {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			send, recv := loopbackPair(b)
			defer send.Close()
			sender := &perTupleFlushSender{enc: newEncoder(send)}
			// Drain the import's resume handshake and acknowledgements; the
			// raw baseline sender does not speak the back-channel protocol.
			go func() { _, _ = io.Copy(io.Discard, send) }()
			imp := newImportSource("i")
			imp.connect(recv, nil)
			defer imp.close()
			_, done := runImportDrain(imp, uint64(b.N))

			tp := benchTuple(size)
			defer tp.Release()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sender.send(tp); err != nil {
					b.Fatal(err)
				}
			}
			<-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkEncodeSteadyState measures writeFrame with the scratch buffer
// warm: steady-state encoding must be allocation-free.
func BenchmarkEncodeSteadyState(b *testing.B) {
	enc := newEncoder(io.Discard)
	tp := benchTuple(64)
	defer tp.Release()
	if _, err := enc.writeFrame(tp); err != nil { // warm the scratch buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.writeFrame(tp); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader serves the same encoded frame forever, so decode benchmarks
// never hit EOF or a real connection.
type loopReader struct {
	frame []byte
	off   int
}

func (r *loopReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

// encodedFrame returns one wire frame for a payload of n bytes.
func encodedFrame(tb testing.TB, n int) []byte {
	tb.Helper()
	tp := benchTuple(n)
	defer tp.Release()
	var sink writeRecorder
	enc := newEncoder(&sink)
	if err := enc.encode(tp); err != nil {
		tb.Fatal(err)
	}
	return sink.buf
}

type writeRecorder struct{ buf []byte }

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// BenchmarkDecodeSteadyState measures pooled tuple construction from the
// wire: with the tuple and payload pools warm, decode must be
// allocation-free.
func BenchmarkDecodeSteadyState(b *testing.B) {
	dec := newDecoder(&loopReader{frame: encodedFrame(b, 64)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := dec.decode()
		if err != nil {
			b.Fatal(err)
		}
		t.Release()
	}
}

// TestEncodeSteadyStateZeroAlloc pins the zero-alloc contract of writeFrame
// independent of benchmark runs.
func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	enc := newEncoder(io.Discard)
	tp := benchTuple(64)
	defer tp.Release()
	if _, err := enc.writeFrame(tp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := enc.writeFrame(tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state writeFrame allocates %.1f objects per call, want 0", allocs)
	}
}

// TestDecodeSteadyStateZeroAlloc pins the zero-alloc contract of arena-backed
// decode tuple construction. Skipped under -race: sync.Pool drops ~25% of
// Puts there, and decode cycles three pooled objects per frame (tuple, arena,
// payload box), so the forced re-allocations exceed what AllocsPerRun's
// integer averaging hides. The non-race pass and the benchmarks keep the
// guard honest.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops Puts under -race; zero-alloc steady state cannot hold")
	}
	dec := newDecoder(&loopReader{frame: encodedFrame(t, 64)})
	warm, err := dec.decode() // warm the tuple and payload pools
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	allocs := testing.AllocsPerRun(100, func() {
		tp, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		tp.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f objects per call, want 0", allocs)
	}
}
