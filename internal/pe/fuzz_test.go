package pe

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"streamelastic/internal/spl"
)

// FuzzDecode hardens the wire decoder against arbitrary byte streams: it
// must either return an error or a well-formed tuple, and never panic or
// over-allocate. Run with `go test -fuzz=FuzzDecode ./internal/pe` for a
// full campaign; the seed corpus runs on every ordinary `go test`.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid frame, truncations, hostile lengths.
	var valid bytes.Buffer
	enc := newEncoder(&valid)
	_ = enc.encode(&tupleFixture)
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, maxFrameBytes)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newDecoder(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			tp, err := dec.decode()
			if err != nil {
				return
			}
			if tp == nil {
				t.Fatal("nil tuple without error")
			}
			// Decoded strings/payloads must be bounded by the input size.
			if len(tp.Text)+len(tp.Payload) > len(data) {
				t.Fatalf("decoded %d bytes of content from %d input bytes",
					len(tp.Text)+len(tp.Payload), len(data))
			}
		}
	})
}

// FuzzRoundTrip checks encode/decode inversion on fuzzer-chosen attribute
// values.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), int64(3), 4.5, 6.7, "text", []byte{1, 2})
	f.Add(uint64(0), uint64(0), int64(-1), -0.0, 1e308, "", []byte{})
	f.Fuzz(func(t *testing.T, seq, key uint64, ts int64, n1, n2 float64, text string, payload []byte) {
		in := tupleFixture
		in.Seq, in.Key, in.Time, in.Num1, in.Num2, in.Text, in.Payload =
			seq, key, ts, n1, n2, text, payload
		var buf bytes.Buffer
		if err := newEncoder(&buf).encode(&in); err != nil {
			if len(text)+len(payload) > maxFrameBytes-fixedHeaderBytes {
				return // oversized tuples are rejected by contract
			}
			t.Fatalf("encode: %v", err)
		}
		out, err := newDecoder(&buf).decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Seq != seq || out.Key != key || out.Time != ts ||
			out.Text != text || !bytes.Equal(out.Payload, normalizeEmpty(payload)) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

func normalizeEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

// FuzzBatchedFrames hardens the batched wire path: several frames coalesced
// into one buffer (exactly what the writer goroutine produces between
// flushes) must round-trip through the pooled decoder, survive truncation at
// any offset with every intact prefix frame still decoding exactly, and
// never panic on a hostile byte flip anywhere in the stream — including the
// length prefixes.
func FuzzBatchedFrames(f *testing.F) {
	f.Add(uint8(3), uint16(10), uint16(2), byte(0xff), "hello", []byte{1, 2, 3})
	f.Add(uint8(8), uint16(0), uint16(0), byte(0x00), "", []byte{})
	f.Add(uint8(1), uint16(48), uint16(1), byte(0x80), "x", []byte{9})
	f.Add(uint8(5), uint16(200), uint16(45), byte(0x01), "batched", bytes.Repeat([]byte{7}, 64))

	f.Fuzz(func(t *testing.T, nframes uint8, cut, mutPos uint16, mutVal byte, text string, payload []byte) {
		n := int(nframes)%8 + 1
		if len(text) > 1024 {
			text = text[:1024]
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}

		// Coalesce n distinct frames into one buffer, flushing once at the
		// end, and record where each frame ends on the wire.
		var buf bytes.Buffer
		enc := newEncoder(&buf)
		ends := make([]int, n)
		want := make([]spl.Tuple, n)
		off := 0
		for i := 0; i < n; i++ {
			in := tupleFixture
			in.Seq = uint64(i)
			in.Key = uint64(i)*7 + 1
			in.Time = int64(i) - 3
			in.Num1 = float64(i) * 1.5
			in.Num2 = -float64(i)
			in.Text = text[:len(text)*(i+1)/n]
			in.Payload = payload[:len(payload)*(n-i)/n]
			nb, err := enc.writeFrame(&in)
			if err != nil {
				t.Fatalf("writeFrame %d: %v", i, err)
			}
			off += nb
			ends[i] = off
			want[i] = in
		}
		if err := enc.flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		wire := buf.Bytes()
		if len(wire) != off {
			t.Fatalf("wire is %d bytes, frames summed to %d", len(wire), off)
		}

		// Intact buffer: every frame round-trips through the pooled decoder,
		// the byte meter matches the wire, and the stream ends cleanly.
		dec := newDecoder(bytes.NewReader(wire))
		for i := 0; i < n; i++ {
			out, err := dec.decode()
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			checkFrame(t, i, &want[i], out)
			out.Release()
		}
		if _, err := dec.decode(); err == nil {
			t.Fatal("decode past the final frame succeeded")
		}
		if dec.bytesRead() != uint64(len(wire)) {
			t.Fatalf("decoder read %d wire bytes, want %d", dec.bytesRead(), len(wire))
		}

		// Truncation at a fuzz-chosen offset: frames wholly before the cut
		// still decode exactly; the first incomplete frame must error.
		c := int(cut) % (len(wire) + 1)
		complete := 0
		for _, e := range ends {
			if e <= c {
				complete++
			}
		}
		dec = newDecoder(bytes.NewReader(wire[:c]))
		for i := 0; i < complete; i++ {
			out, err := dec.decode()
			if err != nil {
				t.Fatalf("cut at %d: intact frame %d failed: %v", c, i, err)
			}
			checkFrame(t, i, &want[i], out)
			out.Release()
		}
		if _, err := dec.decode(); err == nil {
			t.Fatalf("cut at %d: decode of incomplete frame %d succeeded", c, complete)
		}

		// Hostile flip anywhere in the stream (length prefixes included):
		// the decoder may accept or reject frames but must stay bounded and
		// never panic.
		mut := append([]byte(nil), wire...)
		mut[int(mutPos)%len(mut)] ^= mutVal | 1
		dec = newDecoder(bytes.NewReader(mut))
		for i := 0; i <= n; i++ {
			out, err := dec.decode()
			if err != nil {
				break
			}
			if len(out.Text)+len(out.Payload) > len(mut) {
				t.Fatalf("mutated stream decoded %d content bytes from %d input bytes",
					len(out.Text)+len(out.Payload), len(mut))
			}
			out.Release()
		}
	})
}

// FuzzBatchFrameDecode hardens decodeFrame — the v2 batch path included —
// against arbitrary byte streams: hostile length prefixes, counts, zigzag
// seq-delta varints, and record lengths must all fail closed without a
// panic, and a frame that does decode must never hand back more content
// than its own wire bytes (the arena view cannot over-read its block). The
// committed seed corpus under testdata/fuzz covers valid multi-batch
// buffers, v1/v2 mixes, truncations, and targeted header/delta flips;
// regenerate it with PE_GEN_CORPUS=1 go test -run TestGenBatchFrameCorpus.
// Deterministic every-offset truncation and every-byte flips run in
// TestBatchFrameTruncationEveryOffset and TestBatchFrameFlipEveryByte on
// each ordinary go test; run `go test -fuzz=FuzzBatchFrameDecode
// ./internal/pe` for a full campaign.
func FuzzBatchFrameDecode(f *testing.F) {
	for _, seed := range batchFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newDecoder(bytes.NewReader(data))
		out := make([]*spl.Tuple, maxBatchTuples)
		for i := 0; i < 8; i++ {
			n, first, err := dec.decodeFrame(out)
			if err != nil {
				return // fail closed: no tuples escaped this frame
			}
			if n < 1 || n > maxBatchTuples {
				t.Fatalf("decodeFrame returned count %d without error", n)
			}
			if n > 1 && first == 0 {
				t.Fatalf("batch of %d tuples with zero base sequence", n)
			}
			content := 0
			for j := 0; j < n; j++ {
				if out[j] == nil {
					t.Fatalf("nil tuple %d of %d without error", j, n)
				}
				content += len(out[j].Text) + len(out[j].Payload)
			}
			if content > dec.lastFrameBytes() {
				t.Fatalf("frame of %d wire bytes decoded %d content bytes",
					dec.lastFrameBytes(), content)
			}
			if dec.bytesRead() > uint64(len(data)) {
				t.Fatalf("decoder claims %d bytes read from %d input bytes",
					dec.bytesRead(), len(data))
			}
			releaseAll(out[:n])
		}
	})
}

// batchFuzzSeeds builds the seed inputs FuzzBatchFrameDecode starts from;
// TestGenBatchFrameCorpus writes the same set to the committed corpus.
func batchFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	wire, _, ends := batchWireFixture(tb)
	seeds := [][]byte{
		wire,                     // valid batch, v1, batch mix
		wire[:ends[0]],           // one whole batch frame
		wire[:ends[0]-7],         // truncated mid-record
		wire[:6],                 // truncated mid-header
		{},                       // empty stream
		{0xff, 0xff, 0xff, 0xff}, // hostile prefix: batch flag + huge length
	}
	// Batch-flagged prefix with a plausible length but no body.
	hungry := make([]byte, 4)
	binary.LittleEndian.PutUint32(hungry, (batchHeaderBytes+1+batchRecordFixed)|batchFrameFlag)
	seeds = append(seeds, hungry)
	// Valid frame with the count field raised past the record section.
	overcount := append([]byte(nil), wire[:ends[0]]...)
	binary.LittleEndian.PutUint32(overcount[12:], 900)
	seeds = append(seeds, overcount)
	// Valid frame with a hostile first seq-delta varint (negative length).
	badDelta := append([]byte(nil), wire[:ends[0]]...)
	badDelta[16], badDelta[17], badDelta[18] = 0xff, 0xff, 0x7f
	seeds = append(seeds, badDelta)
	return seeds
}

// TestGenBatchFrameCorpus writes FuzzBatchFrameDecode's seed corpus to
// testdata/fuzz so the seeds are committed files, not only f.Add calls.
// Gated behind PE_GEN_CORPUS=1; rerun it whenever batchFuzzSeeds changes.
func TestGenBatchFrameCorpus(t *testing.T) {
	if os.Getenv("PE_GEN_CORPUS") == "" {
		t.Skip("set PE_GEN_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBatchFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range batchFuzzSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// checkFrame verifies one decoded frame against the tuple it encodes.
func checkFrame(t *testing.T, i int, want, got *spl.Tuple) {
	t.Helper()
	if got.Seq != want.Seq || got.Key != want.Key || got.Time != want.Time ||
		got.Num1 != want.Num1 || got.Num2 != want.Num2 {
		t.Fatalf("frame %d scalars: got %+v, want %+v", i, got, want)
	}
	if got.Text != want.Text {
		t.Fatalf("frame %d text: got %q, want %q", i, got.Text, want.Text)
	}
	if !bytes.Equal(got.Payload, normalizeEmpty(want.Payload)) {
		t.Fatalf("frame %d payload: got %d bytes, want %d", i, len(got.Payload), len(want.Payload))
	}
}
