package pe

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode hardens the wire decoder against arbitrary byte streams: it
// must either return an error or a well-formed tuple, and never panic or
// over-allocate. Run with `go test -fuzz=FuzzDecode ./internal/pe` for a
// full campaign; the seed corpus runs on every ordinary `go test`.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid frame, truncations, hostile lengths.
	var valid bytes.Buffer
	enc := newEncoder(&valid)
	_ = enc.encode(&tupleFixture)
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, maxFrameBytes)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := newDecoder(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			tp, err := dec.decode()
			if err != nil {
				return
			}
			if tp == nil {
				t.Fatal("nil tuple without error")
			}
			// Decoded strings/payloads must be bounded by the input size.
			if len(tp.Text)+len(tp.Payload) > len(data) {
				t.Fatalf("decoded %d bytes of content from %d input bytes",
					len(tp.Text)+len(tp.Payload), len(data))
			}
		}
	})
}

// FuzzRoundTrip checks encode/decode inversion on fuzzer-chosen attribute
// values.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), int64(3), 4.5, 6.7, "text", []byte{1, 2})
	f.Add(uint64(0), uint64(0), int64(-1), -0.0, 1e308, "", []byte{})
	f.Fuzz(func(t *testing.T, seq, key uint64, ts int64, n1, n2 float64, text string, payload []byte) {
		in := tupleFixture
		in.Seq, in.Key, in.Time, in.Num1, in.Num2, in.Text, in.Payload =
			seq, key, ts, n1, n2, text, payload
		var buf bytes.Buffer
		if err := newEncoder(&buf).encode(&in); err != nil {
			if len(text)+len(payload) > maxFrameBytes-fixedHeaderBytes {
				return // oversized tuples are rejected by contract
			}
			t.Fatalf("encode: %v", err)
		}
		out, err := newDecoder(&buf).decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Seq != seq || out.Key != key || out.Time != ts ||
			out.Text != text || !bytes.Equal(out.Payload, normalizeEmpty(payload)) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

func normalizeEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}
