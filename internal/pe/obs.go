package pe

import (
	"fmt"
	"io"
	"strconv"

	"streamelastic/internal/core"
	"streamelastic/internal/monitor"
	"streamelastic/internal/obs"
)

// batchSnapshot bridges the writer's drain batch-size histogram into the
// registry's snapshot shape. The sum is approximated by each bucket's
// midpoint (the histogram keeps no exact sum), which is accurate enough for
// a mean batch size.
func (x *exportOp) batchSnapshot() obs.HistSnapshot {
	buckets := make([]uint64, batchHistBuckets)
	var count uint64
	var sum float64
	for i := range x.batches {
		n := x.batches[i].Load()
		buckets[i] = n
		count += n
		sum += float64(n) * 1.5 * float64(uint64(1)<<i)
	}
	return obs.HistSnapshot{Buckets: buckets, Count: count, Sum: sum, Scale: 1}
}

// registerExportMetrics registers (or rebinds) one export endpoint's series
// on r, labeled (stream, dir=export, peer). It uses the registry's Set*
// registrars so a re-created edge — a stream re-dialed to a replacement PE
// during migration — re-registers under the same labels without panicking
// or skipping: the series swap to the new endpoint's collectors.
func registerExportMetrics(r *obs.Registry, exp *exportOp, stream int, peer string) {
	l := []obs.Label{{Key: "stream", Value: strconv.Itoa(stream)}, {Key: "dir", Value: "export"}, {Key: "peer", Value: peer}}
	r.SetCounterFunc(obs.MetricTransportTuples, "Tuples carried by the stream endpoint.", exp.Sent, l...)
	r.SetCounterFunc(obs.MetricTransportFrames, "Wire frames staged (one per batch, or per tuple with PerTupleFrames).", exp.WireFrames, l...)
	r.SetCounterFunc(obs.MetricTransportBytes, "Wire bytes through the stream endpoint.", exp.BytesSent, l...)
	r.SetCounterFunc(obs.MetricTransportDropped, "Tuples the export could not stage.", exp.Dropped, l...)
	r.SetCounterFunc(obs.MetricTransportFlushes, "Explicit writer flush syscalls.", exp.Flushes, l...)
	r.SetCounterFunc(obs.MetricTransportRetransmits, "Frame writes beyond the first (resume traffic).", exp.Retransmits, l...)
	r.SetCounterFunc(obs.MetricTransportReconnects, "Successful re-attaches after a lost connection.", exp.Reconnects, l...)
	r.SetGaugeFunc(obs.MetricTransportUnacked, "Staged frames never acknowledged, set at close.",
		func() float64 { return float64(exp.Unacked()) }, l...)
	r.SetHistogramFunc(obs.MetricTransportDrainSize, "Staging-ring drain sizes (tuples per writer drain).",
		exp.batchSnapshot, l...)
}

// registerImportMetrics is registerExportMetrics' receiving-side twin.
func registerImportMetrics(r *obs.Registry, imp *importSource, stream int, peer string) {
	l := []obs.Label{{Key: "stream", Value: strconv.Itoa(stream)}, {Key: "dir", Value: "import"}, {Key: "peer", Value: peer}}
	r.SetCounterFunc(obs.MetricTransportTuples, "Tuples carried by the stream endpoint.", imp.Received, l...)
	r.SetCounterFunc(obs.MetricTransportFrames, "Wire frames decoded (v1 single-tuple or v2 batch).", imp.FramesReceived, l...)
	r.SetCounterFunc(obs.MetricTransportBytes, "Wire bytes through the stream endpoint.", imp.BytesReceived, l...)
	r.SetCounterFunc(obs.MetricTransportDups, "Retransmitted tuples dropped by sequence dedup.", imp.DupsDropped, l...)
	r.SetCounterFunc(obs.MetricTransportResumes, "Connections re-accepted after the first.", imp.Resumes, l...)
}

// RegisterMetrics registers (or rebinds) the export's transport series on r
// under (stream, dir=export, peer=peerPE) labels; peerPE must be numeric
// because /statusz parses it back into a PE index.
func (e *Export) RegisterMetrics(r *obs.Registry, stream, peerPE int) {
	registerExportMetrics(r, e.x, stream, strconv.Itoa(peerPE))
}

// RegisterMetrics registers (or rebinds) the import's transport series on r
// under (stream, dir=import, peer=peerPE) labels.
func (im *Import) RegisterMetrics(r *obs.Registry, stream, peerPE int) {
	registerImportMetrics(r, im.s, stream, strconv.Itoa(peerPE))
}

// registerTransportMetrics registers every cross-PE stream endpoint's
// counters on its owning PE's registry, labeled (stream, dir, peer) so
// /metrics and BuildStatus can group them back into per-stream rows.
func registerTransportMetrics(regs []*obs.Registry, plans []*Plan, crosses []CrossEdge) {
	for _, ce := range crosses {
		sender := plans[ce.FromPE]
		for j, end := range sender.Exports {
			if end.Stream != ce.Stream {
				continue
			}
			registerExportMetrics(regs[ce.FromPE], sender.exports[j], ce.Stream, strconv.Itoa(ce.ToPE))
		}
		receiver := plans[ce.ToPE]
		for j, end := range receiver.Imports {
			if end.Stream != ce.Stream {
				continue
			}
			registerImportMetrics(regs[ce.ToPE], receiver.imports[j], ce.Stream, strconv.Itoa(ce.FromPE))
		}
	}
}

// registerWatchdogMetrics surfaces a PE watchdog's verdict and trip counters
// on the PE's registry.
func registerWatchdogMetrics(r *obs.Registry, wd *monitor.Watchdog) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	r.GaugeFunc(obs.MetricWatchdogHealthy, "1 while every health probe passes.",
		func() float64 { return b2f(wd.Healthy()) })
	r.GaugeFunc(obs.MetricWatchdogFrozen, "1 while the watchdog holds adaptation frozen.",
		func() float64 { return b2f(wd.Frozen()) })
	r.CounterFunc(obs.MetricWatchdogTrips, "Watchdog trips (healthy to unhealthy transitions).",
		func() uint64 { return wd.Status().Trips })
	r.CounterFunc(obs.MetricWatchdogRecovers, "Watchdog recoveries (unhealthy to healthy transitions).",
		func() uint64 { return wd.Status().Recovers })
}

// Registries returns every PE's telemetry registry, in PE order. Feed them
// to monitor.ObservabilityHandler (or obs.WritePrometheusAll) for a merged
// /metrics exposition; series carry a pe="N" label.
func (j *Job) Registries() []*obs.Registry { return j.regs }

// FlightRecorder returns the job's shared flight recorder: one bounded ring
// over all PEs, events tagged with the PE that emitted them.
func (j *Job) FlightRecorder() *obs.FlightRecorder { return j.rec }

// DumpFlight writes a flight-recorder dump with a reason header to w —
// the on-demand counterpart of the automatic watchdog-trip dump.
func (j *Job) DumpFlight(w io.Writer, reason string) {
	j.dumpMu.Lock()
	defer j.dumpMu.Unlock()
	fmt.Fprintf(w, "=== flight-recorder dump (%s) ===\n", reason)
	_ = j.rec.DumpTo(w)
}

// dumpOnTrip writes the automatic dump to Options.FlightDump, serialized so
// two PEs tripping together interleave dumps, not lines.
func (j *Job) dumpOnTrip(reason string) {
	j.dumpMu.Lock()
	defer j.dumpMu.Unlock()
	if j.dump == nil {
		return
	}
	fmt.Fprintf(j.dump, "=== flight-recorder dump (%s) ===\n", reason)
	_ = j.rec.DumpTo(j.dump)
}

var _ monitor.Provider = (*Job)(nil)

// Statuses renders every PE's monitoring status from its telemetry
// registry, implementing monitor.Provider.
func (j *Job) Statuses() []monitor.Status {
	out := make([]monitor.Status, 0, len(j.PEs))
	for _, rt := range j.PEs {
		var h *monitor.WatchdogStatus
		if rt.Watchdog != nil {
			st := rt.Watchdog.Status()
			h = &st
		}
		out = append(out, monitor.BuildStatus(fmt.Sprintf("pe%d", rt.Plan.PE), rt.Reg, h))
	}
	return out
}

// AdaptationTrace returns the indexed PE's adaptation trace (nil when
// elasticity is disabled or the index is out of range), implementing
// monitor.Provider.
func (j *Job) AdaptationTrace(index int) []core.TraceEvent {
	if index < 0 || index >= len(j.PEs) {
		return nil
	}
	rt := j.PEs[index]
	if rt.Coord == nil {
		return nil
	}
	return rt.Coord.Trace()
}
