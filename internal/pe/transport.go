package pe

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// importPollInterval bounds how long an idle import source blocks before
// yielding back to its operator thread, so engine reconfiguration (which
// waits for all loops to park) is never stalled by a quiet stream.
const importPollInterval = 20 * time.Millisecond

// importChanCapacity is the transport-side buffer between the stream
// reader goroutine and the import source. It is a deliberate network
// receive buffer, decoupling TCP reads from operator execution.
const importChanCapacity = 256

// importBatchMax bounds how many buffered tuples one Next wake emits, so a
// single operator-thread wake drains a burst without starving the engine's
// pause barrier.
const importBatchMax = 64

// writerBatchTuples is the writer goroutine's per-drain batch: how many
// staged tuples one ring pop claims.
const writerBatchTuples = 128

// closeFlushTimeout bounds the final drain-and-flush at stream close, so a
// stalled peer cannot wedge job shutdown.
const closeFlushTimeout = 2 * time.Second

// exportOp is the terminal operator standing in for a cross-PE stream's
// sending side. Process stages a pooled clone of each tuple into a
// lock-free MPMC ring; a dedicated writer goroutine drains the ring in
// batches, coalesces frames into large buffered writes, and flushes by
// policy (size threshold, idle stream, or bounded delay). The export is a
// sink in its PE's graph, so the PE's throughput meter counts exported
// tuples.
type exportOp struct {
	name string
	cfg  TransportConfig

	mu    sync.Mutex // guards connect/close transitions
	conn  net.Conn
	ring  *queue.MPMC[*spl.Tuple]
	wake  chan struct{}
	space chan struct{}
	quit  chan struct{}
	done  chan struct{}

	wired   atomic.Bool
	parked  atomic.Bool
	closed  atomic.Bool
	errored atomic.Bool

	sent    atomic.Uint64
	dropped atomic.Uint64
	bytes   atomic.Uint64
	flushes atomic.Uint64
	batches batchHist
}

var (
	_ spl.Operator   = (*exportOp)(nil)
	_ spl.Recyclable = (*exportOp)(nil)
)

func newExportOp(name string) *exportOp {
	return &exportOp{name: name, cfg: TransportConfig{}.withDefaults()}
}

// Name returns the operator name.
func (x *exportOp) Name() string { return x.name }

// RecyclesTuples marks the export as a recyclable sink: Process never
// retains the tuple it is handed — the staging ring carries a pooled clone
// — so the engine returns the original to the tuple pool.
func (x *exportOp) RecyclesTuples() {}

// connect attaches the stream connection and starts the writer goroutine;
// must happen before the engine starts.
func (x *exportOp) connect(conn net.Conn) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.conn = conn
	ring, err := queue.NewMPMC[*spl.Tuple](x.cfg.RingCapacity)
	if err != nil {
		// withDefaults rounds the capacity to a power of two >= 2.
		panic(err)
	}
	x.ring = ring
	x.wake = make(chan struct{}, 1)
	x.space = make(chan struct{}, 1)
	x.quit = make(chan struct{})
	x.done = make(chan struct{})
	go x.writerLoop(newEncoder(conn))
	x.wired.Store(true)
}

// Process stages the tuple for the writer goroutine. Tuples arriving before
// the stream is wired or after it errored are counted as dropped; a full
// staging ring blocks the producing scheduler thread for a bounded time
// (the default, preserving the backpressure of the old write-per-tuple
// path) or drops immediately when DropOnFull is configured.
func (x *exportOp) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	if !x.wired.Load() || x.closed.Load() || x.errored.Load() {
		x.dropped.Add(1)
		return
	}
	if s, ok := x.ring.TryReservePush(); ok {
		s.Commit(t.Clone())
		x.wakeWriter()
		return
	}
	if !x.cfg.DropOnFull {
		// Park on the writer's space signal rather than spinning: a yield
		// loop on a saturated box burns the producing core in scheduler
		// churn and starves the very goroutine that must free ring slots.
		timer := time.NewTimer(x.cfg.BlockTimeout)
		defer timer.Stop()
		for {
			if x.closed.Load() || x.errored.Load() {
				break
			}
			if s, ok := x.ring.TryReservePush(); ok {
				s.Commit(t.Clone())
				x.wakeWriter()
				return
			}
			select {
			case <-x.space:
			case <-x.quit:
			case <-timer.C:
				x.dropped.Add(1)
				return
			}
		}
	}
	x.dropped.Add(1)
}

// wakeWriter nudges a parked writer. The writer re-checks the ring after
// setting parked, so a push that misses the flag is still observed.
func (x *exportOp) wakeWriter() {
	if x.parked.Load() {
		select {
		case x.wake <- struct{}{}:
		default:
		}
	}
}

// signalSpace tells one producer blocked on a full ring that slots freed.
func (x *exportOp) signalSpace() {
	select {
	case x.space <- struct{}{}:
	default:
	}
}

// writerLoop drains the staging ring into coalesced buffered writes. Flush
// policy (Nagle-style, tunable): flush once FlushBytes are pending, when
// the ring runs empty (an idle stream never holds frames back), or when the
// oldest pending frame has waited MaxFlushDelay under a sustained trickle.
func (x *exportOp) writerLoop(enc *encoder) {
	defer close(x.done)
	batch := make([]*spl.Tuple, writerBatchTuples)
	var pendingSince time.Time
	for {
		n := x.ring.TryPopN(batch)
		if n == 0 {
			if enc.buffered() > 0 && x.flush(enc) {
				pendingSince = time.Time{}
			}
			x.parked.Store(true)
			if x.ring.Len() > 0 {
				x.parked.Store(false)
				continue
			}
			select {
			case <-x.wake:
				x.parked.Store(false)
				continue
			case <-x.quit:
				x.parked.Store(false)
				x.finalDrain(enc, batch)
				return
			}
		}
		x.signalSpace()
		x.writeBatch(enc, batch[:n])
		if enc.buffered() >= x.cfg.FlushBytes {
			if x.flush(enc) {
				pendingSince = time.Time{}
			}
		} else if enc.buffered() > 0 {
			now := time.Now()
			switch {
			case pendingSince.IsZero():
				pendingSince = now
			case now.Sub(pendingSince) >= x.cfg.MaxFlushDelay:
				if x.flush(enc) {
					pendingSince = time.Time{}
				}
			}
		} else {
			pendingSince = time.Time{}
		}
	}
}

// writeBatch encodes one drained batch. After a write error the stream is
// marked errored and the remaining tuples count as dropped; every staged
// tuple returns to the pool either way.
func (x *exportOp) writeBatch(enc *encoder, batch []*spl.Tuple) {
	x.batches.record(len(batch))
	for i, t := range batch {
		if x.errored.Load() {
			x.dropped.Add(1)
		} else if nb, err := enc.writeFrame(t); err != nil {
			x.errored.Store(true)
			x.dropped.Add(1)
		} else {
			x.sent.Add(1)
			x.bytes.Add(uint64(nb))
		}
		t.Release()
		batch[i] = nil
	}
}

// flush pushes buffered frames onto the connection, reporting success.
func (x *exportOp) flush(enc *encoder) bool {
	if x.errored.Load() {
		return false
	}
	if err := enc.flush(); err != nil {
		x.errored.Store(true)
		return false
	}
	x.flushes.Add(1)
	return true
}

// finalDrain empties the staging ring and flushes at shutdown. A few yield
// rounds let in-flight producers land their reserved slots; anything staged
// after that is left to the garbage collector.
func (x *exportOp) finalDrain(enc *encoder, batch []*spl.Tuple) {
	for round := 0; round < 3; round++ {
		for {
			n := x.ring.TryPopN(batch)
			if n == 0 {
				break
			}
			x.writeBatch(enc, batch[:n])
		}
		runtime.Gosched()
	}
	if enc.buffered() > 0 {
		x.flush(enc)
	}
}

// Sent returns the number of tuples encoded onto the stream.
func (x *exportOp) Sent() uint64 { return x.sent.Load() }

// Dropped returns the number of tuples that could not be written.
func (x *exportOp) Dropped() uint64 { return x.dropped.Load() }

// BytesSent returns the wire bytes of encoded frames.
func (x *exportOp) BytesSent() uint64 { return x.bytes.Load() }

// Flushes returns the number of explicit flushes onto the connection.
func (x *exportOp) Flushes() uint64 { return x.flushes.Load() }

func (x *exportOp) close() {
	if x.closed.Swap(true) {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.conn != nil {
		// Unblock a writer stuck in a TCP write against a stalled peer so
		// the final drain is bounded.
		_ = x.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	}
	if x.quit != nil {
		close(x.quit)
		<-x.done
	}
	if x.conn != nil {
		_ = x.conn.Close()
	}
}

// importSource is the source standing in for a cross-PE stream's receiving
// side. A dedicated reader goroutine decodes frames from the connection
// into a buffered channel; the operator thread drains the channel in
// batches, so a blocked TCP read can never stall the engine's pause barrier
// and one wake delivers many tuples.
type importSource struct {
	name string

	mu     sync.Mutex
	conn   net.Conn
	ch     chan *spl.Tuple
	done   chan struct{}
	closed atomic.Bool

	// timer is the reusable idle-poll timer; only the operator thread
	// driving Next touches it.
	timer *time.Timer

	received atomic.Uint64
	bytes    atomic.Uint64
}

var (
	_ spl.Source      = (*importSource)(nil)
	_ spl.DrainExempt = (*importSource)(nil)
)

func newImportSource(name string) *importSource {
	return &importSource{name: name}
}

// Name returns the operator name.
func (s *importSource) Name() string { return s.name }

// DrainExempt keeps the import running during a drain: it carries the
// in-flight tuples the drain is waiting for.
func (s *importSource) DrainExempt() {}

// Process is a no-op: sources have no input ports.
func (s *importSource) Process(int, *spl.Tuple, spl.Emitter) {}

// connect attaches the stream connection and starts the reader goroutine;
// must happen before the engine starts.
func (s *importSource) connect(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn = conn
	s.ch = make(chan *spl.Tuple, importChanCapacity)
	s.done = make(chan struct{})
	go s.readLoop(conn, s.ch, s.done)
}

func (s *importSource) readLoop(conn net.Conn, ch chan *spl.Tuple, done chan struct{}) {
	defer close(done)
	defer close(ch)
	dec := newDecoder(conn)
	for {
		t, err := dec.decode()
		if err != nil {
			// EOF and closed-connection errors end the stream; anything
			// else is a framing error, which also ends it (the stream has
			// no recovery protocol).
			_ = err
			return
		}
		s.bytes.Store(dec.bytesRead())
		ch <- t
	}
}

// Next emits the next batch of received tuples: a non-blocking drain of up
// to importBatchMax queued tuples when traffic is flowing (no timer-heap
// traffic at all on that path), falling back to one blocking receive
// bounded by the reusable poll timer when the stream is quiet. It yields
// with true (and no emission) when the stream is idle for a poll interval,
// and returns false only once the stream has ended and drained.
func (s *importSource) Next(out spl.Emitter) bool {
	s.mu.Lock()
	ch := s.ch
	s.mu.Unlock()
	if ch == nil {
		// Not wired yet; yield.
		time.Sleep(importPollInterval)
		return !s.closed.Load()
	}
	// Fast path: tuples are already buffered; the poll timer stays cold.
	select {
	case t, ok := <-ch:
		if !ok {
			return false
		}
		return s.emitBatch(out, ch, t)
	default:
	}
	if s.timer == nil {
		s.timer = time.NewTimer(importPollInterval)
	} else {
		s.timer.Reset(importPollInterval)
	}
	select {
	case t, ok := <-ch:
		if !s.timer.Stop() {
			// The timer fired concurrently; drain it so the next Reset
			// starts clean (pre-1.23 timer semantics).
			select {
			case <-s.timer.C:
			default:
			}
		}
		if !ok {
			return false
		}
		return s.emitBatch(out, ch, t)
	case <-s.timer.C:
		return true
	}
}

// emitBatch emits one received tuple plus a non-blocking drain of up to
// importBatchMax-1 more, so one operator-thread wake delivers a burst.
func (s *importSource) emitBatch(out spl.Emitter, ch chan *spl.Tuple, first *spl.Tuple) bool {
	s.received.Add(1)
	out.Emit(0, first)
	for i := 1; i < importBatchMax; i++ {
		select {
		case t, ok := <-ch:
			if !ok {
				return false
			}
			s.received.Add(1)
			out.Emit(0, t)
		default:
			return true
		}
	}
	return true
}

// Received returns the number of tuples read from the stream.
func (s *importSource) Received() uint64 { return s.received.Load() }

// BytesReceived returns the wire bytes of successfully decoded frames.
func (s *importSource) BytesReceived() uint64 { return s.bytes.Load() }

func (s *importSource) close() {
	s.closed.Store(true)
	s.mu.Lock()
	conn, done := s.conn, s.done
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if done != nil {
		<-done
	}
}

// dialStream connects a sender to a receiver's listener with retries, since
// PE launch order is arbitrary.
func dialStream(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = errors.New("dial timeout")
	}
	return nil, lastErr
}

// accepted wraps an accept result.
type accepted struct {
	conn net.Conn
	err  error
}

// acceptOne accepts a single connection asynchronously.
func acceptOne(l net.Listener) <-chan accepted {
	ch := make(chan accepted, 1)
	go func() {
		conn, err := l.Accept()
		ch <- accepted{conn: conn, err: err}
	}()
	return ch
}
