package pe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/fault"
	"streamelastic/internal/obs"
	"streamelastic/internal/queue"
	"streamelastic/internal/spl"
)

// importPollInterval bounds how long an idle import source blocks before
// yielding back to its operator thread, so engine reconfiguration (which
// waits for all loops to park) is never stalled by a quiet stream.
const importPollInterval = 20 * time.Millisecond

// importRingCapacity sizes the injection ring between the stream reader
// goroutine and the import source (a power of two, as the MPMC requires).
// It is a deliberate network receive buffer, decoupling TCP reads from
// operator execution.
const importRingCapacity = 256

// importBatchMax bounds how many buffered tuples one Next wake emits, so a
// single operator-thread wake drains a burst without starving the engine's
// pause barrier.
const importBatchMax = 64

// writerBatchTuples is the writer goroutine's per-drain batch: how many
// staged tuples one ring pop claims.
const writerBatchTuples = 128

// closeFlushTimeout bounds the final drain-and-flush at stream close, so a
// stalled peer cannot wedge job shutdown.
const closeFlushTimeout = 2 * time.Second

// handshakeTimeout bounds the resume-sequence read after a (re)connect.
const handshakeTimeout = 5 * time.Second

// ackEvery is the receive side's inline acknowledgement cadence: one ack
// per this many delivered frames, with a ticker covering the idle tail.
const ackEvery = 256

// ackTickInterval paces the receive side's idle-tail acknowledgements.
const ackTickInterval = 50 * time.Millisecond

// ackWriteTimeout bounds one acknowledgement write. A legacy sender that
// never drains its side of the connection (the per-tuple-flush benchmark
// path) eventually fills the socket buffer; on the first timed-out ack the
// receiver stops acknowledging for that connection instead of wedging.
const ackWriteTimeout = time.Second

// errExportClosing ends a writer connection epoch for a graceful close.
var errExportClosing = errors.New("pe: export closing")

// errExportConnLost ends a writer connection epoch when the ack reader
// observes the connection die.
var errExportConnLost = errors.New("pe: export connection lost")

// errExportWindowFull aborts a closing drain whose retransmit window stayed
// full (the peer stopped acknowledging).
var errExportWindowFull = errors.New("pe: retransmit window full at close")

// exportOp is the terminal operator standing in for a cross-PE stream's
// sending side. Process stages a pooled clone of each tuple into a
// lock-free MPMC ring; a dedicated writer goroutine drains the ring in
// batches, assigns each frame a wire sequence, parks its encoded bytes in a
// bounded retransmit ring until the receiver acknowledges them, and
// coalesces frames into large buffered writes flushed by policy.
//
// The writer survives peer death: it redials with capped exponential
// backoff plus jitter, reads the receiver's resume sequence on every
// (re)connect, and retransmits every unacknowledged frame past it — the
// stream is at-least-once on the wire, and the import side's sequence
// dedup makes it exactly-once downstream. The export is a sink in its PE's
// graph, so the PE's throughput meter counts exported tuples.
type exportOp struct {
	name string
	cfg  TransportConfig
	addr string // redial address; "" = single-connection mode (tests)

	// seedSeq pre-loads the writer's wire-sequence counter so a replacement
	// export continues a retired predecessor's sequence domain (region
	// migration). Written before connect; the writer goroutine reads it once
	// at startup.
	seedSeq uint64

	// inj/site are the chaos hook: nil inj means no injection.
	inj  *fault.Injector
	site int

	// rec/recPE feed the flight recorder; a nil rec no-ops every Record.
	rec   *obs.FlightRecorder
	recPE int32

	mu    sync.Mutex // guards connect/close transitions and conn epochs
	conn  net.Conn   // current epoch's connection, for close()
	thaw  chan struct{} // non-nil exactly while the edge is frozen
	ring  *queue.MPMC[*spl.Tuple]
	wake  chan struct{}
	space chan struct{}
	quit  chan struct{}
	done  chan struct{}

	wired     atomic.Bool
	parked    atomic.Bool
	closed    atomic.Bool
	frozen    atomic.Bool  // migration freeze: writer parks, producers wait
	failed    atomic.Bool  // permanent: connection lost with no redial address
	connected atomic.Bool  // current connection attached and healthy
	local     atomic.Bool  // in-process edge: peer import pops the ring directly
	progress  atomic.Int64 // unix nanos of the writer's last useful work

	acked  atomic.Uint64 // receiver's acknowledged wire-sequence watermark
	ackSig chan struct{}

	seqHigh    atomic.Uint64 // highest wire sequence staged (readable snapshot of nextSeq)
	retransT   atomic.Uint64 // tuples rewritten on resume (replay accounting)
	sent       atomic.Uint64 // tuples staged (assigned a wire sequence)
	wireFrames atomic.Uint64 // frames staged (one per tuple or per batch)
	dropped    atomic.Uint64 // tuples the stream never staged
	retrans    atomic.Uint64 // frame writes beyond the first (resume traffic)
	reconnects atomic.Uint64 // successful re-attaches after a lost connection
	corrupts   atomic.Uint64 // injected frame corruptions
	unacked    atomic.Uint64 // staged frames never acknowledged, set at close
	bytes      atomic.Uint64
	flushes    atomic.Uint64
	batches    batchHist
}

var (
	_ spl.Operator   = (*exportOp)(nil)
	_ spl.Recyclable = (*exportOp)(nil)
)

func newExportOp(name string) *exportOp {
	return &exportOp{name: name, cfg: TransportConfig{}.withDefaults()}
}

// Name returns the operator name.
func (x *exportOp) Name() string { return x.name }

// RecyclesTuples marks the export as a recyclable sink: Process never
// retains the tuple it is handed — the staging ring carries a pooled clone
// — so the engine returns the original to the tuple pool.
func (x *exportOp) RecyclesTuples() {}

// connect attaches the stream's first connection and starts the writer
// goroutine; must happen before the engine starts. A non-empty addr enables
// reconnection: on a lost connection the writer redials it and resumes from
// the retransmit ring. With addr empty the first connection is the only
// one, and losing it fails the stream permanently (tuples drop-and-count).
func (x *exportOp) connect(conn net.Conn, addr string) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	ring, err := queue.NewMPMC[*spl.Tuple](x.cfg.RingCapacity)
	if err != nil {
		return fmt.Errorf("pe: export %s staging ring: %w", x.name, err)
	}
	x.conn = conn
	x.addr = addr
	x.ring = ring
	x.wake = make(chan struct{}, 1)
	x.space = make(chan struct{}, 1)
	x.quit = make(chan struct{})
	x.done = make(chan struct{})
	x.ackSig = make(chan struct{}, 1)
	x.progress.Store(time.Now().UnixNano())
	go x.writerLoop(conn)
	x.wired.Store(true)
	return nil
}

// connectLocal wires the export as the sending half of an in-process edge:
// the staging ring is created exactly as for a TCP stream — Process keeps
// its backpressure, drop accounting, and wake protocol — but no writer
// goroutine, encoder, or connection exists. The co-located peer import pops
// the ring directly via localPop, so a tuple crosses the edge as one pooled
// clone handoff with no encode/frame/TCP/decode in between. The edge is
// in-process and lossless by construction, so the reliability machinery
// (retransmit window, acks, resume) is exempt and its counters stay zero.
func (x *exportOp) connectLocal() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	ring, err := queue.NewMPMC[*spl.Tuple](x.cfg.RingCapacity)
	if err != nil {
		return fmt.Errorf("pe: export %s staging ring: %w", x.name, err)
	}
	x.ring = ring
	x.wake = make(chan struct{}, 1)
	x.space = make(chan struct{}, 1)
	x.quit = make(chan struct{})
	// No writer goroutine: done starts closed so close() never waits.
	x.done = make(chan struct{})
	close(x.done)
	x.ackSig = make(chan struct{}, 1)
	x.progress.Store(time.Now().UnixNano())
	x.local.Store(true)
	x.connected.Store(true)
	x.wired.Store(true)
	return nil
}

// localPop transfers up to len(batch) staged tuples to the co-located peer
// import, which owns them outright afterwards. Counters mirror the wire
// path's bookkeeping at the same point in a tuple's life: sent when it
// leaves the staging ring, a batch-size sample per drain, progress for the
// watchdog's stall probe — but bytes and flushes stay zero, because no wire
// was touched and lying about it would poison the obs series.
func (x *exportOp) localPop(batch []*spl.Tuple) int {
	n := x.ring.TryPopN(batch)
	if n == 0 {
		return 0
	}
	x.batches.record(n)
	x.sent.Add(uint64(n))
	x.progress.Store(time.Now().UnixNano())
	x.signalSpace()
	return n
}

// localDrained reports whether a local export is closed with nothing left to
// pop — the peer import's end-of-stream condition.
func (x *exportOp) localDrained() bool {
	return x.closed.Load() && x.ring.Len() == 0
}

// Process stages the tuple for the writer goroutine. Tuples arriving before
// the stream is wired, after close, or after a permanent failure are
// counted as dropped; a full staging ring blocks the producing scheduler
// thread for a bounded time (the default, preserving the backpressure of
// the old write-per-tuple path) or drops immediately when DropOnFull is
// configured.
func (x *exportOp) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	if !x.wired.Load() || x.closed.Load() || x.failed.Load() {
		x.dropped.Add(1)
		return
	}
	if s, ok := x.ring.TryReservePush(); ok {
		s.Commit(t.Clone())
		x.wakeWriter()
		return
	}
	if !x.cfg.DropOnFull {
		// Park on the writer's space signal rather than spinning: a yield
		// loop on a saturated box burns the producing core in scheduler
		// churn and starves the very goroutine that must free ring slots.
		timer := time.NewTimer(x.cfg.BlockTimeout)
		defer timer.Stop()
		for {
			if x.closed.Load() || x.failed.Load() {
				break
			}
			if s, ok := x.ring.TryReservePush(); ok {
				s.Commit(t.Clone())
				x.wakeWriter()
				return
			}
			if th := x.frozenThaw(); th != nil {
				// A frozen edge parks the producer instead of dropping: the
				// block timeout is suspended for the freeze's duration and
				// restarts from zero at thaw.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				select {
				case <-th:
				case <-x.quit:
				}
				timer.Reset(x.cfg.BlockTimeout)
				continue
			}
			select {
			case <-x.space:
			case <-x.quit:
			case <-timer.C:
				x.dropped.Add(1)
				return
			}
		}
	}
	x.dropped.Add(1)
}

// freeze parks the stream: the writer goroutine stops staging frames (it
// flushes what is buffered, then waits) and producers blocked on a full
// staging ring wait for the thaw instead of timing out into the drop
// counter. Staged tuples stay in the ring; nothing is lost. Idempotent.
func (x *exportOp) freeze() {
	x.mu.Lock()
	if x.thaw == nil {
		x.thaw = make(chan struct{})
		x.frozen.Store(true)
	}
	x.mu.Unlock()
}

// unfreeze releases a frozen stream: the writer resumes draining the staging
// ring and blocked producers retry their pushes. Idempotent.
func (x *exportOp) unfreeze() {
	x.mu.Lock()
	th := x.thaw
	x.thaw = nil
	x.frozen.Store(false)
	x.mu.Unlock()
	if th != nil {
		close(th)
	}
	x.signalSpace()
	x.wakeWriter()
}

// frozenThaw returns the channel to wait on while the edge is frozen, or nil
// when it is not. The atomic pre-check keeps the hot path lock-free; the
// mu-guarded re-read closes the race with a concurrent unfreeze (a nil thaw
// after the flag read means the freeze already lifted).
func (x *exportOp) frozenThaw() chan struct{} {
	if !x.frozen.Load() {
		return nil
	}
	x.mu.Lock()
	th := x.thaw
	x.mu.Unlock()
	return th
}

// seedSequence pre-loads the wire-sequence counter so this export continues
// a predecessor's sequence domain after a region migration. Must be called
// before connect. The acked watermark seeds too: sequences at or below the
// seed were acknowledged to the predecessor.
func (x *exportOp) seedSequence(n uint64) {
	x.seedSeq = n
	x.seqHigh.Store(n)
	storeMax(&x.acked, n)
}

// reroute points the stream at a new peer address and kills the current
// connection; the writer's redial loop picks up the new address and the
// resume handshake replays anything the new peer has not seen.
func (x *exportOp) reroute(addr string) {
	x.mu.Lock()
	x.addr = addr
	conn := x.conn
	x.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// currentAddr reads the redial address under mu (reroute writes it there).
func (x *exportOp) currentAddr() string {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.addr
}

// wakeWriter nudges a parked writer. The writer re-checks the ring after
// setting parked, so a push that misses the flag is still observed.
func (x *exportOp) wakeWriter() {
	if x.parked.Load() {
		select {
		case x.wake <- struct{}{}:
		default:
		}
	}
}

// signalSpace tells one producer blocked on a full ring that slots freed.
func (x *exportOp) signalSpace() {
	select {
	case x.space <- struct{}{}:
	default:
	}
}

// setConn records the current epoch's connection so close() can bound its
// final flush with a write deadline and close the right socket.
func (x *exportOp) setConn(conn net.Conn) {
	x.mu.Lock()
	x.conn = conn
	x.mu.Unlock()
}

// writerState is the writer goroutine's cross-epoch state: the retransmit
// window, the next wire sequence, and tuples popped from the staging ring
// but not yet staged when an epoch died.
type writerState struct {
	retr    *retransRing
	nextSeq uint64
	batch   []*spl.Tuple
	pending []*spl.Tuple
	pHead   int
	closing bool
}

// connSession is one connection epoch: its encoder and the ack-reader
// goroutine draining the receiver's acknowledgement back-channel.
type connSession struct {
	conn    net.Conn
	enc     *encoder
	ackDone chan struct{}
}

func (s *connSession) teardown() {
	_ = s.conn.Close()
	<-s.ackDone
}

// writerLoop runs connection epochs until close: attach (handshake +
// resume), drain the staging ring onto the wire, and on a lost connection
// redial and resume. Without a redial address a lost connection fails the
// stream permanently and staged traffic drops-and-counts, preserving
// counter convergence for single-connection users.
func (x *exportOp) writerLoop(first net.Conn) {
	defer close(x.done)
	st := &writerState{
		retr:    newRetransRing(x.cfg.RetransmitCapacity),
		nextSeq: x.seedSeq,
		batch:   make([]*spl.Tuple, writerBatchTuples),
	}
	conn := first
	for {
		sess, err := x.attach(conn, st)
		if err == nil {
			x.connected.Store(true)
			x.runConn(sess, st)
			x.connected.Store(false)
			sess.teardown()
		} else if sess != nil {
			sess.teardown()
		} else {
			_ = conn.Close()
		}
		if x.closed.Load() {
			x.finish(st)
			return
		}
		if x.currentAddr() == "" {
			x.failed.Store(true)
			x.dropPending(st)
			x.drainUntilQuit(st)
			x.finish(st)
			return
		}
		next := x.redial()
		if next == nil {
			x.finish(st)
			return
		}
		x.reconnects.Add(1)
		x.rec.Record(obs.EvReconnect, x.recPE, int64(x.site), 0, "")
		x.setConn(next)
		conn = next
	}
}

// attach performs the resume handshake on a fresh connection: read the
// receiver's delivered watermark (bounded by handshakeTimeout), start the
// ack reader, and retransmit every staged frame past the watermark.
func (x *exportOp) attach(conn net.Conn, st *writerState) (*connSession, error) {
	_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var hb [8]byte
	if _, err := io.ReadFull(conn, hb[:]); err != nil {
		return nil, fmt.Errorf("pe: export %s handshake: %w", x.name, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	resume := binary.LittleEndian.Uint64(hb[:])
	if resume > st.nextSeq {
		// A sane receiver cannot have seen frames that were never staged.
		resume = st.nextSeq
	}
	storeMax(&x.acked, resume)
	sess := &connSession{conn: conn, enc: newEncoder(conn), ackDone: make(chan struct{})}
	go x.ackReader(conn, sess.ackDone)
	// Retransmit granularity is the frame: a batch frame only partially past
	// the watermark is rewritten whole and the importer's sequence dedup
	// drops the overlap.
	frames, tuples, err := st.retr.framesAfter(resume, func(frame []byte) error {
		return x.writeBytes(sess, frame)
	})
	x.retrans.Add(uint64(frames))
	x.retransT.Add(uint64(tuples))
	if err != nil {
		return sess, err
	}
	if tuples > 0 {
		// One event per resume burst (tuple count), not per frame.
		x.rec.Record(obs.EvRetransmit, x.recPE, int64(x.site), int64(tuples), "")
	}
	if frames > 0 {
		if err := x.flushSess(sess); err != nil {
			return sess, err
		}
	}
	x.progress.Store(time.Now().UnixNano())
	return sess, nil
}

// ackReader drains the receiver's acknowledgement back-channel, advancing
// the acked watermark and waking a writer waiting for window space. It
// exits when the connection dies, which is also how the writer learns of a
// peer death while parked.
func (x *exportOp) ackReader(conn net.Conn, done chan struct{}) {
	defer close(done)
	var b [8]byte
	for {
		if _, err := io.ReadFull(conn, b[:]); err != nil {
			return
		}
		storeMax(&x.acked, binary.LittleEndian.Uint64(b[:]))
		select {
		case x.ackSig <- struct{}{}:
		default:
		}
	}
}

// storeMax raises a to v if v is larger; acknowledgement watermarks only
// move forward.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// inFlight is the number of staged frames not yet acknowledged.
func (x *exportOp) inFlight(nextSeq uint64) uint64 {
	a := x.acked.Load()
	if a >= nextSeq {
		return 0
	}
	return nextSeq - a
}

// runConn drains the staging ring onto one connection until the epoch ends
// (connection error, ack-reader death, or close). Flush policy is
// Nagle-style and tunable: flush once FlushBytes are pending, when the ring
// runs empty (an idle stream never holds frames back), or when the oldest
// pending frame has waited MaxFlushDelay under a sustained trickle.
func (x *exportOp) runConn(sess *connSession, st *writerState) {
	var pendingSince time.Time
	for {
		if th := x.frozenThaw(); th != nil {
			// Migration freeze: flush what is buffered so the peer can
			// acknowledge it, then park without staging anything further —
			// not even leftover pending tuples, so the staged watermark
			// (seqHigh) stops moving and quiescence can be observed. The
			// freeze survives connection epochs: a reroute closes the
			// connection, ackDone fires, the next epoch parks here again.
			if x.flushSess(sess) != nil {
				return
			}
			x.parked.Store(true)
			select {
			case <-th:
				x.parked.Store(false)
				continue
			case <-sess.ackDone:
				x.parked.Store(false)
				return
			case <-x.quit:
				x.parked.Store(false)
				x.finalDrain(sess, st)
				return
			}
		}
		if st.pHead < len(st.pending) {
			if err := x.stagePending(sess, st); err != nil {
				if errors.Is(err, errExportClosing) {
					x.finalDrain(sess, st)
				}
				return
			}
		}
		n := x.ring.TryPopN(st.batch)
		if n == 0 {
			if sess.enc.buffered() > 0 {
				if x.flushSess(sess) != nil {
					return
				}
				pendingSince = time.Time{}
			}
			x.parked.Store(true)
			if x.ring.Len() > 0 {
				x.parked.Store(false)
				continue
			}
			select {
			case <-x.wake:
				x.parked.Store(false)
				continue
			case <-sess.ackDone:
				x.parked.Store(false)
				return
			case <-x.quit:
				x.parked.Store(false)
				x.finalDrain(sess, st)
				return
			}
		}
		x.batches.record(n)
		st.pending = append(st.pending[:0], st.batch[:n]...)
		for i := 0; i < n; i++ {
			st.batch[i] = nil
		}
		st.pHead = 0
		x.signalSpace()
		if err := x.stagePending(sess, st); err != nil {
			if errors.Is(err, errExportClosing) {
				x.finalDrain(sess, st)
			}
			return
		}
		if sess.enc.buffered() >= x.cfg.FlushBytes {
			if x.flushSess(sess) != nil {
				return
			}
			pendingSince = time.Time{}
		} else if sess.enc.buffered() > 0 {
			now := time.Now()
			switch {
			case pendingSince.IsZero():
				pendingSince = now
			case now.Sub(pendingSince) >= x.cfg.MaxFlushDelay:
				if x.flushSess(sess) != nil {
					return
				}
				pendingSince = time.Time{}
			}
		} else {
			pendingSince = time.Time{}
		}
		x.progress.Store(time.Now().UnixNano())
	}
}

// stagePending assigns wire sequences to the writer's pending tuples,
// parks their encoded frames in the retransmit window (waiting for
// acknowledgements when the window is full), releases the pooled clones,
// and writes the frames to the connection. The default encodes each ring
// drain as v2 batch frames; PerTupleFrames selects the v1 frame-per-tuple
// wire, byte-identical to the pre-batch transport. Chaos hooks fire here in
// both modes — see stageBatch for the mid-batch-frame semantics.
func (x *exportOp) stagePending(sess *connSession, st *writerState) error {
	if x.cfg.PerTupleFrames {
		return x.stagePerTuple(sess, st)
	}
	return x.stageBatch(sess, st)
}

// stagePerTuple is the v1 wire: one frame, one retransmit slot, and one
// chaos-hook evaluation per tuple.
func (x *exportOp) stagePerTuple(sess *connSession, st *writerState) error {
	for st.pHead < len(st.pending) {
		t := st.pending[st.pHead]
		if err := x.awaitWindow(sess, st); err != nil {
			return err
		}
		seq := st.nextSeq + 1
		frame, err := st.retr.putTuple(seq, t)
		if err != nil {
			// The tuple cannot be framed at all (oversized); count and drop.
			x.dropped.Add(1)
			t.Release()
			st.pending[st.pHead] = nil
			st.pHead++
			continue
		}
		st.nextSeq = seq
		x.seqHigh.Store(seq)
		x.sent.Add(1)
		x.wireFrames.Add(1)
		t.Release()
		st.pending[st.pHead] = nil
		st.pHead++
		if x.inj != nil {
			if x.inj.Fire(fault.ConnKill, x.site) {
				_ = sess.conn.Close()
			}
			if d := x.inj.FireDelay(fault.WriterStall, x.site); d > 0 {
				time.Sleep(d)
			}
			if x.inj.Fire(fault.FrameCorrupt, x.site) {
				x.corrupts.Add(1)
				return x.writeCorrupted(sess)
			}
		}
		if err := x.writeBytes(sess, frame); err != nil {
			return err
		}
	}
	st.pending = st.pending[:0]
	st.pHead = 0
	return nil
}

// stageBatch is the v2 wire: the pending drain is cut into chunks that fit
// batchTargetBytes (almost always one chunk — a full writerBatchTuples drain
// of small tuples is a few KiB; bulk tuples split so frames stay pool-sized)
// and each chunk becomes one batch frame: one
// marshal, one retransmit slot, one buffered write. Chaos hooks still fire
// once per tuple, in staging order, so a fault plan's Nth event lands on the
// same tuple in either wire mode and same-seed event logs stay
// byte-identical; the hook *effects* are applied per frame after all of the
// chunk's events are ranked — a kill closes the socket, a stall sleeps, and
// a corruption poisons the wire in place of the whole just-staged frame,
// which rides the retransmit window to the next epoch (the mid-batch-frame
// fault surface).
func (x *exportOp) stageBatch(sess *connSession, st *writerState) error {
	for st.pHead < len(st.pending) {
		if err := x.awaitWindow(sess, st); err != nil {
			return err
		}
		// Cut the next chunk, dropping tuples too large to frame even alone.
		k, prev, body := 0, 0, batchHeaderBytes
		for st.pHead+k < len(st.pending) {
			t := st.pending[st.pHead+k]
			add := batchFrameAdd(t, prev)
			if batchHeaderBytes+batchFrameAdd(t, 0) > maxFrameBytes {
				if k > 0 {
					break // flush the chunk so far, then drop on the next pass
				}
				x.dropped.Add(1)
				t.Release()
				st.pending[st.pHead] = nil
				st.pHead++
				continue
			}
			if k > 0 && body+add > batchTargetBytes {
				break
			}
			if body+add > maxFrameBytes {
				break
			}
			body += add
			prev = batchRecordBytes(t)
			k++
		}
		if k == 0 {
			continue // everything left was oversized and dropped
		}
		first := st.nextSeq + 1
		chunk := st.pending[st.pHead : st.pHead+k]
		frame, err := st.retr.putBatch(first, chunk)
		if err != nil {
			// Cannot happen: the chunk was sized to fit. Fail closed anyway.
			for _, t := range chunk {
				x.dropped.Add(1)
				t.Release()
			}
			clearPending(st, k)
			continue
		}
		st.nextSeq += uint64(k)
		x.seqHigh.Store(st.nextSeq)
		x.sent.Add(uint64(k))
		x.wireFrames.Add(1)
		for _, t := range chunk {
			t.Release()
		}
		clearPending(st, k)
		if x.inj != nil {
			// Rank every tuple's events before acting, so a corruption landing
			// mid-chunk never skips the kill/stall evaluations of the tuples
			// after it — event ranks are a pure function of staging order.
			killed, corrupted := false, false
			var stall time.Duration
			for i := 0; i < k; i++ {
				if x.inj.Fire(fault.ConnKill, x.site) {
					killed = true
				}
				if d := x.inj.FireDelay(fault.WriterStall, x.site); d > 0 {
					stall += d
				}
				if x.inj.Fire(fault.FrameCorrupt, x.site) {
					x.corrupts.Add(1)
					corrupted = true
				}
			}
			if killed {
				_ = sess.conn.Close()
			}
			if stall > 0 {
				time.Sleep(stall)
			}
			if corrupted {
				return x.writeCorrupted(sess)
			}
		}
		if err := x.writeBytes(sess, frame); err != nil {
			return err
		}
	}
	st.pending = st.pending[:0]
	st.pHead = 0
	return nil
}

// clearPending nils and advances past the first k un-cleared pending slots.
func clearPending(st *writerState, k int) {
	for i := 0; i < k; i++ {
		st.pending[st.pHead+i] = nil
	}
	st.pHead += k
}

// awaitWindow blocks until the retransmit window has room for one more
// frame, flushing first so the receiver can acknowledge what it has.
func (x *exportOp) awaitWindow(sess *connSession, st *writerState) error {
	for st.retr.full(x.acked.Load()) {
		if err := x.flushSess(sess); err != nil {
			return err
		}
		if st.closing {
			timer := time.NewTimer(closeFlushTimeout)
			select {
			case <-x.ackSig:
				timer.Stop()
			case <-sess.ackDone:
				timer.Stop()
				return errExportConnLost
			case <-timer.C:
				return errExportWindowFull
			}
			continue
		}
		select {
		case <-x.ackSig:
		case <-sess.ackDone:
			return errExportConnLost
		case <-x.quit:
			return errExportClosing
		}
	}
	return nil
}

// writeCorrupted poisons the wire with an invalid length prefix and flushes
// it, so the receiver rejects the stream and resets the connection. The
// just-staged frame was deliberately not written; it rides the retransmit
// window to the next epoch.
func (x *exportOp) writeCorrupted(sess *connSession) error {
	var bad [4]byte
	binary.LittleEndian.PutUint32(bad[:], ^uint32(0))
	if _, err := sess.enc.writeBytes(bad[:]); err != nil {
		return err
	}
	if err := x.flushSess(sess); err != nil {
		return err
	}
	return fmt.Errorf("pe: export %s injected frame corruption", x.name)
}

// writeBytes writes one encoded frame, counting wire bytes.
func (x *exportOp) writeBytes(sess *connSession, frame []byte) error {
	nb, err := sess.enc.writeBytes(frame)
	x.bytes.Add(uint64(nb))
	return err
}

// flushSess pushes buffered frames onto the connection.
func (x *exportOp) flushSess(sess *connSession) error {
	if sess.enc.buffered() == 0 {
		return nil
	}
	if err := sess.enc.flush(); err != nil {
		return err
	}
	x.flushes.Add(1)
	return nil
}

// finalDrain empties the staging ring onto the wire at graceful close. A
// few yield rounds let in-flight producers land their reserved slots;
// anything it cannot write (dead peer, stuck window) is left for finish()
// to drop-and-count.
func (x *exportOp) finalDrain(sess *connSession, st *writerState) {
	st.closing = true
	if x.stagePending(sess, st) != nil {
		return
	}
	for round := 0; round < 3; round++ {
		for {
			n := x.ring.TryPopN(st.batch)
			if n == 0 {
				break
			}
			x.batches.record(n)
			st.pending = append(st.pending[:0], st.batch[:n]...)
			for i := 0; i < n; i++ {
				st.batch[i] = nil
			}
			st.pHead = 0
			x.signalSpace()
			if x.stagePending(sess, st) != nil {
				return
			}
		}
		runtime.Gosched()
	}
	_ = x.flushSess(sess)
}

// dropPending drops-and-counts tuples popped from the staging ring but
// never staged, returning their pooled clones. Runs when the stream fails
// permanently or closes — the satellite fix for the old path that left
// staged leftovers to the garbage collector.
func (x *exportOp) dropPending(st *writerState) {
	for i := st.pHead; i < len(st.pending); i++ {
		if t := st.pending[i]; t != nil {
			x.dropped.Add(1)
			t.Release()
			st.pending[i] = nil
		}
	}
	st.pending = st.pending[:0]
	st.pHead = 0
}

// drainUntilQuit keeps the staging ring flowing (into the drop counter)
// after a permanent failure, so producers never wedge on a dead stream and
// pushed == sent + dropped converges.
func (x *exportOp) drainUntilQuit(st *writerState) {
	for {
		n := x.ring.TryPopN(st.batch)
		if n > 0 {
			for i := 0; i < n; i++ {
				x.dropped.Add(1)
				st.batch[i].Release()
				st.batch[i] = nil
			}
			x.signalSpace()
			continue
		}
		x.parked.Store(true)
		if x.ring.Len() > 0 {
			x.parked.Store(false)
			continue
		}
		select {
		case <-x.wake:
			x.parked.Store(false)
		case <-x.quit:
			x.parked.Store(false)
			return
		}
	}
}

// finish settles the stream's books at writer exit: remaining pending and
// staged tuples drop-and-count (and return to the pool), and the
// never-acknowledged staged frames are recorded — they may or may not have
// reached the peer.
func (x *exportOp) finish(st *writerState) {
	x.dropPending(st)
	for round := 0; round < 3; round++ {
		for {
			n := x.ring.TryPopN(st.batch)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				x.dropped.Add(1)
				st.batch[i].Release()
				st.batch[i] = nil
			}
			x.signalSpace()
		}
		runtime.Gosched()
	}
	if a := x.acked.Load(); a < st.nextSeq {
		x.unacked.Store(st.nextSeq - a)
	}
}

// redial re-establishes the stream connection with capped exponential
// backoff plus jitter, returning nil only when the export closes first.
func (x *exportOp) redial() net.Conn {
	backoff := x.cfg.ReconnectBaseDelay
	for {
		if x.closed.Load() {
			return nil
		}
		conn, err := net.DialTimeout("tcp", x.currentAddr(), handshakeTimeout)
		if err == nil {
			return conn
		}
		// Jitter spreads simultaneous redials (a dead PE kills many
		// streams at once) across the backoff window.
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		timer := time.NewTimer(d)
		select {
		case <-x.quit:
			timer.Stop()
			return nil
		case <-timer.C:
		}
		backoff *= 2
		if backoff > x.cfg.ReconnectMaxDelay {
			backoff = x.cfg.ReconnectMaxDelay
		}
	}
}

// Sent returns the number of tuples staged onto the stream (assigned a
// wire sequence and parked in the retransmit window).
func (x *exportOp) Sent() uint64 { return x.sent.Load() }

// Dropped returns the number of tuples the stream never staged.
func (x *exportOp) Dropped() uint64 { return x.dropped.Load() }

// BytesSent returns the wire bytes of encoded frames, retransmits included.
func (x *exportOp) BytesSent() uint64 { return x.bytes.Load() }

// Flushes returns the number of explicit flushes onto the connection.
func (x *exportOp) Flushes() uint64 { return x.flushes.Load() }

// WireFrames returns the number of frames staged onto the wire — one per
// tuple with PerTupleFrames, one per batch otherwise. Sent/WireFrames is the
// batch amortization ratio; WireFrames/Flushes is frames per flush.
func (x *exportOp) WireFrames() uint64 { return x.wireFrames.Load() }

// Retransmits returns the number of frame writes beyond each frame's first.
func (x *exportOp) Retransmits() uint64 { return x.retrans.Load() }

// Reconnects returns the number of successful re-attaches.
func (x *exportOp) Reconnects() uint64 { return x.reconnects.Load() }

// Unacked returns the staged frames never acknowledged, recorded at close.
func (x *exportOp) Unacked() uint64 { return x.unacked.Load() }

// StagedDepth returns the staging ring's instantaneous depth.
func (x *exportOp) StagedDepth() int {
	if !x.wired.Load() {
		return 0
	}
	return x.ring.Len()
}

// Connected reports whether the stream currently has a healthy connection.
func (x *exportOp) Connected() bool { return x.connected.Load() }

// LastProgress returns when the writer last made useful progress.
func (x *exportOp) LastProgress() time.Time {
	return time.Unix(0, x.progress.Load())
}

func (x *exportOp) close() {
	if x.closed.Swap(true) {
		return
	}
	x.mu.Lock()
	if x.conn != nil {
		// Unblock a writer stuck in a TCP write against a stalled peer so
		// the final drain is bounded.
		_ = x.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	}
	quit, done := x.quit, x.done
	x.mu.Unlock()
	if quit != nil {
		close(quit)
		<-done
	}
	if x.local.Load() {
		// No writer goroutine settled the books: leftover staged clones the
		// peer never popped drop-and-count here so pushed == sent + dropped
		// converges, exactly as finish() does for a wire stream. The peer
		// may race a final pop; MPMC keeps the split disjoint.
		x.connected.Store(false)
		var batch [writerBatchTuples]*spl.Tuple
		for {
			n := x.ring.TryPopN(batch[:])
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				x.dropped.Add(1)
				batch[i].Release()
				batch[i] = nil
			}
			x.signalSpace()
		}
		return
	}
	x.mu.Lock()
	if x.conn != nil {
		_ = x.conn.Close()
	}
	x.mu.Unlock()
}

// importSource is the source standing in for a cross-PE stream's receiving
// side. A dedicated reader goroutine decodes frames from the connection and
// hands the materialized tuples to the operator thread through a bounded
// MPMC injection ring — a whole batch frame lands with one TryPushN instead
// of per-tuple channel sends, and the operator thread pops slices straight
// into the engine (feeding a compiled region's batch buffer when the
// emitter supports EmitN). A blocked TCP read can never stall the engine's
// pause barrier, and one wake delivers many tuples.
//
// The import owns the stream's listener (when launched as part of a job):
// after a connection dies it accepts the sender's redial, replies with its
// delivered wire-sequence watermark so the sender resumes from the
// retransmit ring, and deduplicates by wire sequence — retransmitted frames
// it already delivered drop-and-count, making the at-least-once wire
// exactly-once downstream.
type importSource struct {
	name string

	// rec/recPE/site feed the flight recorder; a nil rec no-ops every
	// Record.
	rec   *obs.FlightRecorder
	recPE int32
	site  int

	mu     sync.Mutex
	conn   net.Conn
	ln     net.Listener
	inq    *queue.MPMC[*spl.Tuple] // injection ring: reader -> operator thread
	done   chan struct{}
	closed atomic.Bool

	// inWake nudges an operator thread parked on an empty injection ring;
	// inSpace nudges a reader blocked on a full one. Both carry at most one
	// pending signal, like the export's wake/space pair.
	inWake  chan struct{}
	inSpace chan struct{}

	// rbatch is the operator thread's pop scratch; only the thread driving
	// Next touches it.
	rbatch []*spl.Tuple

	// peer/batch are the in-process fast path: a non-nil peer means this
	// import pops the co-located export's staging ring directly (no reader
	// goroutine, injection ring, or connection exists). Only the operator
	// thread driving Next touches batch.
	peer  *exportOp
	batch []*spl.Tuple

	// timer is the reusable idle-poll timer; only the operator thread
	// driving Next touches it.
	timer *time.Timer

	received  atomic.Uint64 // unique tuples delivered downstream
	delivered atomic.Uint64 // highest wire sequence delivered (resume/dedup)
	frames    atomic.Uint64 // wire frames decoded (v1 or batch)
	dups      atomic.Uint64 // retransmitted tuples dropped by dedup
	resumes   atomic.Uint64 // connections re-accepted after the first
	bytes     atomic.Uint64

	// Checkpoint/replay support. emitted is the wire sequence of the last
	// tuple actually emitted downstream (wire sequences are contiguous per
	// unique delivery, so it equals the emit count); the checkpoint
	// coordinator stamps it on each epoch under the pause barrier.
	// ackFloor caps the acknowledgement watermark reported upstream:
	// while gated (checkpointing on), acks never pass the last committed
	// checkpoint, so the export's retransmit ring provably retains the
	// replay range (floor, head]. MaxUint64 means ungated (today's
	// behavior).
	emitted  atomic.Uint64
	ackFloor atomic.Uint64

	// pendingRewind, guarded by mu, is a recovery request: the reader
	// loop applies it between connection epochs (see rewind).
	pendingRewind *rewindReq
	rewinding     atomic.Bool
}

// rewindReq asks the reader loop to roll the dedup/resume watermarks back
// to a checkpoint; done is closed once the rewind has been applied.
type rewindReq struct {
	to   uint64
	done chan struct{}
}

var (
	_ spl.Source      = (*importSource)(nil)
	_ spl.DrainExempt = (*importSource)(nil)
)

func newImportSource(name string) *importSource {
	s := &importSource{name: name}
	s.ackFloor.Store(^uint64(0)) // ungated until checkpointing arms the gate
	return s
}

// seedWatermark pre-loads the delivered/emitted watermarks so a replacement
// import continues a retired predecessor's sequence domain: the next resume
// handshake tells the (rerouted) sender to skip everything the old import
// already delivered. Must be called before connect.
func (s *importSource) seedWatermark(n uint64) {
	s.delivered.Store(n)
	s.emitted.Store(n)
}

// gateAcks arms the ack floor at zero: no frame is acknowledged upstream
// until the first checkpoint commits and advances the floor. Called once
// at wiring time, before the engine starts.
func (s *importSource) gateAcks() { s.ackFloor.Store(0) }

// advanceAckFloor raises the ack floor to the committed checkpoint
// watermark (floor only ever advances).
func (s *importSource) advanceAckFloor(wm uint64) { storeMax(&s.ackFloor, wm) }

// ackView caps an acknowledgement value at the ack floor.
func (s *importSource) ackView(v uint64) uint64 {
	if f := s.ackFloor.Load(); v > f {
		return f
	}
	return v
}

// emitWatermark returns the wire sequence of the last tuple emitted
// downstream; the checkpoint coordinator reads it under the pause barrier.
func (s *importSource) emitWatermark() uint64 { return s.emitted.Load() }

// rewind rolls the import back to checkpoint watermark `to`: the current
// connection epoch is killed, tuples decoded-but-not-processed are
// released, and the dedup/resume watermarks reset so the next handshake
// makes the sender retransmit (to, head] from its ring. Called with the
// engine paused, so no Next is in flight; replayed tuples re-enter the
// pipeline exactly as live ones. No-op on local edges, closed streams, or
// when `to` is ahead of this stream's delivery (foreign watermark).
func (s *importSource) rewind(to uint64) {
	if s.peer != nil || s.closed.Load() {
		return
	}
	s.mu.Lock()
	q := s.inq
	if q == nil || to > s.delivered.Load() || s.pendingRewind != nil {
		s.mu.Unlock()
		return
	}
	req := &rewindReq{to: to, done: make(chan struct{})}
	s.pendingRewind = req
	s.rewinding.Store(true)
	conn, ended := s.conn, s.done
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	// Drain the injection ring while waiting: the reader may be blocked
	// pushing a decoded batch into a full ring and must finish its epoch
	// before the rewind can apply. The timeout only guards pathological
	// shutdown races (no live connection and no redial); a late apply is
	// still safe — it just re-delivers tuples the dedup downstream drops.
	timeout := time.NewTimer(5 * time.Second)
	defer timeout.Stop()
	poll := time.NewTicker(time.Millisecond)
	defer poll.Stop()
	var drain [importBatchMax]*spl.Tuple
	for {
		for {
			n := q.TryPopN(drain[:])
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				drain[i].Release()
				drain[i] = nil
			}
			s.signalInSpace()
		}
		select {
		case <-req.done:
			return
		case <-ended:
			return // stream ended underneath the rewind
		case <-timeout.C:
			return
		case <-poll.C:
		}
	}
}

// applyRewind applies a pending rewind between connection epochs: no
// serveConn is active, so draining the injection ring and resetting the
// watermarks races nobody. (The engine is paused, so no Next pops either.)
func (s *importSource) applyRewind(q *queue.MPMC[*spl.Tuple]) {
	s.mu.Lock()
	req := s.pendingRewind
	s.pendingRewind = nil
	s.mu.Unlock()
	if req == nil {
		return
	}
	var drain [importBatchMax]*spl.Tuple
	for {
		n := q.TryPopN(drain[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			drain[i].Release()
			drain[i] = nil
		}
	}
	s.delivered.Store(req.to)
	s.emitted.Store(req.to)
	s.rewinding.Store(false)
	close(req.done)
}

// Name returns the operator name.
func (s *importSource) Name() string { return s.name }

// DrainExempt keeps the import running during a drain: it carries the
// in-flight tuples the drain is waiting for.
func (s *importSource) DrainExempt() {}

// Process is a no-op: sources have no input ports.
func (s *importSource) Process(int, *spl.Tuple, spl.Emitter) {}

// connect attaches the stream's first connection and starts the reader
// goroutine; must happen before the engine starts. A non-nil listener is
// adopted for the stream's lifetime: when a connection dies the reader
// accepts the sender's redial on it and resumes. With ln nil the first
// connection is the only one (tests, benchmarks).
func (s *importSource) connect(conn net.Conn, ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn = conn
	s.ln = ln
	// importRingCapacity is a power of two, so NewMPMC cannot fail.
	s.inq, _ = queue.NewMPMC[*spl.Tuple](importRingCapacity)
	s.inWake = make(chan struct{}, 1)
	s.inSpace = make(chan struct{}, 1)
	s.rbatch = make([]*spl.Tuple, importBatchMax)
	s.done = make(chan struct{})
	go s.readLoop(conn, s.inq, s.done)
}

// connectLocal wires the import as the receiving half of an in-process
// edge: Next pops the co-located export's staging ring directly instead of
// draining a reader goroutine's channel. Must happen before the engine
// starts, after the export's connectLocal.
func (s *importSource) connectLocal(exp *exportOp) {
	s.mu.Lock()
	s.peer = exp
	s.batch = make([]*spl.Tuple, importBatchMax)
	s.mu.Unlock()
}

func (s *importSource) setConn(conn net.Conn) {
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
}

// readLoop serves connection epochs: decode frames from the current
// connection until it dies, then (with a listener) accept the sender's
// redial and continue. done closes only when the stream truly ends; the
// operator thread treats done-closed plus an empty injection ring as
// end-of-stream.
func (s *importSource) readLoop(conn net.Conn, q *queue.MPMC[*spl.Tuple], done chan struct{}) {
	defer close(done)
	for {
		if conn != nil {
			s.serveConn(conn, q)
			_ = conn.Close()
			conn = nil
		}
		// Between connection epochs no decoder is running: the only safe
		// point to roll the watermarks back for a checkpoint recovery.
		s.applyRewind(q)
		s.mu.Lock()
		ln := s.ln
		s.mu.Unlock()
		if ln == nil || s.closed.Load() {
			return
		}
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.closed.Load() {
			_ = c.Close()
			return
		}
		// A rewind requested while blocked in Accept applies now, before
		// the new epoch handshakes with the (rolled-back) watermark.
		s.applyRewind(q)
		s.resumes.Add(1)
		s.rec.Record(obs.EvResume, s.recPE, int64(s.site), 0, "")
		s.setConn(c)
		conn = c
	}
}

// serveConn speaks one connection epoch of the resume protocol: send the
// delivered watermark as the handshake, then decode frames (v1 single-tuple
// or v2 batch), dropping tuples whose wire sequences sit at or below the
// watermark (retransmitted duplicates — within a batch frame the overlap is
// always a prefix, since sequences ascend) and acknowledging delivery
// inline every ackEvery frames with a ticker covering the idle tail. A
// decoded batch lands in the injection ring with TryPushN; a full ring
// blocks the reader on the operator thread's space signal, which is the
// same backpressure the old per-tuple channel send applied.
func (s *importSource) serveConn(conn net.Conn, q *queue.MPMC[*spl.Tuple]) {
	var wmu sync.Mutex
	var ackFailed atomic.Bool
	writeU64 := func(v uint64) bool {
		if ackFailed.Load() {
			return false
		}
		wmu.Lock()
		defer wmu.Unlock()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_ = conn.SetWriteDeadline(time.Now().Add(ackWriteTimeout))
		_, err := conn.Write(b[:])
		_ = conn.SetWriteDeadline(time.Time{})
		if err != nil {
			ackFailed.Store(true)
			return false
		}
		return true
	}
	// Every acknowledgement — handshake included — is capped at the ack
	// floor: with checkpointing armed, frames above the last committed
	// watermark stay in the sender's retransmit ring so a recovery rewind
	// can replay them. The resume/dedup watermark (delivered) is NOT
	// capped; excess retransmits after a reconnect are dropped as dups.
	if !writeU64(s.ackView(s.delivered.Load())) {
		return
	}
	lastAcked := s.ackView(s.delivered.Load())
	var tickAcked atomic.Uint64
	tickAcked.Store(lastAcked)
	stopTick := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		tick := time.NewTicker(ackTickInterval)
		defer tick.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-tick.C:
				d := s.ackView(s.delivered.Load())
				if d != tickAcked.Load() && writeU64(d) {
					tickAcked.Store(d)
				}
			}
		}
	}()
	defer func() {
		close(stopTick)
		<-tickDone
	}()
	dec := newDecoder(conn)
	sinceAck := 0
	scratch := make([]*spl.Tuple, maxBatchTuples)
	for {
		n, first, err := dec.decodeFrame(scratch)
		if err != nil {
			// EOF ends the epoch cleanly; a framing error also ends it —
			// the reset is what triggers the sender's retransmit resume.
			return
		}
		if s.rewinding.Load() {
			// A checkpoint recovery is rolling this stream back; end the
			// epoch without advancing any watermark.
			releaseAll(scratch[:n])
			return
		}
		s.bytes.Add(uint64(dec.lastFrameBytes()))
		s.frames.Add(1)
		// Dedup at tuple-seq granularity: a retransmitted batch frame that
		// partially overlaps the watermark sheds its already-delivered
		// prefix here.
		wm := s.delivered.Load()
		j := 0
		for i := 0; i < n; i++ {
			if first+uint64(i) <= wm {
				s.dups.Add(1)
				scratch[i].Release()
				scratch[i] = nil
				continue
			}
			scratch[j] = scratch[i]
			j++
		}
		for i := j; i < n; i++ {
			scratch[i] = nil
		}
		if j == 0 {
			continue // whole frame was duplicate
		}
		last := first + uint64(n) - 1
		s.delivered.Store(last)
		if !s.pushBatch(q, scratch[:j]) {
			return // closing or rewinding; unpushed tuples released
		}
		s.received.Add(uint64(j))
		sinceAck++
		if sinceAck >= ackEvery {
			sinceAck = 0
			if a := s.ackView(last); writeU64(a) {
				tickAcked.Store(a)
			}
		}
	}
}

// releaseAll releases and nils every tuple of ts.
func releaseAll(ts []*spl.Tuple) {
	for i, t := range ts {
		if t != nil {
			t.Release()
			ts[i] = nil
		}
	}
}

// pushBatch lands a decoded batch in the injection ring, waking a parked
// operator thread after every partial push and parking on the space signal
// when the ring is full. It returns false — releasing the unpushed
// remainder — when the stream closes or a rewind begins, so a dead consumer
// can never wedge the reader.
func (s *importSource) pushBatch(q *queue.MPMC[*spl.Tuple], ts []*spl.Tuple) bool {
	off := 0
	var timer *time.Timer
	for off < len(ts) {
		n := q.TryPushN(ts[off:])
		if n > 0 {
			for i := off; i < off+n; i++ {
				ts[i] = nil
			}
			off += n
			s.signalInWake()
			continue
		}
		if s.closed.Load() || s.rewinding.Load() {
			releaseAll(ts[off:])
			return false
		}
		if timer == nil {
			timer = time.NewTimer(importPollInterval)
			defer timer.Stop()
		} else {
			timer.Reset(importPollInterval)
		}
		select {
		case <-s.inSpace:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
	}
	return true
}

// signalInWake nudges an operator thread parked on an empty injection ring.
func (s *importSource) signalInWake() {
	select {
	case s.inWake <- struct{}{}:
	default:
	}
}

// signalInSpace tells a reader blocked on a full injection ring that slots
// freed.
func (s *importSource) signalInSpace() {
	select {
	case s.inSpace <- struct{}{}:
	default:
	}
}

// Next emits the next batch of received tuples: a non-blocking TryPopN of
// up to importBatchMax queued tuples when traffic is flowing (no timer-heap
// traffic at all on that path), falling back to a park on the reader's wake
// signal bounded by the reusable poll timer when the stream is quiet. It
// yields with true (and no emission) when the stream is idle for a poll
// interval, and returns false only once the stream has ended and drained.
func (s *importSource) Next(out spl.Emitter) bool {
	if s.peer != nil {
		return s.nextLocal(out)
	}
	s.mu.Lock()
	q, done := s.inq, s.done
	s.mu.Unlock()
	if q == nil {
		// Not wired yet; yield.
		time.Sleep(importPollInterval)
		return !s.closed.Load()
	}
	// Fast path: tuples are already buffered; the poll timer stays cold.
	if n := q.TryPopN(s.rbatch); n > 0 {
		s.emitN(out, n)
		return true
	}
	select {
	case <-done:
		// The reader has exited; drain anything it pushed before the end,
		// then finish the stream. (done closing happens after the reader's
		// final push, so an empty pop here really is the end.)
		if n := q.TryPopN(s.rbatch); n > 0 {
			s.emitN(out, n)
			return true
		}
		return false
	default:
	}
	if s.timer == nil {
		s.timer = time.NewTimer(importPollInterval)
	} else {
		s.timer.Reset(importPollInterval)
	}
	select {
	case <-s.inWake:
		if !s.timer.Stop() {
			// The timer fired concurrently; drain it so the next Reset
			// starts clean (pre-1.23 timer semantics).
			select {
			case <-s.timer.C:
			default:
			}
		}
		if n := q.TryPopN(s.rbatch); n > 0 {
			s.emitN(out, n)
		}
		return true
	case <-done:
		if !s.timer.Stop() {
			select {
			case <-s.timer.C:
			default:
			}
		}
		if n := q.TryPopN(s.rbatch); n > 0 {
			s.emitN(out, n)
			return true
		}
		return false
	case <-s.timer.C:
		return true
	}
}

// nextLocal is the in-process edge's Next: pop a batch straight off the
// peer export's staging ring and emit it — ownership of the pooled clones
// transfers to this PE's runtime, which releases them downstream exactly as
// it would decoded tuples. On an empty ring it parks on the export's wake
// protocol (the same parked-flag handshake the writer goroutine uses, so
// Process's wakeWriter nudges the import instead), bounded by the reusable
// poll timer so engine reconfiguration is never stalled by a quiet edge.
func (s *importSource) nextLocal(out spl.Emitter) bool {
	p := s.peer
	n := p.localPop(s.batch)
	if n > 0 {
		for i := 0; i < n; i++ {
			out.Emit(0, s.batch[i])
			s.batch[i] = nil
		}
		s.received.Add(uint64(n))
		return true
	}
	if s.closed.Load() || p.localDrained() {
		return false
	}
	p.parked.Store(true)
	if p.ring.Len() > 0 {
		p.parked.Store(false)
		return true
	}
	if s.timer == nil {
		s.timer = time.NewTimer(importPollInterval)
	} else {
		s.timer.Reset(importPollInterval)
	}
	fired := false
	select {
	case <-p.wake:
	case <-p.quit:
	case <-s.timer.C:
		fired = true
	}
	p.parked.Store(false)
	if !fired && !s.timer.Stop() {
		select {
		case <-s.timer.C:
		default:
		}
	}
	return true
}

// emitN hands the first n tuples of the pop scratch downstream — in one
// EmitN when the emitter is batch-aware, so a cross-PE batch lands straight
// in a compiled region's source buffer, else tuple by tuple — then counts
// them and signals ring space to the reader.
func (s *importSource) emitN(out spl.Emitter, n int) {
	if be, ok := out.(spl.BatchEmitter); ok {
		be.EmitN(0, s.rbatch[:n])
		for i := 0; i < n; i++ {
			s.rbatch[i] = nil
		}
	} else {
		for i := 0; i < n; i++ {
			out.Emit(0, s.rbatch[i])
			s.rbatch[i] = nil
		}
	}
	// Wire sequences are contiguous, so counting emits tracks the wire
	// sequence of the last tuple handed downstream — the checkpoint
	// watermark read under the pause barrier.
	s.emitted.Add(uint64(n))
	s.signalInSpace()
}

// Received returns the number of unique tuples delivered downstream.
func (s *importSource) Received() uint64 { return s.received.Load() }

// BytesReceived returns the wire bytes of successfully decoded frames.
func (s *importSource) BytesReceived() uint64 { return s.bytes.Load() }

// FramesReceived returns the number of wire frames decoded (v1 or batch).
func (s *importSource) FramesReceived() uint64 { return s.frames.Load() }

// DupsDropped returns the retransmitted duplicates dropped by dedup.
func (s *importSource) DupsDropped() uint64 { return s.dups.Load() }

// Resumes returns the connections re-accepted after the first.
func (s *importSource) Resumes() uint64 { return s.resumes.Load() }

func (s *importSource) close() {
	s.closed.Store(true)
	s.mu.Lock()
	conn, ln, done := s.conn, s.ln, s.done
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if conn != nil {
		_ = conn.Close()
	}
	if done != nil {
		<-done
	}
}

// dialStream connects a sender to a receiver's listener with retries, since
// PE launch order is arbitrary.
func dialStream(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = errors.New("dial timeout")
	}
	return nil, lastErr
}

// accepted wraps an accept result.
type accepted struct {
	conn net.Conn
	err  error
}

// acceptOne accepts a single connection asynchronously.
func acceptOne(l net.Listener) <-chan accepted {
	ch := make(chan accepted, 1)
	go func() {
		conn, err := l.Accept()
		ch <- accepted{conn: conn, err: err}
	}()
	return ch
}
