package pe

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamelastic/internal/spl"
)

// importPollInterval bounds how long an idle import source blocks before
// yielding back to its operator thread, so engine reconfiguration (which
// waits for all loops to park) is never stalled by a quiet stream.
const importPollInterval = 20 * time.Millisecond

// importChanCapacity is the transport-side buffer between the stream
// reader goroutine and the import source. It is a deliberate network
// receive buffer, decoupling TCP reads from operator execution.
const importChanCapacity = 256

// exportOp is the terminal operator standing in for a cross-PE stream's
// sending side: it encodes each tuple onto the stream connection. It is a
// sink in its PE's graph, so the PE's throughput meter counts exported
// tuples.
type exportOp struct {
	name string

	mu      sync.Mutex
	enc     *encoder
	conn    net.Conn
	errored atomic.Bool
	dropped atomic.Uint64
	sent    atomic.Uint64
}

var (
	_ spl.Operator = (*exportOp)(nil)
	_ spl.Stateful = (*exportOp)(nil)
)

func newExportOp(name string) *exportOp {
	return &exportOp{name: name}
}

// Name returns the operator name.
func (x *exportOp) Name() string { return x.name }

// Stateful marks the encoder as serialized.
func (x *exportOp) Stateful() {}

// connect attaches the stream connection; must happen before the engine
// starts.
func (x *exportOp) connect(conn net.Conn) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.conn = conn
	x.enc = newEncoder(conn)
}

// Process encodes the tuple onto the stream. Tuples arriving before the
// stream is wired or after it errored are counted as dropped rather than
// blocking the pipeline.
func (x *exportOp) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.enc == nil || x.errored.Load() {
		x.dropped.Add(1)
		return
	}
	if err := x.enc.encode(t); err != nil {
		x.errored.Store(true)
		x.dropped.Add(1)
		return
	}
	x.sent.Add(1)
}

// Sent returns the number of tuples written to the stream.
func (x *exportOp) Sent() uint64 { return x.sent.Load() }

// Dropped returns the number of tuples that could not be written.
func (x *exportOp) Dropped() uint64 { return x.dropped.Load() }

func (x *exportOp) close() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.conn != nil {
		_ = x.conn.Close()
	}
}

// importSource is the source standing in for a cross-PE stream's receiving
// side. A dedicated reader goroutine decodes frames from the connection
// into a buffered channel; the operator thread drains the channel, so a
// blocked TCP read can never stall the engine's pause barrier.
type importSource struct {
	name string

	mu     sync.Mutex
	conn   net.Conn
	ch     chan *spl.Tuple
	done   chan struct{}
	closed atomic.Bool

	received atomic.Uint64
}

var (
	_ spl.Source      = (*importSource)(nil)
	_ spl.DrainExempt = (*importSource)(nil)
)

func newImportSource(name string) *importSource {
	return &importSource{name: name}
}

// Name returns the operator name.
func (s *importSource) Name() string { return s.name }

// DrainExempt keeps the import running during a drain: it carries the
// in-flight tuples the drain is waiting for.
func (s *importSource) DrainExempt() {}

// Process is a no-op: sources have no input ports.
func (s *importSource) Process(int, *spl.Tuple, spl.Emitter) {}

// connect attaches the stream connection and starts the reader goroutine;
// must happen before the engine starts.
func (s *importSource) connect(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn = conn
	s.ch = make(chan *spl.Tuple, importChanCapacity)
	s.done = make(chan struct{})
	go s.readLoop(conn, s.ch, s.done)
}

func (s *importSource) readLoop(conn net.Conn, ch chan *spl.Tuple, done chan struct{}) {
	defer close(done)
	defer close(ch)
	dec := newDecoder(conn)
	for {
		t, err := dec.decode()
		if err != nil {
			// EOF and closed-connection errors end the stream; anything
			// else is a framing error, which also ends it (the stream has
			// no recovery protocol).
			_ = err
			return
		}
		ch <- t
	}
}

// Next emits the next received tuple. It yields with true (and no
// emission) when the stream is idle for a poll interval, and returns false
// only once the stream has ended and drained.
func (s *importSource) Next(out spl.Emitter) bool {
	s.mu.Lock()
	ch := s.ch
	s.mu.Unlock()
	if ch == nil {
		// Not wired yet; yield.
		time.Sleep(importPollInterval)
		return !s.closed.Load()
	}
	select {
	case t, ok := <-ch:
		if !ok {
			return false
		}
		s.received.Add(1)
		out.Emit(0, t)
		return true
	case <-time.After(importPollInterval):
		return true
	}
}

// Received returns the number of tuples read from the stream.
func (s *importSource) Received() uint64 { return s.received.Load() }

func (s *importSource) close() {
	s.closed.Store(true)
	s.mu.Lock()
	conn, done := s.conn, s.done
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if done != nil {
		<-done
	}
}

// dialStream connects a sender to a receiver's listener with retries, since
// PE launch order is arbitrary.
func dialStream(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = errors.New("dial timeout")
	}
	return nil, lastErr
}

// accepted wraps an accept result.
type accepted struct {
	conn net.Conn
	err  error
}

// acceptOne accepts a single connection asynchronously.
func acceptOne(l net.Listener) <-chan accepted {
	ch := make(chan accepted, 1)
	go func() {
		conn, err := l.Accept()
		ch <- accepted{conn: conn, err: err}
	}()
	return ch
}
