package pe

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamelastic/internal/graph"
	"streamelastic/internal/spl"
)

// loopbackPair returns a connected TCP pair on loopback.
func loopbackPair(tb testing.TB) (send, recv net.Conn) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	defer ln.Close()
	accCh := acceptOne(ln)
	send, err = dialStream(ln.Addr().String(), 5*time.Second)
	if err != nil {
		tb.Fatal(err)
	}
	acc := <-accCh
	if acc.err != nil {
		tb.Fatal(acc.err)
	}
	return send, acc.conn
}

// handshakeFrom writes the import side's resume handshake (watermark 0) so
// an export's writer attaches; used by tests that drive the raw receive
// side of a connection themselves.
func handshakeFrom(conn net.Conn) {
	var b [8]byte
	_, _ = conn.Write(b[:])
}

func TestExportDropsBeforeConnect(t *testing.T) {
	exp := newExportOp("x")
	tp := spl.AcquireTuple()
	defer tp.Release()
	for i := 0; i < 3; i++ {
		exp.Process(0, tp, nil)
	}
	if got := exp.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if exp.Sent() != 0 {
		t.Fatalf("sent = %d before connect", exp.Sent())
	}
}

func TestExportCountersConvergeWhenPeerDies(t *testing.T) {
	send, recv := loopbackPair(t)
	exp := newExportOp("x")
	// Flush every batch so the broken connection surfaces quickly.
	exp.cfg = TransportConfig{FlushBytes: 1, BlockTimeout: 50 * time.Millisecond}.withDefaults()
	// No redial address: losing the peer fails the stream permanently.
	if err := exp.connect(send, ""); err != nil {
		t.Fatal(err)
	}
	defer exp.close()
	_ = recv.Close()

	tp := spl.AcquireTuple()
	tp.AcquirePayload(1024)
	defer tp.Release()

	pushed := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for !exp.failed.Load() && time.Now().Before(deadline) {
		exp.Process(0, tp, nil)
		pushed++
		time.Sleep(100 * time.Microsecond)
	}
	if !exp.failed.Load() {
		t.Fatal("export never observed the dead peer")
	}
	// Pushes after the error are dropped immediately, not silently lost.
	exp.Process(0, tp, nil)
	pushed++

	// Every pushed tuple is accounted for once the writer drains: counters
	// match what the producer handed over.
	for time.Now().Before(deadline) {
		if exp.Sent()+exp.Dropped() == pushed {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counters never converged: pushed %d, sent %d + dropped %d",
		pushed, exp.Sent(), exp.Dropped())
}

func TestDialStreamRetriesUntilListenerUp(t *testing.T) {
	// Reserve an address, release it, and only start listening after the
	// dialer has begun retrying — the PE launch-order race.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	lnCh := make(chan net.Listener, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			lnCh <- nil
			return
		}
		lnCh <- l
	}()
	conn, err := dialStream(addr, 5*time.Second)
	l := <-lnCh
	if l == nil {
		t.Skip("could not rebind reserved port")
	}
	defer l.Close()
	if err != nil {
		t.Fatalf("dialStream did not retry to success: %v", err)
	}
	_ = conn.Close()
}

func TestDialStreamTimesOutWithoutListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	start := time.Now()
	if _, err := dialStream(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial retried for %v past its 200ms budget", elapsed)
	}
}

// wedgeWriter stages tuples until the writer goroutine is stuck in a write
// against the unread pipe and the staging ring is full, then returns the
// template tuple used for pushing.
func wedgeWriter(t *testing.T, exp *exportOp) *spl.Tuple {
	t.Helper()
	tp := spl.AcquireTuple()
	tp.AcquirePayload(16 << 10)
	// 4 frames overflow the 64 KiB wire buffer (writer blocks on the pipe);
	// 2 more fill the capacity-2 ring.
	for i := 0; i < 6; i++ {
		exp.Process(0, tp, nil)
		time.Sleep(5 * time.Millisecond)
	}
	return tp
}

func TestExportDropOnFull(t *testing.T) {
	send, recv := net.Pipe()
	defer recv.Close()
	exp := newExportOp("x")
	exp.cfg = TransportConfig{RingCapacity: 2, DropOnFull: true}.withDefaults()
	go handshakeFrom(recv) // net.Pipe writes block until read
	if err := exp.connect(send, ""); err != nil {
		t.Fatal(err)
	}
	tp := wedgeWriter(t, exp)
	defer tp.Release()

	before := exp.Dropped()
	start := time.Now()
	exp.Process(0, tp, nil)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("drop mode blocked for %v", elapsed)
	}
	if exp.Dropped() != before+1 {
		t.Fatalf("dropped = %d, want %d", exp.Dropped(), before+1)
	}
	_ = recv.Close() // unwedge the writer before close
	exp.close()
}

func TestExportBoundedBlockingOnFull(t *testing.T) {
	send, recv := net.Pipe()
	defer recv.Close()
	exp := newExportOp("x")
	exp.cfg = TransportConfig{RingCapacity: 2, BlockTimeout: 120 * time.Millisecond}.withDefaults()
	go handshakeFrom(recv) // net.Pipe writes block until read
	if err := exp.connect(send, ""); err != nil {
		t.Fatal(err)
	}
	tp := wedgeWriter(t, exp)
	defer tp.Release()

	// The ring is full and the writer cannot drain: the bounded-blocking
	// mode must hold the producer for about BlockTimeout, then drop.
	before := exp.Dropped()
	start := time.Now()
	exp.Process(0, tp, nil)
	elapsed := time.Since(start)
	if exp.Dropped() != before+1 {
		t.Fatalf("dropped = %d, want %d", exp.Dropped(), before+1)
	}
	if elapsed < 80*time.Millisecond {
		t.Fatalf("blocked only %v, want about the 120ms budget", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("blocked %v, far past the 120ms budget", elapsed)
	}
	_ = recv.Close() // unwedge the writer before close
	exp.close()
}

func TestImportIdlePollZeroAlloc(t *testing.T) {
	send, recv := net.Pipe()
	imp := newImportSource("i")
	imp.connect(recv, nil)
	defer func() {
		_ = send.Close()
		imp.close()
	}()
	// Warm up: the first Next lazily creates the reusable timer.
	imp.Next(spl.DiscardEmitter)
	allocs := testing.AllocsPerRun(3, func() {
		imp.Next(spl.DiscardEmitter)
	})
	if allocs != 0 {
		t.Fatalf("idle import poll allocates %.1f objects per call, want 0", allocs)
	}
}

// TestLocalEdgeNoLossNoDuplication is TestStreamNoLossNoDuplication on the
// in-process fast path: the same two-PE job with LocalEdges routes every
// cross-PE tuple as a direct ring handoff. Delivery must still be
// exactly-once with agreeing end-to-end counters, the batch histogram must
// show coalesced pops, and the wire-only counters must stay truthfully zero
// — no wire was touched, and the stats must not pretend otherwise.
func TestLocalEdgeNoLossNoDuplication(t *testing.T) {
	const n = 12000
	g, sink := seqJob(t, n)
	job, err := Launch(g, Assignment{0, 0, 1, 1}, Options{
		DisableElasticity: true,
		LocalEdges:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain")
	}
	if sink.dups != 0 {
		t.Fatalf("%d duplicated tuples", sink.dups)
	}
	if len(sink.seen) != n {
		t.Fatalf("received %d distinct tuples, want %d", len(sink.seen), n)
	}
	stats := job.StreamStats()
	if len(stats) != 1 {
		t.Fatalf("stream stats = %+v, want 1 stream", stats)
	}
	st := stats[0]
	if !st.Local {
		t.Fatal("stream not marked Local despite LocalEdges")
	}
	if st.Sent != n || st.Received != n || st.Dropped != 0 {
		t.Fatalf("stream counters sent=%d received=%d dropped=%d, want %d/%d/0",
			st.Sent, st.Received, st.Dropped, n, n)
	}
	if st.BytesSent != 0 || st.BytesReceived != 0 || st.Flushes != 0 {
		t.Fatalf("local edge reported wire traffic: bytes=%d/%d flushes=%d, want 0",
			st.BytesSent, st.BytesReceived, st.Flushes)
	}
	if st.Retransmits != 0 || st.Reconnects != 0 || st.DupsDropped != 0 || st.Resumes != 0 {
		t.Fatalf("local edge exercised reliability machinery: %+v", st)
	}
	var batches uint64
	for _, c := range st.DrainSizes {
		batches += c
	}
	if batches == 0 {
		t.Fatal("no local pop batches recorded")
	}
}

// seqSink records every received sequence number for exactly-once checks.
type seqSink struct {
	mu    sync.Mutex
	seen  map[uint64]int
	dups  int
	count atomic.Uint64
}

func newSeqSink() *seqSink { return &seqSink{seen: make(map[uint64]int)} }

func (s *seqSink) Name() string { return "seqsink" }

func (s *seqSink) RecyclesTuples() {}

func (s *seqSink) Process(_ int, t *spl.Tuple, _ spl.Emitter) {
	s.mu.Lock()
	s.seen[t.Seq]++
	if s.seen[t.Seq] > 1 {
		s.dups++
	}
	s.mu.Unlock()
	s.count.Add(1)
}

// seqJob builds src -> work -> work -> seqSink split across two PEs.
func seqJob(t *testing.T, tuples uint64) (*graph.Graph, *seqSink) {
	t.Helper()
	g := graph.New()
	gen := spl.NewGenerator("src", 64)
	gen.MaxTuples = tuples
	prev := g.AddSource(gen, spl.NewCostVar(10))
	for i := 0; i < 2; i++ {
		cv := spl.NewCostVar(100)
		id := g.AddOperator(spl.NewWork("w", cv), cv)
		if err := g.Connect(prev, 0, id, 0, 1); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	sink := newSeqSink()
	sid := g.AddOperator(sink, spl.NewCostVar(0))
	if err := g.Connect(prev, 0, sid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

// TestStreamNoLossNoDuplication pushes a bounded stream across a PE
// boundary and verifies exactly-once delivery end to end: every sequence
// number arrives, none arrives twice, and both ends' counters agree.
// RACE_PKGS includes this package, so the whole transport (staging ring,
// writer goroutine, pooled decode, batched import) runs under -race.
func TestStreamNoLossNoDuplication(t *testing.T) {
	const n = 12000
	g, sink := seqJob(t, n)
	assign := Assignment{0, 0, 1, 1}
	job, err := Launch(g, assign, Options{DisableElasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(context.Background()); err != nil {
		job.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sink.count.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !job.DrainAndStop(30 * time.Second) {
		t.Fatal("job did not drain")
	}
	if sink.dups != 0 {
		t.Fatalf("%d duplicated tuples", sink.dups)
	}
	if len(sink.seen) != n {
		t.Fatalf("received %d distinct tuples, want %d", len(sink.seen), n)
	}
	for seq := uint64(0); seq < n; seq++ {
		if sink.seen[seq] != 1 {
			t.Fatalf("seq %d seen %d times", seq, sink.seen[seq])
		}
	}

	stats := job.StreamStats()
	if len(stats) != 1 {
		t.Fatalf("stream stats = %+v, want 1 stream", stats)
	}
	st := stats[0]
	if st.Sent != n || st.Received != n || st.Dropped != 0 {
		t.Fatalf("stream counters sent=%d received=%d dropped=%d, want %d/%d/0",
			st.Sent, st.Received, st.Dropped, n, n)
	}
	if st.BytesSent == 0 || st.BytesSent != st.BytesReceived {
		t.Fatalf("wire bytes disagree: sent %d, received %d", st.BytesSent, st.BytesReceived)
	}
	if st.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	var batches uint64
	for _, c := range st.DrainSizes {
		batches += c
	}
	if batches == 0 {
		t.Fatal("no writer batches recorded")
	}
}
