package pe

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"streamelastic/internal/spl"
)

func roundTrip(t *testing.T, in *spl.Tuple) *spl.Tuple {
	t.Helper()
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	if err := enc.encode(in); err != nil {
		t.Fatal(err)
	}
	dec := newDecoder(&buf)
	out, err := dec.decode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	in := &spl.Tuple{
		Seq: 42, Key: 7, Time: -123456789,
		Num1: 3.14159, Num2: -2.5,
		Text:    "domain.example",
		Payload: []byte{0, 1, 2, 255, 254},
	}
	out := roundTrip(t, in)
	if out.Seq != in.Seq || out.Key != in.Key || out.Time != in.Time ||
		out.Num1 != in.Num1 || out.Num2 != in.Num2 || out.Text != in.Text ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestCodecEmptyFields(t *testing.T) {
	out := roundTrip(t, &spl.Tuple{})
	if out.Text != "" || out.Payload != nil {
		t.Fatalf("empty tuple round trip produced %+v", out)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seq, key uint64, ts int64, n1, n2 float64, text string, payload []byte) bool {
		in := &spl.Tuple{Seq: seq, Key: key, Time: ts, Num1: n1, Num2: n2, Text: text, Payload: payload}
		var buf bytes.Buffer
		if err := newEncoder(&buf).encode(in); err != nil {
			return false
		}
		raw := append([]byte(nil), buf.Bytes()...) // decoding consumes buf
		out, err := newDecoder(&buf).decode()
		if err != nil {
			return false
		}
		// NaN payloads in floats compare unequal; compare bit patterns via
		// re-encoding instead.
		var buf2 bytes.Buffer
		if err := newEncoder(&buf2).encode(out); err != nil {
			return false
		}
		return bytes.Equal(raw, buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecStreamOfTuples(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	for i := 0; i < 100; i++ {
		if err := enc.encode(&spl.Tuple{Seq: uint64(i), Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	dec := newDecoder(&buf)
	for i := 0; i < 100; i++ {
		out, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		if out.Seq != uint64(i) {
			t.Fatalf("tuple %d decoded as seq %d", i, out.Seq)
		}
	}
	if _, err := dec.decode(); err != io.EOF {
		t.Fatalf("decode past end = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	lb := make([]byte, 4)
	binary.LittleEndian.PutUint32(lb, maxFrameBytes+1)
	buf.Write(lb)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Undersized length prefix.
	buf.Reset()
	binary.LittleEndian.PutUint32(lb, 4)
	buf.Write(lb)
	buf.Write(make([]byte, 4))
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("undersized frame accepted")
	}

	// Text length overrunning the frame.
	buf.Reset()
	frame := make([]byte, fixedHeaderBytes)
	binary.LittleEndian.PutUint32(frame[48:], 1000) // text length
	binary.LittleEndian.PutUint32(lb, uint32(len(frame)))
	buf.Write(lb)
	buf.Write(frame)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("overrunning text length accepted")
	}

	// Truncated frame body.
	buf.Reset()
	binary.LittleEndian.PutUint32(lb, 100)
	buf.Write(lb)
	buf.Write(make([]byte, 10))
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Inconsistent payload length.
	buf.Reset()
	frame = make([]byte, fixedHeaderBytes+8)
	binary.LittleEndian.PutUint32(frame[48:], 0)          // text len
	binary.LittleEndian.PutUint32(frame[52:], 4)          // payload len, but 8 bytes remain
	binary.LittleEndian.PutUint32(lb, uint32(len(frame))) //nolint:gosec
	buf.Write(lb)
	buf.Write(frame)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("inconsistent payload length accepted")
	}
}

func TestEncodeRejectsOversizedTuple(t *testing.T) {
	enc := newEncoder(io.Discard)
	if err := enc.encode(&spl.Tuple{Payload: make([]byte, maxFrameBytes)}); err == nil {
		t.Fatal("oversized tuple accepted")
	}
}

// tupleFixture is a shared valid tuple for fuzz seeds.
var tupleFixture = spl.Tuple{
	Seq: 9, Key: 3, Time: 77, Num1: 1.5, Num2: -2.5,
	Text: "fixture", Payload: []byte{1, 2, 3},
}

// batchFixtureTuples returns a small mixed batch: text and payload bearing,
// payload-only, scalar-only, and a larger-payload tuple, so record lengths
// shrink and grow (both zigzag delta signs appear on the wire).
func batchFixtureTuples() []*spl.Tuple {
	return []*spl.Tuple{
		{Seq: 100, Key: 1, Time: -5, Num1: 1.25, Num2: -9, Text: "alpha", Payload: []byte{1, 2, 3}},
		{Seq: 101, Key: 2, Payload: []byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88}},
		{Seq: 102, Key: 3, Time: 7},
		{Seq: 103, Key: 4, Text: "b", Payload: bytes.Repeat([]byte{0x42}, 100)},
	}
}

// batchWireFixture builds a canonical multi-frame wire buffer — batch, v1,
// batch — and the tuples each frame carries, plus each frame's end offset.
func batchWireFixture(tb testing.TB) (wire []byte, want []*spl.Tuple, ends []int) {
	tb.Helper()
	ts := batchFixtureTuples()
	f1, err := marshalBatchFrame(nil, 1, ts[:2])
	if err != nil {
		tb.Fatal(err)
	}
	v1 := &spl.Tuple{Seq: 200, Key: 9, Text: "solo", Payload: []byte{7}}
	f2, err := marshalFrame(nil, 3, v1)
	if err != nil {
		tb.Fatal(err)
	}
	f3, err := marshalBatchFrame(nil, 4, ts[2:])
	if err != nil {
		tb.Fatal(err)
	}
	wire = append(wire, f1...)
	wire = append(wire, f2...)
	wire = append(wire, f3...)
	want = append(want, ts[:2]...)
	want = append(want, v1)
	want = append(want, ts[2:]...)
	ends = []int{len(f1), len(f1) + len(f2), len(wire)}
	return wire, want, ends
}

// TestBatchFrameRoundTrip decodes the canonical mixed buffer through
// decodeFrame and verifies every tuple, the implicit wire sequences, the
// byte meter, and the arena-view payload contract (payloads are views into a
// shared arena; payload-less tuples hold no arena).
func TestBatchFrameRoundTrip(t *testing.T) {
	wire, want, _ := batchWireFixture(t)
	dec := newDecoder(bytes.NewReader(wire))
	out := make([]*spl.Tuple, maxBatchTuples)
	wantFirst := []uint64{1, 3, 4}
	wantCount := []int{2, 1, 2}
	wi := 0
	for f := 0; f < 3; f++ {
		n, first, err := dec.decodeFrame(out)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if n != wantCount[f] || first != wantFirst[f] {
			t.Fatalf("frame %d: n=%d first=%d, want %d/%d", f, n, first, wantCount[f], wantFirst[f])
		}
		for i := 0; i < n; i++ {
			checkFrame(t, wi, want[wi], out[i])
			if len(out[i].Payload) > 0 && !out[i].ArenaBacked() {
				t.Fatalf("tuple %d payload is not an arena view", wi)
			}
			if len(out[i].Payload) == 0 && out[i].ArenaBacked() {
				t.Fatalf("payload-less tuple %d retained an arena reference", wi)
			}
			wi++
		}
		// Release out of order within the batch; the shared arena must
		// survive until the last view drops.
		for i := n - 1; i >= 0; i-- {
			out[i].Release()
			out[i] = nil
		}
	}
	if dec.bytesRead() != uint64(len(wire)) {
		t.Fatalf("decoder read %d wire bytes, want %d", dec.bytesRead(), len(wire))
	}
	if dec.wireSeq() != 5 {
		t.Fatalf("final wire seq %d, want 5", dec.wireSeq())
	}
	if _, _, err := dec.decodeFrame(out); err != io.EOF {
		t.Fatalf("decode past end = %v, want io.EOF", err)
	}
}

// TestBatchFrameTruncationEveryOffset cuts the canonical buffer at every
// possible offset: frames wholly before the cut must still decode exactly,
// and the first incomplete frame must fail closed — no partial batch ever
// escapes.
func TestBatchFrameTruncationEveryOffset(t *testing.T) {
	wire, want, ends := batchWireFixture(t)
	counts := []int{2, 1, 2}
	out := make([]*spl.Tuple, maxBatchTuples)
	for cut := 0; cut <= len(wire); cut++ {
		complete := 0
		for _, e := range ends {
			if e <= cut {
				complete++
			}
		}
		dec := newDecoder(bytes.NewReader(wire[:cut]))
		wi := 0
		for f := 0; f < complete; f++ {
			n, _, err := dec.decodeFrame(out)
			if err != nil {
				t.Fatalf("cut %d: intact frame %d failed: %v", cut, f, err)
			}
			if n != counts[f] {
				t.Fatalf("cut %d: frame %d decoded %d tuples, want %d", cut, f, n, counts[f])
			}
			for i := 0; i < n; i++ {
				checkFrame(t, wi, want[wi], out[i])
				out[i].Release()
				out[i] = nil
				wi++
			}
		}
		if _, _, err := dec.decodeFrame(out); err == nil {
			t.Fatalf("cut %d: decode of incomplete frame %d succeeded", cut, complete)
		}
	}
}

// TestBatchFrameFlipEveryByte flips every byte of the canonical buffer (a
// hard 0xff xor, hitting the length prefix, base seq, count, the zigzag
// delta varints, and every record field) and decodes the mutated stream to
// the end: the decoder may accept or reject frames but must never panic and
// never hand back more content than the wire carried.
func TestBatchFrameFlipEveryByte(t *testing.T) {
	wire, _, _ := batchWireFixture(t)
	out := make([]*spl.Tuple, maxBatchTuples)
	mut := make([]byte, len(wire))
	for pos := 0; pos < len(wire); pos++ {
		copy(mut, wire)
		mut[pos] ^= 0xff
		dec := newDecoder(bytes.NewReader(mut))
		for f := 0; f < 4; f++ {
			n, _, err := dec.decodeFrame(out)
			if err != nil {
				break
			}
			content := 0
			for i := 0; i < n; i++ {
				content += len(out[i].Text) + len(out[i].Payload)
			}
			if content > dec.lastFrameBytes() {
				t.Fatalf("flip at %d: frame yielded %d content bytes from a %d-byte frame",
					pos, content, dec.lastFrameBytes())
			}
			releaseAll(out[:n])
		}
	}
}

// TestMarshalBatchFrameRejects pins the encoder-side bounds: empty batches,
// batches past maxBatchTuples, and batches whose bodies exceed maxFrameBytes
// are errors, not truncations.
func TestMarshalBatchFrameRejects(t *testing.T) {
	if _, err := marshalBatchFrame(nil, 1, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	over := make([]*spl.Tuple, maxBatchTuples+1)
	for i := range over {
		over[i] = &spl.Tuple{}
	}
	if _, err := marshalBatchFrame(nil, 1, over); err == nil {
		t.Fatal("oversized batch count accepted")
	}
	big := &spl.Tuple{Payload: make([]byte, maxFrameBytes/2)}
	if _, err := marshalBatchFrame(nil, 1, []*spl.Tuple{big, big, big}); err == nil {
		t.Fatal("oversized batch body accepted")
	}
}

// TestDecodeFrameRejectsHostileBatchHeaders drives decodeFrame with
// synthetic hostile batch headers that a byte flip could produce: zero and
// overflowing base sequences, counts outside [1, maxBatchTuples], record
// deltas that go negative or huge, and a frame whose records do not tile its
// length. All must fail closed.
func TestDecodeFrameRejectsHostileBatchHeaders(t *testing.T) {
	out := make([]*spl.Tuple, maxBatchTuples)
	frame := func(mutate func([]byte)) []byte {
		b, err := marshalBatchFrame(nil, 5, batchFixtureTuples()[:2])
		if err != nil {
			t.Fatal(err)
		}
		mutate(b)
		return b
	}
	cases := map[string]func([]byte){
		"zero base seq":     func(b []byte) { binary.LittleEndian.PutUint64(b[4:], 0) },
		"overflow base seq": func(b []byte) { binary.LittleEndian.PutUint64(b[4:], ^uint64(0)) },
		"zero count":        func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) },
		"huge count":        func(b []byte) { binary.LittleEndian.PutUint32(b[12:], maxBatchTuples+1) },
		// First delta varint becomes a large negative delta: record length
		// lands below batchRecordFixed and must be rejected, wrap-safe.
		"negative record length": func(b []byte) { b[16] = 0xff; b[17] = 0xff; b[18] = 0x7f },
	}
	for name, mutate := range cases {
		dec := newDecoder(bytes.NewReader(frame(mutate)))
		if _, _, err := dec.decodeFrame(out); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestDecodeIsZeroCopy pins the arena-view decode: the decoded tuple's
// payload must be a view into the frame's arena buffer (no per-frame copy,
// no payload-pool round trip), siblings from successive frames may be
// released in any order, and a corrupt frame must not strand an arena
// reference.
func TestDecodeIsZeroCopy(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	for i := 0; i < 3; i++ {
		in := &spl.Tuple{Seq: uint64(i), Payload: []byte{byte(i), 1, 2, 3}}
		if err := enc.encode(in); err != nil {
			t.Fatal(err)
		}
	}
	dec := newDecoder(&buf)
	tuples := make([]*spl.Tuple, 3)
	for i := range tuples {
		out, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		if !out.ArenaBacked() {
			t.Fatal("decoded payload is not an arena view")
		}
		if out.PayloadPooled() {
			t.Fatal("decoded payload took a pooled buffer; expected a view")
		}
		tuples[i] = out
	}
	// Out-of-order release across frames; the surviving views stay intact.
	tuples[1].Release()
	if tuples[0].Payload[0] != 0 || tuples[2].Payload[0] != 2 {
		t.Fatalf("surviving views corrupted: %v %v", tuples[0].Payload, tuples[2].Payload)
	}
	tuples[2].Release()
	tuples[0].Release()

	// Payload-less tuples must not hold an arena.
	empty := roundTrip(t, &spl.Tuple{Seq: 9})
	if empty.ArenaBacked() {
		t.Fatal("payload-less tuple retained an arena reference")
	}
	empty.Release()
}
