package pe

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"streamelastic/internal/spl"
)

func roundTrip(t *testing.T, in *spl.Tuple) *spl.Tuple {
	t.Helper()
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	if err := enc.encode(in); err != nil {
		t.Fatal(err)
	}
	dec := newDecoder(&buf)
	out, err := dec.decode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	in := &spl.Tuple{
		Seq: 42, Key: 7, Time: -123456789,
		Num1: 3.14159, Num2: -2.5,
		Text:    "domain.example",
		Payload: []byte{0, 1, 2, 255, 254},
	}
	out := roundTrip(t, in)
	if out.Seq != in.Seq || out.Key != in.Key || out.Time != in.Time ||
		out.Num1 != in.Num1 || out.Num2 != in.Num2 || out.Text != in.Text ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestCodecEmptyFields(t *testing.T) {
	out := roundTrip(t, &spl.Tuple{})
	if out.Text != "" || out.Payload != nil {
		t.Fatalf("empty tuple round trip produced %+v", out)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seq, key uint64, ts int64, n1, n2 float64, text string, payload []byte) bool {
		in := &spl.Tuple{Seq: seq, Key: key, Time: ts, Num1: n1, Num2: n2, Text: text, Payload: payload}
		var buf bytes.Buffer
		if err := newEncoder(&buf).encode(in); err != nil {
			return false
		}
		raw := append([]byte(nil), buf.Bytes()...) // decoding consumes buf
		out, err := newDecoder(&buf).decode()
		if err != nil {
			return false
		}
		// NaN payloads in floats compare unequal; compare bit patterns via
		// re-encoding instead.
		var buf2 bytes.Buffer
		if err := newEncoder(&buf2).encode(out); err != nil {
			return false
		}
		return bytes.Equal(raw, buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecStreamOfTuples(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	for i := 0; i < 100; i++ {
		if err := enc.encode(&spl.Tuple{Seq: uint64(i), Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	dec := newDecoder(&buf)
	for i := 0; i < 100; i++ {
		out, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		if out.Seq != uint64(i) {
			t.Fatalf("tuple %d decoded as seq %d", i, out.Seq)
		}
	}
	if _, err := dec.decode(); err != io.EOF {
		t.Fatalf("decode past end = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	lb := make([]byte, 4)
	binary.LittleEndian.PutUint32(lb, maxFrameBytes+1)
	buf.Write(lb)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Undersized length prefix.
	buf.Reset()
	binary.LittleEndian.PutUint32(lb, 4)
	buf.Write(lb)
	buf.Write(make([]byte, 4))
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("undersized frame accepted")
	}

	// Text length overrunning the frame.
	buf.Reset()
	frame := make([]byte, fixedHeaderBytes)
	binary.LittleEndian.PutUint32(frame[48:], 1000) // text length
	binary.LittleEndian.PutUint32(lb, uint32(len(frame)))
	buf.Write(lb)
	buf.Write(frame)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("overrunning text length accepted")
	}

	// Truncated frame body.
	buf.Reset()
	binary.LittleEndian.PutUint32(lb, 100)
	buf.Write(lb)
	buf.Write(make([]byte, 10))
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Inconsistent payload length.
	buf.Reset()
	frame = make([]byte, fixedHeaderBytes+8)
	binary.LittleEndian.PutUint32(frame[48:], 0)          // text len
	binary.LittleEndian.PutUint32(frame[52:], 4)          // payload len, but 8 bytes remain
	binary.LittleEndian.PutUint32(lb, uint32(len(frame))) //nolint:gosec
	buf.Write(lb)
	buf.Write(frame)
	if _, err := newDecoder(&buf).decode(); err == nil {
		t.Fatal("inconsistent payload length accepted")
	}
}

func TestEncodeRejectsOversizedTuple(t *testing.T) {
	enc := newEncoder(io.Discard)
	if err := enc.encode(&spl.Tuple{Payload: make([]byte, maxFrameBytes)}); err == nil {
		t.Fatal("oversized tuple accepted")
	}
}

// tupleFixture is a shared valid tuple for fuzz seeds.
var tupleFixture = spl.Tuple{
	Seq: 9, Key: 3, Time: 77, Num1: 1.5, Num2: -2.5,
	Text: "fixture", Payload: []byte{1, 2, 3},
}

// TestDecodeIsZeroCopy pins the arena-view decode: the decoded tuple's
// payload must be a view into the frame's arena buffer (no per-frame copy,
// no payload-pool round trip), siblings from successive frames may be
// released in any order, and a corrupt frame must not strand an arena
// reference.
func TestDecodeIsZeroCopy(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	for i := 0; i < 3; i++ {
		in := &spl.Tuple{Seq: uint64(i), Payload: []byte{byte(i), 1, 2, 3}}
		if err := enc.encode(in); err != nil {
			t.Fatal(err)
		}
	}
	dec := newDecoder(&buf)
	tuples := make([]*spl.Tuple, 3)
	for i := range tuples {
		out, err := dec.decode()
		if err != nil {
			t.Fatal(err)
		}
		if !out.ArenaBacked() {
			t.Fatal("decoded payload is not an arena view")
		}
		if out.PayloadPooled() {
			t.Fatal("decoded payload took a pooled buffer; expected a view")
		}
		tuples[i] = out
	}
	// Out-of-order release across frames; the surviving views stay intact.
	tuples[1].Release()
	if tuples[0].Payload[0] != 0 || tuples[2].Payload[0] != 2 {
		t.Fatalf("surviving views corrupted: %v %v", tuples[0].Payload, tuples[2].Payload)
	}
	tuples[2].Release()
	tuples[0].Release()

	// Payload-less tuples must not hold an arena.
	empty := roundTrip(t, &spl.Tuple{Seq: 9})
	if empty.ArenaBacked() {
		t.Fatal("payload-less tuple retained an arena reference")
	}
	empty.Release()
}
