package pe

import (
	"fmt"
	"net"

	"streamelastic/internal/fault"
	"streamelastic/internal/obs"
)

// Export is an exported handle on one cross-PE stream's sending endpoint.
// The cluster job manager uses it to wire, freeze, reroute, and retire
// stream ends outside the one-shot Launch path; tests use Freeze/Unfreeze
// directly. All methods are safe while the stream runs.
type Export struct{ x *exportOp }

// Import is the receiving-side counterpart of Export.
type Import struct{ s *importSource }

// ExportEndpoint returns the plan's export handle for the given stream id,
// or nil when the plan has no such endpoint.
func (p *Plan) ExportEndpoint(stream int) *Export {
	for j, end := range p.Exports {
		if end.Stream == stream {
			return &Export{x: p.exports[j]}
		}
	}
	return nil
}

// ImportEndpoint returns the plan's import handle for the given stream id,
// or nil when the plan has no such endpoint.
func (p *Plan) ImportEndpoint(stream int) *Import {
	for j, end := range p.Imports {
		if end.Stream == stream {
			return &Import{s: p.imports[j]}
		}
	}
	return nil
}

// Configure sets the endpoint's transport config, chaos hook, and flight
// recorder before Connect. site is the stream's stable id (the fault site
// and flight-recorder tag); pe tags recorder events.
func (e *Export) Configure(cfg TransportConfig, inj *fault.Injector, site int, rec *obs.FlightRecorder, pe int) {
	e.x.cfg = cfg.withDefaults()
	e.x.inj = inj
	e.x.site = site
	e.x.rec = rec
	e.x.recPE = int32(pe)
}

// SeedSequence pre-loads the wire-sequence counter so this export continues
// a retired predecessor's sequence domain. Must precede Connect.
func (e *Export) SeedSequence(n uint64) { e.x.seedSequence(n) }

// Connect attaches the first connection and starts the writer goroutine; a
// non-empty addr enables redial-and-resume after a lost connection.
func (e *Export) Connect(conn net.Conn, addr string) error { return e.x.connect(conn, addr) }

// Freeze parks the stream: the writer stops staging frames and producers
// blocked on a full staging ring wait for the thaw instead of timing out
// into the drop counter. Staged tuples are retained. Idempotent.
func (e *Export) Freeze() { e.x.freeze() }

// Unfreeze releases a frozen stream. Idempotent.
func (e *Export) Unfreeze() { e.x.unfreeze() }

// Frozen reports whether the stream is frozen.
func (e *Export) Frozen() bool { return e.x.frozen.Load() }

// Reroute points the stream at a new peer address and kills the current
// connection; the writer redials and the resume handshake replays anything
// the new peer has not seen.
func (e *Export) Reroute(addr string) { e.x.reroute(addr) }

// SeqHigh returns the highest wire sequence staged so far.
func (e *Export) SeqHigh() uint64 { return e.x.seqHigh.Load() }

// Acked returns the receiver's acknowledged wire-sequence watermark.
func (e *Export) Acked() uint64 { return e.x.acked.Load() }

// StagedDepth returns the staging ring's instantaneous depth.
func (e *Export) StagedDepth() int { return e.x.StagedDepth() }

// RetransTuples returns the tuples rewritten by resume handshakes — the
// replay traffic a migration (or reconnect) caused.
func (e *Export) RetransTuples() uint64 { return e.x.retransT.Load() }

// Sent returns the tuples staged (assigned a wire sequence).
func (e *Export) Sent() uint64 { return e.x.Sent() }

// Dropped returns the tuples the export never staged.
func (e *Export) Dropped() uint64 { return e.x.Dropped() }

// Connected reports whether the stream currently has a live connection.
func (e *Export) Connected() bool { return e.x.Connected() }

// Close shuts the endpoint down, draining what it can.
func (e *Export) Close() { e.x.close() }

// Configure sets the import's flight-recorder identity before Listen or
// Connect. site is the stream's stable id; pe tags recorder events.
func (im *Import) Configure(rec *obs.FlightRecorder, pe, site int) {
	im.s.rec = rec
	im.s.recPE = int32(pe)
	im.s.site = site
}

// SeedWatermark pre-loads the delivered/emitted watermarks so this import
// continues a retired predecessor's sequence domain. Must precede Listen.
func (im *Import) SeedWatermark(n uint64) { im.s.seedWatermark(n) }

// Listen starts the reader in accept mode: no connection yet, the first
// arrives when the (rerouted) sender dials ln.
func (im *Import) Listen(ln net.Listener) { im.s.connect(nil, ln) }

// Connect attaches the first connection; a non-nil listener is adopted for
// re-accepting the sender's redials.
func (im *Import) Connect(conn net.Conn, ln net.Listener) { im.s.connect(conn, ln) }

// Delivered returns the highest wire sequence delivered downstream.
func (im *Import) Delivered() uint64 { return im.s.delivered.Load() }

// Emitted returns the wire sequence of the last tuple emitted into the
// engine (equals the emit count; wire sequences are contiguous).
func (im *Import) Emitted() uint64 { return im.s.emitted.Load() }

// Received returns the unique tuples delivered downstream.
func (im *Import) Received() uint64 { return im.s.Received() }

// DupsDropped returns retransmitted duplicates dropped by dedup.
func (im *Import) DupsDropped() uint64 { return im.s.DupsDropped() }

// Resumes returns connections re-accepted after the first.
func (im *Import) Resumes() uint64 { return im.s.Resumes() }

// Close shuts the endpoint down, closing its listener and connection.
func (im *Import) Close() { im.s.close() }

// FreezeStream freezes the named stream's export end across the job — the
// per-edge counterpart of DrainAndStop's whole-job quiescence. Tuples
// already staged are retained; producers park instead of dropping.
func (j *Job) FreezeStream(stream int) error {
	e, err := j.exportFor(stream)
	if err != nil {
		return err
	}
	e.Freeze()
	return nil
}

// UnfreezeStream releases a stream frozen by FreezeStream.
func (j *Job) UnfreezeStream(stream int) error {
	e, err := j.exportFor(stream)
	if err != nil {
		return err
	}
	e.Unfreeze()
	return nil
}

func (j *Job) exportFor(stream int) (*Export, error) {
	for _, ce := range j.crosses {
		if ce.Stream != stream {
			continue
		}
		if e := j.PEs[ce.FromPE].Plan.ExportEndpoint(stream); e != nil {
			return e, nil
		}
	}
	return nil, fmt.Errorf("pe: no export endpoint for stream %d", stream)
}
