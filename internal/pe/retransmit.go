package pe

import (
	"fmt"

	"streamelastic/internal/spl"
)

// retransSlot holds one staged frame's encoded bytes until the receiver
// acknowledges its last wire sequence. A slot covers the inclusive sequence
// range [first, last] — a single tuple for v1 frames, a whole batch for v2
// frames. The buffer is reused when the slot is overwritten, so steady-state
// staging allocates nothing once the ring has warmed up to the workload's
// frame sizes.
type retransSlot struct {
	first uint64
	last  uint64
	buf   []byte
}

// retransRing is the export writer's bounded retransmit window: the last
// RetransmitCapacity staged frames in insertion order. Only the writer
// goroutine touches it — the window-space check against the acked watermark
// (full) is what keeps unacknowledged frames from being overwritten.
type retransRing struct {
	mask  uint64
	count uint64 // frames inserted; next frame lands in slot count&mask
	slots []retransSlot
}

func newRetransRing(capacity int) *retransRing {
	// Caller (TransportConfig.withDefaults) guarantees a power of two >= 2.
	return &retransRing{
		mask:  uint64(capacity - 1),
		slots: make([]retransSlot, capacity),
	}
}

// full reports whether inserting another frame would overwrite a slot whose
// sequences are not yet covered by the acked watermark. For per-tuple frames
// this is exactly the old inFlight >= capacity check; for batch frames it
// accounts for a slot pinning a whole sequence range.
func (r *retransRing) full(acked uint64) bool {
	s := &r.slots[r.count&r.mask]
	return s.last != 0 && s.last > acked
}

// putTuple marshals the tuple as v1 frame seq into the next slot and returns
// the encoded bytes. The caller must have checked full first.
func (r *retransRing) putTuple(seq uint64, t *spl.Tuple) ([]byte, error) {
	s := &r.slots[r.count&r.mask]
	b, err := marshalFrame(s.buf, seq, t)
	if err != nil {
		return nil, err
	}
	s.first, s.last, s.buf = seq, seq, b
	r.count++
	return b, nil
}

// putBatch marshals ts as one v2 batch frame covering wire sequences
// first..first+len(ts)-1 into the next slot and returns the encoded bytes.
// The caller must have checked full first.
func (r *retransRing) putBatch(first uint64, ts []*spl.Tuple) ([]byte, error) {
	s := &r.slots[r.count&r.mask]
	b, err := marshalBatchFrame(s.buf, first, ts)
	if err != nil {
		return nil, err
	}
	s.first, s.last, s.buf = first, first+uint64(len(ts))-1, b
	r.count++
	return b, nil
}

// framesAfter walks the live window oldest to newest and emits every frame
// carrying sequences past resume, verifying the frames cover (resume, last]
// without a gap — a partially-acked batch frame is emitted whole and the
// importer's sequence dedup drops the overlap. It returns the frame and
// tuple counts emitted (tuples counted past resume only).
func (r *retransRing) framesAfter(resume uint64, emit func(buf []byte) error) (frames int, tuples uint64, err error) {
	start := uint64(0)
	if n := uint64(len(r.slots)); r.count > n {
		start = r.count - n
	}
	expect := resume + 1
	for i := start; i < r.count; i++ {
		s := &r.slots[i&r.mask]
		if s.last <= resume {
			continue
		}
		if s.first > expect {
			return frames, tuples, fmt.Errorf("pe: frames (%d, %d) left the retransmit window", resume, s.first)
		}
		if err := emit(s.buf); err != nil {
			return frames, tuples, err
		}
		frames++
		from := s.first
		if resume+1 > from {
			from = resume + 1
		}
		tuples += s.last - from + 1
		expect = s.last + 1
	}
	return frames, tuples, nil
}
