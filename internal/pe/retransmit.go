package pe

import (
	"fmt"

	"streamelastic/internal/spl"
)

// retransSlot holds one staged frame's encoded bytes until the receiver
// acknowledges its wire sequence. The buffer is reused when the slot is
// overwritten, so steady-state staging allocates nothing once the ring has
// warmed up to the workload's frame sizes.
type retransSlot struct {
	seq uint64
	buf []byte
}

// retransRing is the export writer's bounded retransmit window: the last
// RetransmitCapacity staged frames, indexed by wire sequence. Only the
// writer goroutine touches it — the window-space check against the acked
// watermark is what keeps unacknowledged frames from being overwritten.
type retransRing struct {
	mask  uint64
	slots []retransSlot
}

func newRetransRing(capacity int) *retransRing {
	// Caller (TransportConfig.withDefaults) guarantees a power of two >= 2.
	return &retransRing{
		mask:  uint64(capacity - 1),
		slots: make([]retransSlot, capacity),
	}
}

// put marshals the tuple as frame seq into the slot it maps to and returns
// the encoded bytes. The caller must not stage seq while seq-capacity is
// still unacknowledged.
func (r *retransRing) put(seq uint64, t *spl.Tuple) ([]byte, error) {
	s := &r.slots[(seq-1)&r.mask]
	b, err := marshalFrame(s.buf, seq, t)
	if err != nil {
		return nil, err
	}
	s.seq = seq
	s.buf = b
	return b, nil
}

// frame returns the encoded bytes of frame seq, or an error when the slot
// has been overwritten (the frame left the retransmit window).
func (r *retransRing) frame(seq uint64) ([]byte, error) {
	s := &r.slots[(seq-1)&r.mask]
	if s.seq != seq {
		return nil, fmt.Errorf("pe: frame %d left the retransmit window (slot holds %d)", seq, s.seq)
	}
	return s.buf, nil
}
