//go:build race

package pe

// raceDetectorEnabled reports whether this test binary was built with the
// race detector. Under -race, sync.Pool deliberately drops ~25% of Puts to
// provoke races, so steady-state zero-allocation guards that cycle tuples,
// payload boxes, and arenas through the pools cannot hold and are skipped;
// the guards still run in the regular `go test` pass.
const raceDetectorEnabled = true
