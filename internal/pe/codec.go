// Package pe implements the multi-host layer of the runtime: a job's
// operator graph is partitioned into processing elements (PEs), connected
// operators in different PEs communicate over TCP, and — exactly as the
// paper describes (§2) — every PE independently runs the multi-level
// elasticity scheme on its own slice of the graph.
package pe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"streamelastic/internal/spl"
)

// maxFrameBytes bounds a single encoded tuple, protecting readers from
// corrupt or hostile length prefixes.
const maxFrameBytes = 16 << 20

// frame layout (little endian):
//
//	u32 frameLen (bytes after this field)
//	u64 wireSeq (per-stream transport sequence, 1-based; the reconnect
//	            protocol's resume/ack/dedup currency — distinct from the
//	            application-level Tuple.Seq below)
//	u64 seq, u64 key, i64 time
//	f64 num1, f64 num2
//	u32 textLen, text bytes
//	u32 payloadLen, payload bytes
const fixedHeaderBytes = 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4

// wireBufBytes sizes the buffered reader/writer on each side of a stream
// connection. On the send side it doubles as the frame-coalescing window:
// the writer goroutine flushes by policy (see exportOp), so many small
// frames leave in one syscall.
const wireBufBytes = 64 << 10

// marshalFrame appends one tuple frame (length prefix included) carrying
// wire sequence wireSeq to dst[:0], returning the extended slice. The
// retransmit ring marshals into its per-slot buffers through this, so a
// staged frame's bytes outlive the pooled tuple.
func marshalFrame(dst []byte, wireSeq uint64, t *spl.Tuple) ([]byte, error) {
	frameLen := fixedHeaderBytes + len(t.Text) + len(t.Payload)
	if frameLen > maxFrameBytes {
		return nil, fmt.Errorf("pe: tuple frame %d bytes exceeds limit %d", frameLen, maxFrameBytes)
	}
	need := 4 + frameLen
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	b := dst[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(frameLen))
	b = binary.LittleEndian.AppendUint64(b, wireSeq)
	b = binary.LittleEndian.AppendUint64(b, t.Seq)
	b = binary.LittleEndian.AppendUint64(b, t.Key)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Time))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num1))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Num2))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Text)))
	b = append(b, t.Text...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Payload)))
	b = append(b, t.Payload...)
	return b, nil
}

// encoder writes tuples to a stream in frame format.
type encoder struct {
	w   *bufio.Writer
	buf []byte
	seq uint64 // wire sequence of the last frame written by writeFrame
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriterSize(w, wireBufBytes)}
}

// writeFrame appends one tuple frame to the buffered writer without
// flushing, returning the frame's wire size (length prefix included). The
// wire sequence auto-increments from 1; the reliable transport writes
// retransmit-ring slots via writeBytes instead, where it controls the
// sequence. The scratch buffer is reused across calls, so steady-state
// encoding is allocation-free.
func (e *encoder) writeFrame(t *spl.Tuple) (int, error) {
	b, err := marshalFrame(e.buf, e.seq+1, t)
	if err != nil {
		return 0, err
	}
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return 0, err
	}
	e.seq++
	return len(b), nil
}

// writeBytes appends an already-marshalled frame to the buffered writer.
func (e *encoder) writeBytes(b []byte) (int, error) {
	return e.w.Write(b)
}

// flush pushes all buffered frames onto the underlying connection.
func (e *encoder) flush() error { return e.w.Flush() }

// buffered reports how many encoded bytes await a flush.
func (e *encoder) buffered() int { return e.w.Buffered() }

// encode writes one frame and flushes immediately: the single-frame path
// used by tests and by the per-tuple-flush baseline benchmark. The batched
// transport calls writeFrame/flush separately.
func (e *encoder) encode(t *spl.Tuple) error {
	if _, err := e.writeFrame(t); err != nil {
		return err
	}
	return e.flush()
}

// decoder reads tuple frames from a stream.
type decoder struct {
	r     *bufio.Reader
	nread uint64
	seq   uint64 // wire sequence of the last decoded frame
	last  int    // wire bytes of the last decoded frame
	// lenBuf is the length-prefix scratch; a local array would escape
	// through the io.ReadFull interface call and cost an allocation per
	// frame.
	lenBuf [4]byte
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReaderSize(r, wireBufBytes)}
}

// bytesRead returns the cumulative wire bytes of successfully decoded
// frames (length prefixes included).
func (d *decoder) bytesRead() uint64 { return d.nread }

// wireSeq returns the wire sequence of the last decoded frame; the import
// side deduplicates retransmitted frames by it.
func (d *decoder) wireSeq() uint64 { return d.seq }

// lastFrameBytes returns the wire size of the last decoded frame.
func (d *decoder) lastFrameBytes() int { return d.last }

// decode reads one tuple, returning io.EOF (possibly wrapped) when the
// stream ends cleanly. The frame bytes land once in a pooled, ref-counted
// arena and the tuple's Payload is a zero-copy *view* into it — no
// per-frame payload copy, no payload-pool round trip. The tuple struct
// comes from the spl pool and holds the arena reference; the PR 1 ownership
// protocol extends across the wire, so the consumer must Release the tuple
// (directly or via the runtime) when its life ends, which is what lets the
// arena buffer recycle.
func (d *decoder) decode() (*spl.Tuple, error) {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		return nil, err
	}
	frameLen := binary.LittleEndian.Uint32(d.lenBuf[:])
	if frameLen < fixedHeaderBytes || frameLen > maxFrameBytes {
		return nil, fmt.Errorf("pe: invalid frame length %d", frameLen)
	}
	a := spl.AcquireArena(int(frameLen))
	b := a.Bytes()
	if _, err := io.ReadFull(d.r, b); err != nil {
		a.Release()
		return nil, fmt.Errorf("pe: truncated frame: %w", err)
	}
	t := spl.AcquireTuple()
	// fail drops both the creator's arena reference and the half-built
	// tuple (which never attached, so releasing it cannot double-drop).
	fail := func(err error) (*spl.Tuple, error) {
		t.Release()
		a.Release()
		return nil, err
	}
	wireSeq := binary.LittleEndian.Uint64(b[0:])
	t.Seq = binary.LittleEndian.Uint64(b[8:])
	t.Key = binary.LittleEndian.Uint64(b[16:])
	t.Time = int64(binary.LittleEndian.Uint64(b[24:]))
	t.Num1 = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	t.Num2 = math.Float64frombits(binary.LittleEndian.Uint64(b[40:]))
	off := 48
	textLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+textLen > len(b) {
		return fail(fmt.Errorf("pe: text length %d overruns frame", textLen))
	}
	if textLen > 0 {
		// Strings are immutable and may outlive the frame (operators stash
		// them in aggregates), so the text cannot be a view; this is the one
		// copy decode still pays, and only on text-bearing tuples.
		t.Text = string(b[off : off+textLen])
	}
	off += textLen
	if off+4 > len(b) {
		return fail(fmt.Errorf("pe: frame too short for payload length"))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+payloadLen != len(b) {
		return fail(fmt.Errorf("pe: payload length %d inconsistent with frame", payloadLen))
	}
	if payloadLen > 0 {
		t.AttachArena(a, b[off:off+payloadLen])
	}
	// Drop the creator reference: from here the arena lives exactly as long
	// as the tuple's view (or dies now for payload-less tuples).
	a.Release()
	d.seq = wireSeq
	d.last = 4 + int(frameLen)
	d.nread += uint64(d.last)
	return t, nil
}
